package hippo

import (
	"sort"
	"strings"
	"testing"

	"hippo/internal/value"
)

func paperDB(t *testing.T) *DB {
	t.Helper()
	db := Open()
	mustExec(db, "CREATE TABLE emp (id INT, name TEXT, salary INT)")
	mustExec(db, `INSERT INTO emp VALUES
		(1, 'ann', 100), (1, 'ann', 200),
		(2, 'bob', 150),
		(3, 'cat', 300), (3, 'cat', 400),
		(4, 'dan', 50)`)
	db.AddFD("emp", []string{"id"}, []string{"salary"})
	return db
}

func rows(res *Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = value.TupleString(r)
	}
	sort.Strings(out)
	return out
}

func TestQuickstartFlow(t *testing.T) {
	db := paperDB(t)
	rep, err := db.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Edges != 2 || rep.ConflictingTuples != 4 || rep.Constraints != 1 {
		t.Errorf("analysis = %+v", rep)
	}
	res, st, err := db.ConsistentQuery("SELECT * FROM emp")
	if err != nil {
		t.Fatal(err)
	}
	got := rows(res)
	if len(got) != 2 || got[0] != "(2, 'bob', 150)" || got[1] != "(4, 'dan', 50)" {
		t.Errorf("answers = %v", got)
	}
	// The tiered planner serves this FD-only selection from the compiled
	// rewrite — no candidates are certified.
	if st.Strategy != "rewrite" || st.Answers != 2 {
		t.Errorf("stats = %+v", st)
	}
	if !strings.Contains(FormatStats(st), "answers=2") ||
		!strings.Contains(FormatStats(st), "tier=rewrite") {
		t.Error("FormatStats")
	}
	// Pinning the prover tier exercises the full certification pipeline
	// on the same query and must agree.
	resP, stP, err := db.ConsistentQuery("SELECT * FROM emp", WithProverTier())
	if err != nil {
		t.Fatal(err)
	}
	if gotP := rows(resP); strings.Join(gotP, "|") != strings.Join(got, "|") {
		t.Errorf("prover tier answers = %v, want %v", gotP, got)
	}
	if stP.Strategy != "prover" || stP.Candidates != 6 || stP.Answers != 2 {
		t.Errorf("prover stats = %+v", stP)
	}
	if c := db.TierCounts(); c.Rewrite != 1 || c.Prover != 1 {
		t.Errorf("tier counts = %+v", c)
	}
}

func TestPlainQueryVsConsistent(t *testing.T) {
	db := paperDB(t)
	plain, err := db.Query("SELECT * FROM emp WHERE salary >= 100")
	if err != nil {
		t.Fatal(err)
	}
	cons, _, err := db.ConsistentQuery("SELECT * FROM emp WHERE salary >= 100")
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Rows) <= len(cons.Rows) {
		t.Errorf("plain=%d should exceed consistent=%d on inconsistent data",
			len(plain.Rows), len(cons.Rows))
	}
}

func TestRewrittenQueryAgreesOnSJDClass(t *testing.T) {
	db := paperDB(t)
	q := "SELECT * FROM emp WHERE salary > 120"
	viaHippo, _, err := db.ConsistentQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	viaRewrite, err := db.RewrittenQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(rows(viaHippo), "|") != strings.Join(rows(viaRewrite), "|") {
		t.Errorf("hippo %v != rewrite %v", rows(viaHippo), rows(viaRewrite))
	}
	// Rewriting rejects UNION; Hippo does not.
	if _, err := db.RewrittenQuery("SELECT * FROM emp UNION SELECT * FROM emp"); err == nil {
		t.Error("rewriting should reject UNION")
	}
	if _, _, err := db.ConsistentQuery("SELECT * FROM emp UNION SELECT * FROM emp"); err != nil {
		t.Errorf("hippo should accept UNION: %v", err)
	}
}

func TestRepairsAndOracle(t *testing.T) {
	db := paperDB(t)
	n, err := db.CountRepairs()
	if err != nil || n != 4 {
		t.Fatalf("repairs = %d, %v; want 4", n, err)
	}
	reps, err := db.Repairs()
	if err != nil || len(reps) != 4 {
		t.Fatalf("materialized repairs = %d, %v", len(reps), err)
	}
	oracleRows, err := db.OracleConsistentQuery("SELECT * FROM emp")
	if err != nil {
		t.Fatal(err)
	}
	res, _, _ := db.ConsistentQuery("SELECT * FROM emp")
	if len(oracleRows) != len(res.Rows) {
		t.Errorf("oracle %d != hippo %d", len(oracleRows), len(res.Rows))
	}
}

func TestOptions(t *testing.T) {
	db := paperDB(t)
	_, stNaive, err := db.ConsistentQuery("SELECT * FROM emp", WithNaiveProver())
	if err != nil {
		t.Fatal(err)
	}
	if stNaive.EngineQuery <= 1 {
		t.Errorf("naive prover should issue engine queries, ran %d", stNaive.EngineQuery)
	}
	_, stNoPrune, err := db.ConsistentQuery("SELECT * FROM emp", WithoutPruning())
	if err != nil {
		t.Fatal(err)
	}
	if stNoPrune.Answers != 2 {
		t.Errorf("pruning off changed answers: %+v", stNoPrune)
	}
	_, stMat, err := db.ConsistentQuery("SELECT * FROM emp", WithMaterializedEvaluation())
	if err != nil {
		t.Fatal(err)
	}
	if stMat.Streamed {
		t.Error("WithMaterializedEvaluation should opt out of streaming")
	}
	if stMat.Answers != 2 {
		t.Errorf("materialized evaluation changed answers: %+v", stMat)
	}
}

func TestConstraintRegistration(t *testing.T) {
	db := Open()
	mustExec(db, "CREATE TABLE r (a INT, b INT)")
	mustExec(db, "INSERT INTO r VALUES (1, 1), (1, 2)")
	if err := db.AddFDSpec("r: a -> b"); err != nil {
		t.Fatal(err)
	}
	if err := db.AddFDSpec("broken"); err == nil {
		t.Error("bad FD spec should error")
	}
	if err := db.AddDenial("r x WHERE x.b < 0"); err != nil {
		t.Fatal(err)
	}
	if err := db.AddDenial("r x WHERE ???"); err == nil {
		t.Error("bad denial should error")
	}
	db.AddKey("r", "a")
	cs := db.Constraints()
	if len(cs) != 3 {
		t.Errorf("constraints = %v", cs)
	}
	res, _, err := db.ConsistentQuery("SELECT * FROM r")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("all rows conflict; answers = %v", res.Rows)
	}
}

func TestSupport(t *testing.T) {
	db := paperDB(t)
	hippoErr, rwErr, err := db.Support("SELECT * FROM emp UNION SELECT * FROM emp")
	if err != nil {
		t.Fatal(err)
	}
	if hippoErr != nil || rwErr == nil {
		t.Errorf("support: hippo=%v rewrite=%v", hippoErr, rwErr)
	}
}

func TestExecInvalidatesAnalysis(t *testing.T) {
	db := paperDB(t)
	res, _, _ := db.ConsistentQuery("SELECT * FROM emp")
	if len(res.Rows) != 2 {
		t.Fatalf("precondition: %v", rows(res))
	}
	// Adding a conflict for dan must be reflected without manual steps.
	mustExec(db, "INSERT INTO emp VALUES (4, 'dan', 60)")
	res, _, _ = db.ConsistentQuery("SELECT * FROM emp")
	got := rows(res)
	if len(got) != 1 || got[0] != "(2, 'bob', 150)" {
		t.Errorf("after insert, answers = %v", got)
	}
}

func TestWrapAndEngine(t *testing.T) {
	db := Open()
	if db.Engine() == nil {
		t.Fatal("engine should be exposed")
	}
	wrapped := Wrap(db.Engine())
	mustExec(wrapped, "CREATE TABLE x (a INT)")
	if _, err := db.Query("SELECT * FROM x"); err != nil {
		t.Error("Wrap should share the engine")
	}
	if Version == "" {
		t.Error("version should be set")
	}
}

func TestConsistentAggregatePublicAPI(t *testing.T) {
	db := Open()
	mustExec(db, "CREATE TABLE pay (emp INT, amt INT)")
	mustExec(db, "INSERT INTO pay VALUES (1, 10), (1, 20), (2, 5)")
	db.AddFD("pay", []string{"emp"}, []string{"amt"})
	r, err := db.ConsistentAggregate("pay", AggSum, "amt", "")
	if err != nil {
		t.Fatal(err)
	}
	if r.Lower.I != 15 || r.Upper.I != 25 {
		t.Errorf("sum range = %v", r)
	}
	// Both of employee 1's salary variants exceed 7, so the count is 1 in
	// every repair; employee 2's 5 never qualifies.
	r, err = db.ConsistentAggregate("pay", AggCount, "", "amt > 7")
	if err != nil || r.Lower.I != 1 || r.Upper.I != 1 {
		t.Errorf("count range = %v, %v", r, err)
	}
	// A filter straddling the conflict gives a genuine range.
	r, err = db.ConsistentAggregate("pay", AggCount, "", "amt > 15")
	if err != nil || r.Lower.I != 0 || r.Upper.I != 1 {
		t.Errorf("straddling count range = %v, %v", r, err)
	}
	// Requires exactly one FD on the relation.
	db2 := Open()
	mustExec(db2, "CREATE TABLE x (a INT, b INT)")
	if _, err := db2.ConsistentAggregate("x", AggMin, "a", ""); err == nil {
		t.Error("missing FD should error")
	}
	db2.AddFD("x", []string{"a"}, []string{"b"})
	db2.AddFD("x", []string{"b"}, []string{"a"})
	if _, err := db2.ConsistentAggregate("x", AggMin, "a", ""); err == nil {
		t.Error("multiple FDs should error")
	}
}

func TestConsistentQueryOrdering(t *testing.T) {
	db := paperDB(t)
	res, _, err := db.ConsistentQuery("SELECT * FROM emp ORDER BY salary DESC LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][2] != value.Int(150) {
		t.Errorf("top consistent answer = %v", res.Rows)
	}
}

func TestConsistentGroupedAggregatePublicAPI(t *testing.T) {
	db := Open()
	mustExec(db, "CREATE TABLE m (probe INT, reading INT, site INT)")
	mustExec(db, "INSERT INTO m VALUES (1, 10, 100), (1, 20, 100), (2, 5, 200)")
	db.AddFD("m", []string{"probe"}, []string{"reading"})
	groups, err := db.ConsistentGroupedAggregate("m", AggSum, "reading", "", "site")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("groups = %v", groups)
	}
	if groups[0].Key[0] != value.Int(100) ||
		groups[0].Range.Lower != value.Int(10) || groups[0].Range.Upper != value.Int(20) {
		t.Errorf("site 100 = %+v", groups[0])
	}
	if groups[1].Range.Lower != value.Int(5) || groups[1].Range.Upper != value.Int(5) {
		t.Errorf("site 200 = %+v", groups[1])
	}
	if _, err := db.ConsistentGroupedAggregate("m", AggSum, "reading", ""); err == nil {
		t.Error("no group columns should fail")
	}
	db2 := Open()
	mustExec(db2, "CREATE TABLE n (a INT)")
	if _, err := db2.ConsistentGroupedAggregate("n", AggCount, "", "", "a"); err == nil {
		t.Error("missing FD should fail")
	}
}
