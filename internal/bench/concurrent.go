package bench

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hippo/internal/core"
)

// E11ConcurrentServing measures consistent-query serving under concurrent
// read/write traffic in two regimes:
//
//   - locked: every query refreshes the view under the exclusive system
//     lock and runs under the shared lock — the pre-snapshot architecture,
//     where the read path scales to exactly one hypergraph at a time
//     whenever writers keep the analysis stale;
//   - snapshot: the live pipeline, where queries run lock-free against an
//     atomically published immutable view and at most one query at a time
//     folds pending deltas and republishes.
//
// Each configuration runs N reader goroutines issuing the standard
// selection query in a closed loop and M writer goroutines issuing
// alternating single-row INSERT/DELETE statements paced at ~1k
// statements/s each (unpaced writers measure scheduler fairness rather
// than the serving path), for a fixed wall-clock window, reporting
// throughput and latency percentiles. The key effect visible even on few
// cores: the locked regime re-drains and republishes the analysis on
// every query while writers keep it stale, whereas snapshot serving
// amortizes one publication across all concurrent readers.
func E11ConcurrentServing(sc Scale) (Table, error) {
	n := sc.N
	window := sc.Window
	if window <= 0 {
		window = 200 * time.Millisecond
	}
	t := Table{
		ID: "E11",
		Title: fmt.Sprintf("Concurrent consistent-query serving: snapshot vs locked baseline (n=%d, window=%v)",
			n, window),
		Header: []string{"regime", "readers", "writers", "queries", "qps",
			"p50 ms", "p99 ms", "writes/s", "views"},
		Notes: "Readers loop the E3 selection query; writers loop alternating single-row INSERT/DELETE. " +
			"locked = Options{Serialized}: refresh under the exclusive system lock, run under the shared lock " +
			"(the pre-snapshot serving path). snapshot = lock-free reads from the atomically published " +
			"immutable view (storage slabs + hypergraph, both copy-on-write).",
	}

	type cfg struct{ readers, writers int }
	configs := []cfg{{1, 0}, {4, 0}, {1, 2}, {4, 2}, {8, 2}}
	type resRow struct {
		queries int
		lats    []time.Duration
		writes  int64
		views   int64
		answers int64
	}

	run := func(c cfg, serialized bool) (resRow, error) {
		sys, _, err := empSystem(n, 0.02, 31)
		if err != nil {
			return resRow{}, err
		}
		db := sys.DB()
		baseViews := sys.Maintenance().ViewsPublished
		var (
			stop    atomic.Bool
			writes  atomic.Int64
			answers atomic.Int64
			mu      sync.Mutex
			lats    []time.Duration
			wg      sync.WaitGroup
			werr    atomic.Value
		)
		for w := 0; w < c.writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; !stop.Load(); i++ {
					var stmt string
					if i%2 == 0 {
						stmt = fmt.Sprintf("INSERT INTO emp VALUES (%d, 'w%d', %d, %d)",
							n+w*1000000+i, w, i%100, 95000+i%20000)
					} else {
						stmt = fmt.Sprintf("DELETE FROM emp WHERE id = %d", (w*31+i)%n)
					}
					if _, _, err := db.Exec(stmt); err != nil {
						werr.Store(err)
						return
					}
					writes.Add(1)
					time.Sleep(time.Millisecond)
				}
			}(w)
		}
		opts := core.Options{Serialized: serialized, Tier: core.TierForceProver}
		for r := 0; r < c.readers; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var local []time.Duration
				for !stop.Load() {
					t0 := time.Now()
					_, st, err := sys.ConsistentQuery(selectionQuery, opts)
					if err != nil {
						werr.Store(err)
						return
					}
					local = append(local, time.Since(t0))
					answers.Add(int64(st.Answers))
					// Yield between requests so single-core runs measure the
					// serving path, not scheduler starvation of the writers.
					runtime.Gosched()
				}
				mu.Lock()
				lats = append(lats, local...)
				mu.Unlock()
			}()
		}
		time.Sleep(window)
		stop.Store(true)
		wg.Wait()
		if e := werr.Load(); e != nil {
			return resRow{}, e.(error)
		}
		return resRow{
			queries: len(lats),
			lats:    lats,
			writes:  writes.Load(),
			views:   sys.Maintenance().ViewsPublished - baseViews,
			answers: answers.Load(),
		}, nil
	}

	pct := func(lats []time.Duration, p float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	secs := window.Seconds()
	var lockedTop, snapTop float64
	top := configs[len(configs)-1]
	for _, c := range configs {
		for _, serialized := range []bool{true, false} {
			r, err := run(c, serialized)
			if err != nil {
				return t, err
			}
			name := "snapshot"
			if serialized {
				name = "locked"
			}
			qps := float64(r.queries) / secs
			if c == top {
				if serialized {
					lockedTop = qps
				} else {
					snapTop = qps
				}
			}
			t.Rows = append(t.Rows, []string{
				name, fmt.Sprint(c.readers), fmt.Sprint(c.writers),
				fmt.Sprint(r.queries), fmt.Sprintf("%.0f", qps),
				ms(pct(r.lats, 0.50)), ms(pct(r.lats, 0.99)),
				fmt.Sprintf("%.0f", float64(r.writes)/secs),
				fmt.Sprint(r.views),
			})
		}
	}
	if lockedTop > 0 && snapTop > 0 {
		t.Notes += fmt.Sprintf(" At %d readers x %d writers (GOMAXPROCS=%d), snapshot serving sustains %.2fx the locked regime's qps.",
			top.readers, top.writers, runtime.GOMAXPROCS(0), snapTop/lockedTop)
	}
	return t, nil
}
