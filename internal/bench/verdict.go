package bench

import (
	"fmt"
	"time"

	"hippo/internal/core"
)

// E12VerdictCache measures a hot-query stream under localized updates —
// the steady-state serving pattern the component-scoped verdict cache
// targets. Each round applies a few single-row updates confined to a
// small id range (so only the conflict components around those ids change
// fingerprint) and then re-runs a fixed set of certification-heavy
// queries. Three regimes execute the identical statement stream:
//
//   - pr2-global: the pre-decomposition path — one global blocking-edge
//     search per candidate, no memoization (Options.GlobalCertification);
//   - component: component-scoped certification, still re-certifying
//     every candidate per query (Options.DisableVerdictCache);
//   - comp+cache: the live pipeline — verdicts carried across published
//     views and invalidated only for components whose fingerprint changed
//     (plus membership-flipped atoms).
//
// All regimes must agree on every answer count; the headline number is
// the cached regime's speedup over pr2-global.
func E12VerdictCache(sc Scale) (Table, error) {
	n := sc.N
	rounds := 20
	if sc.Reps > 1 {
		rounds *= sc.Reps
	}
	// Updates stay inside a small id prefix: the rest of the conflict
	// components — and therefore the cached verdicts touching them — are
	// never invalidated.
	locality := n / 64
	if locality < 8 {
		locality = 8
	}
	queries := []string{selectionQuery, differenceQuery}
	t := Table{
		ID: "E12",
		Title: fmt.Sprintf("Hot queries + localized updates: verdict cache vs re-certification (n=%d, %d rounds, update locality %d ids)",
			n, rounds, locality),
		Header: []string{"regime", "total ms", "ms/query", "prover ms", "cache hits", "cache misses",
			"invalidated", "answers"},
		Notes: "Each round inserts one colliding row and deletes the hot row inserted two rounds " +
			"earlier (both confined to the id prefix), then re-runs the hot queries (" +
			selectionQuery + "; " + differenceQuery + "). " +
			"pr2-global is the pre-decomposition certification path; component adds the " +
			"per-component search; comp+cache additionally reuses verdicts across views, " +
			"re-certifying only candidates whose component fingerprint (or membership) changed.",
	}

	type regimeResult struct {
		elapsed time.Duration
		prover  time.Duration
		hits    int64
		misses  int64
		inval   int64
		answers int
		queries int
	}
	runRegime := func(opts core.Options) (regimeResult, error) {
		var out regimeResult
		sys, _, err := empSystem(n, 0.08, 31)
		if err != nil {
			return out, err
		}
		db := sys.DB()
		base := sys.CacheStats()
		start := time.Now()
		for round := 0; round < rounds; round++ {
			// Two localized updates: one insert that collides with an
			// existing id (new conflict edge in that id's component) and,
			// from round 2 on, one delete of the hot row inserted two
			// rounds earlier (removing its conflict edges — the
			// component-split path of cache invalidation).
			id := round % locality
			stmt := fmt.Sprintf("INSERT INTO emp VALUES (%d, 'hot%06d', %d, %d)",
				id, round, round%100, 95000+round%20000)
			if _, _, err := db.Exec(stmt); err != nil {
				return out, err
			}
			if old := round - 2; old >= 0 {
				if _, n, err := db.Exec(fmt.Sprintf("DELETE FROM emp WHERE name = 'hot%06d'", old)); err != nil {
					return out, err
				} else if n != 1 {
					return out, fmt.Errorf("bench: delete of hot%06d removed %d rows, want 1", old, n)
				}
			}
			for _, q := range queries {
				_, st, err := sys.ConsistentQuery(q, opts)
				if err != nil {
					return out, err
				}
				out.prover += st.ProverTime
				out.answers += st.Answers
				out.queries++
			}
		}
		out.elapsed = time.Since(start)
		cs := sys.CacheStats().Sub(base)
		out.hits, out.misses, out.inval = cs.Hits, cs.Misses, cs.Invalidated
		return out, nil
	}

	regimes := []struct {
		name string
		opts core.Options
	}{
		{"pr2-global", core.Options{GlobalCertification: true}},
		{"component", core.Options{DisableVerdictCache: true}},
		{"comp+cache", core.Options{Tier: core.TierForceProver}},
	}
	results := make([]regimeResult, len(regimes))
	for i, r := range regimes {
		res, err := runRegime(r.opts)
		if err != nil {
			return t, err
		}
		results[i] = res
		if res.answers != results[0].answers {
			return t, fmt.Errorf("bench: regime %s produced %d answers, %s produced %d",
				r.name, res.answers, regimes[0].name, results[0].answers)
		}
		t.Rows = append(t.Rows, []string{
			r.name, ms(res.elapsed),
			fmt.Sprintf("%.3f", float64(res.elapsed.Microseconds())/1000.0/float64(res.queries)),
			ms(res.prover),
			fmt.Sprint(res.hits), fmt.Sprint(res.misses), fmt.Sprint(res.inval),
			fmt.Sprint(res.answers),
		})
	}
	if cached := results[len(results)-1]; cached.elapsed > 0 {
		t.Notes += fmt.Sprintf(" Speedup comp+cache vs pr2-global: %.1fx total, %.1fx certification.",
			float64(results[0].elapsed)/float64(cached.elapsed),
			float64(results[0].prover)/float64(cached.prover))
	}
	return t, nil
}
