package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"hippo/internal/core"
	"hippo/internal/workload"
)

// E13BatchPipeline measures the group-commit write pipeline: one
// deterministic mixed update stream (workload.UpdateMix — colliding
// inserts, fresh inserts, deletes, transient insert+delete pairs) is
// applied through ExecBatch at batch sizes 1/8/64/256, with one consistent
// query served after every batch. That cadence is the point of group
// commit: each batch pays one sequencer hold, one coalesced delta drain,
// and one view publication, so growing the batch amortizes exactly the
// per-statement costs the issue's "one freeze, one probe pass, one
// publish per statement" pipeline paid. All regimes apply the identical
// stream and must agree on the final consistent answer set.
func E13BatchPipeline(sc Scale) (Table, error) {
	n := sc.N
	updates := 512
	if sc.Reps > 1 {
		updates *= sc.Reps
	}
	sizes := []int{1, 8, 64, 256}
	t := Table{
		ID: "E13",
		Title: fmt.Sprintf("Group-commit batch pipeline: update-side throughput vs batch size (n=%d, %d updates)",
			n, updates),
		Header: []string{"batch size", "batches", "total ms", "stmts/s", "deltas applied",
			"views published", "final answers"},
		Notes: "Each batch of the mixed writer stream (collide/fresh/delete/transient statements) is " +
			"applied with ExecBatch and followed by one consistent query (" + selectionQuery + "), " +
			"so every batch pays one freeze, one coalesced probe pass, and one view publication. " +
			"Batch size 1 reproduces statement-at-a-time costs; larger batches amortize them and " +
			"coalesce transient pairs out of the delta stream entirely.",
	}
	type result struct {
		elapsed  time.Duration
		deltas   int64
		views    int64
		final    int
		finalSet string // sorted key set of the final answers
	}
	results := make([]result, 0, len(sizes))
	for _, size := range sizes {
		sys, _, err := empSystem(n, 0.02, 41)
		if err != nil {
			return t, err
		}
		db := sys.DB()
		stmts := workload.UpdateMix(n, updates, 43)
		base := sys.Maintenance()
		start := time.Now()
		for pos := 0; pos < len(stmts); pos += size {
			end := pos + size
			if end > len(stmts) {
				end = len(stmts)
			}
			if _, err := db.ExecBatch(stmts[pos:end]); err != nil {
				return t, err
			}
			if _, _, err := sys.ConsistentQuery(selectionQuery, core.Options{Tier: core.TierForceProver}); err != nil {
				return t, err
			}
		}
		var r result
		r.elapsed = time.Since(start)
		m := sys.Maintenance().Sub(base)
		r.deltas, r.views = m.DeltasApplied, m.ViewsPublished
		res, _, err := sys.ConsistentQuery("SELECT * FROM emp", core.Options{Tier: core.TierForceProver})
		if err != nil {
			return t, err
		}
		r.final = len(res.Rows)
		keys := make([]string, 0, len(res.Rows))
		for _, row := range res.Rows {
			keys = append(keys, row.Key())
		}
		sort.Strings(keys)
		r.finalSet = strings.Join(keys, "\n")
		if len(results) > 0 && r.finalSet != results[0].finalSet {
			return t, fmt.Errorf("bench: batch size %d reached a different final answer set than size %d (%d vs %d answers)",
				size, sizes[0], r.final, results[0].final)
		}
		results = append(results, r)
		batches := (updates + size - 1) / size
		thr := float64(updates) / r.elapsed.Seconds()
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(size), fmt.Sprint(batches), ms(r.elapsed), fmt.Sprintf("%.0f", thr),
			fmt.Sprint(r.deltas), fmt.Sprint(r.views), fmt.Sprint(r.final),
		})
	}
	// Headline: throughput at batch 64 vs batch 1 (the acceptance ratio).
	var b1, b64 time.Duration
	for i, size := range sizes {
		switch size {
		case 1:
			b1 = results[i].elapsed
		case 64:
			b64 = results[i].elapsed
		}
	}
	if b64 > 0 {
		t.Notes += fmt.Sprintf(" Update-side throughput at batch 64: %.1fx batch 1.",
			float64(b1)/float64(b64))
	}
	return t, nil
}
