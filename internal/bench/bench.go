// Package bench implements the experiment harness that regenerates the
// paper's demonstration claims and the running-time series of its
// companion study. Each experiment (E1–E9, see DESIGN.md §3) produces a
// Table that cmd/hippobench prints and EXPERIMENTS.md records; the
// testing.B benchmarks in the repository root wrap the same runners.
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"hippo/internal/constraint"
	"hippo/internal/core"
	"hippo/internal/engine"
	"hippo/internal/rewrite"
	"hippo/internal/workload"
)

// Table is one experiment's output in row/column form.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  string
}

// Markdown renders the table as GitHub-flavored Markdown.
func (t Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat(" --- |", len(t.Header)) + "\n")
	for _, r := range t.Rows {
		b.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	if t.Notes != "" {
		b.WriteString("\n" + t.Notes + "\n")
	}
	return b.String()
}

// Scale selects experiment sizes.
type Scale struct {
	// Sizes for the size sweeps (E3, E5, E8).
	Sizes []int
	// Rates for the conflict-rate sweep (E4).
	Rates []float64
	// N is the fixed size for E4/E6/E7.
	N int
	// Reps repeats each timed measurement and keeps the fastest.
	Reps int
	// Window is the measurement window per E11 concurrency configuration.
	Window time.Duration
	// Procs is the GOMAXPROCS sweep for E17 (nil = the default 1/2/4/8).
	Procs []int
}

// QuickScale keeps everything small enough for unit tests and -bench runs.
func QuickScale() Scale {
	return Scale{
		Sizes:  []int{500, 1000, 2000},
		Rates:  []float64{0, 0.02, 0.08},
		N:      2000,
		Reps:   1,
		Window: 200 * time.Millisecond,
	}
}

// FullScale mirrors the paper-style sweep (tens of thousands of tuples).
func FullScale() Scale {
	return Scale{
		Sizes:  []int{1000, 2000, 5000, 10000, 20000, 50000},
		Rates:  []float64{0, 0.01, 0.02, 0.04, 0.08, 0.16},
		N:      20000,
		Reps:   3,
		Window: 600 * time.Millisecond,
	}
}

// empSystem builds the standard benchmark instance: emp(n, rate) with FD
// id → salary, plus dept(100).
func empSystem(n int, rate float64, seed int64) (*core.System, workload.EmpReport, error) {
	db := engine.New()
	rep, err := workload.Emp(db, workload.EmpConfig{N: n, ConflictRate: rate, Seed: seed})
	if err != nil {
		return nil, rep, err
	}
	if err := workload.Dept(db, workload.DeptConfig{N: 100, Seed: seed + 1}); err != nil {
		return nil, rep, err
	}
	fd := constraint.FD{Rel: "emp", LHS: []string{"id"}, RHS: []string{"salary"}}
	sys := core.NewSystem(db, []constraint.Constraint{fd})
	if _, err := sys.Analyze(); err != nil {
		return nil, rep, err
	}
	return sys, rep, nil
}

// execAll runs setup statements in order, stopping at the first error.
func execAll(db *engine.DB, sqls ...string) error {
	for _, q := range sqls {
		if _, _, err := db.Exec(q); err != nil {
			return err
		}
	}
	return nil
}

// timeIt measures fn, repeating reps times and keeping the minimum.
func timeIt(reps int, fn func() error) (time.Duration, error) {
	if reps < 1 {
		reps = 1
	}
	best := time.Duration(0)
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		d := time.Since(t0)
		if i == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000.0)
}

// timeConsistent measures a consistent query, keeping the fastest rep's
// duration together with that same rep's stage statistics (so per-stage
// numbers never exceed the reported total).
func timeConsistent(sys *core.System, sql string, opts core.Options, reps int) (*core.Stats, time.Duration, error) {
	if reps < 1 {
		reps = 1
	}
	var (
		best      time.Duration
		bestStats *core.Stats
	)
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		_, st, err := sys.ConsistentQuery(sql, opts)
		if err != nil {
			return nil, 0, err
		}
		d := time.Since(t0)
		if i == 0 || d < best {
			best, bestStats = d, st
		}
	}
	return bestStats, best, nil
}

// CompareRun measures the three strategies of the paper's demo part 3 on
// one query: plain SQL (ignores inconsistency), query rewriting, and
// Hippo.
type CompareRun struct {
	SQL        time.Duration
	QR         time.Duration
	Hippo      time.Duration
	HippoEval  time.Duration
	HippoProve time.Duration
	Candidates int
	Answers    int
	SQLRows    int
	QRRows     int
	QRSupports bool
}

// compare runs all three strategies for sql on sys.
func compare(sys *core.System, sql string, reps int) (CompareRun, error) {
	var out CompareRun
	db := sys.DB()

	d, err := timeIt(reps, func() error {
		res, err := db.Query(sql)
		if err != nil {
			return err
		}
		out.SQLRows = len(res.Rows)
		return nil
	})
	if err != nil {
		return out, err
	}
	out.SQL = d

	rw, err := sys.Rewriter()
	if err == nil {
		plan, perr := rw.RewriteSQL(sql)
		if perr == nil {
			out.QRSupports = true
			d, err = timeIt(reps, func() error {
				res, err := db.RunPlan(plan)
				if err != nil {
					return err
				}
				out.QRRows = len(res.Rows)
				return nil
			})
			if err != nil {
				return out, err
			}
			out.QR = d
		}
	}

	st, d, err := timeConsistent(sys, sql, core.Options{Tier: core.TierForceProver}, reps)
	if err != nil {
		return out, err
	}
	out.Hippo = d
	out.HippoEval = st.Evaluation
	out.HippoProve = st.ProverTime
	out.Candidates = st.Candidates
	out.Answers = st.Answers
	return out, nil
}

// RunAll executes every experiment at the given scale, writing each table
// to w as it completes.
func RunAll(w io.Writer, sc Scale) error {
	runners := []func(Scale) (Table, error){
		E1MoreInformation,
		E2Expressiveness,
		E3TimeVsSize,
		E4TimeVsConflicts,
		E5JoinQuery,
		E6ProverModes,
		E7UnionQuery,
		E8ConflictDetection,
		E9Overhead,
		E10IncrementalMaintenance,
		E11ConcurrentServing,
		E12VerdictCache,
		E13BatchPipeline,
		E14DurableWrites,
		E15StreamingEval,
		E16ServerTier,
		E17ShardScaling,
		E18TieredPlanner,
		E19MaintenancePlane,
		AblationPruning,
		AblationDetection,
	}
	for _, run := range runners {
		tbl, err := run(sc)
		if err != nil {
			return err
		}
		if _, err := io.WriteString(w, tbl.Markdown()+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// Run executes a single experiment by id ("e1".."e19", "ablation-pruning",
// "ablation-detection").
func Run(id string, sc Scale) (Table, error) {
	switch strings.ToLower(id) {
	case "e1":
		return E1MoreInformation(sc)
	case "e2":
		return E2Expressiveness(sc)
	case "e3":
		return E3TimeVsSize(sc)
	case "e4":
		return E4TimeVsConflicts(sc)
	case "e5":
		return E5JoinQuery(sc)
	case "e6":
		return E6ProverModes(sc)
	case "e7":
		return E7UnionQuery(sc)
	case "e8":
		return E8ConflictDetection(sc)
	case "e9":
		return E9Overhead(sc)
	case "e10", "incremental":
		return E10IncrementalMaintenance(sc)
	case "e11", "concurrent":
		return E11ConcurrentServing(sc)
	case "e12", "verdict-cache":
		return E12VerdictCache(sc)
	case "e13", "batch":
		return E13BatchPipeline(sc)
	case "e14", "durable", "wal":
		return E14DurableWrites(sc)
	case "e15", "streaming":
		return E15StreamingEval(sc)
	case "e16", "server", "serving":
		return E16ServerTier(sc)
	case "e17", "shard", "scaling":
		return E17ShardScaling(sc)
	case "e18", "tier", "tiered":
		return E18TieredPlanner(sc)
	case "e19", "maintenance", "maint":
		return E19MaintenancePlane(sc)
	case "ablation-pruning":
		return AblationPruning(sc)
	case "ablation-detection":
		return AblationDetection(sc)
	default:
		return Table{}, fmt.Errorf("bench: unknown experiment %q", id)
	}
}

// Use a selection with ~50% selectivity so candidate sets are non-trivial.
const selectionQuery = "SELECT * FROM emp WHERE salary > 90000"

// differenceQuery forces the prover through negative literals.
const differenceQuery = "SELECT * FROM emp EXCEPT SELECT * FROM emp WHERE salary > 90000"

// unionQuery extracts disjunctive information; rewriting cannot handle it.
const unionQuery = "SELECT * FROM emp WHERE dept < 50 UNION SELECT * FROM emp WHERE dept >= 50"

// joinQuery joins the fact table with the clean dimension.
const joinQuery = "SELECT e.id, e.name, e.dept, e.salary, d.id, d.dname, d.budget FROM emp e, dept d WHERE e.dept = d.id AND e.salary > 90000"

var _ = rewrite.ErrUnionNotSupported // imported for documentation links
