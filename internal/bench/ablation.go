package bench

import (
	"fmt"

	"hippo/internal/conflict"
	"hippo/internal/constraint"
	"hippo/internal/core"
	"hippo/internal/engine"
	"hippo/internal/workload"
)

// workloadEmp is a thin indirection so experiments avoid importing
// workload twice with different configs.
func workloadEmp(db *engine.DB, n int, rate float64, seed int64) (workload.EmpReport, error) {
	return workload.Emp(db, workload.EmpConfig{N: n, ConflictRate: rate, Seed: seed})
}

// AblationPruning compares the prover's blocking-edge DFS with and without
// early independence pruning.
//
// FD-only workloads barely exercise the search (each negative literal has
// few blocker candidates), so this ablation uses the workload that does:
// two readings tables whose entries for the same probe conflict pairwise
// when values disagree (a dense cross-relation denial), queried with a
// difference over their union — producing disjuncts with several negative
// literals whose blocking edges overlap.
func AblationPruning(sc Scale) (Table, error) {
	t := Table{
		ID:    "A1",
		Title: "Ablation: prover early independence pruning (dense denial, union-difference query)",
		Header: []string{"pruning", "total ms", "prover ms", "blocker choices",
			"branches pruned", "answers"},
		Notes: "Early pruning cuts blocking-edge branches as soon as the growing vertex set " +
			"stops being independent; disabling it defers the check to complete assignments. " +
			"Both modes return identical answers.",
	}
	db := engine.New()
	if err := execAll(db,
		"CREATE TABLE ra (probe INT, val INT)",
		"CREATE TABLE rb (probe INT, val INT)"); err != nil {
		return t, err
	}
	// Each probe gets several disagreeing readings in both tables, giving
	// every tuple multiple incident hyperedges.
	probes := sc.N / 40
	if probes < 20 {
		probes = 20
	}
	for p := 0; p < probes; p++ {
		for v := 0; v < 3; v++ {
			if err := execAll(db,
				fmt.Sprintf("INSERT INTO ra VALUES (%d, %d)", p, v),
				fmt.Sprintf("INSERT INTO rb VALUES (%d, %d)", p, v+1)); err != nil {
				return t, err
			}
		}
	}
	// Conflict-free probes keep the certified answer set non-trivial.
	for p := probes; p < probes*2; p++ {
		if err := execAll(db, fmt.Sprintf("INSERT INTO ra VALUES (%d, %d)", p, 7)); err != nil {
			return t, err
		}
	}
	den, err := constraint.ParseDenial("ra a, rb b WHERE a.probe = b.probe AND a.val <> b.val")
	if err != nil {
		return t, err
	}
	sys := core.NewSystem(db, []constraint.Constraint{den})
	if _, err := sys.Analyze(); err != nil {
		return t, err
	}
	const q = "SELECT * FROM ra UNION SELECT * FROM rb EXCEPT SELECT * FROM ra WHERE val = 0"
	for _, disable := range []bool{false, true} {
		st, d, err := timeConsistent(sys, q, core.Options{DisablePruning: disable, Tier: core.TierForceProver}, sc.Reps)
		if err != nil {
			return t, err
		}
		label := "on"
		if disable {
			label = "off"
		}
		t.Rows = append(t.Rows, []string{
			label, ms(d), ms(st.ProverTime),
			fmt.Sprint(st.ProverStats.BlockerChoices),
			fmt.Sprint(st.ProverStats.Pruned),
			fmt.Sprint(st.Answers),
		})
	}
	return t, nil
}

// AblationDetection compares FD conflict detection via hash grouping with
// the generic denial-join path on the same constraint.
func AblationDetection(sc Scale) (Table, error) {
	t := Table{
		ID:     "A2",
		Title:  "Ablation: FD detection fast path vs generic denial join",
		Header: []string{"n", "hash-grouping ms", "generic-join ms", "edges (both)"},
		Notes: "Both paths find identical hyperedges; hash grouping avoids the pairwise " +
			"index probes of the generic path.",
	}
	fd := constraint.FD{Rel: "emp", LHS: []string{"id"}, RHS: []string{"salary"}}
	for _, n := range sc.Sizes {
		db := engine.New()
		if _, err := workloadEmp(db, n, 0.02, 37); err != nil {
			return t, err
		}
		fast := conflict.NewDetector(db)
		var fastEdges int
		dFast, err := timeIt(sc.Reps, func() error {
			h, _, _, err := fast.Detect([]constraint.Constraint{fd})
			if err != nil {
				return err
			}
			fastEdges = h.NumEdges()
			return nil
		})
		if err != nil {
			return t, err
		}
		slow := conflict.NewDetector(db)
		slow.DisableFDFastPath = true
		var slowEdges int
		dSlow, err := timeIt(sc.Reps, func() error {
			h, _, _, err := slow.Detect([]constraint.Constraint{fd})
			if err != nil {
				return err
			}
			slowEdges = h.NumEdges()
			return nil
		})
		if err != nil {
			return t, err
		}
		if fastEdges != slowEdges {
			return t, fmt.Errorf("bench: detection paths disagree: %d vs %d edges", fastEdges, slowEdges)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), ms(dFast), ms(dSlow), fmt.Sprint(fastEdges),
		})
	}
	return t, nil
}
