package bench

import (
	"fmt"
	"os"
	"time"

	"hippo/internal/constraint"
	"hippo/internal/core"
	"hippo/internal/engine"
	"hippo/internal/workload"
)

// E14DurableWrites measures what durability costs and what recovery
// scales with. Part 1 applies the identical mixed update stream
// (workload.UpdateMix) through ExecBatch against an in-memory system and
// a WAL-logged fsync-on-commit system at batch sizes 1/8/64: each batch
// pays one fsync regardless of size, so group commit amortizes the
// synchronous write exactly like it amortizes the freeze and the delta
// drain. Part 2 reopens durability directories holding WALs of increasing
// length and reports recovery time (checkpoint load + tail replay + full
// conflict re-detection).
func E14DurableWrites(sc Scale) (Table, error) {
	n := sc.N
	updates := 512
	if sc.Reps > 1 {
		updates *= sc.Reps
	}
	t := Table{
		ID: "E14",
		Title: fmt.Sprintf("Durable writes: WAL-logged vs in-memory throughput, recovery vs WAL length (n=%d, %d updates)",
			n, updates),
		Header: []string{"regime", "batch size", "total ms", "stmts/s", "vs in-memory"},
		Notes: "Logged mode appends one CRC-framed coalesced record per batch and fsyncs it before the " +
			"batch becomes visible; batch size 1 pays one fsync per statement, batch 64 amortizes it " +
			"64-fold. The acceptance target is logged-mode throughput within 2x of in-memory at batch 64.",
	}
	type cell struct {
		elapsed time.Duration
	}
	sizes := []int{1, 8, 64}
	mem := make(map[int]cell, len(sizes))
	for _, regime := range []string{"in-memory", "logged"} {
		for _, size := range sizes {
			sys, cleanup, err := e14System(regime, n)
			if err != nil {
				return t, err
			}
			stmts := workload.UpdateMix(n, updates, 47)
			db := sys.DB()
			start := time.Now()
			for pos := 0; pos < len(stmts); pos += size {
				end := pos + size
				if end > len(stmts) {
					end = len(stmts)
				}
				if _, err := db.ExecBatch(stmts[pos:end]); err != nil {
					cleanup()
					return t, err
				}
			}
			elapsed := time.Since(start)
			cleanup()
			ratio := "1.0x"
			if regime == "in-memory" {
				mem[size] = cell{elapsed}
			} else if base := mem[size].elapsed; base > 0 {
				ratio = fmt.Sprintf("%.2fx", float64(elapsed)/float64(base))
				if size == 64 {
					// Headline: the acceptance ratio at batch 64.
					t.Notes += fmt.Sprintf(" Measured: logged at batch 64 costs %.2fx in-memory.",
						float64(elapsed)/float64(base))
				}
			}
			thr := float64(updates) / elapsed.Seconds()
			t.Rows = append(t.Rows, []string{
				regime, fmt.Sprint(size), ms(elapsed), fmt.Sprintf("%.0f", thr), ratio,
			})
		}
	}

	// Part 2: recovery time as a function of WAL length (no checkpoint, so
	// the whole history replays).
	for _, frac := range []int{4, 2, 1} {
		count := updates / frac
		dir, err := os.MkdirTemp("", "hippo-e14-")
		if err != nil {
			return t, err
		}
		sys, err := core.OpenDurable(core.DurableOptions{Dir: dir, CheckpointBytes: -1})
		if err != nil {
			os.RemoveAll(dir)
			return t, err
		}
		if err := e14Load(sys, n); err != nil {
			sys.Close()
			os.RemoveAll(dir)
			return t, err
		}
		stmts := workload.UpdateMix(n, count, 47)
		for pos := 0; pos < len(stmts); pos += 64 {
			end := pos + 64
			if end > len(stmts) {
				end = len(stmts)
			}
			if _, err := sys.DB().ExecBatch(stmts[pos:end]); err != nil {
				sys.Close()
				os.RemoveAll(dir)
				return t, err
			}
		}
		walBytes := sys.WALBytes()
		sys.Close()
		start := time.Now()
		recovered, err := core.OpenDurable(core.DurableOptions{Dir: dir, CheckpointBytes: -1})
		if err != nil {
			os.RemoveAll(dir)
			return t, err
		}
		elapsed := time.Since(start)
		recovered.Close()
		os.RemoveAll(dir)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("recovery (%d updates, %d KiB WAL)", count, walBytes/1024),
			"—", ms(elapsed), "—", "—",
		})
	}
	return t, nil
}

// e14System builds the benchmark instance for one regime; cleanup releases
// the system and any durability directory.
func e14System(regime string, n int) (*core.System, func(), error) {
	if regime == "in-memory" {
		db := engine.New()
		sys := core.NewSystem(db, nil)
		if err := e14Load(sys, n); err != nil {
			return nil, nil, err
		}
		return sys, func() { sys.Close() }, nil
	}
	dir, err := os.MkdirTemp("", "hippo-e14-")
	if err != nil {
		return nil, nil, err
	}
	sys, err := core.OpenDurable(core.DurableOptions{Dir: dir, CheckpointBytes: -1})
	if err != nil {
		os.RemoveAll(dir)
		return nil, nil, err
	}
	if err := e14Load(sys, n); err != nil {
		sys.Close()
		os.RemoveAll(dir)
		return nil, nil, err
	}
	return sys, func() { sys.Close(); os.RemoveAll(dir) }, nil
}

// e14Load fills the standard emp instance and registers its FD through the
// system (so durable runs log the constraint like a user would).
func e14Load(sys *core.System, n int) error {
	if _, err := workload.Emp(sys.DB(), workload.EmpConfig{N: n, ConflictRate: 0.02, Seed: 47}); err != nil {
		return err
	}
	if err := sys.AddConstraint(constraint.FD{Rel: "emp", LHS: []string{"id"}, RHS: []string{"salary"}}); err != nil {
		return err
	}
	_, err := sys.Analyze()
	return err
}
