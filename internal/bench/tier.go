package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"hippo/internal/core"
	"hippo/internal/value"
)

// E18TieredPlanner contrasts the tiered planner's rewrite fast path with
// the certification tier on the key-constraint hot query, and measures
// the classification overhead an ineligible (UNION) query pays before it
// lands on the prover. The prover is timed twice: cold (first query on a
// fresh system, empty verdict cache — what any query pays after an
// update invalidates its components) and warm (verdict cache fully hot,
// the E12 steady state). The rewrite tier's claim is the cold column: it
// answers from the compiled first-order plan with zero certification
// work, so it never pays the cold penalty at all. The harness hard-fails
// unless the two tiers return identical answer sets and the rewrite tier
// certified zero candidates — the run doubles as an equivalence check,
// not just a timing.
func E18TieredPlanner(sc Scale) (Table, error) {
	tbl := Table{
		ID:    "E18",
		Title: "Tiered planner: rewrite tier vs prover tier",
		Header: []string{"n", "answers", "rewrite_ms", "prover_cold_ms", "prover_warm_ms",
			"speedup_cold", "classify_us", "ineligible_classify_us"},
		Notes: "rewrite_ms answers the hot selection from the compiled first-order plan " +
			"(0 candidates certified, asserted). prover_cold_ms is the same query pinned to " +
			"the certification tier on a fresh system (empty verdict cache); prover_warm_ms " +
			"repeats it with every verdict cached (the E12 steady state). speedup_cold is " +
			"prover_cold_ms / rewrite_ms. ineligible_classify_us is what the UNION query " +
			"pays in classification before the prover serves it (cold, no plan-cache hit).",
	}
	for _, n := range sc.Sizes {
		sys, _, err := empSystem(n, 0.02, 42)
		if err != nil {
			return tbl, err
		}
		rewRes, rewStats, err := sys.ConsistentQuery(selectionQuery,
			core.Options{Tier: core.TierRequireRewrite})
		if err != nil {
			return tbl, fmt.Errorf("bench e18: rewrite tier at n=%d: %w", n, err)
		}
		if rewStats.Candidates != 0 {
			return tbl, fmt.Errorf("bench e18: rewrite tier certified %d candidates, want 0", rewStats.Candidates)
		}
		prvRes, prvStats, err := sys.ConsistentQuery(selectionQuery,
			core.Options{Tier: core.TierForceProver})
		if err != nil {
			return tbl, err
		}
		if got, want := answerKey(rewRes.Rows), answerKey(prvRes.Rows); got != want {
			return tbl, fmt.Errorf("bench e18: tiers disagree at n=%d:\nrewrite: %s\nprover:  %s", n, got, want)
		}

		_, dRew, err := timeConsistent(sys, selectionQuery,
			core.Options{Tier: core.TierRequireRewrite}, sc.Reps)
		if err != nil {
			return tbl, err
		}

		// Cold prover: each rep gets a fresh system (built outside the
		// timed region) so the first certification pass pays the full
		// verdict-cache miss, then the warm repeat on the same system.
		reps := sc.Reps
		if reps < 1 {
			reps = 1
		}
		var dCold, dWarm time.Duration
		for i := 0; i < reps; i++ {
			sysC, _, err := empSystem(n, 0.02, 42)
			if err != nil {
				return tbl, err
			}
			t0 := time.Now()
			if _, _, err := sysC.ConsistentQuery(selectionQuery,
				core.Options{Tier: core.TierForceProver}); err != nil {
				return tbl, err
			}
			d := time.Since(t0)
			if i == 0 || d < dCold {
				dCold = d
			}
			t0 = time.Now()
			if _, _, err := sysC.ConsistentQuery(selectionQuery,
				core.Options{Tier: core.TierForceProver}); err != nil {
				return tbl, err
			}
			d = time.Since(t0)
			if i == 0 || d < dWarm {
				dWarm = d
			}
			sysC.Close()
		}

		// Ineligible query: a fresh system so classification is cold (no
		// decision-cache hit), bounding the overhead an unlucky query pays.
		sysCold, _, err := empSystem(n, 0.02, 43)
		if err != nil {
			return tbl, err
		}
		_, inelStats, err := sysCold.ConsistentQuery(unionQuery, core.Options{})
		if err != nil {
			return tbl, err
		}
		if inelStats.Strategy != "prover" {
			return tbl, fmt.Errorf("bench e18: UNION query served by %q tier, want prover", inelStats.Strategy)
		}
		sysCold.Close()

		speedup := "-"
		if dRew > 0 {
			speedup = fmt.Sprintf("%.2fx", float64(dCold)/float64(dRew))
		}
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprint(n),
			fmt.Sprint(prvStats.Answers),
			ms(dRew),
			ms(dCold),
			ms(dWarm),
			speedup,
			fmt.Sprint(rewStats.Classify.Microseconds()),
			fmt.Sprint(inelStats.Classify.Microseconds()),
		})
	}
	return tbl, nil
}

// answerKey canonicalizes an answer set: sorted tuple strings, so
// equality is order-independent.
func answerKey(rows []value.Tuple) string {
	keys := make([]string, len(rows))
	for i, r := range rows {
		keys[i] = value.TupleString(r)
	}
	sort.Strings(keys)
	return strings.Join(keys, " ")
}
