package bench

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"hippo/internal/constraint"
	"hippo/internal/core"
	"hippo/internal/engine"
	"hippo/internal/value"
	"hippo/internal/workload"
)

// e17Shards is the shard count K for the sharded configuration. Matches
// the GOMAXPROCS sweep midpoint so every shard can own a core at procs=4.
const e17Shards = 4

// empSystemShards is empSystem with a shard count: the same emp(n, rate)
// instance with FD id → salary, certified over K component shards.
func empSystemShards(n int, rate float64, seed int64, k int) (*core.System, error) {
	db := engine.New()
	if _, err := workload.Emp(db, workload.EmpConfig{N: n, ConflictRate: rate, Seed: seed}); err != nil {
		return nil, err
	}
	if err := workload.Dept(db, workload.DeptConfig{N: 100, Seed: seed + 1}); err != nil {
		return nil, err
	}
	fd := constraint.FD{Rel: "emp", LHS: []string{"id"}, RHS: []string{"salary"}}
	sys := core.NewSystemShards(db, []constraint.Constraint{fd}, k)
	if _, err := sys.Analyze(); err != nil {
		return nil, err
	}
	return sys, nil
}

// e17AnswersKey canonicalizes a consistent-answer set for cross-config
// equality checks: sorted tuple strings, independent of shard layout.
func e17AnswersKey(sys *core.System, q string) (string, error) {
	res, _, err := sys.ConsistentQuery(q, core.Options{Tier: core.TierForceProver})
	if err != nil {
		return "", err
	}
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = value.TupleString(r)
	}
	sort.Strings(out)
	return strings.Join(out, "\n"), nil
}

// e17UpdateInterleaved drains a deterministic update-interleaved workload:
// batches of inserts (a mix of fresh and FD-conflicting ids) and deletes
// applied via ExecBatch, each followed by one consistent query that forces
// the batch through delta folding, cache invalidation, and certification.
// Returns statements certified per second plus the final answer key.
func e17UpdateInterleaved(n int, seed int64, k int) (float64, string, error) {
	sys, err := empSystemShards(n, 0.02, seed, k)
	if err != nil {
		return 0, "", err
	}
	defer sys.Close()
	db := sys.DB()

	const rounds, batch = 8, 32
	next := 10 * n
	t0 := time.Now()
	for r := 0; r < rounds; r++ {
		stmts := make([]string, 0, batch)
		for b := 0; b < batch; b++ {
			switch {
			case b%8 == 7:
				stmts = append(stmts, fmt.Sprintf(
					"DELETE FROM emp WHERE id = %d", (r*batch+b*7)%n))
			case b%5 == 0:
				// Re-insert an existing id with a different salary: an FD
				// conflict that lands in (or merges) a component.
				id := (r*31 + b*13) % n
				stmts = append(stmts, fmt.Sprintf(
					"INSERT INTO emp VALUES (%d, 'c%d', %d, %d)", id, id, id%100, 60000+id%1000))
			default:
				next++
				stmts = append(stmts, fmt.Sprintf(
					"INSERT INTO emp VALUES (%d, 'u%d', %d, %d)", next, next, next%100, 90000+next%20000))
			}
		}
		if _, err := db.ExecBatch(stmts); err != nil {
			return 0, "", err
		}
		if _, _, err := sys.ConsistentQuery(selectionQuery, core.Options{Tier: core.TierForceProver}); err != nil {
			return 0, "", err
		}
	}
	elapsed := time.Since(t0)
	key, err := e17AnswersKey(sys, selectionQuery)
	if err != nil {
		return 0, "", err
	}
	return float64(rounds*batch) / elapsed.Seconds(), key, nil
}

// e17HotQuery serves repeated consistent queries against a warm verdict
// cache, with one localized conflicting insert between rounds so each
// round re-certifies only the touched components. Returns queries served
// per second plus the final answer key.
func e17HotQuery(n int, seed int64, k int) (float64, string, error) {
	sys, err := empSystemShards(n, 0.02, seed, k)
	if err != nil {
		return 0, "", err
	}
	defer sys.Close()
	db := sys.DB()

	// Warm the cache so the measured rounds exercise the hit path plus
	// shard-local invalidation, not cold certification.
	if _, _, err := sys.ConsistentQuery(selectionQuery, core.Options{Tier: core.TierForceProver}); err != nil {
		return 0, "", err
	}

	const rounds, queriesPer = 10, 8
	t0 := time.Now()
	for r := 0; r < rounds; r++ {
		id := (r * 17) % n
		if _, _, err := db.Exec(fmt.Sprintf(
			"INSERT INTO emp VALUES (%d, 'h%d', %d, %d)", id, r, id%100, 50000+r)); err != nil {
			return 0, "", err
		}
		for i := 0; i < queriesPer; i++ {
			if _, _, err := sys.ConsistentQuery(selectionQuery, core.Options{Tier: core.TierForceProver}); err != nil {
				return 0, "", err
			}
		}
	}
	elapsed := time.Since(t0)
	key, err := e17AnswersKey(sys, selectionQuery)
	if err != nil {
		return 0, "", err
	}
	return float64(rounds*queriesPer) / elapsed.Seconds(), key, nil
}

// E17ShardScaling — component-sharded certification under a GOMAXPROCS
// sweep: K=1 (unsharded) vs K=4 on an update-interleaved workload (batch
// drain through the parallel per-shard fold) and a hot-query workload
// (warm verdict cache with localized invalidation). Both configurations
// replay identical statement sequences and the harness asserts their
// consistent answers are equal in every cell; a mismatch fails the
// experiment rather than producing a table.
func E17ShardScaling(sc Scale) (Table, error) {
	procs := sc.Procs
	if len(procs) == 0 {
		procs = []int{1, 2, 4, 8}
	}
	n := sc.N
	if n > 8000 {
		n = 8000 // bound the 2×2×len(procs) sweep at full scale
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	tbl := Table{
		ID:    "E17",
		Title: "Component-sharded certification: GOMAXPROCS scaling (K=1 vs K=4)",
		Header: []string{"workload", "GOMAXPROCS", "K=1 ops/s",
			fmt.Sprintf("K=%d ops/s", e17Shards), "sharded/unsharded"},
	}

	workloads := []struct {
		name string
		run  func(n int, seed int64, k int) (float64, string, error)
	}{
		{"update-interleaved", e17UpdateInterleaved},
		{"hot-query", e17HotQuery},
	}

	// Sharded update-interleaved throughput by procs, for the self-scaling
	// ratio (procs=4 vs procs=1) reported in Notes.
	updSharded := map[int]float64{}

	for _, wl := range workloads {
		for _, p := range procs {
			runtime.GOMAXPROCS(p)
			best1, bestK := 0.0, 0.0
			reps := sc.Reps
			if reps < 1 {
				reps = 1
			}
			for rep := 0; rep < reps; rep++ {
				seed := int64(91)
				r1, key1, err := wl.run(n, seed, 1)
				if err != nil {
					return Table{}, fmt.Errorf("E17 %s procs=%d K=1: %w", wl.name, p, err)
				}
				rK, keyK, err := wl.run(n, seed, e17Shards)
				if err != nil {
					return Table{}, fmt.Errorf("E17 %s procs=%d K=%d: %w", wl.name, p, e17Shards, err)
				}
				if key1 != keyK {
					return Table{}, fmt.Errorf(
						"E17 %s procs=%d: sharded answers diverged from unsharded on an identical statement sequence",
						wl.name, p)
				}
				if r1 > best1 {
					best1 = r1
				}
				if rK > bestK {
					bestK = rK
				}
			}
			if wl.name == "update-interleaved" {
				updSharded[p] = bestK
			}
			tbl.Rows = append(tbl.Rows, []string{
				wl.name,
				fmt.Sprintf("%d", p),
				fmt.Sprintf("%.0f", best1),
				fmt.Sprintf("%.0f", bestK),
				fmt.Sprintf("%.2fx", bestK/best1),
			})
		}
	}
	runtime.GOMAXPROCS(prev)

	notes := fmt.Sprintf(
		"Update-interleaved: %d-statement ExecBatch groups (fresh inserts, FD-conflicting re-inserts, deletes) "+
			"drained through the per-shard parallel fold, one consistent query per batch; ops/s counts statements "+
			"certified. Hot-query: repeated %q against a warm verdict cache with one localized conflicting insert "+
			"per round; ops/s counts queries served. K=%d vs K=1 replay identical statement sequences; answer "+
			"equality is asserted in-harness at every cell. Host CPUs: %d (sweep GOMAXPROCS %v; speedups at "+
			"GOMAXPROCS above the host core count are bounded by physical parallelism).",
		32, selectionQuery, e17Shards, runtime.NumCPU(), procs)
	if s1, s4 := updSharded[1], updSharded[4]; s1 > 0 && s4 > 0 {
		notes += fmt.Sprintf(
			" Sharded update-interleaved self-scaling: %.2fx at GOMAXPROCS=4 vs 1.", s4/s1)
	}
	tbl.Notes = notes
	return tbl, nil
}
