package bench

import (
	"fmt"
	"runtime"

	"hippo/internal/core"
)

// E15StreamingEval measures the streaming operator engine and cost-based
// planner against the materialized pre-planner baseline on the join
// workload: emp(n) × dept(100) written as a comma join with a cross
// equality, so the baseline executes a filtered cartesian product while
// the planner turns it into a pushed-down hash join. For each size it
// reports wall time, the peak intermediate row footprint (largest row set
// any blocking operator held at once; the baseline additionally holds the
// whole candidate set), the total bytes allocated per run, and the
// planner-chosen access order.
func E15StreamingEval(sc Scale) (Table, error) {
	tbl := Table{
		ID:    "E15",
		Title: "Streaming evaluation + cost-based planning vs materialized baseline (join query)",
		Header: []string{"emp rows", "streamed (ms)", "materialized (ms)", "speedup",
			"peak rows (s/m)", "alloc MB (s/m)", "join order"},
		Notes: "Both paths certify identical answer sets (pinned by differential tests); " +
			"`materialized` is Options.Materialized — the pre-planner pipeline that fully " +
			"evaluates the envelope (access paths only, written join order) before proving.",
	}
	for _, n := range sc.Sizes {
		sys, _, err := empSystem(n, 0.02, 7)
		if err != nil {
			return tbl, err
		}
		streamed, dStream, err := timeConsistent(sys, joinQuery, core.Options{Tier: core.TierForceProver}, sc.Reps)
		if err != nil {
			return tbl, err
		}
		materialized, dMat, err := timeConsistent(sys, joinQuery, core.Options{Materialized: true}, sc.Reps)
		if err != nil {
			return tbl, err
		}
		if streamed.Answers != materialized.Answers {
			return tbl, fmt.Errorf("bench: E15 answer sets diverged at n=%d: streamed %d vs materialized %d",
				n, streamed.Answers, materialized.Answers)
		}
		allocStream, err := allocBytes(func() error {
			_, _, err := sys.ConsistentQuery(joinQuery, core.Options{DisableVerdictCache: true})
			return err
		})
		if err != nil {
			return tbl, err
		}
		allocMat, err := allocBytes(func() error {
			_, _, err := sys.ConsistentQuery(joinQuery, core.Options{Materialized: true, DisableVerdictCache: true})
			return err
		})
		if err != nil {
			return tbl, err
		}
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprint(n),
			ms(dStream),
			ms(dMat),
			fmt.Sprintf("%.1fx", float64(dMat)/float64(max64(int64(dStream), 1))),
			fmt.Sprintf("%d/%d", streamed.PeakIntermediate, materialized.PeakIntermediate),
			fmt.Sprintf("%.2f/%.2f", mb(allocStream), mb(allocMat)),
			streamed.JoinOrder,
		})
		sys.Close()
	}
	return tbl, nil
}

// allocBytes measures the heap bytes allocated by one run of fn. It is a
// process-global measurement, so concurrent allocators (none in the
// harness) would inflate it.
func allocBytes(fn func() error) (uint64, error) {
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	if err := fn(); err != nil {
		return 0, err
	}
	runtime.ReadMemStats(&m1)
	return m1.TotalAlloc - m0.TotalAlloc, nil
}

func mb(b uint64) float64 { return float64(b) / (1 << 20) }

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
