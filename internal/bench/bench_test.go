package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// checkTable validates a table's structural invariants.
func checkTable(t *testing.T, tbl Table, wantRows int) {
	t.Helper()
	if tbl.ID == "" || tbl.Title == "" || len(tbl.Header) == 0 {
		t.Fatalf("table metadata incomplete: %+v", tbl)
	}
	if len(tbl.Rows) != wantRows {
		t.Fatalf("%s: rows = %d, want %d", tbl.ID, len(tbl.Rows), wantRows)
	}
	for _, r := range tbl.Rows {
		if len(r) != len(tbl.Header) {
			t.Fatalf("%s: row width %d != header width %d", tbl.ID, len(r), len(tbl.Header))
		}
	}
	md := tbl.Markdown()
	if !strings.Contains(md, "### "+tbl.ID) || strings.Count(md, "|") < len(tbl.Header) {
		t.Errorf("%s: markdown malformed:\n%s", tbl.ID, md)
	}
}

func mustFloat(t *testing.T, s string) float64 {
	t.Helper()
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("not a number: %q", s)
	}
	return f
}

func TestE1MoreInformation(t *testing.T) {
	tbl, err := E1MoreInformation(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tbl, 5)
	strictWin := false
	for _, r := range tbl.Rows {
		cqa := mustFloat(t, r[1])
		del := mustFloat(t, r[2])
		plain := mustFloat(t, r[3])
		if cqa < del {
			t.Errorf("%s: CQA %v < deletion %v — contradicts demo claim", r[0], cqa, del)
		}
		if cqa > del {
			strictWin = true
		}
		if plain < cqa {
			t.Errorf("%s: plain %v < CQA %v — plain SQL must over-report", r[0], plain, cqa)
		}
	}
	if !strictWin {
		t.Error("E1 must exhibit a query where CQA strictly beats conflict deletion")
	}
}

func TestE2Expressiveness(t *testing.T) {
	tbl, err := E2Expressiveness(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tbl, 8)
	byClass := map[string][]string{}
	for _, r := range tbl.Rows {
		byClass[r[0]] = r
	}
	// Hippo handles SJUD, rewriting does not handle union.
	if byClass["SJU (union)"][2] != "yes" || byClass["SJU (union)"][3] != "no" {
		t.Errorf("union row wrong: %v", byClass["SJU (union)"])
	}
	if byClass["SJUD (all)"][2] != "yes" {
		t.Errorf("SJUD row wrong: %v", byClass["SJUD (all)"])
	}
	// Neither handles unsafe projection.
	if byClass["unsafe P (∃-projection)"][2] != "no" {
		t.Errorf("unsafe P row wrong: %v", byClass["unsafe P (∃-projection)"])
	}
	// Ternary denials: Hippo yes, rewriting no.
	if byClass["S + ternary denial"][2] != "yes" || byClass["S + ternary denial"][3] != "no" {
		t.Errorf("ternary row wrong: %v", byClass["S + ternary denial"])
	}
}

func TestE3TimeVsSize(t *testing.T) {
	sc := QuickScale()
	tbl, err := E3TimeVsSize(sc)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tbl, len(sc.Sizes))
	for _, r := range tbl.Rows {
		if mustFloat(t, r[3]) <= 0 || mustFloat(t, r[5]) <= 0 {
			t.Errorf("timings must be positive: %v", r)
		}
		candidates := mustFloat(t, r[8])
		answers := mustFloat(t, r[9])
		if answers > candidates {
			t.Errorf("answers %v > candidates %v", answers, candidates)
		}
	}
}

func TestE4TimeVsConflicts(t *testing.T) {
	sc := QuickScale()
	tbl, err := E4TimeVsConflicts(sc)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tbl, len(sc.Rates))
	// With zero conflicts, candidates == answers.
	first := tbl.Rows[0]
	if first[1] != "0" {
		t.Errorf("0%% row should have 0 edges: %v", first)
	}
	if first[6] != first[7] {
		t.Errorf("0%% conflicts: candidates %s != answers %s", first[6], first[7])
	}
	// More conflicts → fewer answers per candidate.
	last := tbl.Rows[len(tbl.Rows)-1]
	if mustFloat(t, last[7]) > mustFloat(t, first[7]) {
		t.Errorf("answers should not grow with conflict rate: %v vs %v", last, first)
	}
}

func TestE5JoinQuery(t *testing.T) {
	sc := QuickScale()
	tbl, err := E5JoinQuery(sc)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tbl, len(sc.Sizes))
}

func TestE6ProverModes(t *testing.T) {
	tbl, err := E6ProverModes(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tbl, 2)
	naive, indexed := tbl.Rows[0], tbl.Rows[1]
	if naive[0] != "naive" || indexed[0] != "indexed" {
		t.Fatalf("rows = %v", tbl.Rows)
	}
	// Same answers, and the naive prover must issue far more engine queries.
	if naive[6] != indexed[6] {
		t.Errorf("answers differ across modes: %v vs %v", naive, indexed)
	}
	if mustFloat(t, naive[4]) <= mustFloat(t, indexed[4]) {
		t.Errorf("naive engine queries (%s) should exceed indexed (%s)", naive[4], indexed[4])
	}
	if indexed[4] != "1" {
		t.Errorf("indexed mode should run exactly the envelope query, got %s", indexed[4])
	}
}

func TestE7UnionQuery(t *testing.T) {
	tbl, err := E7UnionQuery(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tbl, 3)
	if tbl.Rows[1][1] != "no" {
		t.Errorf("rewriting should not support union: %v", tbl.Rows[1])
	}
	if tbl.Rows[2][1] != "yes" {
		t.Errorf("hippo should support union: %v", tbl.Rows[2])
	}
}

func TestE8ConflictDetection(t *testing.T) {
	sc := QuickScale()
	tbl, err := E8ConflictDetection(sc)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tbl, len(sc.Sizes))
	// Edges scale with n at a fixed rate.
	first := mustFloat(t, tbl.Rows[0][4])
	last := mustFloat(t, tbl.Rows[len(tbl.Rows)-1][4])
	if last <= first {
		t.Errorf("edges should grow with n: %v", tbl.Rows)
	}
}

func TestE9Overhead(t *testing.T) {
	tbl, err := E9Overhead(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tbl, 4)
	for _, r := range tbl.Rows {
		if !strings.HasSuffix(r[4], "x") {
			t.Errorf("ratio cell should end in x: %v", r)
		}
	}
}

func TestE10IncrementalMaintenance(t *testing.T) {
	tbl, err := E10IncrementalMaintenance(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tbl, 2)
	full, inc := tbl.Rows[0], tbl.Rows[1]
	if full[0] != "full-rebuild" || inc[0] != "incremental" {
		t.Fatalf("unexpected regime rows: %v", tbl.Rows)
	}
	// The incremental regime must never fall back to a full rescan, and
	// must have folded every update in as a delta; the rebuild regime
	// re-detects on every query and applies no deltas.
	if inc[6] != "0" {
		t.Errorf("incremental regime ran %s full rebuilds, want 0", inc[6])
	}
	if inc[3] == "0" {
		t.Errorf("incremental regime applied no deltas: %v", inc)
	}
	if full[3] != "0" {
		t.Errorf("full-rebuild regime applied %s deltas, want 0", full[3])
	}
	if full[7] != inc[7] {
		t.Errorf("regimes disagree on answers: full=%s inc=%s", full[7], inc[7])
	}
}

func TestAblations(t *testing.T) {
	sc := QuickScale()
	tbl, err := AblationPruning(sc)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tbl, 2)
	if tbl.Rows[0][5] != tbl.Rows[1][5] {
		t.Errorf("pruning must not change answers: %v", tbl.Rows)
	}

	tbl, err = AblationDetection(sc)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tbl, len(sc.Sizes))
}

func TestRunAndRunAll(t *testing.T) {
	sc := Scale{Sizes: []int{200}, Rates: []float64{0, 0.05}, N: 300, Reps: 1}
	if _, err := Run("e1", sc); err != nil {
		t.Fatal(err)
	}
	if _, err := Run("E6", sc); err != nil {
		t.Fatal(err)
	}
	if _, err := Run("zzz", sc); err == nil {
		t.Error("unknown experiment should error")
	}
	var buf bytes.Buffer
	if err := RunAll(&buf, sc); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "A1", "A2"} {
		if !strings.Contains(out, "### "+id) {
			t.Errorf("RunAll output missing %s", id)
		}
	}
}
