package bench

import (
	"fmt"
	"time"

	"hippo/internal/core"
)

// E10IncrementalMaintenance measures an update-interleaved workload —
// alternating single-row INSERT/DELETE statements with consistent queries
// — under two hypergraph-maintenance regimes:
//
//   - full-rebuild: the pre-refactor lifecycle, simulated by calling
//     System.Invalidate() after every update so the next consistent query
//     pays a complete conflict re-detection;
//   - incremental: the live pipeline, where each DML delta probes the
//     per-constraint hash indexes and touches only the affected
//     hyperedges.
//
// Both regimes execute the identical statement sequence and are checked
// to produce the same number of consistent answers.
func E10IncrementalMaintenance(sc Scale) (Table, error) {
	n := sc.N
	updates := n / 10
	if updates < 10 {
		updates = 10
	}
	t := Table{
		ID:    "E10",
		Title: fmt.Sprintf("Update-interleaved workload: incremental vs full-rebuild maintenance (n=%d, %d update+query pairs)", n, updates),
		Header: []string{"regime", "total ms", "ms/pair", "deltas", "edges+", "edges-",
			"full rebuilds", "answers"},
		Notes: "Each pair is one INSERT or DELETE on emp followed by a consistent point query " +
			"(SELECT * FROM emp WHERE id = k, answered via the FD's hash index). " +
			"The full-rebuild regime re-runs conflict detection on every query (the seed lifecycle); " +
			"the incremental regime folds the delta into the existing hypergraph via index probes, " +
			"so its per-pair cost is independent of table size.",
	}

	type regimeResult struct {
		elapsed time.Duration
		maint   core.MaintenanceStats
		answers int
	}
	runRegime := func(invalidate bool) (regimeResult, error) {
		var out regimeResult
		sys, _, err := empSystem(n, 0.02, 23)
		if err != nil {
			return out, err
		}
		db := sys.DB()
		base := sys.Maintenance()
		start := time.Now()
		for i := 0; i < updates; i++ {
			if i%2 == 0 {
				// Insert a row that collides with an existing id half the
				// time (new FD edge) and is fresh otherwise.
				id := n + i
				if i%4 == 0 {
					id = i % n
				}
				stmt := fmt.Sprintf("INSERT INTO emp VALUES (%d, 'upd%06d', %d, %d)",
					id, i, i%100, 95000+i%20000)
				if _, _, err := db.Exec(stmt); err != nil {
					return out, err
				}
			} else {
				if _, _, err := db.Exec(fmt.Sprintf("DELETE FROM emp WHERE id = %d", i%n)); err != nil {
					return out, err
				}
			}
			if invalidate {
				sys.Invalidate()
			}
			_, st, err := sys.ConsistentQuery(
				fmt.Sprintf("SELECT * FROM emp WHERE id = %d", (i*7)%n), core.Options{Tier: core.TierForceProver})
			if err != nil {
				return out, err
			}
			out.answers += st.Answers
		}
		out.elapsed = time.Since(start)
		out.maint = sys.Maintenance().Sub(base)
		return out, nil
	}

	full, err := runRegime(true)
	if err != nil {
		return t, err
	}
	inc, err := runRegime(false)
	if err != nil {
		return t, err
	}
	if full.answers != inc.answers {
		return t, fmt.Errorf("bench: regimes disagree: full-rebuild=%d answers, incremental=%d",
			full.answers, inc.answers)
	}
	row := func(name string, r regimeResult) []string {
		return []string{
			name, ms(r.elapsed),
			fmt.Sprintf("%.3f", float64(r.elapsed.Microseconds())/1000.0/float64(updates)),
			fmt.Sprint(r.maint.DeltasApplied),
			fmt.Sprint(r.maint.EdgesAdded), fmt.Sprint(r.maint.EdgesRemoved),
			fmt.Sprint(r.maint.FullRebuilds), fmt.Sprint(r.answers),
		}
	}
	t.Rows = append(t.Rows, row("full-rebuild", full), row("incremental", inc))
	if inc.elapsed > 0 {
		t.Notes += fmt.Sprintf(" Speedup: %.1fx.", float64(full.elapsed)/float64(inc.elapsed))
	}
	return t, nil
}
