package bench

import (
	"fmt"

	"hippo/internal/constraint"
	"hippo/internal/core"
	"hippo/internal/engine"
)

// E1MoreInformation reproduces demonstration part 1: consistent query
// answering extracts strictly more information than evaluating the query
// over the database with all conflicting tuples removed.
func E1MoreInformation(sc Scale) (Table, error) {
	db := engine.New()
	if err := execAll(db,
		"CREATE TABLE person (name TEXT, city TEXT, age INT)",
		`INSERT INTO person VALUES
		('smith', 'boston', 30), ('smith', 'albany', 30),
		('jones', 'nyc', 40),
		('brown', 'boston', 50), ('brown', 'boston', 55),
		('davis', 'chicago', 25)`); err != nil {
		return Table{}, err
	}
	fd := constraint.FD{Rel: "person", LHS: []string{"name"}, RHS: []string{"city", "age"}}
	sys := core.NewSystem(db, []constraint.Constraint{fd})
	if _, err := sys.Analyze(); err != nil {
		return Table{}, err
	}

	// The conflict-deletion baseline: drop every conflicting tuple.
	clean := engine.New()
	if err := execAll(clean,
		"CREATE TABLE person (name TEXT, city TEXT, age INT)",
		"INSERT INTO person VALUES ('jones', 'nyc', 40), ('davis', 'chicago', 25)"); err != nil {
		return Table{}, err
	}

	queries := []struct {
		label, sql string
	}{
		{"σ: all persons", "SELECT * FROM person"},
		{"U: boston-or-not union", "SELECT * FROM person WHERE city = 'boston' UNION SELECT * FROM person WHERE city <> 'boston'"},
		{"σ: age 30 exactly", "SELECT * FROM person WHERE age = 30"},
		{"U: smith somewhere", "SELECT * FROM person WHERE name = 'smith' AND city = 'boston' UNION SELECT * FROM person WHERE name = 'smith' AND city <> 'boston'"},
	}
	t := Table{
		ID:     "E1",
		Title:  "Consistent answers vs. deleting conflicting tuples (demo part 1)",
		Header: []string{"query", "CQA answers", "conflict-deletion answers", "plain SQL rows"},
		Notes: "CQA never returns fewer certain tuples than conflict deletion. The registry-union " +
			"row is the strict win: a record present in both registries conflicts with itself across " +
			"them (exclusion constraint), so every repair keeps exactly one copy — the union " +
			"certainly contains it, yet conflict deletion erases both copies. Plain SQL always " +
			"over-reports tuples that vanish in some repair.",
	}
	for _, q := range queries {
		res, _, err := sys.ConsistentQuery(q.sql, core.Options{Tier: core.TierForceProver})
		if err != nil {
			return t, err
		}
		del, err := clean.Query(q.sql)
		if err != nil {
			return t, err
		}
		plain, err := db.Query(q.sql)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			q.label,
			fmt.Sprint(len(res.Rows)),
			fmt.Sprint(len(del.Rows)),
			fmt.Sprint(len(plain.Rows)),
		})
	}

	// The strict-win scenario: the same record appears in two registries
	// that an exclusion constraint declares mutually exclusive. Every
	// repair keeps exactly one copy, so the union query certainly contains
	// the record — but conflict deletion removes both copies and loses it.
	db2 := engine.New()
	if err := execAll(db2,
		"CREATE TABLE staff (pid INT, nm TEXT)",
		"CREATE TABLE extern (pid INT, nm TEXT)",
		"INSERT INTO staff VALUES (1, 'ann'), (2, 'bob')",
		"INSERT INTO extern VALUES (1, 'ann'), (3, 'eve')"); err != nil {
		return t, err
	}
	excl, err := constraint.ParseDenial("staff s, extern x WHERE s.pid = x.pid")
	if err != nil {
		return t, err
	}
	sys2 := core.NewSystem(db2, []constraint.Constraint{excl})
	unionSQL := "SELECT * FROM staff UNION SELECT * FROM extern"
	res, _, err := sys2.ConsistentQuery(unionSQL, core.Options{Tier: core.TierForceProver})
	if err != nil {
		return t, err
	}
	clean2 := engine.New()
	if err := execAll(clean2,
		"CREATE TABLE staff (pid INT, nm TEXT)",
		"CREATE TABLE extern (pid INT, nm TEXT)",
		"INSERT INTO staff VALUES (2, 'bob')",
		"INSERT INTO extern VALUES (3, 'eve')"); err != nil {
		return t, err
	}
	del, err := clean2.Query(unionSQL)
	if err != nil {
		return t, err
	}
	plain, err := db2.Query(unionSQL)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{
		"U: registry union (strict win)",
		fmt.Sprint(len(res.Rows)), fmt.Sprint(len(del.Rows)), fmt.Sprint(len(plain.Rows)),
	})
	return t, nil
}

// E2Expressiveness reproduces demonstration part 2: the query classes and
// constraint classes each approach supports.
func E2Expressiveness(sc Scale) (Table, error) {
	db := engine.New()
	if err := execAll(db,
		"CREATE TABLE emp (id INT, dept INT, salary INT)",
		"CREATE TABLE mgr (id INT, bonus INT)",
		"INSERT INTO emp VALUES (1, 10, 100)",
		"INSERT INTO mgr VALUES (1, 5)"); err != nil {
		return Table{}, err
	}

	supports := func(cs []constraint.Constraint, sql string) (string, string, error) {
		sys := core.NewSystem(db, cs)
		defer sys.Close() // one throwaway system per case over a shared db
		sup, err := sys.Support(sql)
		if err != nil {
			return "", "", err
		}
		mark := func(e error) string {
			if e == nil {
				return "yes"
			}
			return "no"
		}
		return mark(sup.Hippo), mark(sup.Rewrite), nil
	}

	fdOnly := []constraint.Constraint{
		constraint.FD{Rel: "emp", LHS: []string{"id"}, RHS: []string{"salary"}},
	}
	ternary, err := constraint.ParseDenial(
		"emp x, emp y, emp z WHERE x.id = y.id AND y.id = z.id AND x.salary + y.salary < z.salary")
	if err != nil {
		return Table{}, err
	}
	cases := []struct {
		class string
		cs    []constraint.Constraint
		csTxt string
		sql   string
	}{
		{"S (selection)", fdOnly, "FD", "SELECT * FROM emp WHERE salary > 50"},
		{"SJ (join)", fdOnly, "FD", "SELECT * FROM emp e, mgr m WHERE e.id = m.id"},
		{"SJD (difference)", fdOnly, "FD", "SELECT * FROM emp EXCEPT SELECT * FROM emp WHERE salary > 50"},
		{"SJU (union)", fdOnly, "FD", "SELECT * FROM emp UNION SELECT * FROM emp WHERE salary > 50"},
		{"SJUD (all)", fdOnly, "FD", "SELECT * FROM emp EXCEPT SELECT * FROM emp WHERE dept = 9 UNION SELECT * FROM emp WHERE salary > 50"},
		{"safe P (permutation)", fdOnly, "FD", "SELECT salary, dept, id FROM emp"},
		{"unsafe P (∃-projection)", fdOnly, "FD", "SELECT id FROM emp"},
		{"S + ternary denial", []constraint.Constraint{ternary}, "ternary denial", "SELECT * FROM emp WHERE salary > 50"},
	}
	t := Table{
		ID:     "E2",
		Title:  "Expressiveness: supported query/constraint classes (demo part 2)",
		Header: []string{"query class", "constraints", "Hippo", "query rewriting"},
		Notes: "Hippo handles full SJUD + denial constraints of any arity; rewriting is " +
			"restricted to SJD with binary constraints. Neither handles projections that " +
			"introduce existential quantifiers (paper footnote 4); Hippo reports them upfront.",
	}
	for _, c := range cases {
		h, r, err := supports(c.cs, c.sql)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{c.class, c.csTxt, h, r})
	}
	return t, nil
}

// E3TimeVsSize sweeps database size for a selection query, comparing plain
// SQL, query rewriting, and Hippo (demo part 3 / companion study).
func E3TimeVsSize(sc Scale) (Table, error) {
	t := Table{
		ID:    "E3",
		Title: "Selection query: time vs database size (2% conflicts)",
		Header: []string{"n", "rows", "edges", "SQL ms", "QR ms", "Hippo ms",
			"Hippo eval ms", "Hippo prover ms", "candidates", "answers"},
		Notes: "Query: " + selectionQuery + ". All three agree on answers within the SJD class; " +
			"Hippo's overhead over plain SQL stays a small constant factor, and Hippo tracks QR closely.",
	}
	for _, n := range sc.Sizes {
		sys, rep, err := empSystem(n, 0.02, 7)
		if err != nil {
			return t, err
		}
		run, err := compare(sys, selectionQuery, sc.Reps)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(rep.Rows), fmt.Sprint(sys.Hypergraph().NumEdges()),
			ms(run.SQL), ms(run.QR), ms(run.Hippo),
			ms(run.HippoEval), ms(run.HippoProve),
			fmt.Sprint(run.Candidates), fmt.Sprint(run.Answers),
		})
	}
	return t, nil
}

// E4TimeVsConflicts fixes the size and sweeps the conflict rate.
func E4TimeVsConflicts(sc Scale) (Table, error) {
	t := Table{
		ID:    "E4",
		Title: fmt.Sprintf("Selection query: time vs conflict rate (n=%d)", sc.N),
		Header: []string{"conflict rate", "edges", "SQL ms", "QR ms", "Hippo ms",
			"Hippo prover ms", "candidates", "answers"},
		Notes: "Hippo's prover cost grows with the number of conflicts while plain SQL is flat; " +
			"the hypergraph keeps the growth polynomial.",
	}
	for _, rate := range sc.Rates {
		sys, _, err := empSystem(sc.N, rate, 11)
		if err != nil {
			return t, err
		}
		run, err := compare(sys, selectionQuery, sc.Reps)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f%%", rate*100), fmt.Sprint(sys.Hypergraph().NumEdges()),
			ms(run.SQL), ms(run.QR), ms(run.Hippo), ms(run.HippoProve),
			fmt.Sprint(run.Candidates), fmt.Sprint(run.Answers),
		})
	}
	return t, nil
}

// E5JoinQuery sweeps size for a join query (fact ⋈ clean dimension).
func E5JoinQuery(sc Scale) (Table, error) {
	t := Table{
		ID:    "E5",
		Title: "Join query: time vs database size (2% conflicts)",
		Header: []string{"n", "SQL ms", "QR ms", "Hippo ms", "Hippo prover ms",
			"candidates", "answers"},
		Notes: "Query: emp ⋈ dept with a salary filter. The clean dimension adds join work for " +
			"all strategies but no new conflicts.",
	}
	for _, n := range sc.Sizes {
		sys, _, err := empSystem(n, 0.02, 13)
		if err != nil {
			return t, err
		}
		run, err := compare(sys, joinQuery, sc.Reps)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), ms(run.SQL), ms(run.QR), ms(run.Hippo), ms(run.HippoProve),
			fmt.Sprint(run.Candidates), fmt.Sprint(run.Answers),
		})
	}
	return t, nil
}

// E6ProverModes contrasts the naive prover (one engine query per
// membership check) with the indexed prover on a difference query, the
// paper's membership-check optimization claim.
func E6ProverModes(sc Scale) (Table, error) {
	// Cap the instance: the naive prover's per-check membership queries
	// are deliberately expensive (full predicate evaluation per engine
	// query, standing in for the paper's per-check RDBMS round trip).
	n := sc.N
	if n > 4000 {
		n = 4000
	}
	t := Table{
		ID:    "E6",
		Title: fmt.Sprintf("Membership-check optimization: naive vs indexed prover (n=%d, 4%% conflicts)", n),
		Header: []string{"prover", "total ms", "prover ms", "membership checks",
			"engine queries", "candidates", "answers"},
		Notes: "Query: " + differenceQuery + ". The difference forces a membership check per " +
			"candidate for the subtracted side; answering those checks from the in-memory index " +
			"(\"without executing any queries on the database\", §2) removes the per-check engine round trip.",
	}
	sys, _, err := empSystem(n, 0.04, 17)
	if err != nil {
		return t, err
	}
	for _, mode := range []core.ProverMode{core.ProverNaive, core.ProverIndexed} {
		st, d, err := timeConsistent(sys, differenceQuery, core.Options{Mode: mode, Tier: core.TierForceProver}, sc.Reps)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			mode.String(), ms(d), ms(st.ProverTime),
			fmt.Sprint(st.ProverStats.MembershipChecks),
			fmt.Sprint(st.EngineQuery),
			fmt.Sprint(st.Candidates), fmt.Sprint(st.Answers),
		})
	}
	return t, nil
}

// E7UnionQuery shows union handling: Hippo answers it; rewriting cannot.
func E7UnionQuery(sc Scale) (Table, error) {
	t := Table{
		ID:     "E7",
		Title:  fmt.Sprintf("Union query (disjunctive information), n=%d", sc.N),
		Header: []string{"strategy", "supported", "ms", "rows/answers"},
		Notes: "Query: " + unionQuery + ". Union is what lets Hippo extract indefinite " +
			"disjunctive information; the rewriting approach rejects the query outright.",
	}
	sys, _, err := empSystem(sc.N, 0.02, 19)
	if err != nil {
		return t, err
	}
	run, err := compare(sys, unionQuery, sc.Reps)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{"plain SQL", "yes", ms(run.SQL), fmt.Sprint(run.SQLRows)})
	qrSupported := "no"
	qrTime, qrRows := "—", "—"
	if run.QRSupports {
		qrSupported, qrTime, qrRows = "yes", ms(run.QR), fmt.Sprint(run.QRRows)
	}
	t.Rows = append(t.Rows, []string{"query rewriting", qrSupported, qrTime, qrRows})
	t.Rows = append(t.Rows, []string{"Hippo", "yes", ms(run.Hippo), fmt.Sprint(run.Answers)})
	return t, nil
}

// E8ConflictDetection measures hypergraph construction alone.
func E8ConflictDetection(sc Scale) (Table, error) {
	t := Table{
		ID:     "E8",
		Title:  "Conflict detection and hypergraph construction (2% conflicts)",
		Header: []string{"n", "rows", "detect ms", "combinations", "edges", "conflicting tuples"},
		Notes:  "Detection is a one-time cost amortized over all queries; it scales near-linearly via hash grouping.",
	}
	for _, n := range sc.Sizes {
		db := engine.New()
		rep, err := workloadEmp(db, n, 0.02, 23)
		if err != nil {
			return t, err
		}
		fd := constraint.FD{Rel: "emp", LHS: []string{"id"}, RHS: []string{"salary"}}
		sys := core.NewSystem(db, []constraint.Constraint{fd})
		var detMS string
		var combos int64
		d, err := timeIt(sc.Reps, func() error {
			st, err := sys.Analyze()
			combos = st.Combinations
			return err
		})
		if err != nil {
			return t, err
		}
		detMS = ms(d)
		gs := sys.GraphStats()
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(rep.Rows), detMS,
			fmt.Sprint(combos), fmt.Sprint(gs.Edges), fmt.Sprint(gs.ConflictingVertices),
		})
	}
	return t, nil
}

// E9Overhead derives the paper's closing claim — "the time overhead of our
// approach is acceptable" — as Hippo-to-SQL time ratios.
func E9Overhead(sc Scale) (Table, error) {
	t := Table{
		ID:     "E9",
		Title:  "Overhead of consistent answering vs plain SQL",
		Header: []string{"query", "n", "SQL ms", "Hippo ms", "ratio"},
		Notes:  "Ratios stay within a small constant factor across sizes and query shapes.",
	}
	queries := []struct{ label, sql string }{
		{"selection", selectionQuery},
		{"join", joinQuery},
		{"union", unionQuery},
		{"difference", differenceQuery},
	}
	n := sc.N
	sys, _, err := empSystem(n, 0.02, 29)
	if err != nil {
		return t, err
	}
	for _, q := range queries {
		run, err := compare(sys, q.sql, sc.Reps)
		if err != nil {
			return t, err
		}
		ratio := "∞"
		if run.SQL > 0 {
			ratio = fmt.Sprintf("%.1fx", float64(run.Hippo)/float64(run.SQL))
		}
		t.Rows = append(t.Rows, []string{q.label, fmt.Sprint(n), ms(run.SQL), ms(run.Hippo), ratio})
	}
	return t, nil
}
