package bench

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hippo"
	"hippo/internal/engine"
	"hippo/internal/hclient"
	"hippo/internal/server"
	"hippo/internal/workload"
)

// E16ServerTier measures the hippod serving tier end to end over real
// HTTP connections:
//
//   - a connection sweep (up to the many-hundreds regime) of concurrent
//     clients looping the standard consistent selection query, reporting
//     throughput and latency percentiles — the serving-tier analogue of
//     E11, with the wire, JSON, and admission layers included;
//   - deadline enforcement: a 50ms server-side deadline against a
//     long-running join on both evaluation paths, reporting how far past
//     the deadline the error returns (the context-cancellation contract
//     as a measured latency bound, not just a test assertion);
//   - graceful drain under load: the server is drained while the top
//     configuration's clients are mid-flight, and the row reports how
//     many goroutines outlived the teardown (want 0).
func E16ServerTier(sc Scale) (Table, error) {
	n := sc.N
	window := sc.Window
	if window <= 0 {
		window = 200 * time.Millisecond
	}
	t := Table{
		ID: "E16",
		Title: fmt.Sprintf("Serving tier: concurrent HTTP clients over hippod (n=%d, window=%v)",
			n, window),
		Header: []string{"config", "conns", "queries", "qps", "p50 ms", "p99 ms", "note"},
		Notes: "Clients loop the E3 selection query as /v1/consistent-query requests over a shared " +
			"HTTP transport sized to the connection count. deadline rows issue one long group-join " +
			"consistent query with timeout_ms=50 and report the observed abort latency on each " +
			"evaluation path. The drain row cancels in-flight queries mid-run and counts goroutines " +
			"surviving the teardown.",
	}

	runtime.GC()
	baseline := runtime.NumGoroutine()

	// Serving sweep: the emp workload behind the full HTTP stack.
	conns := []int{16, 128, 512}
	for _, cn := range conns {
		row, err := serveWindow(n, cn, window, false)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, row)
	}

	// Deadline enforcement on a long join, both evaluation paths.
	for _, materialized := range []bool{false, true} {
		row, err := deadlineRow(n, materialized)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, row)
	}

	// Drain under load at the top connection count, then leak check.
	row, err := serveWindow(n, conns[len(conns)-1], window, true)
	if err != nil {
		return t, err
	}
	leaked := 0
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		leaked = runtime.NumGoroutine() - baseline
		if leaked <= 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if leaked < 0 {
		leaked = 0
	}
	row[6] = fmt.Sprintf("%s; %d goroutines leaked", row[6], leaked)
	t.Rows = append(t.Rows, row)
	return t, nil
}

// newServedDB stands up the serving tier over a fresh emp instance and
// returns a client plus the teardown.
func newServedDB(n, maxInflight int) (*hclient.Client, func() error, error) {
	edb := engine.New()
	if _, err := workload.Emp(edb, workload.EmpConfig{N: n, ConflictRate: 0.02, Seed: 31}); err != nil {
		return nil, nil, err
	}
	db := hippo.Wrap(edb)
	if err := db.AddFD("emp", []string{"id"}, []string{"salary"}); err != nil {
		return nil, nil, err
	}
	srv := server.New(db, server.Config{MaxInFlight: maxInflight})
	ts := httptest.NewServer(srv)
	hc := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        maxInflight,
		MaxIdleConnsPerHost: maxInflight,
	}}
	c := hclient.New(ts.URL, hc)
	teardown := func() error {
		srv.Drain()
		hc.CloseIdleConnections()
		ts.Close()
		return srv.Close()
	}
	return c, teardown, nil
}

// serveWindow runs cn closed-loop clients for the window and reports one
// table row. With drainMidFlight, the server is drained while clients
// are still running; cancelled requests are expected and counted.
func serveWindow(n, cn int, window time.Duration, drainMidFlight bool) ([]string, error) {
	c, teardown, err := newServedDB(n, 2*cn)
	if err != nil {
		return nil, err
	}
	var (
		stop      atomic.Bool
		mu        sync.Mutex
		lats      []time.Duration
		cancelled atomic.Int64
		failed    atomic.Int64
		wg        sync.WaitGroup
	)
	ctx := context.Background()
	for i := 0; i < cn; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local []time.Duration
			for !stop.Load() {
				t0 := time.Now()
				_, err := c.ConsistentQuery(ctx, selectionQuery, hclient.QueryOpts{Timeout: 30 * time.Second})
				if err != nil {
					// During a mid-flight drain, cancellations and refusals
					// are the expected outcome, not failures.
					cancelled.Add(1)
					if !drainMidFlight {
						failed.Add(1)
					}
					return
				}
				local = append(local, time.Since(t0))
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		}()
	}
	time.Sleep(window)
	var terr error
	if drainMidFlight {
		terr = teardown() // drain first: in-flight requests die via ctx
		stop.Store(true)
		wg.Wait()
	} else {
		stop.Store(true)
		wg.Wait()
		terr = teardown()
	}
	if terr != nil {
		return nil, terr
	}
	if f := failed.Load(); f > 0 {
		return nil, fmt.Errorf("bench e16: %d requests failed outside drain", f)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		return lats[int(p*float64(len(lats)-1))]
	}
	config := "serve"
	note := "-"
	if drainMidFlight {
		config = "drain"
		note = fmt.Sprintf("drained mid-flight; %d requests cancelled cleanly", cancelled.Load())
	}
	return []string{
		config, fmt.Sprint(cn), fmt.Sprint(len(lats)),
		fmt.Sprintf("%.0f", float64(len(lats))/window.Seconds()),
		ms(pct(0.50)), ms(pct(0.99)), note,
	}, nil
}

// deadlineRow issues one long-running consistent join query with a 50ms
// server-side deadline and reports the observed abort latency.
func deadlineRow(n int, materialized bool) ([]string, error) {
	edb := engine.New()
	var rows []string
	for i := 0; i < n; i++ {
		rows = append(rows, fmt.Sprintf("(%d, %d)", i, i%4))
	}
	for _, q := range []string{
		"CREATE TABLE a (id INT, grp INT)",
		"CREATE TABLE b (id INT, grp INT)",
		"INSERT INTO a VALUES " + strings.Join(rows, ", "),
		"INSERT INTO b VALUES " + strings.Join(rows, ", "),
	} {
		if _, _, err := edb.Exec(q); err != nil {
			return nil, err
		}
	}
	db := hippo.Wrap(edb)
	if err := db.AddFD("a", []string{"id"}, []string{"grp"}); err != nil {
		return nil, err
	}
	srv := server.New(db, server.Config{})
	ts := httptest.NewServer(srv)
	defer func() { ts.Close(); srv.Close() }()
	c := hclient.New(ts.URL, ts.Client())

	const deadline = 50 * time.Millisecond
	t0 := time.Now()
	// Pin the prover tier: the point is to abort mid-certification, and
	// the rewrite tier would finish this join well inside the deadline.
	_, err := c.ConsistentQuery(context.Background(),
		"SELECT * FROM a, b WHERE a.grp = b.grp",
		hclient.QueryOpts{Timeout: deadline, Materialized: materialized, Tier: "prover"})
	elapsed := time.Since(t0)
	if err == nil {
		return nil, fmt.Errorf("bench e16: deadline query completed (grow n beyond %d)", n)
	}
	if !errors.Is(err, hclient.ErrDeadline) {
		return nil, fmt.Errorf("bench e16: deadline query failed with %v, want deadline", err)
	}
	config := "deadline-streamed"
	if materialized {
		config = "deadline-materialized"
	}
	return []string{
		config, "1", "1", "-", "-", ms(elapsed),
		fmt.Sprintf("50ms deadline honored in %.2fx", float64(elapsed)/float64(deadline)),
	}, nil
}
