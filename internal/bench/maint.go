package bench

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hippo/internal/core"
	"hippo/internal/wal"
	"hippo/internal/workload"
)

// E19MaintenancePlane measures the three async-maintenance mechanisms of
// the write path. Part 1: group-commit fsync — the identical batch-1
// update stream applied by 1/4/8 concurrent committers against an
// in-memory and a fsync-on-commit logged system; concurrent committers
// share group fsyncs (the recorded fsync count is the witness), so the
// logged/in-memory gap must shrink as committers rise. Part 2: off-query-path delta folding — the first
// consistent query after a write burst, with the maintainer given time to
// fold versus folding disabled (the query then pays the drain itself).
// Part 3: parallel WAL replay — recovery of one long multi-table WAL at 1
// worker versus GOMAXPROCS, with the recovered hypergraph fingerprints
// asserted identical in-harness.
func E19MaintenancePlane(sc Scale) (Table, error) {
	n := sc.N
	updates := 512
	if sc.Reps > 1 {
		updates *= sc.Reps
	}
	t := Table{
		ID: "E19",
		Title: fmt.Sprintf("Async maintenance plane: group commit, eager folding, parallel replay (n=%d, %d updates)",
			n, updates),
		Header: []string{"part", "configuration", "total ms", "throughput", "ratio"},
		Notes: "Part 1 ratios are logged/in-memory at batch size 1 (every statement pays a durability " +
			"barrier); group commit lets concurrent committers share one fsync, so the ratio must fall " +
			"as committers rise. Part 2 compares the first consistent query after a write burst with " +
			"the maintainer allowed to fold (deltas drained off the query path) vs folding disabled " +
			"(the query drains them). Part 3 replays one long WAL sequentially and with GOMAXPROCS " +
			"workers; recovered states are asserted identical. On a single-core runner both ratios " +
			"understate the mechanism: groups only form while a committer is parked in fsync I/O-wait " +
			"(a near-free page-cache fsync leaves no window) and replay workers share one CPU. The " +
			"fsync count is the portable witness — any count below the statement count proves commits " +
			"coalesced into shared barriers.",
	}

	// Part 1: concurrent batch-1 committers, in-memory vs logged. The
	// fsync count is the scheduling-independent witness that commits
	// coalesced: fewer fsyncs than statements means groups formed.
	memBase := make(map[int]time.Duration)
	for _, regime := range []string{"in-memory", "logged"} {
		for _, committers := range []int{1, 4, 8} {
			sys, cleanup, syncs, err := e19System(regime, n)
			if err != nil {
				return t, err
			}
			base := syncs.Load()
			elapsed, err := e19CommitStream(sys, n, updates, committers)
			grouped := syncs.Load() - base
			cleanup()
			if err != nil {
				return t, err
			}
			ratio := "1.0x"
			thr := fmt.Sprintf("%.0f stmts/s", float64(updates)/elapsed.Seconds())
			if regime == "in-memory" {
				memBase[committers] = elapsed
			} else {
				if memElapsed := memBase[committers]; memElapsed > 0 {
					r := float64(elapsed) / float64(memElapsed)
					ratio = fmt.Sprintf("%.2fx", r)
					t.Notes += fmt.Sprintf(" Measured: logged batch-1 with %d committer(s) costs %.2fx in-memory (%d fsyncs for %d statements).",
						committers, r, grouped, updates)
				}
				thr += fmt.Sprintf(", %d fsyncs", grouped)
				if committers > 1 && grouped >= int64(updates) {
					return t, fmt.Errorf("e19: %d committers issued %d fsyncs for %d statements — no group ever formed",
						committers, grouped, updates)
				}
			}
			t.Rows = append(t.Rows, []string{
				"group commit", fmt.Sprintf("%s, %d committer(s)", regime, committers),
				ms(elapsed), thr, ratio,
			})
		}
	}

	// Part 2: first query after a write burst, folded vs unfolded.
	var foldedQ, unfoldedQ time.Duration
	{
		sys, cleanup, err := e14System("in-memory", n)
		if err != nil {
			return t, err
		}
		burst := workload.UpdateMix(n, updates, 91)
		half := len(burst) / 2

		// Maintainer on: burst, wait for the off-path fold, then query.
		for _, q := range burst[:half] {
			if _, _, err := sys.DB().Exec(q); err != nil {
				cleanup()
				return t, err
			}
		}
		deadline := time.Now().Add(30 * time.Second)
		for sys.PendingDeltas() > 0 {
			if time.Now().After(deadline) {
				cleanup()
				return t, fmt.Errorf("e19: maintainer never drained %d pending deltas", sys.PendingDeltas())
			}
			time.Sleep(time.Millisecond)
		}
		if sys.Maintenance().EagerFolds == 0 {
			cleanup()
			return t, fmt.Errorf("e19: deltas drained but the eager-fold counter is zero")
		}
		start := time.Now()
		if _, _, err := sys.ConsistentQuery("SELECT * FROM emp", core.Options{}); err != nil {
			cleanup()
			return t, err
		}
		foldedQ = time.Since(start)

		// Maintainer off: the same-sized burst parks in the queue and the
		// first query pays the drain.
		sys.SetEagerFolding(false)
		for _, q := range burst[half:] {
			if _, _, err := sys.DB().Exec(q); err != nil {
				cleanup()
				return t, err
			}
		}
		pending := sys.PendingDeltas()
		start = time.Now()
		if _, _, err := sys.ConsistentQuery("SELECT * FROM emp", core.Options{}); err != nil {
			cleanup()
			return t, err
		}
		unfoldedQ = time.Since(start)
		cleanup()
		t.Rows = append(t.Rows, []string{
			"eager folding", "maintainer folded before query (pending=0)", ms(foldedQ), "—", "1.0x",
		})
		ratio := "—"
		if foldedQ > 0 {
			ratio = fmt.Sprintf("%.2fx", float64(unfoldedQ)/float64(foldedQ))
		}
		t.Rows = append(t.Rows, []string{
			"eager folding", fmt.Sprintf("folding disabled, query drains %d deltas", pending),
			ms(unfoldedQ), "—", ratio,
		})
	}

	// Part 3: parallel replay of one long multi-table WAL.
	dir, err := os.MkdirTemp("", "hippo-e19-")
	if err != nil {
		return t, err
	}
	defer os.RemoveAll(dir)
	if err := e19BuildWAL(dir, n, updates); err != nil {
		return t, err
	}
	var seqElapsed time.Duration
	var seqFPs []uint64
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2 // exercise the pooled path even on one CPU
	}
	for _, w := range []int{1, workers} {
		start := time.Now()
		rec, err := core.OpenDurable(core.DurableOptions{
			Dir: dir, NoSync: true, CheckpointBytes: -1, ReplayWorkers: w,
		})
		if err != nil {
			return t, fmt.Errorf("e19: replay with %d workers: %w", w, err)
		}
		elapsed := time.Since(start)
		fps := e19Fingerprints(rec)
		rec.Close()
		ratio := "1.0x"
		if w == 1 {
			seqElapsed, seqFPs = elapsed, fps
		} else {
			if fmt.Sprint(fps) != fmt.Sprint(seqFPs) {
				return t, fmt.Errorf("e19: parallel replay diverged: fingerprints %v vs %v", fps, seqFPs)
			}
			if seqElapsed > 0 {
				ratio = fmt.Sprintf("%.2fx", float64(elapsed)/float64(seqElapsed))
			}
		}
		t.Rows = append(t.Rows, []string{
			"parallel replay", fmt.Sprintf("%d worker(s)", w), ms(elapsed), "—", ratio,
		})
	}
	return t, nil
}

// countingSyncer counts durability barriers through the WrapSyncer hook.
type countingSyncer struct {
	under wal.Syncer
	syncs *atomic.Int64
}

func (c *countingSyncer) Write(p []byte) (int, error) { return c.under.Write(p) }
func (c *countingSyncer) Sync() error                 { c.syncs.Add(1); return c.under.Sync() }
func (c *countingSyncer) Close() error                { return c.under.Close() }

// e19System builds the benchmark instance for one regime with an fsync
// counter attached to every durable sink (zero for in-memory).
func e19System(regime string, n int) (*core.System, func(), *atomic.Int64, error) {
	syncs := new(atomic.Int64)
	if regime == "in-memory" {
		sys, cleanup, err := e14System(regime, n)
		return sys, cleanup, syncs, err
	}
	dir, err := os.MkdirTemp("", "hippo-e19-")
	if err != nil {
		return nil, nil, nil, err
	}
	sys, err := core.OpenDurable(core.DurableOptions{
		Dir: dir, CheckpointBytes: -1,
		WrapSyncer: func(_ string, s wal.Syncer) wal.Syncer {
			return &countingSyncer{under: s, syncs: syncs}
		},
	})
	if err != nil {
		os.RemoveAll(dir)
		return nil, nil, nil, err
	}
	if err := e14Load(sys, n); err != nil {
		sys.Close()
		os.RemoveAll(dir)
		return nil, nil, nil, err
	}
	return sys, func() { sys.Close(); os.RemoveAll(dir) }, syncs, nil
}

// e19CommitStream applies a batch-1 update stream split across committers
// goroutines and returns the wall time for the whole stream.
func e19CommitStream(sys *core.System, n, updates, committers int) (time.Duration, error) {
	stmts := workload.UpdateMix(n, updates, 47)
	var wg sync.WaitGroup
	errs := make([]error, committers)
	start := time.Now()
	for c := 0; c < committers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			db := sys.DB()
			for i := c; i < len(stmts); i += committers {
				if _, _, err := db.Exec(stmts[i]); err != nil {
					errs[c] = err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return elapsed, nil
}

// e19BuildWAL writes a checkpoint-free multi-table history so recovery
// has table-disjoint batch runs to replay in parallel.
func e19BuildWAL(dir string, n, updates int) error {
	sys, err := core.OpenDurable(core.DurableOptions{Dir: dir, NoSync: true, CheckpointBytes: -1})
	if err != nil {
		return err
	}
	defer sys.Close()
	if err := e14Load(sys, n); err != nil {
		return err
	}
	db := sys.DB()
	const tables = 4
	for i := 0; i < tables; i++ {
		if _, _, err := db.Exec(fmt.Sprintf("CREATE TABLE side%d (k INT, v INT)", i)); err != nil {
			return err
		}
	}
	for i := 0; i < updates*2; i++ {
		if _, _, err := db.Exec(fmt.Sprintf("INSERT INTO side%d VALUES (%d, %d)", i%tables, i, i*3)); err != nil {
			return err
		}
	}
	for _, q := range workload.UpdateMix(n, updates, 53) {
		if _, _, err := db.Exec(q); err != nil {
			return err
		}
	}
	return nil
}

// e19Fingerprints captures the recovered hypergraph's sorted component
// fingerprints — the equality witness for replay-worker independence.
func e19Fingerprints(sys *core.System) []uint64 {
	var fps []uint64
	for _, c := range sys.Hypergraph().Components() {
		fps = append(fps, c.FP)
	}
	sort.Slice(fps, func(i, j int) bool { return fps[i] < fps[j] })
	return fps
}
