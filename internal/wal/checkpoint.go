package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"hippo/internal/constraint"
	"hippo/internal/value"
)

// Checkpoint is a serialized full database state: every table's slot
// layout (live rows and tombstones, so RowIDs — the conflict hypergraph's
// vertex identity — survive a restart bit-for-bit), the declared index
// column sets, and the registered constraints. Seq names the WAL segment
// the checkpoint hands off to: recovery loads the newest checkpoint and
// replays only segments with sequence ≥ Seq.
type Checkpoint struct {
	Seq         uint64
	Constraints []constraint.Constraint
	Tables      []TableState
}

// TableState is one table's checkpointed slot layout.
type TableState struct {
	Name    string
	Columns []ColumnState
	// Rows holds one entry per allocated slot (RowIDs [0, len)); the entry
	// at a dead slot is ignored (stored as an empty tuple).
	Rows []value.Tuple
	// Dead marks tombstoned slots, parallel to Rows.
	Dead []bool
	// Indexes lists the column sets of declared indexes; recovery rebuilds
	// them from the restored rows.
	Indexes [][]int
}

// ColumnState is one column declaration.
type ColumnState struct {
	Name string
	Type value.Kind
}

// checkpoint files: 8-byte magic + 1-byte version, then one CRC-framed
// payload (same framing as WAL records). The file is written to a
// temporary name, fsynced, and renamed into place, so a crashed checkpoint
// write is invisible to recovery.
const (
	ckpMagic   = "HIPPOCKP"
	ckpVersion = 1
)

// EncodeCheckpoint renders a checkpoint as a complete file image.
func EncodeCheckpoint(ck *Checkpoint) ([]byte, error) {
	body := putUvarint(nil, ck.Seq)
	body = putUvarint(body, uint64(len(ck.Constraints)))
	for _, c := range ck.Constraints {
		spec, err := EncodeConstraint(c)
		if err != nil {
			return nil, err
		}
		body = putString(body, spec)
	}
	body = putUvarint(body, uint64(len(ck.Tables)))
	for _, ts := range ck.Tables {
		if len(ts.Rows) != len(ts.Dead) {
			return nil, fmt.Errorf("wal: table %s: %d rows vs %d liveness slots",
				ts.Name, len(ts.Rows), len(ts.Dead))
		}
		body = putString(body, ts.Name)
		body = putUvarint(body, uint64(len(ts.Columns)))
		for _, c := range ts.Columns {
			body = putString(body, c.Name)
			body = append(body, byte(c.Type))
		}
		body = putUvarint(body, uint64(len(ts.Rows)))
		for i, row := range ts.Rows {
			if ts.Dead[i] {
				body = append(body, 1)
				continue // tombstoned slot: liveness marker only, no tuple
			}
			body = append(body, 0)
			body = putTuple(body, row)
		}
		body = putUvarint(body, uint64(len(ts.Indexes)))
		for _, cols := range ts.Indexes {
			body = putUvarint(body, uint64(len(cols)))
			for _, c := range cols {
				body = putUvarint(body, uint64(c))
			}
		}
	}
	out := make([]byte, 0, len(ckpMagic)+1+frameHeaderLen+len(body))
	out = append(out, ckpMagic...)
	out = append(out, ckpVersion)
	return appendFrame(out, body), nil
}

// DecodeCheckpoint parses a checkpoint file image. Damage is reported as a
// *CorruptError matching ErrCorrupt.
func DecodeCheckpoint(data []byte, path string) (*Checkpoint, error) {
	hdrLen := len(ckpMagic) + 1
	if len(data) < hdrLen+frameHeaderLen {
		return nil, &CorruptError{Path: path, Reason: "short checkpoint header"}
	}
	if string(data[:len(ckpMagic)]) != ckpMagic {
		return nil, &CorruptError{Path: path, Reason: "bad checkpoint magic"}
	}
	if v := data[len(ckpMagic)]; v != ckpVersion {
		return nil, &CorruptError{Path: path,
			Reason: fmt.Sprintf("unsupported checkpoint version %d", v)}
	}
	frame := data[hdrLen:]
	n := binary.LittleEndian.Uint32(frame[0:4])
	if uint64(n) != uint64(len(frame)-frameHeaderLen) {
		return nil, &CorruptError{Path: path, Offset: int64(hdrLen),
			Reason: fmt.Sprintf("checkpoint body length %d, frame declares %d", len(frame)-frameHeaderLen, n)}
	}
	body := frame[frameHeaderLen:]
	if got, want := crc32.Checksum(body, crcTable), binary.LittleEndian.Uint32(frame[4:8]); got != want {
		return nil, &CorruptError{Path: path, Offset: int64(hdrLen),
			Reason: fmt.Sprintf("checkpoint checksum mismatch (%08x != %08x)", got, want)}
	}
	ck, err := decodeCheckpointBody(body)
	if err != nil {
		return nil, &CorruptError{Path: path, Offset: int64(hdrLen),
			Reason: "undecodable checkpoint: " + err.Error()}
	}
	return ck, nil
}

func decodeCheckpointBody(body []byte) (*Checkpoint, error) {
	d := &decoder{data: body}
	ck := &Checkpoint{Seq: d.uvarint()}
	ncs := d.uvarint()
	if d.err == nil && ncs > uint64(len(body)) {
		d.fail("constraint count %d exceeds payload", ncs)
	}
	for i := uint64(0); i < ncs && d.err == nil; i++ {
		spec := d.string()
		if d.err != nil {
			break
		}
		c, err := DecodeConstraint(spec)
		if err != nil {
			return nil, err
		}
		ck.Constraints = append(ck.Constraints, c)
	}
	nt := d.uvarint()
	if d.err == nil && nt > uint64(len(body)) {
		d.fail("table count %d exceeds payload", nt)
	}
	for i := uint64(0); i < nt && d.err == nil; i++ {
		var ts TableState
		ts.Name = d.string()
		ncols := d.uvarint()
		if d.err == nil && ncols > uint64(len(body)) {
			d.fail("column count %d exceeds payload", ncols)
		}
		for j := uint64(0); j < ncols && d.err == nil; j++ {
			ts.Columns = append(ts.Columns, ColumnState{Name: d.string(), Type: value.Kind(d.byte())})
		}
		nslots := d.uvarint()
		if d.err == nil && nslots > uint64(len(body)) {
			d.fail("slot count %d exceeds payload", nslots)
		}
		for j := uint64(0); j < nslots && d.err == nil; j++ {
			dead := d.byte() != 0
			ts.Dead = append(ts.Dead, dead)
			if dead {
				ts.Rows = append(ts.Rows, nil)
				continue
			}
			ts.Rows = append(ts.Rows, d.tuple())
		}
		nidx := d.uvarint()
		if d.err == nil && nidx > uint64(len(body)) {
			d.fail("index count %d exceeds payload", nidx)
		}
		for j := uint64(0); j < nidx && d.err == nil; j++ {
			nc := d.uvarint()
			if d.err == nil && nc > uint64(len(body)) {
				d.fail("index column count %d exceeds payload", nc)
			}
			cols := make([]int, 0, nc)
			for k := uint64(0); k < nc && d.err == nil; k++ {
				cols = append(cols, int(d.uvarint()))
			}
			ts.Indexes = append(ts.Indexes, cols)
		}
		if d.err != nil {
			break
		}
		ck.Tables = append(ck.Tables, ts)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(body) {
		return nil, fmt.Errorf("%d trailing bytes after checkpoint body", len(body)-d.off)
	}
	return ck, nil
}
