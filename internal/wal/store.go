package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"hippo/internal/constraint"
	"hippo/internal/storage"
)

// Options tune a Store.
type Options struct {
	// NoSync skips the per-commit fsync: commits survive a process crash
	// (the OS page cache holds them) but not an OS crash or power loss.
	NoSync bool
	// WrapSyncer, when set, wraps every file the store opens for writing —
	// WAL segments and checkpoint temporaries. Fault-injection tests use it
	// to cut writes after a byte budget; see CrashInjector.
	WrapSyncer func(name string, s Syncer) Syncer
}

// Recovered is what Open found on disk: the newest intact checkpoint (nil
// for a fresh or checkpoint-less directory) and every WAL record committed
// after it, in commit order. Truncated reports that a torn trailing record
// — the residue of a crash mid-append — was dropped from the live segment.
type Recovered struct {
	Checkpoint *Checkpoint
	Records    []Record
	Truncated  bool
}

// Store manages the durability directory: the live WAL segment it appends
// commits to, plus the checkpoint/rotation protocol. Files are named
//
//	wal-%016x.log        WAL segment with that sequence number
//	checkpoint-%016x.ckpt  checkpoint covering all segments before that seq
//
// Append methods are safe for concurrent use; Rotate and WriteCheckpoint
// are driven by the engine's checkpointer under its own serialization.
type Store struct {
	dir  string
	opts Options

	mu       sync.Mutex
	seq      uint64   // live segment sequence
	seg      Syncer   // live segment sink (nil after Close)
	lock     *os.File // flock-held LOCK file guarding single-writer access
	segBytes int64    // durable length: advances only after a group's fsync
	failed   error    // sticky: set after a torn append, fails all later commits
	closing  bool     // set by Close before it stops the log writer

	// prepared is the pre-created next segment (see PrepareRotation): the
	// checkpointer pays the file creation and its fsyncs before taking the
	// engine write freeze, so Rotate under the freeze is a pointer swap.
	prepared *preparedSegment

	// Group commit (see group.go): appends queue under mu and the single
	// log-writer goroutine drains the queue one fsync per group.
	queue      []*commitReq
	kick       chan struct{} // cap-1 writer nudge
	writerStop chan struct{}
	writerDone chan struct{}
}

// preparedSegment is a created-and-synced segment awaiting Rotate.
type preparedSegment struct {
	seq  uint64
	sink Syncer
}

const (
	segPrefix  = "wal-"
	segSuffix  = ".log"
	ckptPrefix = "checkpoint-"
	ckptSuffix = ".ckpt"
	tmpSuffix  = ".tmp"
)

func segName(seq uint64) string { return fmt.Sprintf("%s%016x%s", segPrefix, seq, segSuffix) }

func ckptName(seq uint64) string { return fmt.Sprintf("%s%016x%s", ckptPrefix, seq, ckptSuffix) }

func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	v, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 16, 64)
	return v, err == nil
}

// Open opens (or initializes) a durability directory and recovers its
// contents: the newest checkpoint is decoded, WAL segments at or after its
// sequence are replayed in order, a torn tail on the live segment is
// truncated away, and the live segment is reopened for appending.
// Corruption anywhere — a damaged checkpoint, a checksum-failed record, a
// torn record that is not at the very end of the log — aborts with an
// error matching ErrCorrupt: the store never guesses past damage.
func Open(dir string, opts Options) (*Store, *Recovered, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	// Single-writer guard: two processes appending to one log would
	// interleave frames and corrupt it. The lock dies with its holder, so
	// a crashed process never blocks recovery (see lock_unix.go).
	lock, err := lockDir(filepath.Join(dir, "LOCK"))
	if err != nil {
		return nil, nil, err
	}
	st, rec, err := openLocked(dir, opts)
	if err != nil {
		lock.Close()
		return nil, nil, err
	}
	st.lock = lock
	return st, rec, nil
}

// openLocked performs the recovery scan and opens the live segment; the
// caller holds the directory flock.
func openLocked(dir string, opts Options) (*Store, *Recovered, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var segSeqs, ckptSeqs []uint64
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, tmpSuffix) {
			// A crashed checkpoint write; it was never renamed into place,
			// so it holds nothing committed.
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if seq, ok := parseSeq(name, segPrefix, segSuffix); ok {
			segSeqs = append(segSeqs, seq)
		}
		if seq, ok := parseSeq(name, ckptPrefix, ckptSuffix); ok {
			ckptSeqs = append(ckptSeqs, seq)
		}
	}
	sort.Slice(segSeqs, func(i, j int) bool { return segSeqs[i] < segSeqs[j] })
	sort.Slice(ckptSeqs, func(i, j int) bool { return ckptSeqs[i] < ckptSeqs[j] })

	rec := &Recovered{}
	var base uint64 // replay segments with seq ≥ base
	if n := len(ckptSeqs); n > 0 {
		base = ckptSeqs[n-1]
		path := filepath.Join(dir, ckptName(base))
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		ck, err := DecodeCheckpoint(data, path)
		if err != nil {
			return nil, nil, err
		}
		// The encoded sequence must agree with the filename the replay
		// base is derived from; a mislabeled checkpoint would silently
		// shift the base and skip committed records.
		if ck.Seq != base {
			return nil, nil, &CorruptError{Path: path,
				Reason: fmt.Sprintf("checkpoint encodes sequence %d, file named %d", ck.Seq, base)}
		}
		rec.Checkpoint = ck
	}

	live := base
	if live == 0 {
		live = 1
	}
	replay := segSeqs[:0:0]
	for _, s := range segSeqs {
		if s >= base {
			replay = append(replay, s)
		}
	}
	// Segments must run contiguously from the recovery start — the
	// checkpoint's sequence (rotation creates that segment before the
	// checkpoint can exist), or segment 1 for a checkpoint-less log. A
	// missing segment means committed records are gone: damage, not a tail.
	if len(replay) > 0 && replay[0] != live {
		return nil, nil, &CorruptError{Path: dir,
			Reason: fmt.Sprintf("first WAL segment is %d, expected %d", replay[0], live)}
	}
	if rec.Checkpoint != nil && len(replay) == 0 {
		return nil, nil, &CorruptError{Path: dir,
			Reason: fmt.Sprintf("checkpoint %d present but its WAL segment is missing", base)}
	}
	// Phase 1: parse every candidate segment. Damage classification needs
	// the whole picture — a torn tail is judged against what FOLLOWS it.
	type segScan struct {
		seq     uint64
		path    string
		recs    []Record
		goodLen int64
		err     error
	}
	scans := make([]segScan, 0, len(replay))
	for i, s := range replay {
		if i > 0 && s != replay[i-1]+1 {
			return nil, nil, &CorruptError{Path: dir,
				Reason: fmt.Sprintf("missing WAL segment between %d and %d", replay[i-1], s)}
		}
		path := filepath.Join(dir, segName(s))
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		seq, recs, goodLen, rerr := ReadSegment(data, path)
		if rerr == nil && seq != s {
			rerr = &CorruptError{Path: path,
				Reason: fmt.Sprintf("segment header sequence %d, file named %d", seq, s)}
		}
		scans = append(scans, segScan{seq: s, path: path, recs: recs, goodLen: goodLen, err: rerr})
	}

	// Phase 2: accept records up to the first damage. Torn damage is crash
	// residue — recoverable by truncation — if and only if no record was
	// ever committed after it: every later segment must be record-free.
	// (Rotation runs under the engine write freeze, so a crash mid-append
	// can legitimately leave a torn segment followed by the header-only
	// next segment PrepareRotation pre-created — but never by committed
	// records.) Record-free later segments are deleted with the tear; any
	// other shape is corruption the store must not guess past.
	for i, sc := range scans {
		if sc.err == nil {
			rec.Records = append(rec.Records, sc.recs...)
			live = sc.seq
			continue
		}
		var ce *CorruptError
		if !errors.As(sc.err, &ce) || !ce.Torn {
			return nil, nil, sc.err
		}
		for _, later := range scans[i+1:] {
			if len(later.recs) > 0 {
				return nil, nil, sc.err
			}
		}
		if err := os.Truncate(sc.path, sc.goodLen); err != nil {
			return nil, nil, err
		}
		for _, later := range scans[i+1:] {
			os.Remove(later.path)
		}
		rec.Records = append(rec.Records, sc.recs...)
		rec.Truncated = true
		live = sc.seq
		break
	}

	// Reclaim segments and checkpoints the newest checkpoint superseded
	// (left over from a crash between checkpoint write and cleanup).
	for _, s := range segSeqs {
		if s < base {
			os.Remove(filepath.Join(dir, segName(s)))
		}
	}
	for _, s := range ckptSeqs {
		if s < base {
			os.Remove(filepath.Join(dir, ckptName(s)))
		}
	}

	st := &Store{
		dir:        dir,
		opts:       opts,
		kick:       make(chan struct{}, 1),
		writerStop: make(chan struct{}),
		writerDone: make(chan struct{}),
	}
	if err := st.openSegment(live); err != nil {
		return nil, nil, err
	}
	go st.writerLoop()
	return st, rec, nil
}

// createSegment creates segment seq fresh — truncating any leftover from
// a crashed PrepareRotation, which can only ever be header-only — writes
// and syncs its header, and syncs the directory entry so the new file
// survives power loss.
func (s *Store) createSegment(seq uint64) (Syncer, error) {
	f, err := os.OpenFile(filepath.Join(s.dir, segName(seq)), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	var sink Syncer = f
	if s.opts.WrapSyncer != nil {
		sink = s.opts.WrapSyncer(segName(seq), sink)
	}
	if _, err := sink.Write(segmentHeader(seq)); err != nil {
		sink.Close()
		return nil, err
	}
	if err := s.sync(sink); err != nil {
		sink.Close()
		return nil, err
	}
	s.syncDir()
	return sink, nil
}

// openSegment opens (creating and headering if absent) segment seq for
// appending and makes it the live segment. Caller must guarantee no
// concurrent appends (Open, or Rotate holding mu).
func (s *Store) openSegment(seq uint64) error {
	path := filepath.Join(s.dir, segName(seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	size := info.Size()
	if size > 0 && size < int64(segHeaderLen) {
		// A crash truncated even the header; no record can exist, so the
		// segment restarts empty.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return err
		}
		size = 0
	}
	if _, err := f.Seek(size, 0); err != nil {
		f.Close()
		return err
	}
	var sink Syncer = f
	if s.opts.WrapSyncer != nil {
		sink = s.opts.WrapSyncer(segName(seq), sink)
	}
	if size == 0 {
		if _, err := sink.Write(segmentHeader(seq)); err != nil {
			sink.Close()
			return err
		}
		if err := s.sync(sink); err != nil {
			sink.Close()
			return err
		}
		// The new file's directory entry must be durable too, or power
		// loss could drop the whole segment — and with it every fsynced
		// commit it will hold — without tripping the contiguity check.
		s.syncDir()
		size = int64(segHeaderLen)
	}
	s.seq, s.seg, s.segBytes = seq, sink, size
	return nil
}

func (s *Store) sync(sink Syncer) error {
	if s.opts.NoSync {
		return nil
	}
	return sink.Sync()
}

// append frames payload as one record and blocks until its group commit
// resolves (see group.go): the record is enqueued for the log writer,
// which writes every queued frame and issues one fsync for the group. A
// failed group is sticky: the segment may now hold a torn record, so
// every later append fails too — durability is gone and the engine must
// surface errors rather than keep committing. The tail is additionally
// truncated back to the group's start: a record whose fsync failed was
// reported to the caller as NOT committed (and rolled back in memory), so
// it must not be allowed to linger on disk and resurrect as committed on
// the next open.
func (s *Store) append(payload []byte) error {
	return s.beginAppend(payload).Wait()
}

// truncateTailLocked best-effort removes the bytes of a failed append so
// the record the caller was told did NOT commit cannot reappear after a
// restart. If the truncate itself fails the store is already sticky-
// failed, and recovery's torn-tail handling (or the checksum) is the
// remaining line of defense.
func (s *Store) truncateTailLocked() {
	os.Truncate(filepath.Join(s.dir, segName(s.seq)), s.segBytes)
}

// AppendBatch logs one committed atomic batch (a coalesced change feed)
// and syncs it to disk before returning. It satisfies the engine's commit
// log interface.
func (s *Store) AppendBatch(feed []storage.TableChange) error {
	return s.append(encodeBatch(feed))
}

// AppendDDL logs one schema statement as re-parseable SQL text.
func (s *Store) AppendDDL(stmt string) error {
	return s.append(encodeDDL(stmt))
}

// AppendConstraint logs one registered integrity constraint.
func (s *Store) AppendConstraint(c constraint.Constraint) error {
	payload, err := encodeConstraintRecord(c)
	if err != nil {
		return err
	}
	return s.append(payload)
}

// SegmentBytes reports the live segment's size; the checkpointer compares
// it against its rotation threshold.
func (s *Store) SegmentBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.segBytes
}

// Seq returns the live segment sequence number.
func (s *Store) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// PrepareRotation creates, headers, and syncs the next segment ahead of
// time, so the Rotate inside the checkpoint's write freeze is a cheap
// pointer swap instead of file creation plus fsyncs. Idempotent until the
// prepared segment is consumed; safe to skip entirely (Rotate falls back
// to creating the segment inline).
func (s *Store) PrepareRotation() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seg == nil {
		return errors.New("wal: store is closed")
	}
	if s.prepared != nil {
		return nil
	}
	sink, err := s.createSegment(s.seq + 1)
	if err != nil {
		return err
	}
	s.prepared = &preparedSegment{seq: s.seq + 1, sink: sink}
	return nil
}

// Rotate seals the live segment and starts a fresh one, returning the new
// sequence number. The caller must hold the engine write freeze so no
// commit can land between the seal and the snapshot the upcoming
// checkpoint serializes. On error the old segment stays live.
func (s *Store) Rotate() (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seg == nil {
		return 0, errors.New("wal: store is closed")
	}
	if s.failed != nil {
		return 0, fmt.Errorf("wal: log failed earlier: %w", s.failed)
	}
	next := s.prepared
	s.prepared = nil
	if next == nil || next.seq != s.seq+1 {
		if next != nil {
			next.sink.Close()
		}
		sink, err := s.createSegment(s.seq + 1)
		if err != nil {
			return 0, err
		}
		next = &preparedSegment{seq: s.seq + 1, sink: sink}
	}
	s.seg.Close()
	s.seq, s.seg, s.segBytes = next.seq, next.sink, int64(segHeaderLen)
	return s.seq, nil
}

// WriteCheckpoint durably installs ck (write to a temporary, fsync,
// rename) and then reclaims the segments and checkpoints it supersedes.
// ck.Seq must be a sequence Rotate returned; records in segments ≥ ck.Seq
// stay live.
func (s *Store) WriteCheckpoint(ck *Checkpoint) error {
	data, err := EncodeCheckpoint(ck)
	if err != nil {
		return err
	}
	final := filepath.Join(s.dir, ckptName(ck.Seq))
	tmp := final + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	var sink Syncer = f
	if s.opts.WrapSyncer != nil {
		sink = s.opts.WrapSyncer(filepath.Base(tmp), sink)
	}
	if _, err := sink.Write(data); err != nil {
		sink.Close()
		os.Remove(tmp)
		return err
	}
	if err := s.sync(sink); err != nil {
		sink.Close()
		os.Remove(tmp)
		return err
	}
	if err := sink.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	s.syncDir()
	// Everything before the checkpoint is now subsumed; reclaim it. A
	// crash mid-cleanup only leaves extra files for the next Open to drop.
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil // the checkpoint is durable; cleanup is best-effort
	}
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), segPrefix, segSuffix); ok && seq < ck.Seq {
			os.Remove(filepath.Join(s.dir, e.Name()))
		}
		if seq, ok := parseSeq(e.Name(), ckptPrefix, ckptSuffix); ok && seq < ck.Seq {
			os.Remove(filepath.Join(s.dir, e.Name()))
		}
	}
	return nil
}

// syncDir fsyncs the directory so renames survive power loss; best-effort
// because not every platform supports directory fsync.
func (s *Store) syncDir() {
	if s.opts.NoSync {
		return
	}
	if d, err := os.Open(s.dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// Close stops the log writer, flushes and seals the live segment, and
// releases the directory lock. The flush is what makes a CLEAN shutdown
// durable in NoSync mode — commits there live in the page cache until
// this point; in sync mode it is a no-op barrier. Appends still queued or
// racing Close fail with "store is closed": they were never acked, so no
// committed state is lost. The store must not be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.seg == nil || s.closing {
		s.mu.Unlock()
		return nil
	}
	s.closing = true
	s.mu.Unlock()
	close(s.writerStop)
	<-s.writerDone

	s.mu.Lock()
	defer s.mu.Unlock()
	s.failQueuedLocked(errStoreClosed)
	var err error
	if s.failed == nil {
		err = s.seg.Sync()
	}
	if cerr := s.seg.Close(); err == nil {
		err = cerr
	}
	if d, derr := os.Open(s.dir); derr == nil {
		d.Sync()
		d.Close()
	}
	s.seg = nil
	if s.prepared != nil {
		s.prepared.sink.Close()
		s.prepared = nil
	}
	if s.lock != nil {
		s.lock.Close() // releases the flock
		s.lock = nil
	}
	return err
}
