package wal

import (
	"errors"
	"sync"
)

// ErrInjectedCrash is the error a CrashInjector-wrapped sink returns once
// its byte budget is exhausted: the simulated machine is "down", so every
// later write and sync fails too.
var ErrInjectedCrash = errors.New("wal: injected crash")

// CrashInjector simulates a crash at an exact byte position in the durable
// write stream. It wraps every sink the store opens (plug Wrap into
// Options.WrapSyncer); writes pass through until the shared budget is
// exhausted, the write that crosses the budget is cut mid-buffer — leaving
// a torn record on disk, exactly like power loss under a real append — and
// everything after returns ErrInjectedCrash.
//
// The budget is shared across all wrapped files (segments and checkpoint
// temporaries), so one injector sweeps a whole workload's write stream:
// running the same deterministic workload under increasing budgets crashes
// it at every byte boundary the log ever passes through.
type CrashInjector struct {
	mu      sync.Mutex
	budget  int64
	tripped bool
	written int64
}

// NewCrashInjector returns an injector that lets budget bytes through
// before cutting the stream.
func NewCrashInjector(budget int64) *CrashInjector {
	return &CrashInjector{budget: budget}
}

// Wrap wraps one sink; it matches the Options.WrapSyncer signature.
func (ci *CrashInjector) Wrap(_ string, s Syncer) Syncer {
	return &crashSyncer{ci: ci, under: s}
}

// Tripped reports whether the simulated crash has happened.
func (ci *CrashInjector) Tripped() bool {
	ci.mu.Lock()
	defer ci.mu.Unlock()
	return ci.tripped
}

// Written reports the bytes let through so far; a run with an effectively
// unlimited budget uses it to learn the workload's total write volume.
func (ci *CrashInjector) Written() int64 {
	ci.mu.Lock()
	defer ci.mu.Unlock()
	return ci.written
}

type crashSyncer struct {
	ci    *CrashInjector
	under Syncer
}

func (cs *crashSyncer) Write(p []byte) (int, error) {
	ci := cs.ci
	ci.mu.Lock()
	if ci.tripped {
		ci.mu.Unlock()
		return 0, ErrInjectedCrash
	}
	n := int64(len(p))
	if n > ci.budget {
		n = ci.budget
		ci.tripped = true
	}
	ci.budget -= n
	ci.written += n
	ci.mu.Unlock()
	if n > 0 {
		if w, err := cs.under.Write(p[:n]); err != nil {
			return w, err
		}
	}
	if int(n) < len(p) {
		return int(n), ErrInjectedCrash
	}
	return int(n), nil
}

func (cs *crashSyncer) Sync() error {
	if cs.ci.Tripped() {
		return ErrInjectedCrash
	}
	return cs.under.Sync()
}

func (cs *crashSyncer) Close() error { return cs.under.Close() }
