//go:build unix

package wal

import (
	"fmt"
	"os"
	"syscall"
)

// lockDir takes the single-writer guard on a durability directory: an
// exclusive flock on its LOCK file. The lock is released by Close — or by
// the OS when the holding process dies, so a crash never blocks recovery.
func lockDir(path string) (*os.File, error) {
	lock, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(lock.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		lock.Close()
		return nil, fmt.Errorf("wal: %s is held by another process: %w", path, err)
	}
	return lock, nil
}
