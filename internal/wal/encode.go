package wal

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"

	"hippo/internal/constraint"
	"hippo/internal/storage"
	"hippo/internal/value"
)

// The binary vocabulary shared by record payloads and checkpoints:
// unsigned varints for counts and ids, length-prefixed strings, and typed
// scalar values (kind byte followed by a kind-specific body). Decoding is
// defensive throughout — every length is bounds-checked against the
// remaining input — because a CRC-valid payload from a newer or buggy
// writer must fail with an error, never a panic.

func putUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

func putString(dst []byte, s string) []byte {
	dst = putUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func putValue(dst []byte, v value.Value) []byte {
	dst = append(dst, byte(v.K))
	switch v.K {
	case value.KindInt:
		dst = binary.AppendVarint(dst, v.I)
	case value.KindFloat:
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v.F))
		dst = append(dst, b[:]...)
	case value.KindText:
		dst = putString(dst, v.S)
	case value.KindBool:
		if v.B {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	}
	return dst
}

func putTuple(dst []byte, t value.Tuple) []byte {
	dst = putUvarint(dst, uint64(len(t)))
	for _, v := range t {
		dst = putValue(dst, v)
	}
	return dst
}

// decoder consumes a payload front to back, latching the first error.
type decoder struct {
	data []byte
	off  int
	err  error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		d.fail("bad uvarint at %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		d.fail("bad varint at %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.data) {
		d.fail("unexpected end of payload at %d", d.off)
		return 0
	}
	b := d.data[d.off]
	d.off++
	return b
}

func (d *decoder) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.data) {
		d.fail("short payload: need %d bytes at %d of %d", n, d.off, len(d.data))
		return nil
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.data)-d.off) {
		d.fail("string length %d exceeds payload", n)
		return ""
	}
	return string(d.bytes(int(n)))
}

func (d *decoder) value() value.Value {
	switch k := value.Kind(d.byte()); k {
	case value.KindNull:
		return value.Null()
	case value.KindInt:
		return value.Int(d.varint())
	case value.KindFloat:
		b := d.bytes(8)
		if d.err != nil {
			return value.Null()
		}
		return value.Float(math.Float64frombits(binary.LittleEndian.Uint64(b)))
	case value.KindText:
		return value.Text(d.string())
	case value.KindBool:
		return value.Bool(d.byte() != 0)
	default:
		d.fail("unknown value kind %d", k)
		return value.Null()
	}
}

func (d *decoder) tuple() value.Tuple {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.data)-d.off) { // each value takes ≥1 byte
		d.fail("tuple arity %d exceeds payload", n)
		return nil
	}
	t := make(value.Tuple, n)
	for i := range t {
		t[i] = d.value()
	}
	return t
}

// encodeBatch renders a RecordBatch payload from a coalesced change feed.
// Delete changes carry only their RowID: replay tombstones the row in
// place, so logging the deleted tuple would pay fsync'd bytes per commit
// for data recovery never reads (decoded delete records have a nil
// Tuple).
func encodeBatch(feed []storage.TableChange) []byte {
	dst := []byte{byte(RecordBatch)}
	dst = putUvarint(dst, uint64(len(feed)))
	for _, tc := range feed {
		dst = putString(dst, tc.Table)
		dst = append(dst, byte(tc.Change.Kind))
		dst = putUvarint(dst, uint64(tc.Change.Row))
		if tc.Change.Kind == storage.ChangeInsert {
			dst = putTuple(dst, tc.Change.Tuple)
		}
	}
	return dst
}

// encodeDDL renders a RecordDDL payload from re-parseable SQL text.
func encodeDDL(stmt string) []byte {
	dst := []byte{byte(RecordDDL)}
	return putString(dst, stmt)
}

// encodeConstraintRecord renders a RecordConstraint payload.
func encodeConstraintRecord(c constraint.Constraint) ([]byte, error) {
	spec, err := EncodeConstraint(c)
	if err != nil {
		return nil, err
	}
	dst := []byte{byte(RecordConstraint)}
	return putString(dst, spec), nil
}

// decodeRecord parses a record payload (kind byte + body).
func decodeRecord(payload []byte) (Record, error) {
	d := &decoder{data: payload}
	kind := RecordKind(d.byte())
	var rec Record
	rec.Kind = kind
	switch kind {
	case RecordBatch:
		n := d.uvarint()
		if d.err == nil && n > uint64(len(payload)) {
			d.fail("batch count %d exceeds payload", n)
		}
		for i := uint64(0); i < n && d.err == nil; i++ {
			table := d.string()
			ck := storage.ChangeKind(d.byte())
			if d.err == nil && ck != storage.ChangeInsert && ck != storage.ChangeDelete {
				d.fail("unknown change kind %d", ck)
			}
			row := d.uvarint()
			var tuple value.Tuple
			if ck == storage.ChangeInsert {
				tuple = d.tuple()
			}
			if d.err != nil {
				break
			}
			rec.Batch = append(rec.Batch, storage.TableChange{
				Table:  table,
				Change: storage.Change{Kind: ck, Row: storage.RowID(row), Tuple: tuple},
			})
		}
	case RecordDDL:
		rec.Stmt = d.string()
	case RecordConstraint:
		spec := d.string()
		if d.err == nil {
			c, err := DecodeConstraint(spec)
			if err != nil {
				return Record{}, err
			}
			rec.Constraint = c
		}
	default:
		return Record{}, fmt.Errorf("wal: unknown record kind %d", kind)
	}
	if d.err != nil {
		return Record{}, d.err
	}
	if d.off != len(payload) {
		return Record{}, fmt.Errorf("wal: %d trailing bytes after %s record", len(payload)-d.off, kind)
	}
	return rec, nil
}

// Constraint specs are logged as tagged text using the same grammars the
// interactive shell accepts, so a spec in the log is exactly what a user
// could have typed. Fields are separated by the unit separator (0x1f),
// which cannot appear in identifiers.
const specSep = "\x1f"

// EncodeConstraint renders a constraint as its durable spec string.
// Exclusion constraints are lowered to their denial form first; constraint
// types unknown to this package are rejected rather than silently dropped.
func EncodeConstraint(c constraint.Constraint) (string, error) {
	switch t := c.(type) {
	case constraint.FD:
		return strings.Join([]string{"fd", t.Rel,
			strings.Join(t.LHS, ","), strings.Join(t.RHS, ",")}, specSep), nil
	case constraint.Key:
		return strings.Join([]string{"key", t.Rel, strings.Join(t.Cols, ",")}, specSep), nil
	case constraint.Denial:
		return "denial" + specSep + denialSpec(t), nil
	case constraint.Exclusion:
		d, err := t.Denial(nil)
		if err != nil {
			return "", err
		}
		return "denial" + specSep + denialSpec(d), nil
	default:
		return "", fmt.Errorf("wal: constraint type %T is not serializable", c)
	}
}

// denialSpec renders a denial in the "atoms WHERE cond" grammar of
// constraint.ParseDenial.
func denialSpec(d constraint.Denial) string {
	return strings.TrimPrefix(d.String(), "FORBID ")
}

// DecodeConstraint parses a spec produced by EncodeConstraint.
func DecodeConstraint(spec string) (constraint.Constraint, error) {
	parts := strings.Split(spec, specSep)
	switch parts[0] {
	case "fd":
		if len(parts) != 4 {
			return nil, fmt.Errorf("wal: malformed fd spec %q", spec)
		}
		return constraint.ParseFD(parts[1] + ": " + parts[2] + " -> " + parts[3])
	case "key":
		if len(parts) != 3 {
			return nil, fmt.Errorf("wal: malformed key spec %q", spec)
		}
		return constraint.Key{Rel: parts[1], Cols: strings.Split(parts[2], ",")}, nil
	case "denial":
		if len(parts) != 2 {
			return nil, fmt.Errorf("wal: malformed denial spec %q", spec)
		}
		return constraint.ParseDenial(parts[1])
	default:
		return nil, fmt.Errorf("wal: unknown constraint spec kind %q", parts[0])
	}
}
