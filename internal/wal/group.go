package wal

import (
	"errors"
	"fmt"
	"sync"

	"hippo/internal/storage"
)

// Group commit: concurrent committers enqueue their framed record and
// block on a Ticket; a single log-writer goroutine drains the queue,
// writes every queued frame in one buffer, and issues ONE fsync for the
// whole group, acking all waiters at once. A lone committer pays exactly
// the old append+fsync cost (a group of one); N concurrent committers
// share one fsync instead of paying N.
//
// Failure is all-or-nothing per group: if the group's write or fsync
// fails, the store turns sticky-failed, the segment is truncated back to
// the group's start offset — so no commit that was reported failed can
// resurrect as committed after a restart — and every waiter in the group
// receives the error. Queue order is ack order, so a caller that
// enqueues records in commit order observes WAL order == commit order.

// commitReq is one enqueued append awaiting the log writer.
type commitReq struct {
	payload []byte
	done    chan error
}

// Ticket is a pending group-commit append. Wait blocks until the group's
// fsync resolves and reports whether the record is durable; it is
// idempotent (repeated calls return the same verdict).
type Ticket struct {
	once sync.Once
	err  error
	done chan error
}

// Wait blocks until the append's group commits (or fails) and returns
// the outcome. A nil error means the record — and every record queued
// before it — is durably on disk.
func (t *Ticket) Wait() error {
	t.once.Do(func() { t.err = <-t.done })
	return t.err
}

var errStoreClosed = errors.New("wal: store is closed")

// beginAppend enqueues one framed payload for the log writer and returns
// its ticket. The sticky-failure and closed checks happen both here (fast
// fail) and again when the writer picks the group up.
func (s *Store) beginAppend(payload []byte) *Ticket {
	t := &Ticket{done: make(chan error, 1)}
	s.mu.Lock()
	if s.seg == nil || s.closing {
		s.mu.Unlock()
		t.done <- errStoreClosed
		return t
	}
	if s.failed != nil {
		err := fmt.Errorf("wal: log failed earlier: %w", s.failed)
		s.mu.Unlock()
		t.done <- err
		return t
	}
	s.queue = append(s.queue, &commitReq{payload: payload, done: t.done})
	s.mu.Unlock()
	select {
	case s.kick <- struct{}{}:
	default: // a wake-up is already pending
	}
	return t
}

// BeginAppendBatch enqueues one committed atomic batch for group commit
// and returns immediately; the caller waits on the ticket after releasing
// whatever lock ordered the enqueue. It satisfies the engine's optional
// group-commit log interface: the engine enqueues under its write
// sequencer (fixing WAL order == commit order) and waits outside it, so
// concurrent committers coalesce into shared fsyncs.
func (s *Store) BeginAppendBatch(feed []storage.TableChange) *Ticket {
	return s.beginAppend(encodeBatch(feed))
}

// writerLoop is the single log writer: it drains every queued request as
// one group per wake-up. On shutdown any stragglers still queued are
// failed — their committers were never acked, so nothing is lost.
func (s *Store) writerLoop() {
	defer close(s.writerDone)
	for {
		select {
		case <-s.writerStop:
			s.mu.Lock()
			s.failQueuedLocked(errStoreClosed)
			s.mu.Unlock()
			return
		case <-s.kick:
		}
		s.commitQueued()
	}
}

// commitQueued writes and syncs everything queued as one group. The
// store lock is released for the write+fsync window: committers must be
// able to enqueue the NEXT group while this one's fsync is in flight —
// that overlap is the entire point of group commit (holding mu here would
// serialize every commit one fsync apart). The window is safe because
// only this goroutine writes the segment, and everything else that
// touches it (rotation, checkpointing, Close's seal) first drains the
// commit pipeline, so no group can be in flight when they run.
func (s *Store) commitQueued() {
	s.mu.Lock()
	batch := s.queue
	s.queue = nil
	if len(batch) == 0 {
		s.mu.Unlock()
		return
	}
	if s.seg == nil || s.closing {
		s.mu.Unlock()
		ackAll(batch, errStoreClosed)
		return
	}
	if s.failed != nil {
		err := fmt.Errorf("wal: log failed earlier: %w", s.failed)
		s.mu.Unlock()
		ackAll(batch, err)
		return
	}
	size := 0
	for _, r := range batch {
		size += frameHeaderLen + len(r.payload)
	}
	buf := make([]byte, 0, size)
	for _, r := range batch {
		buf = appendFrame(buf, r.payload)
	}
	seg := s.seg
	s.mu.Unlock()

	_, err := seg.Write(buf)
	if err == nil {
		err = s.sync(seg)
	}

	s.mu.Lock()
	if err != nil {
		s.failGroupLocked(batch, err)
		s.mu.Unlock()
		return
	}
	// The group is durable: advance the segment length and ack every
	// waiter. segBytes stays at the group's start until this point, so a
	// failed group truncates as a unit (see failGroupLocked).
	s.segBytes += int64(len(buf))
	s.mu.Unlock()
	ackAll(batch, nil)
}

// failGroupLocked handles a failed group write or fsync: the store turns
// sticky-failed, the segment is truncated back to the group's start —
// every commit in the group was reported failed, so none of its bytes may
// survive to resurrect on the next open — and all waiters get the error.
func (s *Store) failGroupLocked(batch []*commitReq, err error) {
	s.failed = err
	s.truncateTailLocked()
	ackAll(batch, err)
}

// failQueuedLocked acks every still-queued request with err; used on
// shutdown, when the writer will never process them.
func (s *Store) failQueuedLocked(err error) {
	ackAll(s.queue, err)
	s.queue = nil
}

func ackAll(batch []*commitReq, err error) {
	for _, r := range batch {
		r.done <- err
	}
}
