// Package wal implements the durability layer beneath the Hippo engine: a
// length-prefixed, CRC32C-checksummed, fsync-on-commit write-ahead log of
// committed change batches and DDL/constraint statements, plus serialized
// full-state checkpoints and the segment store that ties them together.
//
// # Record framing
//
// A log segment is a 17-byte header (magic, format version, segment
// sequence number) followed by records. Each record is framed as
//
//	uint32 LE  payload length
//	uint32 LE  CRC32C (Castagnoli) of the payload
//	payload    kind byte + kind-specific body
//
// The unit of logging is the unit of atomicity: one committed group-commit
// batch (its coalesced change feed) is exactly one record, appended and
// fsynced while the engine still holds the write sequencer, so a batch is
// atomic on disk precisely when it is atomic in published query views.
//
// # Damage model
//
// Reading distinguishes two failure shapes, both reported as a typed
// *CorruptError matching ErrCorrupt:
//
//   - a torn tail (Torn=true): damage whose frame extends to the end of
//     the data — a truncated length prefix, a payload shorter than its
//     declared length, or a final record whose full length is present
//     but whose checksum fails. All are indistinguishable from the
//     residue of a crash mid-append (a power loss can persist the frame
//     header and the file size without all payload pages); recovery
//     truncates the tail and keeps everything before it, as journaling
//     systems conventionally do.
//   - corruption (Torn=false): a checksum or framing failure followed by
//     more log — damage mid-history cannot be crash residue, because
//     appends never wrote past an unsynced record. Recovery must not
//     guess past it; the store surfaces the error instead of silently
//     skipping records.
//
// In both cases no record at or after the damage is ever returned, so a
// committed prefix is all a reader can observe.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"hippo/internal/constraint"
	"hippo/internal/storage"
)

// ErrCorrupt marks unreadable WAL or checkpoint data. Every damage report
// from this package matches it under errors.Is; inspect the wrapped
// *CorruptError for the location and whether the damage is a recoverable
// torn tail.
var ErrCorrupt = errors.New("wal: corrupt")

// CorruptError describes damaged log or checkpoint data: where it was
// found and whether it is a torn tail (trailing incomplete record — the
// normal residue of a crash, recoverable by truncation) or genuine
// corruption (checksum mismatch on a complete record).
type CorruptError struct {
	Path   string // file the damage was found in ("" for in-memory readers)
	Offset int64  // byte offset of the damaged record's frame
	Reason string
	Torn   bool // damage extends to end of data; truncating recovers
}

// Error formats the damage report.
func (e *CorruptError) Error() string {
	kind := "corrupt"
	if e.Torn {
		kind = "torn"
	}
	if e.Path != "" {
		return fmt.Sprintf("wal: %s record in %s at offset %d: %s", kind, e.Path, e.Offset, e.Reason)
	}
	return fmt.Sprintf("wal: %s record at offset %d: %s", kind, e.Offset, e.Reason)
}

// Is matches ErrCorrupt so callers can errors.Is without naming the
// concrete type.
func (e *CorruptError) Is(target error) bool { return target == ErrCorrupt }

// Syncer is the sink a log writes records through: an io.Writer with the
// durability barrier the commit path relies on. *os.File satisfies it;
// tests inject wrappers (see CrashInjector) to cut writes mid-record and
// simulate crashes at arbitrary byte positions.
type Syncer interface {
	io.Writer
	// Sync forces written data to stable storage (fsync).
	Sync() error
	// Close releases the sink. Data must have been Synced to be durable.
	Close() error
}

// RecordKind discriminates the logged record types.
type RecordKind uint8

const (
	// RecordBatch is one committed atomic batch: the coalesced change feed
	// of a group commit (or of a single DML statement).
	RecordBatch RecordKind = iota + 1
	// RecordDDL is one schema statement (CREATE TABLE / DROP TABLE /
	// CREATE INDEX), stored as re-parseable SQL text.
	RecordDDL
	// RecordConstraint is one registered integrity constraint.
	RecordConstraint
)

// String names the record kind.
func (k RecordKind) String() string {
	switch k {
	case RecordBatch:
		return "batch"
	case RecordDDL:
		return "ddl"
	case RecordConstraint:
		return "constraint"
	default:
		return fmt.Sprintf("RecordKind(%d)", uint8(k))
	}
}

// Record is one decoded WAL record. Exactly the field matching Kind is
// populated. Delete changes in a Batch carry a nil Tuple: replay
// tombstones the row by id, so the deleted values are never logged.
type Record struct {
	Kind       RecordKind
	Batch      []storage.TableChange // RecordBatch
	Stmt       string                // RecordDDL
	Constraint constraint.Constraint // RecordConstraint
}

const (
	// segment header: 8-byte magic, 1-byte version, 8-byte LE sequence.
	segMagic     = "HIPPOWAL"
	segVersion   = 1
	segHeaderLen = len(segMagic) + 1 + 8

	frameHeaderLen = 8 // uint32 length + uint32 crc

	// maxRecordLen bounds a single record payload; a length prefix past it
	// is structurally impossible and treated as corruption rather than an
	// attempt to allocate garbage.
	maxRecordLen = 1 << 30
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendFrame appends the record framing (length, CRC32C, payload) for
// payload to dst and returns the extended slice.
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// segmentHeader renders the header for a segment with the given sequence.
func segmentHeader(seq uint64) []byte {
	hdr := make([]byte, 0, segHeaderLen)
	hdr = append(hdr, segMagic...)
	hdr = append(hdr, segVersion)
	var s [8]byte
	binary.LittleEndian.PutUint64(s[:], seq)
	return append(hdr, s[:]...)
}

// parseSegmentHeader validates a segment header and returns its sequence.
func parseSegmentHeader(data []byte, path string) (uint64, error) {
	if len(data) < segHeaderLen {
		return 0, &CorruptError{Path: path, Offset: 0, Reason: "short segment header", Torn: true}
	}
	if string(data[:len(segMagic)]) != segMagic {
		return 0, &CorruptError{Path: path, Offset: 0, Reason: "bad segment magic"}
	}
	if v := data[len(segMagic)]; v != segVersion {
		return 0, &CorruptError{Path: path, Offset: int64(len(segMagic)),
			Reason: fmt.Sprintf("unsupported segment version %d", v)}
	}
	return binary.LittleEndian.Uint64(data[len(segMagic)+1 : segHeaderLen]), nil
}

// ReadSegment decodes a whole WAL segment image. It returns the segment
// sequence, every intact record in order, and the byte length of the good
// prefix (header plus complete records). A non-nil error is always a
// *CorruptError: Torn=true for damage extending to the end of the data —
// crash residue, recoverable by truncating the file to goodLen — and
// Torn=false for checksum or framing damage followed by more log. Records
// at or after the damage are never returned.
func ReadSegment(data []byte, path string) (seq uint64, recs []Record, goodLen int64, err error) {
	seq, err = parseSegmentHeader(data, path)
	if err != nil {
		return 0, nil, 0, err
	}
	off := int64(segHeaderLen)
	for int(off) < len(data) {
		rest := data[off:]
		if len(rest) < frameHeaderLen {
			return seq, recs, off, &CorruptError{Path: path, Offset: off,
				Reason: "truncated length prefix", Torn: true}
		}
		n := binary.LittleEndian.Uint32(rest[0:4])
		// A declared frame reaching past the end of the data is tail
		// damage (a truncated append, or a garbage length field written by
		// a dying machine) — UNLESS an intact record hides inside the
		// claimed span, which proves committed appends followed and the
		// length prefix itself rotted: that is corruption, and truncation
		// would silently destroy those records.
		if int64(n) > int64(len(rest)-frameHeaderLen) {
			return seq, recs, off, &CorruptError{Path: path, Offset: off,
				Reason: fmt.Sprintf("record body truncated (%d of %d bytes)", len(rest)-frameHeaderLen, n),
				Torn:   !containsValidRecord(rest[frameHeaderLen:])}
		}
		if n > maxRecordLen {
			return seq, recs, off, &CorruptError{Path: path, Offset: off,
				Reason: fmt.Sprintf("impossible record length %d", n)}
		}
		payload := rest[frameHeaderLen : frameHeaderLen+int(n)]
		if got, want := crc32.Checksum(payload, crcTable), binary.LittleEndian.Uint32(rest[4:8]); got != want {
			// A checksum-failed FINAL record is crash residue too: power
			// loss can persist the frame header and file size before all
			// payload pages land. Mid-log (more data follows) it is
			// corruption.
			return seq, recs, off, &CorruptError{Path: path, Offset: off,
				Reason: fmt.Sprintf("checksum mismatch (%08x != %08x)", got, want),
				Torn:   frameHeaderLen+int(n) == len(rest)}
		}
		rec, derr := decodeRecord(payload)
		if derr != nil {
			return seq, recs, off, &CorruptError{Path: path, Offset: off,
				Reason: "undecodable payload: " + derr.Error()}
		}
		recs = append(recs, rec)
		off += int64(frameHeaderLen) + int64(n)
	}
	return seq, recs, off, nil
}

// containsValidRecord reports whether any offset of data starts an intact
// CRC-verified record frame. It is the damage classifier's re-sync probe:
// an intact record after a bad length prefix proves committed appends
// followed the damage, so the prefix rotted (corruption) rather than the
// log having ended there (crash residue). The CRC makes a false positive
// on arbitrary garbage astronomically unlikely.
func containsValidRecord(data []byte) bool {
	for off := 0; off+frameHeaderLen < len(data); off++ {
		n := binary.LittleEndian.Uint32(data[off : off+4])
		if n == 0 || int64(n) > int64(len(data)-off-frameHeaderLen) {
			continue
		}
		payload := data[off+frameHeaderLen : off+frameHeaderLen+int(n)]
		if crc32.Checksum(payload, crcTable) == binary.LittleEndian.Uint32(data[off+4:off+8]) {
			return true
		}
	}
	return false
}
