package wal

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"hippo/internal/constraint"
	"hippo/internal/storage"
	"hippo/internal/value"
)

func mustOpen(t *testing.T, dir string, opts Options) (*Store, *Recovered) {
	t.Helper()
	st, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return st, rec
}

func sampleFeed() []storage.TableChange {
	return []storage.TableChange{
		{Table: "emp", Change: storage.Change{Kind: storage.ChangeInsert, Row: 0,
			Tuple: value.Tuple{value.Int(1), value.Text("it's"), value.Float(1.5), value.Bool(true), value.Null()}}},
		{Table: "emp", Change: storage.Change{Kind: storage.ChangeDelete, Row: 7,
			Tuple: value.Tuple{value.Int(-9), value.Text(""), value.Float(-0.25), value.Bool(false), value.Null()}}},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, rec := mustOpen(t, dir, Options{})
	if rec.Checkpoint != nil || len(rec.Records) != 0 || rec.Truncated {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	feed := sampleFeed()
	if err := st.AppendBatch(feed); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendDDL("CREATE TABLE emp (id INT, name TEXT)"); err != nil {
		t.Fatal(err)
	}
	fd := constraint.FD{Rel: "emp", LHS: []string{"id"}, RHS: []string{"name"}}
	if err := st.AppendConstraint(fd); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, rec2 := mustOpen(t, dir, Options{})
	defer st2.Close()
	if rec2.Truncated {
		t.Fatal("clean log reported a truncation")
	}
	if len(rec2.Records) != 3 {
		t.Fatalf("recovered %d records, want 3", len(rec2.Records))
	}
	// Delete changes round-trip without their tuple (replay is by RowID).
	want := make([]storage.TableChange, len(feed))
	copy(want, feed)
	for i := range want {
		if want[i].Change.Kind == storage.ChangeDelete {
			want[i].Change.Tuple = nil
		}
	}
	if got := rec2.Records[0]; got.Kind != RecordBatch || !reflect.DeepEqual(got.Batch, want) {
		t.Fatalf("batch record mismatch: %+v", got)
	}
	if got := rec2.Records[1]; got.Kind != RecordDDL || got.Stmt != "CREATE TABLE emp (id INT, name TEXT)" {
		t.Fatalf("ddl record mismatch: %+v", got)
	}
	if got := rec2.Records[2]; got.Kind != RecordConstraint || !reflect.DeepEqual(got.Constraint, fd) {
		t.Fatalf("constraint record mismatch: %+v", got)
	}
}

func TestConstraintSpecRoundTrip(t *testing.T) {
	den, err := constraint.ParseDenial("emp e1, emp e2 WHERE e1.id = e2.id AND e1.salary <> e2.salary")
	if err != nil {
		t.Fatal(err)
	}
	cases := []constraint.Constraint{
		constraint.FD{Rel: "emp", LHS: []string{"a", "b"}, RHS: []string{"c"}},
		constraint.Key{Rel: "emp", Cols: []string{"id"}},
		den,
	}
	for _, c := range cases {
		spec, err := EncodeConstraint(c)
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		back, err := DecodeConstraint(spec)
		if err != nil {
			t.Fatalf("%v: decode %q: %v", c, spec, err)
		}
		switch c.(type) {
		case constraint.FD, constraint.Key:
			// FD/Key lowering needs a catalog; structural equality suffices.
			if !reflect.DeepEqual(c, back) {
				t.Fatalf("round trip: %#v != %#v", c, back)
			}
		default:
			// Labels may be re-derived; the denial lowering must agree.
			d1, err1 := c.Denial(nil)
			d2, err2 := back.Denial(nil)
			if err1 != nil || err2 != nil {
				t.Fatalf("denial lowering errors: %v / %v", err1, err2)
			}
			d1.Label, d2.Label = "", ""
			if d1.String() != d2.String() {
				t.Fatalf("denial round trip: %s != %s", d1, d2)
			}
		}
	}
	// An exclusion constraint serializes via its denial lowering.
	excl := constraint.Exclusion{
		A: constraint.Atom{Rel: "staff"}, B: constraint.Atom{Rel: "extern"},
	}
	spec, err := EncodeConstraint(excl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeConstraint(spec); err != nil {
		t.Fatalf("decode exclusion spec %q: %v", spec, err)
	}
}

// TestRecoveryTornTailGrid cuts a three-record log at every byte length
// and reopens: recovery must always yield exactly the complete-record
// prefix — never a partial record, never an error — and report Truncated
// exactly when trailing bytes were dropped.
func TestRecoveryTornTailGrid(t *testing.T) {
	master := t.TempDir()
	st, _ := mustOpen(t, master, Options{})
	feeds := [][]storage.TableChange{
		sampleFeed(),
		{{Table: "t2", Change: storage.Change{Kind: storage.ChangeInsert, Row: 3, Tuple: value.Tuple{value.Int(42)}}}},
		sampleFeed()[:1],
	}
	var boundaries []int64
	boundaries = append(boundaries, st.SegmentBytes())
	for _, f := range feeds {
		if err := st.AppendBatch(f); err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, st.SegmentBytes())
	}
	st.Close()
	data, err := os.ReadFile(filepath.Join(master, segName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(data)) != boundaries[len(boundaries)-1] {
		t.Fatalf("segment is %d bytes, expected %d", len(data), boundaries[len(boundaries)-1])
	}
	complete := func(cut int64) int {
		n := 0
		for i := 1; i < len(boundaries); i++ {
			if boundaries[i] <= cut {
				n = i
			}
		}
		return n
	}
	for cut := int64(segHeaderLen); cut <= int64(len(data)); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		st2, rec, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		want := complete(cut)
		if len(rec.Records) != want {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(rec.Records), want)
		}
		atBoundary := cut == boundaries[want]
		if rec.Truncated == atBoundary {
			t.Fatalf("cut %d: Truncated=%v at boundary=%v", cut, rec.Truncated, atBoundary)
		}
		// After truncation the log must accept appends and reopen cleanly.
		if err := st2.AppendDDL("DROP TABLE x"); err != nil {
			t.Fatalf("cut %d: append after truncation: %v", cut, err)
		}
		st2.Close()
		_, rec3, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if len(rec3.Records) != want+1 {
			t.Fatalf("cut %d: reopen recovered %d records, want %d", cut, len(rec3.Records), want+1)
		}
	}
}

// TestRecoveryCorruptBitFlip flips one byte inside a record body: the
// record's checksum no longer matches, so recovery must stop at the damage
// with a typed ErrCorrupt — never skip to the next record.
func TestRecoveryCorruptBitFlip(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir, Options{})
	first := st.SegmentBytes()
	if err := st.AppendBatch(sampleFeed()); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendDDL("DROP TABLE emp"); err != nil {
		t.Fatal(err)
	}
	st.Close()
	path := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[first+frameHeaderLen+2] ^= 0x40 // inside the first record's payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(dir, Options{})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt record: got %v, want ErrCorrupt", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Torn {
		t.Fatalf("want a non-torn CorruptError, got %#v", err)
	}
}

// TestRecoveryCrcFailedTailIsTorn: a final record whose full length is on
// disk but whose checksum fails is indistinguishable from power-loss
// residue (the frame header and file size can land before the payload
// pages), so it must recover by truncation — unlike the same damage
// mid-log, which TestRecoveryCorruptBitFlip pins as ErrCorrupt.
func TestRecoveryCrcFailedTailIsTorn(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir, Options{})
	if err := st.AppendDDL("CREATE TABLE a (x INT)"); err != nil {
		t.Fatal(err)
	}
	boundary := st.SegmentBytes()
	if err := st.AppendDDL("CREATE TABLE b (y INT)"); err != nil {
		t.Fatal(err)
	}
	st.Close()
	path := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[boundary+frameHeaderLen+2] ^= 0x10 // inside the final record's payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, recs, goodLen, rerr := ReadSegment(data, path)
	var ce *CorruptError
	if !errors.As(rerr, &ce) || !ce.Torn {
		t.Fatalf("want torn CorruptError for a CRC-failed tail, got %v", rerr)
	}
	if len(recs) != 1 || goodLen != boundary {
		t.Fatalf("reader kept %d records to %d, want 1 to %d", len(recs), goodLen, boundary)
	}
	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("store must recover a CRC-failed tail: %v", err)
	}
	if !rec.Truncated || len(rec.Records) != 1 {
		t.Fatalf("recovered %d records (truncated=%v), want 1 (true)", len(rec.Records), rec.Truncated)
	}
}

// TestRecoveryRottenLengthPrefixMidLog: a garbage length prefix whose
// claimed frame swallows later committed records must be corruption (the
// re-sync probe finds the intact record inside the span), never a torn
// tail that truncation would silently destroy.
func TestRecoveryRottenLengthPrefixMidLog(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir, Options{})
	first := st.SegmentBytes()
	if err := st.AppendDDL("CREATE TABLE a (x INT)"); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendDDL("CREATE TABLE b (y INT)"); err != nil {
		t.Fatal(err)
	}
	st.Close()
	path := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Rot the first record's length prefix so its claimed frame extends
	// past EOF — hiding the intact second record inside the span.
	data[first+3] |= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(dir, Options{})
	var ce *CorruptError
	if !errors.Is(err, ErrCorrupt) || !errors.As(err, &ce) || ce.Torn {
		t.Fatalf("got %v, want non-torn ErrCorrupt for a rotted mid-log length prefix", err)
	}
}

// TestRecoveryTruncatedLengthPrefixTyped reads a log whose tail cuts into
// a record's length prefix: the low-level reader must report it as a typed
// torn CorruptError (no guessing, no partial record), and the store must
// recover by truncating exactly at the damage.
func TestRecoveryTruncatedLengthPrefixTyped(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir, Options{})
	if err := st.AppendDDL("CREATE TABLE a (x INT)"); err != nil {
		t.Fatal(err)
	}
	boundary := st.SegmentBytes()
	if err := st.AppendDDL("CREATE TABLE b (y INT)"); err != nil {
		t.Fatal(err)
	}
	st.Close()
	path := filepath.Join(dir, segName(1))
	if err := os.Truncate(path, boundary+2); err != nil { // 2 of 4 length bytes
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	_, recs, goodLen, rerr := ReadSegment(data, path)
	var ce *CorruptError
	if !errors.As(rerr, &ce) || !errors.Is(rerr, ErrCorrupt) || !ce.Torn {
		t.Fatalf("want torn CorruptError, got %v", rerr)
	}
	if len(recs) != 1 || goodLen != boundary {
		t.Fatalf("reader kept %d records to offset %d, want 1 record to %d", len(recs), goodLen, boundary)
	}
	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("store must recover a torn tail: %v", err)
	}
	if !rec.Truncated || len(rec.Records) != 1 {
		t.Fatalf("recovered %d records (truncated=%v), want 1 (true)", len(rec.Records), rec.Truncated)
	}
}

func buildCheckpoint() *Checkpoint {
	return &Checkpoint{
		Seq: 2,
		Constraints: []constraint.Constraint{
			constraint.FD{Rel: "emp", LHS: []string{"id"}, RHS: []string{"sal"}},
		},
		Tables: []TableState{{
			Name:    "emp",
			Columns: []ColumnState{{Name: "id", Type: value.KindInt}, {Name: "sal", Type: value.KindInt}},
			Rows: []value.Tuple{
				{value.Int(1), value.Int(100)},
				nil,
				{value.Int(2), value.Int(200)},
			},
			Dead:    []bool{false, true, false},
			Indexes: [][]int{{0}, {0, 1}},
		}},
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	ck := buildCheckpoint()
	data, err := EncodeCheckpoint(ck)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeCheckpoint(data, "test")
	if err != nil {
		t.Fatal(err)
	}
	// Dead slots round-trip as nil rows.
	if !reflect.DeepEqual(ck, back) {
		t.Fatalf("checkpoint round trip:\n%#v\n!=\n%#v", ck, back)
	}
	// Any flipped byte in the framed body must be detected.
	for _, off := range []int{len(ckpMagic) + 1 + frameHeaderLen, len(data) - 1} {
		bad := append([]byte(nil), data...)
		bad[off] ^= 0x01
		if _, err := DecodeCheckpoint(bad, "test"); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: got %v, want ErrCorrupt", off, err)
		}
	}
}

// TestRecoveryCheckpointRotation runs the full checkpoint protocol: log,
// rotate, checkpoint, log more, reopen. Recovery must return the
// checkpoint plus only the post-rotation records, and the superseded
// segment must be gone.
func TestRecoveryCheckpointRotation(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir, Options{})
	if err := st.AppendDDL("CREATE TABLE emp (id INT, sal INT)"); err != nil {
		t.Fatal(err)
	}
	seq, err := st.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 {
		t.Fatalf("rotated to seq %d, want 2", seq)
	}
	ck := buildCheckpoint()
	if err := st.WriteCheckpoint(ck); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendDDL("CREATE TABLE extra (x INT)"); err != nil {
		t.Fatal(err)
	}
	st.Close()
	if _, err := os.Stat(filepath.Join(dir, segName(1))); !os.IsNotExist(err) {
		t.Fatalf("superseded segment 1 still present: %v", err)
	}
	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Checkpoint == nil || rec.Checkpoint.Seq != 2 {
		t.Fatalf("recovered checkpoint %+v", rec.Checkpoint)
	}
	if len(rec.Records) != 1 || rec.Records[0].Stmt != "CREATE TABLE extra (x INT)" {
		t.Fatalf("recovered %d post-checkpoint records: %+v", len(rec.Records), rec.Records)
	}
}

// TestRecoveryStaleCheckpointCorruptTail is the stale-checkpoint-plus-
// longer-WAL damage case: a valid checkpoint exists, the WAL continues
// past it, and a post-checkpoint record is bit-flipped. Recovery must
// refuse with ErrCorrupt rather than silently serving the checkpoint
// without its tail.
func TestRecoveryStaleCheckpointCorruptTail(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir, Options{})
	if _, err := st.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteCheckpoint(buildCheckpoint()); err != nil {
		t.Fatal(err)
	}
	mark := st.SegmentBytes()
	if err := st.AppendDDL("CREATE TABLE extra (x INT)"); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendDDL("CREATE TABLE extra2 (x INT)"); err != nil {
		t.Fatal(err)
	}
	st.Close()
	path := filepath.Join(dir, segName(2))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[mark+frameHeaderLen] ^= 0x08
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(dir, Options{})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}

// TestRecoveryCrashDuringCheckpoint cuts the write stream inside the
// checkpoint temporary: the rename never happens, so reopening must fall
// back to replaying the full WAL (both segments) with no data loss.
func TestRecoveryCrashDuringCheckpoint(t *testing.T) {
	// First learn the volume written up to the checkpoint body.
	probeDir := t.TempDir()
	probe := NewCrashInjector(1 << 40)
	st, _ := mustOpen(t, probeDir, Options{WrapSyncer: probe.Wrap})
	if err := st.AppendDDL("CREATE TABLE emp (id INT, sal INT)"); err != nil {
		t.Fatal(err)
	}
	preCheckpoint := probe.Written()
	if _, err := st.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteCheckpoint(buildCheckpoint()); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Now crash 10 bytes into the checkpoint temporary.
	dir := t.TempDir()
	ci := NewCrashInjector(preCheckpoint + int64(segHeaderLen) + 10)
	st2, _ := mustOpen(t, dir, Options{WrapSyncer: ci.Wrap})
	if err := st2.AppendDDL("CREATE TABLE emp (id INT, sal INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := st2.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := st2.WriteCheckpoint(buildCheckpoint()); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("checkpoint write: got %v, want injected crash", err)
	}
	st2.Close()
	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Checkpoint != nil {
		t.Fatal("torn checkpoint temporary must be invisible")
	}
	if len(rec.Records) != 1 || rec.Records[0].Stmt != "CREATE TABLE emp (id INT, sal INT)" {
		t.Fatalf("recovered records %+v", rec.Records)
	}
}

// TestAppendAfterInjectedCrashIsSticky: once an append fails, later
// appends must fail rather than write records after the damage, and the
// failed append's bytes are truncated away immediately (a record whose
// commit was reported failed must never resurrect), so reopening finds a
// clean, empty log.
func TestAppendAfterInjectedCrashIsSticky(t *testing.T) {
	dir := t.TempDir()
	ci := NewCrashInjector(int64(segHeaderLen) + 5)
	st, _ := mustOpen(t, dir, Options{WrapSyncer: ci.Wrap})
	if err := st.AppendDDL("CREATE TABLE emp (id INT)"); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("got %v, want injected crash", err)
	}
	if err := st.AppendDDL("CREATE TABLE emp (id INT)"); err == nil {
		t.Fatal("append after crash must fail")
	}
	st.Close()
	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 0 || rec.Truncated {
		t.Fatalf("recovered %+v, want clean empty log (writer truncated its own tail)", rec)
	}
}

// TestRecoveryTornTailBeforePreparedSegment covers the crash window the
// checkpointer's segment pre-creation opens: power loss mid-append leaves
// a torn tail on the live segment while the pre-created (header-only)
// next segment already exists. Recovery must truncate the tear and drop
// the empty prepared segment — and still reject the same shape when the
// later segment holds committed records (which only corruption can
// produce, since rotation runs under the write freeze).
func TestRecoveryTornTailBeforePreparedSegment(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir, Options{})
	if err := st.AppendDDL("CREATE TABLE a (x INT)"); err != nil {
		t.Fatal(err)
	}
	boundary := st.SegmentBytes()
	if err := st.AppendDDL("CREATE TABLE b (y INT)"); err != nil {
		t.Fatal(err)
	}
	if err := st.PrepareRotation(); err != nil { // creates header-only wal-2
		t.Fatal(err)
	}
	st.Close()
	if err := os.Truncate(filepath.Join(dir, segName(1)), boundary+3); err != nil {
		t.Fatal(err)
	}
	st2, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("torn tail before a prepared segment must recover: %v", err)
	}
	if !rec.Truncated || len(rec.Records) != 1 || rec.Records[0].Stmt != "CREATE TABLE a (x INT)" {
		t.Fatalf("recovered %+v, want the single intact record with truncation", rec)
	}
	if _, err := os.Stat(filepath.Join(dir, segName(2))); !os.IsNotExist(err) {
		t.Fatalf("empty prepared segment must be dropped with the tear: %v", err)
	}
	// The log must keep working across the repair.
	if err := st2.AppendDDL("CREATE TABLE c (z INT)"); err != nil {
		t.Fatal(err)
	}
	st2.Close()
	_, rec2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec2.Records) != 2 {
		t.Fatalf("reopen recovered %d records, want 2", len(rec2.Records))
	}

	// Adversarial variant: records AFTER the torn segment cannot be crash
	// residue — recovery must refuse.
	dir2 := t.TempDir()
	sa, _ := mustOpen(t, dir2, Options{})
	if err := sa.AppendDDL("CREATE TABLE a (x INT)"); err != nil {
		t.Fatal(err)
	}
	b1 := sa.SegmentBytes()
	if err := sa.AppendDDL("CREATE TABLE b (y INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := sa.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := sa.AppendDDL("CREATE TABLE c (z INT)"); err != nil { // record in wal-2
		t.Fatal(err)
	}
	sa.Close()
	if err := os.Truncate(filepath.Join(dir2, segName(1)), b1+3); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir2, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn mid-history with committed records after it: got %v, want ErrCorrupt", err)
	}
}

// countingSyncer counts Sync calls through the WrapSyncer hook.
type countingSyncer struct {
	under Syncer
	syncs *int
}

func (c *countingSyncer) Write(p []byte) (int, error) { return c.under.Write(p) }
func (c *countingSyncer) Sync() error                 { *c.syncs++; return c.under.Sync() }
func (c *countingSyncer) Close() error                { return c.under.Close() }

// TestNoSyncCloseFlushes: in NoSync mode appends skip fsync, but a clean
// Close must flush the segment so an orderly shutdown is durable.
func TestNoSyncCloseFlushes(t *testing.T) {
	syncs := 0
	st, _ := mustOpen(t, t.TempDir(), Options{
		NoSync:     true,
		WrapSyncer: func(_ string, s Syncer) Syncer { return &countingSyncer{under: s, syncs: &syncs} },
	})
	if err := st.AppendDDL("CREATE TABLE a (x INT)"); err != nil {
		t.Fatal(err)
	}
	if syncs != 0 {
		t.Fatalf("NoSync append fsynced %d times", syncs)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if syncs == 0 {
		t.Fatal("clean Close must flush the segment in NoSync mode")
	}
}

// TestMislabeledCheckpointIsCorrupt: the replay base comes from the
// checkpoint filename, so a file whose encoded sequence disagrees (a
// backup/restore mishap) would silently shift the base and skip committed
// records; Open must refuse instead.
func TestMislabeledCheckpointIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir, Options{})
	if _, err := st.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteCheckpoint(buildCheckpoint()); err != nil { // Seq 2
		t.Fatal(err)
	}
	if _, err := st.Rotate(); err != nil { // live segment 3
		t.Fatal(err)
	}
	st.Close()
	// Mislabel: the seq-2 checkpoint claims to be checkpoint 3.
	if err := os.Rename(filepath.Join(dir, ckptName(2)), filepath.Join(dir, ckptName(3))); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt for a mislabeled checkpoint", err)
	}
}

// TestDirectoryLockExcludesSecondOpener: two stores appending to one log
// would interleave frames, so the second Open must be refused until the
// first closes.
func TestDirectoryLockExcludesSecondOpener(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir, Options{})
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatal("second Open of a locked directory must fail")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	st2.Close()
}

func TestSegmentGapIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir, Options{})
	st.Close()
	// Fabricate a segment 3 with no segment 2.
	hdr := segmentHeader(3)
	if err := os.WriteFile(filepath.Join(dir, segName(3)), hdr, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open(dir, Options{})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt for segment gap", err)
	}
}

// TestMissingLeadingSegmentIsCorrupt covers gaps at the START of the
// replay range, which the adjacent-pair check alone would miss: the
// checkpoint's own segment deleted (with and without a later segment
// present), and a checkpoint-less log whose first segment is gone. Every
// variant silently loses committed records, so Open must refuse.
func TestMissingLeadingSegmentIsCorrupt(t *testing.T) {
	build := func(t *testing.T) string {
		dir := t.TempDir()
		st, _ := mustOpen(t, dir, Options{})
		if err := st.AppendDDL("CREATE TABLE a (x INT)"); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Rotate(); err != nil {
			t.Fatal(err)
		}
		if err := st.WriteCheckpoint(buildCheckpoint()); err != nil {
			t.Fatal(err)
		}
		if err := st.AppendDDL("CREATE TABLE extra (x INT)"); err != nil {
			t.Fatal(err)
		}
		st.Close()
		return dir
	}

	t.Run("checkpoint segment deleted", func(t *testing.T) {
		dir := build(t)
		if err := os.Remove(filepath.Join(dir, segName(2))); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("checkpoint segment deleted, later segment present", func(t *testing.T) {
		dir := build(t)
		if err := os.Remove(filepath.Join(dir, segName(2))); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, segName(3)), segmentHeader(3), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("no checkpoint, first segment deleted", func(t *testing.T) {
		dir := t.TempDir()
		st, _ := mustOpen(t, dir, Options{})
		if err := st.AppendDDL("CREATE TABLE a (x INT)"); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Rotate(); err != nil {
			t.Fatal(err)
		}
		st.Close()
		if err := os.Remove(filepath.Join(dir, segName(1))); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
}
