package wal

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"hippo/internal/storage"
	"hippo/internal/value"
)

// committerFeed encodes (committer, seq) into one batch record so
// recovery can reconstruct exactly which appends a crash preserved.
func committerFeed(committer, seq int) []storage.TableChange {
	return []storage.TableChange{{
		Table: fmt.Sprintf("c%d", committer),
		Change: storage.Change{Kind: storage.ChangeInsert, Row: storage.RowID(seq),
			Tuple: value.Tuple{value.Int(int64(seq))}},
	}}
}

// TestGroupCommitSharesFsync pins the tentpole property deterministically:
// a queue of K pending appends handed to the log writer in one wake-up
// must commit with exactly ONE fsync — one group, one durability barrier —
// ack every waiter nil, and survive a reopen in queue order. The test
// enqueues directly (in-package) so the writer cannot slice the batch
// into smaller groups between concurrent beginAppend calls.
func TestGroupCommitSharesFsync(t *testing.T) {
	const group = 9
	dir := t.TempDir()
	syncs := 0
	st, _ := mustOpen(t, dir, Options{WrapSyncer: func(_ string, s Syncer) Syncer {
		return &countingSyncer{under: s, syncs: &syncs}
	}})
	baseline := syncs // segment creation barriers

	tickets := make([]*Ticket, group)
	st.mu.Lock()
	for i := range tickets {
		tk := &Ticket{done: make(chan error, 1)}
		st.queue = append(st.queue, &commitReq{payload: encodeBatch(committerFeed(0, i)), done: tk.done})
		tickets[i] = tk
	}
	st.mu.Unlock()
	st.kick <- struct{}{}

	for i, tk := range tickets {
		if err := tk.Wait(); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if n := syncs - baseline; n != 1 {
		t.Fatalf("group of %d appends cost %d fsyncs, want exactly 1", group, n)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != group {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), group)
	}
	for i, r := range rec.Records {
		if got := r.Batch[0].Change.Row; got != storage.RowID(i) {
			t.Fatalf("record %d recovered out of queue order (row %d)", i, got)
		}
	}
}

// TestRecoveryGroupCommitCrashWindow sweeps crash budgets across a
// concurrently-committed log and asserts the group-commit durability
// contract at each cut: after reopening, the recovered records are
// EXACTLY the acked-OK appends — nothing reported durable is lost, and
// nothing reported failed resurrects — and each committer's records
// survive in its own commit order.
func TestRecoveryGroupCommitCrashWindow(t *testing.T) {
	const committers = 4
	const perCommitter = 12

	// Probe: learn the total write volume of the workload.
	probe := NewCrashInjector(1 << 40)
	{
		st, _ := mustOpen(t, t.TempDir(), Options{WrapSyncer: probe.Wrap})
		runGroupCrashWorkload(st, committers, perCommitter)
		st.Close()
	}
	total := probe.Written()
	if total < 256 {
		t.Fatalf("suspiciously small write volume %d", total)
	}

	step := total / 23 // ~23 cut points incl. mid-group positions
	if step < 1 {
		step = 1
	}
	for budget := int64(0); budget <= total; budget += step {
		ci := NewCrashInjector(budget)
		dir := t.TempDir()
		acked := map[int][]int{}
		st, _, err := Open(dir, Options{WrapSyncer: ci.Wrap})
		if err == nil {
			acked = runGroupCrashWorkload(st, committers, perCommitter)
			st.Close()
		} else if !errors.Is(err, ErrInjectedCrash) {
			t.Fatalf("budget %d: open failed with %v", budget, err)
		}

		_, rec, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("budget %d: recovery failed: %v", budget, err)
		}
		recovered := make(map[int][]int) // committer -> recovered seqs in log order
		for _, r := range rec.Records {
			var c, row int
			if _, err := fmt.Sscanf(r.Batch[0].Table, "c%d", &c); err != nil {
				t.Fatalf("budget %d: unexpected table %q", budget, r.Batch[0].Table)
			}
			row = int(r.Batch[0].Change.Row)
			recovered[c] = append(recovered[c], row)
		}
		for c := 0; c < committers; c++ {
			want := acked[c]
			got := recovered[c]
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("budget %d: committer %d recovered %v, acked-durable %v", budget, c, got, want)
			}
		}
	}
}

// runGroupCrashWorkload runs concurrent committers against the store,
// each stopping at its first error, and returns the seqs acked durable
// per committer (each is a prefix by construction, since a committer
// appends sequentially).
func runGroupCrashWorkload(st *Store, committers, perCommitter int) map[int][]int {
	acked := make(map[int][]int)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for c := 0; c < committers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for seq := 0; seq < perCommitter; seq++ {
				// Any error (the injected crash or the sticky failure it
				// leaves behind) stops this committer; only acked-nil
				// appends count as durable.
				if err := st.AppendBatch(committerFeed(c, seq)); err != nil {
					return
				}
				mu.Lock()
				acked[c] = append(acked[c], seq)
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	return acked
}
