//go:build !unix

package wal

import "os"

// lockDir on platforms without flock keeps the LOCK file open but cannot
// exclude a second process. Single-writer discipline is then the
// operator's responsibility; the unix build enforces it.
func lockDir(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
}
