// Package hclient is a typed Go client for the hippod HTTP/JSON API.
// It mirrors the embedded hippo.DB surface over the wire: exec, atomic
// batches, plain and consistent queries (optionally pinned to a server
// session), stats, and checkpoints. Server failures come back as
// *APIError values that match the package sentinels with errors.Is, so
// callers branch on overload/deadline/drain without string matching.
package hclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Sentinel errors matched (via errors.Is) by *APIError values carrying
// the corresponding wire code.
var (
	// ErrOverloaded: the server's admission bound was hit; back off and
	// retry.
	ErrOverloaded = errors.New("hclient: server overloaded")
	// ErrDeadline: the query's deadline expired server-side.
	ErrDeadline = errors.New("hclient: query deadline exceeded")
	// ErrDraining: the server is shutting down.
	ErrDraining = errors.New("hclient: server draining")
	// ErrUnknownSession: the session id has been released or reaped.
	ErrUnknownSession = errors.New("hclient: unknown session")
)

// APIError is a typed server failure.
type APIError struct {
	Code    string // wire error code ("overloaded", "deadline_exceeded", ...)
	Status  int    // HTTP status
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("hclient: %s (%s, http %d)", e.Message, e.Code, e.Status)
}

// Is maps wire codes onto the package sentinels and the standard
// context errors, so errors.Is(err, context.DeadlineExceeded) holds for
// a server-side deadline just as it would embedded.
func (e *APIError) Is(target error) bool {
	switch target {
	case ErrOverloaded:
		return e.Code == "overloaded"
	case ErrDeadline, context.DeadlineExceeded:
		return e.Code == "deadline_exceeded"
	case ErrDraining:
		return e.Code == "draining"
	case ErrUnknownSession:
		return e.Code == "unknown_session"
	case context.Canceled:
		return e.Code == "canceled"
	}
	return false
}

// Client talks to one hippod server. The zero value is unusable; create
// with New. Safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client
}

// New returns a client for the server at base (e.g.
// "http://127.0.0.1:8080"). A nil httpClient selects
// http.DefaultClient; benchmarks pass a client with a transport sized
// to their connection count.
func New(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	for len(base) > 0 && base[len(base)-1] == '/' {
		base = base[:len(base)-1]
	}
	return &Client{base: base, hc: httpClient}
}

// Result is a query result as decoded from the wire.
type Result struct {
	Columns []string  `json:"columns"`
	Rows    [][]any   `json:"rows"`
	Count   int       `json:"count"`
	Stats   *RunStats `json:"stats"`
}

// RunStats is the per-run statistics subset the server reports.
type RunStats struct {
	Epoch      uint64 `json:"epoch"`
	Candidates int    `json:"candidates"`
	Answers    int    `json:"answers"`
	CacheHits  int64  `json:"cache_hits"`
	CacheMiss  int64  `json:"cache_misses"`
	Streamed   bool   `json:"streamed"`
	TotalUS    int64  `json:"total_us"`
}

// Stats is the server-level snapshot from /v1/stats.
type Stats struct {
	Epoch          uint64 `json:"epoch"`
	Sessions       int    `json:"sessions"`
	InFlight       int    `json:"in_flight"`
	MaxInFlight    int    `json:"max_in_flight"`
	Draining       bool   `json:"draining"`
	Durable        bool   `json:"durable"`
	WALBytes       int64  `json:"wal_bytes"`
	Edges          int    `json:"edges"`
	ViewsPublished int64  `json:"views_published"`
	ViewsReclaimed int64  `json:"views_reclaimed"`
	SlabsReclaimed int64  `json:"slabs_reclaimed"`
	Version        string `json:"version"`
}

// QueryOpts tune one query call.
type QueryOpts struct {
	// Session pins the query to a server-side snapshot session.
	Session string
	// Timeout is sent as timeout_ms: the server-side deadline. Zero
	// uses the server default.
	Timeout time.Duration
	// Materialized selects the materialized evaluation baseline
	// (consistent queries only).
	Materialized bool
	// Tier constrains the tiered planner for consistent queries: ""
	// or "auto" lets the classifier decide, "prover" pins the
	// certification path, "require-rewrite" errors unless the rewrite
	// tier serves the query.
	Tier string
}

func (o QueryOpts) timeoutMS() int64 { return int64(o.Timeout / time.Millisecond) }

// do posts a JSON request and decodes the response into out.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		if json.Unmarshal(raw, &e) == nil && e.Error.Code != "" {
			return &APIError{Code: e.Error.Code, Status: resp.StatusCode, Message: e.Error.Message}
		}
		return &APIError{Code: "internal", Status: resp.StatusCode, Message: string(raw)}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

// Health checks liveness; an error means down or draining.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/health", nil, nil)
}

// Exec runs one SQL statement (DDL, DML, or SELECT) and returns the
// affected-row count (or the result for a SELECT).
func (c *Client) Exec(ctx context.Context, sql string) (*Result, int, error) {
	var resp struct {
		Count   int      `json:"count"`
		Columns []string `json:"columns"`
		Rows    [][]any  `json:"rows"`
	}
	in := map[string]any{"sql": sql}
	if err := c.do(ctx, http.MethodPost, "/v1/exec", in, &resp); err != nil {
		return nil, 0, err
	}
	if resp.Columns == nil {
		return nil, resp.Count, nil
	}
	return &Result{Columns: resp.Columns, Rows: resp.Rows, Count: resp.Count}, resp.Count, nil
}

// Batch applies DML statements as one atomic group commit.
func (c *Client) Batch(ctx context.Context, sqls ...string) ([]int, error) {
	var resp struct {
		Counts []int `json:"counts"`
	}
	if err := c.do(ctx, http.MethodPost, "/v1/batch", map[string]any{"sqls": sqls}, &resp); err != nil {
		return nil, err
	}
	return resp.Counts, nil
}

func queryBody(sql string, o QueryOpts) map[string]any {
	in := map[string]any{"sql": sql}
	if o.Session != "" {
		in["session"] = o.Session
	}
	if o.Timeout > 0 {
		in["timeout_ms"] = o.timeoutMS()
	}
	if o.Materialized {
		in["materialized"] = true
	}
	if o.Tier != "" {
		in["tier"] = o.Tier
	}
	return in
}

// Query evaluates a plain SELECT (ignoring inconsistency).
func (c *Client) Query(ctx context.Context, sql string, o QueryOpts) (*Result, error) {
	var res Result
	if err := c.do(ctx, http.MethodPost, "/v1/query", queryBody(sql, o), &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// ConsistentQuery computes consistent answers, optionally pinned to a
// session snapshot and/or on the materialized baseline.
func (c *Client) ConsistentQuery(ctx context.Context, sql string, o QueryOpts) (*Result, error) {
	var res Result
	if err := c.do(ctx, http.MethodPost, "/v1/consistent-query", queryBody(sql, o), &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// NewSession pins the current query view server-side and returns its
// id; queries passing the id observe that immutable state. Release it
// when done so retired storage can be reclaimed.
func (c *Client) NewSession(ctx context.Context) (string, uint64, error) {
	var resp struct {
		Session string `json:"session"`
		Epoch   uint64 `json:"epoch"`
	}
	if err := c.do(ctx, http.MethodPost, "/v1/session", map[string]any{}, &resp); err != nil {
		return "", 0, err
	}
	return resp.Session, resp.Epoch, nil
}

// ReleaseSession unpins a session.
func (c *Client) ReleaseSession(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodPost, "/v1/session/release", map[string]any{"session": id}, nil)
}

// Stats fetches the server-level counters.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	var st Stats
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Checkpoint forces a durable checkpoint (durable servers only).
func (c *Client) Checkpoint(ctx context.Context) error {
	return c.do(ctx, http.MethodPost, "/v1/checkpoint", map[string]any{}, nil)
}

// AddFD registers a functional dependency spec ("rel: a,b -> c"); the
// relation must already exist.
func (c *Client) AddFD(ctx context.Context, spec string) error {
	return c.do(ctx, http.MethodPost, "/v1/fd", map[string]any{"spec": spec}, nil)
}
