// Package workload generates the synthetic inconsistent databases used by
// the experiments: deterministic (seeded) instances with a controllable
// size and conflict rate, mirroring the setup of the Hippo evaluation —
// base tuples with unique keys plus injected key-violating duplicates.
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"hippo/internal/engine"
	"hippo/internal/schema"
	"hippo/internal/value"
)

// insertAll loads rows through the engine's write path as chunked
// multi-row INSERT statements. Generators must not write to storage
// behind the engine's back: engine-level writes feed the change listeners
// and — in durable mode — the commit log, so a generated instance behaves
// exactly like user-loaded data (and persists when the target is durable).
func insertAll(db *engine.DB, table string, rows []value.Tuple) error {
	const chunk = 256
	for start := 0; start < len(rows); start += chunk {
		end := start + chunk
		if end > len(rows) {
			end = len(rows)
		}
		var b strings.Builder
		b.WriteString("INSERT INTO ")
		b.WriteString(table)
		b.WriteString(" VALUES ")
		for i, r := range rows[start:end] {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(value.TupleString(r))
		}
		if _, _, err := db.Exec(b.String()); err != nil {
			return err
		}
	}
	return nil
}

// EmpConfig describes an employee-table instance.
type EmpConfig struct {
	// N is the number of base tuples (distinct employee ids).
	N int
	// ConflictRate is the fraction of base tuples that receive one
	// FD-violating duplicate (same id, different salary). 0.02 means 2% of
	// employees have two conflicting salary records.
	ConflictRate float64
	// Seed drives the deterministic generator.
	Seed int64
	// Table overrides the table name (default "emp").
	Table string
}

// EmpReport describes what was generated.
type EmpReport struct {
	Rows      int // total rows inserted
	Conflicts int // conflicting pairs injected
}

// Emp creates and populates an employee table emp(id, name, dept, salary)
// with cfg.N base rows and injected FD violations on id → salary. The
// matching constraint is FD emp: id -> salary.
func Emp(db *engine.DB, cfg EmpConfig) (EmpReport, error) {
	name := cfg.Table
	if name == "" {
		name = "emp"
	}
	if _, err := db.CreateTable(name, schema.New(
		schema.Column{Name: "id", Type: value.KindInt},
		schema.Column{Name: "name", Type: value.KindText},
		schema.Column{Name: "dept", Type: value.KindInt},
		schema.Column{Name: "salary", Type: value.KindInt},
	)); err != nil {
		return EmpReport{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rep := EmpReport{}
	nConf := int(float64(cfg.N) * cfg.ConflictRate)
	rows := make([]value.Tuple, 0, cfg.N+nConf)
	for i := 0; i < cfg.N; i++ {
		salary := 30000 + rng.Intn(120000)
		row := value.Tuple{
			value.Int(int64(i)),
			value.Text(fmt.Sprintf("emp%06d", i)),
			value.Int(int64(i % 100)),
			value.Int(int64(salary)),
		}
		rows = append(rows, row)
		rep.Rows++
		if i < nConf {
			// Duplicate with a different salary → FD violation on id.
			dup := row.Clone()
			dup[3] = value.Int(int64(salary + 1 + rng.Intn(50000)))
			rows = append(rows, dup)
			rep.Rows++
			rep.Conflicts++
		}
	}
	if err := insertAll(db, name, rows); err != nil {
		return rep, err
	}
	return rep, nil
}

// DeptConfig describes the department dimension table.
type DeptConfig struct {
	// N is the number of departments.
	N int
	// Seed drives the generator.
	Seed int64
}

// Dept creates dept(id, dname, budget) with N clean rows (no conflicts),
// matching the dept ids assigned by Emp (0..99 by default).
func Dept(db *engine.DB, cfg DeptConfig) error {
	if _, err := db.CreateTable("dept", schema.New(
		schema.Column{Name: "id", Type: value.KindInt},
		schema.Column{Name: "dname", Type: value.KindText},
		schema.Column{Name: "budget", Type: value.KindInt},
	)); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rows := make([]value.Tuple, 0, cfg.N)
	for i := 0; i < cfg.N; i++ {
		rows = append(rows, value.Tuple{
			value.Int(int64(i)),
			value.Text(fmt.Sprintf("dept%03d", i)),
			value.Int(int64(100000 + rng.Intn(900000))),
		})
	}
	return insertAll(db, "dept", rows)
}

// SourcesConfig describes a two-source integration scenario: both sources
// report (key, val) pairs; overlapping keys with different values violate
// the cross-source FD when the sources are unioned into one relation.
type SourcesConfig struct {
	// N is the number of keys per source.
	N int
	// OverlapRate is the fraction of keys present in both sources with
	// disagreeing values.
	OverlapRate float64
	// Seed drives the generator.
	Seed int64
}

// Sources creates a single relation merged(src TEXT, k INT, v INT)
// representing integrated data from two autonomous sources, plus the
// number of disagreeing keys. The matching constraint is
// FD merged: k -> v.
func Sources(db *engine.DB, cfg SourcesConfig) (int, error) {
	if _, err := db.CreateTable("merged", schema.New(
		schema.Column{Name: "src", Type: value.KindText},
		schema.Column{Name: "k", Type: value.KindInt},
		schema.Column{Name: "v", Type: value.KindInt},
	)); err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	overlap := int(float64(cfg.N) * cfg.OverlapRate)
	disagreements := 0
	rows := make([]value.Tuple, 0, cfg.N+overlap)
	for i := 0; i < cfg.N; i++ {
		v := rng.Intn(1000)
		rows = append(rows, value.Tuple{
			value.Text("s1"), value.Int(int64(i)), value.Int(int64(v)),
		})
		if i < overlap {
			// Source 2 disagrees on this key.
			rows = append(rows, value.Tuple{
				value.Text("s2"), value.Int(int64(i)), value.Int(int64(v + 1 + rng.Intn(100))),
			})
			disagreements++
		}
	}
	return disagreements, insertAll(db, "merged", rows)
}

// UpdateMix returns a deterministic mixed DML statement stream over the
// emp table produced by Emp(n) — the batched-writer mix of the E13
// group-commit experiment. The stream interleaves colliding inserts (id
// already present: a new FD conflict edge), fresh inserts, whole-id
// deletes, and transient insert+delete pairs (a row created and removed
// within two adjacent statements — exactly what batch coalescing elides
// when both land in one batch). Exactly count statements are returned;
// the same (n, count, seed) always yields the same stream, so regimes
// applying it at different batch sizes reach identical final states.
func UpdateMix(n, count int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, 0, count+1)
	fresh := 0
	for len(out) < count {
		switch rng.Intn(4) {
		case 0: // colliding insert: joins an existing id's FD group
			id := rng.Intn(n)
			out = append(out, fmt.Sprintf("INSERT INTO emp VALUES (%d, 'mix%06d', %d, %d)",
				id, len(out), id%100, 90000+rng.Intn(30000)))
		case 1: // fresh insert: conflict-free new id
			id := 2*n + fresh
			fresh++
			out = append(out, fmt.Sprintf("INSERT INTO emp VALUES (%d, 'mix%06d', %d, %d)",
				id, len(out), id%100, 30000+rng.Intn(30000)))
		case 2: // delete an id's whole group
			out = append(out, fmt.Sprintf("DELETE FROM emp WHERE id = %d", rng.Intn(n)))
		default: // transient pair
			id := 1000000 + len(out)
			out = append(out,
				fmt.Sprintf("INSERT INTO emp VALUES (%d, 'tmp%06d', 0, 1)", id, len(out)),
				fmt.Sprintf("DELETE FROM emp WHERE id = %d", id))
		}
	}
	return out[:count]
}

// SQLDump renders the contents of a database as executable SQL statements
// (CREATE TABLE + INSERT), used by hippogen.
func SQLDump(db *engine.DB) (string, error) {
	var out []byte
	for _, name := range db.TableNames() {
		t, err := db.Table(name)
		if err != nil {
			return "", err
		}
		sch := t.Schema()
		out = append(out, "CREATE TABLE "...)
		out = append(out, name...)
		out = append(out, " ("...)
		for i, c := range sch.Columns {
			if i > 0 {
				out = append(out, ", "...)
			}
			out = append(out, c.Name...)
			out = append(out, ' ')
			out = append(out, c.Type.String()...)
		}
		out = append(out, ");\n"...)
		for _, row := range t.Rows() {
			out = append(out, "INSERT INTO "...)
			out = append(out, name...)
			out = append(out, " VALUES "...)
			out = append(out, value.TupleString(row)...)
			out = append(out, ";\n"...)
		}
	}
	return string(out), nil
}
