package workload

import (
	"strings"
	"testing"

	"hippo/internal/conflict"
	"hippo/internal/constraint"
	"hippo/internal/engine"
)

func TestEmpGeneration(t *testing.T) {
	db := engine.New()
	rep, err := Emp(db, EmpConfig{N: 1000, ConflictRate: 0.02, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Conflicts != 20 {
		t.Errorf("conflicts = %d, want 20", rep.Conflicts)
	}
	if rep.Rows != 1020 {
		t.Errorf("rows = %d, want 1020", rep.Rows)
	}
	tb, _ := db.Table("emp")
	if tb.Len() != 1020 {
		t.Errorf("table rows = %d", tb.Len())
	}
	// Detected conflicts must equal injected conflicts exactly.
	fd := constraint.FD{Rel: "emp", LHS: []string{"id"}, RHS: []string{"salary"}}
	h, _, _, err := conflict.NewDetector(db).Detect([]constraint.Constraint{fd})
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != rep.Conflicts {
		t.Errorf("detected %d edges, injected %d", h.NumEdges(), rep.Conflicts)
	}
}

func TestEmpDeterminism(t *testing.T) {
	db1, db2 := engine.New(), engine.New()
	Emp(db1, EmpConfig{N: 50, ConflictRate: 0.1, Seed: 42})
	Emp(db2, EmpConfig{N: 50, ConflictRate: 0.1, Seed: 42})
	d1, _ := SQLDump(db1)
	d2, _ := SQLDump(db2)
	if d1 != d2 {
		t.Error("same seed must give identical instances")
	}
	db3 := engine.New()
	Emp(db3, EmpConfig{N: 50, ConflictRate: 0.1, Seed: 43})
	d3, _ := SQLDump(db3)
	if d1 == d3 {
		t.Error("different seeds should differ")
	}
}

func TestEmpCustomTableAndErrors(t *testing.T) {
	db := engine.New()
	if _, err := Emp(db, EmpConfig{N: 5, Table: "staff", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Table("staff"); err != nil {
		t.Error("custom table name not honored")
	}
	if _, err := Emp(db, EmpConfig{N: 5, Table: "staff", Seed: 1}); err == nil {
		t.Error("duplicate table should error")
	}
}

func TestDept(t *testing.T) {
	db := engine.New()
	if err := Dept(db, DeptConfig{N: 100, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT * FROM dept")
	if err != nil || len(res.Rows) != 100 {
		t.Fatalf("dept rows = %d, %v", len(res.Rows), err)
	}
	if err := Dept(db, DeptConfig{N: 1}); err == nil {
		t.Error("duplicate dept should error")
	}
}

func TestSources(t *testing.T) {
	db := engine.New()
	n, err := Sources(db, SourcesConfig{N: 100, OverlapRate: 0.25, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if n != 25 {
		t.Errorf("disagreements = %d, want 25", n)
	}
	fd := constraint.FD{Rel: "merged", LHS: []string{"k"}, RHS: []string{"v"}}
	h, _, _, err := conflict.NewDetector(db).Detect([]constraint.Constraint{fd})
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != 25 {
		t.Errorf("edges = %d", h.NumEdges())
	}
}

func TestSQLDumpRoundTrip(t *testing.T) {
	db := engine.New()
	Emp(db, EmpConfig{N: 10, ConflictRate: 0.2, Seed: 3})
	dump, err := SQLDump(db)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dump, "CREATE TABLE emp") {
		t.Fatalf("dump = %q", dump[:80])
	}
	// Replay the dump into a fresh engine.
	db2 := engine.New()
	for _, stmt := range strings.Split(dump, ";\n") {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" {
			continue
		}
		if _, _, err := db2.Exec(stmt); err != nil {
			t.Fatalf("replaying %q: %v", stmt, err)
		}
	}
	t1, _ := db.Table("emp")
	t2, _ := db2.Table("emp")
	if t1.Len() != t2.Len() {
		t.Errorf("round trip rows %d vs %d", t1.Len(), t2.Len())
	}
}
