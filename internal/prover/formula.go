// Package prover implements Hippo's Prover stage: deciding, for one
// candidate tuple t and an SJUD query Q, whether t is a consistent answer
// — i.e. whether t ∈ Q(r) for every repair r — using only the conflict
// hypergraph and membership checks against the database, never
// materializing repairs.
//
// Membership of t in Q unfolds into a ground boolean formula over base
// relation atoms (BuildFormula). t is a consistent answer iff the negated
// formula is satisfied by no repair, which the Prover decides disjunct by
// disjunct over the formula's DNF with a blocking-edge search on the
// hypergraph (see Prover.IsConsistent).
package prover

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"hippo/internal/ra"
	"hippo/internal/value"
)

// Atom is a ground base-relation membership fact: "tuple Tuple is in
// relation Rel".
type Atom struct {
	Rel   string
	Tuple value.Tuple
}

// Key returns the identity of the atom (relation + tuple value).
func (a Atom) Key() string { return a.Rel + "|" + a.Tuple.Key() }

// String renders the atom as rel(v1, v2, ...).
func (a Atom) String() string {
	return a.Rel + value.TupleString(a.Tuple)
}

// Formula is a ground boolean combination of atoms.
type Formula interface {
	fstring() string
}

// FTrue is the constant true formula.
type FTrue struct{}

// FFalse is the constant false formula.
type FFalse struct{}

// FAtom asserts membership of a tuple in a base relation.
type FAtom struct{ A Atom }

// FAnd is conjunction. An empty conjunction is true.
type FAnd struct{ Fs []Formula }

// FOr is disjunction. An empty disjunction is false.
type FOr struct{ Fs []Formula }

// FNot is negation.
type FNot struct{ F Formula }

func (FTrue) fstring() string  { return "true" }
func (FFalse) fstring() string { return "false" }
func (f FAtom) fstring() string {
	return f.A.String()
}
func (f FAnd) fstring() string {
	parts := make([]string, len(f.Fs))
	for i, g := range f.Fs {
		parts[i] = g.fstring()
	}
	return "(" + strings.Join(parts, " ∧ ") + ")"
}
func (f FOr) fstring() string {
	parts := make([]string, len(f.Fs))
	for i, g := range f.Fs {
		parts[i] = g.fstring()
	}
	return "(" + strings.Join(parts, " ∨ ") + ")"
}
func (f FNot) fstring() string { return "¬" + f.F.fstring() }

// FormulaString renders a formula for debugging.
func FormulaString(f Formula) string { return f.fstring() }

// BuildFormula unfolds "t ∈ node" into a ground formula whose leaves are
// base-relation atoms. The node must have passed envelope.CheckQuery; in
// particular projections are permutations of all input columns.
func BuildFormula(node ra.Node, t value.Tuple) (Formula, error) {
	if len(t) != node.Schema().Len() {
		return nil, fmt.Errorf("prover: tuple arity %d does not match plan arity %d",
			len(t), node.Schema().Len())
	}
	return buildFormula(node, t)
}

func buildFormula(node ra.Node, t value.Tuple) (Formula, error) {
	switch n := node.(type) {
	case *ra.Scan:
		return FAtom{A: Atom{Rel: n.Table.Name(), Tuple: t.Clone()}}, nil
	case *ra.Select:
		pass, err := ra.EvalPredicate(n.Pred, t)
		if err != nil {
			return nil, err
		}
		if !pass {
			return FFalse{}, nil
		}
		return buildFormula(n.Child, t)
	case *ra.Project:
		child, ok := reconstructWitness(n, t)
		if !ok {
			return FFalse{}, nil
		}
		return buildFormula(n.Child, child)
	case *ra.Product:
		return buildPair(n.L, n.R, nil, t)
	case *ra.Join:
		return buildPair(n.L, n.R, n.Pred, t)
	case *ra.Union:
		l, err := buildFormula(n.L, t)
		if err != nil {
			return nil, err
		}
		r, err := buildFormula(n.R, t)
		if err != nil {
			return nil, err
		}
		return FOr{Fs: []Formula{l, r}}, nil
	case *ra.Diff:
		l, err := buildFormula(n.L, t)
		if err != nil {
			return nil, err
		}
		r, err := buildFormula(n.R, t)
		if err != nil {
			return nil, err
		}
		return FAnd{Fs: []Formula{l, FNot{F: r}}}, nil
	case *ra.Intersect:
		l, err := buildFormula(n.L, t)
		if err != nil {
			return nil, err
		}
		r, err := buildFormula(n.R, t)
		if err != nil {
			return nil, err
		}
		return FAnd{Fs: []Formula{l, r}}, nil
	case *ra.DistinctNode:
		return buildFormula(n.Child, t)
	default:
		return nil, fmt.Errorf("prover: unsupported operator %T in consistent query", node)
	}
}

// buildPair handles Product and Join (a Join is σ_pred over the product).
func buildPair(l, r ra.Node, pred ra.Expr, t value.Tuple) (Formula, error) {
	la := l.Schema().Len()
	if pred != nil {
		pass, err := ra.EvalPredicate(pred, t)
		if err != nil {
			return nil, err
		}
		if !pass {
			return FFalse{}, nil
		}
	}
	lf, err := buildFormula(l, t[:la])
	if err != nil {
		return nil, err
	}
	rf, err := buildFormula(r, t[la:])
	if err != nil {
		return nil, err
	}
	return FAnd{Fs: []Formula{lf, rf}}, nil
}

// reconstructWitness inverts a safe (permutation) projection: it rebuilds
// the unique child tuple that projects to t, or reports ok=false when t is
// internally inconsistent (the same source column would need two values).
func reconstructWitness(p *ra.Project, t value.Tuple) (value.Tuple, bool) {
	childArity := p.Child.Schema().Len()
	child := make(value.Tuple, childArity)
	set := make([]bool, childArity)
	for i, e := range p.Exprs {
		c := e.(ra.Col) // guaranteed by CheckQuery
		if set[c.Index] {
			if !value.Equal(child[c.Index], t[i]) {
				return nil, false
			}
			continue
		}
		child[c.Index] = t[i]
		set[c.Index] = true
	}
	return child, true
}

// Literal is a signed atom in a DNF disjunct.
type Literal struct {
	A   Atom
	Neg bool
}

// Disjunct is one conjunction of literals: all Pos atoms must hold and all
// Neg atoms must fail in the sought repair.
type Disjunct struct {
	Pos []Atom
	Neg []Atom
}

// String renders the disjunct.
func (d Disjunct) String() string {
	parts := make([]string, 0, len(d.Pos)+len(d.Neg))
	for _, a := range d.Pos {
		parts = append(parts, a.String())
	}
	for _, a := range d.Neg {
		parts = append(parts, "¬"+a.String())
	}
	return strings.Join(parts, " ∧ ")
}

// ErrUnknownFormula reports a Formula implementation the DNF conversion
// does not know. It is an error, not a panic: IsConsistent is reachable
// from user queries, and an unknown shape must surface through
// ConsistentQuery's error return instead of crashing the process.
var ErrUnknownFormula = errors.New("prover: unknown formula")

// DNF converts ¬f (note: the caller usually wants the negation of the
// membership formula) into disjunctive normal form. Contradictory
// disjuncts (an atom both positive and negative) are dropped; duplicate
// literals are merged; duplicate disjuncts are removed.
func DNF(f Formula) ([]Disjunct, error) {
	raw, err := dnf(f, false)
	if err != nil {
		return nil, err
	}
	out := make([]Disjunct, 0, len(raw))
	seen := map[string]bool{}
	for _, lits := range raw {
		d, ok := normalizeDisjunct(lits)
		if !ok {
			continue
		}
		k := d.String()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, d)
	}
	return out, nil
}

// NegationDNF returns DNF(¬f).
func NegationDNF(f Formula) ([]Disjunct, error) {
	return DNF(FNot{F: f})
}

// dnf returns the disjuncts of f (negated when neg is set) as literal
// lists. True is the empty disjunct list with one empty disjunct; false is
// the empty list.
func dnf(f Formula, neg bool) ([][]Literal, error) {
	switch t := f.(type) {
	case FTrue:
		if neg {
			return nil, nil
		}
		return [][]Literal{{}}, nil
	case FFalse:
		if neg {
			return [][]Literal{{}}, nil
		}
		return nil, nil
	case FAtom:
		return [][]Literal{{{A: t.A, Neg: neg}}}, nil
	case FNot:
		return dnf(t.F, !neg)
	case FAnd:
		if neg { // ¬(a∧b) = ¬a ∨ ¬b
			var out [][]Literal
			for _, g := range t.Fs {
				ds, err := dnf(g, true)
				if err != nil {
					return nil, err
				}
				out = append(out, ds...)
			}
			return out, nil
		}
		return crossProduct(t.Fs, false)
	case FOr:
		if neg { // ¬(a∨b) = ¬a ∧ ¬b
			return crossProduct(t.Fs, true)
		}
		var out [][]Literal
		for _, g := range t.Fs {
			ds, err := dnf(g, false)
			if err != nil {
				return nil, err
			}
			out = append(out, ds...)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("%w %T", ErrUnknownFormula, f)
	}
}

// crossProduct conjoins the DNFs of all fs (each negated when neg).
func crossProduct(fs []Formula, neg bool) ([][]Literal, error) {
	acc := [][]Literal{{}}
	for _, g := range fs {
		ds, err := dnf(g, neg)
		if err != nil {
			return nil, err
		}
		if len(ds) == 0 {
			return nil, nil // conjunction with false
		}
		next := make([][]Literal, 0, len(acc)*len(ds))
		for _, a := range acc {
			for _, d := range ds {
				merged := make([]Literal, 0, len(a)+len(d))
				merged = append(merged, a...)
				merged = append(merged, d...)
				next = append(next, merged)
			}
		}
		acc = next
	}
	return acc, nil
}

// normalizeDisjunct dedupes literals and detects contradictions.
func normalizeDisjunct(lits []Literal) (Disjunct, bool) {
	pos := map[string]Atom{}
	neg := map[string]Atom{}
	for _, l := range lits {
		k := l.A.Key()
		if l.Neg {
			neg[k] = l.A
		} else {
			pos[k] = l.A
		}
	}
	for k := range pos {
		if _, clash := neg[k]; clash {
			return Disjunct{}, false
		}
	}
	d := Disjunct{
		Pos: make([]Atom, 0, len(pos)),
		Neg: make([]Atom, 0, len(neg)),
	}
	for _, a := range pos {
		d.Pos = append(d.Pos, a)
	}
	for _, a := range neg {
		d.Neg = append(d.Neg, a)
	}
	sortAtoms(d.Pos)
	sortAtoms(d.Neg)
	return d, true
}

func sortAtoms(as []Atom) {
	sort.Slice(as, func(i, j int) bool { return as[i].Key() < as[j].Key() })
}
