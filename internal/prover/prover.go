package prover

import (
	"fmt"
	"slices"
	"strings"
	"sync"

	"hippo/internal/conflict"
	"hippo/internal/engine"
	"hippo/internal/ra"
	"hippo/internal/storage"
	"hippo/internal/value"
)

// QuerySource is the database surface the naive membership check needs:
// relation resolution plus raw plan execution. Both *engine.DB and
// *engine.Snapshot satisfy it, so naive membership can run against a
// pinned snapshot.
type QuerySource interface {
	Relation(name string) (storage.Relation, error)
	RunPlanRaw(plan ra.Node) (*engine.Result, error)
}

// Membership answers base-relation membership checks, returning the live
// RowIDs holding the tuple (empty when absent). The two implementations
// embody the paper's optimization axis: IndexedMembership answers from
// in-memory structures ("without executing any queries on the database"),
// NaiveMembership issues one engine query per check, as in Hippo's base
// version.
type Membership interface {
	Lookup(rel string, t value.Tuple) ([]storage.RowID, error)
}

// IndexedMembership resolves membership through the conflict stage's
// full-row tuple index.
type IndexedMembership struct {
	TI *conflict.TupleIndex
}

// Lookup returns the live rows equal to t.
func (m IndexedMembership) Lookup(rel string, t value.Tuple) ([]storage.RowID, error) {
	return m.TI.Lookup(rel, t)
}

// NaiveMembership issues a SELECT against the engine for every check —
// the paper's "costly procedure" that its optimizations eliminate. The
// tuple index is still consulted afterwards to map the tuple to its
// hypergraph vertex (the query only establishes membership).
type NaiveMembership struct {
	DB QuerySource
	TI *conflict.TupleIndex
}

// Lookup runs a membership query, then resolves RowIDs via the index.
func (m NaiveMembership) Lookup(rel string, t value.Tuple) ([]storage.RowID, error) {
	table, err := m.DB.Relation(rel)
	if err != nil {
		return nil, err
	}
	sch := table.Schema()
	if sch.Len() != len(t) {
		return nil, fmt.Errorf("prover: membership tuple arity %d vs relation %s arity %d",
			len(t), rel, sch.Len())
	}
	var pred ra.Expr
	for i, v := range t {
		var conj ra.Expr
		if v.IsNull() {
			conj = ra.IsNull{E: ra.Col{Index: i}}
		} else {
			conj = ra.Cmp{Op: ra.EQ, L: ra.Col{Index: i}, R: ra.Const{V: v}}
		}
		pred = ra.Conjoin(pred, conj)
	}
	plan := ra.Node(&ra.Scan{Table: table})
	if pred != nil {
		plan = &ra.Select{Child: plan, Pred: pred}
	}
	res, err := m.DB.RunPlanRaw(plan)
	if err != nil {
		return nil, err
	}
	if len(res.Rows) == 0 {
		return nil, nil
	}
	return m.TI.Lookup(rel, t)
}

// Stats counts the work a Prover performed.
type Stats struct {
	TuplesChecked    int64 // candidate tuples processed
	Disjuncts        int64 // DNF disjuncts examined
	MembershipChecks int64 // base-relation membership checks
	BlockerChoices   int64 // blocking-edge assignments explored
	Pruned           int64 // DFS branches cut by early independence checks
	Components       int64 // per-component sub-searches solved
	ParallelComps    int64 // sub-searches run concurrently on a pool token
}

// Add accumulates o into s; the core uses it to merge per-worker counters
// after parallel candidate certification.
func (s *Stats) Add(o Stats) {
	s.TuplesChecked += o.TuplesChecked
	s.Disjuncts += o.Disjuncts
	s.MembershipChecks += o.MembershipChecks
	s.BlockerChoices += o.BlockerChoices
	s.Pruned += o.Pruned
	s.Components += o.Components
	s.ParallelComps += o.ParallelComps
}

// Deps lists everything a certification verdict depended on, for precise
// cache invalidation: the membership status of every atom the prover
// resolved, and the conflict components it searched. The verdict stays
// valid exactly while all of those are unchanged — an update that neither
// flips a listed atom's membership nor touches a listed component cannot
// change the outcome, because the blocker search never leaves the
// components of the resolved vertices.
type Deps struct {
	Atoms []string // DepAtomKey of every membership status consulted
	Comps []conflict.ComponentRef
}

// DepAtomKey is the canonical dependency key for "tuple t ∈ rel": the
// verdict cache indexes entries by it and the core derives the same key
// from DML deltas to invalidate them.
func DepAtomKey(rel string, t value.Tuple) string {
	return strings.ToLower(rel) + "|" + t.Key()
}

// depTracker deduplicates dependencies during one certification.
type depTracker struct {
	atoms map[string]struct{}
	comps map[uint64]uint64 // component id -> fingerprint
}

// Prover checks candidate tuples against the conflict hypergraph. H is
// the shard-boundary interface: a plain *conflict.Hypergraph or a
// component-sharded *conflict.ShardedHypergraph — every read the blocker
// search issues resolves within one component, hence within one shard.
type Prover struct {
	H      conflict.Graph
	Member Membership
	// DisablePruning delays independence checking to complete blocker
	// assignments (the ablation in BenchmarkAblationPruning).
	DisablePruning bool
	// DisableComponents falls back to the single global blocker search
	// over all negative atoms jointly (the pre-decomposition architecture,
	// kept as the E12 baseline and for differential testing).
	DisableComponents bool
	// Pool, when non-nil, is a shared token semaphore: a disjunct whose
	// atoms span several conflict components runs the per-component
	// sub-searches concurrently, one borrowed token per extra goroutine.
	// Acquisition never blocks — without a free token the sub-search runs
	// inline — so sharing the core's certification pool cannot deadlock.
	Pool chan struct{}

	deps  *depTracker
	Stats Stats
}

// New creates a prover over a conflict graph with the given membership
// source.
func New(h conflict.Graph, m Membership) *Prover {
	return &Prover{H: h, Member: m}
}

// IsConsistentAnswer reports whether t is a consistent answer to the query
// plan: whether t ∈ plan holds in every repair.
func (p *Prover) IsConsistentAnswer(plan ra.Node, t value.Tuple) (bool, error) {
	f, err := BuildFormula(plan, t)
	if err != nil {
		return false, err
	}
	return p.IsConsistent(f)
}

// CertifyAnswer is IsConsistentAnswer plus dependency tracking: it also
// returns what the verdict depended on, for the verdict cache. Tracking
// only spans this call.
func (p *Prover) CertifyAnswer(plan ra.Node, t value.Tuple) (bool, Deps, error) {
	p.deps = &depTracker{atoms: make(map[string]struct{}), comps: make(map[uint64]uint64)}
	ok, err := p.IsConsistentAnswer(plan, t)
	d := Deps{}
	for a := range p.deps.atoms {
		d.Atoms = append(d.Atoms, a)
	}
	for id, fp := range p.deps.comps {
		d.Comps = append(d.Comps, conflict.ComponentRef{ID: id, FP: fp})
	}
	p.deps = nil
	return ok, d, err
}

// IsConsistent reports whether the ground formula f holds in every repair.
// It negates f, converts to DNF, and checks that no disjunct is satisfied
// by any repair.
func (p *Prover) IsConsistent(f Formula) (bool, error) {
	p.Stats.TuplesChecked++
	disjuncts, err := NegationDNF(f)
	if err != nil {
		return false, err
	}
	for _, d := range disjuncts {
		p.Stats.Disjuncts++
		sat, err := p.SatisfiableInSomeRepair(d)
		if err != nil {
			return false, err
		}
		if sat {
			return false, nil
		}
	}
	return true, nil
}

// SatisfiableInSomeRepair decides whether some repair contains every
// positive atom of d and none of its negative atoms.
//
// The positive atoms must exist in the database and be jointly independent.
// Each negative atom present in the database must be excluded from the
// repair; since repairs are *maximal* independent sets, exclusion of n must
// be forced by a blocking hyperedge e ∋ n whose remaining vertices all
// belong to the repair. The search assigns a blocking edge to every
// negative atom such that the union S of positive atoms and blocker
// remainders stays independent and avoids all negative atoms; any maximal
// independent extension of such an S is a witnessing repair.
//
// Because no hyperedge crosses a component boundary, the search factors
// over the connected components of the resolved vertices: blockers and
// independence checks for atoms in different components never interact,
// so each component is searched on its own — cost exponential only in the
// largest component, never in the whole disjunct — and independent
// components can be searched in parallel (see Pool).
func (p *Prover) SatisfiableInSomeRepair(d Disjunct) (bool, error) {
	if p.DisableComponents {
		return p.satisfiableGlobal(d)
	}
	groups, nset, live, err := p.resolveDisjunct(d)
	if err != nil || !live {
		return false, err
	}
	if p.Pool != nil && len(groups) > 1 {
		return p.solveComponentsParallel(groups, nset)
	}
	for i := range groups {
		ok, err := p.solveComponent(&groups[i].compTask, nset)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

// compTask is one component's share of a disjunct: the positive vertices
// that must be jointly independent and the negative vertices that each
// need a blocking edge, all within a single component.
type compTask struct {
	pos []conflict.Vertex
	neg []conflict.Vertex
}

// compGroup pairs a component id with its task. Disjuncts touch very few
// components, so groups live in a linearly scanned slice — cheaper than a
// map on the per-candidate hot path.
type compGroup struct {
	id uint64
	compTask
}

// resolveDisjunct resolves every atom of d and groups the conflicting
// vertices by component. live=false reports an early refutation: a
// positive atom absent or conflicting with another, a negative atom that
// is present but conflict-free (in every repair), or a vertex required
// both in and out.
func (p *Prover) resolveDisjunct(d Disjunct) (groups []compGroup, nset conflict.VertexSet, live bool, err error) {
	get := func(id uint64) int {
		for i := range groups {
			if groups[i].id == id {
				return i
			}
		}
		groups = append(groups, compGroup{id: id})
		return len(groups) - 1
	}
	var pos conflict.VertexSet
	for _, a := range d.Pos {
		v, inDB, err := p.resolve(a)
		if err != nil {
			return nil, nil, false, err
		}
		if !inDB {
			return nil, nil, false, nil
		}
		if pos[v] {
			continue
		}
		if pos == nil {
			pos = conflict.VertexSet{}
		}
		pos[v] = true
		if ref, ok := p.H.ComponentOf(v); ok {
			i := get(ref.ID)
			groups[i].pos = append(groups[i].pos, v)
		}
		// A conflict-free positive vertex is in every repair: no constraint.
	}
	for _, a := range d.Neg {
		v, inDB, err := p.resolve(a)
		if err != nil {
			return nil, nil, false, err
		}
		if !inDB {
			continue // absent from every repair for free
		}
		if pos[v] {
			return nil, nil, false, nil // required both in and out
		}
		if nset[v] {
			continue
		}
		ref, ok := p.H.ComponentOf(v)
		if !ok {
			return nil, nil, false, nil // conflict-free tuples survive in every repair
		}
		if nset == nil {
			nset = conflict.VertexSet{}
		}
		nset[v] = true
		i := get(ref.ID)
		groups[i].neg = append(groups[i].neg, v)
	}
	return groups, nset, true, nil
}

// solveComponent runs the positive-independence check and blocking-edge
// search for one component's share of a disjunct.
func (p *Prover) solveComponent(tk *compTask, nset conflict.VertexSet) (bool, error) {
	p.Stats.Components++
	s := conflict.VertexSet{}
	for _, v := range tk.pos {
		if !p.H.IndependentWith(s, v) {
			return false, nil
		}
		s[v] = true
	}
	blockers := make([][]conflict.Edge, 0, len(tk.neg))
	for _, v := range tk.neg {
		blockers = append(blockers, p.blockerCandidates(v, p.H.EdgesContaining(v)))
	}
	// Cheapest-first ordering shrinks the search tree.
	sortByLen(blockers)
	return p.assignBlockers(s, nset, blockers, 0)
}

// solveComponentsParallel fans the per-component sub-searches out over the
// shared pool: each extra goroutine borrows one token (non-blocking — the
// leftovers run inline), solves on a private sub-prover, and the counters
// merge afterwards. All components must be satisfiable.
func (p *Prover) solveComponentsParallel(groups []compGroup, nset conflict.VertexSet) (bool, error) {
	results := make([]bool, len(groups))
	errs := make([]error, len(groups))
	subs := make([]*Prover, len(groups))
	var wg sync.WaitGroup
	var inline []int
	for i := range groups {
		select {
		case p.Pool <- struct{}{}:
			sub := &Prover{H: p.H, Member: p.Member, DisablePruning: p.DisablePruning}
			subs[i] = sub
			p.Stats.ParallelComps++
			wg.Add(1)
			go func(i int, tk *compTask) {
				defer wg.Done()
				defer func() { <-p.Pool }()
				results[i], errs[i] = sub.solveComponent(tk, nset)
			}(i, &groups[i].compTask)
		default:
			inline = append(inline, i)
		}
	}
	for _, i := range inline {
		results[i], errs[i] = p.solveComponent(&groups[i].compTask, nset)
		if errs[i] != nil || !results[i] {
			break // one refuted component refutes the disjunct; skip the rest
		}
	}
	wg.Wait()
	for i := range groups {
		if subs[i] != nil {
			p.Stats.Add(subs[i].Stats)
		}
		if errs[i] != nil {
			return false, errs[i]
		}
	}
	for _, ok := range results {
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// satisfiableGlobal is the pre-decomposition search: one blocker
// assignment over all negative atoms jointly, with global independence
// checks. Kept as the DisableComponents baseline.
func (p *Prover) satisfiableGlobal(d Disjunct) (bool, error) {
	s := conflict.VertexSet{}
	// Positive atoms: must be present and independent.
	for _, a := range d.Pos {
		v, inDB, err := p.resolve(a)
		if err != nil {
			return false, err
		}
		if !inDB {
			return false, nil
		}
		if s[v] {
			continue
		}
		if !p.H.IndependentWith(s, v) {
			return false, nil
		}
		s[v] = true
	}
	// Negative atoms: absent ones are excluded from every repair for free;
	// present conflict-free ones are in every repair, killing the disjunct.
	nset := conflict.VertexSet{}
	var blockers [][]conflict.Edge
	for _, a := range d.Neg {
		v, inDB, err := p.resolve(a)
		if err != nil {
			return false, err
		}
		if !inDB {
			continue
		}
		if s[v] {
			return false, nil // required both in and out
		}
		edges := p.H.EdgesContaining(v)
		if len(edges) == 0 {
			return false, nil // conflict-free tuples survive in every repair
		}
		nset[v] = true
		blockers = append(blockers, p.blockerCandidates(v, edges))
	}
	// Cheapest-first ordering shrinks the search tree.
	sortByLen(blockers)
	return p.assignBlockers(s, nset, blockers, 0)
}

// blockerCandidates precomputes, for a negative vertex v, each candidate
// edge's "remainder" (the edge without v).
func (p *Prover) blockerCandidates(v conflict.Vertex, edges []conflict.Edge) []conflict.Edge {
	out := make([]conflict.Edge, 0, len(edges))
	for _, e := range edges {
		rem := make([]conflict.Vertex, 0, len(e.Verts)-1)
		for _, u := range e.Verts {
			if u != v {
				rem = append(rem, u)
			}
		}
		out = append(out, conflict.Edge{Verts: rem, Label: e.Label})
	}
	return out
}

// assignBlockers tries every combination of blocking edges depth-first.
func (p *Prover) assignBlockers(s, nset conflict.VertexSet, blockers [][]conflict.Edge, i int) (bool, error) {
	if i == len(blockers) {
		if p.DisablePruning && !p.H.Independent(s) {
			return false, nil
		}
		return true, nil
	}
nextEdge:
	for _, rem := range blockers[i] {
		p.Stats.BlockerChoices++
		var added []conflict.Vertex
		for _, u := range rem.Verts {
			if nset[u] {
				continue nextEdge // blocker would force a forbidden tuple in
			}
			if !s[u] {
				added = append(added, u)
			}
		}
		if !p.DisablePruning && !p.H.IndependentWith(s, added...) {
			p.Stats.Pruned++
			continue
		}
		for _, u := range added {
			s[u] = true
		}
		ok, err := p.assignBlockers(s, nset, blockers, i+1)
		for _, u := range added {
			delete(s, u)
		}
		if err != nil || ok {
			return ok, err
		}
	}
	return false, nil
}

// resolve maps an atom to its hypergraph vertex, if present in the DB.
// When dependency tracking is active it records the consulted membership
// status and, for conflicting vertices, the component searched.
func (p *Prover) resolve(a Atom) (conflict.Vertex, bool, error) {
	p.Stats.MembershipChecks++
	if p.deps != nil {
		p.deps.atoms[DepAtomKey(a.Rel, a.Tuple)] = struct{}{}
	}
	ids, err := p.Member.Lookup(a.Rel, a.Tuple)
	if err != nil {
		return conflict.Vertex{}, false, err
	}
	if len(ids) == 0 {
		return conflict.Vertex{}, false, nil
	}
	// Set semantics assumed: identical duplicate rows would share one
	// logical tuple; use the first occurrence as the vertex.
	v := conflict.Vertex{Rel: strings.ToLower(a.Rel), Row: ids[0]}
	if p.deps != nil {
		if ref, ok := p.H.ComponentOf(v); ok {
			p.deps.comps[ref.ID] = ref.FP
		}
	}
	return v, true, nil
}

func sortByLen(bs [][]conflict.Edge) {
	slices.SortStableFunc(bs, func(a, b []conflict.Edge) int {
		return len(a) - len(b)
	})
}
