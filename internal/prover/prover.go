package prover

import (
	"fmt"
	"slices"
	"strings"

	"hippo/internal/conflict"
	"hippo/internal/engine"
	"hippo/internal/ra"
	"hippo/internal/storage"
	"hippo/internal/value"
)

// QuerySource is the database surface the naive membership check needs:
// relation resolution plus raw plan execution. Both *engine.DB and
// *engine.Snapshot satisfy it, so naive membership can run against a
// pinned snapshot.
type QuerySource interface {
	Relation(name string) (storage.Relation, error)
	RunPlanRaw(plan ra.Node) (*engine.Result, error)
}

// Membership answers base-relation membership checks, returning the live
// RowIDs holding the tuple (empty when absent). The two implementations
// embody the paper's optimization axis: IndexedMembership answers from
// in-memory structures ("without executing any queries on the database"),
// NaiveMembership issues one engine query per check, as in Hippo's base
// version.
type Membership interface {
	Lookup(rel string, t value.Tuple) ([]storage.RowID, error)
}

// IndexedMembership resolves membership through the conflict stage's
// full-row tuple index.
type IndexedMembership struct {
	TI *conflict.TupleIndex
}

// Lookup returns the live rows equal to t.
func (m IndexedMembership) Lookup(rel string, t value.Tuple) ([]storage.RowID, error) {
	return m.TI.Lookup(rel, t)
}

// NaiveMembership issues a SELECT against the engine for every check —
// the paper's "costly procedure" that its optimizations eliminate. The
// tuple index is still consulted afterwards to map the tuple to its
// hypergraph vertex (the query only establishes membership).
type NaiveMembership struct {
	DB QuerySource
	TI *conflict.TupleIndex
}

// Lookup runs a membership query, then resolves RowIDs via the index.
func (m NaiveMembership) Lookup(rel string, t value.Tuple) ([]storage.RowID, error) {
	table, err := m.DB.Relation(rel)
	if err != nil {
		return nil, err
	}
	sch := table.Schema()
	if sch.Len() != len(t) {
		return nil, fmt.Errorf("prover: membership tuple arity %d vs relation %s arity %d",
			len(t), rel, sch.Len())
	}
	var pred ra.Expr
	for i, v := range t {
		var conj ra.Expr
		if v.IsNull() {
			conj = ra.IsNull{E: ra.Col{Index: i}}
		} else {
			conj = ra.Cmp{Op: ra.EQ, L: ra.Col{Index: i}, R: ra.Const{V: v}}
		}
		pred = ra.Conjoin(pred, conj)
	}
	plan := ra.Node(&ra.Scan{Table: table})
	if pred != nil {
		plan = &ra.Select{Child: plan, Pred: pred}
	}
	res, err := m.DB.RunPlanRaw(plan)
	if err != nil {
		return nil, err
	}
	if len(res.Rows) == 0 {
		return nil, nil
	}
	return m.TI.Lookup(rel, t)
}

// Stats counts the work a Prover performed.
type Stats struct {
	TuplesChecked    int64 // candidate tuples processed
	Disjuncts        int64 // DNF disjuncts examined
	MembershipChecks int64 // base-relation membership checks
	BlockerChoices   int64 // blocking-edge assignments explored
	Pruned           int64 // DFS branches cut by early independence checks
}

// Add accumulates o into s; the core uses it to merge per-worker counters
// after parallel candidate certification.
func (s *Stats) Add(o Stats) {
	s.TuplesChecked += o.TuplesChecked
	s.Disjuncts += o.Disjuncts
	s.MembershipChecks += o.MembershipChecks
	s.BlockerChoices += o.BlockerChoices
	s.Pruned += o.Pruned
}

// Prover checks candidate tuples against the conflict hypergraph.
type Prover struct {
	H      *conflict.Hypergraph
	Member Membership
	// DisablePruning delays independence checking to complete blocker
	// assignments (the ablation in BenchmarkAblationPruning).
	DisablePruning bool

	Stats Stats
}

// New creates a prover over a hypergraph with the given membership source.
func New(h *conflict.Hypergraph, m Membership) *Prover {
	return &Prover{H: h, Member: m}
}

// IsConsistentAnswer reports whether t is a consistent answer to the query
// plan: whether t ∈ plan holds in every repair.
func (p *Prover) IsConsistentAnswer(plan ra.Node, t value.Tuple) (bool, error) {
	f, err := BuildFormula(plan, t)
	if err != nil {
		return false, err
	}
	return p.IsConsistent(f)
}

// IsConsistent reports whether the ground formula f holds in every repair.
// It negates f, converts to DNF, and checks that no disjunct is satisfied
// by any repair.
func (p *Prover) IsConsistent(f Formula) (bool, error) {
	p.Stats.TuplesChecked++
	for _, d := range NegationDNF(f) {
		p.Stats.Disjuncts++
		sat, err := p.SatisfiableInSomeRepair(d)
		if err != nil {
			return false, err
		}
		if sat {
			return false, nil
		}
	}
	return true, nil
}

// SatisfiableInSomeRepair decides whether some repair contains every
// positive atom of d and none of its negative atoms.
//
// The positive atoms must exist in the database and be jointly independent.
// Each negative atom present in the database must be excluded from the
// repair; since repairs are *maximal* independent sets, exclusion of n must
// be forced by a blocking hyperedge e ∋ n whose remaining vertices all
// belong to the repair. The search assigns a blocking edge to every
// negative atom such that the union S of positive atoms and blocker
// remainders stays independent and avoids all negative atoms; any maximal
// independent extension of such an S is a witnessing repair.
func (p *Prover) SatisfiableInSomeRepair(d Disjunct) (bool, error) {
	s := conflict.VertexSet{}
	// Positive atoms: must be present and independent.
	for _, a := range d.Pos {
		v, inDB, err := p.resolve(a)
		if err != nil {
			return false, err
		}
		if !inDB {
			return false, nil
		}
		if s[v] {
			continue
		}
		if !p.H.IndependentWith(s, v) {
			return false, nil
		}
		s[v] = true
	}
	// Negative atoms: absent ones are excluded from every repair for free;
	// present conflict-free ones are in every repair, killing the disjunct.
	nset := conflict.VertexSet{}
	var blockers [][]conflict.Edge
	for _, a := range d.Neg {
		v, inDB, err := p.resolve(a)
		if err != nil {
			return false, err
		}
		if !inDB {
			continue
		}
		if s[v] {
			return false, nil // required both in and out
		}
		edges := p.H.EdgesContaining(v)
		if len(edges) == 0 {
			return false, nil // conflict-free tuples survive in every repair
		}
		nset[v] = true
		blockers = append(blockers, p.blockerCandidates(v, edges))
	}
	// Cheapest-first ordering shrinks the search tree.
	sortByLen(blockers)
	return p.assignBlockers(s, nset, blockers, 0)
}

// blockerCandidates precomputes, for a negative vertex v, each candidate
// edge's "remainder" (the edge without v).
func (p *Prover) blockerCandidates(v conflict.Vertex, edges []conflict.Edge) []conflict.Edge {
	out := make([]conflict.Edge, 0, len(edges))
	for _, e := range edges {
		rem := make([]conflict.Vertex, 0, len(e.Verts)-1)
		for _, u := range e.Verts {
			if u != v {
				rem = append(rem, u)
			}
		}
		out = append(out, conflict.Edge{Verts: rem, Label: e.Label})
	}
	return out
}

// assignBlockers tries every combination of blocking edges depth-first.
func (p *Prover) assignBlockers(s, nset conflict.VertexSet, blockers [][]conflict.Edge, i int) (bool, error) {
	if i == len(blockers) {
		if p.DisablePruning && !p.H.Independent(s) {
			return false, nil
		}
		return true, nil
	}
nextEdge:
	for _, rem := range blockers[i] {
		p.Stats.BlockerChoices++
		var added []conflict.Vertex
		for _, u := range rem.Verts {
			if nset[u] {
				continue nextEdge // blocker would force a forbidden tuple in
			}
			if !s[u] {
				added = append(added, u)
			}
		}
		if !p.DisablePruning && !p.H.IndependentWith(s, added...) {
			p.Stats.Pruned++
			continue
		}
		for _, u := range added {
			s[u] = true
		}
		ok, err := p.assignBlockers(s, nset, blockers, i+1)
		for _, u := range added {
			delete(s, u)
		}
		if err != nil || ok {
			return ok, err
		}
	}
	return false, nil
}

// resolve maps an atom to its hypergraph vertex, if present in the DB.
func (p *Prover) resolve(a Atom) (conflict.Vertex, bool, error) {
	p.Stats.MembershipChecks++
	ids, err := p.Member.Lookup(a.Rel, a.Tuple)
	if err != nil {
		return conflict.Vertex{}, false, err
	}
	if len(ids) == 0 {
		return conflict.Vertex{}, false, nil
	}
	// Set semantics assumed: identical duplicate rows would share one
	// logical tuple; use the first occurrence as the vertex.
	return conflict.Vertex{Rel: strings.ToLower(a.Rel), Row: ids[0]}, true, nil
}

func sortByLen(bs [][]conflict.Edge) {
	slices.SortStableFunc(bs, func(a, b []conflict.Edge) int {
		return len(a) - len(b)
	})
}
