package prover

import (
	"errors"
	"strings"
	"testing"

	"hippo/internal/engine"
	"hippo/internal/ra"
	"hippo/internal/sqlparse"
	"hippo/internal/value"
)

// planOf builds a plan for sql over a small two-table schema.
func planOf(t *testing.T, sql string) (ra.Node, *engine.DB) {
	t.Helper()
	db := engine.New()
	mustExec(db, "CREATE TABLE r (a INT, b INT)")
	mustExec(db, "CREATE TABLE s (c INT, d INT)")
	mustExec(db, "INSERT INTO r VALUES (1, 10), (2, 20)")
	mustExec(db, "INSERT INTO s VALUES (1, 100)")
	q, err := sqlparse.ParseQuery(sql)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := db.PlanQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	return plan, db
}

func ints(xs ...int64) value.Tuple {
	t := make(value.Tuple, len(xs))
	for i, x := range xs {
		t[i] = value.Int(x)
	}
	return t
}

func TestBuildFormulaScan(t *testing.T) {
	plan, _ := planOf(t, "SELECT * FROM r")
	f, err := BuildFormula(plan, ints(1, 10))
	if err != nil {
		t.Fatal(err)
	}
	a, ok := f.(FAtom)
	if !ok || a.A.Rel != "r" || !value.TuplesEqual(a.A.Tuple, ints(1, 10)) {
		t.Fatalf("formula = %s", FormulaString(f))
	}
}

func TestBuildFormulaSelect(t *testing.T) {
	plan, _ := planOf(t, "SELECT * FROM r WHERE a > 1")
	// Tuple passing the predicate: formula is the bare atom.
	f, err := BuildFormula(plan, ints(2, 20))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f.(FAtom); !ok {
		t.Fatalf("formula = %s", FormulaString(f))
	}
	// Tuple failing the predicate: statically false.
	f, err = BuildFormula(plan, ints(1, 10))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f.(FFalse); !ok {
		t.Fatalf("formula = %s, want false", FormulaString(f))
	}
}

func TestBuildFormulaProductAndJoin(t *testing.T) {
	plan, _ := planOf(t, "SELECT * FROM r, s")
	f, err := BuildFormula(plan, ints(1, 10, 1, 100))
	if err != nil {
		t.Fatal(err)
	}
	and, ok := f.(FAnd)
	if !ok || len(and.Fs) != 2 {
		t.Fatalf("formula = %s", FormulaString(f))
	}
	s := FormulaString(f)
	if !strings.Contains(s, "r(1, 10)") || !strings.Contains(s, "s(1, 100)") {
		t.Errorf("formula = %s", s)
	}

	// Join with a predicate that the tuple violates → statically false.
	plan, _ = planOf(t, "SELECT * FROM r JOIN s ON r.a = s.c")
	f, _ = BuildFormula(plan, ints(2, 20, 1, 100))
	if _, ok := f.(FFalse); !ok {
		t.Errorf("join-violating tuple should be false, got %s", FormulaString(f))
	}
	f, _ = BuildFormula(plan, ints(1, 10, 1, 100))
	if _, ok := f.(FAnd); !ok {
		t.Errorf("join-satisfying tuple should be a conjunction, got %s", FormulaString(f))
	}
}

func TestBuildFormulaUnionDiffIntersect(t *testing.T) {
	plan, _ := planOf(t, "SELECT a, b FROM r UNION SELECT c, d FROM s")
	f, err := BuildFormula(plan, ints(1, 10))
	if err != nil {
		t.Fatal(err)
	}
	s := FormulaString(f)
	if !strings.Contains(s, "∨") {
		t.Errorf("union formula = %s", s)
	}

	plan, _ = planOf(t, "SELECT a, b FROM r EXCEPT SELECT c, d FROM s")
	f, _ = BuildFormula(plan, ints(1, 10))
	s = FormulaString(f)
	if !strings.Contains(s, "¬") || !strings.Contains(s, "∧") {
		t.Errorf("difference formula = %s", s)
	}

	plan, _ = planOf(t, "SELECT a, b FROM r INTERSECT SELECT c, d FROM s")
	f, _ = BuildFormula(plan, ints(1, 10))
	if _, ok := f.(FAnd); !ok {
		t.Errorf("intersect formula = %s", FormulaString(f))
	}
}

func TestBuildFormulaSafeProjection(t *testing.T) {
	// Permutation projection: witness reconstructed in original order.
	plan, _ := planOf(t, "SELECT b, a FROM r")
	f, err := BuildFormula(plan, ints(10, 1))
	if err != nil {
		t.Fatal(err)
	}
	a, ok := f.(FAtom)
	if !ok || !value.TuplesEqual(a.A.Tuple, ints(1, 10)) {
		t.Fatalf("witness = %s", FormulaString(f))
	}
	// Duplicated column with inconsistent values → false.
	plan, _ = planOf(t, "SELECT a, a, b FROM r")
	f, err = BuildFormula(plan, ints(1, 2, 10))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f.(FFalse); !ok {
		t.Errorf("inconsistent duplicate projection should be false, got %s", FormulaString(f))
	}
	f, _ = BuildFormula(plan, ints(1, 1, 10))
	if a, ok := f.(FAtom); !ok || !value.TuplesEqual(a.A.Tuple, ints(1, 10)) {
		t.Errorf("witness = %s", FormulaString(f))
	}
}

func TestBuildFormulaArityMismatch(t *testing.T) {
	plan, _ := planOf(t, "SELECT * FROM r")
	if _, err := BuildFormula(plan, ints(1)); err == nil {
		t.Error("arity mismatch should error")
	}
}

func atom(rel string, xs ...int64) Atom { return Atom{Rel: rel, Tuple: ints(xs...)} }

func TestDNFBasics(t *testing.T) {
	a := FAtom{A: atom("r", 1)}
	b := FAtom{A: atom("r", 2)}
	c := FAtom{A: atom("s", 3)}

	// ¬(a ∧ (b ∨ c)) = ¬a ∨ (¬b ∧ ¬c)
	f := FAnd{Fs: []Formula{a, FOr{Fs: []Formula{b, c}}}}
	ds, err := NegationDNF(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 {
		t.Fatalf("disjuncts = %v", ds)
	}
	var sizes []int
	for _, d := range ds {
		sizes = append(sizes, len(d.Pos)+len(d.Neg))
		if len(d.Pos) != 0 {
			t.Errorf("negating positive formula should give negative literals: %v", d)
		}
	}
	if sizes[0]+sizes[1] != 3 {
		t.Errorf("sizes = %v", sizes)
	}
}

func TestDNFConstantsAndContradictions(t *testing.T) {
	a := FAtom{A: atom("r", 1)}
	mustDNF := func(f Formula) []Disjunct {
		t.Helper()
		ds, err := DNF(f)
		if err != nil {
			t.Fatal(err)
		}
		return ds
	}
	if ds := mustDNF(FTrue{}); len(ds) != 1 || len(ds[0].Pos)+len(ds[0].Neg) != 0 {
		t.Errorf("DNF(true) = %v", ds)
	}
	if ds := mustDNF(FFalse{}); len(ds) != 0 {
		t.Errorf("DNF(false) = %v", ds)
	}
	// a ∧ ¬a is contradictory → dropped.
	f := FAnd{Fs: []Formula{a, FNot{F: a}}}
	if ds := mustDNF(f); len(ds) != 0 {
		t.Errorf("DNF(a ∧ ¬a) = %v", ds)
	}
	// a ∨ a dedupes.
	if ds := mustDNF(FOr{Fs: []Formula{a, a}}); len(ds) != 1 {
		t.Errorf("DNF(a ∨ a) = %v", ds)
	}
	// Conjunction with false collapses.
	if ds := mustDNF(FAnd{Fs: []Formula{a, FFalse{}}}); len(ds) != 0 {
		t.Errorf("DNF(a ∧ false) = %v", ds)
	}
	// Double negation.
	if ds := mustDNF(FNot{F: FNot{F: a}}); len(ds) != 1 || len(ds[0].Pos) != 1 {
		t.Errorf("DNF(¬¬a) = %v", ds)
	}
}

// fakeFormula is a Formula implementation the DNF conversion has never
// heard of — the regression shape for the former panic at the conversion's
// default arm.
type fakeFormula struct{}

func (fakeFormula) fstring() string { return "fake" }

// TestUnknownFormulaIsErrorNotPanic feeds the offending shape: an unknown
// Formula must surface ErrUnknownFormula through DNF and IsConsistent, not
// crash the process.
func TestUnknownFormulaIsErrorNotPanic(t *testing.T) {
	if _, err := DNF(fakeFormula{}); !errors.Is(err, ErrUnknownFormula) {
		t.Fatalf("DNF(fake) err = %v, want ErrUnknownFormula", err)
	}
	// Nested under known connectives, including the negated branches.
	for _, f := range []Formula{
		FAnd{Fs: []Formula{fakeFormula{}}},
		FOr{Fs: []Formula{fakeFormula{}}},
		FNot{F: FAnd{Fs: []Formula{FAtom{A: atom("r", 1)}, fakeFormula{}}}},
		FNot{F: FOr{Fs: []Formula{fakeFormula{}}}},
	} {
		if _, err := DNF(f); !errors.Is(err, ErrUnknownFormula) {
			t.Fatalf("DNF(%v) err = %v, want ErrUnknownFormula", FormulaString(f), err)
		}
	}
	p := New(nil, IndexedMembership{})
	if _, err := p.IsConsistent(fakeFormula{}); !errors.Is(err, ErrUnknownFormula) {
		t.Fatalf("IsConsistent(fake) err = %v, want ErrUnknownFormula", err)
	}
}

func TestAtomKeyAndString(t *testing.T) {
	a1 := atom("r", 1, 2)
	a2 := Atom{Rel: "r", Tuple: value.Tuple{value.Float(1), value.Int(2)}}
	if a1.Key() != a2.Key() {
		t.Error("numerically equal atoms should share keys")
	}
	if a1.String() != "r(1, 2)" {
		t.Errorf("String = %q", a1.String())
	}
	if !strings.Contains((Disjunct{Pos: []Atom{a1}, Neg: []Atom{atom("s", 3)}}).String(), "¬s(3)") {
		t.Error("Disjunct String wrong")
	}
}
