package prover

import (
	"fmt"
	"math/rand"
	"testing"

	"hippo/internal/conflict"
	"hippo/internal/constraint"
	"hippo/internal/engine"
)

// multiCompSetup builds emp with k independent conflict components (one
// FD-violating id pair each) plus one clean row per component.
func multiCompSetup(t *testing.T, k int) (*engine.DB, *conflict.Hypergraph, *conflict.TupleIndex) {
	t.Helper()
	db := engine.New()
	mustExec(db, "CREATE TABLE emp (id INT, salary INT)")
	for i := 0; i < k; i++ {
		mustExec(db, fmt.Sprintf("INSERT INTO emp VALUES (%d, %d), (%d, %d), (%d, %d)",
			i, 100+i, i, 200+i, 1000+i, 300+i))
	}
	fd := constraint.FD{Rel: "emp", LHS: []string{"id"}, RHS: []string{"salary"}}
	h, ti, _, err := conflict.NewDetector(db).Detect([]constraint.Constraint{fd})
	if err != nil {
		t.Fatal(err)
	}
	return db, h, ti
}

// TestComponentDecompositionMatchesGlobal certifies every candidate of a
// certification-heavy difference query three ways — component-scoped,
// component-scoped with a parallel pool, and the global baseline — and
// requires identical verdicts.
func TestComponentDecompositionMatchesGlobal(t *testing.T) {
	db, h, ti := multiCompSetup(t, 6)
	if h.NumComponents() != 6 {
		t.Fatalf("setup produced %d components, want 6", h.NumComponents())
	}
	queries := []string{
		"SELECT * FROM emp",
		"SELECT * FROM emp EXCEPT SELECT * FROM emp WHERE salary >= 200",
		"SELECT * FROM emp WHERE id < 3 UNION SELECT * FROM emp WHERE salary > 250",
	}
	rows, err := db.Query("SELECT * FROM emp")
	if err != nil {
		t.Fatal(err)
	}
	for _, sql := range queries {
		for _, tup := range rows.Rows {
			comp := New(h, IndexedMembership{TI: ti})
			par := New(h, IndexedMembership{TI: ti})
			par.Pool = make(chan struct{}, 4)
			global := New(h, IndexedMembership{TI: ti})
			global.DisableComponents = true
			a := checkTuple(t, comp, db, sql, tup)
			b := checkTuple(t, par, db, sql, tup)
			c := checkTuple(t, global, db, sql, tup)
			if a != c || b != c {
				t.Fatalf("%q tuple %v: component=%v parallel=%v global=%v", sql, tup, a, b, c)
			}
		}
	}
}

// TestParallelComponentsExercised checks that a multi-component disjunct
// actually fans out when pool tokens are available. Negating a UNION
// yields one disjunct with a negative atom per branch; with the branches
// over separately-conflicting relations, those atoms land in distinct
// components.
func TestParallelComponentsExercised(t *testing.T) {
	db := engine.New()
	mustExec(db, "CREATE TABLE emp (id INT, salary INT)")
	mustExec(db, "CREATE TABLE mgr (id INT, salary INT)")
	mustExec(db, "INSERT INTO emp VALUES (1, 100), (1, 200)")
	mustExec(db, "INSERT INTO mgr VALUES (1, 100), (1, 300)")
	cs := []constraint.Constraint{
		constraint.FD{Rel: "emp", LHS: []string{"id"}, RHS: []string{"salary"}},
		constraint.FD{Rel: "mgr", LHS: []string{"id"}, RHS: []string{"salary"}},
	}
	h, ti, _, err := conflict.NewDetector(db).Detect(cs)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumComponents() != 2 {
		t.Fatalf("setup produced %d components, want 2", h.NumComponents())
	}
	p := New(h, IndexedMembership{TI: ti})
	p.Pool = make(chan struct{}, 4)
	global := New(h, IndexedMembership{TI: ti})
	global.DisableComponents = true
	// (1,100) is in both relations and conflicting in both: refuting it
	// needs a blocking edge in each component simultaneously.
	sql := "SELECT * FROM emp UNION SELECT * FROM mgr"
	got := checkTuple(t, p, db, sql, ints(1, 100))
	want := checkTuple(t, global, db, sql, ints(1, 100))
	if got != want {
		t.Fatalf("parallel=%v global=%v", got, want)
	}
	if p.Stats.Components == 0 {
		t.Fatal("no component sub-searches recorded")
	}
	if p.Stats.ParallelComps == 0 {
		t.Fatal("no sub-search ever ran on a pool token")
	}
}

// TestCertifyAnswerDeps: the dependency set must cover exactly what the
// verdict consulted — resolved atoms plus the components of conflicting
// resolved vertices.
func TestCertifyAnswerDeps(t *testing.T) {
	db, h, ti := setup(t)
	p := New(h, IndexedMembership{TI: ti})
	plan := mustPlan(t, db, "SELECT * FROM emp")
	// Conflicting candidate: deps must include its atom and its component.
	ok, deps, err := p.CertifyAnswer(plan, ints(1, 100))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("(1,100) conflicts; must not be certified")
	}
	if len(deps.Atoms) == 0 || len(deps.Comps) == 0 {
		t.Fatalf("deps incomplete: %+v", deps)
	}
	wantAtom := DepAtomKey("emp", ints(1, 100))
	found := false
	for _, a := range deps.Atoms {
		if a == wantAtom {
			found = true
		}
	}
	if !found {
		t.Fatalf("deps %v missing atom %q", deps.Atoms, wantAtom)
	}
	// Clean candidate: atom dep only, no component.
	_, deps, err = p.CertifyAnswer(plan, ints(2, 150))
	if err != nil {
		t.Fatal(err)
	}
	if len(deps.Comps) != 0 {
		t.Fatalf("conflict-free candidate recorded component deps: %+v", deps.Comps)
	}
}

// TestComponentDecompositionRandomized cross-checks component-scoped vs
// global certification over random hypergraph shapes and difference
// queries (hitting negative-atom blocker searches).
func TestComponentDecompositionRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		db := engine.New()
		mustExec(db, "CREATE TABLE emp (id INT, salary INT)")
		rows := 6 + rng.Intn(8)
		for i := 0; i < rows; i++ {
			mustExec(db, fmt.Sprintf("INSERT INTO emp VALUES (%d, %d)", rng.Intn(5), rng.Intn(4)*100))
		}
		fd := constraint.FD{Rel: "emp", LHS: []string{"id"}, RHS: []string{"salary"}}
		h, ti, _, err := conflict.NewDetector(db).Detect([]constraint.Constraint{fd})
		if err != nil {
			t.Fatal(err)
		}
		sql := "SELECT * FROM emp EXCEPT SELECT * FROM emp WHERE salary >= 200"
		res, err := db.Query("SELECT * FROM emp")
		if err != nil {
			t.Fatal(err)
		}
		for _, tup := range res.Rows {
			comp := New(h, IndexedMembership{TI: ti})
			global := New(h, IndexedMembership{TI: ti})
			global.DisableComponents = true
			if a, b := checkTuple(t, comp, db, sql, tup), checkTuple(t, global, db, sql, tup); a != b {
				t.Fatalf("trial %d tuple %v: component=%v global=%v", trial, tup, a, b)
			}
		}
	}
}
