package prover

import (
	"testing"

	"hippo/internal/conflict"
	"hippo/internal/constraint"
	"hippo/internal/engine"
	"hippo/internal/ra"
	"hippo/internal/sqlparse"
	"hippo/internal/storage"
	"hippo/internal/value"
)

// setup builds emp(id,salary) with FD id->salary, conflicts on id 1 and 3,
// and returns both prover variants.
func setup(t *testing.T) (*engine.DB, *conflict.Hypergraph, *conflict.TupleIndex) {
	t.Helper()
	db := engine.New()
	mustExec(db, "CREATE TABLE emp (id INT, salary INT)")
	mustExec(db, "INSERT INTO emp VALUES (1, 100), (1, 200), (2, 150), (3, 300), (3, 400)")
	fd := constraint.FD{Rel: "emp", LHS: []string{"id"}, RHS: []string{"salary"}}
	h, ti, _, err := conflict.NewDetector(db).Detect([]constraint.Constraint{fd})
	if err != nil {
		t.Fatal(err)
	}
	return db, h, ti
}

func indexedProver(t *testing.T) (*Prover, *engine.DB) {
	t.Helper()
	db, h, ti := setup(t)
	return New(h, IndexedMembership{TI: ti}), db
}

func checkTuple(t *testing.T, p *Prover, db *engine.DB, sql string, tup value.Tuple) bool {
	t.Helper()
	q, err := sqlparse.ParseQuery(sql)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := db.PlanQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := p.IsConsistentAnswer(plan, tup)
	if err != nil {
		t.Fatal(err)
	}
	return ok
}

func TestConflictFreeTupleIsConsistent(t *testing.T) {
	p, db := indexedProver(t)
	if !checkTuple(t, p, db, "SELECT * FROM emp", ints(2, 150)) {
		t.Error("(2,150) has no conflicts; it is in every repair")
	}
}

func TestConflictingTupleIsNotConsistent(t *testing.T) {
	p, db := indexedProver(t)
	if checkTuple(t, p, db, "SELECT * FROM emp", ints(1, 100)) {
		t.Error("(1,100) is absent from the repair keeping (1,200)")
	}
	if checkTuple(t, p, db, "SELECT * FROM emp", ints(1, 200)) {
		t.Error("(1,200) is absent from the repair keeping (1,100)")
	}
}

func TestAbsentTupleIsNotConsistent(t *testing.T) {
	p, db := indexedProver(t)
	if checkTuple(t, p, db, "SELECT * FROM emp", ints(9, 999)) {
		t.Error("tuple not in DB cannot be a consistent answer")
	}
}

func TestUnionOfConflictingAlternatives(t *testing.T) {
	// The key expressiveness win of SJUD: (1,100) and (1,200) conflict, but
	// the query σ_{id=1∧salary=100} ∪ σ_{id=1∧salary=200} — here expressed
	// as a disjunctive selection — is consistently *nonempty* on witness
	// tuples? Individual tuples still fail; what succeeds is a selection
	// both variants satisfy (e.g. projecting the id via permutation-free
	// means is not allowed, so we check a coarser tuple-level union).
	p, db := indexedProver(t)
	// Every repair contains exactly one of (1,100)/(1,200); the tuple
	// (1,100) is consistent for "emp where salary=100 UNION emp where
	// salary<>100"? No: the tuple itself must be in the union's result in
	// every repair, and in the repair keeping (1,200) it is in neither arm.
	if checkTuple(t, p, db,
		"SELECT * FROM emp WHERE salary = 100 UNION SELECT * FROM emp WHERE salary <> 100",
		ints(1, 100)) {
		t.Error("union does not resurrect deleted tuples")
	}
	// But the conflict-free tuple is consistent through either arm.
	if !checkTuple(t, p, db,
		"SELECT * FROM emp WHERE salary = 100 UNION SELECT * FROM emp WHERE salary <> 100",
		ints(2, 150)) {
		t.Error("conflict-free tuple should be consistent for the union")
	}
}

func TestDifferenceSemantics(t *testing.T) {
	db := engine.New()
	mustExec(db, "CREATE TABLE a (x INT)")
	mustExec(db, "CREATE TABLE b (x INT, y INT)")
	mustExec(db, "INSERT INTO a VALUES (1), (2)")
	// b has an FD conflict on x=1: (1,10) vs (1,20).
	mustExec(db, "INSERT INTO b VALUES (1, 10), (1, 20)")
	fd := constraint.FD{Rel: "b", LHS: []string{"x"}, RHS: []string{"y"}}
	h, ti, _, err := conflict.NewDetector(db).Detect([]constraint.Constraint{fd})
	if err != nil {
		t.Fatal(err)
	}
	p := New(h, IndexedMembership{TI: ti})

	// Q = a EXCEPT (x-values...) is not expressible without projection;
	// instead: is tuple (2) consistent for "a EXCEPT a-where-x=1"? Plain
	// SJD on one relation with no conflicts in a.
	if !checkTuple(t, p, db, "SELECT * FROM a EXCEPT SELECT * FROM a WHERE x = 1", ints(2)) {
		t.Error("(2) survives the difference in every repair")
	}
	if checkTuple(t, p, db, "SELECT * FROM a EXCEPT SELECT * FROM a WHERE x = 1", ints(1)) {
		t.Error("(1) is subtracted in every repair")
	}
}

func TestDifferenceAgainstConflictingRelation(t *testing.T) {
	// r(x) minus s(x) where s's tuple (1) is in conflict: in the repair
	// that drops s's (1), r's (1) is in the difference; in the other it is
	// not → not consistent. Tuple (2) is always in the difference.
	db := engine.New()
	mustExec(db, "CREATE TABLE r (x INT)")
	mustExec(db, "CREATE TABLE s (x INT)")
	mustExec(db, "INSERT INTO r VALUES (1), (2)")
	mustExec(db, "INSERT INTO s VALUES (1), (1)") // set semantics: use distinct rows
	// Make the two s-rows conflict with each other via a denial "no two
	// distinct s tuples may share x" — but they are identical, so instead
	// use a unary denial on one relation: forbid s.x = 1.
	mustExec(db, "DELETE FROM s")
	mustExec(db, "INSERT INTO s VALUES (1)")
	den, err := constraint.ParseDenial("s t WHERE t.x = 1")
	if err != nil {
		t.Fatal(err)
	}
	h, ti, _, err := conflict.NewDetector(db).Detect([]constraint.Constraint{den})
	if err != nil {
		t.Fatal(err)
	}
	p := New(h, IndexedMembership{TI: ti})
	// s's (1) is self-conflicting → deleted in the unique repair → r−s
	// contains (1) in every repair.
	if !checkTuple(t, p, db, "SELECT * FROM r EXCEPT SELECT * FROM s", ints(1)) {
		t.Error("(1) should be consistent: s's copy is excluded from every repair")
	}
	if !checkTuple(t, p, db, "SELECT * FROM r EXCEPT SELECT * FROM s", ints(2)) {
		t.Error("(2) should be consistent")
	}
}

func TestJoinConsistency(t *testing.T) {
	db := engine.New()
	mustExec(db, "CREATE TABLE e (id INT, dept INT)")
	mustExec(db, "CREATE TABLE d (dept INT, name TEXT)")
	mustExec(db, "INSERT INTO e VALUES (1, 10), (2, 20)")
	mustExec(db, "INSERT INTO d VALUES (10, 'eng'), (20, 'ops'), (20, 'mkt')")
	fd := constraint.FD{Rel: "d", LHS: []string{"dept"}, RHS: []string{"name"}}
	h, ti, _, err := conflict.NewDetector(db).Detect([]constraint.Constraint{fd})
	if err != nil {
		t.Fatal(err)
	}
	p := New(h, IndexedMembership{TI: ti})
	q := "SELECT * FROM e, d WHERE e.dept = d.dept"
	// (1,10,10,'eng'): both sides conflict-free → consistent.
	tup := value.Tuple{value.Int(1), value.Int(10), value.Int(10), value.Text("eng")}
	if ok, _ := p.IsConsistentAnswer(mustPlan(t, db, q), tup); !ok {
		t.Error("conflict-free join tuple should be consistent")
	}
	// (2,20,20,'ops'): d's (20,'ops') conflicts with (20,'mkt') → not.
	tup = value.Tuple{value.Int(2), value.Int(20), value.Int(20), value.Text("ops")}
	if ok, _ := p.IsConsistentAnswer(mustPlan(t, db, q), tup); ok {
		t.Error("join tuple with conflicting witness is not consistent")
	}
}

func mustPlan(t *testing.T, db *engine.DB, sql string) ra.Node {
	t.Helper()
	q, err := sqlparse.ParseQuery(sql)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := db.PlanQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestNaiveMembershipCountsQueries(t *testing.T) {
	db, h, ti := setup(t)
	p := New(h, NaiveMembership{DB: db, TI: ti})
	before := db.QueryCount()
	if !checkTuple(t, p, db, "SELECT * FROM emp", ints(2, 150)) {
		t.Error("(2,150) should be consistent")
	}
	if db.QueryCount() == before {
		t.Error("naive membership should issue engine queries")
	}
	if p.Stats.MembershipChecks == 0 || p.Stats.TuplesChecked != 1 {
		t.Errorf("stats = %+v", p.Stats)
	}
	// Indexed prover issues none.
	db2, h2, ti2 := setup(t)
	p2 := New(h2, IndexedMembership{TI: ti2})
	before = db2.QueryCount()
	checkTuple(t, p2, db2, "SELECT * FROM emp", ints(2, 150))
	if db2.QueryCount() != before {
		t.Error("indexed membership must not query the engine")
	}
}

func TestNaiveMembershipNullColumns(t *testing.T) {
	db := engine.New()
	mustExec(db, "CREATE TABLE n (a INT, b INT)")
	mustExec(db, "INSERT INTO n VALUES (1, NULL)")
	h, ti, _, err := conflict.NewDetector(db).Detect(nil)
	if err != nil {
		t.Fatal(err)
	}
	// The tuple index has no tables when there are no constraints; build
	// membership over an explicitly indexed relation instead.
	_ = h
	_ = ti
	ti2, err := conflict.NewTupleIndex(map[string]*storage.Table{"n": mustTable(t, db, "n")})
	if err != nil {
		t.Fatal(err)
	}
	m := NaiveMembership{DB: db, TI: ti2}
	ids, err := m.Lookup("n", value.Tuple{value.Int(1), value.Null()})
	if err != nil || len(ids) != 1 {
		t.Errorf("NULL-aware membership = %v, %v", ids, err)
	}
	ids, err = m.Lookup("n", value.Tuple{value.Int(1), value.Int(5)})
	if err != nil || len(ids) != 0 {
		t.Errorf("missing tuple = %v, %v", ids, err)
	}
	if _, err := m.Lookup("n", value.Tuple{value.Int(1)}); err == nil {
		t.Error("arity mismatch should error")
	}
	if _, err := m.Lookup("zzz", value.Tuple{}); err == nil {
		t.Error("unknown relation should error")
	}
}

func mustTable(t *testing.T, db *engine.DB, name string) *storage.Table {
	t.Helper()
	tb, err := db.Table(name)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestDisablePruningSameAnswers(t *testing.T) {
	db, h, ti := setup(t)
	fast := New(h, IndexedMembership{TI: ti})
	slow := New(h, IndexedMembership{TI: ti})
	slow.DisablePruning = true
	queries := []string{
		"SELECT * FROM emp",
		"SELECT * FROM emp WHERE salary > 120",
		"SELECT * FROM emp EXCEPT SELECT * FROM emp WHERE id = 1",
	}
	tuples := []value.Tuple{ints(1, 100), ints(2, 150), ints(3, 300), ints(9, 9)}
	for _, q := range queries {
		plan := mustPlan(t, db, q)
		for _, tup := range tuples {
			a, err := fast.IsConsistentAnswer(plan, tup)
			if err != nil {
				t.Fatal(err)
			}
			b, err := slow.IsConsistentAnswer(plan, tup)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Errorf("pruning changed the answer for %v on %q: %v vs %v", tup, q, a, b)
			}
		}
	}
}

func TestProverStatsAccumulate(t *testing.T) {
	p, db := indexedProver(t)
	checkTuple(t, p, db, "SELECT * FROM emp", ints(1, 100))
	checkTuple(t, p, db, "SELECT * FROM emp", ints(2, 150))
	if p.Stats.TuplesChecked != 2 {
		t.Errorf("TuplesChecked = %d", p.Stats.TuplesChecked)
	}
	if p.Stats.Disjuncts == 0 || p.Stats.MembershipChecks == 0 {
		t.Errorf("stats = %+v", p.Stats)
	}
}
