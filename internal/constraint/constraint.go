// Package constraint models the integrity constraints Hippo supports:
// denial constraints — statements of the form
//
//	¬ ∃ x̄₁…x̄ₖ : R₁(x̄₁) ∧ … ∧ Rₖ(x̄ₖ) ∧ φ(x̄₁,…,x̄ₖ)
//
// ("no combination of tuples may jointly satisfy φ"), with functional
// dependencies, key constraints, and exclusion constraints provided as
// named special cases that the conflict detector and the query-rewriting
// baseline can exploit.
package constraint

import (
	"fmt"
	"strings"

	"hippo/internal/schema"
	"hippo/internal/sqlparse"
)

// Catalog resolves relation names to schemas. engine.DB satisfies it via a
// small adapter; tests can supply fakes.
type Catalog interface {
	TableSchema(name string) (schema.Schema, error)
}

// Constraint is any integrity constraint expressible as a denial.
type Constraint interface {
	// Denial lowers the constraint to its denial form, resolving schema
	// information through the catalog.
	Denial(cat Catalog) (Denial, error)
	// String renders the constraint for display.
	String() string
}

// Atom is one relation occurrence in a denial constraint.
type Atom struct {
	Rel   string // relation name
	Alias string // alias the condition refers to it by
}

// Name returns the alias if set, else the relation name.
func (a Atom) Name() string {
	if a.Alias != "" {
		return a.Alias
	}
	return a.Rel
}

// Denial is the general form of a denial constraint: a set of relation
// atoms plus a condition over their aliases. A nil condition means every
// combination of tuples violates (useful only in tests).
type Denial struct {
	Label string        // optional human-readable name
	Atoms []Atom        // at least one
	Where sqlparse.Expr // condition over the atom aliases
}

// Denial returns d itself (Denial is already in denial form).
func (d Denial) Denial(Catalog) (Denial, error) {
	if len(d.Atoms) == 0 {
		return Denial{}, fmt.Errorf("constraint: denial needs at least one atom")
	}
	seen := map[string]bool{}
	for _, a := range d.Atoms {
		n := strings.ToLower(a.Name())
		if seen[n] {
			return Denial{}, fmt.Errorf("constraint: duplicate atom alias %q", a.Name())
		}
		seen[n] = true
	}
	return d, nil
}

// Arity returns the number of atoms.
func (d Denial) Arity() int { return len(d.Atoms) }

// String renders the denial as FORBID atoms WHERE cond.
func (d Denial) String() string {
	var b strings.Builder
	b.WriteString("FORBID ")
	for i, a := range d.Atoms {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Rel)
		if a.Alias != "" && !strings.EqualFold(a.Alias, a.Rel) {
			b.WriteString(" AS " + a.Alias)
		}
	}
	if d.Where != nil {
		b.WriteString(" WHERE " + d.Where.String())
	}
	return b.String()
}

// FD is a functional dependency Rel: LHS → RHS. Two tuples agreeing on all
// LHS attributes must agree on all RHS attributes.
type FD struct {
	Rel string
	LHS []string
	RHS []string
}

// String renders the FD as rel: a,b -> c.
func (f FD) String() string {
	return fmt.Sprintf("FD %s: %s -> %s",
		f.Rel, strings.Join(f.LHS, ","), strings.Join(f.RHS, ","))
}

// Denial lowers the FD to
//
//	FORBID rel AS t0, rel AS t1 WHERE t0.lhs=t1.lhs AND (t0.rhs<>t1.rhs OR …)
func (f FD) Denial(cat Catalog) (Denial, error) {
	if len(f.LHS) == 0 || len(f.RHS) == 0 {
		return Denial{}, fmt.Errorf("constraint: FD on %s needs non-empty LHS and RHS", f.Rel)
	}
	sch, err := cat.TableSchema(f.Rel)
	if err != nil {
		return Denial{}, err
	}
	for _, c := range append(append([]string{}, f.LHS...), f.RHS...) {
		if _, err := sch.Resolve("", c); err != nil {
			return Denial{}, fmt.Errorf("constraint: %s: %v", f, err)
		}
	}
	var cond sqlparse.Expr
	for _, c := range f.LHS {
		eq := sqlparse.BinExpr{
			Op: "=",
			L:  sqlparse.ColRef{Qualifier: "t0", Name: c},
			R:  sqlparse.ColRef{Qualifier: "t1", Name: c},
		}
		cond = andExpr(cond, eq)
	}
	var diff sqlparse.Expr
	for _, c := range f.RHS {
		ne := sqlparse.BinExpr{
			Op: "<>",
			L:  sqlparse.ColRef{Qualifier: "t0", Name: c},
			R:  sqlparse.ColRef{Qualifier: "t1", Name: c},
		}
		if diff == nil {
			diff = ne
		} else {
			diff = sqlparse.BinExpr{Op: "OR", L: diff, R: ne}
		}
	}
	cond = andExpr(cond, diff)
	return Denial{
		Label: f.String(),
		Atoms: []Atom{{Rel: f.Rel, Alias: "t0"}, {Rel: f.Rel, Alias: "t1"}},
		Where: cond,
	}, nil
}

// Key declares Cols as a key of Rel: it is the FD Cols → (all other
// columns).
type Key struct {
	Rel  string
	Cols []string
}

// String renders the key constraint.
func (k Key) String() string {
	return fmt.Sprintf("KEY %s(%s)", k.Rel, strings.Join(k.Cols, ","))
}

// Denial expands the key to an FD over the remaining columns and lowers it.
func (k Key) Denial(cat Catalog) (Denial, error) {
	sch, err := cat.TableSchema(k.Rel)
	if err != nil {
		return Denial{}, err
	}
	isKeyCol := map[string]bool{}
	for _, c := range k.Cols {
		if _, err := sch.Resolve("", c); err != nil {
			return Denial{}, fmt.Errorf("constraint: %s: %v", k, err)
		}
		isKeyCol[strings.ToLower(c)] = true
	}
	var rhs []string
	for _, c := range sch.Columns {
		if !isKeyCol[strings.ToLower(c.Name)] {
			rhs = append(rhs, c.Name)
		}
	}
	if len(rhs) == 0 {
		return Denial{}, fmt.Errorf("constraint: %s covers all columns; nothing to depend", k)
	}
	d, err := FD{Rel: k.Rel, LHS: k.Cols, RHS: rhs}.Denial(cat)
	if err != nil {
		return Denial{}, err
	}
	d.Label = k.String()
	return d, nil
}

// Exclusion forbids a pair of tuples from two relations (possibly the same
// one) from jointly satisfying a condition — e.g. "nobody may appear in
// both staff and contractors with the same ssn".
type Exclusion struct {
	A, B  Atom
	Where sqlparse.Expr
}

// String renders the exclusion constraint.
func (e Exclusion) String() string {
	d, _ := e.Denial(nil)
	return strings.Replace(d.String(), "FORBID", "EXCLUSION", 1)
}

// Denial lowers the exclusion to a binary denial.
func (e Exclusion) Denial(Catalog) (Denial, error) {
	a, b := e.A, e.B
	if a.Alias == "" {
		a.Alias = "t0"
	}
	if b.Alias == "" {
		b.Alias = "t1"
	}
	return Denial{
		Label: fmt.Sprintf("EXCLUSION %s/%s", a.Rel, b.Rel),
		Atoms: []Atom{a, b},
		Where: e.Where,
	}, nil
}

func andExpr(l, r sqlparse.Expr) sqlparse.Expr {
	if l == nil {
		return r
	}
	if r == nil {
		return l
	}
	return sqlparse.BinExpr{Op: "AND", L: l, R: r}
}

// ParseFD parses "rel: a,b -> c,d".
func ParseFD(s string) (FD, error) {
	relPart, rest, ok := strings.Cut(s, ":")
	if !ok {
		return FD{}, fmt.Errorf("constraint: FD must look like \"rel: a,b -> c\", got %q", s)
	}
	lhsPart, rhsPart, ok := strings.Cut(rest, "->")
	if !ok {
		return FD{}, fmt.Errorf("constraint: FD %q is missing \"->\"", s)
	}
	fd := FD{
		Rel: strings.TrimSpace(relPart),
		LHS: splitNames(lhsPart),
		RHS: splitNames(rhsPart),
	}
	if fd.Rel == "" || len(fd.LHS) == 0 || len(fd.RHS) == 0 {
		return FD{}, fmt.Errorf("constraint: FD %q has empty relation or column lists", s)
	}
	return fd, nil
}

// ParseDenial parses "rel1 AS a, rel2 AS b WHERE <condition>" into a
// denial constraint, reusing the SQL parser for the FROM/WHERE shape.
func ParseDenial(s string) (Denial, error) {
	q, err := sqlparse.ParseQuery("SELECT * FROM " + s)
	if err != nil {
		return Denial{}, fmt.Errorf("constraint: bad denial %q: %v", s, err)
	}
	if len(q.Rest) > 0 || len(q.Left.Joins) > 0 {
		return Denial{}, fmt.Errorf("constraint: denial %q must be a plain atom list with WHERE", s)
	}
	d := Denial{Label: "FORBID " + s}
	for _, f := range q.Left.From {
		d.Atoms = append(d.Atoms, Atom{Rel: f.Table, Alias: f.Alias})
	}
	d.Where = q.Left.Where
	return d.Denial(nil)
}

func splitNames(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
