package constraint

import (
	"strings"
	"testing"

	"hippo/internal/engine"
	"hippo/internal/sqlparse"
)

func cat(t *testing.T) Catalog {
	t.Helper()
	db := engine.New()
	mustExec(db, "CREATE TABLE emp (id INT, name TEXT, salary FLOAT)")
	mustExec(db, "CREATE TABLE mgr (id INT, bonus FLOAT)")
	return db
}

func TestFDDenial(t *testing.T) {
	fd := FD{Rel: "emp", LHS: []string{"id"}, RHS: []string{"name", "salary"}}
	d, err := fd.Denial(cat(t))
	if err != nil {
		t.Fatal(err)
	}
	if d.Arity() != 2 || d.Atoms[0].Rel != "emp" || d.Atoms[1].Rel != "emp" {
		t.Fatalf("atoms = %v", d.Atoms)
	}
	cond := d.Where.String()
	for _, frag := range []string{"t0.id = t1.id", "t0.name <> t1.name", "OR", "t0.salary <> t1.salary"} {
		if !strings.Contains(cond, frag) {
			t.Errorf("condition %q missing %q", cond, frag)
		}
	}
	if !strings.Contains(fd.String(), "FD emp: id -> name,salary") {
		t.Errorf("String = %q", fd.String())
	}
}

func TestFDValidation(t *testing.T) {
	c := cat(t)
	if _, err := (FD{Rel: "emp", LHS: []string{"id"}, RHS: []string{"nope"}}).Denial(c); err == nil {
		t.Error("unknown RHS column should fail")
	}
	if _, err := (FD{Rel: "missing", LHS: []string{"id"}, RHS: []string{"x"}}).Denial(c); err == nil {
		t.Error("unknown relation should fail")
	}
	if _, err := (FD{Rel: "emp", LHS: nil, RHS: []string{"name"}}).Denial(c); err == nil {
		t.Error("empty LHS should fail")
	}
}

func TestKeyDenial(t *testing.T) {
	k := Key{Rel: "emp", Cols: []string{"id"}}
	d, err := k.Denial(cat(t))
	if err != nil {
		t.Fatal(err)
	}
	cond := d.Where.String()
	// Key id expands to FD id -> name, salary.
	if !strings.Contains(cond, "t0.name <> t1.name") || !strings.Contains(cond, "t0.salary <> t1.salary") {
		t.Errorf("key condition = %q", cond)
	}
	if !strings.HasPrefix(d.Label, "KEY") {
		t.Errorf("label = %q", d.Label)
	}
	if _, err := (Key{Rel: "emp", Cols: []string{"id", "name", "salary"}}).Denial(cat(t)); err == nil {
		t.Error("all-column key should fail")
	}
	if _, err := (Key{Rel: "emp", Cols: []string{"bogus"}}).Denial(cat(t)); err == nil {
		t.Error("bad key column should fail")
	}
	if !strings.Contains(k.String(), "KEY emp(id)") {
		t.Errorf("String = %q", k.String())
	}
}

func TestExclusionDenial(t *testing.T) {
	e := Exclusion{
		A:     Atom{Rel: "emp", Alias: "e"},
		B:     Atom{Rel: "mgr", Alias: "m"},
		Where: mustWhere(t, "e.id = m.id"),
	}
	d, err := e.Denial(nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Atoms[0].Alias != "e" || d.Atoms[1].Alias != "m" {
		t.Errorf("atoms = %v", d.Atoms)
	}
	// Default aliases when unset.
	e2 := Exclusion{A: Atom{Rel: "emp"}, B: Atom{Rel: "mgr"}}
	d2, _ := e2.Denial(nil)
	if d2.Atoms[0].Alias != "t0" || d2.Atoms[1].Alias != "t1" {
		t.Errorf("default aliases = %v", d2.Atoms)
	}
	if !strings.Contains(e.String(), "EXCLUSION") {
		t.Errorf("String = %q", e.String())
	}
}

func mustWhere(t *testing.T, cond string) sqlparse.Expr {
	t.Helper()
	d, err := ParseDenial("emp AS e, mgr AS m WHERE " + cond)
	if err != nil {
		t.Fatal(err)
	}
	return d.Where
}

func TestDenialValidation(t *testing.T) {
	if _, err := (Denial{}).Denial(nil); err == nil {
		t.Error("empty denial should fail")
	}
	dup := Denial{Atoms: []Atom{{Rel: "emp", Alias: "x"}, {Rel: "mgr", Alias: "x"}}}
	if _, err := dup.Denial(nil); err == nil {
		t.Error("duplicate alias should fail")
	}
	ok := Denial{Atoms: []Atom{{Rel: "emp"}, {Rel: "mgr"}}}
	if _, err := ok.Denial(nil); err != nil {
		t.Errorf("distinct default names should pass: %v", err)
	}
}

func TestParseFD(t *testing.T) {
	fd, err := ParseFD("emp: id, dept -> salary")
	if err != nil {
		t.Fatal(err)
	}
	if fd.Rel != "emp" || len(fd.LHS) != 2 || fd.LHS[1] != "dept" || fd.RHS[0] != "salary" {
		t.Errorf("parsed %+v", fd)
	}
	bad := []string{"emp id -> salary", "emp: id salary", ": id -> x", "emp: -> x", "emp: id ->"}
	for _, s := range bad {
		if _, err := ParseFD(s); err == nil {
			t.Errorf("ParseFD(%q) should fail", s)
		}
	}
}

func TestParseDenial(t *testing.T) {
	d, err := ParseDenial("emp AS x, emp AS y WHERE x.id = y.id AND x.salary <> y.salary")
	if err != nil {
		t.Fatal(err)
	}
	if d.Arity() != 2 || d.Atoms[0].Alias != "x" {
		t.Errorf("parsed %+v", d)
	}
	if !strings.Contains(d.String(), "FORBID") {
		t.Errorf("String = %q", d.String())
	}
	bad := []string{
		"emp WHERE ) bogus",
		"emp AS x, emp AS x WHERE x.id = 1",
		"emp AS x WHERE x.id = 1 UNION SELECT * FROM emp",
	}
	for _, s := range bad {
		if _, err := ParseDenial(s); err == nil {
			t.Errorf("ParseDenial(%q) should fail", s)
		}
	}
	// Unary denial (single atom).
	d, err = ParseDenial("emp e WHERE e.salary < 0")
	if err != nil || d.Arity() != 1 {
		t.Fatalf("unary denial: %+v, %v", d, err)
	}
}
