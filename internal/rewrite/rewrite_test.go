package rewrite

import (
	"errors"
	"sort"
	"strings"
	"testing"

	"hippo/internal/conflict"
	"hippo/internal/constraint"
	"hippo/internal/engine"
	"hippo/internal/ra"
	"hippo/internal/repair"
	"hippo/internal/value"
)

func newDB(t *testing.T) *engine.DB {
	t.Helper()
	db := engine.New()
	mustExec(db, "CREATE TABLE emp (id INT, salary INT)")
	mustExec(db, "INSERT INTO emp VALUES (1, 100), (1, 200), (2, 150), (3, 300), (3, 400), (4, 50)")
	return db
}

func fd() constraint.FD {
	return constraint.FD{Rel: "emp", LHS: []string{"id"}, RHS: []string{"salary"}}
}

func runPlan(t *testing.T, db *engine.DB, rw *Rewriter, sql string) []string {
	t.Helper()
	plan, err := rw.RewriteSQL(sql)
	if err != nil {
		t.Fatalf("RewriteSQL(%q): %v", sql, err)
	}
	res, err := db.RunPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = value.TupleString(r)
	}
	sort.Strings(out)
	return out
}

func oracle(t *testing.T, db *engine.DB, cs []constraint.Constraint, sql string) []string {
	t.Helper()
	h, _, _, err := conflict.NewDetector(db).Detect(cs)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := (&repair.Enumerator{DB: db, H: h}).ConsistentAnswers(sql)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = value.TupleString(r)
	}
	sort.Strings(out)
	return out
}

func same(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRewriteSelectionMatchesOracle(t *testing.T) {
	db := newDB(t)
	cs := []constraint.Constraint{fd()}
	rw, err := New(db, cs)
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"SELECT * FROM emp",
		"SELECT * FROM emp WHERE salary > 120",
		"SELECT * FROM emp WHERE id = 1",
		"SELECT * FROM emp WHERE id = 2 AND salary < 1000",
	}
	for _, q := range queries {
		got := runPlan(t, db, rw, q)
		want := oracle(t, db, cs, q)
		if !same(got, want) {
			t.Errorf("%q:\n got %v\nwant %v", q, got, want)
		}
	}
}

func TestRewriteJoinMatchesOracle(t *testing.T) {
	db := newDB(t)
	mustExec(db, "CREATE TABLE dept (eid INT, dname TEXT)")
	mustExec(db, "INSERT INTO dept VALUES (1, 'eng'), (2, 'ops'), (2, 'hr')")
	cs := []constraint.Constraint{
		fd(),
		constraint.FD{Rel: "dept", LHS: []string{"eid"}, RHS: []string{"dname"}},
	}
	rw, err := New(db, cs)
	if err != nil {
		t.Fatal(err)
	}
	q := "SELECT e.id, e.salary, d.eid, d.dname FROM emp e, dept d WHERE e.id = d.eid"
	got := runPlan(t, db, rw, q)
	want := oracle(t, db, cs, q)
	if !same(got, want) {
		t.Errorf("join:\n got %v\nwant %v", got, want)
	}
}

func TestRewriteExclusionConstraint(t *testing.T) {
	db := engine.New()
	mustExec(db, "CREATE TABLE staff (ssn INT, nm TEXT)")
	mustExec(db, "CREATE TABLE extern (ssn INT, firm TEXT)")
	mustExec(db, "INSERT INTO staff VALUES (1, 'ann'), (2, 'bob')")
	mustExec(db, "INSERT INTO extern VALUES (2, 'acme'), (3, 'init')")
	den, err := constraint.ParseDenial("staff s, extern x WHERE s.ssn = x.ssn")
	if err != nil {
		t.Fatal(err)
	}
	cs := []constraint.Constraint{den}
	rw, err := New(db, cs)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"SELECT * FROM staff", "SELECT * FROM extern"} {
		got := runPlan(t, db, rw, q)
		want := oracle(t, db, cs, q)
		if !same(got, want) {
			t.Errorf("%q:\n got %v\nwant %v", q, got, want)
		}
	}
}

func TestRewriteUnaryDenial(t *testing.T) {
	db := engine.New()
	mustExec(db, "CREATE TABLE acct (id INT, bal INT)")
	mustExec(db, "INSERT INTO acct VALUES (1, 50), (2, -10)")
	den, err := constraint.ParseDenial("acct a WHERE a.bal < 0")
	if err != nil {
		t.Fatal(err)
	}
	cs := []constraint.Constraint{den}
	rw, err := New(db, cs)
	if err != nil {
		t.Fatal(err)
	}
	got := runPlan(t, db, rw, "SELECT * FROM acct")
	want := oracle(t, db, cs, "SELECT * FROM acct")
	if !same(got, want) {
		t.Errorf("unary:\n got %v\nwant %v", got, want)
	}
}

func TestRewriteDifference(t *testing.T) {
	db := newDB(t)
	cs := []constraint.Constraint{fd()}
	rw, err := New(db, cs)
	if err != nil {
		t.Fatal(err)
	}
	// Right side of EXCEPT gets no residues (negative occurrence).
	q := "SELECT * FROM emp EXCEPT SELECT * FROM emp WHERE salary >= 300"
	got := runPlan(t, db, rw, q)
	want := oracle(t, db, cs, q)
	if !same(got, want) {
		t.Errorf("difference:\n got %v\nwant %v", got, want)
	}
}

func TestRewriteRejectsUnion(t *testing.T) {
	db := newDB(t)
	rw, err := New(db, []constraint.Constraint{fd()})
	if err != nil {
		t.Fatal(err)
	}
	_, err = rw.RewriteSQL("SELECT * FROM emp UNION SELECT * FROM emp")
	if !errors.Is(err, ErrUnionNotSupported) {
		t.Errorf("err = %v, want ErrUnionNotSupported", err)
	}
}

func TestRewriteRejectsTernaryConstraints(t *testing.T) {
	db := engine.New()
	mustExec(db, "CREATE TABLE r (a INT)")
	den, err := constraint.ParseDenial("r x, r y, r z WHERE x.a = y.a AND y.a = z.a")
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(db, []constraint.Constraint{den})
	if !errors.Is(err, ErrConstraintNotBinary) {
		t.Errorf("err = %v, want ErrConstraintNotBinary", err)
	}
}

func TestRewrittenPlanShape(t *testing.T) {
	db := newDB(t)
	rw, err := New(db, []constraint.Constraint{fd()})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := rw.RewriteSQL("SELECT * FROM emp WHERE salary > 0")
	if err != nil {
		t.Fatal(err)
	}
	s := ra.Format(plan)
	// The FD installs two residues (one per atom), but for a symmetric
	// self-denial they are the same filter, so the applied plan carries a
	// single anti-join over the scan.
	if strings.Count(s, "AntiJoin") != 1 {
		t.Errorf("plan:\n%s", s)
	}
	if len(rw.Residues()) != 2 {
		t.Errorf("residues = %v", rw.Residues())
	}
}
