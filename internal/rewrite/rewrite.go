// Package rewrite implements the query-rewriting baseline Hippo is
// compared against (Arenas, Bertossi & Chomicki, PODS 1999): the input
// query Q is rewritten into Q' such that evaluating Q' directly on the
// inconsistent database returns the consistent answers to Q.
//
// Rewriting attaches each constraint's *residue* to every positive
// occurrence of a relation. A binary denial constraint
//
//	¬(R(x) ∧ S(y) ∧ φ(x,y))
//
// contributes the residue ¬∃y (S(y) ∧ φ(x,y)) to the literal R(x): a tuple
// counts only if no partner tuple completes a violation with it. In
// algebra this is an anti-join of R against S on φ. Negative occurrences
// (the right side of a difference) receive no residues from denial
// constraints, matching the original method.
//
// As in the paper, this approach works only for the SJD query class (no
// union) in the presence of binary universal constraints (FDs, exclusion
// constraints); Hippo's hypergraph method strictly generalizes it. The
// class restrictions are enforced and reported via typed errors so the
// expressiveness experiment (E2) can tabulate them.
package rewrite

import (
	"errors"
	"fmt"
	"strings"

	"hippo/internal/constraint"
	"hippo/internal/engine"
	"hippo/internal/ra"
	"hippo/internal/sqlparse"
)

// ErrUnionNotSupported is returned for queries containing UNION: query
// rewriting handles only the SJD class.
var ErrUnionNotSupported = errors.New("rewrite: query rewriting supports only SJD queries (no UNION)")

// ErrConstraintNotBinary is returned when a constraint is not a binary
// denial (the class the rewriting method handles).
var ErrConstraintNotBinary = errors.New("rewrite: query rewriting requires binary universal constraints")

// Rewriter rewrites query plans against a fixed constraint set.
type Rewriter struct {
	db       *engine.DB
	residues []residue
}

// residue is one prepared anti-join obligation: positive occurrences of
// relation rel must have no partner in partnerRel satisfying pred (over
// the concatenated (rel, partnerRel) row).
type residue struct {
	rel        string
	partnerRel string
	pred       ra.Expr
	label      string
}

// New prepares a rewriter for the given constraints. All constraints must
// lower to binary denials; unary denials are also accepted (they become
// plain selections).
func New(db *engine.DB, constraints []constraint.Constraint) (*Rewriter, error) {
	rw := &Rewriter{db: db}
	for _, c := range constraints {
		den, err := c.Denial(db)
		if err != nil {
			return nil, err
		}
		switch den.Arity() {
		case 1:
			if err := rw.addUnary(den); err != nil {
				return nil, err
			}
		case 2:
			if err := rw.addBinary(den); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("%w: %s has %d atoms", ErrConstraintNotBinary, c, den.Arity())
		}
	}
	return rw, nil
}

// addUnary turns ¬(R(x) ∧ φ(x)) into the residue ¬φ(x), i.e. a selection.
// It is modeled as an anti-join of R against itself on identity + φ, which
// keeps the execution machinery uniform.
func (rw *Rewriter) addUnary(den constraint.Denial) error {
	a := den.Atoms[0]
	t, err := rw.db.Table(a.Rel)
	if err != nil {
		return err
	}
	sch := t.Schema().WithQualifier(strings.ToLower(a.Name()))
	pred, err := engine.PlanScalar(den.Where, sch)
	if err != nil {
		return fmt.Errorf("rewrite: constraint %s: %v", den.Label, err)
	}
	// Self-pairing on full row identity: left row i equals right row i.
	arity := sch.Len()
	var eq ra.Expr
	for i := 0; i < arity; i++ {
		eq = ra.Conjoin(eq, ra.Cmp{Op: ra.EQ, L: ra.Col{Index: i}, R: ra.Col{Index: i + arity}})
	}
	rw.residues = append(rw.residues, residue{
		rel:        strings.ToLower(a.Rel),
		partnerRel: strings.ToLower(a.Rel),
		pred:       ra.Conjoin(eq, pred),
		label:      den.Label,
	})
	return nil
}

// addBinary installs residues for both atoms of a binary denial.
func (rw *Rewriter) addBinary(den constraint.Denial) error {
	for self := 0; self < 2; self++ {
		other := 1 - self
		a, b := den.Atoms[self], den.Atoms[other]
		ta, err := rw.db.Table(a.Rel)
		if err != nil {
			return err
		}
		tb, err := rw.db.Table(b.Rel)
		if err != nil {
			return err
		}
		// Bind the condition against (self, other) column order.
		combined := ta.Schema().WithQualifier(strings.ToLower(a.Name())).
			Concat(tb.Schema().WithQualifier(strings.ToLower(b.Name())))
		pred, err := engine.PlanScalar(den.Where, combined)
		if err != nil {
			return fmt.Errorf("rewrite: constraint %s: %v", den.Label, err)
		}
		rw.residues = append(rw.residues, residue{
			rel:        strings.ToLower(a.Rel),
			partnerRel: strings.ToLower(b.Rel),
			pred:       pred,
			label:      den.Label,
		})
	}
	return nil
}

// RewriteSQL parses, plans, and rewrites a query in one step.
func (rw *Rewriter) RewriteSQL(sql string) (ra.Node, error) {
	q, err := sqlparse.ParseQuery(sql)
	if err != nil {
		return nil, err
	}
	plan, err := rw.db.PlanQuery(q)
	if err != nil {
		return nil, err
	}
	return rw.Rewrite(plan)
}

// Rewrite transforms an SJD plan so that its direct evaluation returns
// consistent answers. The input plan is not mutated.
func (rw *Rewriter) Rewrite(plan ra.Node) (ra.Node, error) {
	return rw.rewrite(plan, true)
}

// rewrite walks the plan; positive controls whether scans receive
// residues (they do not under an odd number of negations, i.e. on the
// right side of a difference).
func (rw *Rewriter) rewrite(n ra.Node, positive bool) (ra.Node, error) {
	switch t := n.(type) {
	case *ra.Scan:
		if !positive {
			return &ra.Scan{Table: t.Table, Alias: t.Alias}, nil
		}
		return rw.applyResidues(t), nil
	case *ra.Select:
		child, err := rw.rewrite(t.Child, positive)
		if err != nil {
			return nil, err
		}
		return &ra.Select{Child: child, Pred: t.Pred}, nil
	case *ra.Project:
		child, err := rw.rewrite(t.Child, positive)
		if err != nil {
			return nil, err
		}
		return &ra.Project{Child: child, Exprs: t.Exprs, Names: t.Names, Distinct: t.Distinct}, nil
	case *ra.Product:
		l, err := rw.rewrite(t.L, positive)
		if err != nil {
			return nil, err
		}
		r, err := rw.rewrite(t.R, positive)
		if err != nil {
			return nil, err
		}
		return &ra.Product{L: l, R: r}, nil
	case *ra.Join:
		l, err := rw.rewrite(t.L, positive)
		if err != nil {
			return nil, err
		}
		r, err := rw.rewrite(t.R, positive)
		if err != nil {
			return nil, err
		}
		return &ra.Join{L: l, R: r, Pred: t.Pred}, nil
	case *ra.Diff:
		l, err := rw.rewrite(t.L, positive)
		if err != nil {
			return nil, err
		}
		r, err := rw.rewrite(t.R, !positive)
		if err != nil {
			return nil, err
		}
		return &ra.Diff{L: l, R: r}, nil
	case *ra.Intersect:
		l, err := rw.rewrite(t.L, positive)
		if err != nil {
			return nil, err
		}
		r, err := rw.rewrite(t.R, positive)
		if err != nil {
			return nil, err
		}
		return &ra.Intersect{L: l, R: r}, nil
	case *ra.DistinctNode:
		child, err := rw.rewrite(t.Child, positive)
		if err != nil {
			return nil, err
		}
		return &ra.DistinctNode{Child: child}, nil
	case *ra.Union:
		return nil, ErrUnionNotSupported
	default:
		return nil, fmt.Errorf("rewrite: unsupported operator %T", n)
	}
}

// applyResidues wraps a scan with one anti-join per residue on its
// relation: keep tuples with no violation partner.
func (rw *Rewriter) applyResidues(s *ra.Scan) ra.Node {
	var out ra.Node = &ra.Scan{Table: s.Table, Alias: s.Alias}
	rel := strings.ToLower(s.Table.Name())
	for _, res := range rw.residues {
		if res.rel != rel {
			continue
		}
		partner, err := rw.db.Table(res.partnerRel)
		if err != nil {
			continue // validated at New time; defensive
		}
		out = &ra.AntiJoin{
			L:    out,
			R:    &ra.Scan{Table: partner, Alias: "_rw_" + res.partnerRel},
			Pred: res.pred,
		}
	}
	return out
}

// Residues returns a human-readable description of the installed residues
// (used by hippoctl and the expressiveness experiment).
func (rw *Rewriter) Residues() []string {
	out := make([]string, len(rw.residues))
	for i, r := range rw.residues {
		out[i] = fmt.Sprintf("%s ▷ %s ON %s  [%s]", r.rel, r.partnerRel, r.pred, r.label)
	}
	return out
}
