// Package rewrite implements first-order query rewriting for consistent
// query answering (Arenas, Bertossi & Chomicki, PODS 1999): the input
// query Q is rewritten into Q' such that evaluating Q' directly on the
// inconsistent database returns the consistent answers to Q.
//
// Rewriting attaches each constraint's *residue* to every positive
// occurrence of a relation. A binary denial constraint
//
//	¬(R(x) ∧ S(y) ∧ φ(x,y))
//
// contributes the residue ¬∃y (S(y) ∧ φ(x,y)) to the literal R(x): a tuple
// counts only if no partner tuple completes a violation with it. In
// algebra this is an anti-join of R against S on φ. Negative occurrences
// (the right side of a difference) receive no residues from denial
// constraints, matching the original method.
//
// As in the paper, this approach works only for the SJD query class (no
// union) in the presence of binary universal constraints (FDs, exclusion
// constraints); Hippo's hypergraph method strictly generalizes it. The
// package serves two callers with different tolerance for that gap:
//
//   - New is the strict constructor of the expressiveness baseline (E2):
//     it fails with a typed error when any constraint is outside the
//     method's class.
//   - Prepare is the lenient constructor behind the tiered answering
//     planner (internal/cqaplan): constraints the method cannot express
//     are recorded as structured Skips instead of failing the whole
//     rewriter, so the planner can still apply the residues that do exist
//     (hybrid tier) or decide the query is prover-only.
//
// A Rewriter only ever *produces* ra.Node plans — it never executes them.
// The emitted trees are logical (no physical access paths), so callers
// may rebind them to any catalog (engine.Rebind) and run them through the
// cost-based planner like any other plan.
package rewrite

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"hippo/internal/constraint"
	"hippo/internal/engine"
	"hippo/internal/ra"
	"hippo/internal/sqlparse"
)

// ErrUnionNotSupported is returned for queries containing UNION: query
// rewriting handles only the SJD class.
var ErrUnionNotSupported = errors.New("rewrite: query rewriting supports only SJD queries (no UNION)")

// ErrConstraintNotBinary is returned when a constraint is not a binary
// denial (the class the rewriting method handles).
var ErrConstraintNotBinary = errors.New("rewrite: query rewriting requires binary universal constraints")

// Skip records one constraint the rewriting method cannot express,
// together with the relations it mentions (lowercased; nil when the
// constraint failed to lower and its atom list is unknown). The tiered
// planner uses Relations to decide whether a query's relations are fully
// covered by residues.
type Skip struct {
	Constraint string   // display form of the constraint
	Relations  []string // relations the constraint mentions (nil = unknown)
	Err        error    // typed reason (e.g. ErrConstraintNotBinary)
}

// Rewriter rewrites query plans against a fixed constraint set. It is
// immutable after construction and safe for concurrent use.
type Rewriter struct {
	db       *engine.DB
	residues []residue
	skipped  []Skip
}

// residue is one prepared anti-join obligation: positive occurrences of
// relation rel must have no partner in partnerRel satisfying pred (over
// the concatenated (rel, partnerRel) row).
type residue struct {
	rel        string
	partnerRel string
	pred       ra.Expr
	label      string
}

// New prepares a strict rewriter: every constraint must lower to a unary
// or binary denial, and the first one that does not fails construction
// with a typed error (the E2 expressiveness experiment tabulates these).
func New(db *engine.DB, constraints []constraint.Constraint) (*Rewriter, error) {
	rw := Prepare(db, constraints)
	if err := rw.Err(); err != nil {
		return nil, err
	}
	return rw, nil
}

// Prepare builds a rewriter from whatever subset of the constraints the
// method can express. Constraints outside the class (or failing to lower
// under the current catalog) are recorded as Skips rather than failing
// construction; Err reports the first skip for callers that need the
// strict behavior.
func Prepare(db *engine.DB, constraints []constraint.Constraint) *Rewriter {
	rw := &Rewriter{db: db}
	for _, c := range constraints {
		den, err := c.Denial(db)
		if err != nil {
			rw.skipped = append(rw.skipped, Skip{Constraint: c.String(), Err: err})
			continue
		}
		rels := make([]string, len(den.Atoms))
		for i, a := range den.Atoms {
			rels[i] = strings.ToLower(a.Rel)
		}
		switch den.Arity() {
		case 1:
			err = rw.addUnary(den)
		case 2:
			err = rw.addBinary(den)
		default:
			err = fmt.Errorf("%w: %s has %d atoms", ErrConstraintNotBinary, c, den.Arity())
		}
		if err != nil {
			rw.skipped = append(rw.skipped, Skip{Constraint: c.String(), Relations: rels, Err: err})
		}
	}
	return rw
}

// Err returns the reason the first skipped constraint was rejected, or
// nil when every constraint was expressed as residues.
func (rw *Rewriter) Err() error {
	if len(rw.skipped) == 0 {
		return nil
	}
	return rw.skipped[0].Err
}

// Skipped returns the constraints the rewriter could not express.
func (rw *Rewriter) Skipped() []Skip { return rw.skipped }

// ResidueCount returns the number of installed residues.
func (rw *Rewriter) ResidueCount() int { return len(rw.residues) }

// ResiduesOn counts the residues attached to positive occurrences of the
// named relation (case-insensitive).
func (rw *Rewriter) ResiduesOn(rel string) int {
	rel = strings.ToLower(rel)
	n := 0
	for _, r := range rw.residues {
		if r.rel == rel {
			n++
		}
	}
	return n
}

// SkippedRelations returns the set of relations (lowercased) mentioned by
// skipped constraints. A skip whose relations are unknown (lowering
// failed) is reported under the empty key "", which callers must treat as
// covering every relation.
func (rw *Rewriter) SkippedRelations() map[string]bool {
	out := make(map[string]bool)
	for _, sk := range rw.skipped {
		if sk.Relations == nil {
			out[""] = true
			continue
		}
		for _, r := range sk.Relations {
			out[r] = true
		}
	}
	return out
}

// addUnary turns ¬(R(x) ∧ φ(x)) into the residue ¬φ(x), i.e. a selection.
// It is modeled as an anti-join of R against itself on identity + φ, which
// keeps the execution machinery uniform.
func (rw *Rewriter) addUnary(den constraint.Denial) error {
	a := den.Atoms[0]
	t, err := rw.db.Table(a.Rel)
	if err != nil {
		return err
	}
	sch := t.Schema().WithQualifier(strings.ToLower(a.Name()))
	pred, err := engine.PlanScalar(den.Where, sch)
	if err != nil {
		return fmt.Errorf("rewrite: constraint %s: %v", den.Label, err)
	}
	// Self-pairing on full row identity: left row i equals right row i.
	arity := sch.Len()
	var eq ra.Expr
	for i := 0; i < arity; i++ {
		eq = ra.Conjoin(eq, ra.Cmp{Op: ra.EQ, L: ra.Col{Index: i}, R: ra.Col{Index: i + arity}})
	}
	rw.residues = append(rw.residues, residue{
		rel:        strings.ToLower(a.Rel),
		partnerRel: strings.ToLower(a.Rel),
		pred:       ra.Conjoin(eq, pred),
		label:      den.Label,
	})
	return nil
}

// addBinary installs residues for both atoms of a binary denial.
func (rw *Rewriter) addBinary(den constraint.Denial) error {
	for self := 0; self < 2; self++ {
		other := 1 - self
		a, b := den.Atoms[self], den.Atoms[other]
		ta, err := rw.db.Table(a.Rel)
		if err != nil {
			return err
		}
		tb, err := rw.db.Table(b.Rel)
		if err != nil {
			return err
		}
		// Bind the condition against (self, other) column order.
		combined := ta.Schema().WithQualifier(strings.ToLower(a.Name())).
			Concat(tb.Schema().WithQualifier(strings.ToLower(b.Name())))
		pred, err := engine.PlanScalar(den.Where, combined)
		if err != nil {
			return fmt.Errorf("rewrite: constraint %s: %v", den.Label, err)
		}
		rw.residues = append(rw.residues, residue{
			rel:        strings.ToLower(a.Rel),
			partnerRel: strings.ToLower(b.Rel),
			pred:       pred,
			label:      den.Label,
		})
	}
	return nil
}

// RewriteSQL parses, plans, and rewrites a query in one step.
func (rw *Rewriter) RewriteSQL(sql string) (ra.Node, error) {
	q, err := sqlparse.ParseQuery(sql)
	if err != nil {
		return nil, err
	}
	plan, err := rw.db.PlanQuery(q)
	if err != nil {
		return nil, err
	}
	return rw.Rewrite(plan)
}

// Rewrite transforms an SJD plan so that its direct evaluation returns
// consistent answers. The input plan is not mutated.
func (rw *Rewriter) Rewrite(plan ra.Node) (ra.Node, error) {
	return rw.rewrite(plan, true)
}

// ApplyResidues wraps every base-relation scan of a positive-only plan
// (such as an envelope, whose negative sides are already dropped) with
// this rewriter's residues. It is the hybrid tier's candidate prefilter:
// the result evaluates to the subset of the input's rows whose witness
// tuples have no binary-violation partner. The input plan is not mutated.
func (rw *Rewriter) ApplyResidues(plan ra.Node) (ra.Node, error) {
	return rw.rewrite(plan, true)
}

// rewrite walks the plan; positive controls whether scans receive
// residues (they do not under an odd number of negations, i.e. on the
// right side of a difference).
func (rw *Rewriter) rewrite(n ra.Node, positive bool) (ra.Node, error) {
	switch t := n.(type) {
	case *ra.Scan:
		if !positive {
			return &ra.Scan{Table: t.Table, Alias: t.Alias}, nil
		}
		return rw.applyResidues(t), nil
	case *ra.Select:
		child, err := rw.rewrite(t.Child, positive)
		if err != nil {
			return nil, err
		}
		return &ra.Select{Child: child, Pred: t.Pred}, nil
	case *ra.Project:
		child, err := rw.rewrite(t.Child, positive)
		if err != nil {
			return nil, err
		}
		return &ra.Project{Child: child, Exprs: t.Exprs, Names: t.Names, Distinct: t.Distinct}, nil
	case *ra.Product:
		l, err := rw.rewrite(t.L, positive)
		if err != nil {
			return nil, err
		}
		r, err := rw.rewrite(t.R, positive)
		if err != nil {
			return nil, err
		}
		return &ra.Product{L: l, R: r}, nil
	case *ra.Join:
		l, err := rw.rewrite(t.L, positive)
		if err != nil {
			return nil, err
		}
		r, err := rw.rewrite(t.R, positive)
		if err != nil {
			return nil, err
		}
		return &ra.Join{L: l, R: r, Pred: t.Pred}, nil
	case *ra.Diff:
		l, err := rw.rewrite(t.L, positive)
		if err != nil {
			return nil, err
		}
		r, err := rw.rewrite(t.R, !positive)
		if err != nil {
			return nil, err
		}
		return &ra.Diff{L: l, R: r}, nil
	case *ra.Intersect:
		l, err := rw.rewrite(t.L, positive)
		if err != nil {
			return nil, err
		}
		r, err := rw.rewrite(t.R, positive)
		if err != nil {
			return nil, err
		}
		return &ra.Intersect{L: l, R: r}, nil
	case *ra.DistinctNode:
		child, err := rw.rewrite(t.Child, positive)
		if err != nil {
			return nil, err
		}
		return &ra.DistinctNode{Child: child}, nil
	case *ra.Union:
		return nil, ErrUnionNotSupported
	default:
		return nil, fmt.Errorf("rewrite: unsupported operator %T", n)
	}
}

// applyResidues wraps a scan with one anti-join per residue on its
// relation: keep tuples with no violation partner. Residues that are the
// same filter — same partner relation, canonically equal predicate — are
// applied once: a symmetric binary denial (every FD and key) installs one
// residue per atom, and for a self-denial those two are mirror images of
// each other, so deduplication halves the anti-join work.
func (rw *Rewriter) applyResidues(s *ra.Scan) ra.Node {
	var out ra.Node = &ra.Scan{Table: s.Table, Alias: s.Alias}
	rel := strings.ToLower(s.Table.Name())
	seen := map[string]bool{}
	for _, res := range rw.residues {
		if res.rel != rel {
			continue
		}
		canon, ok := canonPred(res.pred)
		key := res.partnerRel + "\x00" + canon
		if ok && seen[key] {
			continue
		}
		seen[key] = true
		partner, err := rw.db.Table(res.partnerRel)
		if err != nil {
			continue // validated at Prepare time; defensive
		}
		out = &ra.AntiJoin{
			L:    out,
			R:    &ra.Scan{Table: partner, Alias: "_rw_" + res.partnerRel},
			Pred: res.pred,
		}
	}
	return out
}

// canonPred renders a predicate so that two equivalent residue conditions
// compare equal: conjuncts are sorted and the operands of symmetric
// comparisons (=, <>) are ordered. The two residues of a symmetric
// self-denial bind the condition against swapped column orders, which
// flips every conjunct's operands — canonicalization maps both to the
// same string. An asymmetric condition (x.b < y.b) canonicalizes to two
// distinct strings, so both residues stay. The rendering is structural,
// keyed on column *indices* — display names are identical across the two
// bindings and must not be trusted. ok is false when the predicate holds
// a node kind the renderer does not know; such residues are never
// deduplicated.
func canonPred(e ra.Expr) (string, bool) {
	cs := ra.Conjuncts(e)
	parts := make([]string, len(cs))
	ok := true
	for i, c := range cs {
		s, o := canonExpr(c)
		parts[i] = s
		ok = ok && o
	}
	sort.Strings(parts)
	return strings.Join(parts, "&"), ok
}

func canonExpr(e ra.Expr) (string, bool) {
	switch t := e.(type) {
	case ra.Col:
		return fmt.Sprintf("c%d", t.Index), true
	case ra.Const:
		return "k" + t.V.String(), true
	case ra.Cmp:
		l, lok := canonExpr(t.L)
		r, rok := canonExpr(t.R)
		if (t.Op == ra.EQ || t.Op == ra.NE) && l > r {
			l, r = r, l
		}
		return t.Op.String() + "(" + l + "," + r + ")", lok && rok
	case ra.And:
		l, lok := canonExpr(t.L)
		r, rok := canonExpr(t.R)
		return "and(" + l + "," + r + ")", lok && rok
	case ra.Or:
		l, lok := canonExpr(t.L)
		r, rok := canonExpr(t.R)
		return "or(" + l + "," + r + ")", lok && rok
	case ra.Not:
		s, o := canonExpr(t.E)
		return "not(" + s + ")", o
	case ra.IsNull:
		s, o := canonExpr(t.E)
		return fmt.Sprintf("isnull(%s,%v)", s, t.Negate), o
	case ra.Arith:
		l, lok := canonExpr(t.L)
		r, rok := canonExpr(t.R)
		return fmt.Sprintf("arith%d(%s,%s)", t.Op, l, r), lok && rok
	default:
		return fmt.Sprintf("?%T", e), false
	}
}

// Residues returns a human-readable description of the installed residues
// (used by hippoctl and the expressiveness experiment).
func (rw *Rewriter) Residues() []string {
	out := make([]string, len(rw.residues))
	for i, r := range rw.residues {
		out[i] = fmt.Sprintf("%s ▷ %s ON %s  [%s]", r.rel, r.partnerRel, r.pred, r.label)
	}
	return out
}
