// Package sqlparse implements the SQL dialect understood by the embedded
// engine: CREATE/DROP TABLE, INSERT, DELETE, and SELECT queries with joins,
// WHERE predicates, EXISTS/IN subqueries, and UNION/EXCEPT/INTERSECT set
// operations — the SJUD query surface of the Hippo paper plus what the
// query-rewriting baseline needs (NOT EXISTS).
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // operators and punctuation: ( ) , . * = <> < <= > >= + - / %
)

type token struct {
	kind tokenKind
	text string // identifiers are uppercased for keyword checks; raw kept separately
	raw  string
	pos  int
}

// lexer tokenizes SQL input.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the whole input eagerly so the parser can look ahead.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, tok)
		if tok.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			// Line comment.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, pos: l.pos}, nil

scan:
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		raw := l.src[start:l.pos]
		return token{kind: tokIdent, text: strings.ToUpper(raw), raw: raw, pos: start}, nil
	case c >= '0' && c <= '9' || c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
		seenDot := false
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if isDigit(ch) {
				l.pos++
			} else if ch == '.' && !seenDot {
				seenDot = true
				l.pos++
			} else if (ch == 'e' || ch == 'E') && l.pos+1 < len(l.src) &&
				(isDigit(l.src[l.pos+1]) || l.src[l.pos+1] == '-' || l.src[l.pos+1] == '+') {
				l.pos += 2
				for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
					l.pos++
				}
				break
			} else {
				break
			}
		}
		raw := l.src[start:l.pos]
		return token{kind: tokNumber, text: raw, raw: raw, pos: start}, nil
	case c == '\'':
		l.pos++
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, fmt.Errorf("sql: unterminated string literal at offset %d", start)
			}
			ch := l.src[l.pos]
			if ch == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					b.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				break
			}
			b.WriteByte(ch)
			l.pos++
		}
		return token{kind: tokString, text: b.String(), raw: b.String(), pos: start}, nil
	case c == '<':
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '=' || l.src[l.pos] == '>') {
			l.pos++
		}
		return token{kind: tokPunct, text: l.src[start:l.pos], raw: l.src[start:l.pos], pos: start}, nil
	case c == '>':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
		}
		return token{kind: tokPunct, text: l.src[start:l.pos], raw: l.src[start:l.pos], pos: start}, nil
	case c == '!':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tokPunct, text: "<>", raw: "!=", pos: start}, nil
		}
		return token{}, fmt.Errorf("sql: unexpected character %q at offset %d", c, start)
	case strings.ContainsRune("(),.*=+-/%;", rune(c)):
		l.pos++
		return token{kind: tokPunct, text: string(c), raw: string(c), pos: start}, nil
	default:
		if unicode.IsPrint(rune(c)) {
			return token{}, fmt.Errorf("sql: unexpected character %q at offset %d", c, start)
		}
		return token{}, fmt.Errorf("sql: unexpected byte 0x%02x at offset %d", c, start)
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
