package sqlparse

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"hippo/internal/value"
)

func mustParse(t *testing.T, src string) Statement {
	t.Helper()
	st, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return st
}

func TestParseCreateTable(t *testing.T) {
	st := mustParse(t, "CREATE TABLE emp (id INT, name VARCHAR(20), salary FLOAT, active BOOL)")
	ct, ok := st.(*CreateTable)
	if !ok {
		t.Fatalf("got %T", st)
	}
	if ct.Name != "emp" || len(ct.Columns) != 4 {
		t.Fatalf("parsed %v", ct)
	}
	wantTypes := []value.Kind{value.KindInt, value.KindText, value.KindFloat, value.KindBool}
	for i, w := range wantTypes {
		if ct.Columns[i].Type != w {
			t.Errorf("col %d type = %v, want %v", i, ct.Columns[i].Type, w)
		}
	}
	if !strings.Contains(ct.String(), "CREATE TABLE emp") {
		t.Error("String() wrong")
	}
}

func TestParseDrop(t *testing.T) {
	st := mustParse(t, "DROP TABLE emp;")
	d, ok := st.(*DropTable)
	if !ok || d.Name != "emp" {
		t.Fatalf("got %#v", st)
	}
	if d.String() != "DROP TABLE emp" {
		t.Error("String() wrong")
	}
}

func TestParseInsert(t *testing.T) {
	st := mustParse(t, "INSERT INTO emp (id, name) VALUES (1, 'ann'), (2, 'bo''b')")
	ins, ok := st.(*Insert)
	if !ok {
		t.Fatalf("got %T", st)
	}
	if ins.Table != "emp" || len(ins.Columns) != 2 || len(ins.Rows) != 2 {
		t.Fatalf("parsed %+v", ins)
	}
	lit := ins.Rows[1][1].(Lit)
	if lit.V != value.Text("bo'b") {
		t.Errorf("escaped string = %v", lit.V)
	}
	// Negative numbers and floats.
	st = mustParse(t, "INSERT INTO t VALUES (-5, -1.5, NULL, TRUE, FALSE)")
	ins = st.(*Insert)
	row := ins.Rows[0]
	if row[0].(Lit).V != value.Int(-5) || row[1].(Lit).V != value.Float(-1.5) {
		t.Errorf("negative literals: %v", row)
	}
	if !row[2].(Lit).V.IsNull() || row[3].(Lit).V != value.Bool(true) || row[4].(Lit).V != value.Bool(false) {
		t.Errorf("literal row: %v", row)
	}
}

func TestParseDelete(t *testing.T) {
	st := mustParse(t, "DELETE FROM emp WHERE id = 3")
	d := st.(*Delete)
	if d.Table != "emp" || d.Where == nil {
		t.Fatalf("parsed %+v", d)
	}
	st = mustParse(t, "DELETE FROM emp")
	if st.(*Delete).Where != nil {
		t.Error("where should be nil")
	}
}

func TestParseSelectBasics(t *testing.T) {
	st := mustParse(t, "SELECT * FROM emp")
	q := st.(*Query)
	if len(q.Left.Items) != 0 || len(q.Left.From) != 1 || q.Left.From[0].Table != "emp" {
		t.Fatalf("parsed %+v", q.Left)
	}

	st = mustParse(t, "SELECT DISTINCT e.name AS n, e.salary * 2 FROM emp AS e WHERE e.id >= 10 AND e.name <> 'bob'")
	q = st.(*Query)
	s := q.Left
	if !s.Distinct || len(s.Items) != 2 {
		t.Fatalf("parsed %+v", s)
	}
	if s.Items[0].Alias != "n" {
		t.Errorf("alias = %q", s.Items[0].Alias)
	}
	if s.From[0].Alias != "e" || s.From[0].Name() != "e" {
		t.Errorf("from alias = %+v", s.From[0])
	}
	if s.Where == nil {
		t.Fatal("missing where")
	}
	// Bare alias without AS.
	st = mustParse(t, "SELECT e.id x FROM emp e")
	s = st.(*Query).Left
	if s.Items[0].Alias != "x" || s.From[0].Alias != "e" {
		t.Errorf("bare aliases: %+v", s)
	}
}

func TestParseJoins(t *testing.T) {
	st := mustParse(t, "SELECT * FROM emp e JOIN dept d ON e.dept = d.id INNER JOIN loc ON d.loc = loc.id WHERE e.id > 0")
	s := st.(*Query).Left
	if len(s.Joins) != 2 {
		t.Fatalf("joins = %d", len(s.Joins))
	}
	if s.Joins[0].Ref.Alias != "d" || s.Joins[1].Ref.Table != "loc" {
		t.Errorf("join refs: %+v", s.Joins)
	}
	// Multi-table FROM (implicit product).
	st = mustParse(t, "SELECT * FROM a, b, c WHERE a.x = b.x")
	s = st.(*Query).Left
	if len(s.From) != 3 {
		t.Errorf("from = %+v", s.From)
	}
}

func TestParseSetOps(t *testing.T) {
	st := mustParse(t, "SELECT a FROM r UNION SELECT a FROM s EXCEPT SELECT a FROM t INTERSECT SELECT a FROM u")
	q := st.(*Query)
	if len(q.Rest) != 3 {
		t.Fatalf("rest = %d", len(q.Rest))
	}
	ops := []SetOp{OpUnion, OpExcept, OpIntersect}
	for i, w := range ops {
		if q.Rest[i].Op != w {
			t.Errorf("op %d = %v, want %v", i, q.Rest[i].Op, w)
		}
	}
	if q.Rest[0].Op.String() != "UNION" || OpExcept.String() != "EXCEPT" || OpIntersect.String() != "INTERSECT" {
		t.Error("SetOp String wrong")
	}
}

func TestParseExistsAndIn(t *testing.T) {
	st := mustParse(t, `SELECT * FROM emp e WHERE NOT EXISTS (SELECT * FROM emp x WHERE x.id = e.id AND x.pay <> e.pay)`)
	s := st.(*Query).Left
	ex, ok := s.Where.(ExistsExpr)
	if !ok || !ex.Negate {
		t.Fatalf("where = %#v", s.Where)
	}
	if len(ex.Sub.Left.From) != 1 {
		t.Error("subquery not parsed")
	}

	st = mustParse(t, "SELECT * FROM emp WHERE id IN (SELECT eid FROM mgr) AND name NOT IN (SELECT n FROM bad)")
	s = st.(*Query).Left
	b := s.Where.(BinExpr)
	if b.Op != "AND" {
		t.Fatal("expected AND")
	}
	in1 := b.L.(InExpr)
	in2 := b.R.(InExpr)
	if in1.Negate || !in2.Negate {
		t.Error("IN negation flags wrong")
	}
}

func TestParseExprPrecedence(t *testing.T) {
	st := mustParse(t, "SELECT * FROM t WHERE a + b * 2 = c OR NOT d < 5 AND e = 1")
	s := st.(*Query).Left
	// OR binds loosest: (a+b*2=c) OR (NOT(d<5) AND e=1)
	or, ok := s.Where.(BinExpr)
	if !ok || or.Op != "OR" {
		t.Fatalf("top = %#v", s.Where)
	}
	cmp := or.L.(BinExpr)
	if cmp.Op != "=" {
		t.Fatalf("left of OR = %v", cmp.Op)
	}
	add := cmp.L.(BinExpr)
	if add.Op != "+" {
		t.Fatalf("expected + under =, got %v", add.Op)
	}
	mul := add.R.(BinExpr)
	if mul.Op != "*" {
		t.Fatalf("expected * under +, got %v", mul.Op)
	}
	and := or.R.(BinExpr)
	if and.Op != "AND" {
		t.Fatalf("right of OR = %v", and.Op)
	}
	if _, ok := and.L.(NotExpr); !ok {
		t.Fatalf("expected NOT, got %#v", and.L)
	}
}

func TestParseIsNull(t *testing.T) {
	st := mustParse(t, "SELECT * FROM t WHERE a IS NULL AND b IS NOT NULL")
	s := st.(*Query).Left
	and := s.Where.(BinExpr)
	l := and.L.(IsNullExpr)
	r := and.R.(IsNullExpr)
	if l.Negate || !r.Negate {
		t.Error("IS NULL flags wrong")
	}
}

func TestParseComments(t *testing.T) {
	st := mustParse(t, "SELECT * -- trailing comment\nFROM t -- another\n")
	if _, ok := st.(*Query); !ok {
		t.Fatal("comment parsing failed")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC * FROM t",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t WHERE a ==",
		"CREATE TABLE (a INT)",
		"CREATE TABLE t (a BLOB)",
		"INSERT INTO t VALUES",
		"INSERT INTO t VALUES (1",
		"SELECT * FROM t extra garbage ,",
		"SELECT * FROM t WHERE 'unterminated",
		"SELECT * FROM t WHERE a ? 1",
		"DROP t",
		"SELECT * FROM select",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseQueryHelper(t *testing.T) {
	if _, err := ParseQuery("SELECT * FROM t"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseQuery("DROP TABLE t"); err == nil {
		t.Error("ParseQuery on DDL should fail")
	}
	if _, err := ParseQuery("SELECT * FROM"); err == nil {
		t.Error("ParseQuery on bad SQL should fail")
	}
}

// Round-trip: String() of a parsed statement re-parses to the same String().
func TestRoundTrip(t *testing.T) {
	srcs := []string{
		"SELECT * FROM emp",
		"SELECT DISTINCT e.id AS i FROM emp AS e WHERE (e.id > 3)",
		"SELECT a FROM r UNION SELECT b FROM s",
		"SELECT * FROM emp AS e JOIN dept AS d ON (e.d = d.id)",
		"SELECT * FROM t WHERE NOT EXISTS (SELECT * FROM u WHERE (u.x = t.x))",
		"SELECT * FROM t WHERE (x IN (SELECT y FROM u))",
		"INSERT INTO t VALUES (1, 'a', NULL)",
		"DELETE FROM t WHERE (a = 1)",
		"CREATE TABLE t (a INT, b TEXT)",
		"DROP TABLE t",
		"SELECT * FROM t WHERE ((a) IS NULL AND (b) IS NOT NULL)",
	}
	for _, src := range srcs {
		st1 := mustParse(t, src)
		st2 := mustParse(t, st1.String())
		if st1.String() != st2.String() {
			t.Errorf("round trip failed:\n in: %s\nout: %s", st1, st2)
		}
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := lex("a ~ b"); err == nil {
		t.Error("~ should fail to lex")
	}
	if _, err := lex("'abc"); err == nil {
		t.Error("unterminated string should fail")
	}
	toks, err := lex("a != b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].text != "<>" {
		t.Errorf("!= should normalize to <>, got %q", toks[1].text)
	}
	toks, _ = lex("1.5e3 2E-2 .5")
	if toks[0].text != "1.5e3" || toks[1].text != "2E-2" || toks[2].text != ".5" {
		t.Errorf("float lexing: %+v", toks)
	}
}

func TestParseOrderByLimit(t *testing.T) {
	st := mustParse(t, "SELECT * FROM t ORDER BY a DESC, b ASC, c LIMIT 10")
	q := st.(*Query)
	if len(q.OrderBy) != 3 || !q.OrderBy[0].Desc || q.OrderBy[1].Desc || q.OrderBy[2].Desc {
		t.Fatalf("order = %+v", q.OrderBy)
	}
	if q.Limit == nil || *q.Limit != 10 {
		t.Fatalf("limit = %v", q.Limit)
	}
	// Round trip.
	st2 := mustParse(t, q.String())
	if st2.String() != q.String() {
		t.Errorf("round trip: %s vs %s", q, st2)
	}
	// ORDER BY binds after set operations.
	st = mustParse(t, "SELECT a FROM r UNION SELECT b FROM s ORDER BY a LIMIT 1")
	q = st.(*Query)
	if len(q.Rest) != 1 || len(q.OrderBy) != 1 || q.Limit == nil {
		t.Fatalf("parsed %+v", q)
	}
	bad := []string{
		"SELECT * FROM t ORDER a",
		"SELECT * FROM t ORDER BY",
		"SELECT * FROM t LIMIT",
		"SELECT * FROM t LIMIT -1",
		"SELECT * FROM t LIMIT 1.5",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

// TestParseNeverPanics feeds the parser random garbage (raw bytes and
// shuffled SQL token soup); it must always return a value or an error,
// never panic.
func TestParseNeverPanics(t *testing.T) {
	tokens := []string{
		"SELECT", "FROM", "WHERE", "UNION", "EXCEPT", "ORDER", "BY", "LIMIT",
		"(", ")", ",", "*", "=", "<>", "<", ">", "+", "-", "/", "%", ".",
		"t", "a", "b", "'str'", "1", "2.5", "NOT", "EXISTS", "IN", "AND",
		"OR", "NULL", "IS", "AS", "JOIN", "ON", "INSERT", "INTO", "VALUES",
		"CREATE", "TABLE", "INDEX", "DROP", "DELETE", ";",
	}
	prop := func(seed int64, raw string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("parser panicked: %v", r)
			}
		}()
		// Raw bytes.
		Parse(raw)
		// Token soup.
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30)
		parts := make([]string, n)
		for i := range parts {
			parts[i] = tokens[rng.Intn(len(tokens))]
		}
		Parse(strings.Join(parts, " "))
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}
