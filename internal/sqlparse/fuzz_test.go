package sqlparse

import "testing"

// FuzzParse drives the lexer/parser with arbitrary input: it must never
// panic, and a successfully parsed statement must render (String) and
// re-parse to an equally valid statement. Seeded from the parser_test
// corpus (valid statements and known rejections alike).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"CREATE TABLE emp (id INT, name VARCHAR(20), salary FLOAT, active BOOL)",
		"CREATE INDEX i ON emp (id, name)",
		"INSERT INTO emp (id, name) VALUES (1, 'ann'), (2, 'bo''b')",
		"INSERT INTO t VALUES (-5, -1.5, NULL, TRUE, FALSE)",
		"DELETE FROM emp WHERE id = 3",
		"DROP TABLE emp",
		"SELECT * FROM emp",
		"SELECT DISTINCT e.name AS n, e.salary * 2 FROM emp AS e WHERE e.id >= 10 AND e.name <> 'bob'",
		"SELECT * FROM emp e JOIN dept d ON e.dept = d.id INNER JOIN loc ON d.loc = loc.id WHERE e.id > 0",
		"SELECT a FROM r UNION SELECT a FROM s EXCEPT SELECT a FROM t INTERSECT SELECT a FROM u",
		"SELECT * FROM emp WHERE id IN (SELECT eid FROM mgr) AND name NOT IN (SELECT n FROM bad)",
		"SELECT * FROM t WHERE a + b * 2 = c OR NOT d < 5 AND e = 1",
		"SELECT * FROM t WHERE a IS NULL AND b IS NOT NULL",
		"SELECT * FROM t WHERE EXISTS (SELECT * FROM u WHERE u.a = t.a)",
		"SELECT * FROM t ORDER BY a DESC, b LIMIT 10",
		"SELECT * -- trailing comment\nFROM t -- another\n",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE a ==",
		"CREATE TABLE (a INT)",
		"INSERT INTO t VALUES (1",
		"SELECT * FROM t WHERE 'unterminated",
		"SELECT * FROM t WHERE a ? 1",
		"",
		";",
		"\x00\xff",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		st, err := Parse(src)
		if err != nil || st == nil {
			return
		}
		// A parsed statement must render and re-parse cleanly: String is
		// the canonical serialization used in logs and test fixtures.
		rendered := st.String()
		if _, err := Parse(rendered); err != nil {
			t.Fatalf("re-parse of %q (from %q) failed: %v", rendered, src, err)
		}
	})
}
