package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"hippo/internal/schema"
	"hippo/internal/value"
)

// Parse parses a single SQL statement. A trailing semicolon is allowed.
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	st, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(";")
	if !p.atEOF() {
		return nil, p.errf("unexpected trailing input starting at %q", p.peek().raw)
	}
	return st, nil
}

// ParseScript parses a semicolon-separated sequence of statements — the
// input format of batch files and hippoctl's \batch mode. Line comments
// are allowed, empty statements are skipped, and a trailing semicolon is
// optional.
func ParseScript(src string) ([]Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	var out []Statement
	for {
		for p.accept(";") {
		}
		if p.atEOF() {
			return out, nil
		}
		st, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		out = append(out, st)
		if !p.atEOF() {
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		}
	}
}

// ParseQuery parses a SELECT query (with optional set operations).
func ParseQuery(src string) (*Query, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	q, ok := st.(*Query)
	if !ok {
		return nil, fmt.Errorf("sql: expected a SELECT query, got %T", st)
	}
	return q, nil
}

type parser struct {
	toks []token
	pos  int
	src  string
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }
func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

// accept consumes the next token if it is the given keyword or punctuation.
func (p *parser) accept(text string) bool {
	t := p.peek()
	if (t.kind == tokIdent || t.kind == tokPunct) && t.text == strings.ToUpper(text) {
		p.advance()
		return true
	}
	return false
}

// expect consumes the next token, failing unless it matches.
func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return p.errf("expected %q, found %q", text, p.peek().raw)
	}
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: %s (at offset %d)", fmt.Sprintf(format, args...), p.peek().pos)
}

// ident consumes an identifier, rejecting reserved words that would make
// the grammar ambiguous.
func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", p.errf("expected identifier, found %q", t.raw)
	}
	if reserved[t.text] {
		return "", p.errf("unexpected keyword %q", t.raw)
	}
	p.advance()
	return t.raw, nil
}

var reserved = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"NOT": true, "UNION": true, "EXCEPT": true, "INTERSECT": true,
	"JOIN": true, "ON": true, "AS": true, "DISTINCT": true, "EXISTS": true,
	"IN": true, "IS": true, "NULL": true, "TRUE": true, "FALSE": true,
	"INSERT": true, "INTO": true, "VALUES": true, "DELETE": true,
	"CREATE": true, "TABLE": true, "DROP": true, "INNER": true,
	"ORDER": true, "BY": true, "ASC": true, "DESC": true, "LIMIT": true,
	"INDEX": true,
}

func (p *parser) parseStatement() (Statement, error) {
	switch p.peek().text {
	case "CREATE":
		return p.parseCreate()
	case "DROP":
		return p.parseDrop()
	case "INSERT":
		return p.parseInsert()
	case "DELETE":
		return p.parseDelete()
	case "SELECT":
		return p.parseQuery()
	default:
		return nil, p.errf("expected a statement, found %q", p.peek().raw)
	}
}

func (p *parser) parseCreate() (Statement, error) {
	p.advance() // CREATE
	if p.peek().text == "INDEX" {
		return p.parseCreateIndex()
	}
	if err := p.expect("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var cols []ColumnDef
	for {
		cname, err := p.ident()
		if err != nil {
			return nil, err
		}
		t := p.peek()
		if t.kind != tokIdent {
			return nil, p.errf("expected type name after column %q", cname)
		}
		kind, err := schema.ParseType(t.text)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		p.advance()
		// Skip optional length like VARCHAR(20).
		if p.accept("(") {
			if p.peek().kind != tokNumber {
				return nil, p.errf("expected length in type")
			}
			p.advance()
			if err := p.expect(")"); err != nil {
				return nil, err
			}
		}
		cols = append(cols, ColumnDef{Name: cname, Type: kind})
		if p.accept(",") {
			continue
		}
		break
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return &CreateTable{Name: name, Columns: cols}, nil
}

func (p *parser) parseCreateIndex() (Statement, error) {
	p.advance() // INDEX
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("ON"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	ci := &CreateIndex{Name: name, Table: table}
	for {
		c, err := p.ident()
		if err != nil {
			return nil, err
		}
		ci.Columns = append(ci.Columns, c)
		if p.accept(",") {
			continue
		}
		break
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return ci, nil
}

func (p *parser) parseDrop() (Statement, error) {
	p.advance() // DROP
	if err := p.expect("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &DropTable{Name: name}, nil
}

func (p *parser) parseInsert() (Statement, error) {
	p.advance() // INSERT
	if err := p.expect("INTO"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: name}
	if p.accept("(") {
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, c)
			if p.accept(",") {
				continue
			}
			break
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expect("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.accept(",") {
				continue
			}
			break
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if p.accept(",") {
			continue
		}
		break
	}
	return ins, nil
}

func (p *parser) parseDelete() (Statement, error) {
	p.advance() // DELETE
	if err := p.expect("FROM"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	d := &Delete{Table: name}
	if p.accept("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Where = e
	}
	return d, nil
}

// parseQuery parses SELECT ... [UNION|EXCEPT|INTERSECT SELECT ...]*
// [ORDER BY ...] [LIMIT n].
func (p *parser) parseQuery() (*Query, error) {
	first, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	q := &Query{Left: first}
loop:
	for {
		var op SetOp
		switch {
		case p.accept("UNION"):
			op = OpUnion
		case p.accept("EXCEPT"):
			op = OpExcept
		case p.accept("INTERSECT"):
			op = OpIntersect
		default:
			break loop
		}
		right, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		q.Rest = append(q.Rest, QueryTail{Op: op, Right: right})
	}
	if p.accept("ORDER") {
		if err := p.expect("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept("DESC") {
				item.Desc = true
			} else {
				p.accept("ASC")
			}
			q.OrderBy = append(q.OrderBy, item)
			if p.accept(",") {
				continue
			}
			break
		}
	}
	if p.accept("LIMIT") {
		t := p.peek()
		if t.kind != tokNumber || strings.ContainsAny(t.text, ".eE") {
			return nil, p.errf("expected integer after LIMIT")
		}
		p.advance()
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, p.errf("bad LIMIT %q", t.text)
		}
		q.Limit = &n
	}
	return q, nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expect("SELECT"); err != nil {
		return nil, err
	}
	s := &SelectStmt{}
	if p.accept("DISTINCT") {
		s.Distinct = true
	}
	for {
		if p.accept("*") {
			s.Items = append(s.Items, SelectItem{Star: true})
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.accept("AS") {
				a, err := p.ident()
				if err != nil {
					return nil, err
				}
				item.Alias = a
			} else if p.peek().kind == tokIdent && !reserved[p.peek().text] {
				item.Alias = p.advance().raw
			}
			s.Items = append(s.Items, item)
		}
		if p.accept(",") {
			continue
		}
		break
	}
	// A lone "SELECT *" list means all columns; normalize.
	if len(s.Items) == 1 && s.Items[0].Star {
		s.Items = nil
	}
	if err := p.expect("FROM"); err != nil {
		return nil, err
	}
	for {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		s.From = append(s.From, ref)
		if p.accept(",") {
			continue
		}
		break
	}
	for {
		if p.accept("INNER") {
			if err := p.expect("JOIN"); err != nil {
				return nil, err
			}
		} else if !p.accept("JOIN") {
			break
		}
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expect("ON"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Joins = append(s.Joins, JoinClause{Ref: ref, On: on})
	}
	if p.accept("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = e
	}
	return s, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	name, err := p.ident()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Table: name}
	if p.accept("AS") {
		a, err := p.ident()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = a
	} else if p.peek().kind == tokIdent && !reserved[p.peek().text] {
		ref.Alias = p.advance().raw
	}
	return ref, nil
}

// Expression grammar, lowest to highest precedence:
//
//	or     := and (OR and)*
//	and    := not (AND not)*
//	not    := NOT not | cmp
//	cmp    := add ((=|<>|<|<=|>|>=) add | IS [NOT] NULL | [NOT] IN (query))?
//	add    := mul ((+|-) mul)*
//	mul    := unary ((*|/|%) unary)*
//	unary  := - unary | primary
//	primary:= literal | colref | ( expr ) | EXISTS ( query )
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.peek().text == "NOT" && p.toks[p.pos+1].text != "EXISTS" {
		p.advance()
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return NotExpr{E: e}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tokPunct {
		switch t.text {
		case "=", "<>", "<", "<=", ">", ">=":
			p.advance()
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return BinExpr{Op: t.text, L: l, R: r}, nil
		}
	}
	if p.accept("IS") {
		neg := p.accept("NOT")
		if err := p.expect("NULL"); err != nil {
			return nil, err
		}
		return IsNullExpr{E: l, Negate: neg}, nil
	}
	neg := false
	if p.peek().text == "NOT" && p.toks[p.pos+1].text == "IN" {
		p.advance()
		neg = true
	}
	if p.accept("IN") {
		if err := p.expect("("); err != nil {
			return nil, err
		}
		sub, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return InExpr{E: l, Negate: neg, Sub: sub}, nil
	}
	return l, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokPunct || (t.text != "+" && t.text != "-") {
			return l, nil
		}
		p.advance()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: t.text, L: l, R: r}
	}
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokPunct || (t.text != "*" && t.text != "/" && t.text != "%") {
			return l, nil
		}
		p.advance()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: t.text, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.peek().kind == tokPunct && p.peek().text == "-" {
		p.advance()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := e.(Lit); ok && lit.V.K == value.KindInt {
			return Lit{V: value.Int(-lit.V.I)}, nil
		}
		if lit, ok := e.(Lit); ok && lit.V.K == value.KindFloat {
			return Lit{V: value.Float(-lit.V.F)}, nil
		}
		return BinExpr{Op: "-", L: Lit{V: value.Int(0)}, R: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		p.advance()
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			return Lit{V: value.Float(f)}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer %q", t.text)
		}
		return Lit{V: value.Int(i)}, nil
	case t.kind == tokString:
		p.advance()
		return Lit{V: value.Text(t.text)}, nil
	case t.text == "TRUE":
		p.advance()
		return Lit{V: value.Bool(true)}, nil
	case t.text == "FALSE":
		p.advance()
		return Lit{V: value.Bool(false)}, nil
	case t.text == "NULL":
		p.advance()
		return Lit{V: value.Null()}, nil
	case t.text == "NOT" && p.toks[p.pos+1].text == "EXISTS":
		p.advance()
		p.advance()
		return p.parseExists(true)
	case t.text == "EXISTS":
		p.advance()
		return p.parseExists(false)
	case t.text == "(":
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokIdent && !reserved[t.text]:
		name, _ := p.ident()
		if p.peek().text == "." {
			p.advance()
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return ColRef{Qualifier: name, Name: col}, nil
		}
		return ColRef{Name: name}, nil
	default:
		return nil, p.errf("unexpected token %q in expression", t.raw)
	}
}

func (p *parser) parseExists(neg bool) (Expr, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	sub, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return ExistsExpr{Negate: neg, Sub: sub}, nil
}
