package sqlparse

import (
	"fmt"
	"strings"

	"hippo/internal/value"
)

// Statement is any parsed SQL statement.
type Statement interface {
	stmt()
	String() string
}

// CreateTable is CREATE TABLE name (col type, ...).
type CreateTable struct {
	Name    string
	Columns []ColumnDef
}

// ColumnDef is one column declaration.
type ColumnDef struct {
	Name string
	Type value.Kind
}

func (*CreateTable) stmt() {}

func (c *CreateTable) String() string {
	parts := make([]string, len(c.Columns))
	for i, col := range c.Columns {
		parts[i] = col.Name + " " + col.Type.String()
	}
	return fmt.Sprintf("CREATE TABLE %s (%s)", c.Name, strings.Join(parts, ", "))
}

// CreateIndex is CREATE INDEX name ON table (col, ...).
type CreateIndex struct {
	Name    string
	Table   string
	Columns []string
}

func (*CreateIndex) stmt() {}

func (c *CreateIndex) String() string {
	return fmt.Sprintf("CREATE INDEX %s ON %s (%s)", c.Name, c.Table, strings.Join(c.Columns, ", "))
}

// DropTable is DROP TABLE name.
type DropTable struct{ Name string }

func (*DropTable) stmt() {}

func (d *DropTable) String() string { return "DROP TABLE " + d.Name }

// Insert is INSERT INTO name [(cols)] VALUES (...), (...).
type Insert struct {
	Table   string
	Columns []string // optional explicit column list
	Rows    [][]Expr // literal expressions
}

func (*Insert) stmt() {}

func (i *Insert) String() string {
	var b strings.Builder
	b.WriteString("INSERT INTO ")
	b.WriteString(i.Table)
	if len(i.Columns) > 0 {
		b.WriteString(" (" + strings.Join(i.Columns, ", ") + ")")
	}
	b.WriteString(" VALUES ")
	for r, row := range i.Rows {
		if r > 0 {
			b.WriteString(", ")
		}
		b.WriteByte('(')
		for j, e := range row {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(e.String())
		}
		b.WriteByte(')')
	}
	return b.String()
}

// Delete is DELETE FROM name [WHERE expr].
type Delete struct {
	Table string
	Where Expr // nil when absent
}

func (*Delete) stmt() {}

func (d *Delete) String() string {
	s := "DELETE FROM " + d.Table
	if d.Where != nil {
		s += " WHERE " + d.Where.String()
	}
	return s
}

// SetOp enumerates set operations combining SELECTs.
type SetOp uint8

// Set operations.
const (
	OpUnion SetOp = iota
	OpExcept
	OpIntersect
)

// String returns the SQL keyword.
func (op SetOp) String() string {
	switch op {
	case OpUnion:
		return "UNION"
	case OpExcept:
		return "EXCEPT"
	default:
		return "INTERSECT"
	}
}

// Query is a SELECT, possibly combined with further queries by set
// operations (left-associative: ((S1 op S2) op S3)...), with optional
// trailing ORDER BY and LIMIT applying to the whole result.
type Query struct {
	Left    *SelectStmt
	Rest    []QueryTail
	OrderBy []OrderItem
	Limit   *int
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// QueryTail is one trailing set operation.
type QueryTail struct {
	Op    SetOp
	Right *SelectStmt
}

func (*Query) stmt() {}

func (q *Query) String() string {
	var b strings.Builder
	b.WriteString(q.Left.String())
	for _, t := range q.Rest {
		b.WriteByte(' ')
		b.WriteString(t.Op.String())
		b.WriteByte(' ')
		b.WriteString(t.Right.String())
	}
	for i, o := range q.OrderBy {
		if i == 0 {
			b.WriteString(" ORDER BY ")
		} else {
			b.WriteString(", ")
		}
		b.WriteString(o.Expr.String())
		if o.Desc {
			b.WriteString(" DESC")
		}
	}
	if q.Limit != nil {
		fmt.Fprintf(&b, " LIMIT %d", *q.Limit)
	}
	return b.String()
}

// SelectStmt is a single SELECT block.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem // empty means SELECT *
	From     []TableRef
	Joins    []JoinClause
	Where    Expr // nil when absent
}

// SelectItem is one projection expression with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool // expands to all columns; Expr/Alias unused
}

// TableRef names a base table with an optional alias.
type TableRef struct {
	Table string
	Alias string
}

// Name returns the effective name the table is referred to by.
func (t TableRef) Name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// JoinClause is an explicit [INNER] JOIN table [AS alias] ON expr.
type JoinClause struct {
	Ref TableRef
	On  Expr
}

func (s *SelectStmt) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	if len(s.Items) == 0 {
		b.WriteByte('*')
	} else {
		for i, it := range s.Items {
			if i > 0 {
				b.WriteString(", ")
			}
			if it.Star {
				b.WriteByte('*')
				continue
			}
			b.WriteString(it.Expr.String())
			if it.Alias != "" {
				b.WriteString(" AS " + it.Alias)
			}
		}
	}
	b.WriteString(" FROM ")
	for i, f := range s.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(f.Table)
		if f.Alias != "" {
			b.WriteString(" AS " + f.Alias)
		}
	}
	for _, j := range s.Joins {
		b.WriteString(" JOIN " + j.Ref.Table)
		if j.Ref.Alias != "" {
			b.WriteString(" AS " + j.Ref.Alias)
		}
		b.WriteString(" ON " + j.On.String())
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.String())
	}
	return b.String()
}

// Expr is a parsed scalar or boolean expression.
type Expr interface {
	expr()
	String() string
}

// ColRef is a possibly-qualified column reference.
type ColRef struct {
	Qualifier string
	Name      string
}

func (ColRef) expr() {}

func (c ColRef) String() string {
	if c.Qualifier != "" {
		return c.Qualifier + "." + c.Name
	}
	return c.Name
}

// Lit is a literal value.
type Lit struct{ V value.Value }

func (Lit) expr() {}

func (l Lit) String() string { return l.V.String() }

// BinExpr is a binary operation. Op is the SQL spelling: one of
// = <> < <= > >= + - * / % AND OR.
type BinExpr struct {
	Op   string
	L, R Expr
}

func (BinExpr) expr() {}

func (b BinExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// NotExpr is NOT e.
type NotExpr struct{ E Expr }

func (NotExpr) expr() {}

func (n NotExpr) String() string { return "NOT (" + n.E.String() + ")" }

// IsNullExpr is e IS [NOT] NULL.
type IsNullExpr struct {
	E      Expr
	Negate bool
}

func (IsNullExpr) expr() {}

func (i IsNullExpr) String() string {
	if i.Negate {
		return "(" + i.E.String() + ") IS NOT NULL"
	}
	return "(" + i.E.String() + ") IS NULL"
}

// ExistsExpr is [NOT] EXISTS (subquery).
type ExistsExpr struct {
	Negate bool
	Sub    *Query
}

func (ExistsExpr) expr() {}

func (e ExistsExpr) String() string {
	s := "EXISTS (" + e.Sub.String() + ")"
	if e.Negate {
		return "NOT " + s
	}
	return s
}

// InExpr is e [NOT] IN (subquery).
type InExpr struct {
	E      Expr
	Negate bool
	Sub    *Query
}

func (InExpr) expr() {}

func (i InExpr) String() string {
	op := "IN"
	if i.Negate {
		op = "NOT IN"
	}
	return fmt.Sprintf("(%s %s (%s))", i.E, op, i.Sub)
}
