// Package cqaplan implements the tiered answering planner: it classifies
// an incoming consistent query against the registered constraint set and
// decides which of three execution tiers serves it.
//
//   - Rewrite tier: the query plus every constraint's residue compiles
//     into one first-order plan whose direct evaluation returns exactly
//     the consistent answers — zero per-candidate certification. Sound
//     only for self-join-free SJD plans (no UNION, single-atom negative
//     sides) whose relations are fully covered by unary/binary denial
//     residues, with the Koutris–Wijsen-inspired guards below.
//   - Hybrid tier: the envelope's scans are prefiltered by whatever
//     residues do exist, discarding candidates whose witness tuples have a
//     binary-violation partner (such a tuple is absent from some repair,
//     and safe projections make the witness unique, so the candidate
//     cannot be a consistent answer). Every surviving candidate is still
//     certified by the prover, so the tier is sound whenever the prover
//     is; it only shrinks the candidate set.
//   - Prover tier: the unchanged hypergraph certification path, the
//     universal fallback.
//
// Classification is conservative: any shape the analysis cannot prove
// eligible demotes. Self-joins, equality of a key-position column with a
// constant, cyclic attack structure between query atoms, and a relation
// mixing unary and binary constraints (the unary denial can kill a
// binary-conflict partner in every repair, so residues over-subtract)
// each demote straight to the prover tier; constraints outside the
// binary-denial class or a multi-atom negative side demote to the hybrid
// tier when at least one residue still applies.
package cqaplan

import (
	"fmt"
	"strings"

	"hippo/internal/constraint"
	"hippo/internal/envelope"
	"hippo/internal/ra"
	"hippo/internal/rewrite"
	"hippo/internal/schema"
)

// Tier identifies the execution path serving a consistent query.
type Tier int

const (
	// TierProver is the hypergraph certification path (fallback).
	TierProver Tier = iota
	// TierHybrid prefilters envelope candidates with residues, then
	// certifies the survivors with the prover.
	TierHybrid
	// TierRewrite answers from the compiled first-order rewriting alone.
	TierRewrite
)

// String names the tier as it appears in Stats.Strategy.
func (t Tier) String() string {
	switch t {
	case TierRewrite:
		return "rewrite"
	case TierHybrid:
		return "hybrid"
	default:
		return "prover"
	}
}

// ReasonCode labels one classification rule that ruled out a faster tier.
type ReasonCode string

// The classifier's demotion reasons. Shape and guard reasons demote to
// the prover tier; coverage reasons admit the hybrid tier.
const (
	ReasonUnsupportedShape ReasonCode = "unsupported-shape"      // outside SJUD / unsafe projection
	ReasonUnion            ReasonCode = "union"                  // disjunctive information needs the prover
	ReasonSelfJoin         ReasonCode = "self-join"              // a relation occurs more than once
	ReasonKeyConstant      ReasonCode = "constant-in-key"        // key-position column compared to a constant
	ReasonAttackCycle      ReasonCode = "attack-cycle"           // cyclic non-key join dependencies
	ReasonInteraction      ReasonCode = "constraint-interaction" // unary denial overlaps a binary constraint
	ReasonUncovered        ReasonCode = "constraint-uncovered"   // a scanned relation has a non-residue constraint
	ReasonNegativeJoin     ReasonCode = "join-under-negation"    // multi-atom negative side of a difference
	ReasonNoResidues       ReasonCode = "no-applicable-residue"  // nothing for the hybrid tier to prefilter with
	ReasonCompileFailed    ReasonCode = "compile-failed"         // residue application failed unexpectedly
	ReasonForced           ReasonCode = "forced"                 // caller options pinned the tier
)

// Reason is one demotion with its rule and a human-readable detail.
type Reason struct {
	Code   ReasonCode
	Detail string
}

// String renders "code: detail".
func (r Reason) String() string {
	if r.Detail == "" {
		return string(r.Code)
	}
	return string(r.Code) + ": " + r.Detail
}

// Decision is the planner's verdict for one (query plan, constraint set)
// pair. It is immutable once built and safe to cache and share: Plan is a
// logical tree that callers rebind per run, never mutate.
type Decision struct {
	Tier Tier
	// Plan is the compiled tier plan: the full rewriting (rewrite tier)
	// or the residue-prefiltered envelope (hybrid tier); nil for the
	// prover tier.
	Plan ra.Node
	// Reasons records why each faster tier was ruled out (empty when the
	// rewrite tier was chosen).
	Reasons []Reason
	// Residues is the number of anti-join residues embedded in Plan.
	Residues int
}

// ReasonStrings renders the demotion reasons for Stats.
func (d *Decision) ReasonStrings() []string {
	if len(d.Reasons) == 0 {
		return nil
	}
	out := make([]string, len(d.Reasons))
	for i, r := range d.Reasons {
		out[i] = r.String()
	}
	return out
}

// Classify decides the execution tier for plan under the given rewriter
// (built from the same constraint set as cs). It never fails: anything it
// cannot prove eligible becomes a prover-tier decision with reasons.
func Classify(rw *rewrite.Rewriter, cs []constraint.Constraint, plan ra.Node) *Decision {
	d := &Decision{Tier: TierProver}
	if rw == nil {
		d.Reasons = append(d.Reasons, Reason{Code: ReasonCompileFailed, Detail: "no rewriter"})
		return d
	}
	if err := envelope.CheckQuery(plan); err != nil {
		// The prover path will surface the same error; classification
		// just routes it there.
		d.Reasons = append(d.Reasons, Reason{Code: ReasonUnsupportedShape, Detail: err.Error()})
		return d
	}
	sh := analyzeShape(plan)
	if sh.hasUnion {
		d.Reasons = append(d.Reasons, Reason{Code: ReasonUnion, Detail: "UNION answers may alternate between branches across repairs"})
		return d
	}

	// Guards that demote straight to the prover tier. They are
	// deliberately conservative: each names a shape for which the
	// first-order rewriting is not known to be complete in general
	// (Koutris & Wijsen), so we only claim the fast tiers where the
	// residue method is provably exact.
	keys := keyColumns(cs)
	var hard []Reason
	for rel, n := range sh.relCount {
		if n > 1 {
			hard = append(hard, Reason{Code: ReasonSelfJoin, Detail: fmt.Sprintf("%s occurs %d times", rel, n)})
		}
	}
	if r, ok := keyConstant(sh, keys); ok {
		hard = append(hard, r)
	}
	if r, ok := attackCycle(sh, keys); ok {
		hard = append(hard, r)
	}
	interacting := interactingRels(cs)
	for rel := range sh.relCount {
		if interacting[rel] || interacting["*"] {
			hard = append(hard, Reason{Code: ReasonInteraction,
				Detail: fmt.Sprintf("%s mixes unary and binary constraints", rel)})
		}
	}
	if len(hard) > 0 {
		d.Reasons = hard
		return d
	}

	// Coverage: the rewrite tier requires every scanned relation's
	// constraints to be expressed as residues.
	skipped := rw.SkippedRelations()
	var soft []Reason
	for rel := range sh.relCount {
		if skipped[rel] || skipped[""] {
			soft = append(soft, Reason{Code: ReasonUncovered, Detail: rel})
		}
	}
	if sh.negComplex {
		soft = append(soft, Reason{Code: ReasonNegativeJoin, Detail: "difference with a multi-atom right side"})
	}
	if len(soft) == 0 {
		if compiled, err := rw.Rewrite(plan); err == nil {
			d.Tier = TierRewrite
			d.Plan = distinctify(compiled)
			d.Residues = countResidues(d.Plan)
			return d
		} else {
			soft = append(soft, Reason{Code: ReasonCompileFailed, Detail: err.Error()})
		}
	}
	d.Reasons = soft

	// Hybrid tier: prefilter the envelope when any residue applies to a
	// scanned relation.
	applicable := 0
	for rel := range sh.relCount {
		applicable += rw.ResiduesOn(rel)
	}
	if applicable > 0 {
		if env, err := envelope.Envelope(plan); err == nil {
			if filtered, err := rw.ApplyResidues(env); err == nil {
				d.Tier = TierHybrid
				d.Plan = filtered
				d.Residues = countResidues(filtered)
				return d
			}
		}
	} else {
		d.Reasons = append(d.Reasons, Reason{Code: ReasonNoResidues})
	}
	return d
}

// shape is what one plan walk collects for classification.
type shape struct {
	hasUnion bool
	// relCount counts scans per base relation (lowercased).
	relCount map[string]int
	// qualRel maps each scan's schema qualifier to its relation.
	qualRel map[string]string
	// preds pairs every predicate with the schema it is bound against.
	preds []boundPred
	// negComplex reports a Diff whose right subtree holds more than one
	// atom (or nested set operations): bare negative scans are exact only
	// for single-atom subtrahends.
	negComplex bool
}

type boundPred struct {
	pred ra.Expr
	sch  schema.Schema
}

func analyzeShape(plan ra.Node) *shape {
	sh := &shape{relCount: map[string]int{}, qualRel: map[string]string{}}
	sh.walk(plan)
	return sh
}

func (sh *shape) walk(n ra.Node) {
	switch t := n.(type) {
	case *ra.Scan:
		rel := strings.ToLower(t.Table.Name())
		sh.relCount[rel]++
		q := strings.ToLower(t.Alias)
		if q == "" {
			q = rel
		}
		sh.qualRel[q] = rel
	case *ra.Select:
		sh.preds = append(sh.preds, boundPred{pred: t.Pred, sch: t.Child.Schema()})
	case *ra.Join:
		sh.preds = append(sh.preds, boundPred{pred: t.Pred, sch: t.L.Schema().Concat(t.R.Schema())})
	case *ra.Union:
		sh.hasUnion = true
	case *ra.Diff:
		if countScans(t.R) > 1 || hasSetOps(t.R) {
			sh.negComplex = true
		}
	}
	for _, c := range n.Children() {
		sh.walk(c)
	}
}

func countScans(n ra.Node) int {
	total := 0
	ra.Walk(n, func(m ra.Node) {
		if _, ok := m.(*ra.Scan); ok {
			total++
		}
	})
	return total
}

func hasSetOps(n ra.Node) bool {
	found := false
	ra.Walk(n, func(m ra.Node) {
		switch m.(type) {
		case *ra.Diff, *ra.Union, *ra.Intersect:
			found = true
		}
	})
	return found
}

// interactingRels finds relations where per-constraint residues stop
// being exact: a single-atom denial kills its violators in EVERY repair,
// so when such a relation also participates in a binary constraint, a
// tuple's binary-conflict partner may itself be dead — the tuple then
// belongs to every repair despite having a partner, and the binary
// residue (and the hybrid prefilter built from it) would wrongly discard
// it. Every relation of an affected binary constraint is reported; an
// unrecognized constraint type reports the wildcard "*".
func interactingRels(cs []constraint.Constraint) map[string]bool {
	unary := map[string]bool{}
	var binarySets [][]string
	wildcard := false
	for _, c := range cs {
		switch t := c.(type) {
		case constraint.FD:
			binarySets = append(binarySets, []string{strings.ToLower(t.Rel)})
		case constraint.Key:
			binarySets = append(binarySets, []string{strings.ToLower(t.Rel)})
		case constraint.Exclusion:
			binarySets = append(binarySets, []string{strings.ToLower(t.A.Rel), strings.ToLower(t.B.Rel)})
		case constraint.Denial:
			if t.Arity() == 1 {
				unary[strings.ToLower(t.Atoms[0].Rel)] = true
				continue
			}
			var rels []string
			for _, a := range t.Atoms {
				rels = append(rels, strings.ToLower(a.Rel))
			}
			binarySets = append(binarySets, rels)
		default:
			wildcard = true
		}
	}
	out := map[string]bool{}
	if wildcard {
		out["*"] = true
		return out
	}
	for _, rels := range binarySets {
		hit := false
		for _, r := range rels {
			if unary[r] {
				hit = true
				break
			}
		}
		if hit {
			for _, r := range rels {
				out[r] = true
			}
		}
	}
	return out
}

// keyColumns collects, per relation (lowercased), the columns that act as
// key positions: the determinant of any declared FD or Key.
func keyColumns(cs []constraint.Constraint) map[string]map[string]bool {
	out := map[string]map[string]bool{}
	add := func(rel string, cols []string) {
		rel = strings.ToLower(rel)
		m := out[rel]
		if m == nil {
			m = map[string]bool{}
			out[rel] = m
		}
		for _, c := range cols {
			m[strings.ToLower(c)] = true
		}
	}
	for _, c := range cs {
		switch t := c.(type) {
		case constraint.FD:
			add(t.Rel, t.LHS)
		case constraint.Key:
			add(t.Rel, t.Cols)
		}
	}
	return out
}

// keyConstant reports an equality between a key-position column and a
// constant anywhere in the plan's predicates.
func keyConstant(sh *shape, keys map[string]map[string]bool) (Reason, bool) {
	for _, bp := range sh.preds {
		for _, e := range conjuncts(bp.pred) {
			cmp, ok := e.(ra.Cmp)
			if !ok || cmp.Op != ra.EQ {
				continue
			}
			for _, side := range [][2]ra.Expr{{cmp.L, cmp.R}, {cmp.R, cmp.L}} {
				col, okc := side[0].(ra.Col)
				_, okk := side[1].(ra.Const)
				if !okc || !okk {
					continue
				}
				rel, name, ok := resolveCol(sh, bp.sch, col.Index)
				if ok && keys[rel][name] {
					return Reason{Code: ReasonKeyConstant,
						Detail: fmt.Sprintf("%s.%s = constant", rel, name)}, true
				}
			}
		}
	}
	return Reason{}, false
}

// attackCycle builds a conservative attack graph over the query's atoms:
// atom A attacks atom B when A's relation has a declared key and a
// non-key column of A is equated with a column of B. A directed cycle
// means no atom's certainty can be decided independently of the others,
// so the query is served by the prover (mirroring the Koutris–Wijsen
// attack-graph dichotomy for the rewritable fragment).
func attackCycle(sh *shape, keys map[string]map[string]bool) (Reason, bool) {
	edges := map[string]map[string]bool{}
	for _, bp := range sh.preds {
		for _, e := range conjuncts(bp.pred) {
			cmp, ok := e.(ra.Cmp)
			if !ok || cmp.Op != ra.EQ {
				continue
			}
			lc, okl := cmp.L.(ra.Col)
			rc, okr := cmp.R.(ra.Col)
			if !okl || !okr {
				continue
			}
			lRel, lName, okL := resolveCol(sh, bp.sch, lc.Index)
			rRel, rName, okR := resolveCol(sh, bp.sch, rc.Index)
			if !okL || !okR {
				continue
			}
			lq, rq := qualAt(bp.sch, lc.Index), qualAt(bp.sch, rc.Index)
			if lq == rq {
				continue
			}
			if len(keys[lRel]) > 0 && !keys[lRel][lName] {
				addEdge(edges, lq, rq)
			}
			if len(keys[rRel]) > 0 && !keys[rRel][rName] {
				addEdge(edges, rq, lq)
			}
		}
	}
	if cyc := findCycle(edges); cyc != "" {
		return Reason{Code: ReasonAttackCycle, Detail: cyc}, true
	}
	return Reason{}, false
}

func addEdge(edges map[string]map[string]bool, from, to string) {
	m := edges[from]
	if m == nil {
		m = map[string]bool{}
		edges[from] = m
	}
	m[to] = true
}

// findCycle reports some atom on a directed cycle ("" when acyclic).
func findCycle(edges map[string]map[string]bool) string {
	const (
		visiting = 1
		done     = 2
	)
	state := map[string]int{}
	var dfs func(string) bool
	dfs = func(n string) bool {
		state[n] = visiting
		for m := range edges[n] {
			switch state[m] {
			case visiting:
				return true
			case done:
			default:
				if dfs(m) {
					return true
				}
			}
		}
		state[n] = done
		return false
	}
	for n := range edges {
		if state[n] == 0 && dfs(n) {
			return "atoms " + n + "..."
		}
	}
	return ""
}

// resolveCol maps a column index of a bound predicate to its (relation,
// column-name) pair via the schema's qualifier.
func resolveCol(sh *shape, sch schema.Schema, idx int) (rel, name string, ok bool) {
	if idx < 0 || idx >= sch.Len() {
		return "", "", false
	}
	c := sch.Columns[idx]
	rel, ok = sh.qualRel[strings.ToLower(c.Qualifier)]
	return rel, strings.ToLower(c.Name), ok
}

func qualAt(sch schema.Schema, idx int) string {
	if idx < 0 || idx >= sch.Len() {
		return ""
	}
	return strings.ToLower(sch.Columns[idx].Qualifier)
}

func conjuncts(e ra.Expr) []ra.Expr {
	if e == nil {
		return nil
	}
	return ra.Conjuncts(e)
}

// distinctify mirrors the envelope's multiplicity on a rewritten plan:
// every projection becomes DISTINCT, exactly as Envelope marks them, so
// rewrite-tier answers carry the same duplicates as prover-tier answers
// (set operators already deduplicate on both paths).
func distinctify(n ra.Node) ra.Node {
	switch t := n.(type) {
	case *ra.Project:
		return &ra.Project{Child: distinctify(t.Child), Exprs: t.Exprs, Names: t.Names, Distinct: true}
	case *ra.Select:
		return &ra.Select{Child: distinctify(t.Child), Pred: t.Pred}
	case *ra.Product:
		return &ra.Product{L: distinctify(t.L), R: distinctify(t.R)}
	case *ra.Join:
		return &ra.Join{L: distinctify(t.L), R: distinctify(t.R), Pred: t.Pred}
	case *ra.Diff:
		return &ra.Diff{L: distinctify(t.L), R: distinctify(t.R)}
	case *ra.Intersect:
		return &ra.Intersect{L: distinctify(t.L), R: distinctify(t.R)}
	case *ra.DistinctNode:
		return &ra.DistinctNode{Child: distinctify(t.Child)}
	case *ra.AntiJoin:
		// Residue anti-joins: the partner side is machinery, not a query
		// atom — leave it untouched.
		return &ra.AntiJoin{L: distinctify(t.L), R: t.R, Pred: t.Pred}
	default:
		return n
	}
}

func countResidues(n ra.Node) int {
	total := 0
	ra.Walk(n, func(m ra.Node) {
		if _, ok := m.(*ra.AntiJoin); ok {
			total++
		}
	})
	return total
}
