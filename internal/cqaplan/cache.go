package cqaplan

import "sync"

// maxCacheEntries bounds the decision cache. A workload with more
// distinct query shapes than this simply recompiles; eviction is a full
// reset, which keeps the cache allocation-free on the hit path.
const maxCacheEntries = 256

// Cache memoizes tier decisions per (query signature, constraint epoch).
// A signature is the formatted logical plan, which is stable across
// snapshots (it names base relations, not storage versions); the epoch is
// the system's constraint-change counter, so registering a constraint or
// altering the schema invalidates every compiled plan at once. Decisions
// are shared, never mutated: callers rebind Decision.Plan per run.
type Cache struct {
	mu    sync.Mutex
	epoch uint64
	m     map[string]*Decision
}

// NewCache returns an empty decision cache.
func NewCache() *Cache {
	return &Cache{m: make(map[string]*Decision)}
}

// Lookup returns the cached decision for sig at epoch, if present.
func (c *Cache) Lookup(sig string, epoch uint64) (*Decision, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.epoch != epoch {
		return nil, false
	}
	d, ok := c.m[sig]
	return d, ok
}

// Store records a decision for sig at epoch, discarding every entry of an
// older epoch first.
func (c *Cache) Store(sig string, epoch uint64, d *Decision) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.epoch != epoch || len(c.m) >= maxCacheEntries {
		c.m = make(map[string]*Decision)
		c.epoch = epoch
	}
	c.m[sig] = d
}

// Len reports the number of cached decisions (for tests and stats).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
