package engine

import (
	"context"
	"strings"
	"testing"

	"hippo/internal/ra"
	"hippo/internal/sqlparse"
	"hippo/internal/value"
)

// optimizedPlan plans sql and applies the physical optimizer.
func optimizedPlan(t *testing.T, db *DB, sql string) ra.Node {
	t.Helper()
	q, err := sqlparse.ParseQuery(sql)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := db.PlanQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	return optimize(plan)
}

func TestCreateIndexStatement(t *testing.T) {
	db := newEmpDB(t)
	if _, _, err := db.Exec("CREATE INDEX emp_id ON emp (id)"); err != nil {
		t.Fatal(err)
	}
	tb, _ := db.Table("emp")
	if _, ok := tb.Index([]int{0}); !ok {
		t.Fatal("index not created")
	}
	// Errors.
	if _, _, err := db.Exec("CREATE INDEX x ON missing (id)"); err == nil {
		t.Error("missing table should fail")
	}
	if _, _, err := db.Exec("CREATE INDEX x ON emp (zzz)"); err == nil {
		t.Error("missing column should fail")
	}
	if _, err := sqlparse.Parse("CREATE INDEX ON emp (id)"); err == nil {
		t.Error("missing index name should fail to parse")
	}
}

func TestOptimizerUsesIndex(t *testing.T) {
	db := newEmpDB(t)
	mustExec(db, "CREATE INDEX emp_id ON emp (id)")

	plan := optimizedPlan(t, db, "SELECT * FROM emp WHERE id = 2")
	s := ra.Format(plan)
	if !strings.Contains(s, "IndexLookup") {
		t.Fatalf("expected IndexLookup:\n%s", s)
	}
	// Residual predicate survives alongside the lookup.
	plan = optimizedPlan(t, db, "SELECT * FROM emp WHERE id = 2 AND salary > 100")
	s = ra.Format(plan)
	if !strings.Contains(s, "IndexLookup") || !strings.Contains(s, "Select") {
		t.Fatalf("expected IndexLookup + residual Select:\n%s", s)
	}
	// Reversed operand order also matches.
	plan = optimizedPlan(t, db, "SELECT * FROM emp WHERE 2 = id")
	if !strings.Contains(ra.Format(plan), "IndexLookup") {
		t.Fatal("reversed equality should match")
	}
}

func TestOptimizerSkipsWhenNoIndexFits(t *testing.T) {
	db := newEmpDB(t)
	// No index at all.
	plan := optimizedPlan(t, db, "SELECT * FROM emp WHERE id = 2")
	if strings.Contains(ra.Format(plan), "IndexLookup") {
		t.Fatal("no index exists; scan expected")
	}
	// Index on a different column set.
	mustExec(db, "CREATE INDEX emp_sal ON emp (salary)")
	plan = optimizedPlan(t, db, "SELECT * FROM emp WHERE id = 2")
	if strings.Contains(ra.Format(plan), "IndexLookup") {
		t.Fatal("index does not cover predicate columns")
	}
	// Non-equality predicates don't qualify.
	plan = optimizedPlan(t, db, "SELECT * FROM emp WHERE salary > 100")
	if strings.Contains(ra.Format(plan), "IndexLookup") {
		t.Fatal("range predicate must not use hash index")
	}
	// NULL constants don't qualify (col = NULL is never true).
	plan = optimizedPlan(t, db, "SELECT * FROM emp WHERE salary = NULL")
	if strings.Contains(ra.Format(plan), "IndexLookup") {
		t.Fatal("NULL equality must not use the index")
	}
}

func TestOptimizerPicksWidestIndex(t *testing.T) {
	db := newEmpDB(t)
	mustExec(db, "CREATE INDEX i1 ON emp (dept)")
	mustExec(db, "CREATE INDEX i2 ON emp (dept, salary)")
	plan := optimizedPlan(t, db, "SELECT * FROM emp WHERE dept = 10 AND salary = 100")
	s := ra.Format(plan)
	if !strings.Contains(s, "IndexLookup") {
		t.Fatalf("expected IndexLookup:\n%s", s)
	}
	// The two-column index absorbs both equalities → no residual Select.
	if strings.Contains(s, "Select") {
		t.Fatalf("widest index should absorb all equalities:\n%s", s)
	}
}

func TestOptimizedResultsMatchUnoptimized(t *testing.T) {
	db := newEmpDB(t)
	mustExec(db, "CREATE INDEX emp_id ON emp (id)")
	mustExec(db, "CREATE INDEX emp_dept ON emp (dept)")
	queries := []string{
		"SELECT * FROM emp WHERE id = 2",
		"SELECT * FROM emp WHERE id = 2 AND salary > 100",
		"SELECT * FROM emp WHERE dept = 10 AND id = 1",
		"SELECT * FROM emp WHERE id = 99",
		"SELECT name FROM emp WHERE id = 3 ORDER BY name",
		"SELECT * FROM emp e, dept d WHERE e.dept = d.id AND e.id = 1",
		"SELECT * FROM emp WHERE id = 1 UNION SELECT * FROM emp WHERE id = 2",
		"SELECT * FROM emp WHERE id = 1 AND id = 2", // contradictory
	}
	for _, sql := range queries {
		q, err := sqlparse.ParseQuery(sql)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := db.PlanQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := db.RunPlanRaw(plan)
		if err != nil {
			t.Fatalf("%q raw: %v", sql, err)
		}
		opt, err := db.RunPlan(plan)
		if err != nil {
			t.Fatalf("%q optimized: %v", sql, err)
		}
		if len(raw.Rows) != len(opt.Rows) {
			t.Fatalf("%q: raw %d rows, optimized %d", sql, len(raw.Rows), len(opt.Rows))
		}
		seen := map[string]bool{}
		for _, r := range raw.Rows {
			seen[r.Key()] = true
		}
		for _, r := range opt.Rows {
			if !seen[r.Key()] {
				t.Fatalf("%q: optimized produced extra row %s", sql, value.TupleString(r))
			}
		}
	}
}

func TestIndexLookupNode(t *testing.T) {
	db := newEmpDB(t)
	tb, _ := db.Table("emp")
	idx, err := tb.EnsureIndex([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	n := &ra.IndexLookup{
		Table: tb,
		Index: idx,
		Key:   []ra.Expr{ra.Const{V: value.Int(1)}},
	}
	rows, err := ra.Materialize(context.Background(), n)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][1] != value.Text("ann") {
		t.Errorf("rows = %v", rows)
	}
	if n.Schema().Columns[0].Qualifier != "emp" || len(n.Children()) != 0 {
		t.Error("IndexLookup metadata wrong")
	}
	if !strings.Contains(n.String(), "IndexLookup(emp") {
		t.Errorf("String = %q", n.String())
	}
	// Key arity mismatch errors.
	bad := &ra.IndexLookup{Table: tb, Index: idx, Key: nil}
	if _, err := ra.Materialize(context.Background(), bad); err == nil {
		t.Error("key arity mismatch should error")
	}
}
