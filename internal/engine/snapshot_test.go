package engine

import (
	"testing"
	"time"

	"hippo/internal/sqlparse"
)

func snapDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	mustExec(db, "CREATE TABLE emp (id INT, dept TEXT)")
	mustExec(db, "INSERT INTO emp VALUES (1,'a'), (2,'b'), (3,'a')")
	mustExec(db, "CREATE TABLE dept (name TEXT, city TEXT)")
	mustExec(db, "INSERT INTO dept VALUES ('a','x'), ('b','y')")
	return db
}

func TestDBSnapshotIsolation(t *testing.T) {
	db := snapDB(t)
	snap := db.Snapshot()
	mustExec(db, "INSERT INTO emp VALUES (4,'c')")
	mustExec(db, "DELETE FROM emp WHERE id = 1")

	res, err := snap.Query("SELECT id FROM emp ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("snapshot sees %d rows, want 3 (pre-mutation state)", len(res.Rows))
	}
	live, err := db.Query("SELECT id FROM emp ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if len(live.Rows) != 3 || live.Rows[0][0].String() != "2" {
		t.Fatalf("live sees %v", live.Rows)
	}

	// Joins across tables work on the snapshot.
	res, err = snap.Query("SELECT e.id, d.city FROM emp e, dept d WHERE e.dept = d.name ORDER BY e.id")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("snapshot join rows=%d, want 3", len(res.Rows))
	}
}

func TestSnapshotUnchangedTablesShared(t *testing.T) {
	db := snapDB(t)
	s1 := db.Snapshot()
	mustExec(db, "INSERT INTO emp VALUES (4,'c')")
	s2 := db.Snapshot()
	t1, _ := s1.Table("dept")
	t2, _ := s2.Table("dept")
	if t1 != t2 {
		t.Fatal("snapshot of unchanged table not shared between cuts")
	}
	e1, _ := s1.Table("emp")
	e2, _ := s2.Table("emp")
	if e1 == e2 {
		t.Fatal("snapshot of changed table wrongly shared")
	}
	if s2.RetiredSlabs(s1) != 0 && s1.RetiredSlabs(s2) == 0 {
		t.Fatal("retired-slab accounting inverted")
	}
}

// Rebind must move every base-relation access of a logical plan onto the
// snapshot while leaving results identical.
func TestRebindToSnapshot(t *testing.T) {
	db := snapDB(t)
	q, err := sqlparse.ParseQuery("SELECT e.id FROM emp e WHERE e.dept = 'a' ORDER BY e.id")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := db.PlanQuery(q) // bound to live tables
	if err != nil {
		t.Fatal(err)
	}
	snap := db.Snapshot()
	mustExec(db, "INSERT INTO emp VALUES (9,'a')")

	rebound, err := Rebind(plan, snap)
	if err != nil {
		t.Fatal(err)
	}
	res, err := snap.RunPlan(rebound)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rebound plan rows=%d, want 2 (snapshot state)", len(res.Rows))
	}
	liveRes, err := db.RunPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(liveRes.Rows) != 3 {
		t.Fatalf("live plan rows=%d, want 3", len(liveRes.Rows))
	}
}

func TestFreezeWritesBlocksWriters(t *testing.T) {
	db := snapDB(t)
	release := db.FreezeWrites()
	done := make(chan error, 1)
	go func() {
		_, _, err := db.Exec("INSERT INTO emp VALUES (10,'z')")
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // give the writer a chance to (wrongly) finish
	select {
	case <-done:
		t.Fatal("writer proceeded while frozen")
	default:
	}
	release()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if n, _ := db.Table("emp"); n.Len() != 4 {
		t.Fatalf("emp len=%d, want 4", n.Len())
	}
}
