package engine

import (
	"hippo/internal/ra"
	"hippo/internal/storage"
	"hippo/internal/value"
)

// optimize is the engine's full planning pipeline: semi/anti-join
// selection pushdown, then the cost-based stage (predicate pushdown,
// product-to-join conversion, join ordering — see costplan.go), then
// access-path selection.
func optimize(n ra.Node) ra.Node {
	return accessPaths(costPlan(pushMatchSelects(n)))
}

// pushMatchSelects pushes a Select through the left input of SemiJoin and
// AntiJoin nodes. Both emit a subset of their left input's rows with the
// left input's schema unchanged, so a filter above them binds identically
// below — and filtering first shrinks the probe side of the match.
// costPlan treats SemiJoin/AntiJoin as opaque (it clones them
// structurally), so without this pass a residue-rewritten plan
// Select(AntiJoin(Scan, ...)) anti-joins the full relation before
// filtering.
func pushMatchSelects(n ra.Node) ra.Node {
	switch t := n.(type) {
	case *ra.Select:
		child := pushMatchSelects(t.Child)
		switch m := child.(type) {
		case *ra.SemiJoin:
			return &ra.SemiJoin{L: pushMatchSelects(&ra.Select{Child: m.L, Pred: t.Pred}), R: m.R, Pred: m.Pred}
		case *ra.AntiJoin:
			return &ra.AntiJoin{L: pushMatchSelects(&ra.Select{Child: m.L, Pred: t.Pred}), R: m.R, Pred: m.Pred}
		}
		return &ra.Select{Child: child, Pred: t.Pred}
	case *ra.Project:
		return &ra.Project{Child: pushMatchSelects(t.Child), Exprs: t.Exprs, Names: t.Names, Distinct: t.Distinct}
	case *ra.Product:
		return &ra.Product{L: pushMatchSelects(t.L), R: pushMatchSelects(t.R)}
	case *ra.Join:
		return &ra.Join{L: pushMatchSelects(t.L), R: pushMatchSelects(t.R), Pred: t.Pred}
	case *ra.SemiJoin:
		return &ra.SemiJoin{L: pushMatchSelects(t.L), R: pushMatchSelects(t.R), Pred: t.Pred}
	case *ra.AntiJoin:
		return &ra.AntiJoin{L: pushMatchSelects(t.L), R: pushMatchSelects(t.R), Pred: t.Pred}
	case *ra.Union:
		return &ra.Union{L: pushMatchSelects(t.L), R: pushMatchSelects(t.R)}
	case *ra.Diff:
		return &ra.Diff{L: pushMatchSelects(t.L), R: pushMatchSelects(t.R)}
	case *ra.Intersect:
		return &ra.Intersect{L: pushMatchSelects(t.L), R: pushMatchSelects(t.R)}
	case *ra.DistinctNode:
		return &ra.DistinctNode{Child: pushMatchSelects(t.Child)}
	case *ra.Sort:
		return &ra.Sort{Child: pushMatchSelects(t.Child), Keys: t.Keys}
	case *ra.Limit:
		return &ra.Limit{Child: pushMatchSelects(t.Child), N: t.N}
	default:
		return n
	}
}

// Optimize exposes the engine's physical planner: it turns a logical plan
// into the executable plan RunPlan would run, for callers that open the
// iterator tree themselves (streaming evaluation) or want to inspect the
// chosen shape.
func Optimize(plan ra.Node) ra.Node { return optimize(plan) }

// accessPaths applies access-path selection to a plan: a Select over a
// Scan whose predicate contains constant equality conjuncts covering an
// existing index of the table is rewritten to an IndexLookup plus a
// residual Select. Only indexes that already exist are used (CREATE INDEX
// or earlier conflict analysis creates them); the optimizer never builds
// one speculatively.
func accessPaths(n ra.Node) ra.Node {
	switch t := n.(type) {
	case *ra.Select:
		child := accessPaths(t.Child)
		if scan, ok := child.(*ra.Scan); ok {
			if rewritten, ok := tryIndexLookup(scan, t.Pred); ok {
				return rewritten
			}
		}
		return &ra.Select{Child: child, Pred: t.Pred}
	case *ra.Project:
		return &ra.Project{Child: accessPaths(t.Child), Exprs: t.Exprs, Names: t.Names, Distinct: t.Distinct}
	case *ra.Product:
		return &ra.Product{L: accessPaths(t.L), R: accessPaths(t.R)}
	case *ra.Join:
		return &ra.Join{L: accessPaths(t.L), R: accessPaths(t.R), Pred: t.Pred}
	case *ra.SemiJoin:
		return &ra.SemiJoin{L: accessPaths(t.L), R: accessPaths(t.R), Pred: t.Pred}
	case *ra.AntiJoin:
		return &ra.AntiJoin{L: accessPaths(t.L), R: accessPaths(t.R), Pred: t.Pred}
	case *ra.Union:
		return &ra.Union{L: accessPaths(t.L), R: accessPaths(t.R)}
	case *ra.Diff:
		return &ra.Diff{L: accessPaths(t.L), R: accessPaths(t.R)}
	case *ra.Intersect:
		return &ra.Intersect{L: accessPaths(t.L), R: accessPaths(t.R)}
	case *ra.DistinctNode:
		return &ra.DistinctNode{Child: accessPaths(t.Child)}
	case *ra.Sort:
		return &ra.Sort{Child: accessPaths(t.Child), Keys: t.Keys}
	case *ra.Limit:
		return &ra.Limit{Child: accessPaths(t.Child), N: t.N}
	default:
		return n
	}
}

// tryIndexLookup finds the widest existing index whose columns are all
// constrained by constant equality conjuncts of pred.
func tryIndexLookup(scan *ra.Scan, pred ra.Expr) (ra.Node, bool) {
	// Collect col = const (or const = col) conjuncts.
	constsByCol := map[int]value.Value{}
	var residual []ra.Expr
	for _, c := range ra.Conjuncts(pred) {
		if cmp, ok := c.(ra.Cmp); ok && cmp.Op == ra.EQ {
			if col, cv, ok := colConstPair(cmp); ok {
				if prev, seen := constsByCol[col]; !seen {
					constsByCol[col] = cv
					continue
				} else if value.Equal(prev, cv) {
					continue // duplicate constraint
				}
				// Contradictory equalities; leave to the residual filter.
			}
		}
		residual = append(residual, c)
	}
	if len(constsByCol) == 0 {
		return nil, false
	}
	var best *indexChoice
	for _, idx := range scan.Table.Indexes() {
		cols := idx.Columns()
		covered := true
		for _, c := range cols {
			if _, ok := constsByCol[c]; !ok {
				covered = false
				break
			}
		}
		if !covered {
			continue
		}
		if best == nil || len(cols) > len(best.cols) {
			best = &indexChoice{idx: idx, cols: cols}
		}
	}
	if best == nil {
		return nil, false
	}
	key := make([]ra.Expr, len(best.cols))
	used := map[int]bool{}
	for i, c := range best.cols {
		key[i] = ra.Const{V: constsByCol[c]}
		used[c] = true
	}
	// Equality conjuncts not absorbed by the index stay as residual filters.
	for col, cv := range constsByCol {
		if !used[col] {
			residual = append(residual, ra.Cmp{Op: ra.EQ, L: ra.Col{Index: col}, R: ra.Const{V: cv}})
		}
	}
	var node ra.Node = &ra.IndexLookup{
		Table: scan.Table,
		Index: best.idx,
		Key:   key,
		Alias: scan.Alias,
	}
	if p := ra.Conjoin(residual...); p != nil {
		node = &ra.Select{Child: node, Pred: p}
	}
	return node, true
}

type indexChoice struct {
	idx  *storage.Index
	cols []int
}

// colConstPair extracts (column index, constant) from an equality.
func colConstPair(cmp ra.Cmp) (int, value.Value, bool) {
	if col, ok := cmp.L.(ra.Col); ok {
		if c, ok := cmp.R.(ra.Const); ok && !c.V.IsNull() {
			return col.Index, c.V, true
		}
	}
	if col, ok := cmp.R.(ra.Col); ok {
		if c, ok := cmp.L.(ra.Const); ok && !c.V.IsNull() {
			return col.Index, c.V, true
		}
	}
	return 0, value.Value{}, false
}
