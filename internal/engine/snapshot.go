package engine

import (
	"context"
	"fmt"
	"slices"
	"strings"

	"hippo/internal/ra"
	"hippo/internal/sqlparse"
	"hippo/internal/storage"
)

// Snapshot is an immutable point-in-time view of the whole database: one
// TableSnapshot per table, taken at a single consistent cut. Any number
// of goroutines can plan and run queries against it without locking,
// concurrently with live writers. Query executions still count toward the
// parent database's query counter.
type Snapshot struct {
	db     *DB
	tables map[string]*storage.TableSnapshot
	names  []string // sorted
}

// Snapshot takes a consistent snapshot of every table. It briefly freezes
// writers to establish the cut; use SnapshotFrozen when the caller
// already holds FreezeWrites.
func (db *DB) Snapshot() *Snapshot {
	release := db.FreezeWrites()
	defer release()
	return db.SnapshotFrozen()
}

// SnapshotFrozen snapshots every table without acquiring the write
// sequencer; the caller must hold FreezeWrites (or otherwise guarantee no
// writer is active).
func (db *DB) SnapshotFrozen() *Snapshot {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s := &Snapshot{
		db:     db,
		tables: make(map[string]*storage.TableSnapshot, len(db.tables)),
		names:  make([]string, 0, len(db.tables)),
	}
	for name, t := range db.tables {
		s.tables[name] = t.Snapshot()
		s.names = append(s.names, name)
	}
	slices.Sort(s.names)
	return s
}

// TableNames returns the sorted names of all tables in the snapshot.
func (s *Snapshot) TableNames() []string { return s.names }

// Table returns the named table snapshot.
func (s *Snapshot) Table(name string) (*storage.TableSnapshot, error) {
	t, ok := s.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("engine: no such table %q in snapshot", name)
	}
	return t, nil
}

// Tables returns the snapshot's tables keyed by lowercased name. The map
// must not be mutated.
func (s *Snapshot) Tables() map[string]*storage.TableSnapshot { return s.tables }

// Relation returns the named table snapshot as a storage.Relation,
// satisfying the planner's catalog interface (shared with DB).
func (s *Snapshot) Relation(name string) (storage.Relation, error) {
	return s.Table(name)
}

// PlanQuery translates a parsed query into a plan bound to the snapshot.
func (s *Snapshot) PlanQuery(q *sqlparse.Query) (ra.Node, error) {
	return planQuery(s, q)
}

// RunPlan executes a plan through the full planner (cost-based stage plus
// access paths) and materializes the result, counting the execution on
// the parent database.
func (s *Snapshot) RunPlan(plan ra.Node) (*Result, error) {
	return s.RunPlanContext(context.Background(), plan)
}

// RunPlanContext is RunPlan under ctx: evaluation aborts within a bounded
// number of rows of the context being cancelled or its deadline passing.
func (s *Snapshot) RunPlanContext(ctx context.Context, plan ra.Node) (*Result, error) {
	s.db.queries.Add(1)
	rows, err := ra.Materialize(ctx, optimize(plan))
	if err != nil {
		return nil, err
	}
	return &Result{Schema: plan.Schema(), Rows: rows}, nil
}

// RunPlanLegacy executes a plan with access-path selection only, skipping
// the cost-based stage — the pre-planner evaluation strategy, kept as an
// opt-out baseline for comparison and for callers that need the written
// join order verbatim.
func (s *Snapshot) RunPlanLegacy(plan ra.Node) (*Result, error) {
	return s.RunPlanLegacyContext(context.Background(), plan)
}

// RunPlanLegacyContext is RunPlanLegacy under ctx. The materialized
// consistent-query path runs envelopes through it, so a deadline kills a
// materialized evaluation exactly as it kills a streamed one.
func (s *Snapshot) RunPlanLegacyContext(ctx context.Context, plan ra.Node) (*Result, error) {
	s.db.queries.Add(1)
	rows, err := ra.Materialize(ctx, accessPaths(plan))
	if err != nil {
		return nil, err
	}
	return &Result{Schema: plan.Schema(), Rows: rows}, nil
}

// RunPlanRaw executes a plan without any optimization (see DB.RunPlanRaw).
func (s *Snapshot) RunPlanRaw(plan ra.Node) (*Result, error) {
	return s.RunPlanRawContext(context.Background(), plan)
}

// RunPlanRawContext is RunPlanRaw under ctx.
func (s *Snapshot) RunPlanRawContext(ctx context.Context, plan ra.Node) (*Result, error) {
	s.db.queries.Add(1)
	rows, err := ra.Materialize(ctx, plan)
	if err != nil {
		return nil, err
	}
	return &Result{Schema: plan.Schema(), Rows: rows}, nil
}

// OpenPlan opens the iterator tree of an already-physical plan (as
// produced by Optimize) under ctx, so the caller can consume rows
// incrementally and feed them into downstream work while evaluation is
// still running. The caller must Close the iterator; cancelling ctx stops
// leaf iterators within a bounded number of rows. The execution counts as
// one query.
func (s *Snapshot) OpenPlan(ctx context.Context, phys ra.Node) (ra.Iterator, error) {
	s.db.queries.Add(1)
	return phys.Open(ctx)
}

// Query parses, plans, and executes a SELECT against the snapshot.
func (s *Snapshot) Query(sql string) (*Result, error) {
	return s.QueryContext(context.Background(), sql)
}

// QueryContext is Query under ctx (see RunPlanContext).
func (s *Snapshot) QueryContext(ctx context.Context, sql string) (*Result, error) {
	q, err := sqlparse.ParseQuery(sql)
	if err != nil {
		return nil, err
	}
	plan, err := s.PlanQuery(q)
	if err != nil {
		return nil, err
	}
	return s.RunPlanContext(ctx, plan)
}

// NumSlabs returns the total number of row slabs the snapshot references.
func (s *Snapshot) NumSlabs() int {
	n := 0
	for _, t := range s.tables {
		n += t.NumSlabs()
	}
	return n
}

// RetiredSlabs counts the slabs this snapshot references that a newer
// snapshot no longer shares — i.e. the memory that becomes reclaimable
// once no reader pins this snapshot's epoch.
func (s *Snapshot) RetiredSlabs(next *Snapshot) int {
	if next == nil {
		return s.NumSlabs()
	}
	n := 0
	for name, t := range s.tables {
		n += t.NumSlabs() - t.SharedSlabs(next.tables[name])
	}
	return n
}

// Rebind rewrites every base-relation access of a logical plan to the
// same-named relation of cat, leaving all other operators intact. The
// Hippo core uses it to evaluate plans that were bound to live tables
// against a pinned snapshot instead. Physical access paths (IndexLookup)
// cannot be rebound — they reference an index of the original relation —
// so plans must be logical (as produced by PlanQuery).
func Rebind(plan ra.Node, cat catalog) (ra.Node, error) {
	return rebind(plan, cat)
}

func rebind(n ra.Node, cat catalog) (ra.Node, error) {
	switch t := n.(type) {
	case *ra.Scan:
		rel, err := cat.Relation(t.Table.Name())
		if err != nil {
			return nil, err
		}
		return &ra.Scan{Table: rel, Alias: t.Alias}, nil
	case *ra.IndexLookup:
		return nil, fmt.Errorf("engine: cannot rebind physical plan node %s", t)
	case *ra.Select:
		c, err := rebind(t.Child, cat)
		if err != nil {
			return nil, err
		}
		return &ra.Select{Child: c, Pred: t.Pred}, nil
	case *ra.Project:
		c, err := rebind(t.Child, cat)
		if err != nil {
			return nil, err
		}
		return &ra.Project{Child: c, Exprs: t.Exprs, Names: t.Names, Distinct: t.Distinct}, nil
	case *ra.Product:
		l, r, err := rebind2(t.L, t.R, cat)
		if err != nil {
			return nil, err
		}
		return &ra.Product{L: l, R: r}, nil
	case *ra.Join:
		l, r, err := rebind2(t.L, t.R, cat)
		if err != nil {
			return nil, err
		}
		return &ra.Join{L: l, R: r, Pred: t.Pred}, nil
	case *ra.SemiJoin:
		l, r, err := rebind2(t.L, t.R, cat)
		if err != nil {
			return nil, err
		}
		return &ra.SemiJoin{L: l, R: r, Pred: t.Pred}, nil
	case *ra.AntiJoin:
		l, r, err := rebind2(t.L, t.R, cat)
		if err != nil {
			return nil, err
		}
		return &ra.AntiJoin{L: l, R: r, Pred: t.Pred}, nil
	case *ra.Union:
		l, r, err := rebind2(t.L, t.R, cat)
		if err != nil {
			return nil, err
		}
		return &ra.Union{L: l, R: r}, nil
	case *ra.Diff:
		l, r, err := rebind2(t.L, t.R, cat)
		if err != nil {
			return nil, err
		}
		return &ra.Diff{L: l, R: r}, nil
	case *ra.Intersect:
		l, r, err := rebind2(t.L, t.R, cat)
		if err != nil {
			return nil, err
		}
		return &ra.Intersect{L: l, R: r}, nil
	case *ra.DistinctNode:
		c, err := rebind(t.Child, cat)
		if err != nil {
			return nil, err
		}
		return &ra.DistinctNode{Child: c}, nil
	case *ra.Sort:
		c, err := rebind(t.Child, cat)
		if err != nil {
			return nil, err
		}
		return &ra.Sort{Child: c, Keys: t.Keys}, nil
	case *ra.Limit:
		c, err := rebind(t.Child, cat)
		if err != nil {
			return nil, err
		}
		return &ra.Limit{Child: c, N: t.N}, nil
	default:
		// Leaf nodes without base-relation access (e.g. Values) pass
		// through unchanged.
		return n, nil
	}
}

func rebind2(l, r ra.Node, cat catalog) (ra.Node, ra.Node, error) {
	nl, err := rebind(l, cat)
	if err != nil {
		return nil, nil, err
	}
	nr, err := rebind(r, cat)
	if err != nil {
		return nil, nil, err
	}
	return nl, nr, nil
}
