package engine

import (
	"errors"
	"fmt"
	"strings"

	"hippo/internal/schema"
	"hippo/internal/storage"
	"hippo/internal/value"
)

// CommitLog is the engine's durability hook: when attached, every commit
// is appended — and synced — before its change feed reaches any listener
// or its DDL notification fires, with delivery always under the write
// sequencer. A batch is therefore atomic on disk exactly when it is
// atomic in published views, and an append failure turns into an error on
// the write call (with the in-memory effects rolled back) rather than a
// silent loss of durability. A log that also implements GroupCommitLog
// (internal/wal.Store does) gets the async commit pipeline: the fsync
// wait moves off the sequencer so concurrent committers share group
// fsyncs; a plain CommitLog keeps the inline synchronous path.
type CommitLog interface {
	// AppendBatch durably logs one committed atomic batch: the coalesced
	// change feed of a group commit or of a single DML statement.
	AppendBatch(feed []storage.TableChange) error
	// AppendDDL durably logs one schema statement as re-parseable SQL.
	AppendDDL(stmt string) error
}

// SetCommitLog attaches (or, with nil, detaches) the durability hook. It
// waits for in-flight writes and drains the async commit pipeline, so
// recovery can replay into the database and only then start logging new
// commits; detaching also stops the pipeline's commit-worker goroutine.
func (db *DB) SetCommitLog(l CommitLog) {
	db.lockExclusive()
	defer db.wseq.Unlock()
	db.clog = l
	if l == nil {
		db.stopCommitWorker()
	}
}

// AdoptTable registers a checkpoint-restored table and subscribes it to
// the change feed. Recovery-only: the caller guarantees no listener or
// commit log is attached yet, so adoption is silent.
func (db *DB) AdoptTable(t *storage.Table) error {
	db.lockExclusive()
	defer db.wseq.Unlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(t.Name())
	if _, ok := db.tables[key]; ok {
		return fmt.Errorf("engine: table %q already exists", t.Name())
	}
	t.Observe(func(ch storage.Change) { db.notifyData(key, ch) })
	db.tables[key] = t
	return nil
}

// createTableSQL renders the re-parseable DDL the commit log records for a
// table registration.
func createTableSQL(name string, s schema.Schema) string {
	var b strings.Builder
	b.WriteString("CREATE TABLE ")
	b.WriteString(name)
	b.WriteString(" (")
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteByte(' ')
		b.WriteString(typeName(c.Type))
	}
	b.WriteByte(')')
	return b.String()
}

// typeName maps a value kind to SQL type text schema.ParseType accepts.
func typeName(k value.Kind) string {
	if k == value.KindNull {
		return "INT" // untyped columns cannot arise from parsed DDL
	}
	return k.String()
}

// execLogged runs one DML statement in capture mode, durably logs the
// captured changes as a single atomic record, and only then delivers them
// to listeners. Partial effects of a failing statement are logged and
// delivered too — mirroring exactly what the in-memory tables now hold —
// but if the log itself fails, the statement's effects are rolled back and
// the write reports the durability error. The caller holds the write
// sequencer; execLogged releases it (via commitRelease) so the fsync wait
// overlaps with other committers.
func (db *DB) execLogged(run func(feed *[]storage.TableChange) (int, error)) (int, error) {
	var feed []storage.TableChange
	n, runErr := run(&feed)
	if len(feed) == 0 {
		db.wseq.Unlock()
		return n, runErr
	}
	if err := db.commitRelease(feed, feed); err != nil {
		// Surface both failures: the durability error (nothing committed)
		// and, when the statement itself also failed, its own error.
		return 0, errors.Join(err, runErr)
	}
	return n, runErr
}

// commitLogged is the shared commit point of every logged write path:
// durably append the coalesced changes (when a log is attached), then —
// and only then — deliver them to listeners. On append failure the raw
// feed is rolled back (inserted rows re-tombstoned, deleted rows
// resurrected) so the in-memory state matches the log: the commit never
// happened anywhere. The caller holds the write sequencer.
func (db *DB) commitLogged(feed, coalesced []storage.TableChange) error {
	if db.clog != nil && len(coalesced) > 0 {
		if err := db.clog.AppendBatch(coalesced); err != nil {
			if rbErr := db.rollbackFrozen(feed); rbErr != nil {
				db.notifySchema("commit log rollback failure")
				err = fmt.Errorf("%w (rollback incomplete, derived state rebuilt: %v)", err, rbErr)
			}
			return fmt.Errorf("engine: commit log append: %w", err)
		}
	}
	db.notifyBatch(coalesced)
	return nil
}

// logDDL appends a schema statement to the commit log if one is attached.
func (db *DB) logDDL(stmt string) error {
	if db.clog == nil {
		return nil
	}
	if err := db.clog.AppendDDL(stmt); err != nil {
		return fmt.Errorf("engine: commit log append: %w", err)
	}
	return nil
}
