package engine

// mustExec runs a setup statement, panicking on failure — the test-local
// replacement for the removed DB.MustExec (library code now always
// returns errors instead of crashing the process).
func mustExec(db *DB, sql string) {
	if _, _, err := db.Exec(sql); err != nil {
		panic(err)
	}
}
