package engine

import (
	"errors"
	"fmt"
	"testing"

	"hippo/internal/storage"
)

// feedRecorder captures the change feed a listener observes.
type feedRecorder struct {
	data   []storage.TableChange
	schema []string
}

func (r *feedRecorder) DataChanged(table string, ch storage.Change) {
	r.data = append(r.data, storage.TableChange{Table: table, Change: ch})
}

func (r *feedRecorder) SchemaChanged(reason string) { r.schema = append(r.schema, reason) }

func newBatchDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	mustExec(db, "CREATE TABLE kv (k INT, v INT)")
	mustExec(db, "INSERT INTO kv VALUES (1, 10), (2, 20)")
	return db
}

func TestExecBatchSequentialSemantics(t *testing.T) {
	db := newBatchDB(t)
	// The DELETE must see the row the batch itself inserted.
	affected, err := db.ExecBatch([]string{
		"INSERT INTO kv VALUES (3, 30)",
		"DELETE FROM kv WHERE k = 3",
		"INSERT INTO kv VALUES (4, 40)",
	})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(affected) != "[1 1 1]" {
		t.Fatalf("affected = %v", affected)
	}
	res, err := db.Query("SELECT * FROM kv")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows after batch = %d, want 3", len(res.Rows))
	}
}

func TestExecBatchCoalescesFeed(t *testing.T) {
	db := newBatchDB(t)
	rec := &feedRecorder{}
	db.AddListener(rec)
	defer db.RemoveListener(rec)
	if _, err := db.ExecBatch([]string{
		"INSERT INTO kv VALUES (5, 50)", // transient: deleted two statements later
		"INSERT INTO kv VALUES (6, 60)",
		"DELETE FROM kv WHERE k = 5",
		"DELETE FROM kv WHERE k = 1", // pre-batch row: must survive coalescing
	}); err != nil {
		t.Fatal(err)
	}
	if len(rec.data) != 2 {
		t.Fatalf("coalesced feed has %d events, want 2: %v", len(rec.data), rec.data)
	}
	if rec.data[0].Change.Kind != storage.ChangeInsert || rec.data[0].Table != "kv" {
		t.Fatalf("first surviving event = %+v, want insert of (6,60)", rec.data[0])
	}
	if rec.data[1].Change.Kind != storage.ChangeDelete {
		t.Fatalf("second surviving event = %+v, want delete of (1,10)", rec.data[1])
	}
}

func TestExecBatchRollsBackOnError(t *testing.T) {
	db := newBatchDB(t)
	rec := &feedRecorder{}
	db.AddListener(rec)
	defer db.RemoveListener(rec)
	before, err := db.Query("SELECT * FROM kv")
	if err != nil {
		t.Fatal(err)
	}
	_, err = db.ExecBatch([]string{
		"INSERT INTO kv VALUES (7, 70)",
		"DELETE FROM kv WHERE k = 2",
		"INSERT INTO kv VALUES (8)", // arity error: fails mid-batch
	})
	var be *BatchError
	if !errors.As(err, &be) || be.Index != 2 {
		t.Fatalf("err = %v, want *BatchError at statement 2", err)
	}
	if len(rec.data) != 0 {
		t.Fatalf("rolled-back batch leaked %d feed events: %v", len(rec.data), rec.data)
	}
	after, err := db.Query("SELECT * FROM kv")
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Rows) != len(before.Rows) {
		t.Fatalf("rows after failed batch = %d, want %d", len(after.Rows), len(before.Rows))
	}
	// The deleted-then-resurrected row is intact and re-indexed.
	res, err := db.Query("SELECT * FROM kv WHERE k = 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("row k=2 after rollback: %d rows", len(res.Rows))
	}
}

func TestExecBatchRejectsNonDML(t *testing.T) {
	db := newBatchDB(t)
	for i, sqls := range [][]string{
		{"INSERT INTO kv VALUES (9, 90)", "CREATE TABLE other (a INT)"},
		{"SELECT * FROM kv"},
		{"DROP TABLE kv"},
	} {
		_, err := db.ExecBatch(sqls)
		var be *BatchError
		if !errors.As(err, &be) {
			t.Fatalf("case %d: err = %v, want *BatchError", i, err)
		}
	}
	// Nothing from the rejected batches applied.
	res, err := db.Query("SELECT * FROM kv WHERE k = 9")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatal("statement from a rejected batch was applied")
	}
}

func TestExecBatchParseErrorAbortsEarly(t *testing.T) {
	db := newBatchDB(t)
	_, err := db.ExecBatch([]string{"INSERT INTO kv VALUES (9, 90)", "NOT SQL"})
	var be *BatchError
	if !errors.As(err, &be) || be.Index != 1 {
		t.Fatalf("err = %v, want *BatchError at statement 1", err)
	}
	res, err := db.Query("SELECT * FROM kv WHERE k = 9")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatal("statement before the parse error was applied")
	}
}
