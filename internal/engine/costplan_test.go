package engine

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"hippo/internal/ra"
	"hippo/internal/schema"
	"hippo/internal/sqlparse"
	"hippo/internal/value"
)

// leafNames collects the scan leaves of a plan in left-to-right order —
// for a left-deep join tree this is the planner-chosen join order.
func leafNames(n ra.Node) []string {
	var names []string
	ra.Walk(n, func(n ra.Node) {
		switch t := n.(type) {
		case *ra.Scan:
			names = append(names, t.Table.Name())
		case *ra.IndexLookup:
			names = append(names, t.Table.Name())
		case *opaqueNode:
			names = append(names, "opaque")
		}
	})
	return names
}

// TestCostPlanTurnsProductIntoJoin: a comma join with a cross equality is
// written as Select over Product; the planner must execute it as a hash
// join with the single-table conjunct pushed onto its scan.
func TestCostPlanTurnsProductIntoJoin(t *testing.T) {
	db := newEmpDB(t)
	plan := optimizedPlan(t, db,
		"SELECT * FROM emp e, dept d WHERE e.dept = d.id AND e.salary > 150")
	s := ra.Format(plan)
	hasJoin, hasProduct, pushed := false, false, false
	ra.Walk(plan, func(n ra.Node) {
		switch t := n.(type) {
		case *ra.Join:
			hasJoin = true
		case *ra.Product:
			hasProduct = true
		case *ra.Select:
			if _, ok := t.Child.(*ra.Scan); ok {
				pushed = true
			}
		}
	})
	if !hasJoin || hasProduct {
		t.Fatalf("expected a Join and no Product:\n%s", s)
	}
	if !pushed {
		t.Fatalf("expected the salary conjunct pushed onto its scan:\n%s", s)
	}
}

// threeTableDB builds big(60) ⋈ mid(20) ⋈ small(5) with a shared join
// column so the planner has an unambiguous smallest-first order.
func threeTableDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	for _, tc := range []struct {
		name string
		rows int
	}{{"big", 60}, {"mid", 20}, {"small", 5}} {
		mustExec(db, fmt.Sprintf("CREATE TABLE %s (x INT, tag TEXT)", tc.name))
		vals := make([]string, tc.rows)
		for i := 0; i < tc.rows; i++ {
			vals[i] = fmt.Sprintf("(%d, '%s%d')", i%5, tc.name, i)
		}
		mustExec(db, fmt.Sprintf("INSERT INTO %s VALUES %s", tc.name, strings.Join(vals, ", ")))
	}
	return db
}

const threeTableQuery = "SELECT * FROM big b, mid m, small s WHERE b.x = m.x AND m.x = s.x"

// TestCostPlanSmallestFirstOrder: with statistics available the cluster
// is joined smallest-estimated-input-first along equality edges.
func TestCostPlanSmallestFirstOrder(t *testing.T) {
	db := threeTableDB(t)
	plan := optimizedPlan(t, db, threeTableQuery)
	got := leafNames(plan)
	want := []string{"small", "mid", "big"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("join order = %v, want %v\n%s", got, want, ra.Format(plan))
	}
	// Reordering must stay invisible: a projection restores the written
	// column order, so planned and unplanned runs agree row for row.
	assertSameRows(t, db, threeTableQuery)
}

// assertSameRows checks RunPlan (cost-planned) against RunPlanRaw (no
// planning) as multisets of rendered rows — exact column order included,
// which pins the permutation-restoring projection.
func assertSameRows(t *testing.T, db *DB, sql string) {
	t.Helper()
	plan := plannedQuery(t, db, sql)
	raw, err := db.RunPlanRaw(plan)
	if err != nil {
		t.Fatalf("%q raw: %v", sql, err)
	}
	opt, err := db.RunPlan(plan)
	if err != nil {
		t.Fatalf("%q planned: %v", sql, err)
	}
	rawRows := renderSorted(raw.Rows)
	optRows := renderSorted(opt.Rows)
	if strings.Join(rawRows, "\n") != strings.Join(optRows, "\n") {
		t.Fatalf("%q: planned rows diverge\nraw: %v\nplanned: %v", sql, rawRows, optRows)
	}
}

func renderSorted(rows []value.Tuple) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = value.TupleString(r)
	}
	sort.Strings(out)
	return out
}

func plannedQuery(t *testing.T, db *DB, sql string) ra.Node {
	t.Helper()
	q, err := sqlparse.ParseQuery(sql)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := db.PlanQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestCostPlanResultsMatchUnplanned: randomized-ish sweep of cluster
// shapes — every query must produce identical rows with and without the
// cost planner.
func TestCostPlanResultsMatchUnplanned(t *testing.T) {
	db := threeTableDB(t)
	queries := []string{
		threeTableQuery,
		"SELECT * FROM big b, small s WHERE b.x = s.x",
		"SELECT * FROM big b, mid m, small s WHERE b.x = m.x AND m.x = s.x AND b.x > 1",
		"SELECT s.tag, b.tag FROM big b, mid m, small s WHERE b.x = m.x AND m.x = s.x AND s.x = 2",
		// Disconnected input: small joins nothing, so it lands last as a product.
		"SELECT * FROM big b, mid m, small s WHERE b.x = m.x",
		// Constant-only conjunct becomes a top-level residual.
		"SELECT * FROM big b, small s WHERE b.x = s.x AND 1 < 2",
		// Single table: the cluster is trivial.
		"SELECT * FROM small WHERE x > 1",
	}
	for _, sql := range queries {
		assertSameRows(t, db, sql)
	}
}

// opaqueNode hides its child from the estimator: EstimateCard does not
// know the shape and returns -1, forcing the planner's deterministic
// written-order fallback.
type opaqueNode struct{ Child ra.Node }

func (o *opaqueNode) Schema() schema.Schema { return o.Child.Schema() }
func (o *opaqueNode) Children() []ra.Node   { return nil } // leaf to Walk: hides the inner scan
func (o *opaqueNode) String() string        { return "Opaque" }
func (o *opaqueNode) Open(ctx context.Context) (ra.Iterator, error) {
	return o.Child.Open(ctx)
}

// TestCostPlanFallbackWithoutEstimates: when any cluster input has no
// cardinality estimate the written order is kept — planning must be
// deterministic with or without statistics.
func TestCostPlanFallbackWithoutEstimates(t *testing.T) {
	db := threeTableDB(t)
	big, _ := db.Table("big")
	mid, _ := db.Table("mid")
	small, _ := db.Table("small")
	opaque := &opaqueNode{Child: &ra.Scan{Table: small, Alias: "s"}}
	if ra.EstimateCard(opaque) != -1 {
		t.Fatal("opaque node should have no estimate")
	}
	// big ⋈ mid ⋈ opaque(small), written biggest-first: with estimates the
	// planner would put small first, but the opaque input disables reorder.
	cluster := &ra.Select{
		Child: &ra.Product{
			L: &ra.Product{L: &ra.Scan{Table: big, Alias: "b"}, R: &ra.Scan{Table: mid, Alias: "m"}},
			R: opaque,
		},
		Pred: ra.Conjoin(
			ra.Cmp{Op: ra.EQ, L: ra.Col{Index: 0}, R: ra.Col{Index: 2}}, // b.x = m.x
			ra.Cmp{Op: ra.EQ, L: ra.Col{Index: 2}, R: ra.Col{Index: 4}}, // m.x = s.x
		),
	}
	phys := optimize(cluster)
	got := leafNames(phys)
	want := []string{"big", "mid", "opaque"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("fallback order = %v, want written order %v\n%s", got, want, ra.Format(phys))
	}
	// Join formation still applies: the equality conjuncts become joins.
	hasProduct := false
	ra.Walk(phys, func(n ra.Node) {
		if _, ok := n.(*ra.Product); ok {
			hasProduct = true
		}
	})
	if hasProduct {
		t.Fatalf("fallback should still form joins from equality conjuncts:\n%s", ra.Format(phys))
	}
	// And execution matches the unplanned tree.
	rawRows, err := ra.Materialize(context.Background(), cluster)
	if err != nil {
		t.Fatal(err)
	}
	optRows, err := ra.Materialize(context.Background(), phys)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(renderSorted(rawRows), "\n") != strings.Join(renderSorted(optRows), "\n") {
		t.Fatalf("fallback rows diverge:\nraw %v\nplanned %v", renderSorted(rawRows), renderSorted(optRows))
	}
}
