package engine

import (
	"sort"

	"hippo/internal/ra"
)

// Cost-based physical planning over inner-join clusters. costPlan runs
// before access-path selection and rewrites every maximal cluster of
// Select/Join/Product nodes:
//
//  1. every conjunct referencing columns of a single input is pushed
//     below the joins onto that input;
//  2. cross-input conjuncts become join predicates, turning written
//     cartesian products with equality filters into hash joins;
//  3. inputs are joined greedily smallest-estimated-first, preferring
//     inputs connected to the already-joined set by an equality conjunct
//     (cross products are deferred to last);
//  4. a final projection restores the original column order, so the
//     rewrite is invisible to the plan's consumers.
//
// When any input's cardinality cannot be estimated the original input
// order is kept (the rewrite still applies pushdown and join formation),
// so planning is deterministic with or without statistics.

// costPlan rewrites n bottom-up, optimizing each join cluster.
func costPlan(n ra.Node) ra.Node {
	switch t := n.(type) {
	case *ra.Select, *ra.Join, *ra.Product:
		inputs, conjs := flattenCluster(n)
		if len(inputs) == 1 && len(conjs) == 0 {
			// Nothing clustered (e.g. bare Scan child): keep shape.
			return rebuildDefault(t)
		}
		return assembleCluster(inputs, conjs)
	case *ra.Project:
		return &ra.Project{Child: costPlan(t.Child), Exprs: t.Exprs, Names: t.Names, Distinct: t.Distinct}
	case *ra.SemiJoin:
		return &ra.SemiJoin{L: costPlan(t.L), R: costPlan(t.R), Pred: t.Pred}
	case *ra.AntiJoin:
		return &ra.AntiJoin{L: costPlan(t.L), R: costPlan(t.R), Pred: t.Pred}
	case *ra.Union:
		return &ra.Union{L: costPlan(t.L), R: costPlan(t.R)}
	case *ra.Diff:
		return &ra.Diff{L: costPlan(t.L), R: costPlan(t.R)}
	case *ra.Intersect:
		return &ra.Intersect{L: costPlan(t.L), R: costPlan(t.R)}
	case *ra.DistinctNode:
		return &ra.DistinctNode{Child: costPlan(t.Child)}
	case *ra.Sort:
		return &ra.Sort{Child: costPlan(t.Child), Keys: t.Keys}
	case *ra.Limit:
		return &ra.Limit{Child: costPlan(t.Child), N: t.N}
	default:
		return n
	}
}

// rebuildDefault recurses into a Select/Join/Product whose cluster was
// trivial, keeping its own shape.
func rebuildDefault(n ra.Node) ra.Node {
	switch t := n.(type) {
	case *ra.Select:
		return &ra.Select{Child: costPlan(t.Child), Pred: t.Pred}
	case *ra.Join:
		return &ra.Join{L: costPlan(t.L), R: costPlan(t.R), Pred: t.Pred}
	case *ra.Product:
		return &ra.Product{L: costPlan(t.L), R: costPlan(t.R)}
	default:
		return n
	}
}

// flattenCluster decomposes a maximal Select/Join/Product subtree into
// its leaf inputs (each recursively cost-planned, in original
// left-to-right order) and all predicate conjuncts, with column indexes
// relative to the concatenation of the inputs in that original order.
func flattenCluster(n ra.Node) (inputs []ra.Node, conjs []ra.Expr) {
	switch t := n.(type) {
	case *ra.Select:
		inputs, conjs = flattenCluster(t.Child)
		conjs = append(conjs, ra.Conjuncts(t.Pred)...)
		return inputs, conjs
	case *ra.Join:
		return flattenBinary(t.L, t.R, t.Pred)
	case *ra.Product:
		return flattenBinary(t.L, t.R, nil)
	default:
		return []ra.Node{costPlan(n)}, nil
	}
}

func flattenBinary(l, r ra.Node, pred ra.Expr) ([]ra.Node, []ra.Expr) {
	li, lc := flattenCluster(l)
	ri, rc := flattenCluster(r)
	leftArity := 0
	for _, in := range li {
		leftArity += in.Schema().Len()
	}
	conjs := lc
	for _, c := range rc {
		conjs = append(conjs, ra.ShiftColumns(c, leftArity))
	}
	if pred != nil {
		conjs = append(conjs, ra.Conjuncts(pred)...)
	}
	return append(li, ri...), conjs
}

// assembleCluster plans one flattened cluster back into a physical tree.
func assembleCluster(inputs []ra.Node, conjs []ra.Expr) ra.Node {
	offs := make([]int, len(inputs))
	arity := make([]int, len(inputs))
	total := 0
	for i, in := range inputs {
		offs[i] = total
		arity[i] = in.Schema().Len()
		total += arity[i]
	}
	inputOf := func(col int) int {
		for i := len(offs) - 1; i >= 0; i-- {
			if col >= offs[i] {
				return i
			}
		}
		return 0
	}

	// Partition conjuncts: single-input ones are pushed onto their input,
	// constant ones become a top-level residual, the rest join inputs.
	perInput := make([][]ra.Expr, len(inputs))
	var joinConjs []ra.Expr
	var constConjs []ra.Expr
	for _, c := range conjs {
		cols := ra.ColumnsUsed(c)
		switch {
		case len(cols) == 0:
			constConjs = append(constConjs, c)
		case allSameInput(cols, inputOf):
			i := inputOf(cols[0])
			off := offs[i]
			perInput[i] = append(perInput[i], ra.MapColumns(c, func(x int) int { return x - off }))
		default:
			joinConjs = append(joinConjs, c)
		}
	}
	for i, preds := range perInput {
		if p := ra.Conjoin(preds...); p != nil {
			inputs[i] = &ra.Select{Child: inputs[i], Pred: p}
		}
	}

	order := joinOrder(inputs, joinConjs, inputOf)

	// Build the left-deep tree in the chosen order, remapping predicate
	// columns as inputs land at their new offsets.
	newPos := make([]int, total) // original global index -> new global index
	for i := range newPos {
		newPos[i] = -1
	}
	attached := make([]bool, len(joinConjs))
	placed := make([]bool, len(inputs))
	var tree ra.Node
	newTotal := 0
	for _, idx := range order {
		for c := 0; c < arity[idx]; c++ {
			newPos[offs[idx]+c] = newTotal + c
		}
		newTotal += arity[idx]
		placed[idx] = true
		if tree == nil {
			tree = inputs[idx]
			continue
		}
		var preds []ra.Expr
		for ci, c := range joinConjs {
			if attached[ci] || !allPlaced(ra.ColumnsUsed(c), inputOf, placed) {
				continue
			}
			attached[ci] = true
			preds = append(preds, ra.MapColumns(c, func(x int) int { return newPos[x] }))
		}
		if p := ra.Conjoin(preds...); p != nil {
			tree = &ra.Join{L: tree, R: inputs[idx], Pred: p}
		} else {
			tree = &ra.Product{L: tree, R: inputs[idx]}
		}
	}
	if p := ra.Conjoin(constConjs...); p != nil {
		tree = &ra.Select{Child: tree, Pred: p}
	}

	// Restore the original column order when the join order changed it.
	identity := true
	for i, p := range newPos {
		if p != i {
			identity = false
			break
		}
	}
	if !identity {
		exprs := make([]ra.Expr, total)
		for i := range exprs {
			exprs[i] = ra.Col{Index: newPos[i]}
		}
		tree = &ra.Project{Child: tree, Exprs: exprs}
	}
	return tree
}

// joinOrder picks the input order: greedy smallest-estimated-first among
// inputs connected by an equality conjunct to the joined set, deferring
// cross products. Missing estimates keep the written order.
func joinOrder(inputs []ra.Node, joinConjs []ra.Expr, inputOf func(int) int) []int {
	n := len(inputs)
	order := make([]int, 0, n)
	if n <= 2 {
		// Nothing to reorder at the cluster level (build-side choice
		// inside Join.Open handles two-input asymmetry).
		for i := 0; i < n; i++ {
			order = append(order, i)
		}
		return order
	}
	est := make([]int64, n)
	for i, in := range inputs {
		est[i] = ra.EstimateCard(in)
		if est[i] < 0 {
			for j := 0; j < n; j++ {
				order = append(order, j)
			}
			return order
		}
	}
	// connected[i][j]: an equality conjunct links inputs i and j.
	connected := make([][]bool, n)
	for i := range connected {
		connected[i] = make([]bool, n)
	}
	for _, c := range joinConjs {
		cmp, ok := c.(ra.Cmp)
		if !ok || cmp.Op != ra.EQ {
			continue
		}
		cols := ra.ColumnsUsed(c)
		ins := map[int]bool{}
		for _, col := range cols {
			ins[inputOf(col)] = true
		}
		list := make([]int, 0, len(ins))
		for i := range ins {
			list = append(list, i)
		}
		sort.Ints(list)
		for a := 0; a < len(list); a++ {
			for b := a + 1; b < len(list); b++ {
				connected[list[a]][list[b]] = true
				connected[list[b]][list[a]] = true
			}
		}
	}
	used := make([]bool, n)
	pick := func(candidates func(int) bool) int {
		best := -1
		for i := 0; i < n; i++ {
			if used[i] || !candidates(i) {
				continue
			}
			if best < 0 || est[i] < est[best] {
				best = i
			}
		}
		return best
	}
	first := pick(func(int) bool { return true })
	used[first] = true
	order = append(order, first)
	for len(order) < n {
		next := pick(func(i int) bool {
			for _, o := range order {
				if connected[o][i] {
					return true
				}
			}
			return false
		})
		if next < 0 {
			next = pick(func(int) bool { return true })
		}
		used[next] = true
		order = append(order, next)
	}
	return order
}

func allSameInput(cols []int, inputOf func(int) int) bool {
	first := inputOf(cols[0])
	for _, c := range cols[1:] {
		if inputOf(c) != first {
			return false
		}
	}
	return true
}

func allPlaced(cols []int, inputOf func(int) int, placed []bool) bool {
	for _, c := range cols {
		if !placed[inputOf(c)] {
			return false
		}
	}
	return true
}
