package engine

import (
	"sort"
	"strings"
	"testing"

	"hippo/internal/sqlparse"
	"hippo/internal/storage"
	"hippo/internal/value"
)

// newEmpDB builds the canonical test database: employees with departments.
func newEmpDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	mustExec(db, "CREATE TABLE emp (id INT, name TEXT, dept INT, salary FLOAT)")
	mustExec(db, "CREATE TABLE dept (id INT, dname TEXT)")
	mustExec(db, `INSERT INTO emp VALUES
		(1, 'ann', 10, 100.0),
		(2, 'bob', 10, 200.0),
		(3, 'cat', 20, 300.0),
		(4, 'dan', 30, 400.0)`)
	mustExec(db, "INSERT INTO dept VALUES (10, 'eng'), (20, 'ops')")
	return db
}

func queryStrings(t *testing.T, db *DB, sql string) []string {
	t.Helper()
	res, err := db.Query(sql)
	if err != nil {
		t.Fatalf("Query(%q): %v", sql, err)
	}
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = value.TupleString(r)
	}
	sort.Strings(out)
	return out
}

func wantRows(t *testing.T, got []string, want ...string) {
	t.Helper()
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("got %v\nwant %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v\nwant %v", got, want)
		}
	}
}

func TestCreateInsertSelect(t *testing.T) {
	db := newEmpDB(t)
	got := queryStrings(t, db, "SELECT name FROM emp WHERE salary > 150")
	wantRows(t, got, "('bob')", "('cat')", "('dan')")
}

func TestSelectStar(t *testing.T) {
	db := newEmpDB(t)
	res, err := db.Query("SELECT * FROM dept")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Schema.Len() != 2 {
		t.Fatalf("rows=%d schema=%v", len(res.Rows), res.Schema)
	}
	cols := res.Columns()
	if cols[0] != "id" || cols[1] != "dname" {
		t.Errorf("columns = %v", cols)
	}
}

func TestProjectionExpressionsAndAliases(t *testing.T) {
	db := newEmpDB(t)
	res, err := db.Query("SELECT e.name AS who, e.salary * 2 AS double FROM emp e WHERE e.id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema.Columns[0].Name != "who" || res.Schema.Columns[1].Name != "double" {
		t.Errorf("schema = %v", res.Schema)
	}
	if len(res.Rows) != 1 || res.Rows[0][1] != value.Float(200) {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestImplicitAndExplicitJoin(t *testing.T) {
	db := newEmpDB(t)
	implicit := queryStrings(t, db,
		"SELECT e.name, d.dname FROM emp e, dept d WHERE e.dept = d.id")
	explicit := queryStrings(t, db,
		"SELECT e.name, d.dname FROM emp e JOIN dept d ON e.dept = d.id")
	wantRows(t, implicit, "('ann', 'eng')", "('bob', 'eng')", "('cat', 'ops')")
	wantRows(t, explicit, "('ann', 'eng')", "('bob', 'eng')", "('cat', 'ops')")
}

func TestSelfJoinRequiresAliases(t *testing.T) {
	db := newEmpDB(t)
	got := queryStrings(t, db,
		"SELECT a.id, b.id FROM emp a, emp b WHERE a.dept = b.dept AND a.id < b.id")
	wantRows(t, got, "(1, 2)")
	if _, err := db.Query("SELECT * FROM emp, emp"); err == nil {
		t.Error("duplicate table without alias should error")
	}
}

func TestSetOperations(t *testing.T) {
	db := newEmpDB(t)
	got := queryStrings(t, db,
		"SELECT dept FROM emp WHERE salary < 250 UNION SELECT id FROM dept")
	wantRows(t, got, "(10)", "(20)")
	got = queryStrings(t, db,
		"SELECT dept FROM emp EXCEPT SELECT id FROM dept")
	wantRows(t, got, "(30)")
	got = queryStrings(t, db,
		"SELECT dept FROM emp INTERSECT SELECT id FROM dept")
	wantRows(t, got, "(10)", "(20)")
	if _, err := db.Query("SELECT id, name FROM emp UNION SELECT id FROM dept"); err == nil {
		t.Error("arity mismatch in UNION should error")
	}
}

func TestDistinct(t *testing.T) {
	db := newEmpDB(t)
	got := queryStrings(t, db, "SELECT DISTINCT dept FROM emp")
	wantRows(t, got, "(10)", "(20)", "(30)")
	got = queryStrings(t, db, "SELECT DISTINCT * FROM dept")
	if len(got) != 2 {
		t.Errorf("distinct * = %v", got)
	}
}

func TestExistsSubquery(t *testing.T) {
	db := newEmpDB(t)
	got := queryStrings(t, db,
		"SELECT name FROM emp e WHERE EXISTS (SELECT * FROM dept d WHERE d.id = e.dept)")
	wantRows(t, got, "('ann')", "('bob')", "('cat')")
	got = queryStrings(t, db,
		"SELECT name FROM emp e WHERE NOT EXISTS (SELECT * FROM dept d WHERE d.id = e.dept)")
	wantRows(t, got, "('dan')")
	// Combined with plain conjuncts.
	got = queryStrings(t, db,
		"SELECT name FROM emp e WHERE e.salary > 150 AND EXISTS (SELECT * FROM dept d WHERE d.id = e.dept)")
	wantRows(t, got, "('bob')", "('cat')")
}

func TestInSubquery(t *testing.T) {
	db := newEmpDB(t)
	got := queryStrings(t, db,
		"SELECT name FROM emp WHERE dept IN (SELECT id FROM dept)")
	wantRows(t, got, "('ann')", "('bob')", "('cat')")
	got = queryStrings(t, db,
		"SELECT name FROM emp WHERE dept NOT IN (SELECT id FROM dept)")
	wantRows(t, got, "('dan')")
	if _, err := db.Query("SELECT name FROM emp WHERE dept IN (SELECT id, dname FROM dept)"); err == nil {
		t.Error("multi-column IN should error")
	}
}

func TestSubqueryRestrictions(t *testing.T) {
	db := newEmpDB(t)
	bad := []string{
		// Subquery under OR.
		"SELECT * FROM emp e WHERE e.id = 1 OR EXISTS (SELECT * FROM dept d WHERE d.id = e.dept)",
		// Nested subquery.
		"SELECT * FROM emp e WHERE EXISTS (SELECT * FROM dept d WHERE EXISTS (SELECT * FROM emp x WHERE x.id = 1))",
		// Set op inside subquery.
		"SELECT * FROM emp e WHERE EXISTS (SELECT id FROM dept UNION SELECT id FROM dept)",
	}
	for _, q := range bad {
		if _, err := db.Query(q); err == nil {
			t.Errorf("expected error for %q", q)
		}
	}
}

func TestDelete(t *testing.T) {
	db := newEmpDB(t)
	_, n, err := db.Exec("DELETE FROM emp WHERE dept = 10")
	if err != nil || n != 2 {
		t.Fatalf("delete n=%d err=%v", n, err)
	}
	got := queryStrings(t, db, "SELECT id FROM emp")
	wantRows(t, got, "(3)", "(4)")
	_, n, err = db.Exec("DELETE FROM emp")
	if err != nil || n != 2 {
		t.Fatalf("delete all n=%d err=%v", n, err)
	}
	if res, _ := db.Query("SELECT * FROM emp"); len(res.Rows) != 0 {
		t.Error("table should be empty")
	}
}

func TestInsertColumnList(t *testing.T) {
	db := New()
	mustExec(db, "CREATE TABLE t (a INT, b TEXT, c BOOL)")
	_, n, err := db.Exec("INSERT INTO t (c, a) VALUES (TRUE, 7)")
	if err != nil || n != 1 {
		t.Fatalf("insert n=%d err=%v", n, err)
	}
	res, _ := db.Query("SELECT * FROM t")
	row := res.Rows[0]
	if row[0] != value.Int(7) || !row[1].IsNull() || row[2] != value.Bool(true) {
		t.Errorf("row = %v", row)
	}
	if _, _, err := db.Exec("INSERT INTO t (a) VALUES (1, 2)"); err == nil {
		t.Error("value count mismatch should error")
	}
	if _, _, err := db.Exec("INSERT INTO t (zzz) VALUES (1)"); err == nil {
		t.Error("unknown column should error")
	}
}

func TestDDLErrors(t *testing.T) {
	db := New()
	mustExec(db, "CREATE TABLE t (a INT)")
	if _, _, err := db.Exec("CREATE TABLE t (a INT)"); err == nil {
		t.Error("duplicate create should error")
	}
	if _, _, err := db.Exec("DROP TABLE missing"); err == nil {
		t.Error("drop missing should error")
	}
	mustExec(db, "DROP TABLE t")
	if _, err := db.Table("t"); err == nil {
		t.Error("dropped table still visible")
	}
	if _, err := db.Query("SELECT * FROM missing"); err == nil {
		t.Error("query on missing table should error")
	}
}

func TestTableNamesAndQueryCount(t *testing.T) {
	db := newEmpDB(t)
	names := db.TableNames()
	if len(names) != 2 || names[0] != "dept" || names[1] != "emp" {
		t.Errorf("TableNames = %v", names)
	}
	before := db.QueryCount()
	db.Query("SELECT * FROM emp")
	db.Query("SELECT * FROM dept")
	if db.QueryCount()-before != 2 {
		t.Errorf("QueryCount delta = %d", db.QueryCount()-before)
	}
}

func TestCaseInsensitiveNames(t *testing.T) {
	db := New()
	mustExec(db, "CREATE TABLE Person (Id INT, Name TEXT)")
	mustExec(db, "INSERT INTO person VALUES (1, 'x')")
	got := queryStrings(t, db, "SELECT PERSON.ID FROM PERSON WHERE person.name = 'x'")
	wantRows(t, got, "(1)")
}

func TestComparisonWithNulls(t *testing.T) {
	db := New()
	mustExec(db, "CREATE TABLE t (a INT)")
	mustExec(db, "INSERT INTO t VALUES (1), (NULL), (3)")
	got := queryStrings(t, db, "SELECT a FROM t WHERE a > 0")
	wantRows(t, got, "(1)", "(3)") // NULL row filtered out
	got = queryStrings(t, db, "SELECT a FROM t WHERE a IS NULL")
	wantRows(t, got, "(NULL)")
	got = queryStrings(t, db, "SELECT a FROM t WHERE a IS NOT NULL")
	wantRows(t, got, "(1)", "(3)")
}

func TestArithmeticInQueries(t *testing.T) {
	db := New()
	mustExec(db, "CREATE TABLE n (x INT)")
	mustExec(db, "INSERT INTO n VALUES (10), (7)")
	got := queryStrings(t, db, "SELECT x + 1, x - 1, x * 2, x / 2, x % 3 FROM n WHERE x = 10")
	wantRows(t, got, "(11, 9, 20, 5, 1)")
	if _, err := db.Query("SELECT x / 0 FROM n"); err == nil {
		t.Error("division by zero should surface an error")
	}
}

func TestExecErrors(t *testing.T) {
	db := New()
	if _, _, err := db.Exec("NOT SQL AT ALL"); err == nil {
		t.Error("parse error should propagate")
	}
	if _, _, err := db.Exec("SELECT * FROM missing"); err == nil {
		t.Error("query on a missing table should surface an error")
	}
}

func TestPlanQueryExposed(t *testing.T) {
	db := newEmpDB(t)
	q, err := parseQueryHelper("SELECT name FROM emp WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := db.PlanQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.RunPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != value.Text("ann") {
		t.Errorf("rows = %v", res.Rows)
	}
	if !strings.Contains(strings.ToLower(res.Schema.Columns[0].Name), "name") {
		t.Errorf("schema = %v", res.Schema)
	}
}

func parseQueryHelper(sql string) (*sqlparse.Query, error) {
	return sqlparse.ParseQuery(sql)
}

func TestOrderByAndLimit(t *testing.T) {
	db := newEmpDB(t)
	res, err := db.Query("SELECT name, salary FROM emp ORDER BY salary DESC LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0] != value.Text("dan") || res.Rows[1][0] != value.Text("cat") {
		t.Errorf("rows = %v", res.Rows)
	}
	// ORDER BY output alias and multiple keys.
	res, err = db.Query("SELECT dept, id FROM emp ORDER BY dept ASC, id DESC")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][1] != value.Int(2) { // dept 10, larger id first
		t.Errorf("rows = %v", res.Rows)
	}
	// ORDER BY across a set operation applies to the combined result.
	res, err = db.Query("SELECT id FROM dept UNION SELECT dept FROM emp ORDER BY id DESC LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != value.Int(30) {
		t.Errorf("rows = %v", res.Rows)
	}
	// Errors.
	if _, err := db.Query("SELECT * FROM emp ORDER BY zzz"); err == nil {
		t.Error("unknown order key should fail")
	}
	if _, err := db.Query("SELECT * FROM emp LIMIT 1.5"); err == nil {
		t.Error("fractional limit should fail")
	}
	if _, err := db.Query("SELECT * FROM emp e WHERE EXISTS (SELECT * FROM dept d WHERE d.id = e.dept ORDER BY d.id)"); err == nil {
		t.Error("ORDER BY in subquery should fail")
	}
}

// listenerLog records the change feed for listener tests.
type listenerLog struct {
	data   []string
	schema []string
}

func (l *listenerLog) DataChanged(table string, ch storage.Change) {
	l.data = append(l.data, table+":"+ch.Kind.String())
}
func (l *listenerLog) SchemaChanged(reason string) { l.schema = append(l.schema, reason) }

func TestChangeFeedAddRemoveListener(t *testing.T) {
	db := New()
	log := &listenerLog{}
	db.AddListener(log)
	mustExec(db, "CREATE TABLE t (a INT)")
	mustExec(db, "INSERT INTO t VALUES (1), (2)")
	mustExec(db, "DELETE FROM t WHERE a = 1")
	if want := []string{"t:insert", "t:insert", "t:delete"}; len(log.data) != 3 ||
		log.data[0] != want[0] || log.data[1] != want[1] || log.data[2] != want[2] {
		t.Fatalf("data feed = %v, want %v", log.data, want)
	}
	if len(log.schema) != 1 || log.schema[0] != "create table t" {
		t.Fatalf("schema feed = %v", log.schema)
	}
	db.RemoveListener(log)
	mustExec(db, "INSERT INTO t VALUES (3)")
	mustExec(db, "CREATE TABLE u (b INT)")
	if len(log.data) != 3 || len(log.schema) != 1 {
		t.Fatalf("removed listener still notified: data=%v schema=%v", log.data, log.schema)
	}
}
