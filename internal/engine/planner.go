package engine

import (
	"fmt"
	"strings"

	"hippo/internal/ra"
	"hippo/internal/schema"
	"hippo/internal/sqlparse"
	"hippo/internal/storage"
)

// catalog resolves relation names for planning. Both the live database
// and an immutable Snapshot implement it, so the same planner binds plans
// to either.
type catalog interface {
	Relation(name string) (storage.Relation, error)
}

// PlanQuery translates a parsed query into a relational algebra plan bound
// to this database's live tables.
func (db *DB) PlanQuery(q *sqlparse.Query) (ra.Node, error) {
	return planQuery(db, q)
}

// planQuery translates a parsed query against any catalog.
func planQuery(cat catalog, q *sqlparse.Query) (ra.Node, error) {
	left, err := planSelect(cat, q.Left)
	if err != nil {
		return nil, err
	}
	node := left
	for _, tail := range q.Rest {
		right, err := planSelect(cat, tail.Right)
		if err != nil {
			return nil, err
		}
		switch tail.Op {
		case sqlparse.OpUnion:
			node = &ra.Union{L: node, R: right}
		case sqlparse.OpExcept:
			node = &ra.Diff{L: node, R: right}
		case sqlparse.OpIntersect:
			node = &ra.Intersect{L: node, R: right}
		}
		if err := schema.TypesCompatible(node.Children()[0].Schema(), right.Schema()); err != nil {
			return nil, fmt.Errorf("engine: %s: %v", tail.Op, err)
		}
	}
	if len(q.OrderBy) > 0 {
		keys := make([]ra.SortKey, len(q.OrderBy))
		for i, o := range q.OrderBy {
			e, err := planScalar(o.Expr, node.Schema())
			if err != nil {
				return nil, err
			}
			keys[i] = ra.SortKey{Expr: e, Desc: o.Desc}
		}
		node = &ra.Sort{Child: node, Keys: keys}
	}
	if q.Limit != nil {
		node = &ra.Limit{Child: node, N: *q.Limit}
	}
	return node, nil
}

// planSelect plans a single SELECT block.
func planSelect(cat catalog, s *sqlparse.SelectStmt) (ra.Node, error) {
	if len(s.From) == 0 {
		return nil, fmt.Errorf("engine: SELECT requires a FROM clause")
	}
	node, err := planFrom(cat, s.From[0])
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{strings.ToLower(s.From[0].Name()): true}
	checkDup := func(ref sqlparse.TableRef) error {
		name := strings.ToLower(ref.Name())
		if seen[name] {
			return fmt.Errorf("engine: duplicate table name/alias %q (add an alias)", ref.Name())
		}
		seen[name] = true
		return nil
	}
	for _, f := range s.From[1:] {
		if err := checkDup(f); err != nil {
			return nil, err
		}
		right, err := planFrom(cat, f)
		if err != nil {
			return nil, err
		}
		node = &ra.Product{L: node, R: right}
	}
	for _, j := range s.Joins {
		if err := checkDup(j.Ref); err != nil {
			return nil, err
		}
		right, err := planFrom(cat, j.Ref)
		if err != nil {
			return nil, err
		}
		combined := node.Schema().Concat(right.Schema())
		on, err := planScalar(j.On, combined)
		if err != nil {
			return nil, err
		}
		node = &ra.Join{L: node, R: right, Pred: on}
	}
	if s.Where != nil {
		node, err = planWhere(cat, node, s.Where)
		if err != nil {
			return nil, err
		}
	}
	return planProjection(node, s)
}

func planFrom(cat catalog, ref sqlparse.TableRef) (ra.Node, error) {
	t, err := cat.Relation(ref.Table)
	if err != nil {
		return nil, err
	}
	return &ra.Scan{Table: t, Alias: strings.ToLower(ref.Name())}, nil
}

// planWhere splits the predicate into plain conjuncts (one Select) and
// subquery conjuncts (Semi/AntiJoins). Subqueries are only supported as
// top-level conjuncts, matching what the query-rewriting baseline emits.
func planWhere(cat catalog, node ra.Node, where sqlparse.Expr) (ra.Node, error) {
	var plain []ra.Expr
	for _, c := range splitConjuncts(where) {
		switch e := c.(type) {
		case sqlparse.ExistsExpr:
			var err error
			node, err = planExists(cat, node, e.Sub, e.Negate, nil)
			if err != nil {
				return nil, err
			}
		case sqlparse.InExpr:
			var err error
			node, err = planExists(cat, node, e.Sub, e.Negate, e.E)
			if err != nil {
				return nil, err
			}
		default:
			if containsSubquery(c) {
				return nil, fmt.Errorf("engine: subqueries are only supported as top-level AND conjuncts in WHERE")
			}
			p, err := planScalar(c, node.Schema())
			if err != nil {
				return nil, err
			}
			plain = append(plain, p)
		}
	}
	if pred := ra.Conjoin(plain...); pred != nil {
		node = &ra.Select{Child: node, Pred: pred}
	}
	return node, nil
}

// planExists plans [NOT] EXISTS / [NOT] IN as a semi-/anti-join against the
// subquery's FROM product, with the subquery's WHERE (and the IN equality)
// as the join predicate, allowing correlation with outer columns.
func planExists(cat catalog, outer ra.Node, sub *sqlparse.Query, negate bool, inExpr sqlparse.Expr) (ra.Node, error) {
	if len(sub.Rest) > 0 {
		return nil, fmt.Errorf("engine: set operations inside EXISTS/IN subqueries are not supported")
	}
	if len(sub.OrderBy) > 0 || sub.Limit != nil {
		return nil, fmt.Errorf("engine: ORDER BY/LIMIT inside EXISTS/IN subqueries are not supported")
	}
	s := sub.Left
	if len(s.From) == 0 {
		return nil, fmt.Errorf("engine: subquery requires a FROM clause")
	}
	inner, err := planFrom(cat, s.From[0])
	if err != nil {
		return nil, err
	}
	for _, f := range s.From[1:] {
		right, err := planFrom(cat, f)
		if err != nil {
			return nil, err
		}
		inner = &ra.Product{L: inner, R: right}
	}
	if len(s.Joins) > 0 {
		return nil, fmt.Errorf("engine: JOIN inside EXISTS/IN subqueries is not supported")
	}
	combined := outer.Schema().Concat(inner.Schema())
	var preds []ra.Expr
	if s.Where != nil {
		if containsSubquery(s.Where) {
			return nil, fmt.Errorf("engine: nested subqueries are not supported")
		}
		p, err := planScalar(s.Where, combined)
		if err != nil {
			return nil, err
		}
		preds = append(preds, p)
	}
	if inExpr != nil {
		if len(s.Items) != 1 || s.Items[0].Star {
			return nil, fmt.Errorf("engine: IN subquery must select exactly one expression")
		}
		outerExpr, err := planScalar(inExpr, outer.Schema())
		if err != nil {
			return nil, err
		}
		// The subquery item is resolved against the inner schema, then
		// shifted past the outer columns.
		itemExpr, err := planScalar(s.Items[0].Expr, inner.Schema())
		if err != nil {
			return nil, err
		}
		preds = append(preds, ra.Cmp{
			Op: ra.EQ,
			L:  outerExpr,
			R:  ra.ShiftColumns(itemExpr, outer.Schema().Len()),
		})
	}
	pred := ra.Conjoin(preds...)
	if negate {
		return &ra.AntiJoin{L: outer, R: inner, Pred: pred}, nil
	}
	return &ra.SemiJoin{L: outer, R: inner, Pred: pred}, nil
}

// planProjection applies the SELECT list.
func planProjection(node ra.Node, s *sqlparse.SelectStmt) (ra.Node, error) {
	if len(s.Items) == 0 { // SELECT *
		if s.Distinct {
			return &ra.DistinctNode{Child: node}, nil
		}
		return node, nil
	}
	sch := node.Schema()
	var exprs []ra.Expr
	var names []string
	for _, item := range s.Items {
		if item.Star {
			for i, c := range sch.Columns {
				exprs = append(exprs, ra.Col{Index: i, Name: c.String()})
				names = append(names, c.Name)
			}
			continue
		}
		e, err := planScalar(item.Expr, sch)
		if err != nil {
			return nil, err
		}
		exprs = append(exprs, e)
		names = append(names, item.Alias)
	}
	return &ra.Project{Child: node, Exprs: exprs, Names: names, Distinct: s.Distinct}, nil
}

// splitConjuncts flattens top-level ANDs of a parsed expression.
func splitConjuncts(e sqlparse.Expr) []sqlparse.Expr {
	if b, ok := e.(sqlparse.BinExpr); ok && b.Op == "AND" {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []sqlparse.Expr{e}
}

// containsSubquery reports whether e contains an EXISTS or IN subquery.
func containsSubquery(e sqlparse.Expr) bool {
	switch t := e.(type) {
	case sqlparse.ExistsExpr, sqlparse.InExpr:
		return true
	case sqlparse.BinExpr:
		return containsSubquery(t.L) || containsSubquery(t.R)
	case sqlparse.NotExpr:
		return containsSubquery(t.E)
	case sqlparse.IsNullExpr:
		return containsSubquery(t.E)
	default:
		return false
	}
}

// planScalar translates a parsed scalar expression against a schema.
func planScalar(e sqlparse.Expr, sch schema.Schema) (ra.Expr, error) {
	switch t := e.(type) {
	case sqlparse.Lit:
		return ra.Const{V: t.V}, nil
	case sqlparse.ColRef:
		idx, err := sch.Resolve(t.Qualifier, t.Name)
		if err != nil {
			return nil, err
		}
		return ra.Col{Index: idx, Name: t.String()}, nil
	case sqlparse.NotExpr:
		inner, err := planScalar(t.E, sch)
		if err != nil {
			return nil, err
		}
		return ra.Not{E: inner}, nil
	case sqlparse.IsNullExpr:
		inner, err := planScalar(t.E, sch)
		if err != nil {
			return nil, err
		}
		return ra.IsNull{E: inner, Negate: t.Negate}, nil
	case sqlparse.BinExpr:
		l, err := planScalar(t.L, sch)
		if err != nil {
			return nil, err
		}
		r, err := planScalar(t.R, sch)
		if err != nil {
			return nil, err
		}
		switch t.Op {
		case "AND":
			return ra.And{L: l, R: r}, nil
		case "OR":
			return ra.Or{L: l, R: r}, nil
		case "=":
			return ra.Cmp{Op: ra.EQ, L: l, R: r}, nil
		case "<>":
			return ra.Cmp{Op: ra.NE, L: l, R: r}, nil
		case "<":
			return ra.Cmp{Op: ra.LT, L: l, R: r}, nil
		case "<=":
			return ra.Cmp{Op: ra.LE, L: l, R: r}, nil
		case ">":
			return ra.Cmp{Op: ra.GT, L: l, R: r}, nil
		case ">=":
			return ra.Cmp{Op: ra.GE, L: l, R: r}, nil
		case "+":
			return ra.Arith{Op: ra.Add, L: l, R: r}, nil
		case "-":
			return ra.Arith{Op: ra.Sub, L: l, R: r}, nil
		case "*":
			return ra.Arith{Op: ra.Mul, L: l, R: r}, nil
		case "/":
			return ra.Arith{Op: ra.Div, L: l, R: r}, nil
		case "%":
			return ra.Arith{Op: ra.Mod, L: l, R: r}, nil
		default:
			return nil, fmt.Errorf("engine: unknown operator %q", t.Op)
		}
	case sqlparse.ExistsExpr, sqlparse.InExpr:
		return nil, fmt.Errorf("engine: subquery not allowed in this position")
	default:
		return nil, fmt.Errorf("engine: unsupported expression %T", e)
	}
}

// PlanScalar translates a parsed scalar expression against a schema. It is
// the exported form of planScalar used by the constraint and conflict
// packages to bind denial-constraint conditions.
func PlanScalar(e sqlparse.Expr, sch schema.Schema) (ra.Expr, error) {
	return planScalar(e, sch)
}
