// Package engine implements the embedded RDBMS the Hippo system runs
// against. In the paper, Hippo is a frontend to PostgreSQL over JDBC; here
// the same role — evaluating SQL for envelope queries, membership checks,
// and the query-rewriting baseline — is played by this engine, which plans
// parsed SQL onto the relational algebra of internal/ra and executes it
// over internal/storage tables.
package engine

import (
	"context"
	"fmt"
	"slices"
	"strings"
	"sync"
	"sync/atomic"

	"hippo/internal/ra"
	"hippo/internal/schema"
	"hippo/internal/sqlparse"
	"hippo/internal/storage"
	"hippo/internal/value"
)

// ChangeListener receives the database's change feed: one DataChanged call
// per DML delta (insert or delete of a single row), and one SchemaChanged
// call per DDL statement. Listeners maintain derived state — the Hippo
// core subscribes to keep the conflict hypergraph current without
// rescanning tables.
type ChangeListener interface {
	// DataChanged reports a single-row delta on the named table, in
	// mutation order. The table's writer-sequencing lock is held during
	// delivery: the listener may read the table but must not insert into
	// or delete from it.
	DataChanged(table string, ch storage.Change)
	// SchemaChanged reports a structural change (CREATE/DROP TABLE) that
	// invalidates any table-shape-dependent derived state.
	SchemaChanged(reason string)
}

// BatchListener is an optional extension of ChangeListener. A listener
// that also implements it receives each committed batch's coalesced change
// feed as one DataBatch call instead of per-row DataChanged calls, so it
// can route the whole batch at once — the Hippo core feeds batches through
// the sharded parallel fold this way. Single-statement writes still arrive
// via DataChanged. The same delivery guarantees apply: the write sequencer
// is held, changes are in mutation order, and the listener may read but
// not write.
type BatchListener interface {
	ChangeListener
	DataBatch(changes []storage.TableChange)
}

// DB is an in-memory SQL database: a catalog of tables plus a planner and
// executor. It is safe for concurrent use by multiple readers and writers:
// all writers (DML and DDL issued through the engine) are serialized by a
// global write sequencer, which also lets FreezeWrites establish a
// consistent cross-table cut for snapshotting.
type DB struct {
	// wseq serializes every engine-issued write (DML and DDL) across all
	// tables, including its change-feed delivery. Holding it guarantees no
	// write is in flight anywhere, so a snapshot taken under it is a
	// consistent cut whose deltas have all been delivered.
	wseq    sync.Mutex
	mu      sync.RWMutex
	tables  map[string]*storage.Table
	queries atomic.Int64

	// clog, when attached, durably records every commit before its change
	// feed is delivered; guarded by wseq (see SetCommitLog).
	clog CommitLog

	// Async commit pipeline (see commit.go): commits enqueued under wseq,
	// resolved and delivered in order by a single worker goroutine.
	cmu       sync.Mutex
	ccond     *sync.Cond // signals queue growth, drain progress, and stop
	cqueue    []*pendingCommit
	cinflight int  // enqueued but not yet delivered and acked
	cworker   bool // worker goroutine running
	cstop     bool
	cdone     chan struct{}

	lmu       sync.RWMutex
	listeners []ChangeListener
}

// New creates an empty database.
func New() *DB {
	db := &DB{tables: make(map[string]*storage.Table)}
	db.ccond = sync.NewCond(&db.cmu)
	return db
}

// AddListener subscribes l to the change feed of every current and future
// table, plus schema-change notifications.
func (db *DB) AddListener(l ChangeListener) {
	db.lmu.Lock()
	db.listeners = append(db.listeners, l)
	db.lmu.Unlock()
}

// RemoveListener unsubscribes l from the change feed. Short-lived
// subscribers must call it so the database does not keep feeding (and
// retaining) them forever.
func (db *DB) RemoveListener(l ChangeListener) {
	db.lmu.Lock()
	defer db.lmu.Unlock()
	// Copy-on-write: notifyData iterates a snapshot of this slice outside
	// the lock, so never mutate it in place.
	out := make([]ChangeListener, 0, len(db.listeners))
	for _, x := range db.listeners {
		if x != l {
			out = append(out, x)
		}
	}
	db.listeners = out
}

func (db *DB) notifyData(table string, ch storage.Change) {
	db.lmu.RLock()
	ls := db.listeners
	db.lmu.RUnlock()
	for _, l := range ls {
		l.DataChanged(table, ch)
	}
}

// notifyBatch delivers a committed batch's coalesced change feed:
// listeners implementing BatchListener get the whole batch in one call,
// the rest get the per-change feed in mutation order.
func (db *DB) notifyBatch(changes []storage.TableChange) {
	db.lmu.RLock()
	ls := db.listeners
	db.lmu.RUnlock()
	for _, l := range ls {
		if bl, ok := l.(BatchListener); ok {
			bl.DataBatch(changes)
			continue
		}
		for _, tc := range changes {
			l.DataChanged(tc.Table, tc.Change)
		}
	}
}

func (db *DB) notifySchema(reason string) {
	db.lmu.RLock()
	ls := db.listeners
	db.lmu.RUnlock()
	for _, l := range ls {
		l.SchemaChanged(reason)
	}
}

// QueryCount returns the number of SELECT statements executed so far. The
// Hippo benchmarks use it to count membership queries issued by the naive
// prover.
func (db *DB) QueryCount() int64 { return db.queries.Load() }

// Table returns the named table.
func (db *DB) Table(name string) (*storage.Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("engine: no such table %q", name)
	}
	return t, nil
}

// Relation returns the named table as a storage.Relation, satisfying the
// planner's catalog interface (shared with Snapshot).
func (db *DB) Relation(name string) (storage.Relation, error) {
	return db.Table(name)
}

// FreezeWrites blocks every engine writer (DML and DDL) until the
// returned release function is called. While frozen, no write is in
// flight, the async commit pipeline is drained, and every completed
// write's change-feed delta has been delivered, so the caller can drain
// derived state and snapshot tables at one consistent cut. The Hippo
// core uses it when publishing a query view.
func (db *DB) FreezeWrites() (release func()) {
	db.lockExclusive()
	return db.wseq.Unlock
}

// TableNames returns the sorted names of all tables.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	slices.Sort(names)
	return names
}

// CreateTable registers a new table built from the given schema. With a
// commit log attached, the registration is durably logged before it is
// announced; a log failure unregisters the table and reports the error.
func (db *DB) CreateTable(name string, s schema.Schema) (*storage.Table, error) {
	// DDL is a pipeline barrier (lockExclusive): its log record and schema
	// notification must order after every data commit already enqueued.
	db.lockExclusive()
	defer db.wseq.Unlock()
	key := strings.ToLower(name)
	db.mu.RLock()
	_, exists := db.tables[key]
	db.mu.RUnlock()
	if exists {
		return nil, fmt.Errorf("engine: table %q already exists", name)
	}
	t := storage.NewTable(key, s)
	t.Observe(func(ch storage.Change) { db.notifyData(key, ch) })
	// Durable before visible: the DDL record must be on disk before any
	// reader can resolve the table — otherwise a crash (or append failure)
	// would retract a table queries already observed. The existence check
	// above cannot race: the write sequencer serializes all DDL.
	if err := db.logDDL(createTableSQL(key, t.Schema())); err != nil {
		return nil, err
	}
	db.mu.Lock()
	db.tables[key] = t
	db.mu.Unlock()
	db.notifySchema("create table " + key)
	return t, nil
}

// Result is a materialized query result.
type Result struct {
	Schema schema.Schema
	Rows   []value.Tuple
}

// Columns returns the output column names.
func (r *Result) Columns() []string {
	out := make([]string, r.Schema.Len())
	for i, c := range r.Schema.Columns {
		out[i] = c.Name
	}
	return out
}

// Exec parses and executes any statement. For SELECT it returns the result
// and affected = number of rows returned; for DML, affected counts changed
// rows and the result is nil.
func (db *DB) Exec(sql string) (*Result, int, error) {
	return db.ExecContext(context.Background(), sql)
}

// ExecContext is Exec honoring ctx: an expired context is reported before
// any work is dispatched, SELECT evaluation is cancellable row by row, and
// long INSERT/DELETE statements abort between rows (a statement that
// already mutated rows when the context fires still completes or fails as
// a whole — per-statement atomicity is not affected).
func (db *DB) ExecContext(ctx context.Context, sql string) (*Result, int, error) {
	st, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, 0, err
	}
	return db.ExecStmtContext(ctx, st)
}

// ExecStmt executes a parsed statement.
func (db *DB) ExecStmt(st sqlparse.Statement) (*Result, int, error) {
	return db.ExecStmtContext(context.Background(), st)
}

// ExecStmtContext executes a parsed statement under ctx (see ExecContext
// for the cancellation contract).
func (db *DB) ExecStmtContext(ctx context.Context, st sqlparse.Statement) (*Result, int, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	switch s := st.(type) {
	case *sqlparse.CreateTable:
		cols := make([]schema.Column, len(s.Columns))
		for i, c := range s.Columns {
			cols[i] = schema.Column{Name: c.Name, Type: c.Type}
		}
		if _, err := db.CreateTable(s.Name, schema.New(cols...)); err != nil {
			return nil, 0, err
		}
		return nil, 0, nil
	case *sqlparse.CreateIndex:
		// Resolve the table under the write sequencer: resolving it first
		// would let a concurrent DROP TABLE log its record ahead of this
		// statement's, leaving a dangling CREATE INDEX in the log that
		// recovery could never replay.
		db.lockExclusive()
		defer db.wseq.Unlock()
		t, err := db.Table(s.Table)
		if err != nil {
			return nil, 0, err
		}
		sch := t.Schema()
		cols := make([]int, len(s.Columns))
		for i, name := range s.Columns {
			idx, err := sch.Resolve("", name)
			if err != nil {
				return nil, 0, err
			}
			cols[i] = idx
		}
		if _, err := t.EnsureIndex(cols); err != nil {
			return nil, 0, err
		}
		// Index definitions replay from the log so access paths survive a
		// restart. A log failure leaves the in-memory index in place —
		// indexes are performance state, not data — but still surfaces.
		if err := db.logDDL(s.String()); err != nil {
			return nil, 0, err
		}
		return nil, 0, nil
	case *sqlparse.DropTable:
		db.lockExclusive()
		defer db.wseq.Unlock()
		key := strings.ToLower(s.Name)
		db.mu.RLock()
		_, ok := db.tables[key]
		db.mu.RUnlock()
		if !ok {
			return nil, 0, fmt.Errorf("engine: no such table %q", s.Name)
		}
		// Durable before visible (see CreateTable): readers keep resolving
		// the table until the drop is on disk, so a failed or torn append
		// never retracts an observed catalog change.
		if err := db.logDDL("DROP TABLE " + key); err != nil {
			return nil, 0, err
		}
		db.mu.Lock()
		delete(db.tables, key)
		db.mu.Unlock()
		db.notifySchema("drop table " + key)
		return nil, 0, nil
	case *sqlparse.Insert:
		n, err := db.execInsert(ctx, s)
		return nil, n, err
	case *sqlparse.Delete:
		n, err := db.execDelete(ctx, s)
		return nil, n, err
	case *sqlparse.Query:
		res, err := db.RunQueryContext(ctx, s)
		if err != nil {
			return nil, 0, err
		}
		return res, len(res.Rows), nil
	default:
		return nil, 0, fmt.Errorf("engine: unsupported statement %T", st)
	}
}

// Query parses and executes a SELECT.
func (db *DB) Query(sql string) (*Result, error) {
	return db.QueryContext(context.Background(), sql)
}

// QueryContext is Query under ctx: evaluation aborts within a bounded
// number of rows once the context is cancelled or its deadline passes.
func (db *DB) QueryContext(ctx context.Context, sql string) (*Result, error) {
	q, err := sqlparse.ParseQuery(sql)
	if err != nil {
		return nil, err
	}
	return db.RunQueryContext(ctx, q)
}

// RunQuery plans and executes a parsed query.
func (db *DB) RunQuery(q *sqlparse.Query) (*Result, error) {
	return db.RunQueryContext(context.Background(), q)
}

// RunQueryContext plans and executes a parsed query under ctx.
func (db *DB) RunQueryContext(ctx context.Context, q *sqlparse.Query) (*Result, error) {
	plan, err := db.PlanQuery(q)
	if err != nil {
		return nil, err
	}
	return db.RunPlanContext(ctx, plan)
}

// RunPlan executes a relational algebra plan and materializes the result.
// Physical planning — the cost-based stage (pushdown, join ordering) and
// access-path selection — is applied as a rewrite here, so logical plans
// handed to the CQA pipeline stay within the SJUD operator set.
func (db *DB) RunPlan(plan ra.Node) (*Result, error) {
	return db.RunPlanContext(context.Background(), plan)
}

// RunPlanContext is RunPlan under ctx; leaf iterators observe
// cancellation within a bounded number of rows.
func (db *DB) RunPlanContext(ctx context.Context, plan ra.Node) (*Result, error) {
	db.queries.Add(1)
	rows, err := ra.Materialize(ctx, optimize(plan))
	if err != nil {
		return nil, err
	}
	return &Result{Schema: plan.Schema(), Rows: rows}, nil
}

// RunPlanRaw executes a plan without any optimization. The naive prover
// uses it so each membership check pays the full per-query evaluation
// cost, standing in for the per-check RDBMS round trip of the paper's
// base version.
func (db *DB) RunPlanRaw(plan ra.Node) (*Result, error) {
	db.queries.Add(1)
	rows, err := ra.Materialize(context.Background(), plan)
	if err != nil {
		return nil, err
	}
	return &Result{Schema: plan.Schema(), Rows: rows}, nil
}

func (db *DB) execInsert(ctx context.Context, s *sqlparse.Insert) (int, error) {
	db.wseq.Lock()
	if db.clog == nil {
		defer db.wseq.Unlock()
		return db.execInsertFrozen(ctx, s, nil)
	}
	return db.execLogged(func(feed *[]storage.TableChange) (int, error) {
		return db.execInsertFrozen(ctx, s, feed)
	})
}

// execInsertFrozen applies an INSERT while the caller holds the write
// sequencer. With feed == nil, change events are delivered to listeners
// immediately (statement-at-a-time mode); otherwise they are captured into
// feed for the batch path to coalesce, deliver, or roll back. A cancelled
// ctx stops the statement between rows; the rows already inserted stand
// (single statements are not rolled back — batches are, by ApplyBatch).
func (db *DB) execInsertFrozen(ctx context.Context, s *sqlparse.Insert, feed *[]storage.TableChange) (int, error) {
	t, err := db.Table(s.Table)
	if err != nil {
		return 0, err
	}
	sch := t.Schema()
	// Map the explicit column list (if any) to positions.
	positions := make([]int, 0, sch.Len())
	if len(s.Columns) == 0 {
		for i := 0; i < sch.Len(); i++ {
			positions = append(positions, i)
		}
	} else {
		for _, name := range s.Columns {
			idx, err := sch.Resolve("", name)
			if err != nil {
				return 0, err
			}
			positions = append(positions, idx)
		}
	}
	inserted := 0
	for _, rowExprs := range s.Rows {
		if inserted%cancelCheckRows == 0 {
			if err := ctx.Err(); err != nil {
				return inserted, err
			}
		}
		if len(rowExprs) != len(positions) {
			return inserted, fmt.Errorf("engine: INSERT expects %d values, got %d",
				len(positions), len(rowExprs))
		}
		row := make(value.Tuple, sch.Len()) // unset columns default to NULL
		for i, e := range rowExprs {
			expr, err := planScalar(e, schema.Schema{})
			if err != nil {
				return inserted, err
			}
			v, err := expr.Eval(nil)
			if err != nil {
				return inserted, err
			}
			row[positions[i]] = v
		}
		if feed == nil {
			if _, err := t.Insert(row); err != nil {
				return inserted, err
			}
		} else {
			_, ch, err := t.InsertCapture(row)
			if err != nil {
				return inserted, err
			}
			*feed = append(*feed, storage.TableChange{Table: t.Name(), Change: ch})
		}
		inserted++
	}
	return inserted, nil
}

func (db *DB) execDelete(ctx context.Context, s *sqlparse.Delete) (int, error) {
	db.wseq.Lock()
	if db.clog == nil {
		defer db.wseq.Unlock()
		return db.execDeleteFrozen(ctx, s, nil)
	}
	return db.execLogged(func(feed *[]storage.TableChange) (int, error) {
		return db.execDeleteFrozen(ctx, s, feed)
	})
}

// cancelCheckRows is how many rows a DML loop processes between context
// checks (mirroring ra's leaf-iterator cadence).
const cancelCheckRows = 256

// execDeleteFrozen applies a DELETE while the caller holds the write
// sequencer; see execInsertFrozen for the feed and cancellation contract
// (the predicate scan aborts on a cancelled ctx before any row is
// deleted; the delete loop aborts between rows).
func (db *DB) execDeleteFrozen(ctx context.Context, s *sqlparse.Delete, feed *[]storage.TableChange) (int, error) {
	t, err := db.Table(s.Table)
	if err != nil {
		return 0, err
	}
	var pred ra.Expr
	if s.Where != nil {
		pred, err = planScalar(s.Where, t.Schema())
		if err != nil {
			return 0, err
		}
	}
	var doomed []storage.RowID
	scanned := 0
	err = t.Scan(func(id storage.RowID, row value.Tuple) error {
		if scanned%cancelCheckRows == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		scanned++
		if pred == nil {
			doomed = append(doomed, id)
			return nil
		}
		pass, err := ra.EvalPredicate(pred, row)
		if err != nil {
			return err
		}
		if pass {
			doomed = append(doomed, id)
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	for i, id := range doomed {
		if i%cancelCheckRows == 0 {
			if err := ctx.Err(); err != nil {
				return i, err
			}
		}
		if feed == nil {
			if err := t.Delete(id); err != nil {
				return i, err
			}
		} else {
			ch, err := t.DeleteCapture(id)
			if err != nil {
				return i, err
			}
			*feed = append(*feed, storage.TableChange{Table: t.Name(), Change: ch})
		}
	}
	return len(doomed), nil
}

// BatchError reports which statement stopped a batch; the batch was rolled
// back and no change became visible.
type BatchError struct {
	Index int // 0-based position of the failing statement
	Err   error
}

// Error formats the failure with its statement position.
func (e *BatchError) Error() string {
	return fmt.Sprintf("engine: batch statement %d: %v", e.Index, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *BatchError) Unwrap() error { return e.Err }

// ApplyBatch applies a sequence of parsed DML statements as one group
// commit: every statement runs under a single hold of the write sequencer,
// so no snapshot — and therefore no published query view — can observe a
// prefix of the batch. Statements see the effects of earlier statements in
// the batch, exactly as statement-at-a-time application would. The
// buffered change feed is coalesced before delivery (a row inserted and
// deleted within the batch never surfaces: no delta probe, no cache
// invalidation), and listeners receive the surviving changes in mutation
// order, still under the sequencer.
//
// A batch is all-or-nothing: if any statement fails — only INSERT and
// DELETE are admitted, and runtime errors roll back too — every already
// applied change is undone, no change-feed event is delivered, and the
// returned *BatchError names the failing statement. On success the
// per-statement affected-row counts are returned.
func (db *DB) ApplyBatch(stmts []sqlparse.Statement) ([]int, error) {
	return db.ApplyBatchContext(context.Background(), stmts)
}

// ApplyBatchContext is ApplyBatch under ctx. Cancellation is observed
// between (and within) statements and rolls the entire batch back through
// the normal failure path, so atomicity holds: a deadline can abort a
// batch, never truncate one.
func (db *DB) ApplyBatchContext(ctx context.Context, stmts []sqlparse.Statement) ([]int, error) {
	for i, st := range stmts {
		switch st.(type) {
		case *sqlparse.Insert, *sqlparse.Delete:
		default:
			return nil, &BatchError{Index: i, Err: fmt.Errorf(
				"engine: only INSERT and DELETE may appear in a batch, got %T", st)}
		}
	}
	db.wseq.Lock()
	feed := make([]storage.TableChange, 0, len(stmts))
	affected := make([]int, len(stmts))
	for i, st := range stmts {
		var n int
		err := ctx.Err()
		if err == nil {
			switch s := st.(type) {
			case *sqlparse.Insert:
				n, err = db.execInsertFrozen(ctx, s, &feed)
			case *sqlparse.Delete:
				n, err = db.execDeleteFrozen(ctx, s, &feed)
			}
		}
		if err != nil {
			if rbErr := db.rollbackFrozen(feed); rbErr != nil {
				// A failed undo step would silently desynchronize derived
				// state (hypergraph, caches) from the tables. Signal a
				// schema-grade change so every listener rebuilds from a
				// full rescan, then report both errors.
				db.notifySchema("batch rollback failure")
				err = fmt.Errorf("%w (rollback incomplete, derived state rebuilt: %v)", err, rbErr)
			}
			db.wseq.Unlock()
			return nil, &BatchError{Index: i, Err: err}
		}
		affected[i] = n
	}
	// Commit point: with a log attached, the batch must be durable before
	// any listener (and hence any published view) can observe it. A log
	// failure rolls the whole batch back — never a prefix on disk, never a
	// prefix in memory. commitRelease releases the sequencer: the fsync
	// wait happens outside it so concurrent batches share group commits.
	if err := db.commitRelease(feed, storage.CoalesceChanges(feed)); err != nil {
		return nil, err
	}
	return affected, nil
}

// ExecBatch parses sqls and applies them with ApplyBatch. A parse error
// aborts before anything runs.
func (db *DB) ExecBatch(sqls []string) ([]int, error) {
	return db.ExecBatchContext(context.Background(), sqls)
}

// ExecBatchContext is ExecBatch under ctx (see ApplyBatchContext).
func (db *DB) ExecBatchContext(ctx context.Context, sqls []string) ([]int, error) {
	stmts := make([]sqlparse.Statement, len(sqls))
	for i, q := range sqls {
		st, err := sqlparse.Parse(q)
		if err != nil {
			return nil, &BatchError{Index: i, Err: err}
		}
		stmts[i] = st
	}
	return db.ApplyBatchContext(ctx, stmts)
}

// rollbackFrozen undoes captured (never delivered) changes in reverse
// order: inserted rows are re-tombstoned, deleted rows resurrected. The
// caller holds the write sequencer, so no reader snapshot can interleave.
// Every step succeeds by invariant (batches contain no DDL and captured
// RowIDs are stable); if one ever fails, the first failure is returned so
// the caller can force derived state to rebuild rather than serve answers
// diverged from the tables.
func (db *DB) rollbackFrozen(feed []storage.TableChange) error {
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for i := len(feed) - 1; i >= 0; i-- {
		tc := feed[i]
		t, err := db.Table(tc.Table)
		if err != nil {
			keep(err)
			continue
		}
		if tc.Change.Kind == storage.ChangeInsert {
			_, err = t.DeleteCapture(tc.Change.Row)
		} else {
			err = t.Resurrect(tc.Change.Row)
		}
		keep(err)
	}
	return firstErr
}

// TableSchema returns the schema of the named table, satisfying
// constraint.Catalog.
func (db *DB) TableSchema(name string) (schema.Schema, error) {
	t, err := db.Table(name)
	if err != nil {
		return schema.Schema{}, err
	}
	return t.Schema(), nil
}
