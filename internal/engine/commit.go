package engine

import (
	"fmt"

	"hippo/internal/storage"
)

// Async commit pipeline. With a group-commit log attached, a DML commit
// splits in two: the mutation, capture, and WAL enqueue happen under the
// write sequencer (fixing commit order == WAL order), but the wait for
// the group's fsync and the change-feed delivery happen OUTSIDE it, on a
// single commit-worker goroutine that processes commits strictly in
// enqueue order. Releasing the sequencer before the fsync wait is what
// lets concurrent committers coalesce into one group fsync — under the
// old inline path the sequencer serialized the fsyncs themselves, so
// every committer paid a full disk round-trip (the E14 batch-1 penalty).
//
// The invariants the inline path provided are preserved:
//
//   - Durable before visible (in views): a commit's change feed is
//     delivered only after its ticket resolves, i.e. after its group's
//     fsync returned. FreezeWrites drains the pipeline, so a published
//     snapshot never contains a commit whose deltas (or durability) are
//     still in flight.
//   - Delivery order == commit order: the single worker resolves tickets
//     and delivers batches FIFO, under the sequencer.
//   - Failure atomicity: if a ticket fails, the store is sticky-failed
//     and every later queued commit fails with it. The worker takes the
//     sequencer, rolls back ALL queued commits in reverse commit order
//     (they may stack on each other's rows), and acks each committer
//     with its error — exactly the old "the commit never happened
//     anywhere" contract, extended to the whole stack.
type pendingCommit struct {
	feed      []storage.TableChange // raw feed, for rollback
	coalesced []storage.TableChange // what was logged and gets delivered
	ticket    CommitTicket
	done      chan error // buffered; the committer blocks on it
}

// CommitTicket is a pending durability acknowledgement: Wait blocks until
// the enqueued record's group fsync resolves. wal.Ticket implements it.
type CommitTicket interface {
	Wait() error
}

// GroupCommitLog is the optional CommitLog extension the async pipeline
// needs: an append that can be enqueued under the write sequencer and
// waited on outside it. wal.Store implements it; a plain CommitLog falls
// back to the inline synchronous commit path.
type GroupCommitLog interface {
	CommitLog
	BeginAppendBatch(feed []storage.TableChange) CommitTicket
}

// lockExclusive acquires the write sequencer with the commit pipeline
// drained: no commit is awaiting its fsync or its delivery. This is the
// barrier DDL, snapshots (FreezeWrites), and SetCommitLog need — a plain
// wseq.Lock would let them run between a commit's mutation and its
// delivery. Ordinary DML needs only wseq.Lock: commits ahead of it in the
// pipeline have already mutated the tables it builds on.
func (db *DB) lockExclusive() {
	for {
		db.wseq.Lock()
		db.cmu.Lock()
		n := db.cinflight
		db.cmu.Unlock()
		if n == 0 {
			return // wseq held, pipeline empty — and it stays empty: enqueue needs wseq
		}
		// The worker needs wseq to deliver; release it and wait for the
		// drain, then race for the sequencer again.
		db.wseq.Unlock()
		db.cmu.Lock()
		for db.cinflight > 0 {
			db.ccond.Wait()
		}
		db.cmu.Unlock()
	}
}

// commitRelease is the commit point of every logged DML path: the caller
// holds the write sequencer with feed already applied to the tables, and
// commitRelease ALWAYS releases the sequencer before returning. With a
// group-commit log the commit is enqueued (to the WAL and to the
// pipeline, in that order, both under the sequencer) and the committer
// waits for the worker's ack outside the sequencer. Otherwise it falls
// back to the inline synchronous path.
func (db *DB) commitRelease(feed, coalesced []storage.TableChange) error {
	gcl, ok := db.clog.(GroupCommitLog)
	if !ok || len(coalesced) == 0 {
		err := db.commitLogged(feed, coalesced)
		db.wseq.Unlock()
		return err
	}
	pc := &pendingCommit{
		feed:      feed,
		coalesced: coalesced,
		ticket:    gcl.BeginAppendBatch(coalesced),
		done:      make(chan error, 1),
	}
	db.cmu.Lock()
	db.ensureWorkerLocked()
	db.cqueue = append(db.cqueue, pc)
	db.cinflight++
	db.ccond.Broadcast()
	db.cmu.Unlock()
	db.wseq.Unlock()
	if err := <-pc.done; err != nil {
		return fmt.Errorf("engine: commit log append: %w", err)
	}
	return nil
}

// ensureWorkerLocked starts the commit worker if it is not running; the
// caller holds cmu. The worker lives while a commit log is attached and
// is stopped by SetCommitLog(nil) — which core.Close calls — so durable
// databases shed the goroutine on shutdown.
func (db *DB) ensureWorkerLocked() {
	if db.cworker {
		return
	}
	db.cworker = true
	db.cstop = false
	db.cdone = make(chan struct{})
	go db.commitWorker(db.cdone)
}

// stopCommitWorker signals the worker and waits for it to exit. The
// caller holds the write sequencer exclusively (pipeline drained), so the
// worker is parked on its condition variable.
func (db *DB) stopCommitWorker() {
	db.cmu.Lock()
	if !db.cworker {
		db.cmu.Unlock()
		return
	}
	db.cstop = true
	db.ccond.Broadcast()
	done := db.cdone
	db.cmu.Unlock()
	<-done
}

// commitWorker resolves pipeline commits strictly FIFO: wait for the
// group fsync, deliver the change feed under the write sequencer, ack the
// committer. One worker per DB — ordering is the point.
func (db *DB) commitWorker(done chan struct{}) {
	defer close(done)
	for {
		db.cmu.Lock()
		for len(db.cqueue) == 0 && !db.cstop {
			db.ccond.Wait()
		}
		if len(db.cqueue) == 0 {
			db.cworker = false
			db.cmu.Unlock()
			return
		}
		pc := db.cqueue[0]
		db.cqueue = db.cqueue[1:]
		db.cmu.Unlock()

		if err := pc.ticket.Wait(); err != nil {
			db.failCommits(pc, err)
			continue
		}
		db.wseq.Lock()
		db.notifyBatch(pc.coalesced)
		db.wseq.Unlock()
		pc.done <- nil
		db.cmu.Lock()
		db.cinflight--
		db.ccond.Broadcast()
		db.cmu.Unlock()
	}
}

// failCommits unwinds the pipeline after first's group commit failed.
// Under the sequencer (so no new commit can stack on the doomed state) it
// fails every queued commit — the WAL is sticky-failed, so their tickets
// cannot succeed; appends are FIFO, so nothing after a failed group is on
// disk — rolls all of them back in reverse commit order, and acks each
// committer with its error.
func (db *DB) failCommits(first *pendingCommit, err error) {
	db.wseq.Lock()
	db.cmu.Lock()
	entries := append([]*pendingCommit{first}, db.cqueue...)
	db.cqueue = nil
	db.cmu.Unlock()

	errs := make([]error, len(entries))
	errs[0] = err
	for i := 1; i < len(entries); i++ {
		if errs[i] = entries[i].ticket.Wait(); errs[i] == nil {
			// Unreachable with a sticky-failing FIFO log; never let a
			// commit report success when state it stacked on rolled back.
			errs[i] = fmt.Errorf("aborted: earlier group commit failed: %w", err)
		}
	}
	var rbErr error
	for i := len(entries) - 1; i >= 0; i-- {
		if e := db.rollbackFrozen(entries[i].feed); e != nil && rbErr == nil {
			rbErr = e
		}
	}
	if rbErr != nil {
		db.notifySchema("commit log rollback failure")
	}
	for i, pc := range entries {
		e := errs[i]
		if rbErr != nil {
			e = fmt.Errorf("%w (rollback incomplete, derived state rebuilt: %v)", e, rbErr)
		}
		pc.done <- e
	}
	db.cmu.Lock()
	db.cinflight -= len(entries)
	db.ccond.Broadcast()
	db.cmu.Unlock()
	db.wseq.Unlock()
}
