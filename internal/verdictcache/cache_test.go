package verdictcache

import (
	"fmt"
	"testing"

	"hippo/internal/conflict"
)

func ref(id, fp uint64) conflict.ComponentRef { return conflict.ComponentRef{ID: id, FP: fp} }

func TestLookupStoreEpochGating(t *testing.T) {
	c := New(0)
	c.Advance(3, nil, nil) // cache now at epoch 3
	key := Key("plan", "cand")

	// A store from a superseded view must be rejected.
	c.Store(key, 2, true, []string{"r|a"}, nil)
	if _, ok := c.Lookup(key, 3, nil); ok {
		t.Fatal("stale store was accepted")
	}

	c.Store(key, 3, true, []string{"r|a"}, []conflict.ComponentRef{ref(7, 99)})
	if v, ok := c.Lookup(key, 3, nil); !ok || !v {
		t.Fatalf("want hit with verdict=true, got ok=%v v=%v", ok, v)
	}
	// A pinned view older than the store epoch must miss...
	if _, ok := c.Lookup(key, 2, nil); ok {
		t.Fatal("entry served to a view older than its store epoch")
	}
	// ...but the entry survives untouched advances and serves newer views.
	c.Advance(4, []string{"r|other"}, []uint64{8})
	if v, ok := c.Lookup(key, 4, nil); !ok || !v {
		t.Fatalf("entry lost across an unrelated advance: ok=%v v=%v", ok, v)
	}
	// And a pinned epoch between store and present is also valid.
	if v, ok := c.Lookup(key, 3, nil); !ok || !v {
		t.Fatal("entry not served to a pinned intermediate epoch")
	}
}

func TestAtomAndComponentInvalidation(t *testing.T) {
	c := New(0)
	byAtom := Key("q", "a")
	byComp := Key("q", "b")
	both := Key("q", "c")
	c.Store(byAtom, 0, true, []string{"r|x"}, nil)
	c.Store(byComp, 0, false, nil, []conflict.ComponentRef{ref(1, 10)})
	c.Store(both, 0, true, []string{"r|y"}, []conflict.ComponentRef{ref(2, 20)})

	c.Advance(1, []string{"r|x"}, []uint64{2})
	if _, ok := c.Lookup(byAtom, 1, nil); ok {
		t.Fatal("atom-invalidated entry survived")
	}
	if _, ok := c.Lookup(both, 1, nil); ok {
		t.Fatal("component-invalidated entry survived")
	}
	if v, ok := c.Lookup(byComp, 1, nil); !ok || v {
		t.Fatalf("untouched entry lost or corrupted: ok=%v v=%v", ok, v)
	}
	st := c.Stats()
	if st.Invalidated != 2 {
		t.Fatalf("Invalidated=%d, want 2", st.Invalidated)
	}
	if st.Entries != 1 {
		t.Fatalf("Entries=%d, want 1", st.Entries)
	}
}

func TestReset(t *testing.T) {
	c := New(0)
	c.Store(Key("q", "a"), 0, true, []string{"r|x"}, nil)
	c.Reset(5)
	if _, ok := c.Lookup(Key("q", "a"), 5, nil); ok {
		t.Fatal("entry survived Reset")
	}
	// Stores at the new epoch work again.
	c.Store(Key("q", "a"), 5, true, nil, nil)
	if _, ok := c.Lookup(Key("q", "a"), 5, nil); !ok {
		t.Fatal("store after Reset missed")
	}
}

func TestEvictionBound(t *testing.T) {
	// Bound 16 over 16 shards: at most one entry per shard.
	c := New(16)
	for i := 0; i < 200; i++ {
		c.Store(Key("q", fmt.Sprint(i)), 0, true, []string{fmt.Sprintf("r|%d", i)}, nil)
	}
	if n := c.Len(); n > 16 {
		t.Fatalf("cache grew to %d entries, bound is 16", n)
	}
	st := c.Stats()
	if st.Evicted == 0 {
		t.Fatal("no evictions recorded")
	}
	// Overwriting a surviving key must not evict an unrelated entry.
	before := c.Len()
	evictedBefore := st.Evicted
	for i := 0; i < 200; i++ {
		key := Key("q", fmt.Sprint(i))
		if _, ok := c.Lookup(key, 0, nil); ok {
			c.Store(key, 0, false, []string{fmt.Sprintf("r|%d", i)}, nil)
			break
		}
	}
	if c.Len() != before {
		t.Fatalf("overwrite changed entry count %d -> %d", before, c.Len())
	}
	if got := c.Stats().Evicted; got != evictedBefore {
		t.Fatalf("overwrite evicted an unrelated entry (%d -> %d)", evictedBefore, got)
	}
	// Index maps must not leak evicted keys: invalidating every atom must
	// leave the cache empty without over-counting.
	var atoms []string
	for i := 0; i < 200; i++ {
		atoms = append(atoms, fmt.Sprintf("r|%d", i))
	}
	c.Advance(1, atoms, nil)
	if n := c.Len(); n != 0 {
		t.Fatalf("%d entries left after invalidating every atom", n)
	}
}

func TestFingerprintMismatchDropsEntry(t *testing.T) {
	c := New(0)
	key := Key("q", "a")
	c.Store(key, 0, true, nil, []conflict.ComponentRef{ref(7, 99)})
	current := func(fp uint64, ok bool) ComponentResolver {
		return func(id uint64) (conflict.Component, bool) {
			return conflict.Component{ComponentRef: ref(id, fp)}, ok
		}
	}
	// Matching fingerprint: hit.
	if v, ok := c.Lookup(key, 0, current(99, true)); !ok || !v {
		t.Fatalf("matching fingerprint missed: ok=%v v=%v", ok, v)
	}
	// Changed fingerprint: the entry is provably stale — dropped, miss.
	if _, ok := c.Lookup(key, 0, current(98, true)); ok {
		t.Fatal("entry served despite a changed component fingerprint")
	}
	if _, ok := c.Lookup(key, 0, nil); ok {
		t.Fatal("stale entry not dropped")
	}
	if st := c.Stats(); st.Invalidated != 1 {
		t.Fatalf("Invalidated=%d, want 1", st.Invalidated)
	}
	// A vanished component is equally fatal.
	c.Store(key, 0, true, nil, []conflict.ComponentRef{ref(7, 99)})
	if _, ok := c.Lookup(key, 0, current(99, false)); ok {
		t.Fatal("entry served for a vanished component")
	}
}

func TestOverwriteRelinksDeps(t *testing.T) {
	c := New(0)
	key := Key("q", "a")
	c.Store(key, 0, true, []string{"r|old"}, nil)
	c.Store(key, 0, false, []string{"r|new"}, nil)
	// Old dependency must no longer invalidate the entry.
	c.Advance(1, []string{"r|old"}, nil)
	if v, ok := c.Lookup(key, 1, nil); !ok || v {
		t.Fatalf("overwritten entry lost or stale: ok=%v v=%v", ok, v)
	}
	c.Advance(2, []string{"r|new"}, nil)
	if _, ok := c.Lookup(key, 2, nil); ok {
		t.Fatal("entry survived invalidation of its new dependency")
	}
}
