// Package verdictcache memoizes certification verdicts across published
// query views. A verdict — "candidate tuple t is (not) a consistent
// answer to query Q" — is a pure function of the query plan, the
// membership status of the atoms the prover resolved, and the exact edge
// sets of the conflict components it searched (prover.Deps). The cache
// therefore keys entries by (query signature, candidate key) and indexes
// them by those dependencies; when the core publishes a new view it feeds
// the applied DML deltas and the hypergraph change log through Advance,
// which drops exactly the entries whose dependencies changed. Components
// are identified by (id, fingerprint): an untouched component keeps both,
// so on steady-state workloads with localized updates only verdicts whose
// component fingerprints changed are re-certified.
//
// Entries are epoch-stamped: an entry stored at epoch e stays valid for
// every later epoch until an Advance invalidates it, and — because
// invalidation is monotone — also for any pinned intermediate epoch ≥ e.
// Stores from queries still running against a superseded view are
// rejected, so a slow reader can never poison the cache for newer views.
//
// The cache is sharded by entry key so concurrent certification workers
// — the lock-free snapshot-serving read path — do not contend on one
// mutex for every candidate: Lookup and Store take only their shard's
// lock, while the single view publisher walks all shards in Advance and
// Reset. All methods are safe for concurrent use.
package verdictcache

import (
	"encoding/hex"
	"hash/fnv"
	"hash/maphash"
	"sync"

	"hippo/internal/conflict"
)

// DefaultMaxEntries bounds the cache; past it, stores evict arbitrary
// entries (map order) to stay within budget.
const DefaultMaxEntries = 1 << 16

// numShards spreads entry keys over independently locked shards. The
// entry bound is enforced per shard (maxEntries/numShards each, rounded
// up), so tiny caches may hold up to one entry per shard.
const numShards = 16

// Stats counts cache traffic. Entries is a point-in-time gauge; the rest
// accumulate over the cache's lifetime.
type Stats struct {
	Hits        int64
	Misses      int64
	Stores      int64
	Invalidated int64 // entries dropped by dependency invalidation
	Evicted     int64 // entries dropped by the size bound
	Resets      int64 // full clears (full re-detections)
	Entries     int64
}

// Sub returns the counter-wise difference s - o (Entries is copied).
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Hits:        s.Hits - o.Hits,
		Misses:      s.Misses - o.Misses,
		Stores:      s.Stores - o.Stores,
		Invalidated: s.Invalidated - o.Invalidated,
		Evicted:     s.Evicted - o.Evicted,
		Resets:      s.Resets - o.Resets,
		Entries:     s.Entries,
	}
}

func (s *Stats) add(o Stats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Stores += o.Stores
	s.Invalidated += o.Invalidated
	s.Evicted += o.Evicted
	s.Resets += o.Resets
	s.Entries += o.Entries
}

type entry struct {
	verdict bool
	epoch   uint64 // view epoch the verdict was computed at
	atoms   []string
	comps   []conflict.ComponentRef
}

// shard is one independently locked slice of the cache. Dependency
// indexes are shard-local: an entry and its index references always live
// in the same shard.
type shard struct {
	mu      sync.Mutex
	epoch   uint64 // epoch this shard's entries are valid through
	entries map[string]*entry
	byAtom  map[string]map[string]struct{} // dependency atom key -> entry keys
	byComp  map[uint64]map[string]struct{} // component id -> entry keys
	stats   Stats
}

// Cache is the verdict memo. The zero value is not usable; call New.
type Cache struct {
	shards      [numShards]shard
	maxPerShard int
	seed        maphash.Seed
}

// New creates an empty cache bounded to maxEntries (DefaultMaxEntries
// when <= 0).
func New(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	c := &Cache{
		maxPerShard: (maxEntries + numShards - 1) / numShards,
		seed:        maphash.MakeSeed(),
	}
	for i := range c.shards {
		c.shards[i].reset()
	}
	return c
}

func (sh *shard) reset() {
	sh.entries = make(map[string]*entry)
	sh.byAtom = make(map[string]map[string]struct{})
	sh.byComp = make(map[uint64]map[string]struct{})
}

func (c *Cache) shardOf(key string) *shard {
	return &c.shards[maphash.String(c.seed, key)%numShards]
}

// Key builds the entry key for a candidate of a query. The query
// signature must identify the plan (callers digest the formatted plan
// tree once per query — see QuerySignature) and the candidate key the
// tuple value (value.Tuple.Key).
func Key(querySig, candKey string) string { return querySig + "\x00" + candKey }

// QuerySignature digests a formatted query plan into a short stable
// signature, so cache keys don't embed (and lookups don't re-hash) the
// full plan text per candidate. FNV-128a keeps accidental collisions out
// of the question.
func QuerySignature(formattedPlan string) string {
	f := fnv.New128a()
	f.Write([]byte(formattedPlan))
	return hex.EncodeToString(f.Sum(nil))
}

// ComponentResolver reports the current state of a component id in the
// hypergraph a lookup is served against (conflict.Hypergraph.Component).
type ComponentResolver func(id uint64) (conflict.Component, bool)

// Lookup returns the memoized verdict for key as seen from a view at
// viewEpoch. A hit requires the entry to have been computed at or before
// that epoch: entries survive Advance only while their dependencies are
// unchanged, so validity extends monotonically from the store epoch
// through the present — which covers every pinned epoch in between.
//
// A non-nil resolver adds the fingerprint check: every component the
// verdict depended on must still exist with the fingerprint recorded at
// store time. Invalidation by touched ids already guarantees this, so a
// mismatch indicates a gap — the entry is dropped (counted under
// Invalidated) and the lookup misses, keeping served verdicts provably
// tied to the exact edge sets they were computed from.
func (c *Cache) Lookup(key string, viewEpoch uint64, resolve ComponentResolver) (verdict, ok bool) {
	sh := c.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, present := sh.entries[key]
	if !present || e.epoch > viewEpoch {
		sh.stats.Misses++
		return false, false
	}
	if resolve != nil {
		for _, ref := range e.comps {
			cur, ok := resolve(ref.ID)
			if !ok || cur.FP != ref.FP {
				sh.unlink(key, e)
				delete(sh.entries, key)
				sh.stats.Invalidated++
				sh.stats.Misses++
				return false, false
			}
		}
	}
	sh.stats.Hits++
	return e.verdict, true
}

// Store memoizes a verdict computed against the view at viewEpoch with
// the given dependencies. Stores from superseded views (viewEpoch below
// the cache's current epoch) are dropped: their dependencies may already
// have been invalidated.
func (c *Cache) Store(key string, viewEpoch uint64, verdict bool, atoms []string, comps []conflict.ComponentRef) {
	sh := c.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if viewEpoch < sh.epoch {
		return
	}
	if old, ok := sh.entries[key]; ok {
		sh.unlink(key, old)
		delete(sh.entries, key) // an overwrite must not trigger an eviction
	}
	for len(sh.entries) >= c.maxPerShard {
		for k, e := range sh.entries { // arbitrary victim
			sh.unlink(k, e)
			delete(sh.entries, k)
			sh.stats.Evicted++
			break
		}
	}
	e := &entry{verdict: verdict, epoch: viewEpoch, atoms: atoms, comps: comps}
	sh.entries[key] = e
	for _, a := range atoms {
		set := sh.byAtom[a]
		if set == nil {
			set = make(map[string]struct{})
			sh.byAtom[a] = set
		}
		set[key] = struct{}{}
	}
	for _, ref := range comps {
		set := sh.byComp[ref.ID]
		if set == nil {
			set = make(map[string]struct{})
			sh.byComp[ref.ID] = set
		}
		set[key] = struct{}{}
	}
	sh.stats.Stores++
}

// unlink removes an entry's index references (not the entry itself). The
// caller holds the shard lock.
func (sh *shard) unlink(key string, e *entry) {
	for _, a := range e.atoms {
		if set := sh.byAtom[a]; set != nil {
			delete(set, key)
			if len(set) == 0 {
				delete(sh.byAtom, a)
			}
		}
	}
	for _, ref := range e.comps {
		if set := sh.byComp[ref.ID]; set != nil {
			delete(set, key)
			if len(set) == 0 {
				delete(sh.byComp, ref.ID)
			}
		}
	}
}

// Advance moves the cache to a freshly published epoch, dropping every
// entry that depends on an invalidated atom (a tuple inserted or deleted
// by the drained deltas, or newly drawn into a conflict) or on a touched
// component (one whose edge set — and hence fingerprint — changed).
// Entries depending on neither survive into the new epoch. Only the view
// publisher calls Advance (directly, or as Invalidate + SealEpoch when a
// sharded drain partitions the invalidation set across workers); a Store
// racing ahead of it on a not-yet-advanced shard is safe — the stored
// entry's dependencies are then checked when the walk reaches that shard.
func (c *Cache) Advance(newEpoch uint64, atoms []string, comps []uint64) {
	c.Invalidate(atoms, comps)
	c.SealEpoch(newEpoch)
}

// Invalidate drops every entry depending on one of the given atoms or
// touched component ids, without moving the epoch. It is safe for
// concurrent use: a component-sharded drain partitions the touched set by
// owning certification shard and invalidates from several workers at once,
// each walking the key-hash shards independently. Returns the number of
// entries dropped.
func (c *Cache) Invalidate(atoms []string, comps []uint64) int64 {
	if len(atoms) == 0 && len(comps) == 0 {
		return 0
	}
	var dropped int64
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		drop := make(map[string]struct{})
		for _, a := range atoms {
			for key := range sh.byAtom[a] {
				drop[key] = struct{}{}
			}
		}
		for _, id := range comps {
			for key := range sh.byComp[id] {
				drop[key] = struct{}{}
			}
		}
		for key := range drop {
			if e, ok := sh.entries[key]; ok {
				sh.unlink(key, e)
				delete(sh.entries, key)
				sh.stats.Invalidated++
				dropped++
			}
		}
		sh.mu.Unlock()
	}
	return dropped
}

// SealEpoch moves every key shard to the freshly published epoch, after
// which stores from superseded views are rejected. The view publisher
// calls it once per publication, after all Invalidate work for the drain
// has finished.
func (c *Cache) SealEpoch(newEpoch uint64) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.epoch = newEpoch
		sh.mu.Unlock()
	}
}

// Reset clears the cache entirely (full re-detection: component ids and
// fingerprints restart from scratch) and moves to the new epoch.
func (c *Cache) Reset(newEpoch uint64) {
	cleared := false
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		if len(sh.entries) > 0 {
			cleared = true
		}
		sh.reset()
		sh.epoch = newEpoch
		sh.mu.Unlock()
	}
	if cleared {
		sh := &c.shards[0]
		sh.mu.Lock()
		sh.stats.Resets++
		sh.mu.Unlock()
	}
}

// Len returns the number of live entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// Stats returns a snapshot of the counters, summed over shards.
func (c *Cache) Stats() Stats {
	var out Stats
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		st := sh.stats
		st.Entries = int64(len(sh.entries))
		sh.mu.Unlock()
		out.add(st)
	}
	return out
}
