package ra

import (
	"context"
	"sort"
	"strings"
	"testing"

	"hippo/internal/schema"
	"hippo/internal/storage"
	"hippo/internal/value"
)

// mkTable builds a test table with int columns and the given rows.
func mkTable(t *testing.T, name string, cols []string, rows ...[]int64) *storage.Table {
	t.Helper()
	sc := make([]schema.Column, len(cols))
	for i, c := range cols {
		sc[i] = schema.Column{Name: c, Type: value.KindInt}
	}
	tb := storage.NewTable(name, schema.New(sc...))
	for _, r := range rows {
		tup := make(value.Tuple, len(r))
		for i, v := range r {
			tup[i] = value.Int(v)
		}
		if _, err := tb.Insert(tup); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

// rowsOf materializes and renders sorted row strings for comparison.
func rowsOf(t *testing.T, n Node) []string {
	t.Helper()
	rows, err := Materialize(context.Background(), n)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = value.TupleString(r)
	}
	sort.Strings(out)
	return out
}

func eqRows(t *testing.T, got []string, want ...string) {
	t.Helper()
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestScan(t *testing.T) {
	tb := mkTable(t, "r", []string{"a"}, []int64{1}, []int64{2})
	s := &Scan{Table: tb}
	eqRows(t, rowsOf(t, s), "(1)", "(2)")
	if s.Schema().Columns[0].Qualifier != "r" {
		t.Error("scan schema should be qualified by table name")
	}
	aliased := &Scan{Table: tb, Alias: "x"}
	if aliased.Schema().Columns[0].Qualifier != "x" {
		t.Error("alias should re-qualify")
	}
	if !strings.Contains(aliased.String(), "AS x") {
		t.Error("aliased String should mention alias")
	}
	if len(s.Children()) != 0 {
		t.Error("scan has no children")
	}
}

func TestSelect(t *testing.T) {
	tb := mkTable(t, "r", []string{"a"}, []int64{1}, []int64{2}, []int64{3})
	n := &Select{
		Child: &Scan{Table: tb},
		Pred:  Cmp{Op: GE, L: Col{Index: 0}, R: Const{V: value.Int(2)}},
	}
	eqRows(t, rowsOf(t, n), "(2)", "(3)")
	if n.Schema().Len() != 1 {
		t.Error("select schema should match child")
	}
}

func TestProject(t *testing.T) {
	tb := mkTable(t, "r", []string{"a", "b"}, []int64{1, 10}, []int64{2, 20}, []int64{1, 10})
	p := &Project{
		Child: &Scan{Table: tb},
		Exprs: []Expr{Col{Index: 1}, Arith{Op: Add, L: Col{Index: 0}, R: Const{V: value.Int(100)}}},
		Names: []string{"", "aplus"},
	}
	eqRows(t, rowsOf(t, p), "(10, 101)", "(20, 102)", "(10, 101)")
	sch := p.Schema()
	if sch.Columns[0].Name != "b" || sch.Columns[1].Name != "aplus" {
		t.Errorf("project schema names = %v", sch)
	}
	if sch.Columns[1].Type != value.KindInt {
		t.Errorf("inferred type = %v", sch.Columns[1].Type)
	}

	p.Distinct = true
	eqRows(t, rowsOf(t, p), "(10, 101)", "(20, 102)")
}

func TestProduct(t *testing.T) {
	l := mkTable(t, "l", []string{"a"}, []int64{1}, []int64{2})
	r := mkTable(t, "r", []string{"b"}, []int64{10}, []int64{20})
	p := &Product{L: &Scan{Table: l}, R: &Scan{Table: r}}
	eqRows(t, rowsOf(t, p), "(1, 10)", "(1, 20)", "(2, 10)", "(2, 20)")
	if p.Schema().Len() != 2 {
		t.Error("product schema arity")
	}
	if len(p.Children()) != 2 {
		t.Error("product children")
	}
}

func TestJoinHashAndNested(t *testing.T) {
	emp := mkTable(t, "emp", []string{"id", "dept"}, []int64{1, 100}, []int64{2, 200}, []int64{3, 100})
	dept := mkTable(t, "dept", []string{"did", "sz"}, []int64{100, 5}, []int64{200, 6})

	// Hash path: equi predicate.
	j := &Join{
		L:    &Scan{Table: emp},
		R:    &Scan{Table: dept},
		Pred: Cmp{Op: EQ, L: Col{Index: 1}, R: Col{Index: 2}},
	}
	eqRows(t, rowsOf(t, j), "(1, 100, 100, 5)", "(2, 200, 200, 6)", "(3, 100, 100, 5)")

	// Hash path with residual.
	j2 := &Join{
		L: &Scan{Table: emp},
		R: &Scan{Table: dept},
		Pred: And{
			L: Cmp{Op: EQ, L: Col{Index: 1}, R: Col{Index: 2}},
			R: Cmp{Op: GT, L: Col{Index: 0}, R: Const{V: value.Int(1)}},
		},
	}
	eqRows(t, rowsOf(t, j2), "(2, 200, 200, 6)", "(3, 100, 100, 5)")

	// Nested-loop path: non-equi predicate.
	j3 := &Join{
		L:    &Scan{Table: emp},
		R:    &Scan{Table: dept},
		Pred: Cmp{Op: LT, L: Col{Index: 0}, R: Col{Index: 3}},
	}
	rows, err := Materialize(context.Background(), j3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // all ids 1..3 are < both sizes 5 and 6
		t.Errorf("nested join rows = %d", len(rows))
	}

	// Nil predicate degenerates to product.
	j4 := &Join{L: &Scan{Table: emp}, R: &Scan{Table: dept}}
	rows, _ = Materialize(context.Background(), j4)
	if len(rows) != 6 {
		t.Errorf("nil-pred join rows = %d", len(rows))
	}
	// Reversed equi operands (right col = left col) also hash.
	j5 := &Join{
		L:    &Scan{Table: emp},
		R:    &Scan{Table: dept},
		Pred: Cmp{Op: EQ, L: Col{Index: 2}, R: Col{Index: 1}},
	}
	rows, _ = Materialize(context.Background(), j5)
	if len(rows) != 3 {
		t.Errorf("reversed equi join rows = %d", len(rows))
	}
}

func TestSemiAndAntiJoin(t *testing.T) {
	emp := mkTable(t, "emp", []string{"id", "dept"}, []int64{1, 100}, []int64{2, 300}, []int64{3, 100})
	dept := mkTable(t, "dept", []string{"did"}, []int64{100}, []int64{200})

	pred := Cmp{Op: EQ, L: Col{Index: 1}, R: Col{Index: 2}}
	semi := &SemiJoin{L: &Scan{Table: emp}, R: &Scan{Table: dept}, Pred: pred}
	eqRows(t, rowsOf(t, semi), "(1, 100)", "(3, 100)")
	if semi.Schema().Len() != 2 {
		t.Error("semi join schema should be left schema")
	}

	anti := &AntiJoin{L: &Scan{Table: emp}, R: &Scan{Table: dept}, Pred: pred}
	eqRows(t, rowsOf(t, anti), "(2, 300)")

	// Nested-loop path (non-equi).
	anti2 := &AntiJoin{
		L:    &Scan{Table: emp},
		R:    &Scan{Table: dept},
		Pred: Cmp{Op: LT, L: Col{Index: 1}, R: Col{Index: 2}},
	}
	// emp rows whose dept is not < any did: (1,100): 100<200 matches so excluded;
	// (2,300): no did > 300 → kept; (3,100): excluded.
	eqRows(t, rowsOf(t, anti2), "(2, 300)")

	// Nil predicate: semi keeps all iff right non-empty; anti drops all.
	semiAll := &SemiJoin{L: &Scan{Table: emp}, R: &Scan{Table: dept}}
	if len(rowsOf(t, semiAll)) != 3 {
		t.Error("nil-pred semi join should keep all rows")
	}
	antiNone := &AntiJoin{L: &Scan{Table: emp}, R: &Scan{Table: dept}}
	if len(rowsOf(t, antiNone)) != 0 {
		t.Error("nil-pred anti join with non-empty right should drop all")
	}
}

func TestUnionDiffIntersect(t *testing.T) {
	a := mkTable(t, "a", []string{"x"}, []int64{1}, []int64{2}, []int64{2})
	b := mkTable(t, "b", []string{"x"}, []int64{2}, []int64{3})

	eqRows(t, rowsOf(t, &Union{L: &Scan{Table: a}, R: &Scan{Table: b}}), "(1)", "(2)", "(3)")
	eqRows(t, rowsOf(t, &Diff{L: &Scan{Table: a}, R: &Scan{Table: b}}), "(1)")
	eqRows(t, rowsOf(t, &Intersect{L: &Scan{Table: a}, R: &Scan{Table: b}}), "(2)")

	// Incompatible arity errors.
	two := mkTable(t, "two", []string{"x", "y"}, []int64{1, 2})
	if _, err := Materialize(context.Background(), &Union{L: &Scan{Table: a}, R: &Scan{Table: two}}); err == nil {
		t.Error("union arity mismatch should error")
	}
	if _, err := Materialize(context.Background(), &Diff{L: &Scan{Table: a}, R: &Scan{Table: two}}); err == nil {
		t.Error("diff arity mismatch should error")
	}
	if _, err := Materialize(context.Background(), &Intersect{L: &Scan{Table: a}, R: &Scan{Table: two}}); err == nil {
		t.Error("intersect arity mismatch should error")
	}
}

func TestDistinctNodeAndValues(t *testing.T) {
	v := &Values{
		Sch: schema.New(schema.Column{Name: "x", Type: value.KindInt}),
		Rows: []value.Tuple{
			{value.Int(1)}, {value.Int(1)}, {value.Int(2)},
		},
	}
	d := &DistinctNode{Child: v}
	eqRows(t, rowsOf(t, d), "(1)", "(2)")
	if d.Schema().Len() != 1 || len(d.Children()) != 1 {
		t.Error("distinct metadata wrong")
	}
	if len(v.Children()) != 0 {
		t.Error("values has no children")
	}
}

func TestFormatAndWalk(t *testing.T) {
	a := mkTable(t, "a", []string{"x"}, []int64{1})
	n := &Select{
		Child: &Union{L: &Scan{Table: a}, R: &Scan{Table: a}},
		Pred:  TrueExpr,
	}
	s := Format(n)
	if !strings.Contains(s, "Select") || !strings.Contains(s, "Union") ||
		!strings.Contains(s, "Scan(a)") {
		t.Errorf("Format = %q", s)
	}
	count := 0
	Walk(n, func(Node) { count++ })
	if count != 4 {
		t.Errorf("Walk visited %d nodes, want 4", count)
	}
}

// Property-style test: Union/Diff/Intersect obey set identities on random
// small inputs.
func TestSetOperatorIdentities(t *testing.T) {
	mkValues := func(xs []int64) Node {
		rows := make([]value.Tuple, len(xs))
		for i, x := range xs {
			rows[i] = value.Tuple{value.Int(x % 8)}
		}
		return &Values{
			Sch:  schema.New(schema.Column{Name: "x", Type: value.KindInt}),
			Rows: rows,
		}
	}
	cases := [][2][]int64{
		{{1, 2, 3}, {2, 3, 4}},
		{{}, {1}},
		{{5, 5, 5}, {5}},
		{{0, 1, 2, 3, 4, 5, 6, 7}, {4, 5, 6, 7, 8, 9}},
	}
	for _, c := range cases {
		a, b := mkValues(c[0]), mkValues(c[1])
		union := rowsOf(t, &Union{L: a, R: b})
		diff := rowsOf(t, &Diff{L: a, R: b})
		inter := rowsOf(t, &Intersect{L: a, R: b})
		diffBA := rowsOf(t, &Diff{L: b, R: a})
		// |A∪B| == |A−B| + |A∩B| + |B−A|
		if len(union) != len(diff)+len(inter)+len(diffBA) {
			t.Errorf("partition identity failed for %v/%v: %d != %d+%d+%d",
				c[0], c[1], len(union), len(diff), len(inter), len(diffBA))
		}
		// A∩B == A − (A−B)
		viaDiff := rowsOf(t, &Diff{L: a, R: &Diff{L: a, R: b}})
		if strings.Join(inter, ";") != strings.Join(viaDiff, ";") {
			t.Errorf("intersection identity failed for %v/%v", c[0], c[1])
		}
	}
}
