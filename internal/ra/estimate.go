package ra

import "hippo/internal/storage"

// Cardinality estimation for cost-based planning. Estimates flow from the
// storage layer's TableStats (exact row counts, sampled per-column
// distinct counts) up through the operators with textbook selectivity
// rules. They are deliberately coarse: the planner only uses them to
// order joins, choose hash-join build sides, and decide where predicates
// pay off — all decisions that tolerate large estimation error as long as
// the ordering of magnitudes is right.

// EstimateCard returns the estimated output cardinality of a plan, or -1
// when the plan contains a node shape the estimator does not know (the
// planner then falls back deterministically to the written order).
func EstimateCard(n Node) int64 {
	f := estimateF(n)
	if f < 0 {
		return -1
	}
	if f > 1e18 {
		return int64(1e18)
	}
	return int64(f)
}

func estimateF(n Node) float64 {
	switch t := n.(type) {
	case *Scan:
		return float64(t.Table.Len())
	case *IndexLookup:
		rows := float64(t.Table.Len())
		if d := maxDistinct(t.Table.Stats(), t.Index.Columns()); d > 0 {
			return rows / float64(d)
		}
		return rows
	case *Select:
		c := estimateF(t.Child)
		if c < 0 {
			return -1
		}
		return c * selectivity(t.Pred, t.Child)
	case *Project:
		return estimateF(t.Child)
	case *DistinctNode:
		return estimateF(t.Child)
	case *Product:
		l, r := estimateF(t.L), estimateF(t.R)
		if l < 0 || r < 0 {
			return -1
		}
		return l * r
	case *Join:
		l, r := estimateF(t.L), estimateF(t.R)
		if l < 0 || r < 0 {
			return -1
		}
		if t.Pred == nil {
			return l * r
		}
		return l * r * selectivity(t.Pred, &Product{L: t.L, R: t.R})
	case *SemiJoin, *AntiJoin:
		return estimateF(n.Children()[0])
	case *Union:
		l, r := estimateF(t.L), estimateF(t.R)
		if l < 0 || r < 0 {
			return -1
		}
		return l + r
	case *Diff:
		return estimateF(t.L)
	case *Intersect:
		l, r := estimateF(t.L), estimateF(t.R)
		if l < 0 || r < 0 {
			return -1
		}
		if r < l {
			return r
		}
		return l
	case *Values:
		return float64(len(t.Rows))
	case *Sort:
		return estimateF(t.Child)
	case *Limit:
		c := estimateF(t.Child)
		if c < 0 {
			return -1
		}
		if float64(t.N) < c {
			return float64(t.N)
		}
		return c
	default:
		return -1
	}
}

// distinctAt returns the estimated distinct count of output column idx of
// n, or 0 when unknown. Resolution follows column identity through the
// operators that preserve it.
func distinctAt(n Node, idx int) int {
	switch t := n.(type) {
	case *Scan:
		st := t.Table.Stats()
		if idx >= 0 && idx < len(st.Distinct) {
			return st.Distinct[idx]
		}
	case *IndexLookup:
		st := t.Table.Stats()
		if idx >= 0 && idx < len(st.Distinct) {
			return st.Distinct[idx]
		}
	case *Select:
		return distinctAt(t.Child, idx)
	case *DistinctNode:
		return distinctAt(t.Child, idx)
	case *Sort:
		return distinctAt(t.Child, idx)
	case *Limit:
		return distinctAt(t.Child, idx)
	case *Project:
		if idx >= 0 && idx < len(t.Exprs) {
			if c, ok := t.Exprs[idx].(Col); ok {
				return distinctAt(t.Child, c.Index)
			}
		}
	case *Product:
		la := t.L.Schema().Len()
		if idx < la {
			return distinctAt(t.L, idx)
		}
		return distinctAt(t.R, idx-la)
	case *Join:
		la := t.L.Schema().Len()
		if idx < la {
			return distinctAt(t.L, idx)
		}
		return distinctAt(t.R, idx-la)
	case *SemiJoin:
		return distinctAt(t.L, idx)
	case *AntiJoin:
		return distinctAt(t.L, idx)
	}
	return 0
}

// maxDistinct returns the largest per-column distinct estimate among
// cols (0 if none known).
func maxDistinct(st storage.TableStats, cols []int) int {
	max := 0
	for _, c := range cols {
		if c >= 0 && c < len(st.Distinct) && st.Distinct[c] > max {
			max = st.Distinct[c]
		}
	}
	return max
}

// selectivity estimates the fraction of child rows a predicate keeps,
// clamped to [0, 1].
func selectivity(e Expr, child Node) float64 {
	s := rawSelectivity(e, child)
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

func rawSelectivity(e Expr, child Node) float64 {
	switch t := e.(type) {
	case And:
		return rawSelectivity(t.L, child) * rawSelectivity(t.R, child)
	case Or:
		a, b := selectivity(t.L, child), selectivity(t.R, child)
		return a + b - a*b
	case Not:
		return 1 - selectivity(t.E, child)
	case IsNull:
		if t.Negate {
			return 0.9
		}
		return 0.1
	case Cmp:
		switch t.Op {
		case EQ:
			return eqSelectivity(t, child)
		case NE:
			return 1 - eqSelectivity(t, child)
		case LT, LE, GT, GE:
			return 1.0 / 3
		}
	}
	return 1.0 / 3
}

// eqSelectivity estimates an equality: 1/distinct when a side's distinct
// count is known, the textbook 1/10 otherwise.
func eqSelectivity(c Cmp, child Node) float64 {
	d := 0
	if col, ok := c.L.(Col); ok {
		d = distinctAt(child, col.Index)
	}
	if col, ok := c.R.(Col); ok {
		if d2 := distinctAt(child, col.Index); d2 > d {
			d = d2
		}
	}
	if d > 0 {
		return 1 / float64(d)
	}
	return 0.1
}
