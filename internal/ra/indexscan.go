package ra

import (
	"context"
	"fmt"

	"hippo/internal/schema"
	"hippo/internal/storage"
	"hippo/internal/value"
)

// IndexLookup reads the rows of a table whose indexed columns equal the
// given constant key — the access-path alternative to Scan+Select that
// the engine's optimizer installs for equality predicates covered by an
// existing index. Key expressions are evaluated once at Open (they must
// be row-independent) and are listed in the index's column order.
type IndexLookup struct {
	Table storage.Relation
	Index *storage.Index
	Key   []Expr
	Alias string
}

// Schema matches the equivalent Scan's schema.
func (n *IndexLookup) Schema() schema.Schema {
	q := n.Alias
	if q == "" {
		q = n.Table.Name()
	}
	return n.Table.Schema().WithQualifier(q)
}

// Children returns no inputs.
func (n *IndexLookup) Children() []Node { return nil }

func (n *IndexLookup) String() string {
	return fmt.Sprintf("IndexLookup(%s on cols %v = %s)",
		n.Table.Name(), n.Index.Columns(), ExprsString(n.Key))
}

// Open evaluates the key and streams the matching live rows.
func (n *IndexLookup) Open(ctx context.Context) (Iterator, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	if len(n.Key) != len(n.Index.Columns()) {
		return nil, fmt.Errorf("ra: index lookup key arity %d != index arity %d",
			len(n.Key), len(n.Index.Columns()))
	}
	key := make(value.Tuple, len(n.Key))
	for i, e := range n.Key {
		v, err := e.Eval(nil)
		if err != nil {
			return nil, fmt.Errorf("ra: index lookup key must be constant: %v", err)
		}
		key[i] = v
	}
	// Resolve through the relation so a live table can synchronize the
	// bucket read against concurrent writers (snapshots read directly).
	ids := n.Table.IndexLookup(n.Index, key)
	rows := make([]value.Tuple, 0, len(ids))
	for _, id := range ids {
		if row, ok := n.Table.Row(id); ok {
			rows = append(rows, row)
		}
	}
	return &sliceIter{rows: rows}, nil
}
