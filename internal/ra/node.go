package ra

import (
	"context"
	"fmt"

	"hippo/internal/schema"
	"hippo/internal/storage"
	"hippo/internal/value"
)

// Node is a relational algebra operator producing a stream of tuples.
type Node interface {
	// Schema returns the output schema of the operator.
	Schema() schema.Schema
	// Open starts execution and returns an iterator over the results.
	// The context cancels execution: leaf iterators check it
	// periodically, so a cancelled query stops producing rows within a
	// bounded number of steps anywhere in the tree. Callers that do not
	// need cancellation pass context.Background().
	Open(ctx context.Context) (Iterator, error)
	// Children returns the operator's inputs, left to right.
	Children() []Node
	// String renders a one-line description of this operator (not its
	// subtree); see Format for whole-plan printing.
	String() string
}

// Iterator is a stream of tuples. Implementations are not safe for
// concurrent use.
type Iterator interface {
	// Next returns the next tuple. ok=false signals exhaustion.
	Next() (row value.Tuple, ok bool, err error)
	// Close releases resources. Close is idempotent.
	Close() error
}

// Materialize drains a node into a slice.
func Materialize(ctx context.Context, n Node) ([]value.Tuple, error) {
	it, err := n.Open(ctx)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	var out []value.Tuple
	for {
		row, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, row)
	}
}

// sliceIter iterates over a materialized slice.
type sliceIter struct {
	rows []value.Tuple
	pos  int
}

func (s *sliceIter) Next() (value.Tuple, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, true, nil
}

func (s *sliceIter) Close() error { return nil }

// Scan reads all live rows of a stored relation — a live table or an
// immutable snapshot. Alias qualifies the output columns; if empty, the
// relation name is used.
type Scan struct {
	Table storage.Relation
	Alias string
}

// Schema returns the table schema qualified by the alias.
func (s *Scan) Schema() schema.Schema {
	q := s.Alias
	if q == "" {
		q = s.Table.Name()
	}
	return s.Table.Schema().WithQualifier(q)
}

// Open streams the table's live rows through a storage cursor — no
// materialized copy of the table is ever built.
func (s *Scan) Open(ctx context.Context) (Iterator, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return &scanIter{ctx: ctx, cur: s.Table.Cursor()}, nil
}

// scanIter pulls rows from a storage cursor, checking for cancellation
// every cancelCheckInterval rows.
type scanIter struct {
	ctx context.Context
	cur storage.Cursor
	n   int
}

func (s *scanIter) Next() (value.Tuple, bool, error) {
	if s.n%cancelCheckInterval == 0 {
		if err := s.ctx.Err(); err != nil {
			return nil, false, err
		}
	}
	s.n++
	row, ok := s.cur.Next()
	return row, ok, nil
}

func (s *scanIter) Close() error { return nil }

// Children returns no inputs.
func (s *Scan) Children() []Node { return nil }

func (s *Scan) String() string {
	if s.Alias != "" && s.Alias != s.Table.Name() {
		return fmt.Sprintf("Scan(%s AS %s)", s.Table.Name(), s.Alias)
	}
	return fmt.Sprintf("Scan(%s)", s.Table.Name())
}

// Select filters its child with a predicate (σ).
type Select struct {
	Child Node
	Pred  Expr
}

// Schema returns the child schema.
func (s *Select) Schema() schema.Schema { return s.Child.Schema() }

// Open returns a filtering iterator.
func (s *Select) Open(ctx context.Context) (Iterator, error) {
	it, err := s.Child.Open(ctx)
	if err != nil {
		return nil, err
	}
	return &selectIter{child: it, pred: s.Pred}, nil
}

// Children returns the single input.
func (s *Select) Children() []Node { return []Node{s.Child} }

func (s *Select) String() string { return fmt.Sprintf("Select(%s)", s.Pred) }

type selectIter struct {
	child Iterator
	pred  Expr
}

func (s *selectIter) Next() (value.Tuple, bool, error) {
	for {
		row, ok, err := s.child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		pass, err := EvalPredicate(s.pred, row)
		if err != nil {
			return nil, false, err
		}
		if pass {
			return row, true, nil
		}
	}
}

func (s *selectIter) Close() error { return s.child.Close() }

// Project computes output columns from expressions (π). When Distinct is
// set, duplicate output rows are suppressed.
type Project struct {
	Child    Node
	Exprs    []Expr
	Names    []string // output column names, same length as Exprs
	Distinct bool
}

// Schema infers the output schema from the projection expressions.
func (p *Project) Schema() schema.Schema {
	child := p.Child.Schema()
	cols := make([]schema.Column, len(p.Exprs))
	for i, e := range p.Exprs {
		name := ""
		if i < len(p.Names) {
			name = p.Names[i]
		}
		col := schema.Column{Name: name, Type: inferType(e, child)}
		if c, ok := e.(Col); ok {
			src := child.Columns[c.Index]
			col.Qualifier = src.Qualifier
			if col.Name == "" {
				col.Name = src.Name
			}
		}
		if col.Name == "" {
			col.Name = fmt.Sprintf("col%d", i+1)
		}
		cols[i] = col
	}
	return schema.Schema{Columns: cols}
}

// Open returns the projecting iterator.
func (p *Project) Open(ctx context.Context) (Iterator, error) {
	it, err := p.Child.Open(ctx)
	if err != nil {
		return nil, err
	}
	pi := &projectIter{child: it, exprs: p.Exprs}
	if p.Distinct {
		pi.seen = make(map[string]bool)
	}
	return pi, nil
}

// Children returns the single input.
func (p *Project) Children() []Node { return []Node{p.Child} }

func (p *Project) String() string {
	d := ""
	if p.Distinct {
		d = "Distinct "
	}
	return fmt.Sprintf("Project(%s%s)", d, ExprsString(p.Exprs))
}

type projectIter struct {
	child Iterator
	exprs []Expr
	seen  map[string]bool
}

func (p *projectIter) Next() (value.Tuple, bool, error) {
	for {
		row, ok, err := p.child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		out := make(value.Tuple, len(p.exprs))
		for i, e := range p.exprs {
			v, err := e.Eval(row)
			if err != nil {
				return nil, false, err
			}
			out[i] = v
		}
		if p.seen != nil {
			k := out.Key()
			if p.seen[k] {
				continue
			}
			p.seen[k] = true
		}
		return out, true, nil
	}
}

func (p *projectIter) Close() error { return p.child.Close() }

// inferType computes the static type of e against a child schema.
func inferType(e Expr, s schema.Schema) value.Kind {
	switch t := e.(type) {
	case Col:
		if t.Index >= 0 && t.Index < s.Len() {
			return s.Columns[t.Index].Type
		}
		return value.KindNull
	case Const:
		return t.V.K
	case Cmp, And, Or, Not, IsNull:
		return value.KindBool
	case Arith:
		l := inferType(t.L, s)
		r := inferType(t.R, s)
		if l == value.KindInt && r == value.KindInt && t.Op != Div {
			return value.KindInt
		}
		return value.KindFloat
	default:
		return value.KindNull
	}
}

// Product is the cartesian product (×).
type Product struct{ L, R Node }

// Schema returns the concatenated schemas.
func (p *Product) Schema() schema.Schema { return p.L.Schema().Concat(p.R.Schema()) }

// Open materializes the right input and streams the left.
func (p *Product) Open(ctx context.Context) (Iterator, error) {
	right, err := materializeNoted(ctx, p.R)
	if err != nil {
		return nil, err
	}
	lit, err := p.L.Open(ctx)
	if err != nil {
		return nil, err
	}
	return &productIter{left: lit, right: right, cc: cancelCheck{ctx: ctx}}, nil
}

// Children returns both inputs.
func (p *Product) Children() []Node { return []Node{p.L, p.R} }

func (p *Product) String() string { return "Product" }

type productIter struct {
	left    Iterator
	right   []value.Tuple
	cur     value.Tuple
	haveCur bool
	ri      int
	cc      cancelCheck
}

func (p *productIter) Next() (value.Tuple, bool, error) {
	if err := p.cc.err(); err != nil {
		return nil, false, err
	}
	for {
		if !p.haveCur {
			row, ok, err := p.left.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			p.cur = row
			p.haveCur = true
			p.ri = 0
		}
		if p.ri >= len(p.right) {
			p.haveCur = false
			continue
		}
		out := value.Concat(p.cur, p.right[p.ri])
		p.ri++
		return out, true, nil
	}
}

func (p *productIter) Close() error { return p.left.Close() }
