package ra

import (
	"context"
	"fmt"

	"hippo/internal/schema"
	"hippo/internal/value"
)

// equiPairs extracts the equality conjuncts of pred that compare a pure
// left-side column with a pure right-side column (given the arity split),
// returning the paired column positions (right positions are relative to
// the right input) and the residual predicate combining all remaining
// conjuncts (nil if none).
func equiPairs(pred Expr, leftArity int) (leftCols, rightCols []int, residual Expr) {
	var rest []Expr
	for _, c := range Conjuncts(pred) {
		cmp, ok := c.(Cmp)
		if !ok || cmp.Op != EQ {
			rest = append(rest, c)
			continue
		}
		lc, lok := cmp.L.(Col)
		rc, rok := cmp.R.(Col)
		if !lok || !rok {
			rest = append(rest, c)
			continue
		}
		switch {
		case lc.Index < leftArity && rc.Index >= leftArity:
			leftCols = append(leftCols, lc.Index)
			rightCols = append(rightCols, rc.Index-leftArity)
		case rc.Index < leftArity && lc.Index >= leftArity:
			leftCols = append(leftCols, rc.Index)
			rightCols = append(rightCols, lc.Index-leftArity)
		default:
			rest = append(rest, c)
		}
	}
	return leftCols, rightCols, Conjoin(rest...)
}

// hashPartition builds a hash table over rows keyed by the given columns.
func hashPartition(rows []value.Tuple, cols []int) map[string][]value.Tuple {
	m := make(map[string][]value.Tuple, len(rows))
	for _, r := range rows {
		k := value.KeyOf(r, cols)
		m[k] = append(m[k], r)
	}
	return m
}

// Join combines matching pairs of rows (⋈). Equality conjuncts between the
// two sides are executed with a hash table; remaining conjuncts are
// evaluated as a residual predicate over the concatenated row. A nil
// predicate degenerates to a cartesian product.
type Join struct {
	L, R Node
	Pred Expr
}

// Schema returns the concatenated schemas.
func (j *Join) Schema() schema.Schema { return j.L.Schema().Concat(j.R.Schema()) }

// Children returns both inputs.
func (j *Join) Children() []Node { return []Node{j.L, j.R} }

func (j *Join) String() string { return fmt.Sprintf("Join(%v)", j.Pred) }

// Open executes the join. For equi-joins the hash table is built on the
// side with the smaller estimated cardinality and the other side streams
// as the probe, so the materialized footprint is min(|L|,|R|), not
// whichever side happened to be written second. When estimates are
// unavailable the build side defaults to the right input (the historical
// order). Output rows are always L++R regardless of build side.
func (j *Join) Open(ctx context.Context) (Iterator, error) {
	if j.Pred == nil {
		return (&Product{L: j.L, R: j.R}).Open(ctx)
	}
	leftArity := j.L.Schema().Len()
	lc, rc, residual := equiPairs(j.Pred, leftArity)
	if len(lc) == 0 {
		// No equality columns: nested loop with full predicate, right
		// side materialized.
		right, err := materializeNoted(ctx, j.R)
		if err != nil {
			return nil, err
		}
		lit, err := j.L.Open(ctx)
		if err != nil {
			return nil, err
		}
		return &nestedJoinIter{left: lit, right: right, pred: j.Pred, cc: cancelCheck{ctx: ctx}}, nil
	}
	buildLeft := false
	if el, er := EstimateCard(j.L), EstimateCard(j.R); el >= 0 && er >= 0 && el < er {
		buildLeft = true
	}
	if buildLeft {
		build, err := materializeNoted(ctx, j.L)
		if err != nil {
			return nil, err
		}
		probe, err := j.R.Open(ctx)
		if err != nil {
			return nil, err
		}
		return &hashJoinIter{
			probe:     probe,
			table:     hashPartition(build, lc),
			probeCols: rc,
			residual:  residual,
			buildLeft: true,
			cc:        cancelCheck{ctx: ctx},
		}, nil
	}
	build, err := materializeNoted(ctx, j.R)
	if err != nil {
		return nil, err
	}
	probe, err := j.L.Open(ctx)
	if err != nil {
		return nil, err
	}
	return &hashJoinIter{
		probe:     probe,
		table:     hashPartition(build, rc),
		probeCols: lc,
		residual:  residual,
		cc:        cancelCheck{ctx: ctx},
	}, nil
}

type nestedJoinIter struct {
	left    Iterator
	right   []value.Tuple
	pred    Expr
	cur     value.Tuple
	haveCur bool
	ri      int
	cc      cancelCheck
}

func (it *nestedJoinIter) Next() (value.Tuple, bool, error) {
	for {
		if !it.haveCur {
			row, ok, err := it.left.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			it.cur, it.haveCur, it.ri = row, true, 0
		}
		for it.ri < len(it.right) {
			if err := it.cc.err(); err != nil {
				return nil, false, err
			}
			out := value.Concat(it.cur, it.right[it.ri])
			it.ri++
			pass, err := EvalPredicate(it.pred, out)
			if err != nil {
				return nil, false, err
			}
			if pass {
				return out, true, nil
			}
		}
		it.haveCur = false
	}
}

func (it *nestedJoinIter) Close() error { return it.left.Close() }

// hashJoinIter streams the probe side against a materialized hash table.
// With buildLeft set, the table holds left rows and the probe is the
// right input; emitted rows are still left++right.
type hashJoinIter struct {
	probe     Iterator
	table     map[string][]value.Tuple
	probeCols []int
	residual  Expr
	buildLeft bool
	cur       value.Tuple
	matches   []value.Tuple
	mi        int
	cc        cancelCheck
}

func (it *hashJoinIter) Next() (value.Tuple, bool, error) {
	for {
		for it.mi < len(it.matches) {
			if err := it.cc.err(); err != nil {
				return nil, false, err
			}
			var out value.Tuple
			if it.buildLeft {
				out = value.Concat(it.matches[it.mi], it.cur)
			} else {
				out = value.Concat(it.cur, it.matches[it.mi])
			}
			it.mi++
			if it.residual != nil {
				pass, err := EvalPredicate(it.residual, out)
				if err != nil {
					return nil, false, err
				}
				if !pass {
					continue
				}
			}
			return out, true, nil
		}
		row, ok, err := it.probe.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		it.cur = row
		it.matches = it.table[value.KeyOf(row, it.probeCols)]
		it.mi = 0
	}
}

func (it *hashJoinIter) Close() error { return it.probe.Close() }

// SemiJoin emits left rows that have at least one matching right row (⋉).
// The output schema is the left schema.
type SemiJoin struct {
	L, R Node
	Pred Expr
}

// Schema returns the left schema.
func (j *SemiJoin) Schema() schema.Schema { return j.L.Schema() }

// Children returns both inputs.
func (j *SemiJoin) Children() []Node { return []Node{j.L, j.R} }

func (j *SemiJoin) String() string { return fmt.Sprintf("SemiJoin(%v)", j.Pred) }

// Open executes the semi-join, hash-accelerated when possible.
func (j *SemiJoin) Open(ctx context.Context) (Iterator, error) {
	return openMatchIter(ctx, j.L, j.R, j.Pred, true)
}

// AntiJoin emits left rows that have no matching right row (▷). The output
// schema is the left schema. It implements NOT EXISTS and the
// conflict-filtering step of the query-rewriting baseline.
type AntiJoin struct {
	L, R Node
	Pred Expr
}

// Schema returns the left schema.
func (j *AntiJoin) Schema() schema.Schema { return j.L.Schema() }

// Children returns both inputs.
func (j *AntiJoin) Children() []Node { return []Node{j.L, j.R} }

func (j *AntiJoin) String() string { return fmt.Sprintf("AntiJoin(%v)", j.Pred) }

// Open executes the anti-join, hash-accelerated when possible.
func (j *AntiJoin) Open(ctx context.Context) (Iterator, error) {
	return openMatchIter(ctx, j.L, j.R, j.Pred, false)
}

// openMatchIter drives both semi- and anti-joins: keep left rows whose
// match-existence equals want. The right side is the lookup set and is
// always the materialized one; the left streams.
func openMatchIter(ctx context.Context, l, r Node, pred Expr, want bool) (Iterator, error) {
	leftArity := l.Schema().Len()
	var lc, rc []int
	var residual Expr
	if pred != nil {
		lc, rc, residual = equiPairs(pred, leftArity)
	}
	right, err := materializeNoted(ctx, r)
	if err != nil {
		return nil, err
	}
	lit, err := l.Open(ctx)
	if err != nil {
		return nil, err
	}
	it := &matchIter{left: lit, want: want, residual: pred}
	if len(lc) > 0 {
		it.table = hashPartition(right, rc)
		it.leftCols = lc
		it.residual = residual
	} else {
		it.right = right
	}
	return it, nil
}

type matchIter struct {
	left     Iterator
	want     bool
	right    []value.Tuple // nested-loop mode
	table    map[string][]value.Tuple
	leftCols []int
	residual Expr
}

func (it *matchIter) Next() (value.Tuple, bool, error) {
	for {
		row, ok, err := it.left.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		candidates := it.right
		if it.table != nil {
			candidates = it.table[value.KeyOf(row, it.leftCols)]
		}
		matched := false
		for _, rr := range candidates {
			if it.residual == nil {
				matched = true
				break
			}
			pass, err := EvalPredicate(it.residual, value.Concat(row, rr))
			if err != nil {
				return nil, false, err
			}
			if pass {
				matched = true
				break
			}
		}
		if matched == it.want {
			return row, true, nil
		}
	}
}

func (it *matchIter) Close() error { return it.left.Close() }
