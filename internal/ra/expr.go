// Package ra implements the relational algebra evaluated by the embedded
// engine and manipulated by the Hippo CQA pipeline: Volcano-style operator
// nodes (scan, selection, projection, product, joins, union, difference,
// intersection) plus a scalar expression language with SQL three-valued
// logic.
//
// Hippo's enveloping, prover, and query-rewriting stages all transform
// trees of these nodes, so the node set deliberately mirrors the SJUD
// algebra of the paper, with anti-/semi-joins added for the rewriting
// baseline and NOT EXISTS support.
package ra

import (
	"fmt"
	"strings"

	"hippo/internal/value"
)

// Expr is a scalar expression evaluated against a single row.
type Expr interface {
	// Eval computes the expression over row. SQL NULL propagation applies.
	Eval(row value.Tuple) (value.Value, error)
	// String renders the expression for debugging and plan printing.
	String() string
}

// Col references a column by position. Name is carried for display only.
type Col struct {
	Index int
	Name  string
}

// Eval returns the row's value at the referenced position.
func (c Col) Eval(row value.Tuple) (value.Value, error) {
	if c.Index < 0 || c.Index >= len(row) {
		return value.Null(), fmt.Errorf("ra: column index %d out of range (row arity %d)", c.Index, len(row))
	}
	return row[c.Index], nil
}

func (c Col) String() string {
	if c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("#%d", c.Index)
}

// Const is a literal value.
type Const struct{ V value.Value }

// Eval returns the literal.
func (c Const) Eval(value.Tuple) (value.Value, error) { return c.V, nil }

func (c Const) String() string { return c.V.String() }

// CmpOp enumerates comparison operators.
type CmpOp uint8

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

// String returns the SQL spelling of the operator.
func (op CmpOp) String() string {
	switch op {
	case EQ:
		return "="
	case NE:
		return "<>"
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", uint8(op))
	}
}

// Negate returns the complementary operator (= ↔ <>, < ↔ >=, ...).
func (op CmpOp) Negate() CmpOp {
	switch op {
	case EQ:
		return NE
	case NE:
		return EQ
	case LT:
		return GE
	case LE:
		return GT
	case GT:
		return LE
	default: // GE
		return LT
	}
}

// Flip returns the operator with swapped operands (a < b ↔ b > a).
func (op CmpOp) Flip() CmpOp {
	switch op {
	case LT:
		return GT
	case LE:
		return GE
	case GT:
		return LT
	case GE:
		return LE
	default:
		return op
	}
}

// Cmp compares two sub-expressions. NULL operands yield NULL (unknown).
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// Eval applies three-valued comparison semantics.
func (c Cmp) Eval(row value.Tuple) (value.Value, error) {
	l, err := c.L.Eval(row)
	if err != nil {
		return value.Null(), err
	}
	r, err := c.R.Eval(row)
	if err != nil {
		return value.Null(), err
	}
	if l.IsNull() || r.IsNull() {
		return value.Null(), nil
	}
	if !value.Comparable(l.K, r.K) {
		return value.Null(), fmt.Errorf("ra: cannot compare %s with %s", l.K, r.K)
	}
	o := value.Compare(l, r)
	var res bool
	switch c.Op {
	case EQ:
		res = o == 0
	case NE:
		res = o != 0
	case LT:
		res = o < 0
	case LE:
		res = o <= 0
	case GT:
		res = o > 0
	case GE:
		res = o >= 0
	}
	return value.Bool(res), nil
}

func (c Cmp) String() string {
	return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R)
}

// And is Kleene three-valued conjunction over its operands.
type And struct{ L, R Expr }

// Eval computes L AND R with three-valued logic.
func (a And) Eval(row value.Tuple) (value.Value, error) {
	l, err := evalBool(a.L, row)
	if err != nil {
		return value.Null(), err
	}
	if l.K == value.KindBool && !l.B {
		return value.Bool(false), nil
	}
	r, err := evalBool(a.R, row)
	if err != nil {
		return value.Null(), err
	}
	if r.K == value.KindBool && !r.B {
		return value.Bool(false), nil
	}
	if l.IsNull() || r.IsNull() {
		return value.Null(), nil
	}
	return value.Bool(true), nil
}

func (a And) String() string { return fmt.Sprintf("(%s AND %s)", a.L, a.R) }

// Or is Kleene three-valued disjunction over its operands.
type Or struct{ L, R Expr }

// Eval computes L OR R with three-valued logic.
func (o Or) Eval(row value.Tuple) (value.Value, error) {
	l, err := evalBool(o.L, row)
	if err != nil {
		return value.Null(), err
	}
	if l.K == value.KindBool && l.B {
		return value.Bool(true), nil
	}
	r, err := evalBool(o.R, row)
	if err != nil {
		return value.Null(), err
	}
	if r.K == value.KindBool && r.B {
		return value.Bool(true), nil
	}
	if l.IsNull() || r.IsNull() {
		return value.Null(), nil
	}
	return value.Bool(false), nil
}

func (o Or) String() string { return fmt.Sprintf("(%s OR %s)", o.L, o.R) }

// Not is three-valued negation.
type Not struct{ E Expr }

// Eval computes NOT E; NULL stays NULL.
func (n Not) Eval(row value.Tuple) (value.Value, error) {
	v, err := evalBool(n.E, row)
	if err != nil {
		return value.Null(), err
	}
	if v.IsNull() {
		return value.Null(), nil
	}
	return value.Bool(!v.B), nil
}

func (n Not) String() string { return fmt.Sprintf("NOT (%s)", n.E) }

// IsNull tests a sub-expression for NULL; never returns NULL itself.
type IsNull struct {
	E      Expr
	Negate bool
}

// Eval returns TRUE iff E is (not) NULL.
func (i IsNull) Eval(row value.Tuple) (value.Value, error) {
	v, err := i.E.Eval(row)
	if err != nil {
		return value.Null(), err
	}
	return value.Bool(v.IsNull() != i.Negate), nil
}

func (i IsNull) String() string {
	if i.Negate {
		return fmt.Sprintf("(%s) IS NOT NULL", i.E)
	}
	return fmt.Sprintf("(%s) IS NULL", i.E)
}

// ArithOp enumerates arithmetic operators.
type ArithOp uint8

// Arithmetic operators.
const (
	Add ArithOp = iota
	Sub
	Mul
	Div
	Mod
)

// String returns the SQL spelling of the operator.
func (op ArithOp) String() string {
	switch op {
	case Add:
		return "+"
	case Sub:
		return "-"
	case Mul:
		return "*"
	case Div:
		return "/"
	case Mod:
		return "%"
	default:
		return fmt.Sprintf("ArithOp(%d)", uint8(op))
	}
}

// Arith applies an arithmetic operator to two numeric sub-expressions.
type Arith struct {
	Op   ArithOp
	L, R Expr
}

// Eval computes the operation; NULL operands yield NULL. Integer operands
// keep integer arithmetic except for division by values that do not divide
// evenly, which promotes to FLOAT.
func (a Arith) Eval(row value.Tuple) (value.Value, error) {
	l, err := a.L.Eval(row)
	if err != nil {
		return value.Null(), err
	}
	r, err := a.R.Eval(row)
	if err != nil {
		return value.Null(), err
	}
	if l.IsNull() || r.IsNull() {
		return value.Null(), nil
	}
	if !l.IsNumeric() || !r.IsNumeric() {
		return value.Null(), fmt.Errorf("ra: arithmetic on non-numeric values %s, %s", l.K, r.K)
	}
	if l.K == value.KindInt && r.K == value.KindInt {
		switch a.Op {
		case Add:
			return value.Int(l.I + r.I), nil
		case Sub:
			return value.Int(l.I - r.I), nil
		case Mul:
			return value.Int(l.I * r.I), nil
		case Div:
			if r.I == 0 {
				return value.Null(), fmt.Errorf("ra: division by zero")
			}
			if l.I%r.I == 0 {
				return value.Int(l.I / r.I), nil
			}
			return value.Float(float64(l.I) / float64(r.I)), nil
		case Mod:
			if r.I == 0 {
				return value.Null(), fmt.Errorf("ra: division by zero")
			}
			return value.Int(l.I % r.I), nil
		}
	}
	lf, rf := l.AsFloat(), r.AsFloat()
	switch a.Op {
	case Add:
		return value.Float(lf + rf), nil
	case Sub:
		return value.Float(lf - rf), nil
	case Mul:
		return value.Float(lf * rf), nil
	case Div:
		if rf == 0 {
			return value.Null(), fmt.Errorf("ra: division by zero")
		}
		return value.Float(lf / rf), nil
	case Mod:
		return value.Null(), fmt.Errorf("ra: %% requires integer operands")
	}
	return value.Null(), fmt.Errorf("ra: unknown arithmetic op %d", a.Op)
}

func (a Arith) String() string {
	return fmt.Sprintf("(%s %s %s)", a.L, a.Op, a.R)
}

// evalBool evaluates e and checks the result is BOOL or NULL.
func evalBool(e Expr, row value.Tuple) (value.Value, error) {
	v, err := e.Eval(row)
	if err != nil {
		return value.Null(), err
	}
	if v.IsNull() || v.K == value.KindBool {
		return v, nil
	}
	return value.Null(), fmt.Errorf("ra: expected boolean, got %s in %s", v.K, e)
}

// EvalPredicate evaluates e as a filter predicate: the row passes only if
// the result is TRUE (NULL and FALSE both reject, per SQL WHERE semantics).
func EvalPredicate(e Expr, row value.Tuple) (bool, error) {
	v, err := evalBool(e, row)
	if err != nil {
		return false, err
	}
	return v.K == value.KindBool && v.B, nil
}

// WalkExpr calls fn on e and every sub-expression, pre-order.
func WalkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch t := e.(type) {
	case Cmp:
		WalkExpr(t.L, fn)
		WalkExpr(t.R, fn)
	case And:
		WalkExpr(t.L, fn)
		WalkExpr(t.R, fn)
	case Or:
		WalkExpr(t.L, fn)
		WalkExpr(t.R, fn)
	case Not:
		WalkExpr(t.E, fn)
	case IsNull:
		WalkExpr(t.E, fn)
	case Arith:
		WalkExpr(t.L, fn)
		WalkExpr(t.R, fn)
	}
}

// ColumnsUsed returns the sorted set of column positions referenced by e.
func ColumnsUsed(e Expr) []int {
	seen := map[int]bool{}
	WalkExpr(e, func(x Expr) {
		if c, ok := x.(Col); ok {
			seen[c.Index] = true
		}
	})
	out := make([]int, 0, len(seen))
	for i := range seen {
		out = append(out, i)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// ShiftColumns returns a copy of e with every column index shifted by
// delta. It is used when moving predicates across products.
func ShiftColumns(e Expr, delta int) Expr {
	return MapColumns(e, func(i int) int { return i + delta })
}

// MapColumns returns a copy of e with every column index rewritten by fn.
func MapColumns(e Expr, fn func(int) int) Expr {
	switch t := e.(type) {
	case Col:
		return Col{Index: fn(t.Index), Name: t.Name}
	case Const:
		return t
	case Cmp:
		return Cmp{Op: t.Op, L: MapColumns(t.L, fn), R: MapColumns(t.R, fn)}
	case And:
		return And{L: MapColumns(t.L, fn), R: MapColumns(t.R, fn)}
	case Or:
		return Or{L: MapColumns(t.L, fn), R: MapColumns(t.R, fn)}
	case Not:
		return Not{E: MapColumns(t.E, fn)}
	case IsNull:
		return IsNull{E: MapColumns(t.E, fn), Negate: t.Negate}
	case Arith:
		return Arith{Op: t.Op, L: MapColumns(t.L, fn), R: MapColumns(t.R, fn)}
	default:
		return e
	}
}

// Conjoin combines the given predicates with AND, dropping nils. A nil
// result means "no predicate" (always true).
func Conjoin(preds ...Expr) Expr {
	var out Expr
	for _, p := range preds {
		if p == nil {
			continue
		}
		if out == nil {
			out = p
		} else {
			out = And{L: out, R: p}
		}
	}
	return out
}

// Conjuncts splits a predicate into its top-level AND factors.
func Conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if a, ok := e.(And); ok {
		return append(Conjuncts(a.L), Conjuncts(a.R)...)
	}
	return []Expr{e}
}

// TrueExpr is a predicate that always evaluates to TRUE.
var TrueExpr Expr = Const{V: value.Bool(true)}

// FalseExpr is a predicate that always evaluates to FALSE.
var FalseExpr Expr = Const{V: value.Bool(false)}

// ExprsString renders a list of expressions separated by commas.
func ExprsString(es []Expr) string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = e.String()
	}
	return strings.Join(parts, ", ")
}
