package ra

import (
	"strings"
	"testing"

	"hippo/internal/value"
)

func TestColEval(t *testing.T) {
	row := value.Tuple{value.Int(1), value.Text("x")}
	v, err := Col{Index: 1}.Eval(row)
	if err != nil || v != value.Text("x") {
		t.Errorf("Col eval = %v, %v", v, err)
	}
	if _, err := (Col{Index: 5}).Eval(row); err == nil {
		t.Error("out-of-range column should error")
	}
	if (Col{Index: 2, Name: "a.b"}).String() != "a.b" {
		t.Error("named Col String wrong")
	}
	if (Col{Index: 2}).String() != "#2" {
		t.Error("unnamed Col String wrong")
	}
}

func TestCmpOps(t *testing.T) {
	row := value.Tuple{value.Int(1), value.Int(2)}
	cases := []struct {
		op   CmpOp
		want bool
	}{
		{EQ, false}, {NE, true}, {LT, true}, {LE, true}, {GT, false}, {GE, false},
	}
	for _, c := range cases {
		v, err := Cmp{Op: c.op, L: Col{Index: 0}, R: Col{Index: 1}}.Eval(row)
		if err != nil {
			t.Fatal(err)
		}
		if v.B != c.want {
			t.Errorf("1 %s 2 = %v, want %v", c.op, v.B, c.want)
		}
	}
}

func TestCmpNullAndErrors(t *testing.T) {
	row := value.Tuple{value.Null(), value.Int(2), value.Text("x")}
	v, err := Cmp{Op: EQ, L: Col{Index: 0}, R: Col{Index: 1}}.Eval(row)
	if err != nil || !v.IsNull() {
		t.Errorf("NULL = 2 should be NULL, got %v, %v", v, err)
	}
	if _, err := (Cmp{Op: EQ, L: Col{Index: 1}, R: Col{Index: 2}}).Eval(row); err == nil {
		t.Error("int = text should error")
	}
	// Int/float cross-compare works.
	v, err = Cmp{Op: EQ, L: Const{V: value.Int(1)}, R: Const{V: value.Float(1)}}.Eval(nil)
	if err != nil || !v.B {
		t.Errorf("1 = 1.0 should be true: %v %v", v, err)
	}
}

func TestCmpOpHelpers(t *testing.T) {
	negs := map[CmpOp]CmpOp{EQ: NE, NE: EQ, LT: GE, LE: GT, GT: LE, GE: LT}
	for op, want := range negs {
		if op.Negate() != want {
			t.Errorf("%s.Negate() = %s, want %s", op, op.Negate(), want)
		}
	}
	flips := map[CmpOp]CmpOp{EQ: EQ, NE: NE, LT: GT, LE: GE, GT: LT, GE: LE}
	for op, want := range flips {
		if op.Flip() != want {
			t.Errorf("%s.Flip() = %s, want %s", op, op.Flip(), want)
		}
	}
}

func TestThreeValuedLogic(t *testing.T) {
	T := Const{V: value.Bool(true)}
	F := Const{V: value.Bool(false)}
	N := Const{V: value.Null()}
	evalK := func(e Expr) string {
		v, err := e.Eval(nil)
		if err != nil {
			t.Fatal(err)
		}
		if v.IsNull() {
			return "N"
		}
		if v.B {
			return "T"
		}
		return "F"
	}
	andTable := []struct {
		l, r Expr
		want string
	}{
		{T, T, "T"}, {T, F, "F"}, {F, T, "F"}, {F, F, "F"},
		{T, N, "N"}, {N, T, "N"}, {F, N, "F"}, {N, F, "F"}, {N, N, "N"},
	}
	for _, c := range andTable {
		if got := evalK(And{L: c.l, R: c.r}); got != c.want {
			t.Errorf("AND(%s,%s) = %s, want %s", evalK(c.l), evalK(c.r), got, c.want)
		}
	}
	orTable := []struct {
		l, r Expr
		want string
	}{
		{T, T, "T"}, {T, F, "T"}, {F, T, "T"}, {F, F, "F"},
		{T, N, "T"}, {N, T, "T"}, {F, N, "N"}, {N, F, "N"}, {N, N, "N"},
	}
	for _, c := range orTable {
		if got := evalK(Or{L: c.l, R: c.r}); got != c.want {
			t.Errorf("OR = %s, want %s", got, c.want)
		}
	}
	if evalK(Not{E: T}) != "F" || evalK(Not{E: F}) != "T" || evalK(Not{E: N}) != "N" {
		t.Error("NOT table wrong")
	}
}

func TestIsNull(t *testing.T) {
	row := value.Tuple{value.Null(), value.Int(1)}
	v, _ := IsNull{E: Col{Index: 0}}.Eval(row)
	if !v.B {
		t.Error("IS NULL on null should be true")
	}
	v, _ = IsNull{E: Col{Index: 1}, Negate: true}.Eval(row)
	if !v.B {
		t.Error("IS NOT NULL on 1 should be true")
	}
	if !strings.Contains((IsNull{E: Col{Index: 0}, Negate: true}).String(), "IS NOT NULL") {
		t.Error("IsNull String wrong")
	}
}

func TestArith(t *testing.T) {
	cases := []struct {
		op   ArithOp
		l, r value.Value
		want value.Value
	}{
		{Add, value.Int(2), value.Int(3), value.Int(5)},
		{Sub, value.Int(2), value.Int(3), value.Int(-1)},
		{Mul, value.Int(2), value.Int(3), value.Int(6)},
		{Div, value.Int(6), value.Int(3), value.Int(2)},
		{Div, value.Int(7), value.Int(2), value.Float(3.5)},
		{Mod, value.Int(7), value.Int(2), value.Int(1)},
		{Add, value.Float(1.5), value.Int(1), value.Float(2.5)},
		{Div, value.Float(1), value.Float(2), value.Float(0.5)},
	}
	for _, c := range cases {
		v, err := Arith{Op: c.op, L: Const{V: c.l}, R: Const{V: c.r}}.Eval(nil)
		if err != nil {
			t.Fatalf("%v %s %v: %v", c.l, c.op, c.r, err)
		}
		if v != c.want {
			t.Errorf("%v %s %v = %v, want %v", c.l, c.op, c.r, v, c.want)
		}
	}
	// Errors.
	if _, err := (Arith{Op: Div, L: Const{V: value.Int(1)}, R: Const{V: value.Int(0)}}).Eval(nil); err == nil {
		t.Error("div by zero should error")
	}
	if _, err := (Arith{Op: Mod, L: Const{V: value.Float(1)}, R: Const{V: value.Float(2)}}).Eval(nil); err == nil {
		t.Error("float mod should error")
	}
	if _, err := (Arith{Op: Add, L: Const{V: value.Text("a")}, R: Const{V: value.Int(1)}}).Eval(nil); err == nil {
		t.Error("text arithmetic should error")
	}
	// NULL propagation.
	v, err := Arith{Op: Add, L: Const{V: value.Null()}, R: Const{V: value.Int(1)}}.Eval(nil)
	if err != nil || !v.IsNull() {
		t.Error("NULL + 1 should be NULL")
	}
}

func TestEvalPredicate(t *testing.T) {
	ok, err := EvalPredicate(TrueExpr, nil)
	if err != nil || !ok {
		t.Error("TrueExpr should pass")
	}
	ok, _ = EvalPredicate(FalseExpr, nil)
	if ok {
		t.Error("FalseExpr should reject")
	}
	ok, _ = EvalPredicate(Const{V: value.Null()}, nil)
	if ok {
		t.Error("NULL predicate should reject")
	}
	if _, err := EvalPredicate(Const{V: value.Int(1)}, nil); err == nil {
		t.Error("non-boolean predicate should error")
	}
}

func TestColumnsUsedAndShift(t *testing.T) {
	e := And{
		L: Cmp{Op: EQ, L: Col{Index: 3}, R: Col{Index: 0}},
		R: Or{
			L: Not{E: Cmp{Op: LT, L: Col{Index: 3}, R: Const{V: value.Int(5)}}},
			R: IsNull{E: Arith{Op: Add, L: Col{Index: 1}, R: Const{V: value.Int(1)}}},
		},
	}
	got := ColumnsUsed(e)
	want := []int{0, 1, 3}
	if len(got) != len(want) {
		t.Fatalf("ColumnsUsed = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ColumnsUsed = %v, want %v", got, want)
		}
	}
	shifted := ShiftColumns(e, 10)
	got = ColumnsUsed(shifted)
	want = []int{10, 11, 13}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("shifted ColumnsUsed = %v, want %v", got, want)
		}
	}
}

func TestConjoinConjuncts(t *testing.T) {
	if Conjoin() != nil {
		t.Error("empty Conjoin should be nil")
	}
	a := Cmp{Op: EQ, L: Col{Index: 0}, R: Const{V: value.Int(1)}}
	b := Cmp{Op: GT, L: Col{Index: 1}, R: Const{V: value.Int(2)}}
	c := Conjoin(a, nil, b)
	parts := Conjuncts(c)
	if len(parts) != 2 {
		t.Fatalf("Conjuncts = %d parts", len(parts))
	}
	if Conjoin(a).String() != a.String() {
		t.Error("single Conjoin should be identity")
	}
	if Conjuncts(nil) != nil {
		t.Error("Conjuncts(nil) should be nil")
	}
}

func TestExprStrings(t *testing.T) {
	e := And{
		L: Cmp{Op: NE, L: Col{Index: 0, Name: "e.id"}, R: Const{V: value.Int(1)}},
		R: Not{E: Cmp{Op: LT, L: Col{Index: 1, Name: "e.pay"}, R: Const{V: value.Float(2.5)}}},
	}
	s := e.String()
	for _, frag := range []string{"e.id <> 1", "NOT", "e.pay < 2.5", "AND"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
	if ExprsString([]Expr{Col{Index: 0, Name: "a"}, Const{V: value.Int(2)}}) != "a, 2" {
		t.Error("ExprsString wrong")
	}
}
