package ra

import (
	"context"
	"sync/atomic"

	"hippo/internal/value"
)

// ExecStats collects execution telemetry for one plan run. A caller that
// wants it installs a fresh ExecStats into the context with WithExecStats
// before Open; blocking operators (hash-join builds, product and set-op
// inner sides, sort buffers) report the row counts they hold materialized.
// All methods are safe for concurrent use and tolerate a nil receiver.
type ExecStats struct {
	peak  atomic.Int64
	total atomic.Int64
}

// noteIntermediate records one blocking operator materializing n rows.
func (s *ExecStats) noteIntermediate(n int) {
	if s == nil {
		return
	}
	s.total.Add(int64(n))
	for {
		cur := s.peak.Load()
		if int64(n) <= cur || s.peak.CompareAndSwap(cur, int64(n)) {
			return
		}
	}
}

// PeakIntermediate returns the largest row count any single blocking
// operator held materialized during the run — the per-query intermediate
// memory high-water mark, in rows.
func (s *ExecStats) PeakIntermediate() int64 {
	if s == nil {
		return 0
	}
	return s.peak.Load()
}

// IntermediateRows returns the total rows materialized across all
// blocking operators of the run.
func (s *ExecStats) IntermediateRows() int64 {
	if s == nil {
		return 0
	}
	return s.total.Load()
}

type execStatsKey struct{}

// WithExecStats attaches st to the context; operators opened under it
// report their intermediate materializations there.
func WithExecStats(ctx context.Context, st *ExecStats) context.Context {
	return context.WithValue(ctx, execStatsKey{}, st)
}

// StatsFrom extracts the ExecStats installed by WithExecStats (nil if
// none — the nil receiver is safe to use).
func StatsFrom(ctx context.Context) *ExecStats {
	if ctx == nil {
		return nil
	}
	st, _ := ctx.Value(execStatsKey{}).(*ExecStats)
	return st
}

// cancelCheckInterval is how many rows a leaf iterator produces between
// context-cancellation checks: frequent enough to kill a runaway query
// promptly, cheap enough to vanish in the per-row cost.
const cancelCheckInterval = 256

// cancelCheck rations context checks to one per cancelCheckInterval
// calls. Leaf iterators check ctx as they pull storage rows, but join and
// product iterators can emit thousands of output rows from buffered
// matches per leaf pull — embedding one of these in their Next bounds how
// far a cancelled plan can run past its deadline by output rows too, not
// just input rows.
type cancelCheck struct {
	ctx context.Context
	n   int
}

func (c *cancelCheck) err() error {
	if c.n++; c.n%cancelCheckInterval != 0 {
		return nil
	}
	return c.ctx.Err()
}

// materializeNoted drains a node like Materialize and reports the held
// row count to the context's ExecStats — the shared path for every
// blocking operator's build side.
func materializeNoted(ctx context.Context, n Node) ([]value.Tuple, error) {
	rows, err := Materialize(ctx, n)
	if err != nil {
		return nil, err
	}
	StatsFrom(ctx).noteIntermediate(len(rows))
	return rows, nil
}
