package ra

import (
	"context"
	"errors"
	"testing"

	"hippo/internal/schema"
	"hippo/internal/value"
)

// The streaming engine hands resource ownership down the iterator tree:
// whoever opens an iterator must close it exactly once, including when a
// sibling's Open fails, when Next errors mid-stream, and when the context
// is cancelled. These tests pin that invariant with a counting wrapper
// node spliced into every interesting position of each operator.

var errInjected = errors.New("injected failure")

// leakTracker counts iterator opens and closes across one plan run.
type leakTracker struct {
	opens, closes int
}

func (tr *leakTracker) check(t *testing.T) {
	t.Helper()
	if tr.opens == 0 {
		t.Fatal("plan never opened a tracked iterator")
	}
	if tr.opens != tr.closes {
		t.Fatalf("iterator leak: %d opened, %d closed", tr.opens, tr.closes)
	}
}

// leakNode wraps a child, counting every iterator it hands out. openErr
// makes Open itself fail; failAfter >= 0 makes the iterator error after
// that many Next calls (so failAfter=0 fails on the first pull, which is
// what a build side sees while materializing).
type leakNode struct {
	Child     Node
	tr        *leakTracker
	openErr   error
	failAfter int
}

func wrap(tr *leakTracker, n Node) *leakNode {
	return &leakNode{Child: n, tr: tr, failAfter: -1}
}

func (l *leakNode) Schema() schema.Schema { return l.Child.Schema() }
func (l *leakNode) Children() []Node      { return []Node{l.Child} }
func (l *leakNode) String() string        { return "leak(" + l.Child.String() + ")" }

func (l *leakNode) Open(ctx context.Context) (Iterator, error) {
	if l.openErr != nil {
		return nil, l.openErr
	}
	it, err := l.Child.Open(ctx)
	if err != nil {
		return nil, err
	}
	l.tr.opens++
	return &leakIter{child: it, ctx: ctx, node: l}, nil
}

type leakIter struct {
	child  Iterator
	ctx    context.Context
	node   *leakNode
	n      int
	closed bool
}

func (it *leakIter) Next() (value.Tuple, bool, error) {
	if err := it.ctx.Err(); err != nil {
		return nil, false, err
	}
	if it.node.failAfter >= 0 && it.n >= it.node.failAfter {
		return nil, false, errInjected
	}
	it.n++
	return it.child.Next()
}

func (it *leakIter) Close() error {
	if !it.closed {
		it.closed = true
		it.node.tr.closes++
	}
	return it.child.Close()
}

// leakPlans builds one instance of every operator shape with tracked
// wrappers at each input. The left input has 3 rows, the right 2.
func leakPlans(t *testing.T, tr *leakTracker) map[string]Node {
	t.Helper()
	l := mkTable(t, "l", []string{"a", "b"}, []int64{1, 10}, []int64{2, 20}, []int64{3, 30})
	r := mkTable(t, "r", []string{"a", "c"}, []int64{1, 100}, []int64{2, 200})
	wl := func() Node { return wrap(tr, &Scan{Table: l}) }
	wr := func() Node { return wrap(tr, &Scan{Table: r}) }
	eq := Cmp{Op: EQ, L: Col{Index: 0}, R: Col{Index: 2}}
	lt := Cmp{Op: LT, L: Col{Index: 0}, R: Col{Index: 2}}
	// Set operations need union-compatible inputs: project both to column 0.
	first := func(n Node) Node {
		return &Project{Child: n, Exprs: []Expr{Col{Index: 0}}, Names: []string{"a"}}
	}
	return map[string]Node{
		"select":    &Select{Child: wl(), Pred: Cmp{Op: GE, L: Col{Index: 0}, R: Const{V: value.Int(2)}}},
		"project":   &Project{Child: wl(), Exprs: []Expr{Col{Index: 1}}, Names: []string{"b"}},
		"distinct":  &DistinctNode{Child: wl()},
		"sort":      &Sort{Child: wl(), Keys: []SortKey{{Expr: Col{Index: 0}}}},
		"limit":     &Limit{Child: wl(), N: 2},
		"product":   &Product{L: wl(), R: wr()},
		"hash-join": &Join{L: wl(), R: wr(), Pred: eq},
		"loop-join": &Join{L: wl(), R: wr(), Pred: lt},
		"semijoin":  &SemiJoin{L: wl(), R: wr(), Pred: eq},
		"antijoin":  &AntiJoin{L: wl(), R: wr(), Pred: eq},
		"union":     &Union{L: first(wl()), R: first(wr())},
		"diff":      &Diff{L: first(wl()), R: first(wr())},
		"intersect": &Intersect{L: first(wl()), R: first(wr())},
	}
}

// TestIteratorCloseOnDrain: the happy path closes everything it opened.
func TestIteratorCloseOnDrain(t *testing.T) {
	tr := &leakTracker{}
	for name, plan := range leakPlans(t, tr) {
		if _, err := Materialize(context.Background(), plan); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	tr.check(t)
}

// TestIteratorCloseOnNextError: a mid-stream error from any input still
// leaves every opened iterator closed once the root is closed — the
// contract Materialize and the streaming certifier rely on.
func TestIteratorCloseOnNextError(t *testing.T) {
	// failAt chooses which tracked wrapper (in Open order) fails, and
	// after how many rows; every (operator, input, offset) combination in
	// range is exercised.
	for _, failAt := range []struct{ idx, after int }{
		{0, 0}, {0, 1}, {1, 0}, {1, 1},
	} {
		tr := &leakTracker{}
		for name, plan := range leakPlans(t, tr) {
			var wrappers []*leakNode
			Walk(plan, func(n Node) {
				if ln, ok := n.(*leakNode); ok {
					wrappers = append(wrappers, ln)
				}
			})
			if failAt.idx >= len(wrappers) {
				continue
			}
			for _, w := range wrappers {
				w.failAfter = -1
			}
			wrappers[failAt.idx].failAfter = failAt.after
			if _, err := Materialize(context.Background(), plan); !errors.Is(err, errInjected) {
				t.Fatalf("%s (fail wrapper %d after %d): got err %v, want injected",
					name, failAt.idx, failAt.after, err)
			}
		}
		tr.check(t)
	}
}

// TestIteratorCloseOnOpenError: when one input's Open fails, inputs the
// operator already opened (or fully materialized) are not leaked.
func TestIteratorCloseOnOpenError(t *testing.T) {
	for _, failIdx := range []int{0, 1} {
		tr := &leakTracker{}
		for name, plan := range leakPlans(t, tr) {
			var wrappers []*leakNode
			Walk(plan, func(n Node) {
				if ln, ok := n.(*leakNode); ok {
					wrappers = append(wrappers, ln)
				}
			})
			if failIdx >= len(wrappers) {
				continue
			}
			for _, w := range wrappers {
				w.openErr = nil
			}
			wrappers[failIdx].openErr = errInjected
			if _, err := Materialize(context.Background(), plan); !errors.Is(err, errInjected) {
				t.Fatalf("%s (open-fail wrapper %d): got err %v, want injected", name, failIdx, err)
			}
			for _, w := range wrappers {
				w.openErr = nil
			}
		}
		tr.check(t)
	}
}

// TestIteratorCloseOnCancel: cancelling the context mid-stream surfaces
// the cancellation as a Next error and the tree still closes completely.
func TestIteratorCloseOnCancel(t *testing.T) {
	tr := &leakTracker{}
	for name, plan := range leakPlans(t, tr) {
		ctx, cancel := context.WithCancel(context.Background())
		it, err := plan.Open(ctx)
		if err != nil {
			t.Fatalf("%s: open: %v", name, err)
		}
		// Pull one row if the plan yields any, then cancel and keep pulling
		// until the cancellation propagates.
		_, _, _ = it.Next()
		cancel()
		var lastErr error
		for i := 0; i < 1000; i++ {
			_, ok, err := it.Next()
			if err != nil {
				lastErr = err
				break
			}
			if !ok {
				break
			}
		}
		if lastErr != nil && !errors.Is(lastErr, context.Canceled) {
			t.Fatalf("%s: got err %v, want context.Canceled", name, lastErr)
		}
		if err := it.Close(); err != nil {
			t.Fatalf("%s: close: %v", name, err)
		}
		// Close must be idempotent and not double-count.
		if err := it.Close(); err != nil {
			t.Fatalf("%s: second close: %v", name, err)
		}
	}
	tr.check(t)
}

// TestScanCancellation: a real leaf iterator (storage cursor scan) honors
// cancellation on its own, without a wrapper doing the check.
func TestScanCancellation(t *testing.T) {
	rows := make([][]int64, 600) // > cancelCheckInterval so the check fires
	for i := range rows {
		rows[i] = []int64{int64(i)}
	}
	tb := mkTable(t, "big", []string{"a"}, rows...)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Materialize(ctx, &Scan{Table: tb}); !errors.Is(err, context.Canceled) {
		t.Fatalf("got err %v, want context.Canceled", err)
	}
}
