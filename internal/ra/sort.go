package ra

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"hippo/internal/schema"
	"hippo/internal/value"
)

// SortKey is one ORDER BY key.
type SortKey struct {
	Expr Expr
	Desc bool
}

// Sort orders its child's rows by the given keys (stable).
type Sort struct {
	Child Node
	Keys  []SortKey
}

// Schema returns the child schema.
func (s *Sort) Schema() schema.Schema { return s.Child.Schema() }

// Children returns the single input.
func (s *Sort) Children() []Node { return []Node{s.Child} }

func (s *Sort) String() string {
	parts := make([]string, len(s.Keys))
	for i, k := range s.Keys {
		parts[i] = k.Expr.String()
		if k.Desc {
			parts[i] += " DESC"
		}
	}
	return fmt.Sprintf("Sort(%s)", strings.Join(parts, ", "))
}

// Open materializes, sorts, and streams the rows (sorting is inherently
// blocking; the buffer is reported to the context's ExecStats).
func (s *Sort) Open(ctx context.Context) (Iterator, error) {
	rows, err := materializeNoted(ctx, s.Child)
	if err != nil {
		return nil, err
	}
	keys := make([][]value.Value, len(rows))
	for i, row := range rows {
		ks := make([]value.Value, len(s.Keys))
		for j, k := range s.Keys {
			v, err := k.Expr.Eval(row)
			if err != nil {
				return nil, err
			}
			ks[j] = v
		}
		keys[i] = ks
	}
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		for j, k := range s.Keys {
			c := value.Compare(keys[idx[a]][j], keys[idx[b]][j])
			if k.Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	out := make([]value.Tuple, len(rows))
	for i, j := range idx {
		out[i] = rows[j]
	}
	return &sliceIter{rows: out}, nil
}

// Limit passes through at most N rows of its child.
type Limit struct {
	Child Node
	N     int
}

// Schema returns the child schema.
func (l *Limit) Schema() schema.Schema { return l.Child.Schema() }

// Children returns the single input.
func (l *Limit) Children() []Node { return []Node{l.Child} }

func (l *Limit) String() string { return fmt.Sprintf("Limit(%d)", l.N) }

// Open streams up to N child rows.
func (l *Limit) Open(ctx context.Context) (Iterator, error) {
	it, err := l.Child.Open(ctx)
	if err != nil {
		return nil, err
	}
	return &limitIter{child: it, left: l.N}, nil
}

type limitIter struct {
	child Iterator
	left  int
}

func (l *limitIter) Next() (value.Tuple, bool, error) {
	if l.left <= 0 {
		return nil, false, nil
	}
	row, ok, err := l.child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	l.left--
	return row, true, nil
}

func (l *limitIter) Close() error { return l.child.Close() }
