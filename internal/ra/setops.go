package ra

import (
	"context"
	"fmt"
	"strings"

	"hippo/internal/schema"
	"hippo/internal/value"
)

// Union is set union (∪): duplicates across and within inputs are removed.
// Inputs must be union-compatible; the output schema is the left schema.
type Union struct{ L, R Node }

// Schema returns the left schema.
func (u *Union) Schema() schema.Schema { return u.L.Schema() }

// Children returns both inputs.
func (u *Union) Children() []Node { return []Node{u.L, u.R} }

func (u *Union) String() string { return "Union" }

// Open validates compatibility and streams deduplicated rows, left first.
// Neither input is materialized; the only state is the dedup set over the
// rows already emitted.
func (u *Union) Open(ctx context.Context) (Iterator, error) {
	if err := schema.TypesCompatible(u.L.Schema(), u.R.Schema()); err != nil {
		return nil, fmt.Errorf("ra: union: %v", err)
	}
	lit, err := u.L.Open(ctx)
	if err != nil {
		return nil, err
	}
	return &unionIter{ctx: ctx, cur: lit, next: u.R, seen: map[string]bool{}}, nil
}

// unionIter drains the left iterator, then lazily opens and drains the
// right node, suppressing duplicates across both.
type unionIter struct {
	ctx  context.Context
	cur  Iterator
	next Node // right input, opened when the left is exhausted; nil after
	seen map[string]bool
}

func (it *unionIter) Next() (value.Tuple, bool, error) {
	for {
		row, ok, err := it.cur.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			if it.next == nil {
				return nil, false, nil
			}
			if err := it.cur.Close(); err != nil {
				return nil, false, err
			}
			rit, err := it.next.Open(it.ctx)
			if err != nil {
				// cur stays set (already closed; Close is idempotent).
				return nil, false, err
			}
			it.cur, it.next = rit, nil
			continue
		}
		k := row.Key()
		if it.seen[k] {
			continue
		}
		it.seen[k] = true
		return row, true, nil
	}
}

func (it *unionIter) Close() error { return it.cur.Close() }

// Diff is set difference (−). Inputs must be union-compatible; the output
// schema is the left schema and output rows are deduplicated.
type Diff struct{ L, R Node }

// Schema returns the left schema.
func (d *Diff) Schema() schema.Schema { return d.L.Schema() }

// Children returns both inputs.
func (d *Diff) Children() []Node { return []Node{d.L, d.R} }

func (d *Diff) String() string { return "Diff" }

// Open validates compatibility, materializes the right side into a drop
// set, and streams deduplicated left rows not present in it.
func (d *Diff) Open(ctx context.Context) (Iterator, error) {
	if err := schema.TypesCompatible(d.L.Schema(), d.R.Schema()); err != nil {
		return nil, fmt.Errorf("ra: difference: %v", err)
	}
	right, err := materializeNoted(ctx, d.R)
	if err != nil {
		return nil, err
	}
	drop := make(map[string]bool, len(right))
	for _, r := range right {
		drop[r.Key()] = true
	}
	lit, err := d.L.Open(ctx)
	if err != nil {
		return nil, err
	}
	return &filterKeyIter{child: lit, keys: drop, want: false, seen: map[string]bool{}}, nil
}

// Intersect is set intersection (∩). Inputs must be union-compatible; the
// output schema is the left schema and output rows are deduplicated.
type Intersect struct{ L, R Node }

// Schema returns the left schema.
func (n *Intersect) Schema() schema.Schema { return n.L.Schema() }

// Children returns both inputs.
func (n *Intersect) Children() []Node { return []Node{n.L, n.R} }

func (n *Intersect) String() string { return "Intersect" }

// Open validates compatibility, materializes the right side into a keep
// set, and streams deduplicated left rows present in it.
func (n *Intersect) Open(ctx context.Context) (Iterator, error) {
	if err := schema.TypesCompatible(n.L.Schema(), n.R.Schema()); err != nil {
		return nil, fmt.Errorf("ra: intersect: %v", err)
	}
	right, err := materializeNoted(ctx, n.R)
	if err != nil {
		return nil, err
	}
	keep := make(map[string]bool, len(right))
	for _, r := range right {
		keep[r.Key()] = true
	}
	lit, err := n.L.Open(ctx)
	if err != nil {
		return nil, err
	}
	return &filterKeyIter{child: lit, keys: keep, want: true, seen: map[string]bool{}}, nil
}

// filterKeyIter streams deduplicated child rows whose key membership in
// keys equals want — the shared body of Diff (want=false) and Intersect
// (want=true).
type filterKeyIter struct {
	child Iterator
	keys  map[string]bool
	want  bool
	seen  map[string]bool
}

func (it *filterKeyIter) Next() (value.Tuple, bool, error) {
	for {
		row, ok, err := it.child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		k := row.Key()
		if it.keys[k] != it.want || it.seen[k] {
			continue
		}
		it.seen[k] = true
		return row, true, nil
	}
}

func (it *filterKeyIter) Close() error { return it.child.Close() }

// DistinctNode removes duplicate rows from its child.
type DistinctNode struct{ Child Node }

// Schema returns the child schema.
func (d *DistinctNode) Schema() schema.Schema { return d.Child.Schema() }

// Children returns the single input.
func (d *DistinctNode) Children() []Node { return []Node{d.Child} }

func (d *DistinctNode) String() string { return "Distinct" }

// Open streams deduplicated child rows.
func (d *DistinctNode) Open(ctx context.Context) (Iterator, error) {
	it, err := d.Child.Open(ctx)
	if err != nil {
		return nil, err
	}
	return &distinctIter{child: it, seen: map[string]bool{}}, nil
}

type distinctIter struct {
	child Iterator
	seen  map[string]bool
}

func (d *distinctIter) Next() (value.Tuple, bool, error) {
	for {
		row, ok, err := d.child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		k := row.Key()
		if d.seen[k] {
			continue
		}
		d.seen[k] = true
		return row, true, nil
	}
}

func (d *distinctIter) Close() error { return d.child.Close() }

// Values is a constant relation, used for VALUES lists and testing.
type Values struct {
	Sch  schema.Schema
	Rows []value.Tuple
}

// Schema returns the declared schema.
func (v *Values) Schema() schema.Schema { return v.Sch }

// Children returns no inputs.
func (v *Values) Children() []Node { return nil }

func (v *Values) String() string { return fmt.Sprintf("Values(%d rows)", len(v.Rows)) }

// Open streams the constant rows.
func (v *Values) Open(context.Context) (Iterator, error) { return &sliceIter{rows: v.Rows}, nil }

// Format renders the whole plan tree with indentation.
func Format(n Node) string {
	var b strings.Builder
	var walk func(n Node, depth int)
	walk = func(n Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.String())
		b.WriteByte('\n')
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(n, 0)
	return strings.TrimRight(b.String(), "\n")
}

// Walk calls fn on n and every descendant, pre-order.
func Walk(n Node, fn func(Node)) {
	if n == nil {
		return
	}
	fn(n)
	for _, c := range n.Children() {
		Walk(c, fn)
	}
}
