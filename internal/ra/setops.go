package ra

import (
	"fmt"
	"strings"

	"hippo/internal/schema"
	"hippo/internal/value"
)

// Union is set union (∪): duplicates across and within inputs are removed.
// Inputs must be union-compatible; the output schema is the left schema.
type Union struct{ L, R Node }

// Schema returns the left schema.
func (u *Union) Schema() schema.Schema { return u.L.Schema() }

// Children returns both inputs.
func (u *Union) Children() []Node { return []Node{u.L, u.R} }

func (u *Union) String() string { return "Union" }

// Open validates compatibility and streams deduplicated rows, left first.
func (u *Union) Open() (Iterator, error) {
	if err := schema.TypesCompatible(u.L.Schema(), u.R.Schema()); err != nil {
		return nil, fmt.Errorf("ra: union: %v", err)
	}
	left, err := Materialize(u.L)
	if err != nil {
		return nil, err
	}
	right, err := Materialize(u.R)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool, len(left)+len(right))
	out := make([]value.Tuple, 0, len(left)+len(right))
	for _, rows := range [][]value.Tuple{left, right} {
		for _, r := range rows {
			k := r.Key()
			if !seen[k] {
				seen[k] = true
				out = append(out, r)
			}
		}
	}
	return &sliceIter{rows: out}, nil
}

// Diff is set difference (−). Inputs must be union-compatible; the output
// schema is the left schema and output rows are deduplicated.
type Diff struct{ L, R Node }

// Schema returns the left schema.
func (d *Diff) Schema() schema.Schema { return d.L.Schema() }

// Children returns both inputs.
func (d *Diff) Children() []Node { return []Node{d.L, d.R} }

func (d *Diff) String() string { return "Diff" }

// Open validates compatibility and streams L rows absent from R.
func (d *Diff) Open() (Iterator, error) {
	if err := schema.TypesCompatible(d.L.Schema(), d.R.Schema()); err != nil {
		return nil, fmt.Errorf("ra: difference: %v", err)
	}
	right, err := Materialize(d.R)
	if err != nil {
		return nil, err
	}
	drop := make(map[string]bool, len(right))
	for _, r := range right {
		drop[r.Key()] = true
	}
	left, err := Materialize(d.L)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool, len(left))
	out := make([]value.Tuple, 0, len(left))
	for _, r := range left {
		k := r.Key()
		if drop[k] || seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, r)
	}
	return &sliceIter{rows: out}, nil
}

// Intersect is set intersection (∩). Inputs must be union-compatible; the
// output schema is the left schema and output rows are deduplicated.
type Intersect struct{ L, R Node }

// Schema returns the left schema.
func (n *Intersect) Schema() schema.Schema { return n.L.Schema() }

// Children returns both inputs.
func (n *Intersect) Children() []Node { return []Node{n.L, n.R} }

func (n *Intersect) String() string { return "Intersect" }

// Open validates compatibility and streams L rows present in R.
func (n *Intersect) Open() (Iterator, error) {
	if err := schema.TypesCompatible(n.L.Schema(), n.R.Schema()); err != nil {
		return nil, fmt.Errorf("ra: intersect: %v", err)
	}
	right, err := Materialize(n.R)
	if err != nil {
		return nil, err
	}
	keep := make(map[string]bool, len(right))
	for _, r := range right {
		keep[r.Key()] = true
	}
	left, err := Materialize(n.L)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	out := make([]value.Tuple, 0, len(left))
	for _, r := range left {
		k := r.Key()
		if !keep[k] || seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, r)
	}
	return &sliceIter{rows: out}, nil
}

// DistinctNode removes duplicate rows from its child.
type DistinctNode struct{ Child Node }

// Schema returns the child schema.
func (d *DistinctNode) Schema() schema.Schema { return d.Child.Schema() }

// Children returns the single input.
func (d *DistinctNode) Children() []Node { return []Node{d.Child} }

func (d *DistinctNode) String() string { return "Distinct" }

// Open streams deduplicated child rows.
func (d *DistinctNode) Open() (Iterator, error) {
	it, err := d.Child.Open()
	if err != nil {
		return nil, err
	}
	return &distinctIter{child: it, seen: map[string]bool{}}, nil
}

type distinctIter struct {
	child Iterator
	seen  map[string]bool
}

func (d *distinctIter) Next() (value.Tuple, bool, error) {
	for {
		row, ok, err := d.child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		k := row.Key()
		if d.seen[k] {
			continue
		}
		d.seen[k] = true
		return row, true, nil
	}
}

func (d *distinctIter) Close() error { return d.child.Close() }

// Values is a constant relation, used for VALUES lists and testing.
type Values struct {
	Sch  schema.Schema
	Rows []value.Tuple
}

// Schema returns the declared schema.
func (v *Values) Schema() schema.Schema { return v.Sch }

// Children returns no inputs.
func (v *Values) Children() []Node { return nil }

func (v *Values) String() string { return fmt.Sprintf("Values(%d rows)", len(v.Rows)) }

// Open streams the constant rows.
func (v *Values) Open() (Iterator, error) { return &sliceIter{rows: v.Rows}, nil }

// Format renders the whole plan tree with indentation.
func Format(n Node) string {
	var b strings.Builder
	var walk func(n Node, depth int)
	walk = func(n Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.String())
		b.WriteByte('\n')
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(n, 0)
	return strings.TrimRight(b.String(), "\n")
}

// Walk calls fn on n and every descendant, pre-order.
func Walk(n Node, fn func(Node)) {
	if n == nil {
		return
	}
	fn(n)
	for _, c := range n.Children() {
		Walk(c, fn)
	}
}
