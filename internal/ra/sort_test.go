package ra

import (
	"context"
	"testing"

	"hippo/internal/value"
)

func TestSortBasic(t *testing.T) {
	tb := mkTable(t, "r", []string{"a", "b"},
		[]int64{2, 1}, []int64{1, 2}, []int64{1, 1}, []int64{3, 0})
	n := &Sort{
		Child: &Scan{Table: tb},
		Keys:  []SortKey{{Expr: Col{Index: 0}}, {Expr: Col{Index: 1}, Desc: true}},
	}
	rows, err := Materialize(context.Background(), n)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"(1, 2)", "(1, 1)", "(2, 1)", "(3, 0)"}
	for i, w := range want {
		if value.TupleString(rows[i]) != w {
			t.Fatalf("row %d = %s, want %s (all: %v)", i, value.TupleString(rows[i]), w, rows)
		}
	}
	if n.Schema().Len() != 2 || len(n.Children()) != 1 {
		t.Error("sort metadata wrong")
	}
	if n.String() != "Sort(#0, #1 DESC)" {
		t.Errorf("String = %q", n.String())
	}
}

func TestSortStability(t *testing.T) {
	tb := mkTable(t, "r", []string{"a", "b"},
		[]int64{1, 10}, []int64{1, 20}, []int64{1, 30})
	n := &Sort{Child: &Scan{Table: tb}, Keys: []SortKey{{Expr: Col{Index: 0}}}}
	rows, err := Materialize(context.Background(), n)
	if err != nil {
		t.Fatal(err)
	}
	// Equal keys keep input order.
	if rows[0][1] != value.Int(10) || rows[2][1] != value.Int(30) {
		t.Errorf("sort not stable: %v", rows)
	}
}

func TestSortExpressionError(t *testing.T) {
	tb := mkTable(t, "r", []string{"a"}, []int64{1})
	n := &Sort{
		Child: &Scan{Table: tb},
		Keys:  []SortKey{{Expr: Arith{Op: Div, L: Col{Index: 0}, R: Const{V: value.Int(0)}}}},
	}
	if _, err := Materialize(context.Background(), n); err == nil {
		t.Error("sort key error should propagate")
	}
}

func TestLimit(t *testing.T) {
	tb := mkTable(t, "r", []string{"a"}, []int64{1}, []int64{2}, []int64{3})
	cases := []struct {
		n    int
		want int
	}{{0, 0}, {2, 2}, {3, 3}, {99, 3}}
	for _, c := range cases {
		lim := &Limit{Child: &Scan{Table: tb}, N: c.n}
		rows, err := Materialize(context.Background(), lim)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != c.want {
			t.Errorf("Limit(%d) = %d rows, want %d", c.n, len(rows), c.want)
		}
	}
	lim := &Limit{Child: &Scan{Table: tb}, N: 1}
	if lim.String() != "Limit(1)" || lim.Schema().Len() != 1 || len(lim.Children()) != 1 {
		t.Error("limit metadata wrong")
	}
}

func TestSortWithNulls(t *testing.T) {
	v := &Values{
		Sch: mkTable(t, "tmp", []string{"a"}).Schema(),
		Rows: []value.Tuple{
			{value.Int(2)}, {value.Null()}, {value.Int(1)},
		},
	}
	n := &Sort{Child: v, Keys: []SortKey{{Expr: Col{Index: 0}}}}
	rows, err := Materialize(context.Background(), n)
	if err != nil {
		t.Fatal(err)
	}
	// NULL sorts first under the total order.
	if !rows[0][0].IsNull() || rows[1][0] != value.Int(1) {
		t.Errorf("null ordering: %v", rows)
	}
}
