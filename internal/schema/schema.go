// Package schema defines relation schemas — ordered, typed, optionally
// qualified column lists — and the name-resolution rules shared by the SQL
// planner, the relational-algebra layer, and the Hippo CQA pipeline.
package schema

import (
	"fmt"
	"strings"

	"hippo/internal/value"
)

// Column describes one attribute of a relation. Qualifier carries the table
// name or alias the column originates from; it may be empty for computed
// columns.
type Column struct {
	Qualifier string
	Name      string
	Type      value.Kind
}

// String renders the column as qualifier.name or name.
func (c Column) String() string {
	if c.Qualifier != "" {
		return c.Qualifier + "." + c.Name
	}
	return c.Name
}

// Schema is an ordered list of columns.
type Schema struct {
	Columns []Column
}

// New builds a schema from columns.
func New(cols ...Column) Schema { return Schema{Columns: cols} }

// Len returns the number of columns.
func (s Schema) Len() int { return len(s.Columns) }

// Clone returns a deep copy of the schema.
func (s Schema) Clone() Schema {
	cols := make([]Column, len(s.Columns))
	copy(cols, s.Columns)
	return Schema{Columns: cols}
}

// WithQualifier returns a copy of s with every column's qualifier replaced.
func (s Schema) WithQualifier(q string) Schema {
	out := s.Clone()
	for i := range out.Columns {
		out.Columns[i].Qualifier = q
	}
	return out
}

// Concat returns the concatenation of s and t (as for a cartesian product).
func (s Schema) Concat(t Schema) Schema {
	cols := make([]Column, 0, len(s.Columns)+len(t.Columns))
	cols = append(cols, s.Columns...)
	cols = append(cols, t.Columns...)
	return Schema{Columns: cols}
}

// Project returns the schema of the projection onto the given positions.
func (s Schema) Project(idx []int) Schema {
	cols := make([]Column, len(idx))
	for i, j := range idx {
		cols[i] = s.Columns[j]
	}
	return Schema{Columns: cols}
}

// Resolve finds the position of a (possibly qualified) column reference.
// An empty qualifier matches any column with that name, but it is an error
// if the bare name is ambiguous. A missing column is an error.
func (s Schema) Resolve(qualifier, name string) (int, error) {
	found := -1
	for i, c := range s.Columns {
		if !strings.EqualFold(c.Name, name) {
			continue
		}
		if qualifier != "" && !strings.EqualFold(c.Qualifier, qualifier) {
			continue
		}
		if found >= 0 {
			ref := name
			if qualifier != "" {
				ref = qualifier + "." + name
			}
			return -1, fmt.Errorf("schema: ambiguous column reference %q", ref)
		}
		found = i
	}
	if found < 0 {
		ref := name
		if qualifier != "" {
			ref = qualifier + "." + name
		}
		return -1, fmt.Errorf("schema: unknown column %q", ref)
	}
	return found, nil
}

// TypesCompatible reports whether two schemas are union-compatible: same
// arity and pairwise comparable column types.
func TypesCompatible(a, b Schema) error {
	if a.Len() != b.Len() {
		return fmt.Errorf("schema: arity mismatch %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Columns {
		if !value.Comparable(a.Columns[i].Type, b.Columns[i].Type) {
			return fmt.Errorf("schema: column %d type mismatch %s vs %s",
				i, a.Columns[i].Type, b.Columns[i].Type)
		}
	}
	return nil
}

// String renders the schema as (q.a INT, q.b TEXT, ...).
func (s Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.String())
		b.WriteByte(' ')
		b.WriteString(c.Type.String())
	}
	b.WriteByte(')')
	return b.String()
}

// ParseType maps a SQL type name to a value kind. Common synonyms are
// accepted (INTEGER, BIGINT, DOUBLE, REAL, VARCHAR, STRING, BOOLEAN...).
func ParseType(name string) (value.Kind, error) {
	switch strings.ToUpper(name) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT":
		return value.KindInt, nil
	case "FLOAT", "DOUBLE", "REAL", "NUMERIC", "DECIMAL":
		return value.KindFloat, nil
	case "TEXT", "VARCHAR", "CHAR", "STRING":
		return value.KindText, nil
	case "BOOL", "BOOLEAN":
		return value.KindBool, nil
	default:
		return value.KindNull, fmt.Errorf("schema: unknown type %q", name)
	}
}
