package schema

import (
	"strings"
	"testing"

	"hippo/internal/value"
)

func mk() Schema {
	return New(
		Column{Qualifier: "e", Name: "id", Type: value.KindInt},
		Column{Qualifier: "e", Name: "name", Type: value.KindText},
		Column{Qualifier: "d", Name: "id", Type: value.KindInt},
	)
}

func TestColumnString(t *testing.T) {
	c := Column{Qualifier: "e", Name: "id"}
	if c.String() != "e.id" {
		t.Errorf("got %q", c.String())
	}
	c.Qualifier = ""
	if c.String() != "id" {
		t.Errorf("got %q", c.String())
	}
}

func TestResolve(t *testing.T) {
	s := mk()
	if i, err := s.Resolve("e", "name"); err != nil || i != 1 {
		t.Errorf("Resolve(e.name) = %d, %v", i, err)
	}
	if i, err := s.Resolve("", "name"); err != nil || i != 1 {
		t.Errorf("Resolve(name) = %d, %v", i, err)
	}
	if i, err := s.Resolve("D", "ID"); err != nil || i != 2 {
		t.Errorf("Resolve(D.ID case-insensitive) = %d, %v", i, err)
	}
	if _, err := s.Resolve("", "id"); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("bare id should be ambiguous, got %v", err)
	}
	if _, err := s.Resolve("e", "missing"); err == nil {
		t.Error("missing column should error")
	}
	if _, err := s.Resolve("x", "id"); err == nil {
		t.Error("wrong qualifier should error")
	}
}

func TestCloneAndWithQualifier(t *testing.T) {
	s := mk()
	q := s.WithQualifier("t")
	if q.Columns[0].Qualifier != "t" || s.Columns[0].Qualifier != "e" {
		t.Error("WithQualifier should not mutate the original")
	}
	c := s.Clone()
	c.Columns[0].Name = "zzz"
	if s.Columns[0].Name != "id" {
		t.Error("Clone shares storage")
	}
}

func TestConcatAndProject(t *testing.T) {
	s := mk()
	both := s.Concat(s)
	if both.Len() != 6 {
		t.Errorf("Concat len = %d", both.Len())
	}
	p := s.Project([]int{2, 0})
	if p.Len() != 2 || p.Columns[0].Qualifier != "d" || p.Columns[1].Name != "id" {
		t.Errorf("Project = %v", p)
	}
}

func TestTypesCompatible(t *testing.T) {
	a := New(Column{Name: "x", Type: value.KindInt})
	b := New(Column{Name: "y", Type: value.KindFloat})
	if err := TypesCompatible(a, b); err != nil {
		t.Errorf("int/float should be compatible: %v", err)
	}
	c := New(Column{Name: "z", Type: value.KindText})
	if err := TypesCompatible(a, c); err == nil {
		t.Error("int/text should be incompatible")
	}
	d := New()
	if err := TypesCompatible(a, d); err == nil {
		t.Error("arity mismatch should be incompatible")
	}
}

func TestSchemaString(t *testing.T) {
	s := New(Column{Qualifier: "t", Name: "a", Type: value.KindInt},
		Column{Name: "b", Type: value.KindText})
	want := "(t.a INT, b TEXT)"
	if got := s.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestParseType(t *testing.T) {
	ok := map[string]value.Kind{
		"int": value.KindInt, "INTEGER": value.KindInt, "BigInt": value.KindInt,
		"float": value.KindFloat, "DOUBLE": value.KindFloat, "real": value.KindFloat,
		"text": value.KindText, "VARCHAR": value.KindText, "string": value.KindText,
		"bool": value.KindBool, "BOOLEAN": value.KindBool,
	}
	for name, want := range ok {
		got, err := ParseType(name)
		if err != nil || got != want {
			t.Errorf("ParseType(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseType("blob"); err == nil {
		t.Error("ParseType(blob) should fail")
	}
}
