package aggregate

import (
	"fmt"
	"sort"

	"hippo/internal/engine"
	"hippo/internal/ra"
	"hippo/internal/value"
)

// GroupedQuery describes a grouped aggregation: one range-consistent
// answer per distinct value of the grouping columns.
type GroupedQuery struct {
	Query
	// GroupBy lists grouping columns of Rel.
	GroupBy []string
}

// GroupResult pairs one grouping key with its aggregate range. MayBeEmpty
// inside Range reports that some repair has no qualifying tuples for this
// key at all (the group can vanish).
type GroupResult struct {
	Key   value.Tuple
	Range Range
}

// ConsistentGrouped computes range-consistent answers per group. A group
// appears in the output when at least one tuple of the original database
// carries its key and passes the filter; per-group bounds then follow the
// same single-FD decomposition as Consistent. The per-group choices of
// different groups may interact through shared FD clusters, but each
// group's own bound is individually tight: extremizing one group fixes
// only the partition choices of clusters that touch it.
func ConsistentGrouped(db *engine.DB, q GroupedQuery) ([]GroupResult, error) {
	if len(q.GroupBy) == 0 {
		return nil, fmt.Errorf("aggregate: ConsistentGrouped requires grouping columns")
	}
	t, err := db.Table(q.Rel)
	if err != nil {
		return nil, err
	}
	sch := t.Schema()
	gcols, err := resolveCols(sch, q.GroupBy)
	if err != nil {
		return nil, err
	}
	var pred ra.Expr
	if q.Where != "" {
		parsed, err := parseWhere(q.Rel, q.Where)
		if err != nil {
			return nil, err
		}
		pred, err = engine.PlanScalar(parsed, sch)
		if err != nil {
			return nil, err
		}
	}

	// Collect the distinct grouping keys among qualifying tuples.
	keys := map[string]value.Tuple{}
	keyOrder := []string{}
	err = scanQualifying(t, pred, func(row value.Tuple) {
		k := value.Project(row, gcols)
		ks := k.Key()
		if _, ok := keys[ks]; !ok {
			keys[ks] = k.Clone()
			keyOrder = append(keyOrder, ks)
		}
	})
	if err != nil {
		return nil, err
	}

	out := make([]GroupResult, 0, len(keys))
	for _, ks := range keyOrder {
		key := keys[ks]
		// Per-group bound = ungrouped bound with "G = key" added to the
		// filter; group selection composes with the user's predicate.
		gpred := groupPredicate(gcols, key)
		combined := ra.Conjoin(pred, gpred)
		lhs, err := resolveCols(sch, q.FD.LHS)
		if err != nil {
			return nil, err
		}
		rhs, err := resolveCols(sch, q.FD.RHS)
		if err != nil {
			return nil, err
		}
		attrIdx := -1
		if q.Fn != Count {
			attrIdx, err = sch.Resolve("", q.Attr)
			if err != nil {
				return nil, err
			}
		}
		groups, err := partition(t, lhs, rhs, attrIdx, combined)
		if err != nil {
			return nil, err
		}
		var r Range
		switch q.Fn {
		case Count:
			r = rangeCount(groups)
		case Sum:
			r = rangeSum(groups)
		case Min:
			r = rangeMinMax(groups, true)
		default:
			r = rangeMinMax(groups, false)
		}
		out = append(out, GroupResult{Key: key, Range: r})
	}
	sort.Slice(out, func(i, j int) bool {
		return value.CompareTuples(out[i].Key, out[j].Key) < 0
	})
	return out, nil
}

// groupPredicate builds "col1 = k1 AND col2 = k2 ..." (IS NULL for NULL
// key components).
func groupPredicate(cols []int, key value.Tuple) ra.Expr {
	var pred ra.Expr
	for i, c := range cols {
		var conj ra.Expr
		if key[i].IsNull() {
			conj = ra.IsNull{E: ra.Col{Index: c}}
		} else {
			conj = ra.Cmp{Op: ra.EQ, L: ra.Col{Index: c}, R: ra.Const{V: key[i]}}
		}
		pred = ra.Conjoin(pred, conj)
	}
	return pred
}
