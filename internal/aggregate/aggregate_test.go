package aggregate

import (
	"fmt"
	"math/rand"
	"testing"

	"hippo/internal/conflict"
	"hippo/internal/constraint"
	"hippo/internal/engine"
	"hippo/internal/repair"
	"hippo/internal/value"
)

func fd() constraint.FD {
	return constraint.FD{Rel: "r", LHS: []string{"k"}, RHS: []string{"v"}}
}

func newDB(t *testing.T, rows string) *engine.DB {
	t.Helper()
	db := engine.New()
	mustExec(db, "CREATE TABLE r (k INT, v INT, w INT)")
	if rows != "" {
		mustExec(db, "INSERT INTO r VALUES "+rows)
	}
	return db
}

func run(t *testing.T, db *engine.DB, fn Func, attr, where string) Range {
	t.Helper()
	r, err := Consistent(db, Query{Rel: "r", Fn: fn, Attr: attr, Where: where, FD: fd()})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestCountRange(t *testing.T) {
	// Group k=1 has partitions {v=1: 2 tuples}, {v=2: 1 tuple};
	// k=2 is clean with 1 tuple.
	db := newDB(t, "(1,1,10), (1,1,11), (1,2,12), (2,5,13)")
	r := run(t, db, Count, "", "")
	if r.Lower != value.Int(2) || r.Upper != value.Int(3) || r.MayBeEmpty {
		t.Errorf("count range = %v", r)
	}
}

func TestSumRange(t *testing.T) {
	db := newDB(t, "(1,1,10), (1,2,20), (2,5,5)")
	// Repairs: keep (1,1) or (1,2); w sums: 10+5=15 or 20+5=25.
	r := run(t, db, Sum, "w", "")
	if r.Lower != value.Int(15) || r.Upper != value.Int(25) {
		t.Errorf("sum range = %v", r)
	}
}

func TestMinMaxRange(t *testing.T) {
	db := newDB(t, "(1,1,10), (1,2,20), (2,5,5)")
	// MIN(w): repairs give min(10,5)=5 or min(20,5)=5 → [5,5].
	r := run(t, db, Min, "w", "")
	if r.Lower != value.Int(5) || r.Upper != value.Int(5) {
		t.Errorf("min range = %v", r)
	}
	// MAX(w): 10 or 20 both > 5 → [10,20].
	r = run(t, db, Max, "w", "")
	if r.Lower != value.Int(10) || r.Upper != value.Int(20) {
		t.Errorf("max range = %v", r)
	}
}

func TestRangeWithFilter(t *testing.T) {
	db := newDB(t, "(1,1,10), (1,2,20), (2,5,30)")
	// Filter w > 15: partition (1,v=1) has no qualifying tuples → the
	// group can escape; MIN over qualifying: repairs {20,30} or {30}.
	r := run(t, db, Min, "w", "w > 15")
	if r.Lower != value.Int(20) || r.Upper != value.Int(30) || r.MayBeEmpty {
		t.Errorf("filtered min = %v", r)
	}
	// COUNT with the same filter: 1 or 2 qualifying rows.
	r = run(t, db, Count, "", "w > 15")
	if r.Lower != value.Int(1) || r.Upper != value.Int(2) {
		t.Errorf("filtered count = %v", r)
	}
}

func TestEmptyAndMayBeEmpty(t *testing.T) {
	db := newDB(t, "")
	r := run(t, db, Count, "", "")
	if r.Lower != value.Int(0) || !r.MayBeEmpty {
		t.Errorf("empty count = %v", r)
	}
	r = run(t, db, Min, "w", "")
	if !r.Lower.IsNull() || !r.MayBeEmpty {
		t.Errorf("empty min = %v", r)
	}
	// All qualifying tuples can vanish: k=1 group has one partition
	// qualifying, one not.
	db = newDB(t, "(1,1,10), (1,2,99)")
	r = run(t, db, Min, "w", "w < 50")
	if !r.MayBeEmpty {
		t.Errorf("min should be possibly-empty: %v", r)
	}
	if r.Lower != value.Int(10) || r.Upper != value.Int(10) {
		t.Errorf("min over defined repairs = %v", r)
	}
}

func TestNullsAreSkipped(t *testing.T) {
	db := newDB(t, "(1,1,NULL), (1,2,20), (2,5,5)")
	// Partition (1,v=1) has only a NULL w → contributes nothing to MIN.
	r := run(t, db, Min, "w", "")
	if r.Lower != value.Int(5) || r.Upper != value.Int(5) {
		t.Errorf("min with nulls = %v", r)
	}
	if !r.MayBeEmpty == false { // k=2 always contributes
		t.Errorf("mayBeEmpty = %v", r.MayBeEmpty)
	}
}

func TestValidationErrors(t *testing.T) {
	db := newDB(t, "(1,1,1)")
	if _, err := Consistent(db, Query{Rel: "zzz", Fn: Count, FD: constraint.FD{Rel: "zzz", LHS: []string{"k"}, RHS: []string{"v"}}}); err == nil {
		t.Error("unknown relation should fail")
	}
	if _, err := Consistent(db, Query{Rel: "r", Fn: Count, FD: constraint.FD{Rel: "other", LHS: []string{"k"}, RHS: []string{"v"}}}); err == nil {
		t.Error("FD on different relation should fail")
	}
	if _, err := Consistent(db, Query{Rel: "r", Fn: Min, Attr: "zzz", FD: fd()}); err == nil {
		t.Error("unknown attribute should fail")
	}
	mustExec(db, "CREATE TABLE s (k INT, v INT, name TEXT)")
	if _, err := Consistent(db, Query{Rel: "s", Fn: Min, Attr: "name",
		FD: constraint.FD{Rel: "s", LHS: []string{"k"}, RHS: []string{"v"}}}); err == nil {
		t.Error("non-numeric attribute should fail")
	}
	if _, err := Consistent(db, Query{Rel: "r", Fn: Count, Where: "???", FD: fd()}); err == nil {
		t.Error("bad WHERE should fail")
	}
	if Count.String() != "COUNT" || Sum.String() != "SUM" || Min.String() != "MIN" || Max.String() != "MAX" {
		t.Error("Func names wrong")
	}
}

// oracleRange brute-forces the aggregate over every repair.
func oracleRange(t *testing.T, db *engine.DB, fn Func, attr, where string) Range {
	t.Helper()
	h, _, _, err := conflict.NewDetector(db).Detect([]constraint.Constraint{fd()})
	if err != nil {
		t.Fatal(err)
	}
	repairs, err := (&repair.Enumerator{DB: db, H: h}).Materialize()
	if err != nil {
		t.Fatal(err)
	}
	var (
		out      Range
		haveVal  bool
		anyEmpty bool
	)
	for _, r := range repairs {
		sql := "SELECT * FROM r"
		if where != "" {
			sql += " WHERE " + where
		}
		res, err := r.Query(sql)
		if err != nil {
			t.Fatal(err)
		}
		attrPos := 2 // column w
		var vals []float64
		for _, row := range res.Rows {
			if fn == Count {
				vals = append(vals, 0) // placeholder; count uses len
				continue
			}
			if row[attrPos].IsNull() {
				continue
			}
			vals = append(vals, row[attrPos].AsFloat())
		}
		var v float64
		defined := true
		switch fn {
		case Count:
			v = float64(len(res.Rows))
		case Sum:
			for _, x := range vals {
				v += x
			}
		case Min, Max:
			if len(vals) == 0 {
				defined = false
				anyEmpty = true
				break
			}
			v = vals[0]
			for _, x := range vals[1:] {
				if (fn == Min && x < v) || (fn == Max && x > v) {
					v = x
				}
			}
		}
		if fn == Count || fn == Sum {
			if len(vals) == 0 && fn != Count && len(res.Rows) == 0 {
				anyEmpty = true
			}
			if len(res.Rows) == 0 {
				anyEmpty = true
			}
		}
		if !defined {
			continue
		}
		if !haveVal {
			out.Lower, out.Upper = value.Float(v), value.Float(v)
			haveVal = true
			continue
		}
		if v < out.Lower.AsFloat() {
			out.Lower = value.Float(v)
		}
		if v > out.Upper.AsFloat() {
			out.Upper = value.Float(v)
		}
	}
	if !haveVal {
		out.Lower, out.Upper = value.Null(), value.Null()
	}
	out.MayBeEmpty = anyEmpty
	return out
}

// TestRandomizedAgainstOracle checks all four aggregates against the
// brute-force repair oracle on randomized instances, with and without
// filters.
func TestRandomizedAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	wheres := []string{"", "w > 5", "w < 4"}
	for trial := 0; trial < 40; trial++ {
		db := engine.New()
		mustExec(db, "CREATE TABLE r (k INT, v INT, w INT)")
		seen := map[string]bool{}
		n := 4 + rng.Intn(6)
		for len(seen) < n {
			k, v, w := rng.Intn(3), rng.Intn(3), rng.Intn(10)
			key := fmt.Sprintf("%d|%d|%d", k, v, w)
			if seen[key] {
				continue
			}
			seen[key] = true
			mustExec(db, fmt.Sprintf("INSERT INTO r VALUES (%d, %d, %d)", k, v, w))
		}
		for _, fn := range []Func{Count, Sum, Min, Max} {
			for _, where := range wheres {
				got, err := Consistent(db, Query{Rel: "r", Fn: fn, Attr: "w", Where: where, FD: fd()})
				if err != nil {
					t.Fatalf("trial %d %s where=%q: %v", trial, fn, where, err)
				}
				want := oracleRange(t, db, fn, "w", where)
				if !sameBound(got.Lower, want.Lower) || !sameBound(got.Upper, want.Upper) {
					t.Errorf("trial %d %s(w) where=%q: got %v, oracle %v",
						trial, fn, where, got, want)
				}
				// MIN/MAX emptiness must agree with the oracle exactly; for
				// COUNT/SUM the oracle flags zero-row repairs the same way.
				if got.MayBeEmpty != want.MayBeEmpty {
					t.Errorf("trial %d %s(w) where=%q: MayBeEmpty got %v, oracle %v",
						trial, fn, where, got.MayBeEmpty, want.MayBeEmpty)
				}
			}
		}
	}
}

func sameBound(a, b value.Value) bool {
	if a.IsNull() || b.IsNull() {
		return a.IsNull() == b.IsNull()
	}
	return a.AsFloat() == b.AsFloat()
}
