package aggregate

import (
	"fmt"
	"math/rand"
	"testing"

	"hippo/internal/conflict"
	"hippo/internal/constraint"
	"hippo/internal/engine"
	"hippo/internal/repair"
	"hippo/internal/value"
)

// fixture: readings(probe, reading, site) with FD probe -> reading; site
// is the grouping column.
func groupedDB(t *testing.T) *engine.DB {
	t.Helper()
	db := engine.New()
	mustExec(db, "CREATE TABLE m (probe INT, reading INT, site INT)")
	mustExec(db, `INSERT INTO m VALUES
		(1, 10, 100),
		(1, 20, 100),
		(2, 5, 100),
		(3, 7, 200),
		(4, 9, 200), (4, 11, 200)`)
	return db
}

func groupedFD() constraint.FD {
	return constraint.FD{Rel: "m", LHS: []string{"probe"}, RHS: []string{"reading"}}
}

func TestConsistentGroupedSum(t *testing.T) {
	db := groupedDB(t)
	res, err := ConsistentGrouped(db, GroupedQuery{
		Query:   Query{Rel: "m", Fn: Sum, Attr: "reading", FD: groupedFD()},
		GroupBy: []string{"site"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("groups = %v", res)
	}
	// site 100: probe1 ∈ {10,20}, probe2 = 5 → SUM ∈ [15, 25].
	g0 := res[0]
	if g0.Key[0] != value.Int(100) || g0.Range.Lower != value.Int(15) || g0.Range.Upper != value.Int(25) {
		t.Errorf("site 100 = %v %v", g0.Key, g0.Range)
	}
	// site 200: probe3 = 7, probe4 ∈ {9,11} → SUM ∈ [16, 18].
	g1 := res[1]
	if g1.Key[0] != value.Int(200) || g1.Range.Lower != value.Int(16) || g1.Range.Upper != value.Int(18) {
		t.Errorf("site 200 = %v %v", g1.Key, g1.Range)
	}
}

func TestConsistentGroupedCountWithFilter(t *testing.T) {
	db := groupedDB(t)
	res, err := ConsistentGrouped(db, GroupedQuery{
		Query:   Query{Rel: "m", Fn: Count, Where: "reading >= 10", FD: groupedFD()},
		GroupBy: []string{"site"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// site 100: probe1's both variants ≥ 10 → count 1 always; probe2 never.
	// site 200: probe4 has variants 9 and 11 → count ∈ [0, 1].
	if len(res) != 2 {
		t.Fatalf("groups = %v", res)
	}
	if res[0].Range.Lower != value.Int(1) || res[0].Range.Upper != value.Int(1) {
		t.Errorf("site 100 count = %v", res[0].Range)
	}
	if res[1].Range.Lower != value.Int(0) || res[1].Range.Upper != value.Int(1) {
		t.Errorf("site 200 count = %v", res[1].Range)
	}
	if !res[1].Range.MayBeEmpty {
		t.Error("site 200 may lose all qualifying rows")
	}
}

func TestConsistentGroupedValidation(t *testing.T) {
	db := groupedDB(t)
	if _, err := ConsistentGrouped(db, GroupedQuery{
		Query: Query{Rel: "m", Fn: Sum, Attr: "reading", FD: groupedFD()},
	}); err == nil {
		t.Error("missing GroupBy should fail")
	}
	if _, err := ConsistentGrouped(db, GroupedQuery{
		Query:   Query{Rel: "m", Fn: Sum, Attr: "reading", FD: groupedFD()},
		GroupBy: []string{"zzz"},
	}); err == nil {
		t.Error("unknown group column should fail")
	}
	if _, err := ConsistentGrouped(db, GroupedQuery{
		Query:   Query{Rel: "m", Fn: Sum, Attr: "reading", Where: "???", FD: groupedFD()},
		GroupBy: []string{"site"},
	}); err == nil {
		t.Error("bad WHERE should fail")
	}
}

// Randomized oracle check: per-group bounds match brute force over all
// repairs.
func TestGroupedRandomizedAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		db := engine.New()
		mustExec(db, "CREATE TABLE m (probe INT, reading INT, site INT)")
		seen := map[string]bool{}
		n := 5 + rng.Intn(5)
		for len(seen) < n {
			p, r, s := rng.Intn(3), rng.Intn(5), rng.Intn(2)
			key := fmt.Sprintf("%d|%d|%d", p, r, s)
			if seen[key] {
				continue
			}
			seen[key] = true
			mustExec(db, fmt.Sprintf("INSERT INTO m VALUES (%d, %d, %d)", p, r, s))
		}
		for _, fn := range []Func{Count, Sum, Min, Max} {
			got, err := ConsistentGrouped(db, GroupedQuery{
				Query:   Query{Rel: "m", Fn: fn, Attr: "reading", FD: groupedFD()},
				GroupBy: []string{"site"},
			})
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, fn, err)
			}
			want := groupedOracle(t, db, fn)
			for _, g := range got {
				site := g.Key[0].I
				w, ok := want[site]
				if !ok {
					t.Errorf("trial %d %s: unexpected group %d", trial, fn, site)
					continue
				}
				if !sameBound(g.Range.Lower, w.Lower) || !sameBound(g.Range.Upper, w.Upper) {
					t.Errorf("trial %d %s site=%d: got %v, oracle %v",
						trial, fn, site, g.Range, w)
				}
			}
		}
	}
}

// groupedOracle brute-forces per-site aggregate bounds over all repairs.
func groupedOracle(t *testing.T, db *engine.DB, fn Func) map[int64]Range {
	t.Helper()
	h, _, _, err := conflict.NewDetector(db).Detect([]constraint.Constraint{groupedFD()})
	if err != nil {
		t.Fatal(err)
	}
	repairs, err := (&repair.Enumerator{DB: db, H: h}).Materialize()
	if err != nil {
		t.Fatal(err)
	}
	// All sites present in the original database; COUNT/SUM treat a
	// repair without the site as 0 (the implementation's documented
	// convention), MIN/MAX skip such repairs.
	orig, err := db.Query("SELECT * FROM m")
	if err != nil {
		t.Fatal(err)
	}
	allSites := map[int64]bool{}
	for _, row := range orig.Rows {
		allSites[row[2].I] = true
	}
	acc := map[int64]*Range{}
	for _, r := range repairs {
		res, err := r.Query("SELECT * FROM m")
		if err != nil {
			t.Fatal(err)
		}
		bySite := map[int64][]float64{}
		for _, row := range res.Rows {
			bySite[row[2].I] = append(bySite[row[2].I], row[1].AsFloat())
		}
		for site := range allSites {
			vals := bySite[site]
			var v float64
			switch fn {
			case Count:
				v = float64(len(vals))
			case Sum:
				for _, x := range vals {
					v += x
				}
			case Min, Max:
				if len(vals) == 0 {
					continue // aggregate undefined in this repair
				}
				v = vals[0]
				for _, x := range vals {
					if (fn == Min && x < v) || (fn == Max && x > v) {
						v = x
					}
				}
			}
			cur, ok := acc[site]
			if !ok {
				acc[site] = &Range{Lower: value.Float(v), Upper: value.Float(v)}
				continue
			}
			if v < cur.Lower.AsFloat() {
				cur.Lower = value.Float(v)
			}
			if v > cur.Upper.AsFloat() {
				cur.Upper = value.Float(v)
			}
		}
	}
	out := map[int64]Range{}
	for site, r := range acc {
		out[site] = *r
	}
	return out
}
