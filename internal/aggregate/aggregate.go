// Package aggregate implements range-consistent answers to scalar
// aggregation queries over inconsistent databases, following the
// framework of the paper's reference [3] (Arenas, Bertossi, Chomicki, He,
// Raghavan & Spinrad, "Scalar Aggregation in Inconsistent Databases",
// TCS 296(3), 2003): since an aggregate generally has a different value
// in each repair, the consistent answer is the tightest interval
// [glb, lub] containing the aggregate's value over every repair.
//
// The implementation covers MIN, MAX, SUM, and COUNT over one relation
// with a single functional dependency X → Y and an optional selection
// predicate. Under one FD the repairs factor into independent per-group
// choices — each X-group keeps exactly one of its Y-partitions — which
// makes all four bounds computable in a single scan (the polynomial cases
// of [3]); AVG, shown harder in [3], is intentionally not offered.
package aggregate

import (
	"fmt"
	"strings"

	"hippo/internal/constraint"
	"hippo/internal/engine"
	"hippo/internal/ra"
	"hippo/internal/schema"
	"hippo/internal/sqlparse"
	"hippo/internal/storage"
	"hippo/internal/value"
)

// Func enumerates the supported aggregate functions.
type Func int

// Supported aggregates.
const (
	Count Func = iota // COUNT(*) over qualifying tuples
	Sum
	Min
	Max
)

// String returns the SQL name of the function.
func (f Func) String() string {
	switch f {
	case Count:
		return "COUNT"
	case Sum:
		return "SUM"
	case Min:
		return "MIN"
	default:
		return "MAX"
	}
}

// Range is a range-consistent answer: the aggregate's value lies in
// [Lower, Upper] in every repair where it is defined.
//
// MayBeEmpty reports that some repair has no qualifying tuples at all; in
// such repairs MIN/MAX are undefined (SQL NULL) and SUM/COUNT are 0 (this
// implementation's convention, noted in DESIGN.md). For MIN/MAX the
// bounds then range over the repairs where the aggregate is defined.
type Range struct {
	Lower      value.Value
	Upper      value.Value
	MayBeEmpty bool
}

// String renders the range as [lo, hi].
func (r Range) String() string {
	s := fmt.Sprintf("[%s, %s]", r.Lower, r.Upper)
	if r.MayBeEmpty {
		s += " (may be empty)"
	}
	return s
}

// Query describes one aggregation request.
type Query struct {
	Rel  string
	Fn   Func
	Attr string // aggregated column; ignored for COUNT
	// Where optionally filters tuples first (SQL expression over the
	// relation's columns, e.g. "salary > 100").
	Where string
	// FD is the functional dependency inducing the conflicts. Its
	// relation must equal Rel, and it must be the only constraint
	// considered — the decomposition is specific to a single FD.
	FD constraint.FD
}

// Consistent computes the range-consistent answer to q over db.
func Consistent(db *engine.DB, q Query) (Range, error) {
	if !strings.EqualFold(q.FD.Rel, q.Rel) {
		return Range{}, fmt.Errorf("aggregate: FD is on %q, query on %q", q.FD.Rel, q.Rel)
	}
	t, err := db.Table(q.Rel)
	if err != nil {
		return Range{}, err
	}
	sch := t.Schema()
	lhs, err := resolveCols(sch, q.FD.LHS)
	if err != nil {
		return Range{}, err
	}
	rhs, err := resolveCols(sch, q.FD.RHS)
	if err != nil {
		return Range{}, err
	}
	attrIdx := -1
	if q.Fn != Count {
		attrIdx, err = sch.Resolve("", q.Attr)
		if err != nil {
			return Range{}, err
		}
		kind := sch.Columns[attrIdx].Type
		if kind != value.KindInt && kind != value.KindFloat {
			return Range{}, fmt.Errorf("aggregate: %s(%s) requires a numeric column, got %s",
				q.Fn, q.Attr, kind)
		}
	}
	var pred ra.Expr
	if q.Where != "" {
		parsed, err := parseWhere(q.Rel, q.Where)
		if err != nil {
			return Range{}, err
		}
		pred, err = engine.PlanScalar(parsed, sch)
		if err != nil {
			return Range{}, err
		}
	}

	groups, err := partition(t, lhs, rhs, attrIdx, pred)
	if err != nil {
		return Range{}, err
	}
	switch q.Fn {
	case Count:
		return rangeCount(groups), nil
	case Sum:
		return rangeSum(groups), nil
	case Min:
		return rangeMinMax(groups, true), nil
	default:
		return rangeMinMax(groups, false), nil
	}
}

// part summarizes one Y-partition of an X-group over qualifying tuples.
type part struct {
	count int
	sum   float64
	min   float64
	max   float64
	// anyFloat records whether any contributing value was FLOAT, to
	// render integer results without a decimal point when possible.
	anyFloat bool
}

// group is one X-group: the repair keeps exactly one of its partitions.
type group struct {
	parts []part
}

// partition scans the table once, bucketing tuples by (LHS, RHS) keys.
// Partitions whose tuples all fail the predicate still appear with
// count 0 — they are legal repair choices that contribute nothing.
func partition(t *storage.Table, lhs, rhs []int, attrIdx int, pred ra.Expr) ([]group, error) {
	groupIdx := map[string]int{}
	partIdx := map[string]int{}
	var groups []group
	err := t.Scan(func(_ storage.RowID, row value.Tuple) error {
		gk := value.KeyOf(row, lhs)
		gi, ok := groupIdx[gk]
		if !ok {
			gi = len(groups)
			groupIdx[gk] = gi
			groups = append(groups, group{})
		}
		pk := gk + "\x00" + value.KeyOf(row, rhs)
		pi, ok := partIdx[pk]
		if !ok {
			pi = len(groups[gi].parts)
			partIdx[pk] = pi
			groups[gi].parts = append(groups[gi].parts, part{})
		}
		qualifies := true
		if pred != nil {
			var err error
			qualifies, err = ra.EvalPredicate(pred, row)
			if err != nil {
				return err
			}
		}
		if !qualifies {
			return nil
		}
		p := &groups[gi].parts[pi]
		p.count++
		if attrIdx >= 0 {
			v := row[attrIdx]
			if v.IsNull() {
				// SQL aggregates skip NULLs.
				p.count-- // COUNT here counts contributing values only when aggregating a column
				return nil
			}
			f := v.AsFloat()
			if v.K == value.KindFloat {
				p.anyFloat = true
			}
			if p.count == 1 || f < p.min {
				p.min = f
			}
			if p.count == 1 || f > p.max {
				p.max = f
			}
			p.sum += f
		}
		return nil
	})
	return groups, err
}

// rangeCount: every repair picks one partition per group; counts add up.
func rangeCount(groups []group) Range {
	lo, hi := 0, 0
	mayBeEmpty := true
	for _, g := range groups {
		gmin, gmax := g.parts[0].count, g.parts[0].count
		for _, p := range g.parts[1:] {
			if p.count < gmin {
				gmin = p.count
			}
			if p.count > gmax {
				gmax = p.count
			}
		}
		lo += gmin
		hi += gmax
		if gmin > 0 {
			mayBeEmpty = false
		}
	}
	if len(groups) == 0 {
		return Range{Lower: value.Int(0), Upper: value.Int(0), MayBeEmpty: true}
	}
	return Range{Lower: value.Int(int64(lo)), Upper: value.Int(int64(hi)), MayBeEmpty: mayBeEmpty}
}

// rangeSum: sums decompose over groups (an all-unqualifying partition
// contributes 0).
func rangeSum(groups []group) Range {
	var lo, hi float64
	anyFloat := false
	mayBeEmpty := true
	for _, g := range groups {
		first := true
		var gmin, gmax float64
		allPartsQualify := true
		for _, p := range g.parts {
			s := p.sum
			if p.anyFloat {
				anyFloat = true
			}
			if p.count == 0 {
				allPartsQualify = false
			}
			if first || s < gmin {
				gmin = s
			}
			if first || s > gmax {
				gmax = s
			}
			first = false
		}
		lo += gmin
		hi += gmax
		if allPartsQualify && len(g.parts) > 0 {
			mayBeEmpty = false
		}
	}
	if len(groups) == 0 {
		return Range{Lower: value.Int(0), Upper: value.Int(0), MayBeEmpty: true}
	}
	return Range{Lower: numeric(lo, anyFloat), Upper: numeric(hi, anyFloat), MayBeEmpty: mayBeEmpty}
}

// rangeMinMax handles MIN (isMin=true) and MAX by symmetry. The bounds
// range over repairs where at least one qualifying non-NULL value
// survives.
//
// For MIN, the lower bound is the global minimum over qualifying values
// (pick that tuple's partition; nothing can be smaller). The upper bound
// is adversarial: every group that can pick a partition with no
// qualifying values ("escape") does so; a group that cannot escape
// contributes at best the maximum over its partitions of the partition
// minimum; if every active group can escape, the single best group
// decides. MAX is the mirror image.
func rangeMinMax(groups []group, isMin bool) Range {
	better := func(a, b float64) bool { // a is better than b for the aggregate
		if isMin {
			return a < b
		}
		return a > b
	}
	var (
		anyQual    bool
		anyFloat   bool
		globalBest float64 // best (min for MIN) over all qualifying values
		mustAdv    float64 // adversarial bound over groups that must contribute
		mustSeen   bool
		escAdv     float64 // best adversarial value among escapable groups
		escSeen    bool
		mayBeEmpty = true
	)
	for _, g := range groups {
		var (
			adv      float64 // adversary's pick for this group
			advSeen  bool
			canEsc   bool
			isActive bool
		)
		for _, p := range g.parts {
			if p.count == 0 {
				canEsc = true
				continue
			}
			isActive = true
			if p.anyFloat {
				anyFloat = true
			}
			v := p.min // per-partition aggregate
			if !isMin {
				v = p.max
			}
			if !anyQual || better(v, globalBest) {
				globalBest = v
			}
			anyQual = true
			// The adversary picks the partition whose aggregate is WORST
			// for us (largest partition-min for MIN).
			if !advSeen || better(adv, v) {
				adv = v
			}
			advSeen = true
		}
		if !isActive {
			continue
		}
		if !canEsc {
			mayBeEmpty = false
			// Among must-contribute groups, the overall aggregate is bound
			// by the one whose adversarial value is best for us.
			if !mustSeen || better(adv, mustAdv) {
				mustAdv = adv
			}
			mustSeen = true
		} else if !escSeen || better(escAdv, adv) {
			// Among escapable groups, the adversary would keep only the
			// one whose value is worst for us.
			escAdv = adv
		}
		if canEsc {
			escSeen = true
		}
	}
	if !anyQual {
		return Range{Lower: value.Null(), Upper: value.Null(), MayBeEmpty: true}
	}
	adversarial := escAdv
	if mustSeen {
		adversarial = mustAdv
	}
	lo, hi := globalBest, adversarial
	if !isMin {
		lo, hi = adversarial, globalBest
	}
	return Range{Lower: numeric(lo, anyFloat), Upper: numeric(hi, anyFloat), MayBeEmpty: mayBeEmpty}
}

func numeric(f float64, anyFloat bool) value.Value {
	if !anyFloat && f == float64(int64(f)) {
		return value.Int(int64(f))
	}
	return value.Float(f)
}

// parseWhere parses a bare filter expression against a relation.
func parseWhere(rel, where string) (sqlparse.Expr, error) {
	parsed, err := sqlparse.ParseQuery("SELECT * FROM " + rel + " WHERE " + where)
	if err != nil {
		return nil, fmt.Errorf("aggregate: bad WHERE %q: %v", where, err)
	}
	return parsed.Left.Where, nil
}

// scanQualifying calls fn for every live row passing pred.
func scanQualifying(t *storage.Table, pred ra.Expr, fn func(row value.Tuple)) error {
	return t.Scan(func(_ storage.RowID, row value.Tuple) error {
		if pred != nil {
			ok, err := ra.EvalPredicate(pred, row)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
		fn(row)
		return nil
	})
}

func resolveCols(sch schema.Schema, names []string) ([]int, error) {
	out := make([]int, len(names))
	for i, n := range names {
		idx, err := sch.Resolve("", n)
		if err != nil {
			return nil, err
		}
		out[i] = idx
	}
	return out, nil
}
