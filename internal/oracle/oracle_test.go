package oracle

import (
	"testing"

	"hippo/internal/constraint"
	"hippo/internal/engine"
	"hippo/internal/value"
)

func TestOracleKnownInstance(t *testing.T) {
	db := engine.New()
	mustExec(db, "CREATE TABLE emp (id INT, salary INT)")
	mustExec(db, "INSERT INTO emp VALUES (1, 100), (1, 200), (2, 150)")
	o := &Oracle{
		DB:          db,
		Constraints: []constraint.Constraint{constraint.FD{Rel: "emp", LHS: []string{"id"}, RHS: []string{"salary"}}},
	}
	viols, err := o.Violations()
	if err != nil {
		t.Fatal(err)
	}
	if len(viols) != 1 {
		t.Fatalf("violations=%d, want 1", len(viols))
	}
	repairs, err := o.Repairs()
	if err != nil {
		t.Fatal(err)
	}
	if len(repairs) != 2 {
		t.Fatalf("repairs=%d, want 2", len(repairs))
	}
	rows, err := o.ConsistentAnswers("SELECT * FROM emp")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || value.TupleString(rows[0]) != "(2, 150)" {
		t.Fatalf("answers=%v, want [(2, 150)]", rows)
	}
}

func TestOracleConsistentDatabaseHasOneRepair(t *testing.T) {
	db := engine.New()
	mustExec(db, "CREATE TABLE emp (id INT, salary INT)")
	mustExec(db, "INSERT INTO emp VALUES (1, 100), (2, 200)")
	o := &Oracle{
		DB:          db,
		Constraints: []constraint.Constraint{constraint.FD{Rel: "emp", LHS: []string{"id"}, RHS: []string{"salary"}}},
	}
	repairs, err := o.Repairs()
	if err != nil {
		t.Fatal(err)
	}
	if len(repairs) != 1 || len(repairs[0]) != 0 {
		t.Fatalf("repairs=%v, want one empty exclusion", repairs)
	}
	rows, err := o.ConsistentAnswers("SELECT * FROM emp")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("answers=%d, want 2", len(rows))
	}
}

func TestOracleConflictLimit(t *testing.T) {
	db := engine.New()
	mustExec(db, "CREATE TABLE t (a INT, b INT)")
	for i := 0; i < 8; i++ {
		mustExec(db, "INSERT INTO t VALUES (1, "+string(rune('0'+i))+")")
	}
	o := &Oracle{
		DB:             db,
		Constraints:    []constraint.Constraint{constraint.FD{Rel: "t", LHS: []string{"a"}, RHS: []string{"b"}}},
		MaxConflicting: 4,
	}
	if _, err := o.Repairs(); err == nil {
		t.Fatal("expected conflict-limit error")
	}
}
