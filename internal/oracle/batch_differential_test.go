package oracle_test

import (
	"fmt"
	"math/rand"
	"testing"

	"hippo"
)

// buildTwin constructs one of two identical instances: schema, seed data,
// and constraints are derived from the same statement list, so the
// sequential and batched twins start byte-for-byte equal.
func buildTwin(setup []string, denial string) (*hippo.DB, error) {
	h := hippo.Open()
	for _, s := range setup {
		if _, _, err := h.Exec(s); err != nil {
			return nil, err
		}
	}
	h.AddFD("r", []string{"a"}, []string{"b"})
	if denial != "" {
		if err := h.AddDenial(denial); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// TestDifferentialBatchedVsSequential fuzzes the group-commit pipeline:
// the same randomized DML sequence is applied statement-at-a-time to one
// instance and in randomly sized ExecBatch chunks (including chunks that
// contain transient insert+delete pairs and same-key re-inserts) to its
// twin. At every chunk boundary both must agree on every query's
// consistent answers, and at the end the hypergraphs must be identical in
// shape — the coalesced delta path may never drift from sequential
// application.
func TestDifferentialBatchedVsSequential(t *testing.T) {
	const instances = 40
	rng := rand.New(rand.NewSource(20260731))
	queries := []string{
		"SELECT * FROM r",
		"SELECT * FROM r WHERE a <= 1",
		"SELECT * FROM r WHERE b = 0 UNION SELECT * FROM r WHERE b = 1",
		"SELECT * FROM r EXCEPT SELECT * FROM r WHERE a = 0",
		"SELECT * FROM r EXCEPT SELECT * FROM s",
		"SELECT * FROM r, s WHERE r.a = s.a",
	}
	for inst := 0; inst < instances; inst++ {
		setup := []string{
			"CREATE TABLE r (a INT, b INT)",
			"CREATE TABLE s (a INT, b INT)",
		}
		for i, n := 0, 3+rng.Intn(5); i < n; i++ {
			setup = append(setup, fmt.Sprintf("INSERT INTO r VALUES (%d, %d)", rng.Intn(4), rng.Intn(3)))
		}
		for i, n := 0, rng.Intn(4); i < n; i++ {
			setup = append(setup, fmt.Sprintf("INSERT INTO s VALUES (%d, %d)", rng.Intn(4), rng.Intn(3)))
		}
		denial := ""
		if rng.Float64() < 0.4 {
			denial = "r x, s y WHERE x.a = y.a AND x.b < y.b"
		}
		seq, err := buildTwin(setup, denial)
		if err != nil {
			t.Fatal(err)
		}
		bat, err := buildTwin(setup, denial)
		if err != nil {
			t.Fatal(err)
		}

		// A randomized update stream; transient pairs and same-key
		// re-inserts appear with their own weights.
		var stream []string
		for len(stream) < 18 {
			switch rng.Intn(6) {
			case 0:
				stream = append(stream, fmt.Sprintf("INSERT INTO r VALUES (%d, %d)", rng.Intn(4), rng.Intn(3)))
			case 1:
				stream = append(stream, fmt.Sprintf("DELETE FROM r WHERE a = %d AND b = %d", rng.Intn(4), rng.Intn(3)))
			case 2:
				stream = append(stream, fmt.Sprintf("INSERT INTO s VALUES (%d, %d)", rng.Intn(4), rng.Intn(3)))
			case 3:
				stream = append(stream, fmt.Sprintf("DELETE FROM s WHERE a = %d", rng.Intn(4)))
			case 4:
				// Transient pair: lives only inside whatever chunk it lands in.
				a, b := rng.Intn(4), rng.Intn(3)
				stream = append(stream,
					fmt.Sprintf("INSERT INTO r VALUES (%d, %d)", a, b),
					fmt.Sprintf("DELETE FROM r WHERE a = %d AND b = %d", a, b))
			default:
				// Same-key re-insert: delete then identical insert.
				a, b := rng.Intn(4), rng.Intn(3)
				stream = append(stream,
					fmt.Sprintf("DELETE FROM r WHERE a = %d AND b = %d", a, b),
					fmt.Sprintf("INSERT INTO r VALUES (%d, %d)", a, b))
			}
		}

		// Random batch split: chunks of 1..6 statements.
		for pos := 0; pos < len(stream); {
			size := 1 + rng.Intn(6)
			if pos+size > len(stream) {
				size = len(stream) - pos
			}
			chunk := stream[pos : pos+size]
			for _, s := range chunk {
				mustExec(seq, s)
			}
			if _, err := bat.ExecBatch(chunk...); err != nil {
				t.Fatalf("instance %d batch at %d: %v", inst, pos, err)
			}
			pos += size

			for _, q := range queries {
				a, _, errA := seq.ConsistentQuery(q)
				b, _, errB := bat.ConsistentQuery(q)
				if (errA == nil) != (errB == nil) {
					t.Fatalf("instance %d query %q: sequential err=%v, batched err=%v", inst, q, errA, errB)
				}
				if errA != nil {
					continue
				}
				if tupleSet(a.Rows) != tupleSet(b.Rows) {
					t.Fatalf("instance %d after %d statements, query %q:\nsequential: %s\nbatched:    %s",
						inst, pos, q, tupleSet(a.Rows), tupleSet(b.Rows))
				}
			}
		}
		gs, gb := seq.System().GraphStats(), bat.System().GraphStats()
		if gs != gb {
			t.Fatalf("instance %d: hypergraph diverged: sequential %+v vs batched %+v", inst, gs, gb)
		}
	}
}
