package oracle_test

import "hippo"

// mustExec runs a setup statement, panicking on failure — the test-local
// replacement for the removed hippo.DB.MustExec.
func mustExec(db *hippo.DB, sql string) {
	if _, _, err := db.Exec(sql); err != nil {
		panic(err)
	}
}
