package oracle_test

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"hippo"
	"hippo/internal/constraint"
	"hippo/internal/oracle"
	"hippo/internal/value"
)

// tupleSet canonicalizes a result as a sorted, deduplicated set of tuple
// serializations (consistent answers are set-semantic).
func tupleSet(rows []value.Tuple) string {
	seen := map[string]bool{}
	var out []string
	for _, r := range rows {
		k := value.TupleString(r)
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return strings.Join(out, " ")
}

// randInstance builds a random inconsistent database plus the same
// constraint set registered both on the Hippo system (fast path) and as
// constraint values for the oracle.
func randInstance(rng *rand.Rand) (*hippo.DB, []constraint.Constraint, bool) {
	h := hippo.Open()
	mustExec(h, "CREATE TABLE r (a INT, b INT)")
	mustExec(h, "CREATE TABLE s (a INT, b INT)")
	nr := 3 + rng.Intn(5)
	ns := rng.Intn(4)
	for i := 0; i < nr; i++ {
		mustExec(h, fmt.Sprintf("INSERT INTO r VALUES (%d, %d)", rng.Intn(4), rng.Intn(3)))
	}
	for i := 0; i < ns; i++ {
		mustExec(h, fmt.Sprintf("INSERT INTO s VALUES (%d, %d)", rng.Intn(4), rng.Intn(3)))
	}

	var cs []constraint.Constraint
	if rng.Float64() < 0.8 {
		h.AddFD("r", []string{"a"}, []string{"b"})
		cs = append(cs, constraint.FD{Rel: "r", LHS: []string{"a"}, RHS: []string{"b"}})
	}
	if ns > 0 && rng.Float64() < 0.5 {
		h.AddKey("s", "a")
		cs = append(cs, constraint.Key{Rel: "s", Cols: []string{"a"}})
	}
	if ns > 0 && rng.Float64() < 0.3 {
		spec := "r x, s y WHERE x.a = y.a AND x.b < y.b"
		if err := h.AddDenial(spec); err != nil {
			return nil, nil, false
		}
		d, err := constraint.ParseDenial(spec)
		if err != nil {
			return nil, nil, false
		}
		cs = append(cs, d)
	}
	if rng.Float64() < 0.2 {
		spec := "r x WHERE x.a = 3 AND x.b = 2"
		if err := h.AddDenial(spec); err != nil {
			return nil, nil, false
		}
		d, err := constraint.ParseDenial(spec)
		if err != nil {
			return nil, nil, false
		}
		cs = append(cs, d)
	}
	if len(cs) == 0 {
		h.AddFD("r", []string{"a"}, []string{"b"})
		cs = append(cs, constraint.FD{Rel: "r", LHS: []string{"a"}, RHS: []string{"b"}})
	}
	return h, cs, true
}

// TestDifferentialFastPathVsOracle fuzzes small instances across FDs,
// keys, and denial constraints and asserts three-way agreement between
// the fast path (envelope + prover over the conflict hypergraph), the
// hitting-set repair enumerator, and this package's independent
// subset-search oracle. The acceptance bar is >= 200 compared instances.
func TestDifferentialFastPathVsOracle(t *testing.T) {
	const wantInstances = 220
	rng := rand.New(rand.NewSource(20260729))
	queries := []string{
		"SELECT * FROM r",
		"SELECT * FROM r WHERE a <= 1",
		"SELECT * FROM r WHERE b = 0 UNION SELECT * FROM r WHERE b = 1",
		"SELECT * FROM r EXCEPT SELECT * FROM r WHERE a = 0",
		"SELECT * FROM r, s WHERE r.a = s.a",
	}
	instances, attempts := 0, 0
	for instances < wantInstances {
		attempts++
		if attempts > wantInstances*20 {
			t.Fatalf("could not build %d comparable instances in %d attempts", wantInstances, attempts)
		}
		h, cs, ok := randInstance(rng)
		if !ok {
			continue
		}
		o := &oracle.Oracle{DB: h.Engine(), Constraints: cs, MaxConflicting: 10}
		if _, err := o.Repairs(); err != nil {
			continue // too many conflicting tuples; regenerate
		}
		compared := false
		for _, q := range queries {
			want, err := o.ConsistentAnswers(q)
			if err != nil {
				t.Fatalf("oracle %q: %v", q, err)
			}
			got, _, err := h.ConsistentQuery(q)
			if err != nil {
				continue // query/constraint combo outside Hippo's class
			}
			if tupleSet(got.Rows) != tupleSet(want) {
				t.Fatalf("instance %d query %q:\nfast path: %s\noracle:    %s\nconstraints: %v",
					instances, q, tupleSet(got.Rows), tupleSet(want), cs)
			}
			// Cached-path coverage: the first run stored verdicts in the
			// component-scoped cache; a repeat serves from it and must
			// agree, as must an explicitly uncached run.
			cachedAgain, st, err := h.ConsistentQuery(q)
			if err != nil {
				t.Fatalf("cached repeat %q: %v", q, err)
			}
			if tupleSet(cachedAgain.Rows) != tupleSet(want) {
				t.Fatalf("instance %d query %q: cached repeat disagrees (hits=%d):\ncached: %s\noracle: %s",
					instances, q, st.CacheHits, tupleSet(cachedAgain.Rows), tupleSet(want))
			}
			uncached, _, err := h.ConsistentQuery(q, hippo.WithoutVerdictCache())
			if err != nil {
				t.Fatalf("uncached %q: %v", q, err)
			}
			if tupleSet(uncached.Rows) != tupleSet(want) {
				t.Fatalf("instance %d query %q: uncached path disagrees with oracle", instances, q)
			}
			enum, err := h.OracleConsistentQuery(q)
			if err == nil && tupleSet(enum) != tupleSet(want) {
				t.Fatalf("instance %d query %q: repair enumerator disagrees with oracle:\nenum:   %s\noracle: %s",
					instances, q, tupleSet(enum), tupleSet(want))
			}
			compared = true
		}
		if compared {
			instances++
		}
	}
	t.Logf("compared %d instances (%d attempts)", instances, attempts)
}

// TestDifferentialCachedPathUnderUpdates stresses the verdict cache's
// delta invalidation: random instances receive interleaved single-row
// updates (including on the unconstrained s, which changes membership
// without touching the hypergraph), and after every round the cached fast
// path, the uncached path, and a freshly built brute-force oracle must
// agree on every query. A stale cache entry served after an update shows
// up as a three-way disagreement.
func TestDifferentialCachedPathUnderUpdates(t *testing.T) {
	const wantInstances = 30
	rng := rand.New(rand.NewSource(20260730))
	queries := []string{
		"SELECT * FROM r",
		"SELECT * FROM r WHERE a <= 1",
		"SELECT * FROM r EXCEPT SELECT * FROM r WHERE a = 0",
		"SELECT * FROM r EXCEPT SELECT * FROM s",
		"SELECT * FROM r, s WHERE r.a = s.a",
	}
	update := func(h *hippo.DB) {
		switch rng.Intn(4) {
		case 0:
			mustExec(h, fmt.Sprintf("INSERT INTO r VALUES (%d, %d)", rng.Intn(4), rng.Intn(3)))
		case 1:
			mustExec(h, fmt.Sprintf("DELETE FROM r WHERE a = %d AND b = %d", rng.Intn(4), rng.Intn(3)))
		case 2:
			mustExec(h, fmt.Sprintf("INSERT INTO s VALUES (%d, %d)", rng.Intn(4), rng.Intn(3)))
		default:
			mustExec(h, fmt.Sprintf("DELETE FROM s WHERE a = %d", rng.Intn(4)))
		}
	}
	instances, attempts := 0, 0
	for instances < wantInstances {
		attempts++
		if attempts > wantInstances*20 {
			t.Fatalf("could not build %d comparable instances in %d attempts", wantInstances, attempts)
		}
		h, cs, ok := randInstance(rng)
		if !ok {
			continue
		}
		compared := false
		ran := true
		for round := 0; round < 4 && ran; round++ {
			if round > 0 {
				for n := 1 + rng.Intn(2); n > 0; n-- {
					update(h)
				}
			}
			// Rebuild the oracle from the current database state.
			o := &oracle.Oracle{DB: h.Engine(), Constraints: cs, MaxConflicting: 10}
			if _, err := o.Repairs(); err != nil {
				ran = false // updates grew the conflict set past the oracle bound
				break
			}
			for _, q := range queries {
				want, err := o.ConsistentAnswers(q)
				if err != nil {
					t.Fatalf("oracle %q: %v", q, err)
				}
				cached, _, err := h.ConsistentQuery(q)
				if err != nil {
					continue // outside Hippo's class for this constraint set
				}
				uncached, _, err := h.ConsistentQuery(q, hippo.WithoutVerdictCache())
				if err != nil {
					t.Fatalf("uncached %q: %v", q, err)
				}
				if tupleSet(cached.Rows) != tupleSet(want) || tupleSet(uncached.Rows) != tupleSet(want) {
					t.Fatalf("instance %d round %d query %q:\ncached:   %s\nuncached: %s\noracle:   %s\nconstraints: %v",
						instances, round, q, tupleSet(cached.Rows), tupleSet(uncached.Rows), tupleSet(want), cs)
				}
				compared = true
			}
		}
		if compared {
			instances++
		}
	}
	t.Logf("compared %d instances under updates (%d attempts)", instances, attempts)
}
