// Package oracle is a brute-force reference implementation of consistent
// query answering, used to differentially test the fast path (envelope +
// hypergraph prover). It shares nothing with the conflict-hypergraph
// machinery: violations are found by direct nested-loop evaluation of
// each constraint's denial condition, repairs are enumerated by exhaustive
// subset search over the conflicting tuples, and consistent answers are
// computed by materializing every repair and intersecting the query
// results. Exponential in the number of conflicting tuples — small
// instances only.
package oracle

import (
	"fmt"
	"sort"
	"strings"

	"hippo/internal/constraint"
	"hippo/internal/engine"
	"hippo/internal/ra"
	"hippo/internal/schema"
	"hippo/internal/storage"
	"hippo/internal/value"
)

// DefaultMaxConflicting bounds the subset search: 2^n candidate repairs
// are examined for n conflicting tuples.
const DefaultMaxConflicting = 12

// Ref names one tuple of the database.
type Ref struct {
	Rel string
	Row storage.RowID
}

func (r Ref) String() string { return fmt.Sprintf("%s#%d", r.Rel, r.Row) }

// Oracle computes ground-truth consistent answers for a database under a
// constraint set.
type Oracle struct {
	DB          *engine.DB
	Constraints []constraint.Constraint
	// MaxConflicting caps the number of conflicting tuples
	// (DefaultMaxConflicting when zero).
	MaxConflicting int
}

// violation is one set of tuples that jointly satisfy a denial condition.
type violation []Ref

// Violations finds every violating tuple combination by nested-loop
// evaluation of each constraint's denial form, deduplicated as sets.
func (o *Oracle) Violations() ([]violation, error) {
	seen := map[string]bool{}
	var out []violation
	for _, c := range o.Constraints {
		den, err := c.Denial(o.DB)
		if err != nil {
			return nil, err
		}
		if err := o.enumDenial(den, seen, &out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// enumDenial walks every combination of live rows binding the denial's
// atoms and records the combinations satisfying the condition.
func (o *Oracle) enumDenial(den constraint.Denial, seen map[string]bool, out *[]violation) error {
	type bound struct {
		rel  string
		ids  []storage.RowID
		rows []value.Tuple
	}
	atoms := make([]bound, len(den.Atoms))
	combined := schema.Schema{}
	for i, a := range den.Atoms {
		t, err := o.DB.Table(a.Rel)
		if err != nil {
			return err
		}
		b := bound{rel: strings.ToLower(a.Rel)}
		t.Scan(func(id storage.RowID, row value.Tuple) error {
			b.ids = append(b.ids, id)
			b.rows = append(b.rows, row)
			return nil
		})
		atoms[i] = b
		combined = combined.Concat(t.Schema().WithQualifier(strings.ToLower(a.Name())))
	}
	var cond ra.Expr
	if den.Where != nil {
		var err error
		cond, err = engine.PlanScalar(den.Where, combined)
		if err != nil {
			return err
		}
	}
	refs := make([]Ref, len(atoms))
	row := make(value.Tuple, 0, combined.Len())
	var walk func(i int) error
	walk = func(i int) error {
		if i == len(atoms) {
			if cond != nil {
				pass, err := ra.EvalPredicate(cond, row)
				if err != nil {
					return err
				}
				if !pass {
					return nil
				}
			}
			v := dedupRefs(refs)
			k := refsKey(v)
			if !seen[k] {
				seen[k] = true
				*out = append(*out, v)
			}
			return nil
		}
		for j := range atoms[i].ids {
			refs[i] = Ref{Rel: atoms[i].rel, Row: atoms[i].ids[j]}
			row = append(row, atoms[i].rows[j]...)
			err := walk(i + 1)
			row = row[:len(row)-len(atoms[i].rows[j])]
			if err != nil {
				return err
			}
		}
		return nil
	}
	return walk(0)
}

func dedupRefs(refs []Ref) violation {
	cp := make([]Ref, len(refs))
	copy(cp, refs)
	sort.Slice(cp, func(i, j int) bool {
		if cp[i].Rel != cp[j].Rel {
			return cp[i].Rel < cp[j].Rel
		}
		return cp[i].Row < cp[j].Row
	})
	out := cp[:0]
	for i, r := range cp {
		if i == 0 || r != cp[i-1] {
			out = append(out, r)
		}
	}
	return violation(out)
}

func refsKey(v violation) string {
	parts := make([]string, len(v))
	for i, r := range v {
		parts[i] = r.String()
	}
	return strings.Join(parts, ";")
}

// Repairs enumerates every repair as the set of tuples it EXCLUDES from
// the database: for each subset of the conflicting tuples it checks
// consistency (no violation fully kept) and maximality (adding any
// excluded tuple back creates a violation).
func (o *Oracle) Repairs() ([][]Ref, error) {
	viols, err := o.Violations()
	if err != nil {
		return nil, err
	}
	conflictSet := map[Ref]bool{}
	for _, v := range viols {
		for _, r := range v {
			conflictSet[r] = true
		}
	}
	conflicting := make([]Ref, 0, len(conflictSet))
	for r := range conflictSet {
		conflicting = append(conflicting, r)
	}
	sort.Slice(conflicting, func(i, j int) bool {
		if conflicting[i].Rel != conflicting[j].Rel {
			return conflicting[i].Rel < conflicting[j].Rel
		}
		return conflicting[i].Row < conflicting[j].Row
	})
	max := o.MaxConflicting
	if max <= 0 {
		max = DefaultMaxConflicting
	}
	if len(conflicting) > max {
		return nil, fmt.Errorf("oracle: %d conflicting tuples exceed the limit %d", len(conflicting), max)
	}

	pos := make(map[Ref]int, len(conflicting))
	for i, r := range conflicting {
		pos[r] = i
	}
	// Each violation as a bitmask over the conflicting tuples.
	masks := make([]uint64, len(viols))
	for i, v := range viols {
		var m uint64
		for _, r := range v {
			m |= 1 << uint(pos[r])
		}
		masks[i] = m
	}
	n := uint(len(conflicting))
	var exclusions [][]Ref
	for keep := uint64(0); keep < 1<<n; keep++ {
		consistent := true
		for _, m := range masks {
			if m&keep == m {
				consistent = false
				break
			}
		}
		if !consistent {
			continue
		}
		maximal := true
		for i := uint(0); i < n && maximal; i++ {
			if keep&(1<<i) != 0 {
				continue
			}
			grown := keep | 1<<i
			creates := false
			for _, m := range masks {
				if m&grown == m {
					creates = true
					break
				}
			}
			if !creates {
				maximal = false
			}
		}
		if !maximal {
			continue
		}
		var excl []Ref
		for i := uint(0); i < n; i++ {
			if keep&(1<<i) == 0 {
				excl = append(excl, conflicting[i])
			}
		}
		exclusions = append(exclusions, excl)
	}
	return exclusions, nil
}

// ConsistentAnswers evaluates the query in every repair and intersects
// the results, sorted for comparison.
func (o *Oracle) ConsistentAnswers(sql string) ([]value.Tuple, error) {
	exclusions, err := o.Repairs()
	if err != nil {
		return nil, err
	}
	var intersection map[string]value.Tuple
	for _, excl := range exclusions {
		rdb, err := o.cloneWithout(excl)
		if err != nil {
			return nil, err
		}
		res, err := rdb.Query(sql)
		if err != nil {
			return nil, err
		}
		cur := make(map[string]value.Tuple, len(res.Rows))
		for _, row := range res.Rows {
			cur[row.Key()] = row
		}
		if intersection == nil {
			intersection = cur
			continue
		}
		for k := range intersection {
			if _, ok := cur[k]; !ok {
				delete(intersection, k)
			}
		}
	}
	out := make([]value.Tuple, 0, len(intersection))
	for _, row := range intersection {
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool { return value.CompareTuples(out[i], out[j]) < 0 })
	return out, nil
}

// cloneWithout copies the database, skipping the excluded rows.
func (o *Oracle) cloneWithout(excl []Ref) (*engine.DB, error) {
	drop := make(map[Ref]bool, len(excl))
	for _, r := range excl {
		drop[r] = true
	}
	dst := engine.New()
	for _, name := range o.DB.TableNames() {
		t, err := o.DB.Table(name)
		if err != nil {
			return nil, err
		}
		nt, err := dst.CreateTable(name, t.Schema())
		if err != nil {
			return nil, err
		}
		err = t.Scan(func(id storage.RowID, row value.Tuple) error {
			if drop[Ref{Rel: name, Row: id}] {
				return nil
			}
			_, ierr := nt.Insert(row)
			return ierr
		})
		if err != nil {
			return nil, err
		}
	}
	return dst, nil
}
