package conflict

import (
	"sort"
	"strings"
	"testing"

	"hippo/internal/constraint"
	"hippo/internal/engine"
	"hippo/internal/storage"
	"hippo/internal/value"
)

// newDB builds an employee table with two FD-violating clusters:
// id 1 has salaries 100/200 (2 tuples), id 3 has salaries 300/300/400.
func newDB(t *testing.T) *engine.DB {
	t.Helper()
	db := engine.New()
	mustExec(db, "CREATE TABLE emp (id INT, name TEXT, salary INT)")
	mustExec(db, `INSERT INTO emp VALUES
		(1, 'ann', 100),
		(1, 'ann', 200),
		(2, 'bob', 150),
		(3, 'cat', 300),
		(3, 'kat', 300),
		(3, 'cat', 400)`)
	return db
}

func fdSalary() constraint.FD {
	return constraint.FD{Rel: "emp", LHS: []string{"id"}, RHS: []string{"salary"}}
}

func detect(t *testing.T, db *engine.DB, cs ...constraint.Constraint) (*Hypergraph, *TupleIndex, DetectStats) {
	t.Helper()
	h, ti, st, err := NewDetector(db).Detect(cs)
	if err != nil {
		t.Fatal(err)
	}
	return h, ti, st
}

func edgeStrings(h *Hypergraph) []string {
	out := make([]string, 0, h.NumEdges())
	for _, e := range h.Edges() {
		out = append(out, e.String())
	}
	sort.Strings(out)
	return out
}

func TestDetectFD(t *testing.T) {
	db := newDB(t)
	h, _, st := detect(t, db, fdSalary())
	// id=1: rows 0,1 conflict (1 edge). id=3: rows {3,4} vs row 5 → 2 edges.
	got := edgeStrings(h)
	want := []string{"{emp#0, emp#1}", "{emp#3, emp#5}", "{emp#4, emp#5}"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("edges = %v, want %v", got, want)
	}
	if h.NumConflictingVertices() != 5 {
		t.Errorf("conflicting vertices = %d, want 5", h.NumConflictingVertices())
	}
	if st.Constraints != 1 || st.Combinations == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFDFastPathMatchesGeneric(t *testing.T) {
	db := newDB(t)
	fast, _, _ := detect(t, db, fdSalary())
	det := NewDetector(db)
	det.DisableFDFastPath = true
	slow, _, _, err := det.Detect([]constraint.Constraint{fdSalary()})
	if err != nil {
		t.Fatal(err)
	}
	f, s := edgeStrings(fast), edgeStrings(slow)
	if strings.Join(f, "|") != strings.Join(s, "|") {
		t.Errorf("fast path %v != generic path %v", f, s)
	}
}

func TestDetectGeneralDenial(t *testing.T) {
	db := engine.New()
	mustExec(db, "CREATE TABLE staff (ssn INT, name TEXT)")
	mustExec(db, "CREATE TABLE contractor (ssn INT, firm TEXT)")
	mustExec(db, "INSERT INTO staff VALUES (1, 'ann'), (2, 'bob')")
	mustExec(db, "INSERT INTO contractor VALUES (2, 'acme'), (3, 'init')")
	d, err := constraint.ParseDenial("staff s, contractor c WHERE s.ssn = c.ssn")
	if err != nil {
		t.Fatal(err)
	}
	h, ti, _ := detect(t, db, d)
	got := edgeStrings(h)
	if len(got) != 1 || got[0] != "{contractor#0, staff#1}" {
		t.Errorf("edges = %v", got)
	}
	// TupleIndex covers both relations.
	ids, err := ti.Lookup("staff", value.Tuple{value.Int(2), value.Text("bob")})
	if err != nil || len(ids) != 1 {
		t.Errorf("lookup = %v, %v", ids, err)
	}
}

func TestDetectUnaryDenial(t *testing.T) {
	db := engine.New()
	mustExec(db, "CREATE TABLE acct (id INT, bal INT)")
	mustExec(db, "INSERT INTO acct VALUES (1, 50), (2, -10), (3, -99)")
	d, err := constraint.ParseDenial("acct a WHERE a.bal < 0")
	if err != nil {
		t.Fatal(err)
	}
	h, _, _ := detect(t, db, d)
	got := edgeStrings(h)
	want := []string{"{acct#1}", "{acct#2}"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("edges = %v", got)
	}
	// Self-conflicting tuples are excluded from every repair.
	if !h.InConflict(Vertex{Rel: "acct", Row: 1}) {
		t.Error("acct#1 should be in conflict")
	}
}

func TestDetectTernaryDenial(t *testing.T) {
	// No path may exist a->b->c with total weight > 10.
	db := engine.New()
	mustExec(db, "CREATE TABLE edge (src INT, dst INT, w INT)")
	mustExec(db, "INSERT INTO edge VALUES (1, 2, 6), (2, 3, 7), (2, 4, 1), (9, 9, 100)")
	d, err := constraint.ParseDenial(
		"edge e1, edge e2 WHERE e1.dst = e2.src AND e1.w + e2.w > 10")
	if err != nil {
		t.Fatal(err)
	}
	h, _, _ := detect(t, db, d)
	got := edgeStrings(h)
	// (1,2,6)+(2,3,7)=13 violates; (1,2,6)+(2,4,1)=7 ok; (9,9,100) self-joins:
	// e1=e2=(9,9,100), 200>10 violates → unary edge after dedup.
	want := []string{"{edge#0, edge#1}", "{edge#3}"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("edges = %v, want %v", got, want)
	}
}

func TestMultipleConstraints(t *testing.T) {
	db := newDB(t)
	nameFD := constraint.FD{Rel: "emp", LHS: []string{"id"}, RHS: []string{"name"}}
	h, _, st := detect(t, db, fdSalary(), nameFD)
	// salary FD: edges {0,1},{3,5},{4,5}. name FD: id=3 names cat,kat,cat →
	// edges {3,4},{4,5}; {4,5} violates both FDs and dedupes to one edge.
	if h.NumEdges() != 4 {
		t.Errorf("edges = %v", edgeStrings(h))
	}
	if st.Constraints != 2 {
		t.Errorf("constraints = %d", st.Constraints)
	}
}

func TestHypergraphIndependence(t *testing.T) {
	h := NewHypergraph()
	a := Vertex{Rel: "r", Row: 0}
	b := Vertex{Rel: "r", Row: 1}
	c := Vertex{Rel: "r", Row: 2}
	d := Vertex{Rel: "r", Row: 3}
	h.AddEdge([]Vertex{a, b}, "e1")
	h.AddEdge([]Vertex{b, c, d}, "e2")

	if !h.Independent(NewVertexSet(a, c, d)) {
		t.Error("{a,c,d} should be independent")
	}
	if h.Independent(NewVertexSet(a, b)) {
		t.Error("{a,b} contains edge e1")
	}
	if !h.Independent(NewVertexSet(b, c)) {
		t.Error("{b,c} is a strict subset of e2, independent")
	}
	s := NewVertexSet(a, c)
	if !h.IndependentWith(s, d) {
		t.Error("{a,c}+d should be independent")
	}
	if len(s) != 2 {
		t.Error("IndependentWith must not mutate the set")
	}
	s2 := NewVertexSet(c, d)
	if h.IndependentWith(s2, b) {
		t.Error("{c,d}+b completes e2")
	}
	clone := s2.Clone()
	clone[b] = true
	if len(s2) != 2 {
		t.Error("Clone shares storage")
	}
}

func TestHypergraphDedupAndStats(t *testing.T) {
	h := NewHypergraph()
	a := Vertex{Rel: "r", Row: 0}
	b := Vertex{Rel: "r", Row: 1}
	if !h.AddEdge([]Vertex{a, b}, "x") {
		t.Error("first add should succeed")
	}
	if h.AddEdge([]Vertex{b, a}, "x") {
		t.Error("reordered duplicate should dedupe")
	}
	if h.AddEdge(nil, "x") {
		t.Error("empty edge should be rejected")
	}
	if !h.AddEdge([]Vertex{a, a}, "self") { // dedups to unary {a}
		t.Error("self pair should become a unary edge")
	}
	st := h.Stats()
	if st.Edges != 2 || st.ConflictingVertices != 2 || st.MaxDegree != 2 || st.MaxEdgeSize != 2 {
		t.Errorf("stats = %+v", st)
	}
	if h.Degree(a) != 2 || h.Degree(Vertex{Rel: "z", Row: 9}) != 0 {
		t.Error("degree wrong")
	}
	if len(h.EdgesContaining(a)) != 2 {
		t.Error("EdgesContaining wrong")
	}
}

func TestTupleIndexAfterDelete(t *testing.T) {
	db := newDB(t)
	_, ti, _ := detect(t, db, fdSalary())
	tup := value.Tuple{value.Int(2), value.Text("bob"), value.Int(150)}
	ids, err := ti.Lookup("emp", tup)
	if err != nil || len(ids) != 1 {
		t.Fatalf("lookup = %v, %v", ids, err)
	}
	row, ok := ti.Row(Vertex{Rel: "emp", Row: ids[0]})
	if !ok || !value.TuplesEqual(row, tup) {
		t.Errorf("Row = %v", row)
	}
	if _, err := ti.Lookup("nope", tup); err == nil {
		t.Error("unknown relation should error")
	}
	if _, ok := ti.Row(Vertex{Rel: "nope", Row: 0}); ok {
		t.Error("unknown relation Row should fail")
	}
	mustExec(db, "DELETE FROM emp WHERE id = 2")
	ids, _ = ti.Lookup("emp", tup)
	if len(ids) != 0 {
		t.Errorf("deleted tuple still found: %v", ids)
	}
}

func TestDetectErrors(t *testing.T) {
	db := engine.New()
	mustExec(db, "CREATE TABLE r (a INT)")
	_, _, _, err := NewDetector(db).Detect([]constraint.Constraint{
		constraint.FD{Rel: "missing", LHS: []string{"a"}, RHS: []string{"b"}},
	})
	if err == nil {
		t.Error("missing relation should error")
	}
	d, _ := constraint.ParseDenial("r x, r y WHERE x.nope = y.a")
	_, _, _, err = NewDetector(db).Detect([]constraint.Constraint{d})
	if err == nil {
		t.Error("bad column in denial should error")
	}
}

// TestHypergraphRemoveAndCompact exercises edge/vertex removal and the
// tombstone compaction that keeps a long-lived, incrementally maintained
// graph at O(live edges).
func TestHypergraphRemoveAndCompact(t *testing.T) {
	h := NewHypergraph()
	v := func(i int) Vertex { return Vertex{Rel: "r", Row: storage.RowID(i)} }

	h.AddEdge([]Vertex{v(0), v(1)}, "c")
	h.AddEdge([]Vertex{v(0), v(2)}, "c")
	h.AddEdge([]Vertex{v(3), v(4)}, "c")
	if got := h.RemoveVertex(v(0)); got != 2 {
		t.Fatalf("RemoveVertex removed %d edges, want 2", got)
	}
	if h.NumEdges() != 1 || h.Degree(v(1)) != 0 || !h.InConflict(v(3)) {
		t.Fatalf("unexpected state after RemoveVertex: edges=%d", h.NumEdges())
	}
	if !h.RemoveEdge([]Vertex{v(4), v(3)}) { // any vertex order
		t.Fatal("RemoveEdge did not find the edge")
	}
	if h.RemoveEdge([]Vertex{v(3), v(4)}) {
		t.Fatal("RemoveEdge removed an already-dead edge")
	}
	// Re-adding a previously removed edge must work (dedup key was freed).
	if !h.AddEdge([]Vertex{v(3), v(4)}, "c") {
		t.Fatal("re-adding a removed edge failed")
	}

	// Churn enough edges to trigger compaction, then verify the graph
	// still answers correctly and stopped growing.
	h = NewHypergraph()
	for i := 0; i < 500; i++ {
		h.AddEdge([]Vertex{v(2 * i), v(2*i + 1)}, "c")
		if i%2 == 1 {
			h.RemoveVertex(v(2 * i))
		}
	}
	if h.NumEdges() != 250 {
		t.Fatalf("edges=%d, want 250", h.NumEdges())
	}
	if len(h.st.edges) >= 500 {
		t.Fatalf("compaction never ran: %d slots for %d live edges", len(h.st.edges), h.NumEdges())
	}
	for i := 0; i < 500; i++ {
		want := i%2 == 0
		if h.InConflict(v(2*i)) != want {
			t.Fatalf("vertex %d conflict=%v, want %v", 2*i, !want, want)
		}
	}

	// Clone is independent of the original.
	c := h.Clone()
	h.RemoveVertex(v(0))
	if c.NumEdges() != 250 || h.NumEdges() != 249 {
		t.Fatalf("clone not independent: clone=%d orig=%d", c.NumEdges(), h.NumEdges())
	}
}
