package conflict

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"hippo/internal/storage"
)

func sv(rel string, row int) Vertex { return Vertex{Rel: rel, Row: storage.RowID(row)} }

// checkShardInvariants asserts the structural invariants of the sharded
// container: every component id resolves to its owning shard (id % K), no
// vertex is labeled in more than one shard, no edge appears in more than
// one shard, and ShardStats sums match the aggregate view.
func checkShardInvariants(t *testing.T, g *ShardedHypergraph, ctx string) {
	t.Helper()
	for i, h := range g.shards {
		for _, c := range h.Components() {
			if got := g.ShardOfComponent(c.ID); got != i {
				t.Fatalf("%s: shard %d holds component %d, but id routes to shard %d", ctx, i, c.ID, got)
			}
		}
	}
	seenV := make(map[Vertex]int)
	for i, h := range g.shards {
		for _, v := range h.ConflictingVertices() {
			if prev, dup := seenV[v]; dup {
				t.Fatalf("%s: vertex %v labeled in shards %d and %d", ctx, v, prev, i)
			}
			seenV[v] = i
		}
	}
	seenE := make(map[string]int)
	for i, h := range g.shards {
		for _, e := range h.Edges() {
			if prev, dup := seenE[e.key()]; dup {
				t.Fatalf("%s: edge %v present in shards %d and %d", ctx, e, prev, i)
			}
			seenE[e.key()] = i
		}
	}
	edges, comps, verts := 0, 0, 0
	for _, si := range g.ShardStats() {
		edges += si.Edges
		comps += si.Components
		verts += si.Vertices
	}
	if edges != g.NumEdges() || comps != g.NumComponents() || verts != g.NumConflictingVertices() {
		t.Fatalf("%s: ShardStats sums (e=%d c=%d v=%d) disagree with aggregate (e=%d c=%d v=%d)",
			ctx, edges, comps, verts, g.NumEdges(), g.NumComponents(), g.NumConflictingVertices())
	}
}

// shardedOp is one scripted mutation for the table-driven routing tests.
type shardedOp struct {
	add    []Vertex // insert this edge…
	delV   *Vertex  // …or remove this vertex's edges
	delE   []Vertex // …or remove exactly this edge
	expect func(t *testing.T, g *ShardedHypergraph)
}

// TestShardRoutingScenarios drives the cross-shard cases the router must
// handle: merge-on-insert landing components from different shards on one
// owner, walk-based split-on-delete keeping the parts in the owning shard,
// and empty-shard state reclamation.
func TestShardRoutingScenarios(t *testing.T) {
	const k = 4
	g := NewShardedHypergraph(k)

	// Seed eight disjoint 2-vertex components; their hash routing scatters
	// them over the shards.
	for i := 0; i < 8; i++ {
		if !g.AddEdge([]Vertex{sv("r", 2*i), sv("r", 2*i+1)}, "seed") {
			t.Fatalf("seed edge %d not added", i)
		}
	}
	checkShardInvariants(t, g, "after seed")

	// Find two seed components owned by different shards.
	var a, b Vertex
	refA, _ := g.ComponentOf(sv("r", 0))
	found := false
	for i := 1; i < 8 && !found; i++ {
		ref, _ := g.ComponentOf(sv("r", 2*i))
		if g.ShardOfComponent(ref.ID) != g.ShardOfComponent(refA.ID) {
			a, b = sv("r", 0), sv("r", 2*i)
			found = true
		}
	}
	if !found {
		t.Fatal("hash routing put all 8 seed components on one shard; test needs at least two shards used")
	}

	// Cross-shard merge-on-insert: the bridging edge pulls both components
	// onto one owner shard and the merged component routes there.
	g.BeginChangeLog()
	oldA, _ := g.ComponentOf(a)
	oldB, _ := g.ComponentOf(b)
	migBefore := g.Migrations()
	if !g.AddEdge([]Vertex{a, b}, "bridge") {
		t.Fatal("bridge edge not added")
	}
	ra, okA := g.ComponentOf(a)
	rb, okB := g.ComponentOf(b)
	if !okA || !okB || ra.ID != rb.ID {
		t.Fatalf("merge failed: ComponentOf(a)=%v,%v ComponentOf(b)=%v,%v", ra, okA, rb, okB)
	}
	if c, _ := g.Component(ra.ID); c.Verts != 4 || c.Edges != 3 {
		t.Fatalf("merged component has verts=%d edges=%d, want 4/3", c.Verts, c.Edges)
	}
	if g.Migrations() == migBefore {
		t.Fatal("cross-shard merge recorded no migration")
	}
	log := g.TakeChangeLog()
	for _, id := range []uint64{oldA.ID, oldB.ID} {
		if _, ok := log.Touched[id]; !ok {
			t.Errorf("change log missing pre-merge component id %d (cache invalidation would leak)", id)
		}
	}
	checkShardInvariants(t, g, "after merge")

	// Walk-based split-on-delete: removing the bridge's endpoint splits the
	// component; the parts stay in the owning shard (fresh ids from its
	// strided allocator) and route back to it.
	owner := g.ShardOfComponent(ra.ID)
	if n := g.RemoveVertex(a); n == 0 {
		t.Fatal("RemoveVertex removed nothing")
	}
	rb2, ok := g.ComponentOf(b)
	if !ok {
		t.Fatal("b lost its component after split")
	}
	if got := g.ShardOfComponent(rb2.ID); got != owner {
		t.Fatalf("split part routed to shard %d, want owning shard %d", got, owner)
	}
	checkShardInvariants(t, g, "after split")

	// Empty-shard reclamation: removing every edge releases emptied shard
	// state while preserving allocators.
	recBefore := g.Reclamations()
	for _, e := range g.Edges() {
		g.RemoveEdge(e.Verts)
	}
	if g.NumEdges() != 0 || g.NumComponents() != 0 {
		t.Fatalf("graph not empty after removing all edges: e=%d c=%d", g.NumEdges(), g.NumComponents())
	}
	if g.Reclamations() == recBefore {
		t.Fatal("emptying the graph reclaimed no shard state")
	}
	// Fresh ids must still be allocated with the per-shard stride (never a
	// duplicate of a pre-reclamation id of another shard's residue).
	g.AddEdge([]Vertex{sv("x", 0), sv("x", 1)}, "post")
	ref, _ := g.ComponentOf(sv("x", 0))
	if int(ref.ID%k) != g.ShardOfComponent(ref.ID) {
		t.Fatalf("post-reclamation id %d does not route to its shard", ref.ID)
	}
	checkShardInvariants(t, g, "after reclamation")
}

// TestShardRoutingDeterministic asserts that replaying the same mutation
// script yields identical component ids, owners, and counters — the
// routing pipeline has no map-iteration nondeterminism.
func TestShardRoutingDeterministic(t *testing.T) {
	build := func() (*ShardedHypergraph, string) {
		g := NewShardedHypergraph(3)
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 200; i++ {
			switch rng.Intn(3) {
			case 0, 1:
				g.AddEdge([]Vertex{sv("t", rng.Intn(40)), sv("t", rng.Intn(40))}, "e")
			default:
				v := sv("t", rng.Intn(40))
				g.RemoveVertex(v)
			}
		}
		verts := g.ConflictingVertices()
		sort.Slice(verts, func(a, b int) bool {
			if verts[a].Rel != verts[b].Rel {
				return verts[a].Rel < verts[b].Rel
			}
			return verts[a].Row < verts[b].Row
		})
		sig := fmt.Sprintf("mig=%d rec=%d", g.Migrations(), g.Reclamations())
		for _, v := range verts {
			ref, _ := g.ComponentOf(v)
			sig += fmt.Sprintf(";%v=%d/%d", v, ref.ID, ref.FP)
		}
		return g, sig
	}
	g1, sig1 := build()
	_, sig2 := build()
	if sig1 != sig2 {
		t.Fatal("same script produced different shard states")
	}
	checkShardInvariants(t, g1, "deterministic build")
}

// TestShardedK1BitIdentity drives a K=1 sharded graph and a plain
// Hypergraph through the same script and asserts identical component ids,
// fingerprints, and edge sets — the unsharded configuration is exactly the
// legacy code path.
func TestShardedK1BitIdentity(t *testing.T) {
	g := NewShardedHypergraph(1)
	h := NewHypergraph()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		switch rng.Intn(3) {
		case 0, 1:
			verts := []Vertex{sv("t", rng.Intn(30)), sv("t", rng.Intn(30))}
			if ga, ha := g.AddEdge(verts, "e"), h.AddEdge(verts, "e"); ga != ha {
				t.Fatalf("step %d: AddEdge returned %v (sharded) vs %v (plain)", i, ga, ha)
			}
		default:
			v := sv("t", rng.Intn(30))
			if gn, hn := g.RemoveVertex(v), h.RemoveVertex(v); gn != hn {
				t.Fatalf("step %d: RemoveVertex removed %d (sharded) vs %d (plain)", i, gn, hn)
			}
		}
	}
	if g.NumEdges() != h.NumEdges() || g.NumComponents() != h.NumComponents() {
		t.Fatalf("aggregate mismatch: sharded e=%d c=%d, plain e=%d c=%d",
			g.NumEdges(), g.NumComponents(), h.NumEdges(), h.NumComponents())
	}
	for _, v := range h.ConflictingVertices() {
		gr, gok := g.ComponentOf(v)
		hr, hok := h.ComponentOf(v)
		if gok != hok || gr != hr {
			t.Fatalf("vertex %v: sharded ref %v/%v, plain ref %v/%v — K=1 must be bit-identical", v, gr, gok, hr, hok)
		}
	}
	if g.Migrations() != 0 || g.Reclamations() != 0 {
		t.Fatalf("K=1 recorded migrations=%d reclamations=%d, want 0/0", g.Migrations(), g.Reclamations())
	}
}

// TestShardedMatchesPlainRandomized replays a random script into a K-way
// sharded graph and a plain graph and asserts the partition semantics
// agree: same edge multiset, same conflicting vertices, same component
// grouping (ids differ; the partition may not), and agreeing independence
// answers.
func TestShardedMatchesPlainRandomized(t *testing.T) {
	for _, k := range []int{2, 3, 4} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			g := NewShardedHypergraph(k)
			h := NewHypergraph()
			rng := rand.New(rand.NewSource(int64(100 + k)))
			for i := 0; i < 400; i++ {
				switch rng.Intn(4) {
				case 0, 1, 2:
					n := 2 + rng.Intn(2) // binary and ternary edges
					verts := make([]Vertex, n)
					for j := range verts {
						verts[j] = sv("t", rng.Intn(36))
					}
					g.AddEdge(verts, "e")
					h.AddEdge(verts, "e")
				default:
					v := sv("t", rng.Intn(36))
					g.RemoveVertex(v)
					h.RemoveVertex(v)
				}
			}
			checkShardInvariants(t, g, "randomized")

			ge, he := make(map[string]bool), make(map[string]bool)
			for _, e := range g.Edges() {
				ge[e.key()] = true
			}
			for _, e := range h.Edges() {
				he[e.key()] = true
			}
			if len(ge) != len(he) || len(ge) != g.NumEdges() {
				t.Fatalf("edge sets differ: sharded %d, plain %d", len(ge), len(he))
			}
			for key := range he {
				if !ge[key] {
					t.Fatalf("plain edge %q missing from sharded graph", key)
				}
			}

			// Same partition: vertices share a sharded component iff they
			// share a plain component.
			gID := make(map[Vertex]uint64)
			hID := make(map[Vertex]uint64)
			for _, v := range h.ConflictingVertices() {
				gr, ok := g.ComponentOf(v)
				if !ok {
					t.Fatalf("vertex %v unlabeled in sharded graph", v)
				}
				hr, _ := h.ComponentOf(v)
				gID[v], hID[v] = gr.ID, hr.ID
			}
			g2h := make(map[uint64]uint64)
			h2g := make(map[uint64]uint64)
			for v := range hID {
				if id, ok := g2h[gID[v]]; ok && id != hID[v] {
					t.Fatalf("sharded component %d spans plain components %d and %d", gID[v], id, hID[v])
				}
				if id, ok := h2g[hID[v]]; ok && id != gID[v] {
					t.Fatalf("plain component %d split across sharded components %d and %d", hID[v], id, gID[v])
				}
				g2h[gID[v]] = hID[v]
				h2g[hID[v]] = gID[v]
			}

			// Independence agreement on random vertex sets.
			verts := h.ConflictingVertices()
			if len(verts) == 0 {
				t.Skip("degenerate script: no conflicts")
			}
			for trial := 0; trial < 100; trial++ {
				s := VertexSet{}
				for j := 0; j < 1+rng.Intn(4); j++ {
					s[verts[rng.Intn(len(verts))]] = true
				}
				extra := verts[rng.Intn(len(verts))]
				if gi, hi := g.Independent(s), h.Independent(s); gi != hi {
					t.Fatalf("Independent(%v): sharded %v, plain %v", s, gi, hi)
				}
				if gi, hi := g.IndependentWith(s, extra), h.IndependentWith(s, extra); gi != hi {
					t.Fatalf("IndependentWith(%v, %v): sharded %v, plain %v", s, extra, gi, hi)
				}
			}
		})
	}
}
