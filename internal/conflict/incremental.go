package conflict

import (
	"strings"

	"hippo/internal/constraint"
	"hippo/internal/engine"
	"hippo/internal/storage"
	"hippo/internal/value"
)

// Delta is one DML change routed from the engine to the conflict stage: a
// single-row insert or delete on a named table.
type Delta struct {
	Table  string
	Change storage.Change
}

// IncrementalStats counts hypergraph maintenance work across deltas.
type IncrementalStats struct {
	DeltasApplied int64 // deltas folded into the hypergraph
	EdgesAdded    int64 // hyperedges added by insert probes
	EdgesRemoved  int64 // hyperedges removed by delete deltas
	Combinations  int64 // tuple combinations examined by insert probes
}

// Add accumulates o into s.
func (s *IncrementalStats) Add(o IncrementalStats) {
	s.DeltasApplied += o.DeltasApplied
	s.EdgesAdded += o.EdgesAdded
	s.EdgesRemoved += o.EdgesRemoved
	s.Combinations += o.Combinations
}

// Sub returns the counter-wise difference s - o (e.g. work done since a
// snapshot o was taken).
func (s IncrementalStats) Sub(o IncrementalStats) IncrementalStats {
	return IncrementalStats{
		DeltasApplied: s.DeltasApplied - o.DeltasApplied,
		EdgesAdded:    s.EdgesAdded - o.EdgesAdded,
		EdgesRemoved:  s.EdgesRemoved - o.EdgesRemoved,
		Combinations:  s.Combinations - o.Combinations,
	}
}

// edgeSink receives detected violation edges: a live (possibly sharded)
// hypergraph, or a collector that records edges without mutating anything
// (the read-only probe stage of the parallel shard fold).
type edgeSink interface {
	AddEdge(verts []Vertex, label string) bool
}

// EdgeStore is the mutable hypergraph surface incremental maintenance
// drives. Both *Hypergraph and *ShardedHypergraph implement it.
type EdgeStore interface {
	edgeSink
	RemoveVertex(v Vertex) int
	NumEdges() int
}

var (
	_ EdgeStore = (*Hypergraph)(nil)
	_ EdgeStore = (*ShardedHypergraph)(nil)
)

// IncrementalDetector maintains a fully detected conflict hypergraph under
// DML deltas, without rescanning tables:
//
//   - a delete removes every hyperedge containing the dead tuple
//     (RemoveVertex) — each violation it participated in vanishes with it;
//   - an insert probes, for every constraint atom the new tuple can bind,
//     the per-constraint hash indexes for violating combinations that
//     involve the new tuple, adding exactly those hyperedges.
//
// Deltas must be applied in statement order; the hypergraph then converges
// to what a fresh full Detect would build (transient edges created by an
// insert that is later deleted are removed again by the delete's
// RemoveVertex). DDL and constraint changes are outside its scope — the
// core falls back to a full rebuild for those.
type IncrementalDetector struct {
	h EdgeStore
	// probes per (lowercased) relation name: the work an insert into that
	// relation triggers.
	probes map[string][]probe
	stats  IncrementalStats
}

// probe is one compiled insert-reaction: either an FD fast-path lookup or
// a denial program with the changed relation's atom pinned first.
type probe struct {
	fd   *fdPlan
	prog *denialProgram
}

// NewIncrementalDetector compiles delta probes for the constraint set over
// db's current schema, maintaining h (which must be the result of a full
// Detect over the same database and constraints). It ensures the same
// per-constraint hash indexes full detection uses, so probes are O(group)
// rather than O(table).
func NewIncrementalDetector(db *engine.DB, h EdgeStore, constraints []constraint.Constraint) (*IncrementalDetector, error) {
	inc := &IncrementalDetector{h: h, probes: make(map[string][]probe)}
	for _, c := range constraints {
		if fd, ok := c.(constraint.FD); ok {
			p, err := planFD(db, fd)
			if err != nil {
				return nil, err
			}
			inc.probes[p.rel] = append(inc.probes[p.rel], probe{fd: p})
			continue
		}
		den, err := c.Denial(db)
		if err != nil {
			return nil, err
		}
		// One pinned program per atom position: an insert into the atom's
		// relation enumerates only combinations binding the new row there.
		for pos, atom := range den.Atoms {
			order := make([]int, 0, len(den.Atoms))
			order = append(order, pos)
			for i := range den.Atoms {
				if i != pos {
					order = append(order, i)
				}
			}
			prog, err := compileDenial(db, den, order)
			if err != nil {
				return nil, err
			}
			rel := strings.ToLower(atom.Rel)
			inc.probes[rel] = append(inc.probes[rel], probe{prog: prog})
		}
	}
	return inc, nil
}

// Stats returns the maintenance counters accumulated so far.
func (inc *IncrementalDetector) Stats() IncrementalStats { return inc.stats }

// Apply folds one delta into the hypergraph.
func (inc *IncrementalDetector) Apply(d Delta) error {
	rel := strings.ToLower(d.Table)
	inc.stats.DeltasApplied++
	if d.Change.Kind == storage.ChangeDelete {
		inc.stats.EdgesRemoved += int64(inc.h.RemoveVertex(Vertex{Rel: rel, Row: d.Change.Row}))
		return nil
	}
	before := inc.h.NumEdges()
	pin := &pinnedRow{ID: d.Change.Row, Row: d.Change.Tuple}
	var probeStats DetectStats
	if err := runProbes(inc.h, inc.probes[rel], pin, &probeStats); err != nil {
		return err
	}
	inc.stats.Combinations += probeStats.Combinations
	inc.stats.EdgesAdded += int64(inc.h.NumEdges() - before)
	return nil
}

// runProbes feeds every violation edge the pinned row introduces into the
// sink. It only reads table and index state, so concurrent invocations
// against distinct sinks are safe while writes are frozen.
func runProbes(sink edgeSink, probes []probe, pin *pinnedRow, stats *DetectStats) error {
	for _, p := range probes {
		if p.fd != nil {
			probeFD(sink, p.fd, pin, stats)
			continue
		}
		if err := p.prog.enumerate(sink, stats, pin); err != nil {
			return err
		}
	}
	return nil
}

// probeFD adds the FD-violation edges the pinned row introduces: every
// live row sharing its LHS group but disagreeing on the RHS.
func probeFD(sink edgeSink, p *fdPlan, pin *pinnedRow, stats *DetectStats) {
	rhsKey := value.KeyOf(pin.Row, p.rhs)
	for _, id := range p.idx.LookupRow(pin.Row) {
		if id == pin.ID {
			continue
		}
		row, ok := p.table.Row(id)
		if !ok {
			continue
		}
		stats.Combinations++
		if value.KeyOf(row, p.rhs) != rhsKey {
			sink.AddEdge([]Vertex{{Rel: p.rel, Row: pin.ID}, {Rel: p.rel, Row: id}}, p.label)
		}
	}
}
