package conflict

import (
	"hash/fnv"
	"slices"
)

// Connected-component maintenance.
//
// Repairs factor over the connected components of the conflict hypergraph:
// a repair is a maximal independent set, and independence decomposes over
// components (no hyperedge crosses a component boundary), so the repairs
// of the database are exactly the cross product of the per-component
// repairs. Certification cost is therefore exponential only in the largest
// component — never in the whole conflict set — and a component whose edge
// set did not change certifies candidates exactly as before, which is what
// the verdict cache exploits.
//
// Components are labeled eagerly at mutation time (AddEdge / removeSlot
// run under the core's write lock, so there is no concurrency here):
// adding an edge merges the components of its endpoints, removing one may
// split its component, and a vertex that loses its last incident edge
// leaves the component map entirely (reclamation). Each structural change
// recomputes the affected component by a breadth-first walk — components
// are small by the paper's locality premise, so this stays cheap — and the
// component's fingerprint is rebuilt as the XOR of its edges' hashes, so
// two components with the same edge set always agree on the fingerprint
// regardless of mutation history.

// ComponentRef identifies one connected component of the hypergraph: a
// stable id plus a fingerprint of its exact edge set. The id survives
// mutations only while the component's edge set is untouched (an edge
// addition that keeps the component's identity still changes the
// fingerprint); a merge or split assigns fresh ids to every changed part.
type ComponentRef struct {
	ID uint64
	FP uint64
}

// Component describes one connected component for inspection.
type Component struct {
	ComponentRef
	Verts int
	Edges int
}

// compInfo is the per-component record kept in hgState.
type compInfo struct {
	fp    uint64
	verts int
	edges int
}

// ChangeLog accumulates, across a batch of hypergraph mutations, exactly
// what a component-keyed verdict cache must invalidate: the ids of every
// component whose edge set changed (including ids that vanished in merges
// or splits) and the vertices of added edges (a previously conflict-free
// tuple that gains an edge belongs to no pre-existing component id, so it
// must be invalidated by identity instead).
type ChangeLog struct {
	Touched        map[uint64]struct{}
	AddedEdgeVerts map[Vertex]struct{}
}

func newChangeLog() *ChangeLog {
	return &ChangeLog{
		Touched:        make(map[uint64]struct{}),
		AddedEdgeVerts: make(map[Vertex]struct{}),
	}
}

// BeginChangeLog starts recording component changes on this handle,
// discarding any previous log. The log belongs to the mutating handle, not
// the shared state: clones and snapshots never inherit it.
func (h *Hypergraph) BeginChangeLog() { h.changes = newChangeLog() }

// TakeChangeLog returns the accumulated change log and stops recording.
// It returns an empty log if recording was never started.
func (h *Hypergraph) TakeChangeLog() *ChangeLog {
	log := h.changes
	h.changes = nil
	if log == nil {
		log = newChangeLog()
	}
	return log
}

func (h *Hypergraph) logTouched(id uint64) {
	if h.changes != nil {
		h.changes.Touched[id] = struct{}{}
	}
}

// ComponentOf returns the component containing v, or ok=false when v is
// conflict-free (in no hyperedge).
func (h *Hypergraph) ComponentOf(v Vertex) (ComponentRef, bool) {
	id, ok := h.st.compOf[v]
	if !ok {
		return ComponentRef{}, false
	}
	return ComponentRef{ID: id, FP: h.st.comps[id].fp}, true
}

// Component returns the component with the given id.
func (h *Hypergraph) Component(id uint64) (Component, bool) {
	ci, ok := h.st.comps[id]
	if !ok {
		return Component{}, false
	}
	return Component{ComponentRef: ComponentRef{ID: id, FP: ci.fp}, Verts: ci.verts, Edges: ci.edges}, true
}

// Components lists every connected component (in map order).
func (h *Hypergraph) Components() []Component {
	out := make([]Component, 0, len(h.st.comps))
	for id, ci := range h.st.comps {
		out = append(out, Component{ComponentRef: ComponentRef{ID: id, FP: ci.fp}, Verts: ci.verts, Edges: ci.edges})
	}
	return out
}

// NumComponents returns the number of connected components.
func (h *Hypergraph) NumComponents() int { return len(h.st.comps) }

// ConflictingVertices lists every vertex in at least one hyperedge.
func (h *Hypergraph) ConflictingVertices() []Vertex {
	out := make([]Vertex, 0, len(h.st.byVertex))
	for v := range h.st.byVertex {
		out = append(out, v)
	}
	return out
}

// ComponentOf returns the component containing v in the snapshot.
func (s *HypergraphSnapshot) ComponentOf(v Vertex) (ComponentRef, bool) { return s.g.ComponentOf(v) }

// Components lists the snapshot's connected components.
func (s *HypergraphSnapshot) Components() []Component { return s.g.Components() }

// NumComponents returns the snapshot's component count.
func (s *HypergraphSnapshot) NumComponents() int { return s.g.NumComponents() }

// edgeHash maps an edge's canonical key to a 64-bit value suitable for
// XOR-combining into a component fingerprint. FNV-1a alone distributes
// poorly under XOR of related keys, so the result is passed through a
// splitmix64 finalizer.
func edgeHash(key string) uint64 {
	f := fnv.New64a()
	f.Write([]byte(key))
	z := f.Sum64()
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// componentEdges returns the live edges of the component containing v, in
// slot (insertion) order, or nil when v is conflict-free. This is the unit
// a ShardedHypergraph moves during a cross-shard migration.
func (h *Hypergraph) componentEdges(v Vertex) []Edge {
	if _, ok := h.st.compOf[v]; !ok {
		return nil
	}
	_, slots := h.st.compWalk(v)
	idxs := make([]int, 0, len(slots))
	for idx := range slots {
		idxs = append(idxs, idx)
	}
	slices.Sort(idxs)
	out := make([]Edge, len(idxs))
	for i, idx := range idxs {
		out[i] = h.st.edges[idx]
	}
	return out
}

// compWalk collects the connected component containing start: its vertex
// set and live edge slots, walking the byVertex adjacency.
func (st *hgState) compWalk(start Vertex) ([]Vertex, map[int]struct{}) {
	verts := []Vertex{start}
	seen := map[Vertex]bool{start: true}
	slots := make(map[int]struct{})
	for i := 0; i < len(verts); i++ {
		for _, idx := range st.byVertex[verts[i]] {
			if _, ok := slots[idx]; ok {
				continue
			}
			slots[idx] = struct{}{}
			for _, u := range st.edges[idx].Verts {
				if !seen[u] {
					seen[u] = true
					verts = append(verts, u)
				}
			}
		}
	}
	return verts, slots
}

// setComponent (re)labels one freshly walked component.
func (st *hgState) setComponent(id uint64, verts []Vertex, slots map[int]struct{}) {
	var fp uint64
	for idx := range slots {
		fp ^= edgeHash(st.edges[idx].key())
	}
	for _, v := range verts {
		st.compOf[v] = id
	}
	st.comps[id] = compInfo{fp: fp, verts: len(verts), edges: len(slots)}
}

// compEdgeAdded maintains component labels after e was linked into the
// graph. The caller owns the state.
func (h *Hypergraph) compEdgeAdded(e Edge) {
	st := h.st
	oldIDs := make(map[uint64]struct{})
	for _, v := range e.Verts {
		if id, ok := st.compOf[v]; ok {
			oldIDs[id] = struct{}{}
		}
	}
	// A component that merely grows keeps its id (the fingerprint still
	// changes); a merge of several gets a fresh id.
	var keep uint64
	if len(oldIDs) == 1 {
		for id := range oldIDs {
			keep = id
		}
	} else {
		st.nextComp += st.stride
		keep = st.nextComp
	}
	for id := range oldIDs {
		h.logTouched(id)
		if id != keep {
			delete(st.comps, id)
		}
	}
	h.logTouched(keep)
	verts, slots := st.compWalk(e.Verts[0])
	st.setComponent(keep, verts, slots)
	if h.changes != nil && !h.migrating {
		for _, v := range e.Verts {
			h.changes.AddedEdgeVerts[v] = struct{}{}
		}
	}
}

// compEdgeRemoved maintains component labels after e was unlinked. Every
// surviving part of the old component contains at least one vertex of e
// (any old path into the component that used e reaches one of e's
// endpoints first), so walking from e's vertices finds all parts. The
// first part keeps the old id; further parts — a genuine split — get fresh
// ids; vertices with no remaining edges are reclaimed.
func (h *Hypergraph) compEdgeRemoved(e Edge) {
	st := h.st
	old, ok := st.compOf[e.Verts[0]]
	if !ok {
		return
	}
	h.logTouched(old)
	delete(st.comps, old)
	relabeled := make(map[Vertex]bool)
	first := true
	for _, v := range e.Verts {
		if len(st.byVertex[v]) == 0 {
			delete(st.compOf, v) // conflict-free again: reclaim
			continue
		}
		if relabeled[v] {
			continue
		}
		verts, slots := st.compWalk(v)
		for _, u := range verts {
			relabeled[u] = true
		}
		id := old
		if !first {
			st.nextComp += st.stride
			id = st.nextComp
		}
		first = false
		st.setComponent(id, verts, slots)
	}
}
