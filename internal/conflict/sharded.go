package conflict

import "slices"

// Component-sharded conflict hypergraph.
//
// Because no hyperedge crosses a connected-component boundary, the
// hypergraph partitions exactly by component: each of K shards is a plain
// Hypergraph owning a disjoint set of components, and every read the
// certification plane issues (ComponentOf, EdgesContaining, independence
// checks) resolves entirely within one shard. Component ids are allocated
// with stride K and base i on shard i, so id % K names the owning shard in
// O(1) and ids never collide across shards.
//
// The only cross-shard event is a merge: an inserted edge whose endpoints
// lie in components currently owned by different shards. The edge is
// routed to a deterministic owner (the shard holding the most edges among
// the involved components, ties to the lowest shard index) and the other
// shards' components migrate there first — their edges are removed from
// the source shard and re-added in the owner — after which the insert
// applies shard-locally. Splits never cross shards: the parts of a split
// component get fresh ids from the owning shard's allocator and stay put.
//
// With K = 1 every operation delegates to the single underlying
// Hypergraph, and the allocator (base 0, stride 1) yields the exact id
// sequence a standalone graph would: the unsharded configuration is
// bit-identical to the pre-shard code path.

// ShardedHypergraph partitions a conflict hypergraph by connected
// component over K shards. Mutations follow the same single-writer
// discipline as Hypergraph (the core serializes writers); reads are safe
// concurrently with other reads.
type ShardedHypergraph struct {
	shards []*Hypergraph
	k      int

	migrations   int64 // components moved between shards by merges
	reclamations int64 // emptied shards whose state was released
}

// NewShardedHypergraph returns an empty K-way sharded hypergraph (K < 1 is
// treated as 1).
func NewShardedHypergraph(k int) *ShardedHypergraph {
	if k < 1 {
		k = 1
	}
	sh := &ShardedHypergraph{shards: make([]*Hypergraph, k), k: k}
	for i := range sh.shards {
		sh.shards[i] = newHypergraphStrided(uint64(i), uint64(k))
	}
	return sh
}

// shardHypergraph wraps an existing standalone graph as a 1-way sharded
// container without copying: the full-detection path hands its freshly
// built Hypergraph straight to the certification plane when K = 1.
func shardHypergraph1(h *Hypergraph) *ShardedHypergraph {
	return &ShardedHypergraph{shards: []*Hypergraph{h}, k: 1}
}

// ShardHypergraph repartitions a fully detected standalone graph into a
// K-way sharded one by replaying its edges. K = 1 wraps the graph in place
// (same state, same allocator — the id sequence already matches).
func ShardHypergraph(h *Hypergraph, k int) *ShardedHypergraph {
	if k < 1 {
		k = 1
	}
	if k == 1 {
		return shardHypergraph1(h)
	}
	sh := NewShardedHypergraph(k)
	for _, e := range h.Edges() {
		sh.AddEdge(e.Verts, e.Label)
	}
	return sh
}

// NumShards returns K.
func (g *ShardedHypergraph) NumShards() int { return g.k }

// Migrations returns how many components moved between shards due to
// cross-shard merges.
func (g *ShardedHypergraph) Migrations() int64 { return g.migrations }

// Reclamations returns how many times an emptied shard's state was
// released.
func (g *ShardedHypergraph) Reclamations() int64 { return g.reclamations }

// ShardOfComponent returns the index of the shard owning component id.
func (g *ShardedHypergraph) ShardOfComponent(id uint64) int { return int(id % uint64(g.k)) }

// shardOfVertex returns the index of the shard whose graph contains v, or
// -1 when v is conflict-free everywhere. A conflicting vertex appears in
// exactly one shard (its component's owner).
func (g *ShardedHypergraph) shardOfVertex(v Vertex) int {
	for i, h := range g.shards {
		if h.InConflict(v) {
			return i
		}
	}
	return -1
}

// ShardInfo summarizes one shard for stats surfaces.
type ShardInfo struct {
	Shard      int
	Edges      int
	Components int
	Vertices   int
}

// ShardStats reports per-shard sizes.
func (g *ShardedHypergraph) ShardStats() []ShardInfo {
	out := make([]ShardInfo, g.k)
	for i, h := range g.shards {
		out[i] = ShardInfo{
			Shard:      i,
			Edges:      h.NumEdges(),
			Components: h.NumComponents(),
			Vertices:   h.NumConflictingVertices(),
		}
	}
	return out
}

// --- Mutations -----------------------------------------------------------

// AddEdge inserts a hyperedge, routing it to the shard owning its
// endpoints' components. When the endpoints span several shards the
// involved components first migrate to a deterministic owner: the shard
// whose involved components carry the most edges (ties to the lowest
// index), so the bulk of the merged component never moves. An edge among
// all-new vertices lands on edgeHash(key) % K. Reports whether the edge
// was new.
func (g *ShardedHypergraph) AddEdge(verts []Vertex, label string) bool {
	if g.k == 1 {
		return g.shards[0].AddEdge(verts, label)
	}
	e := newEdge(verts, label)
	if len(e.Verts) == 0 {
		return false
	}
	owner := g.routeEdge(e)
	return g.shards[owner].AddEdge(e.Verts, e.Label)
}

// routeEdge picks (and prepares, migrating if needed) the owner shard for
// a canonicalized edge. The caller applies the edge there afterwards.
func (g *ShardedHypergraph) routeEdge(e Edge) int {
	// Weight per shard: total edges of the involved components it owns.
	weight := make(map[int]int)
	seen := make(map[uint64]Vertex) // involved component id -> a member vertex
	for _, v := range e.Verts {
		for i, h := range g.shards {
			if ref, ok := h.ComponentOf(v); ok {
				if _, dup := seen[ref.ID]; !dup {
					seen[ref.ID] = v
					c, _ := h.Component(ref.ID)
					weight[i] += c.Edges
				}
				break
			}
		}
	}
	if len(weight) == 0 {
		return int(edgeHash(e.key()) % uint64(g.k))
	}
	owner := -1
	for i := 0; i < g.k; i++ {
		if w, ok := weight[i]; ok && (owner == -1 || w > weight[owner]) {
			owner = i
		}
	}
	ids := make([]uint64, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	slices.Sort(ids) // deterministic migration order
	for _, id := range ids {
		if from := g.ShardOfComponent(id); from != owner {
			g.migrate(seen[id], from, owner)
		}
	}
	return owner
}

// migrate moves the component containing v from one shard to another: its
// edges are removed at the source (logging the old id as touched) and
// re-added at the destination with AddedEdgeVerts recording suppressed —
// the moved vertices' old component ids cover their invalidation.
func (g *ShardedHypergraph) migrate(v Vertex, from, to int) {
	src, dst := g.shards[from], g.shards[to]
	edges := src.componentEdges(v)
	for _, e := range edges {
		src.RemoveEdge(e.Verts)
	}
	dst.migrating = true
	for _, e := range edges {
		dst.AddEdge(e.Verts, e.Label)
	}
	dst.migrating = false
	g.migrations++
	g.reclaimEmptyShard(from)
}

// RemoveVertex deletes every hyperedge containing v from its owning shard,
// returning the number of edges removed.
func (g *ShardedHypergraph) RemoveVertex(v Vertex) int {
	if g.k == 1 {
		return g.shards[0].RemoveVertex(v)
	}
	i := g.shardOfVertex(v)
	if i < 0 {
		return 0
	}
	n := g.shards[i].RemoveVertex(v)
	g.reclaimEmptyShard(i)
	return n
}

// RemoveEdge deletes the hyperedge with exactly the given vertex set.
func (g *ShardedHypergraph) RemoveEdge(verts []Vertex) bool {
	if g.k == 1 {
		return g.shards[0].RemoveEdge(verts)
	}
	for i, h := range g.shards {
		if h.RemoveEdge(verts) {
			g.reclaimEmptyShard(i)
			return true
		}
	}
	return false
}

// reclaimEmptyShard releases an emptied shard's state (preserving its id
// allocator). K = 1 keeps the standalone graph untouched for bit-identity
// with the pre-shard path.
func (g *ShardedHypergraph) reclaimEmptyShard(i int) {
	if g.k == 1 {
		return
	}
	if g.shards[i].reclaimEmptyState() {
		g.reclamations++
	}
}

// --- Change log ----------------------------------------------------------

// BeginChangeLog starts component-change recording on every shard.
func (g *ShardedHypergraph) BeginChangeLog() {
	for _, h := range g.shards {
		h.BeginChangeLog()
	}
}

// TakeChangeLog merges and clears the per-shard logs.
func (g *ShardedHypergraph) TakeChangeLog() *ChangeLog {
	out := newChangeLog()
	for _, h := range g.shards {
		log := h.TakeChangeLog()
		for id := range log.Touched {
			out.Touched[id] = struct{}{}
		}
		for v := range log.AddedEdgeVerts {
			out.AddedEdgeVerts[v] = struct{}{}
		}
	}
	return out
}

// --- Snapshots -----------------------------------------------------------

// ShardedSnapshot is an immutable published view of a sharded hypergraph,
// mirroring HypergraphSnapshot: per-shard states freeze copy-on-write, and
// the composite read handle serves lock-free concurrent readers.
type ShardedSnapshot struct {
	g *ShardedHypergraph
}

// Snapshot freezes the current state of every shard. O(K); the next
// mutation of a shard pays that shard's state copy only.
func (g *ShardedHypergraph) Snapshot() *ShardedSnapshot {
	shs := make([]*Hypergraph, g.k)
	for i, h := range g.shards {
		shs[i] = h.Snapshot().Graph()
	}
	return &ShardedSnapshot{g: &ShardedHypergraph{shards: shs, k: g.k}}
}

// Graph returns the snapshot's composite read handle. It must not be
// mutated (see HypergraphSnapshot.Graph).
func (s *ShardedSnapshot) Graph() *ShardedHypergraph { return s.g }

// Stats summarizes the snapshot.
func (s *ShardedSnapshot) Stats() Stats { return s.g.Stats() }

// NumEdges returns the number of live hyperedges in the snapshot.
func (s *ShardedSnapshot) NumEdges() int { return s.g.NumEdges() }

// Edges returns all live hyperedges of the snapshot.
func (s *ShardedSnapshot) Edges() []Edge { return s.g.Edges() }

// ComponentOf returns the component containing v in the snapshot.
func (s *ShardedSnapshot) ComponentOf(v Vertex) (ComponentRef, bool) { return s.g.ComponentOf(v) }

// Components lists the snapshot's connected components.
func (s *ShardedSnapshot) Components() []Component { return s.g.Components() }

// NumComponents returns the snapshot's component count.
func (s *ShardedSnapshot) NumComponents() int { return s.g.NumComponents() }

// --- Graph (read) interface ----------------------------------------------

// ComponentOf returns the component containing v. At most one shard knows
// v; K is small, so the probe is a handful of map lookups.
func (g *ShardedHypergraph) ComponentOf(v Vertex) (ComponentRef, bool) {
	for _, h := range g.shards {
		if ref, ok := h.ComponentOf(v); ok {
			return ref, true
		}
	}
	return ComponentRef{}, false
}

// Component returns the component with the given id, resolved directly on
// its owning shard (id % K).
func (g *ShardedHypergraph) Component(id uint64) (Component, bool) {
	return g.shards[g.ShardOfComponent(id)].Component(id)
}

// Components lists every connected component across all shards.
func (g *ShardedHypergraph) Components() []Component {
	out := make([]Component, 0)
	for _, h := range g.shards {
		out = append(out, h.Components()...)
	}
	return out
}

// NumComponents returns the total component count.
func (g *ShardedHypergraph) NumComponents() int {
	n := 0
	for _, h := range g.shards {
		n += h.NumComponents()
	}
	return n
}

// EdgesContaining returns the hyperedges that contain v.
func (g *ShardedHypergraph) EdgesContaining(v Vertex) []Edge {
	if i := g.shardOfVertex(v); i >= 0 {
		return g.shards[i].EdgesContaining(v)
	}
	return nil
}

// Degree returns the number of hyperedges containing v.
func (g *ShardedHypergraph) Degree(v Vertex) int {
	if i := g.shardOfVertex(v); i >= 0 {
		return g.shards[i].Degree(v)
	}
	return 0
}

// InConflict reports whether v participates in any hyperedge.
func (g *ShardedHypergraph) InConflict(v Vertex) bool { return g.shardOfVertex(v) >= 0 }

// Independent reports whether s contains no complete hyperedge. Every
// edge lives in exactly one shard, so the check is the conjunction of the
// per-shard checks.
func (g *ShardedHypergraph) Independent(s VertexSet) bool {
	for _, h := range g.shards {
		if !h.Independent(s) {
			return false
		}
	}
	return true
}

// IndependentWith reports whether s ∪ {extra...} stays independent. An
// edge through an added vertex lies wholly in that vertex's component's
// shard, and extras sharing an edge share a component, so grouping extras
// by owning shard and checking each group against its shard is exact;
// conflict-free extras have no incident edges and cannot matter.
func (g *ShardedHypergraph) IndependentWith(s VertexSet, extra ...Vertex) bool {
	if g.k == 1 {
		return g.shards[0].IndependentWith(s, extra...)
	}
	for _, h := range g.shards {
		var mine []Vertex
		for _, v := range extra {
			if h.InConflict(v) {
				mine = append(mine, v)
			}
		}
		if len(mine) > 0 && !h.IndependentWith(s, mine...) {
			return false
		}
	}
	return true
}

// Edges returns all live hyperedges across shards.
func (g *ShardedHypergraph) Edges() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	for _, h := range g.shards {
		out = append(out, h.Edges()...)
	}
	return out
}

// NumEdges returns the number of live hyperedges.
func (g *ShardedHypergraph) NumEdges() int {
	n := 0
	for _, h := range g.shards {
		n += h.NumEdges()
	}
	return n
}

// NumConflictingVertices returns the number of distinct conflicting tuples.
func (g *ShardedHypergraph) NumConflictingVertices() int {
	n := 0
	for _, h := range g.shards {
		n += h.NumConflictingVertices()
	}
	return n
}

// ConflictingVertices lists every vertex in at least one hyperedge.
func (g *ShardedHypergraph) ConflictingVertices() []Vertex {
	out := make([]Vertex, 0, g.NumConflictingVertices())
	for _, h := range g.shards {
		out = append(out, h.ConflictingVertices()...)
	}
	return out
}

// Stats computes summary statistics over all shards.
func (g *ShardedHypergraph) Stats() Stats {
	if g.k == 1 {
		return g.shards[0].Stats()
	}
	var out Stats
	for _, h := range g.shards {
		st := h.Stats()
		out.Edges += st.Edges
		out.ConflictingVertices += st.ConflictingVertices
		out.Components += st.Components
		out.MaxDegree = max(out.MaxDegree, st.MaxDegree)
		out.MaxEdgeSize = max(out.MaxEdgeSize, st.MaxEdgeSize)
		out.MaxComponent = max(out.MaxComponent, st.MaxComponent)
	}
	return out
}
