package conflict

import (
	"fmt"
	"strings"
	"time"

	"hippo/internal/constraint"
	"hippo/internal/engine"
	"hippo/internal/ra"
	"hippo/internal/schema"
	"hippo/internal/storage"
	"hippo/internal/value"
)

// DetectStats reports what conflict detection did.
type DetectStats struct {
	Constraints  int           // constraints processed
	Combinations int64         // candidate tuple combinations examined
	Elapsed      time.Duration // wall-clock detection time
}

// Detector finds all minimal constraint violations in a database and
// assembles the conflict hypergraph.
type Detector struct {
	db *engine.DB
	// DisableFDFastPath forces the generic denial-join path even for
	// functional dependencies; used by the detection ablation benchmark.
	DisableFDFastPath bool
}

// NewDetector creates a detector over db.
func NewDetector(db *engine.DB) *Detector { return &Detector{db: db} }

// Detect evaluates every constraint and returns the conflict hypergraph
// plus a tuple index over all referenced relations.
func (d *Detector) Detect(constraints []constraint.Constraint) (*Hypergraph, *TupleIndex, DetectStats, error) {
	start := time.Now()
	h := NewHypergraph()
	stats := DetectStats{Constraints: len(constraints)}
	// Index every table, not just the constrained ones: the prover's
	// membership checks may touch any relation the query mentions.
	tables := make(map[string]*storage.Table)
	for _, name := range d.db.TableNames() {
		t, err := d.db.Table(name)
		if err != nil {
			return nil, nil, stats, err
		}
		tables[name] = t
	}

	for _, c := range constraints {
		den, err := c.Denial(d.db)
		if err != nil {
			return nil, nil, stats, err
		}
		for _, a := range den.Atoms {
			if _, ok := tables[strings.ToLower(a.Rel)]; !ok {
				return nil, nil, stats, fmt.Errorf("conflict: constraint %s references unknown relation %q", c, a.Rel)
			}
		}
		fd, isFD := c.(constraint.FD)
		if isFD && !d.DisableFDFastPath {
			if err := d.detectFD(h, fd, &stats); err != nil {
				return nil, nil, stats, err
			}
			continue
		}
		if err := d.detectDenial(h, den, &stats); err != nil {
			return nil, nil, stats, err
		}
	}

	ti, err := NewTupleIndex(tables)
	if err != nil {
		return nil, nil, stats, err
	}
	stats.Elapsed = time.Since(start)
	return h, ti, stats, nil
}

// detectFD finds FD violations by hash-grouping on the LHS: within each
// LHS group, every pair of rows disagreeing on the RHS is a conflict edge.
func (d *Detector) detectFD(h *Hypergraph, fd constraint.FD, stats *DetectStats) error {
	t, err := d.db.Table(fd.Rel)
	if err != nil {
		return err
	}
	sch := t.Schema()
	lhs, err := resolveCols(sch, fd.LHS)
	if err != nil {
		return fmt.Errorf("conflict: %s: %v", fd, err)
	}
	rhs, err := resolveCols(sch, fd.RHS)
	if err != nil {
		return fmt.Errorf("conflict: %s: %v", fd, err)
	}
	idx, err := t.EnsureIndex(lhs)
	if err != nil {
		return err
	}
	rel := strings.ToLower(fd.Rel)
	label := fd.String()
	return idx.Groups(func(ids []storage.RowID) error {
		if len(ids) < 2 {
			return nil
		}
		// Partition the group by RHS value; rows in different partitions
		// conflict pairwise.
		parts := make(map[string][]storage.RowID)
		for _, id := range ids {
			row, ok := t.Row(id)
			if !ok {
				continue
			}
			parts[value.KeyOf(row, rhs)] = append(parts[value.KeyOf(row, rhs)], id)
		}
		if len(parts) < 2 {
			return nil
		}
		keys := make([]string, 0, len(parts))
		for k := range parts {
			keys = append(keys, k)
		}
		for i := 0; i < len(keys); i++ {
			for j := i + 1; j < len(keys); j++ {
				for _, a := range parts[keys[i]] {
					for _, b := range parts[keys[j]] {
						stats.Combinations++
						h.AddEdge([]Vertex{{Rel: rel, Row: a}, {Rel: rel, Row: b}}, label)
					}
				}
			}
		}
		return nil
	})
}

// boundAtom is one denial atom bound to its table, with the column range it
// occupies in the combined row.
type boundAtom struct {
	rel    string
	table  *storage.Table
	offset int // first column index in the combined schema
	arity  int
	// eqOwn/eqSrc describe equality links to earlier atoms usable for
	// index lookups: own column i must equal combined column eqSrc[i].
	eqOwn []int
	eqSrc []int
	index *storage.Index // index over eqOwn, nil when no links
	// residual conjuncts that become fully bound at this atom
	residual ra.Expr
}

// detectDenial enumerates violating tuple combinations for a general
// denial constraint with an index-accelerated backtracking join.
func (d *Detector) detectDenial(h *Hypergraph, den constraint.Denial, stats *DetectStats) error {
	atoms := make([]*boundAtom, len(den.Atoms))
	combined := schema.Schema{}
	for i, a := range den.Atoms {
		t, err := d.db.Table(a.Rel)
		if err != nil {
			return err
		}
		sch := t.Schema().WithQualifier(strings.ToLower(a.Name()))
		atoms[i] = &boundAtom{
			rel:    strings.ToLower(a.Rel),
			table:  t,
			offset: combined.Len(),
			arity:  sch.Len(),
		}
		combined = combined.Concat(sch)
	}
	var cond ra.Expr
	if den.Where != nil {
		var err error
		cond, err = engine.PlanScalar(den.Where, combined)
		if err != nil {
			return fmt.Errorf("conflict: constraint %s: %v", den.Label, err)
		}
	}

	// Distribute conjuncts: an equality between an atom's own column and an
	// earlier atom's column becomes an index link; every other conjunct is
	// evaluated as soon as its last referenced atom is bound.
	atomOf := func(col int) int {
		for i := len(atoms) - 1; i >= 0; i-- {
			if col >= atoms[i].offset {
				return i
			}
		}
		return 0
	}
	for _, c := range ra.Conjuncts(cond) {
		cols := ra.ColumnsUsed(c)
		last := 0
		for _, col := range cols {
			if a := atomOf(col); a > last {
				last = a
			}
		}
		if cmp, ok := c.(ra.Cmp); ok && cmp.Op == ra.EQ && last > 0 {
			lc, lok := cmp.L.(ra.Col)
			rc, rok := cmp.R.(ra.Col)
			if lok && rok {
				li, ri := atomOf(lc.Index), atomOf(rc.Index)
				a := atoms[last]
				var own, src int = -1, -1
				switch {
				case li == last && ri < last:
					own, src = lc.Index-a.offset, rc.Index
				case ri == last && li < last:
					own, src = rc.Index-a.offset, lc.Index
				}
				// A column may back only one index link; further equalities
				// on it stay as residual conjuncts.
				if own >= 0 && !contains(a.eqOwn, own) {
					a.eqOwn = append(a.eqOwn, own)
					a.eqSrc = append(a.eqSrc, src)
					continue
				}
			}
		}
		atoms[last].residual = ra.Conjoin(atoms[last].residual, c)
	}
	for _, a := range atoms {
		if len(a.eqOwn) == 0 {
			continue
		}
		idx, err := a.table.EnsureIndex(a.eqOwn)
		if err != nil {
			return err
		}
		a.index = idx
		// The index canonicalizes column order; remap eqSrc to match so
		// lookup keys are built in index layout.
		srcByOwn := make(map[int]int, len(a.eqOwn))
		for k, own := range a.eqOwn {
			srcByOwn[own] = a.eqSrc[k]
		}
		a.eqOwn = idx.Columns()
		remapped := make([]int, len(a.eqOwn))
		for k, own := range a.eqOwn {
			remapped[k] = srcByOwn[own]
		}
		a.eqSrc = remapped
	}

	label := den.Label
	if label == "" {
		label = den.String()
	}
	row := make(value.Tuple, 0, combined.Len())
	verts := make([]Vertex, 0, len(atoms))

	var enumerate func(i int) error
	enumerate = func(i int) error {
		if i == len(atoms) {
			h.AddEdge(verts, label)
			return nil
		}
		a := atoms[i]
		tryRow := func(id storage.RowID, r value.Tuple) error {
			stats.Combinations++
			row = append(row, r...)
			verts = append(verts, Vertex{Rel: a.rel, Row: id})
			defer func() {
				row = row[:len(row)-len(r)]
				verts = verts[:len(verts)-1]
			}()
			if a.residual != nil {
				pass, err := ra.EvalPredicate(a.residual, row)
				if err != nil {
					return err
				}
				if !pass {
					return nil
				}
			}
			return enumerate(i + 1)
		}
		if a.index != nil {
			key := make(value.Tuple, len(a.eqSrc))
			for k, src := range a.eqSrc {
				key[k] = row[src]
			}
			for _, id := range a.index.Lookup(key) {
				r, ok := a.table.Row(id)
				if !ok {
					continue
				}
				if err := tryRow(id, r); err != nil {
					return err
				}
			}
			return nil
		}
		return a.table.Scan(tryRow)
	}
	return enumerate(0)
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func resolveCols(sch schema.Schema, names []string) ([]int, error) {
	out := make([]int, len(names))
	for i, n := range names {
		idx, err := sch.Resolve("", n)
		if err != nil {
			return nil, err
		}
		out[i] = idx
	}
	return out, nil
}
