package conflict

import (
	"fmt"
	"slices"
	"strings"
	"time"

	"hippo/internal/constraint"
	"hippo/internal/engine"
	"hippo/internal/ra"
	"hippo/internal/schema"
	"hippo/internal/storage"
	"hippo/internal/value"
)

// DetectStats reports what conflict detection did.
type DetectStats struct {
	Constraints  int           // constraints processed
	Combinations int64         // candidate tuple combinations examined
	Elapsed      time.Duration // wall-clock detection time
}

// Detector finds all minimal constraint violations in a database and
// assembles the conflict hypergraph.
type Detector struct {
	db *engine.DB
	// DisableFDFastPath forces the generic denial-join path even for
	// functional dependencies; used by the detection ablation benchmark.
	DisableFDFastPath bool
}

// NewDetector creates a detector over db.
func NewDetector(db *engine.DB) *Detector { return &Detector{db: db} }

// Detect evaluates every constraint and returns the conflict hypergraph
// plus a tuple index over all referenced relations.
func (d *Detector) Detect(constraints []constraint.Constraint) (*Hypergraph, *TupleIndex, DetectStats, error) {
	start := time.Now()
	h := NewHypergraph()
	stats := DetectStats{Constraints: len(constraints)}
	// Index every table, not just the constrained ones: the prover's
	// membership checks may touch any relation the query mentions.
	tables := make(map[string]*storage.Table)
	for _, name := range d.db.TableNames() {
		t, err := d.db.Table(name)
		if err != nil {
			return nil, nil, stats, err
		}
		tables[name] = t
	}

	for _, c := range constraints {
		den, err := c.Denial(d.db)
		if err != nil {
			return nil, nil, stats, err
		}
		for _, a := range den.Atoms {
			if _, ok := tables[strings.ToLower(a.Rel)]; !ok {
				return nil, nil, stats, fmt.Errorf("conflict: constraint %s references unknown relation %q", c, a.Rel)
			}
		}
		fd, isFD := c.(constraint.FD)
		if isFD && !d.DisableFDFastPath {
			if err := d.detectFD(h, fd, &stats); err != nil {
				return nil, nil, stats, err
			}
			continue
		}
		prog, err := compileDenial(d.db, den, nil)
		if err != nil {
			return nil, nil, stats, err
		}
		if err := prog.enumerate(h, &stats, nil); err != nil {
			return nil, nil, stats, err
		}
	}

	ti, err := NewTupleIndex(tables)
	if err != nil {
		return nil, nil, stats, err
	}
	stats.Elapsed = time.Since(start)
	return h, ti, stats, nil
}

// fdPlan resolves an FD's column lists against its table and ensures the
// LHS hash index exists. Both the full detector and the incremental
// detector probe violations through it.
type fdPlan struct {
	table *storage.Table
	lhs   []int
	rhs   []int
	idx   *storage.Index
	rel   string
	label string
}

func planFD(db *engine.DB, fd constraint.FD) (*fdPlan, error) {
	t, err := db.Table(fd.Rel)
	if err != nil {
		return nil, err
	}
	sch := t.Schema()
	lhs, err := resolveCols(sch, fd.LHS)
	if err != nil {
		return nil, fmt.Errorf("conflict: %s: %v", fd, err)
	}
	rhs, err := resolveCols(sch, fd.RHS)
	if err != nil {
		return nil, fmt.Errorf("conflict: %s: %v", fd, err)
	}
	idx, err := t.EnsureIndex(lhs)
	if err != nil {
		return nil, err
	}
	return &fdPlan{
		table: t, lhs: lhs, rhs: rhs, idx: idx,
		rel: strings.ToLower(fd.Rel), label: fd.String(),
	}, nil
}

// detectFD finds FD violations by hash-grouping on the LHS: within each
// LHS group, every pair of rows disagreeing on the RHS is a conflict edge.
func (d *Detector) detectFD(h *Hypergraph, fd constraint.FD, stats *DetectStats) error {
	p, err := planFD(d.db, fd)
	if err != nil {
		return err
	}
	return p.idx.Groups(func(ids []storage.RowID) error {
		if len(ids) < 2 {
			return nil
		}
		// Partition the group by RHS value; rows in different partitions
		// conflict pairwise.
		parts := make(map[string][]storage.RowID)
		for _, id := range ids {
			row, ok := p.table.Row(id)
			if !ok {
				continue
			}
			parts[value.KeyOf(row, p.rhs)] = append(parts[value.KeyOf(row, p.rhs)], id)
		}
		if len(parts) < 2 {
			return nil
		}
		keys := make([]string, 0, len(parts))
		for k := range parts {
			keys = append(keys, k)
		}
		for i := 0; i < len(keys); i++ {
			for j := i + 1; j < len(keys); j++ {
				for _, a := range parts[keys[i]] {
					for _, b := range parts[keys[j]] {
						stats.Combinations++
						h.AddEdge([]Vertex{{Rel: p.rel, Row: a}, {Rel: p.rel, Row: b}}, p.label)
					}
				}
			}
		}
		return nil
	})
}

// boundAtom is one denial atom bound to its table, with the column range it
// occupies in the combined row.
type boundAtom struct {
	rel    string
	table  *storage.Table
	offset int // first column index in the combined schema
	arity  int
	// eqOwn/eqSrc describe equality links to earlier atoms usable for
	// index lookups: own column i must equal combined column eqSrc[i].
	eqOwn []int
	eqSrc []int
	index *storage.Index // index over eqOwn, nil when no links
	// residual conjuncts that become fully bound at this atom
	residual ra.Expr
}

// denialProgram is a compiled enumeration plan for one denial constraint:
// atoms in a fixed order with index links to earlier atoms and residual
// predicates, ready for backtracking enumeration. Compiling the same
// denial under different atom orders lets the incremental detector pin
// any atom position to a freshly inserted row and enumerate only the
// combinations involving it.
type denialProgram struct {
	atoms []*boundAtom
	label string
}

// pinnedRow restricts a program's first atom to a single row instead of a
// table scan — the incremental probe for an insert delta. The tuple is
// carried explicitly so a queued insert can be probed even after the row
// was tombstoned by a later queued delete (the delete delta then removes
// the transient edges again).
type pinnedRow struct {
	ID  storage.RowID
	Row value.Tuple
}

// compileDenial builds the enumeration program for den with atoms taken in
// the given order (a permutation of atom positions; nil means natural
// order). The condition is planned against the reordered combined schema,
// and equality conjuncts linking an atom to earlier atoms become hash
// index lookups.
func compileDenial(db *engine.DB, den constraint.Denial, order []int) (*denialProgram, error) {
	if order == nil {
		order = make([]int, len(den.Atoms))
		for i := range order {
			order[i] = i
		}
	}
	atoms := make([]*boundAtom, len(order))
	combined := schema.Schema{}
	for i, pos := range order {
		a := den.Atoms[pos]
		t, err := db.Table(a.Rel)
		if err != nil {
			return nil, err
		}
		sch := t.Schema().WithQualifier(strings.ToLower(a.Name()))
		atoms[i] = &boundAtom{
			rel:    strings.ToLower(a.Rel),
			table:  t,
			offset: combined.Len(),
			arity:  sch.Len(),
		}
		combined = combined.Concat(sch)
	}
	var cond ra.Expr
	if den.Where != nil {
		var err error
		cond, err = engine.PlanScalar(den.Where, combined)
		if err != nil {
			return nil, fmt.Errorf("conflict: constraint %s: %v", den.Label, err)
		}
	}

	// Distribute conjuncts: an equality between an atom's own column and an
	// earlier atom's column becomes an index link; every other conjunct is
	// evaluated as soon as its last referenced atom is bound.
	atomOf := func(col int) int {
		for i := len(atoms) - 1; i >= 0; i-- {
			if col >= atoms[i].offset {
				return i
			}
		}
		return 0
	}
	for _, c := range ra.Conjuncts(cond) {
		cols := ra.ColumnsUsed(c)
		last := 0
		for _, col := range cols {
			if a := atomOf(col); a > last {
				last = a
			}
		}
		if cmp, ok := c.(ra.Cmp); ok && cmp.Op == ra.EQ && last > 0 {
			lc, lok := cmp.L.(ra.Col)
			rc, rok := cmp.R.(ra.Col)
			if lok && rok {
				li, ri := atomOf(lc.Index), atomOf(rc.Index)
				a := atoms[last]
				var own, src int = -1, -1
				switch {
				case li == last && ri < last:
					own, src = lc.Index-a.offset, rc.Index
				case ri == last && li < last:
					own, src = rc.Index-a.offset, lc.Index
				}
				// A column may back only one index link; further equalities
				// on it stay as residual conjuncts.
				if own >= 0 && !slices.Contains(a.eqOwn, own) {
					a.eqOwn = append(a.eqOwn, own)
					a.eqSrc = append(a.eqSrc, src)
					continue
				}
			}
		}
		atoms[last].residual = ra.Conjoin(atoms[last].residual, c)
	}
	for _, a := range atoms {
		if len(a.eqOwn) == 0 {
			continue
		}
		idx, err := a.table.EnsureIndex(a.eqOwn)
		if err != nil {
			return nil, err
		}
		a.index = idx
		// The index canonicalizes column order; remap eqSrc to match so
		// lookup keys are built in index layout.
		srcByOwn := make(map[int]int, len(a.eqOwn))
		for k, own := range a.eqOwn {
			srcByOwn[own] = a.eqSrc[k]
		}
		a.eqOwn = idx.Columns()
		remapped := make([]int, len(a.eqOwn))
		for k, own := range a.eqOwn {
			remapped[k] = srcByOwn[own]
		}
		a.eqSrc = remapped
	}

	label := den.Label
	if label == "" {
		label = den.String()
	}
	return &denialProgram{atoms: atoms, label: label}, nil
}

// enumerate runs the index-accelerated backtracking join, adding one
// hyperedge per violating tuple combination to the sink. With a non-nil
// pin, the first atom binds only the pinned row, so only combinations
// involving that row are visited.
func (p *denialProgram) enumerate(h edgeSink, stats *DetectStats, pin *pinnedRow) error {
	atoms := p.atoms
	var combinedLen int
	for _, a := range atoms {
		combinedLen += a.arity
	}
	row := make(value.Tuple, 0, combinedLen)
	verts := make([]Vertex, 0, len(atoms))

	var walk func(i int) error
	walk = func(i int) error {
		if i == len(atoms) {
			h.AddEdge(verts, p.label)
			return nil
		}
		a := atoms[i]
		tryRow := func(id storage.RowID, r value.Tuple) error {
			stats.Combinations++
			row = append(row, r...)
			verts = append(verts, Vertex{Rel: a.rel, Row: id})
			defer func() {
				row = row[:len(row)-len(r)]
				verts = verts[:len(verts)-1]
			}()
			if a.residual != nil {
				pass, err := ra.EvalPredicate(a.residual, row)
				if err != nil {
					return err
				}
				if !pass {
					return nil
				}
			}
			return walk(i + 1)
		}
		if i == 0 && pin != nil {
			return tryRow(pin.ID, pin.Row)
		}
		if a.index != nil {
			key := make(value.Tuple, len(a.eqSrc))
			for k, src := range a.eqSrc {
				key[k] = row[src]
			}
			for _, id := range a.index.Lookup(key) {
				r, ok := a.table.Row(id)
				if !ok {
					continue
				}
				if err := tryRow(id, r); err != nil {
					return err
				}
			}
			return nil
		}
		return a.table.Scan(tryRow)
	}
	return walk(0)
}

func resolveCols(sch schema.Schema, names []string) ([]int, error) {
	out := make([]int, len(names))
	for i, n := range names {
		idx, err := sch.Resolve("", n)
		if err != nil {
			return nil, err
		}
		out[i] = idx
	}
	return out, nil
}
