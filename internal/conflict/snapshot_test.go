package conflict

import (
	"testing"

	"hippo/internal/storage"
)

func hv(i int) Vertex { return Vertex{Rel: "t", Row: storage.RowID(i)} }

func TestHypergraphSnapshotCOW(t *testing.T) {
	h := NewHypergraph()
	for i := 0; i < 10; i++ {
		h.AddEdge([]Vertex{hv(2 * i), hv(2*i + 1)}, "c")
	}
	snap := h.Snapshot()
	if snap.NumEdges() != 10 {
		t.Fatalf("snapshot edges=%d, want 10", snap.NumEdges())
	}

	// Mutations after the snapshot must not show through.
	h.AddEdge([]Vertex{hv(100), hv(101)}, "c")
	h.RemoveVertex(hv(0))
	if h.NumEdges() != 10 {
		t.Fatalf("live edges=%d, want 10", h.NumEdges())
	}
	if snap.NumEdges() != 10 {
		t.Fatalf("snapshot edges changed to %d", snap.NumEdges())
	}
	g := snap.Graph()
	if !g.InConflict(hv(0)) {
		t.Fatal("snapshot lost vertex 0 after live RemoveVertex")
	}
	if g.InConflict(hv(100)) {
		t.Fatal("snapshot sees edge added after it was taken")
	}
	if h.InConflict(hv(0)) {
		t.Fatal("live graph kept vertex 0")
	}

	// Consecutive snapshots without mutations share state; a snapshot
	// after mutations does not.
	s2 := h.Snapshot()
	s3 := h.Snapshot()
	if s2.g.st != s3.g.st {
		t.Fatal("unchanged snapshots do not share state")
	}
	h.AddEdge([]Vertex{hv(200), hv(201)}, "c")
	if s4 := h.Snapshot(); s4.g.st == s2.g.st {
		t.Fatal("snapshot after mutation shares state with older snapshot")
	}
	if s2.NumEdges() != 10 {
		t.Fatalf("second snapshot edges=%d, want 10", s2.NumEdges())
	}
}

func TestHypergraphCloneIsCOW(t *testing.T) {
	h := NewHypergraph()
	h.AddEdge([]Vertex{hv(0), hv(1)}, "c")
	c := h.Clone()
	// Both sides can mutate independently.
	h.AddEdge([]Vertex{hv(2), hv(3)}, "c")
	c.RemoveVertex(hv(0))
	if h.NumEdges() != 2 {
		t.Fatalf("orig edges=%d, want 2", h.NumEdges())
	}
	if c.NumEdges() != 0 {
		t.Fatalf("clone edges=%d, want 0", c.NumEdges())
	}
}
