package conflict

// Graph is the read surface of a conflict hypergraph — the shard boundary
// of the certification plane. The prover's blocker search, the repair
// enumerator, and the core's component resolver all consume this interface
// rather than a concrete *Hypergraph, so the same certification code runs
// against a single graph, a component-sharded graph, and — because every
// method is defined per component and no hyperedge crosses a component
// boundary — would run unchanged against a remote shard in a future
// multi-process split.
//
// Implementations: *Hypergraph (one partition) and *ShardedHypergraph
// (K partitions keyed by component id).
type Graph interface {
	// Component labeling. Ids are stable while a component's edge set is
	// untouched; fingerprints are XOR-of-edge-hashes and therefore agree
	// across partitionings for equal edge sets.
	ComponentOf(v Vertex) (ComponentRef, bool)
	Component(id uint64) (Component, bool)
	Components() []Component
	NumComponents() int

	// Per-vertex structure: everything the blocker search touches.
	EdgesContaining(v Vertex) []Edge
	Degree(v Vertex) int
	InConflict(v Vertex) bool

	// Independence checks over vertex sets.
	Independent(s VertexSet) bool
	IndependentWith(s VertexSet, extra ...Vertex) bool

	// Whole-graph enumeration and reporting.
	Edges() []Edge
	NumEdges() int
	NumConflictingVertices() int
	ConflictingVertices() []Vertex
	Stats() Stats
}

var (
	_ Graph = (*Hypergraph)(nil)
	_ Graph = (*ShardedHypergraph)(nil)
)
