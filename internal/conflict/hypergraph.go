// Package conflict implements Hippo's conflict detection stage and the
// conflict hypergraph it produces: vertices are database tuples, and each
// hyperedge is a minimal set of tuples that jointly violate a denial
// constraint. Repairs of the database are exactly the maximal independent
// sets of this hypergraph, so all consistency reasoning downstream (the
// Prover) works on the hypergraph alone — which has polynomial size — and
// never materializes repairs.
package conflict

import (
	"cmp"
	"fmt"
	"slices"
	"strings"

	"hippo/internal/storage"
	"hippo/internal/value"
)

// Vertex identifies one tuple of the database: a relation name plus the
// tuple's stable RowID within it.
type Vertex struct {
	Rel string
	Row storage.RowID
}

// String renders the vertex as rel#row.
func (v Vertex) String() string { return fmt.Sprintf("%s#%d", v.Rel, v.Row) }

// Edge is a hyperedge: a canonical (sorted, deduplicated) set of vertices
// that together violate a constraint. Label records which constraint.
type Edge struct {
	Verts []Vertex
	Label string
}

// newEdge canonicalizes the vertex set.
func newEdge(verts []Vertex, label string) Edge {
	vs := slices.Clone(verts)
	slices.SortFunc(vs, func(a, b Vertex) int {
		if c := strings.Compare(a.Rel, b.Rel); c != 0 {
			return c
		}
		return cmp.Compare(a.Row, b.Row)
	})
	// Deduplicate (an atom combination may bind the same tuple twice).
	return Edge{Verts: slices.Compact(vs), Label: label}
}

// key returns a canonical identity string for deduplication.
func (e Edge) key() string {
	var b strings.Builder
	for _, v := range e.Verts {
		fmt.Fprintf(&b, "%s#%d;", v.Rel, v.Row)
	}
	return b.String()
}

// Size returns the number of vertices in the edge.
func (e Edge) Size() int { return len(e.Verts) }

// String renders the edge as {a#1, b#2}.
func (e Edge) String() string {
	parts := make([]string, len(e.Verts))
	for i, v := range e.Verts {
		parts[i] = v.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Hypergraph is the conflict hypergraph. Detection builds it once; DML
// deltas then add and remove edges incrementally. It is safe for
// concurrent readers only while no writer (detector) is active, which the
// core serializes.
type Hypergraph struct {
	edges     []Edge // slot per edge ever added; dead slots stay in place
	dead      []bool
	liveEdges int
	byVertex  map[Vertex][]int // vertex -> live slots into edges
	keys      map[string]int   // canonical edge key -> live slot
}

// NewHypergraph returns an empty hypergraph.
func NewHypergraph() *Hypergraph {
	return &Hypergraph{
		byVertex: make(map[Vertex][]int),
		keys:     make(map[string]int),
	}
}

// AddEdge inserts a hyperedge built from verts, deduplicating identical
// vertex sets. It reports whether the edge was new.
func (h *Hypergraph) AddEdge(verts []Vertex, label string) bool {
	e := newEdge(verts, label)
	if len(e.Verts) == 0 {
		return false
	}
	k := e.key()
	if _, ok := h.keys[k]; ok {
		return false
	}
	idx := len(h.edges)
	h.keys[k] = idx
	h.edges = append(h.edges, e)
	h.dead = append(h.dead, false)
	h.liveEdges++
	for _, v := range e.Verts {
		h.byVertex[v] = append(h.byVertex[v], idx)
	}
	return true
}

// RemoveEdge deletes the hyperedge with exactly the given vertex set,
// reporting whether such an edge existed.
func (h *Hypergraph) RemoveEdge(verts []Vertex) bool {
	e := newEdge(verts, "")
	idx, ok := h.keys[e.key()]
	if !ok {
		return false
	}
	h.removeSlot(idx)
	h.maybeCompact()
	return true
}

// RemoveVertex deletes every hyperedge containing v — exactly the
// maintenance a tuple deletion requires, since each violation the tuple
// participated in disappears with it. It returns the number of edges
// removed.
func (h *Hypergraph) RemoveVertex(v Vertex) int {
	slots := h.byVertex[v]
	if len(slots) == 0 {
		return 0
	}
	// Copy: removeSlot mutates byVertex[v].
	cp := make([]int, len(slots))
	copy(cp, slots)
	for _, idx := range cp {
		h.removeSlot(idx)
	}
	h.maybeCompact()
	return len(cp)
}

// removeSlot tombstones one edge slot and eagerly unlinks it from every
// incident vertex, keeping Degree/InConflict O(1) reads.
func (h *Hypergraph) removeSlot(idx int) {
	if h.dead[idx] {
		return
	}
	h.dead[idx] = true
	h.liveEdges--
	e := h.edges[idx]
	delete(h.keys, e.key())
	for _, v := range e.Verts {
		slots := h.byVertex[v]
		for i, s := range slots {
			if s == idx {
				slots[i] = slots[len(slots)-1]
				slots = slots[:len(slots)-1]
				break
			}
		}
		if len(slots) == 0 {
			delete(h.byVertex, v)
		} else {
			h.byVertex[v] = slots
		}
	}
}

// maybeCompact reclaims tombstoned edge slots once they outnumber live
// ones, keeping long-running incremental maintenance at O(live edges)
// memory and scan cost instead of O(edges ever added). Slot indexes are
// reassigned, so it must only run between reader sections (the core holds
// its write lock across all mutations).
func (h *Hypergraph) maybeCompact() {
	dead := len(h.edges) - h.liveEdges
	if dead < 64 || dead*2 < len(h.edges) {
		return
	}
	edges := make([]Edge, 0, h.liveEdges)
	for i, e := range h.edges {
		if !h.dead[i] {
			edges = append(edges, e)
		}
	}
	h.edges = edges
	h.dead = make([]bool, len(edges))
	h.byVertex = make(map[Vertex][]int, len(h.byVertex))
	h.keys = make(map[string]int, len(edges))
	for i, e := range edges {
		h.keys[e.key()] = i
		for _, v := range e.Verts {
			h.byVertex[v] = append(h.byVertex[v], i)
		}
	}
}

// Clone returns an independent deep copy of the hypergraph. Callers that
// hold a graph beyond the core's locking (e.g. the repair enumerator)
// clone so later incremental mutations cannot race with their reads.
func (h *Hypergraph) Clone() *Hypergraph {
	out := NewHypergraph()
	for i, e := range h.edges {
		if !h.dead[i] {
			out.AddEdge(e.Verts, e.Label)
		}
	}
	return out
}

// NumEdges returns the number of live hyperedges.
func (h *Hypergraph) NumEdges() int { return h.liveEdges }

// NumConflictingVertices returns the number of distinct tuples involved in
// at least one conflict.
func (h *Hypergraph) NumConflictingVertices() int { return len(h.byVertex) }

// Edges returns all live hyperedges. The returned slice is freshly
// allocated; the edges themselves must not be mutated.
func (h *Hypergraph) Edges() []Edge {
	out := make([]Edge, 0, h.liveEdges)
	for i, e := range h.edges {
		if !h.dead[i] {
			out = append(out, e)
		}
	}
	return out
}

// EdgesContaining returns the hyperedges that contain v. The returned
// slice is freshly allocated.
func (h *Hypergraph) EdgesContaining(v Vertex) []Edge {
	idxs := h.byVertex[v]
	out := make([]Edge, len(idxs))
	for i, idx := range idxs {
		out[i] = h.edges[idx]
	}
	return out
}

// Degree returns the number of hyperedges containing v.
func (h *Hypergraph) Degree(v Vertex) int { return len(h.byVertex[v]) }

// InConflict reports whether v participates in any hyperedge.
func (h *Hypergraph) InConflict(v Vertex) bool { return len(h.byVertex[v]) > 0 }

// VertexSet is a mutable set of vertices used during independence checks.
type VertexSet map[Vertex]bool

// NewVertexSet builds a set from vertices.
func NewVertexSet(vs ...Vertex) VertexSet {
	s := make(VertexSet, len(vs))
	for _, v := range vs {
		s[v] = true
	}
	return s
}

// Clone copies the set.
func (s VertexSet) Clone() VertexSet {
	out := make(VertexSet, len(s))
	for v := range s {
		out[v] = true
	}
	return out
}

// Independent reports whether the set contains no complete hyperedge of h.
func (h *Hypergraph) Independent(s VertexSet) bool {
	for v := range s {
		if h.hasEdgeWithinVia(s, v) {
			return false
		}
	}
	return true
}

// IndependentWith reports whether s ∪ {extra...} stays independent, only
// re-checking edges incident to the added vertices. The caller guarantees
// s itself is independent.
func (h *Hypergraph) IndependentWith(s VertexSet, extra ...Vertex) bool {
	for _, v := range extra {
		s[v] = true
	}
	defer func() {
		for _, v := range extra {
			delete(s, v)
		}
	}()
	// Only edges through a new vertex can have become complete.
	for _, v := range extra {
		if h.hasEdgeWithinVia(s, v) {
			return false
		}
	}
	return true
}

// hasEdgeWithinVia reports whether some hyperedge through v lies entirely
// inside s.
func (h *Hypergraph) hasEdgeWithinVia(s VertexSet, v Vertex) bool {
	for _, idx := range h.byVertex[v] {
		inside := true
		for _, u := range h.edges[idx].Verts {
			if !s[u] {
				inside = false
				break
			}
		}
		if inside {
			return true
		}
	}
	return false
}

// Stats summarizes the hypergraph for reporting.
type Stats struct {
	Edges               int
	ConflictingVertices int
	MaxDegree           int
	MaxEdgeSize         int
}

// Stats computes summary statistics.
func (h *Hypergraph) Stats() Stats {
	st := Stats{
		Edges:               h.liveEdges,
		ConflictingVertices: len(h.byVertex),
	}
	for _, idxs := range h.byVertex {
		if len(idxs) > st.MaxDegree {
			st.MaxDegree = len(idxs)
		}
	}
	for i, e := range h.edges {
		if !h.dead[i] && len(e.Verts) > st.MaxEdgeSize {
			st.MaxEdgeSize = len(e.Verts)
		}
	}
	return st
}

// TupleIndex resolves tuple values to vertices (and back), using full-row
// hash indexes on each table. It backs the optimized prover's membership
// checks and maps formula atoms onto hypergraph vertices.
type TupleIndex struct {
	tables  map[string]*storage.Table
	indexes map[string]*storage.Index
}

// NewTupleIndex builds full-row indexes over the given tables.
func NewTupleIndex(tables map[string]*storage.Table) (*TupleIndex, error) {
	ti := &TupleIndex{
		tables:  make(map[string]*storage.Table, len(tables)),
		indexes: make(map[string]*storage.Index, len(tables)),
	}
	for name, t := range tables {
		idx, err := t.EnsureIndex(nil)
		if err != nil {
			return nil, err
		}
		key := strings.ToLower(name)
		ti.tables[key] = t
		ti.indexes[key] = idx
	}
	return ti, nil
}

// Lookup returns the live RowIDs of rel holding exactly tuple t.
func (ti *TupleIndex) Lookup(rel string, t value.Tuple) ([]storage.RowID, error) {
	key := strings.ToLower(rel)
	idx, ok := ti.indexes[key]
	if !ok {
		return nil, fmt.Errorf("conflict: relation %q is not indexed", rel)
	}
	ids := idx.Lookup(t)
	// Filter tombstones (index is maintained, but be defensive).
	table := ti.tables[key]
	live := make([]storage.RowID, 0, len(ids))
	for _, id := range ids {
		if _, ok := table.Row(id); ok {
			live = append(live, id)
		}
	}
	return live, nil
}

// Row returns the tuple stored at a vertex.
func (ti *TupleIndex) Row(v Vertex) (value.Tuple, bool) {
	t, ok := ti.tables[strings.ToLower(v.Rel)]
	if !ok {
		return nil, false
	}
	return t.Row(v.Row)
}
