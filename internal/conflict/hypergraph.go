// Package conflict implements Hippo's conflict detection stage and the
// conflict hypergraph it produces: vertices are database tuples, and each
// hyperedge is a minimal set of tuples that jointly violate a denial
// constraint. Repairs of the database are exactly the maximal independent
// sets of this hypergraph, so all consistency reasoning downstream (the
// Prover) works on the hypergraph alone — which has polynomial size — and
// never materializes repairs.
package conflict

import (
	"fmt"
	"sort"
	"strings"

	"hippo/internal/storage"
	"hippo/internal/value"
)

// Vertex identifies one tuple of the database: a relation name plus the
// tuple's stable RowID within it.
type Vertex struct {
	Rel string
	Row storage.RowID
}

// String renders the vertex as rel#row.
func (v Vertex) String() string { return fmt.Sprintf("%s#%d", v.Rel, v.Row) }

// Edge is a hyperedge: a canonical (sorted, deduplicated) set of vertices
// that together violate a constraint. Label records which constraint.
type Edge struct {
	Verts []Vertex
	Label string
}

// newEdge canonicalizes the vertex set.
func newEdge(verts []Vertex, label string) Edge {
	vs := make([]Vertex, len(verts))
	copy(vs, verts)
	sort.Slice(vs, func(i, j int) bool {
		if vs[i].Rel != vs[j].Rel {
			return vs[i].Rel < vs[j].Rel
		}
		return vs[i].Row < vs[j].Row
	})
	// Deduplicate (an atom combination may bind the same tuple twice).
	out := vs[:0]
	for i, v := range vs {
		if i == 0 || v != vs[i-1] {
			out = append(out, v)
		}
	}
	return Edge{Verts: out, Label: label}
}

// key returns a canonical identity string for deduplication.
func (e Edge) key() string {
	var b strings.Builder
	for _, v := range e.Verts {
		fmt.Fprintf(&b, "%s#%d;", v.Rel, v.Row)
	}
	return b.String()
}

// Size returns the number of vertices in the edge.
func (e Edge) Size() int { return len(e.Verts) }

// String renders the edge as {a#1, b#2}.
func (e Edge) String() string {
	parts := make([]string, len(e.Verts))
	for i, v := range e.Verts {
		parts[i] = v.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Hypergraph is the conflict hypergraph. It is immutable after detection
// (safe for concurrent readers).
type Hypergraph struct {
	edges    []Edge
	byVertex map[Vertex][]int // vertex -> indexes into edges
	keys     map[string]bool  // edge dedup
}

// NewHypergraph returns an empty hypergraph.
func NewHypergraph() *Hypergraph {
	return &Hypergraph{
		byVertex: make(map[Vertex][]int),
		keys:     make(map[string]bool),
	}
}

// AddEdge inserts a hyperedge built from verts, deduplicating identical
// vertex sets. It reports whether the edge was new.
func (h *Hypergraph) AddEdge(verts []Vertex, label string) bool {
	e := newEdge(verts, label)
	if len(e.Verts) == 0 {
		return false
	}
	k := e.key()
	if h.keys[k] {
		return false
	}
	h.keys[k] = true
	idx := len(h.edges)
	h.edges = append(h.edges, e)
	for _, v := range e.Verts {
		h.byVertex[v] = append(h.byVertex[v], idx)
	}
	return true
}

// NumEdges returns the number of hyperedges.
func (h *Hypergraph) NumEdges() int { return len(h.edges) }

// NumConflictingVertices returns the number of distinct tuples involved in
// at least one conflict.
func (h *Hypergraph) NumConflictingVertices() int { return len(h.byVertex) }

// Edges returns all hyperedges. The returned slice must not be mutated.
func (h *Hypergraph) Edges() []Edge { return h.edges }

// EdgesContaining returns the hyperedges that contain v. The returned
// slice is freshly allocated.
func (h *Hypergraph) EdgesContaining(v Vertex) []Edge {
	idxs := h.byVertex[v]
	out := make([]Edge, len(idxs))
	for i, idx := range idxs {
		out[i] = h.edges[idx]
	}
	return out
}

// Degree returns the number of hyperedges containing v.
func (h *Hypergraph) Degree(v Vertex) int { return len(h.byVertex[v]) }

// InConflict reports whether v participates in any hyperedge.
func (h *Hypergraph) InConflict(v Vertex) bool { return len(h.byVertex[v]) > 0 }

// VertexSet is a mutable set of vertices used during independence checks.
type VertexSet map[Vertex]bool

// NewVertexSet builds a set from vertices.
func NewVertexSet(vs ...Vertex) VertexSet {
	s := make(VertexSet, len(vs))
	for _, v := range vs {
		s[v] = true
	}
	return s
}

// Clone copies the set.
func (s VertexSet) Clone() VertexSet {
	out := make(VertexSet, len(s))
	for v := range s {
		out[v] = true
	}
	return out
}

// Independent reports whether the set contains no complete hyperedge of h.
func (h *Hypergraph) Independent(s VertexSet) bool {
	for v := range s {
		if h.hasEdgeWithinVia(s, v) {
			return false
		}
	}
	return true
}

// IndependentWith reports whether s ∪ {extra...} stays independent, only
// re-checking edges incident to the added vertices. The caller guarantees
// s itself is independent.
func (h *Hypergraph) IndependentWith(s VertexSet, extra ...Vertex) bool {
	for _, v := range extra {
		s[v] = true
	}
	defer func() {
		for _, v := range extra {
			delete(s, v)
		}
	}()
	// Only edges through a new vertex can have become complete.
	for _, v := range extra {
		if h.hasEdgeWithinVia(s, v) {
			return false
		}
	}
	return true
}

// hasEdgeWithinVia reports whether some hyperedge through v lies entirely
// inside s.
func (h *Hypergraph) hasEdgeWithinVia(s VertexSet, v Vertex) bool {
	for _, idx := range h.byVertex[v] {
		inside := true
		for _, u := range h.edges[idx].Verts {
			if !s[u] {
				inside = false
				break
			}
		}
		if inside {
			return true
		}
	}
	return false
}

// Stats summarizes the hypergraph for reporting.
type Stats struct {
	Edges               int
	ConflictingVertices int
	MaxDegree           int
	MaxEdgeSize         int
}

// Stats computes summary statistics.
func (h *Hypergraph) Stats() Stats {
	st := Stats{
		Edges:               len(h.edges),
		ConflictingVertices: len(h.byVertex),
	}
	for _, idxs := range h.byVertex {
		if len(idxs) > st.MaxDegree {
			st.MaxDegree = len(idxs)
		}
	}
	for _, e := range h.edges {
		if len(e.Verts) > st.MaxEdgeSize {
			st.MaxEdgeSize = len(e.Verts)
		}
	}
	return st
}

// TupleIndex resolves tuple values to vertices (and back), using full-row
// hash indexes on each table. It backs the optimized prover's membership
// checks and maps formula atoms onto hypergraph vertices.
type TupleIndex struct {
	tables  map[string]*storage.Table
	indexes map[string]*storage.Index
}

// NewTupleIndex builds full-row indexes over the given tables.
func NewTupleIndex(tables map[string]*storage.Table) (*TupleIndex, error) {
	ti := &TupleIndex{
		tables:  make(map[string]*storage.Table, len(tables)),
		indexes: make(map[string]*storage.Index, len(tables)),
	}
	for name, t := range tables {
		idx, err := t.EnsureIndex(nil)
		if err != nil {
			return nil, err
		}
		key := strings.ToLower(name)
		ti.tables[key] = t
		ti.indexes[key] = idx
	}
	return ti, nil
}

// Lookup returns the live RowIDs of rel holding exactly tuple t.
func (ti *TupleIndex) Lookup(rel string, t value.Tuple) ([]storage.RowID, error) {
	key := strings.ToLower(rel)
	idx, ok := ti.indexes[key]
	if !ok {
		return nil, fmt.Errorf("conflict: relation %q is not indexed", rel)
	}
	ids := idx.Lookup(t)
	// Filter tombstones (index is maintained, but be defensive).
	table := ti.tables[key]
	live := make([]storage.RowID, 0, len(ids))
	for _, id := range ids {
		if _, ok := table.Row(id); ok {
			live = append(live, id)
		}
	}
	return live, nil
}

// Row returns the tuple stored at a vertex.
func (ti *TupleIndex) Row(v Vertex) (value.Tuple, bool) {
	t, ok := ti.tables[strings.ToLower(v.Rel)]
	if !ok {
		return nil, false
	}
	return t.Row(v.Row)
}
