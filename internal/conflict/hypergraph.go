// Package conflict implements Hippo's conflict detection stage and the
// conflict hypergraph it produces: vertices are database tuples, and each
// hyperedge is a minimal set of tuples that jointly violate a denial
// constraint. Repairs of the database are exactly the maximal independent
// sets of this hypergraph, so all consistency reasoning downstream (the
// Prover) works on the hypergraph alone — which has polynomial size — and
// never materializes repairs.
package conflict

import (
	"cmp"
	"fmt"
	"slices"
	"strings"

	"hippo/internal/storage"
	"hippo/internal/value"
)

// Vertex identifies one tuple of the database: a relation name plus the
// tuple's stable RowID within it.
type Vertex struct {
	Rel string
	Row storage.RowID
}

// String renders the vertex as rel#row.
func (v Vertex) String() string { return fmt.Sprintf("%s#%d", v.Rel, v.Row) }

// Edge is a hyperedge: a canonical (sorted, deduplicated) set of vertices
// that together violate a constraint. Label records which constraint.
type Edge struct {
	Verts []Vertex
	Label string
}

// newEdge canonicalizes the vertex set.
func newEdge(verts []Vertex, label string) Edge {
	vs := slices.Clone(verts)
	slices.SortFunc(vs, func(a, b Vertex) int {
		if c := strings.Compare(a.Rel, b.Rel); c != 0 {
			return c
		}
		return cmp.Compare(a.Row, b.Row)
	})
	// Deduplicate (an atom combination may bind the same tuple twice).
	return Edge{Verts: slices.Compact(vs), Label: label}
}

// key returns a canonical identity string for deduplication.
func (e Edge) key() string {
	var b strings.Builder
	for _, v := range e.Verts {
		fmt.Fprintf(&b, "%s#%d;", v.Rel, v.Row)
	}
	return b.String()
}

// Size returns the number of vertices in the edge.
func (e Edge) Size() int { return len(e.Verts) }

// String renders the edge as {a#1, b#2}.
func (e Edge) String() string {
	parts := make([]string, len(e.Verts))
	for i, v := range e.Verts {
		parts[i] = v.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// hgState is the hypergraph's internal representation. Snapshots share it
// copy-on-write: once a state is referenced by a snapshot, the next
// mutation through any owning Hypergraph clones the state first, so the
// snapshot's view never changes.
type hgState struct {
	edges     []Edge // slot per edge ever added; dead slots stay in place
	dead      []bool
	liveEdges int
	byVertex  map[Vertex][]int // vertex -> live slots into edges
	keys      map[string]int   // canonical edge key -> live slot

	// Connected-component labeling, maintained eagerly by every edge
	// mutation (see components.go).
	compOf   map[Vertex]uint64   // conflicting vertex -> component id
	comps    map[uint64]compInfo // component id -> fingerprint and sizes
	nextComp uint64              // id allocator (unique per mutation lineage)
	// stride is the allocator step: a standalone graph allocates 1, 2, 3…
	// (stride 1); shard i of a K-way ShardedHypergraph allocates ids ≡ i
	// (mod K) so component ids are disjoint across shards and id % K
	// recovers the owning shard in O(1).
	stride uint64
}

func newHGState() *hgState {
	return &hgState{
		byVertex: make(map[Vertex][]int),
		keys:     make(map[string]int),
		compOf:   make(map[Vertex]uint64),
		comps:    make(map[uint64]compInfo),
		stride:   1,
	}
}

// clone deep-copies the mutable containers. Edge vertex slices are
// immutable after canonicalization and stay shared.
func (st *hgState) clone() *hgState {
	cp := &hgState{
		edges:     slices.Clone(st.edges),
		dead:      slices.Clone(st.dead),
		liveEdges: st.liveEdges,
		byVertex:  make(map[Vertex][]int, len(st.byVertex)),
		keys:      make(map[string]int, len(st.keys)),
		compOf:    make(map[Vertex]uint64, len(st.compOf)),
		comps:     make(map[uint64]compInfo, len(st.comps)),
		nextComp:  st.nextComp,
		stride:    st.stride,
	}
	for v, slots := range st.byVertex {
		cp.byVertex[v] = slices.Clone(slots)
	}
	for k, i := range st.keys {
		cp.keys[k] = i
	}
	for v, id := range st.compOf {
		cp.compOf[v] = id
	}
	for id, ci := range st.comps {
		cp.comps[id] = ci
	}
	return cp
}

// Hypergraph is the conflict hypergraph. Detection builds it once; DML
// deltas then add and remove edges incrementally. Concurrent readers are
// safe only while no writer is active (the core serializes writers);
// lock-free concurrent reading is what Snapshot is for.
type Hypergraph struct {
	st *hgState
	// shared marks st as referenced by a snapshot (or a COW clone);
	// mutators copy the state before writing.
	shared bool
	// changes, when non-nil, records component-level mutation effects for
	// delta-precise cache invalidation (see BeginChangeLog).
	changes *ChangeLog
	// migrating suppresses AddedEdgeVerts recording while a sharded
	// container re-adds a component's edges during a cross-shard migration:
	// the moved vertices already carry component ids, and those ids are
	// logged as touched, so identity-based invalidation would be redundant
	// over-invalidation.
	migrating bool
}

// NewHypergraph returns an empty hypergraph.
func NewHypergraph() *Hypergraph {
	return &Hypergraph{st: newHGState()}
}

// newHypergraphStrided returns an empty hypergraph whose component-id
// allocator yields base+stride, base+2·stride, … — the per-shard allocator
// of a ShardedHypergraph (base = shard index, stride = shard count).
func newHypergraphStrided(base, stride uint64) *Hypergraph {
	h := NewHypergraph()
	h.st.nextComp = base
	h.st.stride = stride
	return h
}

// reclaimEmptyState swaps in a fresh state once the graph holds no live
// edges (and hence no components), releasing slot, tombstone, and map
// capacity an emptied shard would otherwise retain. The component-id
// allocator survives the swap: ids must never be reused within a mutation
// lineage, or stale verdict-cache entries could validate against an
// unrelated later component. Snapshots sharing the old state are
// unaffected. Reports whether a swap happened.
func (h *Hypergraph) reclaimEmptyState() bool {
	if h.st.liveEdges != 0 || len(h.st.compOf) != 0 {
		return false
	}
	if len(h.st.edges) == 0 && !h.shared {
		return false // already fresh and private
	}
	st := newHGState()
	st.nextComp = h.st.nextComp
	st.stride = h.st.stride
	h.st = st
	h.shared = false
	return true
}

// ensureOwned makes the state private to this handle before a mutation.
func (h *Hypergraph) ensureOwned() {
	if h.shared {
		h.st = h.st.clone()
		h.shared = false
	}
}

// Snapshot freezes the current state and returns an immutable view of it.
// The snapshot costs O(1); the next mutation of h pays one state copy
// (copy-on-write), and snapshots taken between mutations share state.
func (h *Hypergraph) Snapshot() *HypergraphSnapshot {
	h.shared = true
	return &HypergraphSnapshot{g: &Hypergraph{st: h.st, shared: true}}
}

// AddEdge inserts a hyperedge built from verts, deduplicating identical
// vertex sets. It reports whether the edge was new.
func (h *Hypergraph) AddEdge(verts []Vertex, label string) bool {
	e := newEdge(verts, label)
	if len(e.Verts) == 0 {
		return false
	}
	k := e.key()
	if _, ok := h.st.keys[k]; ok {
		return false
	}
	h.ensureOwned()
	st := h.st
	idx := len(st.edges)
	st.keys[k] = idx
	st.edges = append(st.edges, e)
	st.dead = append(st.dead, false)
	st.liveEdges++
	for _, v := range e.Verts {
		st.byVertex[v] = append(st.byVertex[v], idx)
	}
	h.compEdgeAdded(e)
	return true
}

// RemoveEdge deletes the hyperedge with exactly the given vertex set,
// reporting whether such an edge existed.
func (h *Hypergraph) RemoveEdge(verts []Vertex) bool {
	e := newEdge(verts, "")
	idx, ok := h.st.keys[e.key()]
	if !ok {
		return false
	}
	h.ensureOwned()
	h.removeSlot(idx)
	h.maybeCompact()
	return true
}

// RemoveVertex deletes every hyperedge containing v — exactly the
// maintenance a tuple deletion requires, since each violation the tuple
// participated in disappears with it. It returns the number of edges
// removed.
func (h *Hypergraph) RemoveVertex(v Vertex) int {
	slots := h.st.byVertex[v]
	if len(slots) == 0 {
		return 0
	}
	h.ensureOwned()
	// Copy: removeSlot mutates byVertex[v].
	cp := slices.Clone(h.st.byVertex[v])
	for _, idx := range cp {
		h.removeSlot(idx)
	}
	h.maybeCompact()
	return len(cp)
}

// removeSlot tombstones one edge slot and eagerly unlinks it from every
// incident vertex, keeping Degree/InConflict O(1) reads. The caller must
// have ensured ownership.
func (h *Hypergraph) removeSlot(idx int) {
	st := h.st
	if st.dead[idx] {
		return
	}
	st.dead[idx] = true
	st.liveEdges--
	e := st.edges[idx]
	delete(st.keys, e.key())
	for _, v := range e.Verts {
		slots := st.byVertex[v]
		for i, s := range slots {
			if s == idx {
				slots[i] = slots[len(slots)-1]
				slots = slots[:len(slots)-1]
				break
			}
		}
		if len(slots) == 0 {
			delete(st.byVertex, v)
		} else {
			st.byVertex[v] = slots
		}
	}
	h.compEdgeRemoved(e)
}

// maybeCompact reclaims tombstoned edge slots once they outnumber live
// ones, keeping long-running incremental maintenance at O(live edges)
// memory and scan cost instead of O(edges ever added). Slot indexes are
// reassigned, so it must only run between reader sections (the core holds
// its write lock across all mutations); published snapshots are
// unaffected, since they share a frozen state copy.
func (h *Hypergraph) maybeCompact() {
	st := h.st
	dead := len(st.edges) - st.liveEdges
	if dead < 64 || dead*2 < len(st.edges) {
		return
	}
	edges := make([]Edge, 0, st.liveEdges)
	for i, e := range st.edges {
		if !st.dead[i] {
			edges = append(edges, e)
		}
	}
	st.edges = edges
	st.dead = make([]bool, len(edges))
	st.byVertex = make(map[Vertex][]int, len(st.byVertex))
	st.keys = make(map[string]int, len(edges))
	for i, e := range edges {
		st.keys[e.key()] = i
		for _, v := range e.Verts {
			st.byVertex[v] = append(st.byVertex[v], i)
		}
	}
}

// Clone returns an independent copy of the hypergraph. The copy shares
// state copy-on-write: it is O(1) to take, and whichever handle mutates
// first pays the one-time state copy.
func (h *Hypergraph) Clone() *Hypergraph {
	h.shared = true
	return &Hypergraph{st: h.st, shared: true}
}

// NumEdges returns the number of live hyperedges.
func (h *Hypergraph) NumEdges() int { return h.st.liveEdges }

// NumConflictingVertices returns the number of distinct tuples involved in
// at least one conflict.
func (h *Hypergraph) NumConflictingVertices() int { return len(h.st.byVertex) }

// Edges returns all live hyperedges. The returned slice is freshly
// allocated; the edges themselves must not be mutated.
func (h *Hypergraph) Edges() []Edge {
	st := h.st
	out := make([]Edge, 0, st.liveEdges)
	for i, e := range st.edges {
		if !st.dead[i] {
			out = append(out, e)
		}
	}
	return out
}

// EdgesContaining returns the hyperedges that contain v. The returned
// slice is freshly allocated.
func (h *Hypergraph) EdgesContaining(v Vertex) []Edge {
	st := h.st
	idxs := st.byVertex[v]
	out := make([]Edge, len(idxs))
	for i, idx := range idxs {
		out[i] = st.edges[idx]
	}
	return out
}

// Degree returns the number of hyperedges containing v.
func (h *Hypergraph) Degree(v Vertex) int { return len(h.st.byVertex[v]) }

// InConflict reports whether v participates in any hyperedge.
func (h *Hypergraph) InConflict(v Vertex) bool { return len(h.st.byVertex[v]) > 0 }

// VertexSet is a mutable set of vertices used during independence checks.
type VertexSet map[Vertex]bool

// NewVertexSet builds a set from vertices.
func NewVertexSet(vs ...Vertex) VertexSet {
	s := make(VertexSet, len(vs))
	for _, v := range vs {
		s[v] = true
	}
	return s
}

// Clone copies the set.
func (s VertexSet) Clone() VertexSet {
	out := make(VertexSet, len(s))
	for v := range s {
		out[v] = true
	}
	return out
}

// Independent reports whether the set contains no complete hyperedge of h.
func (h *Hypergraph) Independent(s VertexSet) bool {
	for v := range s {
		if h.hasEdgeWithinVia(s, v) {
			return false
		}
	}
	return true
}

// IndependentWith reports whether s ∪ {extra...} stays independent, only
// re-checking edges incident to the added vertices. The caller guarantees
// s itself is independent.
func (h *Hypergraph) IndependentWith(s VertexSet, extra ...Vertex) bool {
	for _, v := range extra {
		s[v] = true
	}
	defer func() {
		for _, v := range extra {
			delete(s, v)
		}
	}()
	// Only edges through a new vertex can have become complete.
	for _, v := range extra {
		if h.hasEdgeWithinVia(s, v) {
			return false
		}
	}
	return true
}

// hasEdgeWithinVia reports whether some hyperedge through v lies entirely
// inside s.
func (h *Hypergraph) hasEdgeWithinVia(s VertexSet, v Vertex) bool {
	st := h.st
	for _, idx := range st.byVertex[v] {
		inside := true
		for _, u := range st.edges[idx].Verts {
			if !s[u] {
				inside = false
				break
			}
		}
		if inside {
			return true
		}
	}
	return false
}

// Stats summarizes the hypergraph for reporting.
type Stats struct {
	Edges               int
	ConflictingVertices int
	MaxDegree           int
	MaxEdgeSize         int
	Components          int // connected components
	MaxComponent        int // vertices in the largest component
}

// Stats computes summary statistics.
func (h *Hypergraph) Stats() Stats {
	st := h.st
	out := Stats{
		Edges:               st.liveEdges,
		ConflictingVertices: len(st.byVertex),
		Components:          len(st.comps),
	}
	for _, ci := range st.comps {
		if ci.verts > out.MaxComponent {
			out.MaxComponent = ci.verts
		}
	}
	for _, idxs := range st.byVertex {
		if len(idxs) > out.MaxDegree {
			out.MaxDegree = len(idxs)
		}
	}
	for i, e := range st.edges {
		if !st.dead[i] && len(e.Verts) > out.MaxEdgeSize {
			out.MaxEdgeSize = len(e.Verts)
		}
	}
	return out
}

// HypergraphSnapshot is an immutable published view of a hypergraph.
// Readers (provers, repair enumerators) use it lock-free, concurrently
// with incremental maintenance of the live graph: the first mutation
// after Snapshot copies the state, so the snapshot never changes.
type HypergraphSnapshot struct {
	g *Hypergraph
}

// Graph returns the snapshot's hypergraph handle for read-only use (the
// prover and repair enumerator take *Hypergraph). The handle must not be
// mutated; mutations would not corrupt other snapshots or the live graph
// (copy-on-write), but they race with concurrent readers of this one.
func (s *HypergraphSnapshot) Graph() *Hypergraph { return s.g }

// Stats summarizes the snapshot.
func (s *HypergraphSnapshot) Stats() Stats { return s.g.Stats() }

// NumEdges returns the number of live hyperedges in the snapshot.
func (s *HypergraphSnapshot) NumEdges() int { return s.g.NumEdges() }

// Edges returns all live hyperedges of the snapshot.
func (s *HypergraphSnapshot) Edges() []Edge { return s.g.Edges() }

// TupleIndex resolves tuple values to vertices (and back), using full-row
// hash indexes on each relation. It backs the optimized prover's
// membership checks and maps formula atoms onto hypergraph vertices. Built
// over live tables it reads through their locked accessors; built over a
// database snapshot it is immutable and lock-free.
type TupleIndex struct {
	tables map[string]storage.Relation
}

// NewTupleIndex builds full-row indexes over the given live tables.
func NewTupleIndex(tables map[string]*storage.Table) (*TupleIndex, error) {
	ti := &TupleIndex{tables: make(map[string]storage.Relation, len(tables))}
	for name, t := range tables {
		// Build the index eagerly so later lookups hit the fast path.
		if _, err := t.FullRowIndex(); err != nil {
			return nil, err
		}
		ti.tables[strings.ToLower(name)] = t
	}
	return ti, nil
}

// NewSnapshotTupleIndex builds a tuple index over a database snapshot's
// tables. Full-row indexes are built lazily on first lookup per table and
// shared across all queries pinning the same snapshot.
func NewSnapshotTupleIndex(tables map[string]*storage.TableSnapshot) *TupleIndex {
	ti := &TupleIndex{tables: make(map[string]storage.Relation, len(tables))}
	for name, t := range tables {
		ti.tables[strings.ToLower(name)] = t
	}
	return ti
}

// Lookup returns the live RowIDs of rel holding exactly tuple t.
func (ti *TupleIndex) Lookup(rel string, t value.Tuple) ([]storage.RowID, error) {
	r, ok := ti.tables[strings.ToLower(rel)]
	if !ok {
		return nil, fmt.Errorf("conflict: relation %q is not indexed", rel)
	}
	idx, err := r.FullRowIndex()
	if err != nil {
		return nil, err
	}
	ids := r.IndexLookup(idx, t)
	// Filter tombstones (index is maintained, but be defensive).
	live := make([]storage.RowID, 0, len(ids))
	for _, id := range ids {
		if _, ok := r.Row(id); ok {
			live = append(live, id)
		}
	}
	return live, nil
}

// Row returns the tuple stored at a vertex.
func (ti *TupleIndex) Row(v Vertex) (value.Tuple, bool) {
	r, ok := ti.tables[strings.ToLower(v.Rel)]
	if !ok {
		return nil, false
	}
	return r.Row(v.Row)
}
