package conflict

import (
	"sort"
	"strings"
	"sync"

	"hippo/internal/storage"
)

// Parallel shard fold: draining a batch of DML deltas into a sharded
// hypergraph in three phases.
//
//  1. Probe (parallel, read-only): every insert delta's violation edges
//     are enumerated into a private collector — no graph mutation, so the
//     probes fan out across workers. An insert whose row is deleted later
//     in the same batch is skipped (its edges would be transient), and no
//     probed edge can reference any batch-deleted row: probes read storage
//     after the whole batch committed, where those rows are tombstoned.
//     With deletions excluded this way, the surviving primitive operations
//     commute across components, so per-shard application needs no global
//     order — only each shard's own statement order.
//  2. Route (sequential): a union-find over routing keys — the existing
//     component of each endpoint, or the vertex itself when conflict-free
//     — groups operations that may interact. Each group is assigned a
//     deterministic owner shard (heaviest involved shard by edge count,
//     ties to the lowest index; a hash of the group's first edge when all
//     endpoints are new), and components owned elsewhere migrate to it.
//  3. Apply (parallel): each shard folds its own operation queue, in the
//     original statement order, entirely shard-locally — separate state,
//     separate change log, no shared locks.
type FoldOp struct {
	// Delete names a vertex whose incident edges must be removed.
	Delete *Vertex
	// Edges are the pre-probed violation edges of one insert delta.
	Edges []ProbedEdge
}

// ProbedEdge is one violation edge found by a read-only probe, already
// canonicalized (sorted, deduplicated vertex set).
type ProbedEdge struct {
	Verts []Vertex
	Label string
	key   string
}

// edgeCollector accumulates probed edges without touching any graph. It
// deduplicates within itself only; the owning shard deduplicates against
// existing edges at apply time.
type edgeCollector struct {
	edges []ProbedEdge
	keys  map[string]struct{}
}

func (c *edgeCollector) AddEdge(verts []Vertex, label string) bool {
	e := newEdge(verts, label)
	if len(e.Verts) == 0 {
		return false
	}
	k := e.key()
	if _, ok := c.keys[k]; ok {
		return false
	}
	if c.keys == nil {
		c.keys = make(map[string]struct{})
	}
	c.keys[k] = struct{}{}
	c.edges = append(c.edges, ProbedEdge{Verts: e.Verts, Label: e.Label, key: k})
	return true
}

// ProbeInsert enumerates the violation edges an insert delta introduces,
// without mutating the hypergraph. It reads only table and index state, so
// concurrent calls are safe while writes are frozen. Returns the probed
// edges and the number of tuple combinations examined.
func (inc *IncrementalDetector) ProbeInsert(d Delta) ([]ProbedEdge, int64, error) {
	rel := strings.ToLower(d.Table)
	pin := &pinnedRow{ID: d.Change.Row, Row: d.Change.Tuple}
	var col edgeCollector
	var stats DetectStats
	if err := runProbes(&col, inc.probes[rel], pin, &stats); err != nil {
		return nil, 0, err
	}
	return col.edges, stats.Combinations, nil
}

// FoldBatch drains a batch of deltas into a sharded hypergraph using the
// three-phase parallel pipeline above, with up to `workers` concurrent
// goroutines in the probe and apply phases. Statement order is preserved
// per shard. On a probe error the graph is left unchanged and the caller
// must fall back to a full re-detection.
func (inc *IncrementalDetector) FoldBatch(g *ShardedHypergraph, deltas []Delta, workers int) error {
	if workers < 1 {
		workers = 1
	}

	// Deleted-vertex set: inserts of these rows are skipped (their edges
	// would be removed again within the batch).
	deleted := make(map[Vertex]struct{})
	for _, d := range deltas {
		if d.Change.Kind == storage.ChangeDelete {
			deleted[Vertex{Rel: strings.ToLower(d.Table), Row: d.Change.Row}] = struct{}{}
		}
	}

	// Phase 1: parallel read-only probes, one op slot per delta.
	ops := make([]FoldOp, len(deltas))
	combos := make([]int64, len(deltas))
	errs := make([]error, len(deltas))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, d := range deltas {
		rel := strings.ToLower(d.Table)
		if d.Change.Kind == storage.ChangeDelete {
			v := Vertex{Rel: rel, Row: d.Change.Row}
			ops[i].Delete = &v
			continue
		}
		if _, gone := deleted[Vertex{Rel: rel, Row: d.Change.Row}]; gone {
			continue // transient insert: edges would not survive the batch
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, d Delta) {
			defer wg.Done()
			defer func() { <-sem }()
			edges, n, err := inc.ProbeInsert(d)
			if err != nil {
				errs[i] = err
				return
			}
			// Defensive: drop any edge touching a batch-deleted row (none
			// should exist — tombstoned rows are invisible to probes).
			kept := edges[:0]
			for _, e := range edges {
				ok := true
				for _, v := range e.Verts {
					if _, gone := deleted[v]; gone {
						ok = false
						break
					}
				}
				if ok {
					kept = append(kept, e)
				}
			}
			ops[i].Edges = kept
			combos[i] = n
		}(i, d)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	// Phase 2: sequential routing — union-find, owner choice, migrations.
	shardOps := g.routeOps(ops)

	// Phase 3: parallel shard-local apply in per-shard statement order.
	added := make([]int64, g.k)
	removed := make([]int64, g.k)
	var awg sync.WaitGroup
	for i := 0; i < g.k; i++ {
		if len(shardOps[i]) == 0 {
			continue
		}
		awg.Add(1)
		go func(i int) {
			defer awg.Done()
			h := g.shards[i]
			for _, op := range shardOps[i] {
				if op.del != nil {
					removed[i] += int64(h.RemoveVertex(*op.del))
					continue
				}
				if h.AddEdge(op.edge.Verts, op.edge.Label) {
					added[i]++
				}
			}
		}(i)
	}
	awg.Wait()
	for i := 0; i < g.k; i++ {
		g.reclaimEmptyShard(i)
	}

	inc.stats.DeltasApplied += int64(len(deltas))
	for _, n := range combos {
		inc.stats.Combinations += n
	}
	for i := 0; i < g.k; i++ {
		inc.stats.EdgesAdded += added[i]
		inc.stats.EdgesRemoved += removed[i]
	}
	return nil
}

// primOp is one routed primitive mutation: a vertex deletion or a single
// edge insertion.
type primOp struct {
	del  *Vertex
	edge *ProbedEdge
}

// routeKey identifies a union-find node: an existing component (routed by
// id) or a so-far conflict-free vertex (routed by identity).
type routeKey struct {
	comp   uint64
	vert   Vertex
	isComp bool
}

// routeOps groups the batch's primitive operations by potential
// interaction and returns per-shard operation queues, after migrating
// every group's components to the group's owner shard. Sequential; runs
// between the parallel probe and apply phases.
func (g *ShardedHypergraph) routeOps(ops []FoldOp) [][]primOp {
	uf := newUnionFind()
	keyOf := func(v Vertex) routeKey {
		if ref, ok := g.ComponentOf(v); ok {
			return routeKey{comp: ref.ID, isComp: true}
		}
		return routeKey{vert: v}
	}

	// Build the union-find in statement order (first-encounter order keeps
	// group representatives deterministic).
	type placed struct {
		op   primOp
		node int
	}
	seq := make([]placed, 0, len(ops))
	for i := range ops {
		if ops[i].Delete != nil {
			v := ops[i].Delete
			k := keyOf(*v)
			if !k.isComp {
				continue // conflict-free delete: no edges to remove
			}
			seq = append(seq, placed{op: primOp{del: v}, node: uf.node(k)})
			continue
		}
		for j := range ops[i].Edges {
			e := &ops[i].Edges[j]
			first := uf.node(keyOf(e.Verts[0]))
			for _, v := range e.Verts[1:] {
				uf.union(first, uf.node(keyOf(v)))
			}
			seq = append(seq, placed{op: primOp{edge: e}, node: first})
		}
	}

	// Per group: involved components (with a representative vertex for the
	// migration walk) and the first edge key for the all-new fallback.
	type group struct {
		comps     []uint64
		repVert   map[uint64]Vertex
		firstEdge string
	}
	groups := make(map[int]*group)
	getGroup := func(root int) *group {
		gr := groups[root]
		if gr == nil {
			gr = &group{repVert: make(map[uint64]Vertex)}
			groups[root] = gr
		}
		return gr
	}
	for k, n := range uf.nodes {
		if k.isComp {
			gr := getGroup(uf.find(n))
			gr.comps = append(gr.comps, k.comp)
		}
	}
	for _, p := range seq {
		if p.op.edge == nil {
			continue
		}
		gr := getGroup(uf.find(p.node))
		if gr.firstEdge == "" {
			gr.firstEdge = p.op.edge.key
		}
		for _, v := range p.op.edge.Verts {
			if ref, ok := g.ComponentOf(v); ok {
				gr.repVert[ref.ID] = v
			}
		}
	}
	// Deletes contribute representative vertices for their components too.
	for _, p := range seq {
		if p.op.del != nil {
			if ref, ok := g.ComponentOf(*p.op.del); ok {
				getGroup(uf.find(p.node)).repVert[ref.ID] = *p.op.del
			}
		}
	}

	// Owner per group: heaviest involved shard by component edge count,
	// ties to the lowest index; hash of the first edge when all-new.
	owner := make(map[int]int)
	for root, gr := range groups {
		sort.Slice(gr.comps, func(a, b int) bool { return gr.comps[a] < gr.comps[b] })
		if len(gr.comps) == 0 {
			owner[root] = int(edgeHash(gr.firstEdge) % uint64(g.k))
			continue
		}
		weight := make(map[int]int)
		for _, id := range gr.comps {
			if c, ok := g.Component(id); ok {
				weight[g.ShardOfComponent(id)] += c.Edges
			}
		}
		best := -1
		for i := 0; i < g.k; i++ {
			if w, ok := weight[i]; ok && (best == -1 || w > weight[best]) {
				best = i
			}
		}
		if best == -1 {
			best = int(edgeHash(gr.firstEdge) % uint64(g.k))
		}
		owner[root] = best
		for _, id := range gr.comps {
			from := g.ShardOfComponent(id)
			if from == best {
				continue
			}
			if v, ok := gr.repVert[id]; ok {
				g.migrate(v, from, best)
			}
		}
	}

	// Per-shard queues in original statement order.
	out := make([][]primOp, g.k)
	for _, p := range seq {
		out[owner[uf.find(p.node)]] = append(out[owner[uf.find(p.node)]], p.op)
	}
	return out
}

// unionFind is a small union-find over routing keys.
type unionFind struct {
	nodes  map[routeKey]int
	parent []int
}

func newUnionFind() *unionFind { return &unionFind{nodes: make(map[routeKey]int)} }

func (u *unionFind) node(k routeKey) int {
	if n, ok := u.nodes[k]; ok {
		return n
	}
	n := len(u.parent)
	u.nodes[k] = n
	u.parent = append(u.parent, n)
	return n
}

func (u *unionFind) find(n int) int {
	for u.parent[n] != n {
		u.parent[n] = u.parent[u.parent[n]]
		n = u.parent[n]
	}
	return n
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	// The smaller-numbered root wins, keeping representatives stable in
	// first-encounter order.
	if rb < ra {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
}
