package conflict

import (
	"fmt"
	"math/rand"
	"testing"

	"hippo/internal/storage"
)

// referenceComponents computes the connected components of h from scratch
// — the ground truth incremental maintenance must match. It returns the
// partition as a map from vertex to a canonical part index.
func referenceComponents(h *Hypergraph) map[Vertex]int {
	adj := make(map[Vertex][]Vertex)
	for _, e := range h.Edges() {
		for _, v := range e.Verts {
			adj[v] = append(adj[v], e.Verts...)
		}
	}
	part := make(map[Vertex]int)
	next := 0
	for v := range adj {
		if _, ok := part[v]; ok {
			continue
		}
		queue := []Vertex{v}
		part[v] = next
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, w := range adj[u] {
				if _, ok := part[w]; !ok {
					part[w] = next
					queue = append(queue, w)
				}
			}
		}
		next++
	}
	return part
}

// checkComponents asserts that the maintained labeling is exactly the
// from-scratch partition: same vertex set, same grouping, consistent
// per-component vertex/edge counts, and fingerprints that are equal for
// equal edge sets (checked indirectly via recomputation).
func checkComponents(t *testing.T, h *Hypergraph, ctx string) {
	t.Helper()
	want := referenceComponents(h)
	// Same conflicting-vertex set.
	if got := len(h.st.compOf); got != len(want) {
		t.Fatalf("%s: labeled %d vertices, reference has %d", ctx, got, len(want))
	}
	// The maintained labels induce the same partition.
	refToID := make(map[int]uint64)
	idToRef := make(map[uint64]int)
	for v, ref := range want {
		got, ok := h.ComponentOf(v)
		if !ok {
			t.Fatalf("%s: vertex %v unlabeled, reference part %d", ctx, v, ref)
		}
		if id, seen := refToID[ref]; seen && id != got.ID {
			t.Fatalf("%s: reference part %d maps to ids %d and %d", ctx, ref, id, got.ID)
		}
		if r, seen := idToRef[got.ID]; seen && r != ref {
			t.Fatalf("%s: id %d maps to reference parts %d and %d", ctx, got.ID, r, ref)
		}
		refToID[ref] = got.ID
		idToRef[got.ID] = ref
	}
	// Component records agree with recomputation from the edge list.
	sizes := make(map[uint64]map[Vertex]bool)
	edgeCount := make(map[uint64]int)
	fps := make(map[uint64]uint64)
	for _, e := range h.Edges() {
		ref, ok := h.ComponentOf(e.Verts[0])
		if !ok {
			t.Fatalf("%s: edge %v has unlabeled vertex", ctx, e)
		}
		for _, v := range e.Verts {
			r2, _ := h.ComponentOf(v)
			if r2.ID != ref.ID {
				t.Fatalf("%s: edge %v spans components %d and %d", ctx, e, ref.ID, r2.ID)
			}
			if sizes[ref.ID] == nil {
				sizes[ref.ID] = make(map[Vertex]bool)
			}
			sizes[ref.ID][v] = true
		}
		edgeCount[ref.ID]++
		fps[ref.ID] ^= edgeHash(e.key())
	}
	if got := h.NumComponents(); got != len(sizes) {
		t.Fatalf("%s: NumComponents=%d, edges induce %d", ctx, got, len(sizes))
	}
	for _, c := range h.Components() {
		if c.Verts != len(sizes[c.ID]) {
			t.Fatalf("%s: component %d records %d verts, has %d", ctx, c.ID, c.Verts, len(sizes[c.ID]))
		}
		if c.Edges != edgeCount[c.ID] {
			t.Fatalf("%s: component %d records %d edges, has %d", ctx, c.ID, c.Edges, edgeCount[c.ID])
		}
		if c.FP != fps[c.ID] {
			t.Fatalf("%s: component %d fingerprint %x, recomputed %x", ctx, c.ID, c.FP, fps[c.ID])
		}
	}
}

func v(rel string, row int) Vertex { return Vertex{Rel: rel, Row: storage.RowID(row)} }

func TestComponentMergeOnInsert(t *testing.T) {
	h := NewHypergraph()
	h.AddEdge([]Vertex{v("r", 1), v("r", 2)}, "c1")
	h.AddEdge([]Vertex{v("r", 3), v("r", 4)}, "c1")
	checkComponents(t, h, "two components")
	if h.NumComponents() != 2 {
		t.Fatalf("want 2 components, got %d", h.NumComponents())
	}
	a, _ := h.ComponentOf(v("r", 1))
	b, _ := h.ComponentOf(v("r", 3))
	if a.ID == b.ID {
		t.Fatalf("disjoint edges share component %d", a.ID)
	}

	h.BeginChangeLog()
	h.AddEdge([]Vertex{v("r", 2), v("r", 3)}, "c2")
	log := h.TakeChangeLog()
	checkComponents(t, h, "after merge")
	if h.NumComponents() != 1 {
		t.Fatalf("want 1 merged component, got %d", h.NumComponents())
	}
	merged, _ := h.ComponentOf(v("r", 1))
	if merged.ID == a.ID || merged.ID == b.ID {
		t.Fatalf("merge must mint a fresh id, reused %d", merged.ID)
	}
	for _, old := range []uint64{a.ID, b.ID, merged.ID} {
		if _, ok := log.Touched[old]; !ok {
			t.Fatalf("change log misses touched component %d (log %v)", old, log.Touched)
		}
	}
	for _, u := range []Vertex{v("r", 2), v("r", 3)} {
		if _, ok := log.AddedEdgeVerts[u]; !ok {
			t.Fatalf("change log misses added-edge vertex %v", u)
		}
	}
}

func TestComponentGrowKeepsIDChangesFingerprint(t *testing.T) {
	h := NewHypergraph()
	h.AddEdge([]Vertex{v("r", 1), v("r", 2)}, "c")
	before, _ := h.ComponentOf(v("r", 1))
	h.AddEdge([]Vertex{v("r", 2), v("r", 3)}, "c")
	after, _ := h.ComponentOf(v("r", 1))
	if after.ID != before.ID {
		t.Fatalf("growing a single component must keep its id: %d -> %d", before.ID, after.ID)
	}
	if after.FP == before.FP {
		t.Fatalf("fingerprint must change when the edge set grows")
	}
	checkComponents(t, h, "after growth")
}

func TestComponentSplitOnDelete(t *testing.T) {
	// Chain 1-2, 2-3, 3-4: removing the middle edge splits the component.
	h := NewHypergraph()
	h.AddEdge([]Vertex{v("r", 1), v("r", 2)}, "c")
	h.AddEdge([]Vertex{v("r", 2), v("r", 3)}, "c")
	h.AddEdge([]Vertex{v("r", 3), v("r", 4)}, "c")
	if h.NumComponents() != 1 {
		t.Fatalf("want 1 component, got %d", h.NumComponents())
	}
	h.BeginChangeLog()
	if !h.RemoveEdge([]Vertex{v("r", 2), v("r", 3)}) {
		t.Fatal("middle edge not found")
	}
	log := h.TakeChangeLog()
	checkComponents(t, h, "after split")
	if h.NumComponents() != 2 {
		t.Fatalf("want 2 components after split, got %d", h.NumComponents())
	}
	left, _ := h.ComponentOf(v("r", 1))
	right, _ := h.ComponentOf(v("r", 4))
	if left.ID == right.ID {
		t.Fatal("split parts share a component id")
	}
	if len(log.Touched) == 0 {
		t.Fatal("split recorded no touched components")
	}
}

func TestComponentReclamation(t *testing.T) {
	h := NewHypergraph()
	h.AddEdge([]Vertex{v("r", 1), v("r", 2)}, "c")
	h.AddEdge([]Vertex{v("r", 1), v("r", 3)}, "c")
	if n := h.RemoveVertex(v("r", 1)); n != 2 {
		t.Fatalf("RemoveVertex removed %d edges, want 2", n)
	}
	if h.NumComponents() != 0 {
		t.Fatalf("want 0 components after reclamation, got %d", h.NumComponents())
	}
	if len(h.st.compOf) != 0 {
		t.Fatalf("compOf retains %d stale vertices", len(h.st.compOf))
	}
	checkComponents(t, h, "after reclamation")
}

func TestComponentSnapshotImmutability(t *testing.T) {
	h := NewHypergraph()
	h.AddEdge([]Vertex{v("r", 1), v("r", 2)}, "c")
	snap := h.Snapshot()
	ref, _ := snap.ComponentOf(v("r", 1))
	h.AddEdge([]Vertex{v("r", 2), v("r", 3)}, "c")
	h.RemoveEdge([]Vertex{v("r", 1), v("r", 2)})
	got, ok := snap.ComponentOf(v("r", 1))
	if !ok || got != ref {
		t.Fatalf("snapshot component changed under mutation: %+v -> %+v (ok=%v)", ref, got, ok)
	}
	if snap.NumComponents() != 1 {
		t.Fatalf("snapshot component count changed: %d", snap.NumComponents())
	}
}

// TestComponentRandomizedVsReference drives a random add/remove sequence
// (including multi-vertex hyperedges and vertex removals) and checks the
// incremental labeling against the from-scratch reference after every
// mutation, across enough steps to trigger slot compaction.
func TestComponentRandomizedVsReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := NewHypergraph()
	var live [][]Vertex
	vertex := func() Vertex { return v("r", rng.Intn(30)) }
	for step := 0; step < 800; step++ {
		ctx := fmt.Sprintf("step %d", step)
		switch op := rng.Intn(10); {
		case op < 5 || len(live) == 0: // add an edge of size 1..3
			size := 1 + rng.Intn(3)
			verts := make([]Vertex, size)
			for i := range verts {
				verts[i] = vertex()
			}
			if h.AddEdge(verts, "rnd") {
				live = append(live, verts)
			}
		case op < 8: // remove a random live edge
			i := rng.Intn(len(live))
			if !h.RemoveEdge(live[i]) {
				t.Fatalf("%s: live edge %v missing", ctx, live[i])
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		default: // remove a random vertex and every edge through it
			u := vertex()
			h.RemoveVertex(u)
			keep := live[:0]
			for _, verts := range live {
				hit := false
				for _, w := range verts {
					if w == u {
						hit = true
						break
					}
				}
				if !hit {
					keep = append(keep, verts)
				}
			}
			live = keep
		}
		checkComponents(t, h, ctx)
	}
	if len(h.st.edges) >= 64+2*h.st.liveEdges {
		t.Fatalf("compaction never ran: %d slots for %d live edges", len(h.st.edges), h.st.liveEdges)
	}
}
