package envelope

import (
	"errors"
	"sort"
	"strings"
	"testing"

	"hippo/internal/conflict"
	"hippo/internal/constraint"
	"hippo/internal/engine"
	"hippo/internal/ra"
	"hippo/internal/repair"
	"hippo/internal/sqlparse"
	"hippo/internal/value"
)

func newDB(t *testing.T) *engine.DB {
	t.Helper()
	db := engine.New()
	mustExec(db, "CREATE TABLE emp (id INT, salary INT)")
	mustExec(db, "CREATE TABLE mgr (id INT, bonus INT)")
	mustExec(db, "INSERT INTO emp VALUES (1, 100), (1, 200), (2, 150)")
	mustExec(db, "INSERT INTO mgr VALUES (1, 5), (2, 6)")
	return db
}

func plan(t *testing.T, db *engine.DB, sql string) ra.Node {
	t.Helper()
	q, err := sqlparse.ParseQuery(sql)
	if err != nil {
		t.Fatal(err)
	}
	p, err := db.PlanQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCheckQueryAcceptsSJUD(t *testing.T) {
	db := newDB(t)
	good := []string{
		"SELECT * FROM emp",
		"SELECT * FROM emp WHERE salary > 100",
		"SELECT * FROM emp, mgr",
		"SELECT * FROM emp JOIN mgr ON emp.id = mgr.id",
		"SELECT * FROM emp UNION SELECT * FROM mgr",
		"SELECT * FROM emp EXCEPT SELECT * FROM mgr",
		"SELECT * FROM emp INTERSECT SELECT * FROM mgr",
		"SELECT DISTINCT * FROM emp",
		"SELECT salary, id FROM emp",     // permutation projection
		"SELECT id, id, salary FROM emp", // duplicating projection
		"SELECT e.id, e.salary, m.id, m.bonus FROM emp e, mgr m WHERE e.id = m.id",
	}
	for _, q := range good {
		if err := CheckQuery(plan(t, db, q)); err != nil {
			t.Errorf("CheckQuery(%q) = %v, want nil", q, err)
		}
	}
}

func TestCheckQueryRejectsOutOfClass(t *testing.T) {
	db := newDB(t)
	bad := []struct {
		sql  string
		frag string
	}{
		{"SELECT id FROM emp", "drops column"},
		{"SELECT salary + 1, id, salary FROM emp", "not a bare column"},
		{"SELECT * FROM emp e WHERE EXISTS (SELECT * FROM mgr m WHERE m.id = e.id)", "SJUD"},
		{"SELECT * FROM emp WHERE id IN (SELECT id FROM mgr)", "SJUD"},
	}
	for _, c := range bad {
		err := CheckQuery(plan(t, db, c.sql))
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("CheckQuery(%q) = %v, want error containing %q", c.sql, err, c.frag)
		}
	}
}

func TestEnvelopeShapes(t *testing.T) {
	db := newDB(t)
	// Difference: envelope keeps only the left side.
	env, err := Envelope(plan(t, db, "SELECT * FROM emp EXCEPT SELECT * FROM mgr"))
	if err != nil {
		t.Fatal(err)
	}
	s := ra.Format(env)
	if strings.Contains(s, "Diff") {
		t.Errorf("difference envelope should not subtract:\n%s", s)
	}
	if !strings.Contains(s, "Scan(emp)") || strings.Contains(s, "Scan(mgr)") {
		t.Errorf("difference envelope should scan only emp:\n%s", s)
	}
	// Union: both sides survive.
	env, err = Envelope(plan(t, db, "SELECT * FROM emp UNION SELECT * FROM mgr"))
	if err != nil {
		t.Fatal(err)
	}
	s = ra.Format(env)
	if !strings.Contains(s, "Union") {
		t.Errorf("union envelope:\n%s", s)
	}
	// Out-of-class input propagates the validation error.
	if _, err := Envelope(plan(t, db, "SELECT id FROM emp")); err == nil {
		t.Error("unsafe projection should fail")
	}
}

// The envelope must contain every possible answer (hence every consistent
// answer) — checked against the repair oracle on several query shapes.
func TestEnvelopeSupersetOfPossibleAnswers(t *testing.T) {
	db := newDB(t)
	fd := constraint.FD{Rel: "emp", LHS: []string{"id"}, RHS: []string{"salary"}}
	h, _, _, err := conflict.NewDetector(db).Detect([]constraint.Constraint{fd})
	if err != nil {
		t.Fatal(err)
	}
	en := &repair.Enumerator{DB: db, H: h}
	queries := []string{
		"SELECT * FROM emp",
		"SELECT * FROM emp WHERE salary >= 150",
		"SELECT * FROM emp EXCEPT SELECT * FROM emp WHERE salary > 150",
		"SELECT * FROM emp UNION SELECT * FROM mgr",
		"SELECT e.id, e.salary, m.id, m.bonus FROM emp e, mgr m WHERE e.id = m.id",
		"SELECT salary, id FROM emp",
	}
	for _, q := range queries {
		env, err := Envelope(plan(t, db, q))
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		res, err := db.RunPlan(env)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		envSet := map[string]bool{}
		for _, row := range res.Rows {
			envSet[row.Key()] = true
		}
		possible, err := en.PossibleAnswers(q)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		for _, row := range possible {
			if !envSet[row.Key()] {
				t.Errorf("%q: possible answer %s missing from envelope", q, value.TupleString(row))
			}
		}
	}
}

func TestEnvelopeDoesNotMutateInput(t *testing.T) {
	db := newDB(t)
	p := plan(t, db, "SELECT * FROM emp EXCEPT SELECT * FROM mgr")
	before := ra.Format(p)
	if _, err := Envelope(p); err != nil {
		t.Fatal(err)
	}
	if ra.Format(p) != before {
		t.Error("Envelope mutated the input plan")
	}
}

func TestEnvelopeCandidateCounts(t *testing.T) {
	db := newDB(t)
	// The E1−E2 envelope can strictly over-approximate: candidates include
	// tuples the difference would remove.
	env, _ := Envelope(plan(t, db, "SELECT * FROM emp EXCEPT SELECT * FROM emp WHERE id = 1"))
	res, err := db.RunPlan(env)
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := db.Query("SELECT * FROM emp EXCEPT SELECT * FROM emp WHERE id = 1")
	if len(res.Rows) <= len(direct.Rows) {
		t.Errorf("envelope should over-approximate: env=%d direct=%d",
			len(res.Rows), len(direct.Rows))
	}
	sort.Slice(res.Rows, func(i, j int) bool {
		return value.CompareTuples(res.Rows[i], res.Rows[j]) < 0
	})
	if len(res.Rows) != 3 {
		t.Errorf("envelope rows = %v", res.Rows)
	}
}

// TestUnsupportedShapesAreErrorsNotPanics feeds the offending shapes of
// the former build() panic: nodes that slip past the supported-operator
// switch must come back as typed ErrUnsupported errors, never crash the
// process, and every CheckQuery rejection must carry the same sentinel.
func TestUnsupportedShapesAreErrorsNotPanics(t *testing.T) {
	db := newDB(t)
	tab, err := db.Table("emp")
	if err != nil {
		t.Fatal(err)
	}
	scan := &ra.Scan{Table: tab}
	rejected := []ra.Node{
		&ra.Values{},                   // constant relation
		&ra.Sort{Child: scan},          // ORDER BY inside the SJUD core
		&ra.Limit{Child: scan, N: 1},   // LIMIT inside the SJUD core
		&ra.SemiJoin{L: scan, R: scan}, // EXISTS
		&ra.AntiJoin{L: scan, R: scan}, // NOT EXISTS
	}
	for _, n := range rejected {
		if _, err := Envelope(n); !errors.Is(err, ErrUnsupported) {
			t.Errorf("Envelope(%T) err = %v, want ErrUnsupported", n, err)
		}
	}
	// The rewrite's own default arm (reachable only if the two switches
	// drift): an error, not a panic.
	if _, err := build(&ra.Values{}); !errors.Is(err, ErrUnsupported) {
		t.Errorf("build(Values) err = %v, want ErrUnsupported", err)
	}
	if _, err := build(&ra.Select{Child: &ra.Values{}}); !errors.Is(err, ErrUnsupported) {
		t.Errorf("build(Select(Values)) err = %v, want ErrUnsupported", err)
	}
	// Existential projection (paper footnote 4).
	proj := &ra.Project{Child: scan, Exprs: []ra.Expr{ra.Col{Index: 0}}, Names: []string{"id"}}
	if err := CheckQuery(proj); !errors.Is(err, ErrUnsupported) {
		t.Errorf("CheckQuery(∃-projection) err = %v, want ErrUnsupported", err)
	}
}
