// Package envelope implements Hippo's Enveloping stage: given the
// relational algebra plan of an SJUD query, it derives the envelope — a
// query whose evaluation over the (inconsistent) database yields a
// superset of the candidate consistent answers. Evaluating the envelope is
// the only full query evaluation Hippo performs; every candidate is then
// checked individually by the Prover.
//
// The envelope over-approximates the *possible* answers (tuples in the
// query result of at least one repair), which in turn contain all
// consistent answers:
//
//	env(R)        = R
//	env(σ_c(E))   = σ_c(env(E))
//	env(E₁ × E₂)  = env(E₁) × env(E₂)
//	env(E₁ ∪ E₂)  = env(E₁) ∪ env(E₂)
//	env(E₁ − E₂)  = env(E₁)            (tuples of E₂ may vanish in repairs)
//	env(E₁ ∩ E₂)  = env(E₁) ∩ env(E₂)
//	env(π_L(E))   = π_L(env(E))        (L must introduce no existentials)
//
// The projection restriction mirrors footnote 4 of the paper: π_L is
// allowed only when L mentions every column of its input (a permutation,
// possibly with duplicates), so that each output tuple determines its
// witness uniquely.
package envelope

import (
	"errors"
	"fmt"

	"hippo/internal/ra"
)

// ErrUnsupported marks a query shape outside the SJUD class Hippo
// supports. Every unsupported-shape rejection CheckQuery (and hence
// ConsistentQuery) produces wraps it, so callers can test
// errors.Is(err, ErrUnsupported) instead of matching message text; no
// unsupported shape panics. Malformed-plan errors (e.g. a projection
// column index outside its input's arity, which no SQL input can
// produce) are internal invariant violations and do not wrap it.
var ErrUnsupported = errors.New("unsupported query shape")

// CheckQuery validates that a plan is within Hippo's supported SJUD
// class (+ safe projection). It returns a descriptive error naming the
// offending operator otherwise.
func CheckQuery(n ra.Node) error {
	switch t := n.(type) {
	case *ra.Scan:
		return nil
	case *ra.Select:
		return CheckQuery(t.Child)
	case *ra.Project:
		if err := checkSafeProjection(t); err != nil {
			return err
		}
		return CheckQuery(t.Child)
	case *ra.Product:
		if err := CheckQuery(t.L); err != nil {
			return err
		}
		return CheckQuery(t.R)
	case *ra.Join:
		if err := CheckQuery(t.L); err != nil {
			return err
		}
		return CheckQuery(t.R)
	case *ra.Union:
		if err := CheckQuery(t.L); err != nil {
			return err
		}
		return CheckQuery(t.R)
	case *ra.Diff:
		if err := CheckQuery(t.L); err != nil {
			return err
		}
		return CheckQuery(t.R)
	case *ra.Intersect:
		if err := CheckQuery(t.L); err != nil {
			return err
		}
		return CheckQuery(t.R)
	case *ra.DistinctNode:
		return CheckQuery(t.Child)
	case *ra.SemiJoin, *ra.AntiJoin:
		return fmt.Errorf("envelope: EXISTS/IN subqueries are not part of the SJUD class supported by Hippo: %w", ErrUnsupported)
	case *ra.Sort, *ra.Limit:
		return fmt.Errorf("envelope: ORDER BY/LIMIT are applied after certification, not inside the SJUD query (core strips top-level ones): %w", ErrUnsupported)
	case *ra.Values:
		return fmt.Errorf("envelope: constant relations are not supported in consistent queries: %w", ErrUnsupported)
	default:
		return fmt.Errorf("envelope: unsupported operator %T: %w", n, ErrUnsupported)
	}
}

// checkSafeProjection enforces the no-existential-quantifier projection
// rule: every projection expression must be a bare column, and together
// they must mention every column of the input.
func checkSafeProjection(p *ra.Project) error {
	childArity := p.Child.Schema().Len()
	covered := make([]bool, childArity)
	for _, e := range p.Exprs {
		c, ok := e.(ra.Col)
		if !ok {
			return fmt.Errorf("envelope: projection expression %q is not a bare column; computed projections introduce existential quantifiers: %w", e, ErrUnsupported)
		}
		if c.Index < 0 || c.Index >= childArity {
			return fmt.Errorf("envelope: projection column #%d out of range", c.Index)
		}
		covered[c.Index] = true
	}
	for i, ok := range covered {
		if !ok {
			return fmt.Errorf("envelope: projection drops column %d (%s); only permutations of all columns are supported (paper footnote 4): %w",
				i, p.Child.Schema().Columns[i], ErrUnsupported)
		}
	}
	return nil
}

// Envelope rewrites a validated SJUD plan into its envelope. The input
// plan is not mutated; shared subtrees are rebuilt.
func Envelope(n ra.Node) (ra.Node, error) {
	if err := CheckQuery(n); err != nil {
		return nil, err
	}
	return build(n)
}

func build(n ra.Node) (ra.Node, error) {
	switch t := n.(type) {
	case *ra.Scan:
		return &ra.Scan{Table: t.Table, Alias: t.Alias}, nil
	case *ra.Select:
		c, err := build(t.Child)
		if err != nil {
			return nil, err
		}
		return &ra.Select{Child: c, Pred: t.Pred}, nil
	case *ra.Project:
		c, err := build(t.Child)
		if err != nil {
			return nil, err
		}
		return &ra.Project{Child: c, Exprs: t.Exprs, Names: t.Names, Distinct: true}, nil
	case *ra.Product:
		l, r, err := build2(t.L, t.R)
		if err != nil {
			return nil, err
		}
		return &ra.Product{L: l, R: r}, nil
	case *ra.Join:
		l, r, err := build2(t.L, t.R)
		if err != nil {
			return nil, err
		}
		return &ra.Join{L: l, R: r, Pred: t.Pred}, nil
	case *ra.Union:
		l, r, err := build2(t.L, t.R)
		if err != nil {
			return nil, err
		}
		return &ra.Union{L: l, R: r}, nil
	case *ra.Diff:
		// Candidates for E₁ − E₂ are the possible answers of E₁ alone: a
		// tuple absent from E₁ on the full database is absent from it in
		// every repair, while membership in E₂ must be decided per repair
		// by the Prover.
		l, err := build(t.L)
		if err != nil {
			return nil, err
		}
		return &ra.DistinctNode{Child: l}, nil
	case *ra.Intersect:
		l, r, err := build2(t.L, t.R)
		if err != nil {
			return nil, err
		}
		return &ra.Intersect{L: l, R: r}, nil
	case *ra.DistinctNode:
		c, err := build(t.Child)
		if err != nil {
			return nil, err
		}
		return &ra.DistinctNode{Child: c}, nil
	default:
		// CheckQuery normally rejects anything that lands here; the error
		// (not a panic — this is reachable through user queries if the two
		// switches ever drift) keeps the process alive.
		return nil, fmt.Errorf("envelope: unexpected node %T: %w", n, ErrUnsupported)
	}
}

func build2(l, r ra.Node) (ra.Node, ra.Node, error) {
	nl, err := build(l)
	if err != nil {
		return nil, nil, err
	}
	nr, err := build(r)
	if err != nil {
		return nil, nil, err
	}
	return nl, nr, nil
}
