// Package envelope implements Hippo's Enveloping stage: given the
// relational algebra plan of an SJUD query, it derives the envelope — a
// query whose evaluation over the (inconsistent) database yields a
// superset of the candidate consistent answers. Evaluating the envelope is
// the only full query evaluation Hippo performs; every candidate is then
// checked individually by the Prover.
//
// The envelope over-approximates the *possible* answers (tuples in the
// query result of at least one repair), which in turn contain all
// consistent answers:
//
//	env(R)        = R
//	env(σ_c(E))   = σ_c(env(E))
//	env(E₁ × E₂)  = env(E₁) × env(E₂)
//	env(E₁ ∪ E₂)  = env(E₁) ∪ env(E₂)
//	env(E₁ − E₂)  = env(E₁)            (tuples of E₂ may vanish in repairs)
//	env(E₁ ∩ E₂)  = env(E₁) ∩ env(E₂)
//	env(π_L(E))   = π_L(env(E))        (L must introduce no existentials)
//
// The projection restriction mirrors footnote 4 of the paper: π_L is
// allowed only when L mentions every column of its input (a permutation,
// possibly with duplicates), so that each output tuple determines its
// witness uniquely.
package envelope

import (
	"fmt"

	"hippo/internal/ra"
)

// CheckQuery validates that a plan is within Hippo's supported SJUD
// class (+ safe projection). It returns a descriptive error naming the
// offending operator otherwise.
func CheckQuery(n ra.Node) error {
	switch t := n.(type) {
	case *ra.Scan:
		return nil
	case *ra.Select:
		return CheckQuery(t.Child)
	case *ra.Project:
		if err := checkSafeProjection(t); err != nil {
			return err
		}
		return CheckQuery(t.Child)
	case *ra.Product:
		if err := CheckQuery(t.L); err != nil {
			return err
		}
		return CheckQuery(t.R)
	case *ra.Join:
		if err := CheckQuery(t.L); err != nil {
			return err
		}
		return CheckQuery(t.R)
	case *ra.Union:
		if err := CheckQuery(t.L); err != nil {
			return err
		}
		return CheckQuery(t.R)
	case *ra.Diff:
		if err := CheckQuery(t.L); err != nil {
			return err
		}
		return CheckQuery(t.R)
	case *ra.Intersect:
		if err := CheckQuery(t.L); err != nil {
			return err
		}
		return CheckQuery(t.R)
	case *ra.DistinctNode:
		return CheckQuery(t.Child)
	case *ra.SemiJoin, *ra.AntiJoin:
		return fmt.Errorf("envelope: EXISTS/IN subqueries are not part of the SJUD class supported by Hippo")
	case *ra.Sort, *ra.Limit:
		return fmt.Errorf("envelope: ORDER BY/LIMIT are applied after certification, not inside the SJUD query (core strips top-level ones)")
	case *ra.Values:
		return fmt.Errorf("envelope: constant relations are not supported in consistent queries")
	default:
		return fmt.Errorf("envelope: unsupported operator %T", n)
	}
}

// checkSafeProjection enforces the no-existential-quantifier projection
// rule: every projection expression must be a bare column, and together
// they must mention every column of the input.
func checkSafeProjection(p *ra.Project) error {
	childArity := p.Child.Schema().Len()
	covered := make([]bool, childArity)
	for _, e := range p.Exprs {
		c, ok := e.(ra.Col)
		if !ok {
			return fmt.Errorf("envelope: projection expression %q is not a bare column; computed projections introduce existential quantifiers", e)
		}
		if c.Index < 0 || c.Index >= childArity {
			return fmt.Errorf("envelope: projection column #%d out of range", c.Index)
		}
		covered[c.Index] = true
	}
	for i, ok := range covered {
		if !ok {
			return fmt.Errorf("envelope: projection drops column %d (%s); only permutations of all columns are supported (paper footnote 4)",
				i, p.Child.Schema().Columns[i])
		}
	}
	return nil
}

// Envelope rewrites a validated SJUD plan into its envelope. The input
// plan is not mutated; shared subtrees are rebuilt.
func Envelope(n ra.Node) (ra.Node, error) {
	if err := CheckQuery(n); err != nil {
		return nil, err
	}
	return build(n), nil
}

func build(n ra.Node) ra.Node {
	switch t := n.(type) {
	case *ra.Scan:
		return &ra.Scan{Table: t.Table, Alias: t.Alias}
	case *ra.Select:
		return &ra.Select{Child: build(t.Child), Pred: t.Pred}
	case *ra.Project:
		return &ra.Project{Child: build(t.Child), Exprs: t.Exprs, Names: t.Names, Distinct: true}
	case *ra.Product:
		return &ra.Product{L: build(t.L), R: build(t.R)}
	case *ra.Join:
		return &ra.Join{L: build(t.L), R: build(t.R), Pred: t.Pred}
	case *ra.Union:
		return &ra.Union{L: build(t.L), R: build(t.R)}
	case *ra.Diff:
		// Candidates for E₁ − E₂ are the possible answers of E₁ alone: a
		// tuple absent from E₁ on the full database is absent from it in
		// every repair, while membership in E₂ must be decided per repair
		// by the Prover.
		return &ra.DistinctNode{Child: build(t.L)}
	case *ra.Intersect:
		return &ra.Intersect{L: build(t.L), R: build(t.R)}
	case *ra.DistinctNode:
		return &ra.DistinctNode{Child: build(t.Child)}
	default:
		// CheckQuery guarantees exhaustiveness.
		panic(fmt.Sprintf("envelope: unexpected node %T", n))
	}
}
