package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hippo"
	"hippo/internal/hclient"
)

// newTestServer builds a Server over db, mounts it on an httptest
// server, and returns a typed client. Cleanup closes everything (the
// Server owns and closes db).
func newTestServer(t *testing.T, db *hippo.DB, cfg Config) (*Server, *hclient.Client) {
	t.Helper()
	srv := New(db, cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, hclient.New(ts.URL, ts.Client())
}

// empDB is the canonical small instance: FD id -> salary, two id-groups
// in conflict, two clean rows.
func empDB(t *testing.T) *hippo.DB {
	t.Helper()
	db := hippo.Open()
	for _, q := range []string{
		"CREATE TABLE emp (id INT, salary INT)",
		"INSERT INTO emp VALUES (1, 100), (1, 200), (2, 150), (3, 300), (3, 310), (4, 50)",
	} {
		if _, _, err := db.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.AddFD("emp", []string{"id"}, []string{"salary"}); err != nil {
		t.Fatal(err)
	}
	return db
}

// bigJoinServerDB loads two n-row tables whose group join produces
// ~n^2/4 candidates — expensive enough that deadline tests abort it
// mid-flight.
func bigJoinServerDB(t *testing.T, n int) *hippo.DB {
	t.Helper()
	db := hippo.Open()
	for _, q := range []string{
		"CREATE TABLE a (id INT, grp INT)",
		"CREATE TABLE b (id INT, grp INT)",
	} {
		if _, _, err := db.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	var rows []string
	for i := 0; i < n; i++ {
		rows = append(rows, fmt.Sprintf("(%d, %d)", i, i%4))
	}
	for _, tbl := range []string{"a", "b"} {
		if _, _, err := db.Exec("INSERT INTO " + tbl + " VALUES " + strings.Join(rows, ", ")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.AddFD("a", []string{"id"}, []string{"grp"}); err != nil {
		t.Fatal(err)
	}
	return db
}

const serverGrpJoin = "SELECT * FROM a, b WHERE a.grp = b.grp"

func TestEndpoints(t *testing.T) {
	_, c := newTestServer(t, empDB(t), Config{})
	ctx := context.Background()

	if err := c.Health(ctx); err != nil {
		t.Fatalf("health: %v", err)
	}

	// Plain query sees the raw, inconsistent data.
	res, err := c.Query(ctx, "SELECT * FROM emp", hclient.QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 6 || len(res.Rows) != 6 {
		t.Fatalf("plain query rows = %d, want 6", res.Count)
	}
	if len(res.Columns) != 2 || res.Columns[0] != "id" {
		t.Fatalf("columns = %v", res.Columns)
	}

	// Consistent query keeps only rows in every repair.
	res, err = c.ConsistentQuery(ctx, "SELECT * FROM emp", hclient.QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if got := wireKey(res.Rows); got != "(2, 150) (4, 50)" {
		t.Fatalf("consistent answers = %q", got)
	}
	if res.Stats == nil || res.Stats.Answers != 2 || !res.Stats.Streamed {
		t.Fatalf("stats = %+v", res.Stats)
	}

	// The materialized baseline agrees.
	mres, err := c.ConsistentQuery(ctx, "SELECT * FROM emp", hclient.QueryOpts{Materialized: true})
	if err != nil {
		t.Fatal(err)
	}
	if wireKey(mres.Rows) != wireKey(res.Rows) {
		t.Fatalf("materialized disagrees: %q vs %q", wireKey(mres.Rows), wireKey(res.Rows))
	}
	if mres.Stats.Streamed {
		t.Fatal("materialized run reported streamed")
	}

	// Exec write + batch, visible to subsequent queries.
	if _, n, err := c.Exec(ctx, "INSERT INTO emp VALUES (5, 500)"); err != nil || n != 1 {
		t.Fatalf("exec: n=%d err=%v", n, err)
	}
	counts, err := c.Batch(ctx, "INSERT INTO emp VALUES (6, 600)", "DELETE FROM emp WHERE id = 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 2 || counts[0] != 1 || counts[1] != 1 {
		t.Fatalf("batch counts = %v", counts)
	}
	res, err = c.ConsistentQuery(ctx, "SELECT * FROM emp", hclient.QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if got := wireKey(res.Rows); got != "(2, 150) (4, 50) (6, 600)" {
		t.Fatalf("post-write answers = %q", got)
	}

	// Exec of a SELECT returns rows.
	sres, n, err := c.Exec(ctx, "SELECT * FROM emp WHERE id = 6")
	if err != nil || sres == nil || n != 1 {
		t.Fatalf("exec select: res=%v n=%d err=%v", sres, n, err)
	}

	// A failing batch reports sql_error and leaves nothing behind.
	if _, err := c.Batch(ctx, "INSERT INTO emp VALUES (7, 700)", "INSERT INTO nosuch VALUES (1)"); err == nil {
		t.Fatal("bad batch succeeded")
	}
	res, _ = c.Query(ctx, "SELECT * FROM emp WHERE id = 7", hclient.QueryOpts{})
	if res.Count != 0 {
		t.Fatalf("failed batch left %d rows", res.Count)
	}

	// Stats endpoint.
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch == 0 || st.MaxInFlight != 64 || st.Durable || st.Draining {
		t.Fatalf("stats = %+v", st)
	}
	if st.Version != hippo.Version {
		t.Fatalf("version = %q", st.Version)
	}

	// Checkpoint on an in-memory database is a client error.
	var apiErr *hclient.APIError
	if err := c.Checkpoint(ctx); !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("in-memory checkpoint err = %v", err)
	}

	// An unsupported query shape is a 400 with the unsupported code.
	_, err = c.ConsistentQuery(ctx, "SELECT id FROM emp", hclient.QueryOpts{})
	if !errors.As(err, &apiErr) || apiErr.Code != CodeUnsupported {
		t.Fatalf("unsupported query err = %v", err)
	}
}

// A fresh in-memory server is fully configurable over the wire: schema
// and data via exec, the constraint via /v1/fd, then consistent answers
// reflect the declared FD.
func TestAddFDOverWire(t *testing.T) {
	_, c := newTestServer(t, hippo.Open(), Config{})
	ctx := context.Background()
	if _, _, err := c.Exec(ctx, "CREATE TABLE emp (id INT, salary INT)"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Exec(ctx, "INSERT INTO emp VALUES (1, 100), (1, 200), (2, 150)"); err != nil {
		t.Fatal(err)
	}
	// Before the FD is declared the data is conflict-free: all rows are
	// consistent answers.
	res, err := c.ConsistentQuery(ctx, "SELECT * FROM emp", hclient.QueryOpts{})
	if err != nil || res.Count != 3 {
		t.Fatalf("pre-FD answers = %v err = %v", res, err)
	}
	if err := c.AddFD(ctx, "emp: id -> salary"); err != nil {
		t.Fatal(err)
	}
	res, err = c.ConsistentQuery(ctx, "SELECT * FROM emp", hclient.QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if got := wireKey(res.Rows); got != "(2, 150)" {
		t.Fatalf("post-FD answers = %q, want (2, 150)", got)
	}
	// A bad spec is a 400.
	if err := c.AddFD(ctx, "nosuch: a -> b"); err == nil {
		t.Fatal("FD on missing relation accepted")
	}
}

// wireKey serializes wire rows the way core tests serialize tuples:
// sorted "(a, b)" pairs joined by spaces. JSON numbers arrive float64.
func wireKey(rows [][]any) string {
	parts := make([]string, len(rows))
	for i, r := range rows {
		vals := make([]string, len(r))
		for j, v := range r {
			switch x := v.(type) {
			case float64:
				vals[j] = fmt.Sprintf("%d", int64(x))
			default:
				vals[j] = fmt.Sprint(x)
			}
		}
		parts[i] = "(" + strings.Join(vals, ", ") + ")"
	}
	sortStrings(parts)
	return strings.Join(parts, " ")
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Session lifecycle: pinned queries see one immutable state while the
// live database moves on; releasing (or reaping) the session lets the
// retired view's storage be reclaimed — the satellite-3 contract,
// observed end to end through the API's reclamation counters.
func TestSessionPinningAndReclamation(t *testing.T) {
	_, c := newTestServer(t, empDB(t), Config{})
	ctx := context.Background()

	// First consistent query publishes the initial view.
	if _, err := c.ConsistentQuery(ctx, "SELECT * FROM emp", hclient.QueryOpts{}); err != nil {
		t.Fatal(err)
	}
	id, epoch, err := c.NewSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if epoch == 0 {
		t.Fatal("session epoch 0")
	}
	base, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Move the live database: (2,150) becomes inconsistent.
	if _, _, err := c.Exec(ctx, "INSERT INTO emp VALUES (2, 999)"); err != nil {
		t.Fatal(err)
	}
	live, err := c.ConsistentQuery(ctx, "SELECT * FROM emp", hclient.QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if got := wireKey(live.Rows); got != "(4, 50)" {
		t.Fatalf("live answers = %q", got)
	}

	// The pinned session still serves the pre-write state, on both the
	// consistent and the plain path.
	pinned, err := c.ConsistentQuery(ctx, "SELECT * FROM emp", hclient.QueryOpts{Session: id})
	if err != nil {
		t.Fatal(err)
	}
	if got := wireKey(pinned.Rows); got != "(2, 150) (4, 50)" {
		t.Fatalf("pinned answers = %q", got)
	}
	if pinned.Stats.Epoch != epoch {
		t.Fatalf("pinned epoch = %d, want %d", pinned.Stats.Epoch, epoch)
	}
	plain, err := c.Query(ctx, "SELECT * FROM emp", hclient.QueryOpts{Session: id})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Count != 6 {
		t.Fatalf("pinned plain rows = %d, want 6 (pre-write)", plain.Count)
	}

	// While the session holds the retired view, its slabs stay pinned.
	held, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if held.ViewsReclaimed != base.ViewsReclaimed {
		t.Fatalf("pinned view reclaimed early (%d -> %d)", base.ViewsReclaimed, held.ViewsReclaimed)
	}

	// Releasing the session lets reclamation proceed.
	if err := c.ReleaseSession(ctx, id); err != nil {
		t.Fatal(err)
	}
	after, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if after.ViewsReclaimed != base.ViewsReclaimed+1 {
		t.Fatalf("views reclaimed %d -> %d, want exactly one more after release",
			base.ViewsReclaimed, after.ViewsReclaimed)
	}
	if after.SlabsReclaimed <= base.SlabsReclaimed {
		t.Fatalf("slabs reclaimed %d -> %d, want growth after release",
			base.SlabsReclaimed, after.SlabsReclaimed)
	}

	// The released session is gone.
	var apiErr *hclient.APIError
	if _, err := c.Query(ctx, "SELECT * FROM emp", hclient.QueryOpts{Session: id}); !errors.As(err, &apiErr) || !errors.Is(err, hclient.ErrUnknownSession) {
		t.Fatalf("query on released session: err = %v", err)
	}
	if err := c.ReleaseSession(ctx, id); !errors.Is(err, hclient.ErrUnknownSession) {
		t.Fatalf("double release: err = %v", err)
	}
}

// The reaper releases idle sessions, observable as the session count
// dropping and the session id turning unknown.
func TestIdleSessionReaper(t *testing.T) {
	_, c := newTestServer(t, empDB(t), Config{SessionIdle: 200 * time.Millisecond})
	ctx := context.Background()
	id, _, err := c.NewSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := c.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.Sessions == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("session not reaped after 5s (sessions=%d)", st.Sessions)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if _, err := c.Query(ctx, "SELECT * FROM emp", hclient.QueryOpts{Session: id}); !errors.Is(err, hclient.ErrUnknownSession) {
		t.Fatalf("reaped session query err = %v", err)
	}
}

// A 50ms client deadline kills a long consistent query promptly on BOTH
// evaluation paths, and the failure arrives as a typed 504.
func TestDeadlineEnforcementOverHTTP(t *testing.T) {
	_, c := newTestServer(t, bigJoinServerDB(t, 3000), Config{})
	ctx := context.Background()
	for _, tc := range []struct {
		name string
		opts hclient.QueryOpts
	}{
		{"streamed", hclient.QueryOpts{Timeout: 50 * time.Millisecond}},
		{"materialized", hclient.QueryOpts{Timeout: 50 * time.Millisecond, Materialized: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			t0 := time.Now()
			_, err := c.ConsistentQuery(ctx, serverGrpJoin, tc.opts)
			elapsed := time.Since(t0)
			if !errors.Is(err, hclient.ErrDeadline) || !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v, want deadline", err)
			}
			var apiErr *hclient.APIError
			if !errors.As(err, &apiErr) || apiErr.Status != http.StatusGatewayTimeout {
				t.Fatalf("err = %v, want http 504", err)
			}
			// Generous bound for loaded CI machines; E16 measures the
			// ~2x-deadline enforcement claim precisely.
			if elapsed > time.Second {
				t.Fatalf("deadline enforcement took %v (deadline 50ms)", elapsed)
			}
		})
	}
}

// Admission control: with one in-flight slot a concurrent query is shed
// with a typed 429, and capacity returns once the slot frees.
func TestOverloadAdmission(t *testing.T) {
	_, c := newTestServer(t, bigJoinServerDB(t, 3000), Config{MaxInFlight: 1})
	ctx := context.Background()

	slow := make(chan error, 1)
	go func() {
		_, err := c.ConsistentQuery(ctx, serverGrpJoin, hclient.QueryOpts{Timeout: 2 * time.Second})
		slow <- err
	}()
	// Wait until the slow query holds the only slot.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := c.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.InFlight == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slow query never became in-flight")
		}
		time.Sleep(5 * time.Millisecond)
	}

	_, err := c.Query(ctx, "SELECT * FROM a", hclient.QueryOpts{})
	if !errors.Is(err, hclient.ErrOverloaded) {
		t.Fatalf("overload err = %v, want ErrOverloaded", err)
	}
	var apiErr *hclient.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("overload err = %v, want http 429", err)
	}

	if err := <-slow; !errors.Is(err, hclient.ErrDeadline) {
		t.Fatalf("slow query err = %v, want deadline", err)
	}
	// Capacity is back.
	if _, err := c.Query(ctx, "SELECT * FROM a", hclient.QueryOpts{}); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

// Drain: in-flight queries are cancelled through their contexts, new
// requests are refused with 503, and Close is clean.
func TestDrainCancelsInFlight(t *testing.T) {
	srv, c := newTestServer(t, bigJoinServerDB(t, 3000), Config{})
	ctx := context.Background()

	slow := make(chan error, 1)
	go func() {
		_, err := c.ConsistentQuery(ctx, serverGrpJoin, hclient.QueryOpts{Timeout: 30 * time.Second})
		slow <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := c.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.InFlight == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slow query never became in-flight")
		}
		time.Sleep(5 * time.Millisecond)
	}

	srv.Drain()
	select {
	case err := <-slow:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("drained query err = %v, want canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drain did not cancel the in-flight query")
	}
	if _, err := c.Query(ctx, "SELECT * FROM a", hclient.QueryOpts{}); !errors.Is(err, hclient.ErrDraining) {
		t.Fatalf("post-drain err = %v, want ErrDraining", err)
	}
	if err := c.Health(ctx); !errors.Is(err, hclient.ErrDraining) {
		t.Fatalf("post-drain health = %v, want ErrDraining", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// A durable server checkpoints through the API and survives the final
// drain checkpoint; reopening the directory recovers the data.
func TestDurableServer(t *testing.T) {
	dir := t.TempDir()
	db, err := hippo.OpenOptions(hippo.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db, Config{})
	ts := httptest.NewServer(srv)
	c := hclient.New(ts.URL, ts.Client())
	ctx := context.Background()

	if _, _, err := c.Exec(ctx, "CREATE TABLE d (x INT)"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Exec(ctx, "INSERT INTO d VALUES (1), (2)"); err != nil {
		t.Fatal(err)
	}
	if err := c.Checkpoint(ctx); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	st, err := c.Stats(ctx)
	if err != nil || !st.Durable {
		t.Fatalf("stats durable=%v err=%v", st != nil && st.Durable, err)
	}
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Reopen: the served writes are durable.
	db2, err := hippo.OpenOptions(hippo.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	res, err := db2.Query("SELECT * FROM d")
	if err != nil || len(res.Rows) != 2 {
		t.Fatalf("recovered rows = %v err = %v", res, err)
	}
}

// Timeouts are clamped to MaxTimeout: a huge requested timeout still
// dies at the clamp.
func TestTimeoutClamp(t *testing.T) {
	_, c := newTestServer(t, bigJoinServerDB(t, 3000), Config{MaxTimeout: 50 * time.Millisecond})
	_, err := c.ConsistentQuery(context.Background(), serverGrpJoin,
		hclient.QueryOpts{Timeout: time.Hour})
	if !errors.Is(err, hclient.ErrDeadline) {
		t.Fatalf("err = %v, want deadline via clamp", err)
	}
}
