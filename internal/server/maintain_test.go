package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hippo"
	"hippo/internal/wal"
)

// brokenTmpSyncer fails checkpoint temporaries, leaving the WAL healthy
// but background checkpointing permanently degraded.
type brokenTmpSyncer struct{ under wal.Syncer }

var errServerBrokenDir = errors.New("checkpoint directory is broken")

func (f brokenTmpSyncer) Write(p []byte) (int, error) { return 0, errServerBrokenDir }
func (f brokenTmpSyncer) Sync() error                 { return errServerBrokenDir }
func (f brokenTmpSyncer) Close() error                { return f.under.Close() }

// TestMaintainDegradedHealthOverWire pins the ops-facing half of the
// maintenance plane: when background checkpointing fails, /health flips
// to "degraded" (with the parked error) and /v1/stats carries
// maintenance_error — both observable by a read-only prober that never
// issues a write — while queries keep serving.
func TestMaintainDegradedHealthOverWire(t *testing.T) {
	db, err := hippo.OpenOptions(hippo.Options{
		Dir: t.TempDir(), NoSync: true, CheckpointBytes: 1,
		WrapSyncer: func(name string, s wal.Syncer) wal.Syncer {
			if strings.HasSuffix(name, ".tmp") {
				return brokenTmpSyncer{under: s}
			}
			return s
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db, Config{})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})

	// The write commits; the background checkpoint it triggers fails.
	// hippo surfaces a parked failure from Exec as ErrCheckpoint — either
	// way the row is durable and the next failure re-parks within a poll
	// tick.
	if _, _, err := db.Exec("CREATE TABLE d (x INT)"); err != nil && !errors.Is(err, hippo.ErrCheckpoint) {
		t.Fatal(err)
	}
	if _, _, err := db.Exec("INSERT INTO d VALUES (1)"); err != nil && !errors.Is(err, hippo.ErrCheckpoint) {
		t.Fatal(err)
	}

	getJSON := func(path string) map[string]any {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return m
	}

	// Observe the degradation with reads only.
	deadline := time.Now().Add(10 * time.Second)
	for {
		h := getJSON("/health")
		if h["status"] == "degraded" {
			if msg, _ := h["maintenance"].(string); !strings.Contains(msg, "checkpoint directory is broken") {
				t.Fatalf("degraded health carries %q, want the parked error", msg)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/health never reported degraded: %v", h)
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := getJSON("/v1/stats")
	if msg, _ := st["maintenance_error"].(string); !strings.Contains(msg, "checkpoint directory is broken") {
		t.Fatalf("/v1/stats maintenance_error = %q, want the parked error", msg)
	}
	if _, ok := st["eager_folds"]; !ok {
		t.Fatal("/v1/stats missing eager_folds")
	}

	// Degraded, not down: queries still serve over the wire.
	resp, err := ts.Client().Post(ts.URL+"/v1/query", "application/json",
		strings.NewReader(`{"sql":"SELECT * FROM d"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query under degraded maintenance: HTTP %d", resp.StatusCode)
	}
}
