package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"hippo"
)

// Wire types. Every response is JSON; errors use the envelope
// {"error":{"code":"...","message":"..."}} with the code doubling as the
// HTTP-status selector (see writeErr).

type execRequest struct {
	SQL       string `json:"sql"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

type batchRequest struct {
	SQLs      []string `json:"sqls"`
	TimeoutMS int64    `json:"timeout_ms,omitempty"`
}

type queryRequest struct {
	SQL       string `json:"sql"`
	Session   string `json:"session,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
	// Materialized selects the materialized evaluation baseline for
	// consistent queries (ignored by /v1/query).
	Materialized bool `json:"materialized,omitempty"`
	// Tier constrains the tiered planner for consistent queries: ""/"auto"
	// (classifier decides), "prover" (pin certification), or
	// "require-rewrite" (error unless the rewrite tier serves it).
	Tier string `json:"tier,omitempty"`
}

type resultResponse struct {
	Columns []string  `json:"columns"`
	Rows    [][]any   `json:"rows"`
	Count   int       `json:"count"`
	Stats   *runStats `json:"stats,omitempty"`
}

// runStats is the wire subset of hippo.Stats a client acts on.
type runStats struct {
	Epoch      uint64 `json:"epoch"`
	Candidates int    `json:"candidates"`
	Answers    int    `json:"answers"`
	CacheHits  int64  `json:"cache_hits"`
	CacheMiss  int64  `json:"cache_misses"`
	Streamed   bool   `json:"streamed"`
	TotalUS    int64  `json:"total_us"`
	// Strategy is the planner tier that produced the answers
	// ("rewrite", "hybrid", or "prover"); TierFallback reports a
	// fast-tier run silently re-served by the prover.
	Strategy     string `json:"strategy,omitempty"`
	TierFallback bool   `json:"tier_fallback,omitempty"`
}

type execResponse struct {
	Count   int       `json:"count"`
	Columns []string  `json:"columns,omitempty"`
	Rows    [][]any   `json:"rows,omitempty"`
	Stats   *runStats `json:"stats,omitempty"`
}

type batchResponse struct {
	Counts []int `json:"counts"`
}

type sessionResponse struct {
	Session string `json:"session"`
	Epoch   uint64 `json:"epoch"`
}

type statsResponse struct {
	Epoch          uint64 `json:"epoch"`
	Sessions       int    `json:"sessions"`
	InFlight       int    `json:"in_flight"`
	MaxInFlight    int    `json:"max_in_flight"`
	Draining       bool   `json:"draining"`
	Durable        bool   `json:"durable"`
	WALBytes       int64  `json:"wal_bytes,omitempty"`
	Edges          int    `json:"edges"`
	ViewsPublished int64  `json:"views_published"`
	ViewsReclaimed int64  `json:"views_reclaimed"`
	SlabsReclaimed int64  `json:"slabs_reclaimed"`
	// Certification sharding (K=1 reports shards=1, no shard list).
	Shards        int         `json:"shards"`
	Migrations    int64       `json:"migrations,omitempty"`
	ShardReclaims int64       `json:"shard_reclaims,omitempty"`
	ShardSizes    []shardWire `json:"shard_sizes,omitempty"`
	// Lifetime counts of consistent queries answered per planner tier.
	TierRewrite   int64 `json:"tier_rewrite"`
	TierHybrid    int64 `json:"tier_hybrid"`
	TierProver    int64 `json:"tier_prover"`
	TierFallbacks int64 `json:"tier_fallbacks"`
	// Maintenance plane: background view publications, delta-queue
	// overflows, and the sticky maintenance error (empty when healthy;
	// /health reports "degraded" while it is set).
	EagerFolds       int64  `json:"eager_folds"`
	PendingOverflows int64  `json:"pending_overflows,omitempty"`
	MaintenanceError string `json:"maintenance_error,omitempty"`
	Version          string `json:"version"`
}

// shardWire is one certification shard's size on the wire.
type shardWire struct {
	Shard      int `json:"shard"`
	Edges      int `json:"edges"`
	Components int `json:"components"`
	Vertices   int `json:"vertices"`
}

type errBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type errResponse struct {
	Error errBody `json:"error"`
}

// Error codes on the wire; hclient maps them back to typed errors.
const (
	CodeOverloaded     = "overloaded"
	CodeDraining       = "draining"
	CodeDeadline       = "deadline_exceeded"
	CodeCanceled       = "canceled"
	CodeUnknownSession = "unknown_session"
	CodeBadRequest     = "bad_request"
	CodeSQL            = "sql_error"
	CodeUnsupported    = "unsupported"
	CodeInternal       = "internal"
)

func statusFor(code string) int {
	switch code {
	case CodeOverloaded:
		return http.StatusTooManyRequests
	case CodeDraining:
		return http.StatusServiceUnavailable
	case CodeDeadline:
		return http.StatusGatewayTimeout
	case CodeCanceled:
		// The client went away or gave up; 499 is the de-facto code.
		return 499
	case CodeUnknownSession:
		return http.StatusNotFound
	case CodeBadRequest, CodeSQL, CodeUnsupported:
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// codeFor classifies an error from the engine or the server itself.
func codeFor(err error) string {
	switch {
	case errors.Is(err, ErrOverloaded):
		return CodeOverloaded
	case errors.Is(err, ErrDraining):
		return CodeDraining
	case errors.Is(err, context.DeadlineExceeded):
		return CodeDeadline
	case errors.Is(err, context.Canceled):
		return CodeCanceled
	case errors.Is(err, hippo.ErrUnsupported):
		return CodeUnsupported
	default:
		return CodeSQL
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code string, err error) {
	writeJSON(w, statusFor(code), errResponse{Error: errBody{Code: code, Message: err.Error()}})
}

// decodeBody reads one JSON request body into v, bounding its size.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, 16<<20))
	if err := dec.Decode(v); err != nil {
		return err
	}
	return nil
}

// post wraps a handler with a method check (the Go 1.21 ServeMux has no
// method patterns).
func post(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeErr(w, CodeBadRequest, errors.New("POST required"))
			return
		}
		h(w, r)
	}
}

func get(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeErr(w, CodeBadRequest, errors.New("GET required"))
			return
		}
		h(w, r)
	}
}

func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/health", get(s.handleHealth))
	mux.HandleFunc("/v1/exec", post(s.handleExec))
	mux.HandleFunc("/v1/batch", post(s.handleBatch))
	mux.HandleFunc("/v1/query", post(s.handleQuery))
	mux.HandleFunc("/v1/consistent-query", post(s.handleConsistentQuery))
	mux.HandleFunc("/v1/stats", get(s.handleStats))
	mux.HandleFunc("/v1/checkpoint", post(s.handleCheckpoint))
	mux.HandleFunc("/v1/session", post(s.handleSessionCreate))
	mux.HandleFunc("/v1/session/release", post(s.handleSessionRelease))
	mux.HandleFunc("/v1/fd", post(s.handleAddFD))
	return mux
}

// handleAddFD registers a functional dependency ("rel: a,b -> c") so a
// fresh in-memory server can be configured entirely over the wire.
func (s *Server) handleAddFD(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Spec string `json:"spec"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, CodeBadRequest, err)
		return
	}
	if err := s.db.AddFDSpec(req.Spec); err != nil {
		writeErr(w, CodeBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeErr(w, CodeDraining, ErrDraining)
		return
	}
	// Degraded, not down: queries still serve, but background maintenance
	// (checkpointing or folding) is failing. Without this probe a
	// read-mostly deployment would never learn — the parked error is
	// otherwise only drained by a later write.
	if err := s.db.System().MaintenanceHealth(); err != nil {
		writeJSON(w, http.StatusOK, map[string]any{
			"status":      "degraded",
			"epoch":       s.db.System().Epoch(),
			"maintenance": err.Error(),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"epoch":  s.db.System().Epoch(),
	})
}

func (s *Server) handleExec(w http.ResponseWriter, r *http.Request) {
	var req execRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, CodeBadRequest, err)
		return
	}
	release, err := s.acquire()
	if err != nil {
		writeErr(w, codeFor(err), err)
		return
	}
	defer release()
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()

	res, n, err := s.db.ExecContext(ctx, req.SQL)
	if err != nil {
		writeErr(w, codeFor(err), err)
		return
	}
	resp := execResponse{Count: n}
	if res != nil {
		resp.Columns = res.Columns()
		resp.Rows = wireRows(res)
		resp.Count = len(res.Rows)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, CodeBadRequest, err)
		return
	}
	if len(req.SQLs) == 0 {
		writeErr(w, CodeBadRequest, errors.New("empty batch"))
		return
	}
	release, err := s.acquire()
	if err != nil {
		writeErr(w, codeFor(err), err)
		return
	}
	defer release()
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()

	counts, err := s.db.ExecBatchContext(ctx, req.SQLs...)
	if err != nil {
		writeErr(w, codeFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, batchResponse{Counts: counts})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, CodeBadRequest, err)
		return
	}
	release, err := s.acquire()
	if err != nil {
		writeErr(w, codeFor(err), err)
		return
	}
	defer release()
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()

	var res *hippo.Result
	if req.Session != "" {
		se, ok := s.lookupSession(req.Session)
		if !ok {
			writeErr(w, CodeUnknownSession, errors.New("unknown session "+req.Session))
			return
		}
		res, err = se.snap.Data().QueryContext(ctx, req.SQL)
	} else {
		res, err = s.db.QueryContext(ctx, req.SQL)
	}
	if err != nil {
		writeErr(w, codeFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, resultResponse{
		Columns: res.Columns(),
		Rows:    wireRows(res),
		Count:   len(res.Rows),
	})
}

func (s *Server) handleConsistentQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, CodeBadRequest, err)
		return
	}
	release, err := s.acquire()
	if err != nil {
		writeErr(w, codeFor(err), err)
		return
	}
	defer release()
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()

	var opts []hippo.Option
	if req.Materialized {
		opts = append(opts, hippo.WithMaterializedEvaluation())
	}
	switch req.Tier {
	case "", "auto":
	case "prover":
		opts = append(opts, hippo.WithProverTier())
	case "require-rewrite":
		opts = append(opts, hippo.WithRequireRewriteTier())
	default:
		writeErr(w, CodeBadRequest, errors.New("unknown tier "+req.Tier))
		return
	}
	var (
		res *hippo.Result
		st  *hippo.Stats
	)
	if req.Session != "" {
		se, ok := s.lookupSession(req.Session)
		if !ok {
			writeErr(w, CodeUnknownSession, errors.New("unknown session "+req.Session))
			return
		}
		res, st, err = s.db.ConsistentQueryAtContext(ctx, se.snap, req.SQL, opts...)
	} else {
		res, st, err = s.db.ConsistentQueryContext(ctx, req.SQL, opts...)
	}
	if err != nil {
		writeErr(w, codeFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, resultResponse{
		Columns: res.Columns(),
		Rows:    wireRows(res),
		Count:   len(res.Rows),
		Stats:   wireStats(st),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	sys := s.db.System()
	m := sys.Maintenance()
	resp := statsResponse{
		Epoch:            sys.Epoch(),
		Sessions:         s.sessionCount(),
		InFlight:         len(s.sem),
		MaxInFlight:      cap(s.sem),
		Draining:         s.draining.Load(),
		Durable:          sys.Durable(),
		Edges:            sys.GraphStats().Edges,
		ViewsPublished:   m.ViewsPublished,
		ViewsReclaimed:   m.ViewsReclaimed,
		SlabsReclaimed:   m.SlabsReclaimed,
		Shards:           sys.Shards(),
		Migrations:       m.Migrations,
		ShardReclaims:    m.ShardReclaims,
		EagerFolds:       m.EagerFolds,
		PendingOverflows: m.PendingOverflows,
		Version:          hippo.Version,
	}
	if err := sys.MaintenanceHealth(); err != nil {
		resp.MaintenanceError = err.Error()
	}
	tc := s.db.TierCounts()
	resp.TierRewrite, resp.TierHybrid = tc.Rewrite, tc.Hybrid
	resp.TierProver, resp.TierFallbacks = tc.Prover, tc.Fallbacks
	if resp.Shards > 1 {
		for _, si := range sys.ShardStats() {
			resp.ShardSizes = append(resp.ShardSizes, shardWire{
				Shard:      si.Shard,
				Edges:      si.Edges,
				Components: si.Components,
				Vertices:   si.Vertices,
			})
		}
	}
	if resp.Durable {
		resp.WALBytes = sys.WALBytes()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if !s.db.System().Durable() {
		writeErr(w, CodeBadRequest, errors.New("checkpoint requires a durable database"))
		return
	}
	if err := s.db.Checkpoint(); err != nil {
		writeErr(w, CodeInternal, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeErr(w, CodeDraining, ErrDraining)
		return
	}
	id, se, err := s.newSession()
	if err != nil {
		writeErr(w, codeFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, sessionResponse{Session: id, Epoch: se.snap.Epoch()})
}

func (s *Server) handleSessionRelease(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Session string `json:"session"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, CodeBadRequest, err)
		return
	}
	if !s.releaseSession(req.Session) {
		writeErr(w, CodeUnknownSession, errors.New("unknown session "+req.Session))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

// wireRows converts engine tuples to JSON-marshalable rows.
func wireRows(res *hippo.Result) [][]any {
	rows := make([][]any, len(res.Rows))
	for i, t := range res.Rows {
		row := make([]any, len(t))
		for j, v := range t {
			row[j] = v.Go()
		}
		rows[i] = row
	}
	return rows
}

func wireStats(st *hippo.Stats) *runStats {
	if st == nil {
		return nil
	}
	return &runStats{
		Epoch:        st.Epoch,
		Candidates:   st.Candidates,
		Answers:      st.Answers,
		CacheHits:    st.CacheHits,
		CacheMiss:    st.CacheMisses,
		Streamed:     st.Streamed,
		TotalUS:      st.Total.Microseconds(),
		Strategy:     st.Strategy,
		TierFallback: st.TierFallback,
	}
}
