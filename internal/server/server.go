// Package server is the hippod serving tier: a concurrent HTTP/JSON
// front end over a hippo.DB. It adds what the embedded API leaves to the
// caller — connection admission control, per-query deadlines, client-
// disconnect cancellation, session-scoped snapshot pinning, and a
// graceful drain — while delegating all query semantics to the engine.
//
// The server is an http.Handler; cmd/hippod mounts it on an http.Server
// and drives the drain sequence on SIGTERM. Every query path runs under
// a context derived from the incoming request, so the engine's
// cancellation contract (bounded rows past a deadline on both streamed
// and materialized evaluation) is the server's latency contract too.
package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"hippo"
)

// ErrOverloaded is returned (as HTTP 429) when the in-flight query bound
// is reached: admission control sheds load instead of queueing without
// bound. Clients should back off and retry.
var ErrOverloaded = errors.New("server: too many in-flight queries")

// ErrDraining is returned (as HTTP 503) once shutdown has begun: the
// server finishes nothing new, cancels what runs, and exits.
var ErrDraining = errors.New("server: draining")

// Config tunes a Server. The zero value of every field selects a
// sensible default.
type Config struct {
	// MaxInFlight bounds concurrently executing query/exec requests;
	// excess requests fail fast with ErrOverloaded rather than queue.
	// Default 64.
	MaxInFlight int
	// DefaultTimeout applies to requests that set no timeout_ms.
	// Default 30s.
	DefaultTimeout time.Duration
	// MaxTimeout clamps client-requested timeouts. Default 5m.
	MaxTimeout time.Duration
	// SessionIdle is how long an unused session survives before the
	// reaper releases its snapshot. Default 5m.
	SessionIdle time.Duration
	// Logf, when set, receives one line per notable server event.
	Logf func(format string, args ...any)
}

func (c *Config) fill() {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.SessionIdle <= 0 {
		c.SessionIdle = 5 * time.Minute
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// session is one pinned snapshot with an idle clock. lastUsed is atomic
// (unix nanos) so query handlers can touch it without the session lock.
type session struct {
	snap     *hippo.Snap
	lastUsed atomic.Int64
}

// Server serves a hippo.DB over HTTP. Create with New, mount as an
// http.Handler, stop with Drain then Close.
type Server struct {
	db  *hippo.DB
	cfg Config
	mux *http.ServeMux

	// sem is the admission semaphore: a slot per allowed in-flight
	// query, acquired non-blocking so overload fails fast.
	sem chan struct{}

	// baseCtx is cancelled by Drain; every request context is linked to
	// it so in-flight queries die when shutdown begins.
	baseCtx   context.Context
	cancelAll context.CancelFunc
	draining  atomic.Bool

	mu       sync.Mutex
	sessions map[string]*session
	closed   bool

	reaperStop chan struct{}
	reaperDone chan struct{}
}

// New builds a Server over db and starts its session reaper. The caller
// keeps ownership of db until Close, which closes it.
func New(db *hippo.DB, cfg Config) *Server {
	cfg.fill()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		db:         db,
		cfg:        cfg,
		sem:        make(chan struct{}, cfg.MaxInFlight),
		baseCtx:    ctx,
		cancelAll:  cancel,
		sessions:   make(map[string]*session),
		reaperStop: make(chan struct{}),
		reaperDone: make(chan struct{}),
	}
	s.mux = s.routes()
	go s.reapLoop()
	return s
}

// ServeHTTP dispatches to the API routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Drain begins shutdown: new requests are refused with ErrDraining and
// every in-flight query's context is cancelled. It does not wait;
// callers then Shutdown the http.Server (which waits for handlers to
// unwind) and finally Close the Server.
func (s *Server) Drain() {
	if s.draining.CompareAndSwap(false, true) {
		s.cfg.Logf("drain: refusing new requests, cancelling in-flight queries")
		s.cancelAll()
	}
}

// Close releases everything Drain left: the session reaper, all pinned
// session snapshots, a final checkpoint (durable databases only), and
// the database itself. Close is idempotent.
func (s *Server) Close() error {
	s.Drain()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for id, se := range s.sessions {
		se.snap.Close()
		delete(s.sessions, id)
	}
	s.mu.Unlock()

	close(s.reaperStop)
	<-s.reaperDone

	var err error
	if s.db.System().Durable() {
		if cerr := s.db.Checkpoint(); cerr != nil {
			err = fmt.Errorf("final checkpoint: %w", cerr)
			s.cfg.Logf("close: %v", err)
		}
	}
	if cerr := s.db.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// acquire takes an admission slot, failing fast when the server is
// draining or saturated. The returned release must be called once.
func (s *Server) acquire() (release func(), err error) {
	if s.draining.Load() {
		return nil, ErrDraining
	}
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, nil
	default:
		return nil, ErrOverloaded
	}
}

// requestCtx derives the execution context for one query: cancelled by
// client disconnect (r.Context), by Drain (baseCtx), and by the
// effective timeout — the request's timeout_ms clamped to MaxTimeout,
// or DefaultTimeout when absent.
func (s *Server) requestCtx(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	timeout := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		timeout = time.Duration(timeoutMS) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	stop := context.AfterFunc(s.baseCtx, cancel)
	return ctx, func() { stop(); cancel() }
}

// newSession pins the current query view under a fresh opaque id.
func (s *Server) newSession() (string, *session, error) {
	snap, err := s.db.Snapshot()
	if err != nil {
		return "", nil, err
	}
	var buf [16]byte
	if _, err := rand.Read(buf[:]); err != nil {
		snap.Close()
		return "", nil, err
	}
	id := hex.EncodeToString(buf[:])
	se := &session{snap: snap}
	se.lastUsed.Store(time.Now().UnixNano())

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		snap.Close()
		return "", nil, ErrDraining
	}
	s.sessions[id] = se
	return id, se, nil
}

// lookupSession returns the session and touches its idle clock.
func (s *Server) lookupSession(id string) (*session, bool) {
	s.mu.Lock()
	se, ok := s.sessions[id]
	s.mu.Unlock()
	if ok {
		se.lastUsed.Store(time.Now().UnixNano())
	}
	return se, ok
}

// releaseSession unpins and forgets a session. Reports whether the id
// existed.
func (s *Server) releaseSession(id string) bool {
	s.mu.Lock()
	se, ok := s.sessions[id]
	delete(s.sessions, id)
	s.mu.Unlock()
	if ok {
		se.snap.Close()
	}
	return ok
}

// sessionCount returns the number of live sessions.
func (s *Server) sessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// reapLoop releases sessions idle past SessionIdle. Closing a snapshot
// out from under a query that still holds the *session is safe: the
// pinned view's data is immutable and reachable until the query drops
// it; only the reclamation accounting moves.
func (s *Server) reapLoop() {
	defer close(s.reaperDone)
	tick := s.cfg.SessionIdle / 4
	if tick < 100*time.Millisecond {
		tick = 100 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-s.reaperStop:
			return
		case now := <-t.C:
			cutoff := now.Add(-s.cfg.SessionIdle).UnixNano()
			var doomed []*session
			s.mu.Lock()
			for id, se := range s.sessions {
				if se.lastUsed.Load() < cutoff {
					doomed = append(doomed, se)
					delete(s.sessions, id)
				}
			}
			s.mu.Unlock()
			for _, se := range doomed {
				se.snap.Close()
			}
			if len(doomed) > 0 {
				s.cfg.Logf("reaper: released %d idle sessions", len(doomed))
			}
		}
	}
}
