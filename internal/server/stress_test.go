package server

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"hippo"
	"hippo/internal/hclient"
)

// stressModel mirrors internal/core's stress harness over the wire: a
// deterministic update sequence on log(gid, val) under FD gid -> val,
// with the legal answer serializations of every prefix precomputed —
// one map for consistent answers (singleton gid groups) and one for
// plain-query answers (all live rows).
type serverStressStep struct {
	insert   bool
	gid, val int
}

func serverStressScript(steps int) (script []serverStressStep, legalCQ, legalPlain map[string]bool) {
	live := map[int][2]int{}
	next := 0
	legalCQ = map[string]bool{}
	legalPlain = map[string]bool{}
	snap := func() {
		count := map[int]int{}
		for _, r := range live {
			count[r[0]]++
		}
		var cq, plain []string
		for _, r := range live {
			row := fmt.Sprintf("(%d, %d)", r[0], r[1])
			plain = append(plain, row)
			if count[r[0]] == 1 {
				cq = append(cq, row)
			}
		}
		sortStrings(cq)
		sortStrings(plain)
		legalCQ[joinSpace(cq)] = true
		legalPlain[joinSpace(plain)] = true
	}
	snap()
	for i := 0; i < steps; i++ {
		var st serverStressStep
		if i%7 == 6 && len(live) > 0 {
			oldest := -1
			for k := range live {
				if oldest < 0 || k < oldest {
					oldest = k
				}
			}
			r := live[oldest]
			st = serverStressStep{insert: false, gid: r[0], val: r[1]}
			delete(live, oldest)
		} else {
			st = serverStressStep{insert: true, gid: i / 3, val: next}
			live[next] = [2]int{st.gid, st.val}
			next++
		}
		script = append(script, st)
		snap()
	}
	return script, legalCQ, legalPlain
}

func joinSpace(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += " "
		}
		out += p
	}
	return out
}

// TestServerStressPrefixConsistency hammers the serving tier with
// concurrent HTTP clients — consistent queries (both evaluation paths),
// plain queries, and session-pinned reads — racing one writer applying
// a deterministic update sequence through exec and batch. Every
// response must match a prefix of the update sequence, epochs are
// monotone per reader, the drain leaves nothing running, and the
// process returns to its goroutine baseline. Run under -race in CI.
func TestServerStressPrefixConsistency(t *testing.T) {
	const steps = 160
	script, legalCQ, legalPlain := serverStressScript(steps)

	// Goroutine baseline before any server machinery exists.
	runtime.GC()
	baseline := runtime.NumGoroutine()

	db := hippo.Open()
	if _, _, err := db.Exec("CREATE TABLE log (gid INT, val INT)"); err != nil {
		t.Fatal(err)
	}
	if err := db.AddFD("log", []string{"gid"}, []string{"val"}); err != nil {
		t.Fatal(err)
	}
	srv := New(db, Config{MaxInFlight: 128})
	ts := httptest.NewServer(srv)
	c := hclient.New(ts.URL, ts.Client())
	ctx := context.Background()

	done := make(chan struct{})
	var wg sync.WaitGroup

	// Writer: the scripted statements in order, alternating the exec and
	// batch paths (a batch is atomic, so prefix legality is preserved:
	// readers see all of it or none of it).
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		stmt := func(st serverStressStep) string {
			if st.insert {
				return fmt.Sprintf("INSERT INTO log VALUES (%d, %d)", st.gid, st.val)
			}
			return fmt.Sprintf("DELETE FROM log WHERE gid = %d AND val = %d", st.gid, st.val)
		}
		for i := 0; i < len(script); i++ {
			// Every 11th step, ship two consecutive statements as one
			// atomic batch. Its intermediate state is never visible, so
			// both the pre- and post-batch prefixes stay legal.
			if i%11 == 10 && i+1 < len(script) {
				if _, err := c.Batch(ctx, stmt(script[i]), stmt(script[i+1])); err != nil {
					t.Errorf("writer batch: %v", err)
					return
				}
				i++
				continue
			}
			if _, _, err := c.Exec(ctx, stmt(script[i])); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
		}
	}()

	// Consistent-query readers, alternating streamed and materialized.
	const cqReaders = 4
	for r := 0; r < cqReaders; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			lastEpoch := uint64(0)
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				res, err := c.ConsistentQuery(ctx, "SELECT * FROM log",
					hclient.QueryOpts{Materialized: r%2 == 1, Timeout: 30 * time.Second})
				if err != nil {
					t.Errorf("cq reader %d: %v", r, err)
					return
				}
				if key := wireKey(res.Rows); !legalCQ[key] {
					t.Errorf("cq reader %d: answers %q match no prefix", r, key)
					return
				}
				if res.Stats.Epoch < lastEpoch {
					t.Errorf("cq reader %d: epoch went backwards (%d after %d)", r, res.Stats.Epoch, lastEpoch)
					return
				}
				lastEpoch = res.Stats.Epoch
			}
		}(r)
	}

	// Plain-query readers: the raw rows must also match a prefix (batch
	// atomicity holds on this path too).
	const plainReaders = 2
	for r := 0; r < plainReaders; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				res, err := c.Query(ctx, "SELECT * FROM log", hclient.QueryOpts{})
				if err != nil {
					t.Errorf("plain reader %d: %v", r, err)
					return
				}
				if key := wireKey(res.Rows); !legalPlain[key] {
					t.Errorf("plain reader %d: rows %q match no prefix", r, key)
					return
				}
			}
		}(r)
	}

	// Session reader: create, read the pinned view repeatedly (it must
	// not drift and must be a legal prefix), release.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			id, _, err := c.NewSession(ctx)
			if err != nil {
				t.Errorf("session create: %v", err)
				return
			}
			var first string
			for i := 0; i < 3; i++ {
				res, err := c.ConsistentQuery(ctx, "SELECT * FROM log", hclient.QueryOpts{Session: id})
				if err != nil {
					t.Errorf("session query: %v", err)
					c.ReleaseSession(ctx, id)
					return
				}
				key := wireKey(res.Rows)
				if i == 0 {
					first = key
					if !legalCQ[key] {
						t.Errorf("session answers %q match no prefix", key)
						c.ReleaseSession(ctx, id)
						return
					}
				} else if key != first {
					t.Errorf("session view drifted: %q vs %q", key, first)
					c.ReleaseSession(ctx, id)
					return
				}
			}
			if err := c.ReleaseSession(ctx, id); err != nil {
				t.Errorf("session release: %v", err)
				return
			}
		}
	}()

	wg.Wait()

	// The final state is the full sequence.
	res, err := c.ConsistentQuery(ctx, "SELECT * FROM log", hclient.QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if key := wireKey(res.Rows); !legalCQ[key] {
		t.Fatalf("final answers %q match no prefix", key)
	}

	// Drain and tear everything down, then verify no goroutine leaked:
	// handlers, the reaper, and the HTTP stack must all unwind.
	srv.Drain()
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines leaked after drain: %d > baseline %d\n%s", n, baseline, buf)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// After Close, session creation and queries fail cleanly rather than
// pinning snapshots on a closed system.
func TestNoNewSessionsAfterClose(t *testing.T) {
	db := hippo.Open()
	if _, _, err := db.Exec("CREATE TABLE t (x INT)"); err != nil {
		t.Fatal(err)
	}
	srv := New(db, Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := hclient.New(ts.URL, ts.Client())
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.NewSession(context.Background()); !errors.Is(err, hclient.ErrDraining) {
		t.Fatalf("post-close session err = %v, want draining", err)
	}
}
