package value

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull:  "NULL",
		KindInt:   "INT",
		KindFloat: "FLOAT",
		KindText:  "TEXT",
		KindBool:  "BOOL",
		Kind(99):  "Kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestConstructorsAndPredicates(t *testing.T) {
	if !Null().IsNull() {
		t.Error("Null() should be null")
	}
	if Int(3).IsNull() || Text("x").IsNull() {
		t.Error("non-null values reported null")
	}
	if !Int(1).IsNumeric() || !Float(1).IsNumeric() {
		t.Error("numeric kinds not numeric")
	}
	if Text("1").IsNumeric() || Bool(true).IsNumeric() {
		t.Error("non-numeric kinds reported numeric")
	}
	if Int(7).AsFloat() != 7.0 {
		t.Error("Int.AsFloat wrong")
	}
	if Float(2.5).AsFloat() != 2.5 {
		t.Error("Float.AsFloat wrong")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{Int(-42), "-42"},
		{Float(1.5), "1.5"},
		{Text("a'b"), "'a''b'"},
		{Bool(true), "TRUE"},
		{Bool(false), "FALSE"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestGoRoundTrip(t *testing.T) {
	ins := []any{nil, int(1), int8(2), int16(3), int32(4), int64(5),
		uint8(6), uint16(7), uint32(8), float32(1.5), float64(2.5),
		"hi", true, []byte("bytes")}
	for _, in := range ins {
		v, err := FromGo(in)
		if err != nil {
			t.Fatalf("FromGo(%v): %v", in, err)
		}
		if in == nil && v.Go() != nil {
			t.Errorf("nil round trip gave %v", v.Go())
		}
	}
	if _, err := FromGo(struct{}{}); err == nil {
		t.Error("FromGo(struct{}{}) should fail")
	}
	v, err := FromGo(Int(9))
	if err != nil || v != Int(9) {
		t.Errorf("FromGo(Value) = %v, %v", v, err)
	}
	if got := Int(5).Go(); got != int64(5) {
		t.Errorf("Int.Go() = %v", got)
	}
	if got := Text("s").Go(); got != "s" {
		t.Errorf("Text.Go() = %v", got)
	}
	if got := Bool(true).Go(); got != true {
		t.Errorf("Bool.Go() = %v", got)
	}
	if got := Float(1.25).Go(); got != 1.25 {
		t.Errorf("Float.Go() = %v", got)
	}
}

func TestCompareBasics(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Null(), Null(), 0},
		{Null(), Int(0), -1},
		{Int(0), Null(), 1},
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Int(1), Float(1.0), 0},
		{Float(0.5), Int(1), -1},
		{Float(2.5), Float(2.5), 0},
		{Text("a"), Text("b"), -1},
		{Text("b"), Text("b"), 0},
		{Bool(false), Bool(true), -1},
		{Bool(true), Bool(true), 0},
		{Int(1), Text("1"), -1}, // ordered by kind tag
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if !Equal(Int(1), Float(1)) {
		t.Error("Int(1) should Equal Float(1)")
	}
	if Equal(Int(1), Int(2)) {
		t.Error("Int(1) should not Equal Int(2)")
	}
}

func TestComparable(t *testing.T) {
	if !Comparable(KindInt, KindFloat) || !Comparable(KindText, KindText) {
		t.Error("expected comparable")
	}
	if Comparable(KindText, KindInt) || Comparable(KindBool, KindInt) {
		t.Error("expected not comparable")
	}
}

func TestCoerce(t *testing.T) {
	v, err := Coerce(Int(3), KindFloat)
	if err != nil || v != Float(3) {
		t.Errorf("Coerce int->float: %v, %v", v, err)
	}
	v, err = Coerce(Float(4), KindInt)
	if err != nil || v != Int(4) {
		t.Errorf("Coerce float->int: %v, %v", v, err)
	}
	if _, err = Coerce(Float(4.5), KindInt); err == nil {
		t.Error("lossy float->int coercion should fail")
	}
	if _, err = Coerce(Text("x"), KindInt); err == nil {
		t.Error("text->int coercion should fail")
	}
	v, err = Coerce(Null(), KindInt)
	if err != nil || !v.IsNull() {
		t.Errorf("Coerce null: %v, %v", v, err)
	}
	v, err = Coerce(Int(5), KindInt)
	if err != nil || v != Int(5) {
		t.Errorf("Coerce identity: %v, %v", v, err)
	}
}

// quick-check generator: derive a Value from arbitrary raw inputs.
func valueFrom(kind uint8, i int64, f float64, s string, b bool) Value {
	switch kind % 5 {
	case 0:
		return Null()
	case 1:
		return Int(i)
	case 2:
		if math.IsNaN(f) {
			f = 0
		}
		return Float(f)
	case 3:
		return Text(s)
	default:
		return Bool(b)
	}
}

func TestCompareIsTotalOrderProperty(t *testing.T) {
	// Antisymmetry: Compare(a,b) == -Compare(b,a).
	anti := func(k1 uint8, i1 int64, f1 float64, s1 string, b1 bool,
		k2 uint8, i2 int64, f2 float64, s2 string, b2 bool) bool {
		a := valueFrom(k1, i1, f1, s1, b1)
		b := valueFrom(k2, i2, f2, s2, b2)
		return Compare(a, b) == -Compare(b, a)
	}
	if err := quick.Check(anti, nil); err != nil {
		t.Error(err)
	}
	// Reflexivity.
	refl := func(k uint8, i int64, f float64, s string, b bool) bool {
		v := valueFrom(k, i, f, s, b)
		return Compare(v, v) == 0
	}
	if err := quick.Check(refl, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareTransitivityProperty(t *testing.T) {
	tr := func(k1 uint8, i1 int64, k2 uint8, i2 int64, k3 uint8, i3 int64) bool {
		a := valueFrom(k1, i1, float64(i1), "", false)
		b := valueFrom(k2, i2, float64(i2), "", false)
		c := valueFrom(k3, i3, float64(i3), "", false)
		vs := []Value{a, b, c}
		sort.Slice(vs, func(x, y int) bool { return Compare(vs[x], vs[y]) < 0 })
		return Compare(vs[0], vs[1]) <= 0 && Compare(vs[1], vs[2]) <= 0 && Compare(vs[0], vs[2]) <= 0
	}
	if err := quick.Check(tr, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyAgreesWithEqualProperty(t *testing.T) {
	prop := func(k1 uint8, i1 int64, f1 float64, s1 string, b1 bool,
		k2 uint8, i2 int64, f2 float64, s2 string, b2 bool) bool {
		a := valueFrom(k1, i1, f1, s1, b1)
		b := valueFrom(k2, i2, f2, s2, b2)
		ka := Tuple{a}.Key()
		kb := Tuple{b}.Key()
		if Equal(a, b) {
			return ka == kb
		}
		return ka != kb
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
