package value

import (
	"encoding/binary"
	"math"
	"strings"
)

// Tuple is a row of values. Tuples are compared and hashed positionally.
type Tuple []Value

// Clone returns a copy of t that shares no storage with it.
func (t Tuple) Clone() Tuple {
	if t == nil {
		return nil
	}
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// CompareTuples orders a against b lexicographically, with shorter tuples
// sorting first on ties.
func CompareTuples(a, b Tuple) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

// TuplesEqual reports whether a and b have the same length and all
// positions compare equal.
func TuplesEqual(a, b Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	return CompareTuples(a, b) == 0
}

// Key encodes the tuple into a string usable as a map key. The encoding is
// injective over tuples of equal layout and normalizes INT/FLOAT so that
// numerically equal values share a key (matching Compare semantics).
func (t Tuple) Key() string {
	var b strings.Builder
	b.Grow(len(t) * 12)
	for _, v := range t {
		appendValueKey(&b, v)
	}
	return b.String()
}

// KeyOf encodes the projection of t onto the given column positions.
func KeyOf(t Tuple, cols []int) string {
	var b strings.Builder
	b.Grow(len(cols) * 12)
	for _, c := range cols {
		appendValueKey(&b, t[c])
	}
	return b.String()
}

func appendValueKey(b *strings.Builder, v Value) {
	var buf [9]byte
	switch v.K {
	case KindNull:
		b.WriteByte('n')
	case KindInt:
		// Encode ints as floats when they are exactly representable so that
		// Int(1) and Float(1) share a key, mirroring Compare. Large ints
		// that would lose precision keep a distinct integer encoding.
		f := float64(v.I)
		if int64(f) == v.I {
			buf[0] = 'f'
			binary.BigEndian.PutUint64(buf[1:], math.Float64bits(f))
		} else {
			buf[0] = 'i'
			binary.BigEndian.PutUint64(buf[1:], uint64(v.I))
		}
		b.Write(buf[:])
	case KindFloat:
		f := v.F
		if f == 0 {
			f = 0 // normalize -0.0 so it shares a key with +0.0
		}
		buf[0] = 'f'
		binary.BigEndian.PutUint64(buf[1:], math.Float64bits(f))
		b.Write(buf[:])
	case KindText:
		b.WriteByte('t')
		binary.BigEndian.PutUint64(buf[1:], uint64(len(v.S)))
		b.Write(buf[1:])
		b.WriteString(v.S)
	case KindBool:
		if v.B {
			b.WriteString("b1")
		} else {
			b.WriteString("b0")
		}
	}
}

// Concat returns the concatenation of a and b as a fresh tuple.
func Concat(a, b Tuple) Tuple {
	out := make(Tuple, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	return out
}

// Project returns the sub-tuple of t at the given positions.
func Project(t Tuple, cols []int) Tuple {
	out := make(Tuple, len(cols))
	for i, c := range cols {
		out[i] = t[c]
	}
	return out
}

// TupleString renders t as a parenthesized SQL-style row literal.
func TupleString(t Tuple) string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}
