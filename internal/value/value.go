// Package value implements the typed scalar values manipulated by the
// embedded relational engine and the Hippo consistent-query-answering
// pipeline: NULL, 64-bit integers, 64-bit floats, text, and booleans.
//
// Values are small comparable structs (no interface boxing) so they can be
// used directly as map keys and stored densely in row slices. Comparison
// follows SQL-ish semantics with numeric coercion between INT and FLOAT;
// NULL ordering is total (NULL sorts first) so that values can be used in
// deterministic sorts and set operations, while three-valued logic for
// predicates is handled one level up in the expression evaluator.
package value

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the runtime type of a Value.
type Kind uint8

// The supported value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindText
	KindBool
)

// String returns the SQL-facing name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindText:
		return "TEXT"
	case KindBool:
		return "BOOL"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a single typed scalar. The zero Value is NULL.
//
// Only the field matching K is meaningful; the others stay at their zero
// values, which keeps Value comparable with == and usable as a map key.
type Value struct {
	K Kind
	I int64
	F float64
	S string
	B bool
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int returns an INT value.
func Int(i int64) Value { return Value{K: KindInt, I: i} }

// Float returns a FLOAT value.
func Float(f float64) Value { return Value{K: KindFloat, F: f} }

// Text returns a TEXT value.
func Text(s string) Value { return Value{K: KindText, S: s} }

// Bool returns a BOOL value.
func Bool(b bool) Value { return Value{K: KindBool, B: b} }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// IsNumeric reports whether v is INT or FLOAT.
func (v Value) IsNumeric() bool { return v.K == KindInt || v.K == KindFloat }

// AsFloat returns the numeric value of v as a float64. It is only valid for
// numeric kinds.
func (v Value) AsFloat() float64 {
	if v.K == KindInt {
		return float64(v.I)
	}
	return v.F
}

// String renders the value in SQL literal style.
func (v Value) String() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindText:
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	case KindBool:
		if v.B {
			return "TRUE"
		}
		return "FALSE"
	default:
		return fmt.Sprintf("Value(%d)", uint8(v.K))
	}
}

// Go returns the value as a native Go value (nil, int64, float64, string, or
// bool), which is the representation used by the database/sql driver.
func (v Value) Go() any {
	switch v.K {
	case KindInt:
		return v.I
	case KindFloat:
		return v.F
	case KindText:
		return v.S
	case KindBool:
		return v.B
	default:
		return nil
	}
}

// FromGo converts a native Go value into a Value. Integer and float types of
// any width are widened; unsupported types yield an error.
func FromGo(x any) (Value, error) {
	switch t := x.(type) {
	case nil:
		return Null(), nil
	case int:
		return Int(int64(t)), nil
	case int8:
		return Int(int64(t)), nil
	case int16:
		return Int(int64(t)), nil
	case int32:
		return Int(int64(t)), nil
	case int64:
		return Int(t), nil
	case uint8:
		return Int(int64(t)), nil
	case uint16:
		return Int(int64(t)), nil
	case uint32:
		return Int(int64(t)), nil
	case float32:
		return Float(float64(t)), nil
	case float64:
		return Float(t), nil
	case string:
		return Text(t), nil
	case bool:
		return Bool(t), nil
	case []byte:
		return Text(string(t)), nil
	case Value:
		return t, nil
	default:
		return Null(), fmt.Errorf("value: unsupported Go type %T", x)
	}
}

// Comparable reports whether values of kinds a and b can be ordered against
// each other: identical kinds, or any two numeric kinds.
func Comparable(a, b Kind) bool {
	if a == b {
		return true
	}
	numeric := func(k Kind) bool { return k == KindInt || k == KindFloat }
	return numeric(a) && numeric(b)
}

// Compare orders a against b, returning -1, 0, or +1. NULL sorts before
// everything; mixed INT/FLOAT comparisons coerce to float64; otherwise
// values of different kinds are ordered by kind tag. This is a total order
// intended for sorting and set semantics — SQL three-valued comparison
// semantics live in the expression evaluator.
func Compare(a, b Value) int {
	if a.K == KindNull || b.K == KindNull {
		switch {
		case a.K == b.K:
			return 0
		case a.K == KindNull:
			return -1
		default:
			return 1
		}
	}
	if a.IsNumeric() && b.IsNumeric() {
		if a.K == KindInt && b.K == KindInt {
			switch {
			case a.I < b.I:
				return -1
			case a.I > b.I:
				return 1
			default:
				return 0
			}
		}
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	if a.K != b.K {
		if a.K < b.K {
			return -1
		}
		return 1
	}
	switch a.K {
	case KindText:
		return strings.Compare(a.S, b.S)
	case KindBool:
		switch {
		case a.B == b.B:
			return 0
		case !a.B:
			return -1
		default:
			return 1
		}
	default:
		return 0
	}
}

// Equal reports whether a and b compare equal under Compare. Note that
// Int(1) and Float(1.0) are Equal even though a == b on the structs is
// false.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Coerce converts v to the requested kind if a lossless or conventional SQL
// conversion exists (INT↔FLOAT, anything from NULL stays NULL, TEXT parsing
// is not attempted). It returns an error for incompatible conversions.
func Coerce(v Value, k Kind) (Value, error) {
	if v.K == k || v.K == KindNull {
		return v, nil
	}
	switch {
	case v.K == KindInt && k == KindFloat:
		return Float(float64(v.I)), nil
	case v.K == KindFloat && k == KindInt:
		if v.F == math.Trunc(v.F) && v.F >= math.MinInt64 && v.F <= math.MaxInt64 {
			return Int(int64(v.F)), nil
		}
		return Value{}, fmt.Errorf("value: cannot coerce %s to INT without loss", v)
	default:
		return Value{}, fmt.Errorf("value: cannot coerce %s (%s) to %s", v, v.K, k)
	}
}
