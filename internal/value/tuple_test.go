package value

import (
	"testing"
	"testing/quick"
)

func TestTupleClone(t *testing.T) {
	var nilT Tuple
	if nilT.Clone() != nil {
		t.Error("nil clone should be nil")
	}
	orig := Tuple{Int(1), Text("a")}
	c := orig.Clone()
	c[0] = Int(2)
	if orig[0] != Int(1) {
		t.Error("clone shares storage")
	}
}

func TestCompareTuples(t *testing.T) {
	cases := []struct {
		a, b Tuple
		want int
	}{
		{Tuple{}, Tuple{}, 0},
		{Tuple{Int(1)}, Tuple{Int(1)}, 0},
		{Tuple{Int(1)}, Tuple{Int(2)}, -1},
		{Tuple{Int(2)}, Tuple{Int(1)}, 1},
		{Tuple{Int(1)}, Tuple{Int(1), Int(0)}, -1},
		{Tuple{Int(1), Int(0)}, Tuple{Int(1)}, 1},
		{Tuple{Text("a"), Int(2)}, Tuple{Text("a"), Int(3)}, -1},
	}
	for _, c := range cases {
		if got := CompareTuples(c.a, c.b); got != c.want {
			t.Errorf("CompareTuples(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if !TuplesEqual(Tuple{Int(1), Float(1)}, Tuple{Float(1), Int(1)}) {
		t.Error("numeric-coerced tuples should be equal")
	}
	if TuplesEqual(Tuple{Int(1)}, Tuple{Int(1), Int(1)}) {
		t.Error("different lengths should not be equal")
	}
}

func TestTupleKeyInjective(t *testing.T) {
	// Tuples that must have distinct keys.
	distinct := []Tuple{
		{},
		{Null()},
		{Int(0)},
		{Int(1)},
		{Text("")},
		{Text("0")},
		{Bool(false)},
		{Bool(true)},
		{Text("a"), Text("b")},
		{Text("ab"), Text("")},
		{Text("a"), Text(""), Text("b")},
		{Null(), Null()},
	}
	seen := map[string]Tuple{}
	for _, tp := range distinct {
		k := tp.Key()
		if prev, ok := seen[k]; ok {
			t.Errorf("key collision between %v and %v", prev, tp)
		}
		seen[k] = tp
	}
	// Numerically equal must collide.
	if (Tuple{Int(1)}).Key() != (Tuple{Float(1)}).Key() {
		t.Error("Int(1) and Float(1) should share a key")
	}
	if (Tuple{Float(0)}).Key() != (Tuple{Float(-0.0 * 1)}).Key() {
		t.Error("0.0 and -0.0 should share a key")
	}
}

func TestKeyOfAndProject(t *testing.T) {
	tp := Tuple{Int(1), Text("x"), Bool(true)}
	if KeyOf(tp, []int{0, 2}) != (Tuple{Int(1), Bool(true)}).Key() {
		t.Error("KeyOf should match projected Key")
	}
	p := Project(tp, []int{2, 0})
	if !TuplesEqual(p, Tuple{Bool(true), Int(1)}) {
		t.Errorf("Project = %v", p)
	}
}

func TestConcat(t *testing.T) {
	a := Tuple{Int(1)}
	b := Tuple{Int(2), Int(3)}
	c := Concat(a, b)
	if !TuplesEqual(c, Tuple{Int(1), Int(2), Int(3)}) {
		t.Errorf("Concat = %v", c)
	}
	c[0] = Int(9)
	if a[0] != Int(1) {
		t.Error("Concat shares storage with input")
	}
}

func TestTupleString(t *testing.T) {
	got := TupleString(Tuple{Int(1), Text("a"), Null()})
	want := "(1, 'a', NULL)"
	if got != want {
		t.Errorf("TupleString = %q, want %q", got, want)
	}
}

func TestTupleKeyEqualityProperty(t *testing.T) {
	prop := func(a1, a2, b1, b2 int64, s1, s2 string) bool {
		ta := Tuple{Int(a1), Text(s1), Int(a2)}
		tb := Tuple{Int(b1), Text(s2), Int(b2)}
		if TuplesEqual(ta, tb) {
			return ta.Key() == tb.Key()
		}
		return ta.Key() != tb.Key()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
