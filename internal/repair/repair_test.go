package repair

import (
	"testing"

	"hippo/internal/conflict"
	"hippo/internal/constraint"
	"hippo/internal/engine"
	"hippo/internal/value"
)

// fixture: emp(id, salary) with FD id->salary and two conflicting clusters.
func fixture(t *testing.T) (*engine.DB, *conflict.Hypergraph) {
	t.Helper()
	db := engine.New()
	mustExec(db, "CREATE TABLE emp (id INT, salary INT)")
	mustExec(db, "INSERT INTO emp VALUES (1, 100), (1, 200), (2, 150), (3, 300), (3, 400)")
	fd := constraint.FD{Rel: "emp", LHS: []string{"id"}, RHS: []string{"salary"}}
	h, _, _, err := conflict.NewDetector(db).Detect([]constraint.Constraint{fd})
	if err != nil {
		t.Fatal(err)
	}
	return db, h
}

func TestDeletionSets(t *testing.T) {
	db, h := fixture(t)
	e := &Enumerator{DB: db, H: h}
	sets, err := e.DeletionSets()
	if err != nil {
		t.Fatal(err)
	}
	// Two independent binary conflicts → 2×2 = 4 repairs, each deleting one
	// tuple from each cluster.
	if len(sets) != 4 {
		t.Fatalf("repairs = %d, want 4 (%v)", len(sets), sets)
	}
	for _, s := range sets {
		if len(s) != 2 {
			t.Errorf("deletion set %v should have 2 vertices", s)
		}
	}
	n, err := e.Count()
	if err != nil || n != 4 {
		t.Errorf("Count = %d, %v", n, err)
	}
}

func TestNoConflictsSingleRepair(t *testing.T) {
	db := engine.New()
	mustExec(db, "CREATE TABLE r (a INT)")
	mustExec(db, "INSERT INTO r VALUES (1), (2)")
	e := &Enumerator{DB: db, H: conflict.NewHypergraph()}
	sets, err := e.DeletionSets()
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 1 || len(sets[0]) != 0 {
		t.Fatalf("expected one empty deletion set, got %v", sets)
	}
	dbs, err := e.Materialize()
	if err != nil || len(dbs) != 1 {
		t.Fatal(err)
	}
	res, _ := dbs[0].Query("SELECT * FROM r")
	if len(res.Rows) != 2 {
		t.Error("repair should keep all rows")
	}
}

func TestMaterializeDropsRows(t *testing.T) {
	db, h := fixture(t)
	e := &Enumerator{DB: db, H: h}
	dbs, err := e.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if len(dbs) != 4 {
		t.Fatalf("repairs = %d", len(dbs))
	}
	for _, r := range dbs {
		res, err := r.Query("SELECT * FROM emp")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 3 { // 5 rows - 2 deletions
			t.Errorf("repair has %d rows, want 3", len(res.Rows))
		}
		// Every repair must satisfy the FD.
		byID := map[int64]int64{}
		for _, row := range res.Rows {
			id, sal := row[0].I, row[1].I
			if prev, ok := byID[id]; ok && prev != sal {
				t.Errorf("repair violates FD: id=%d has salaries %d and %d", id, prev, sal)
			}
			byID[id] = sal
		}
	}
}

func TestConsistentAnswers(t *testing.T) {
	db, h := fixture(t)
	e := &Enumerator{DB: db, H: h}
	// id=2 is conflict-free: its row is in every repair. Conflicting rows
	// are each absent from some repair.
	rows, err := e.ConsistentAnswers("SELECT id, salary FROM emp")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || !value.TuplesEqual(rows[0], value.Tuple{value.Int(2), value.Int(150)}) {
		t.Errorf("consistent answers = %v", rows)
	}
	// "id" alone: every repair keeps some tuple with id=1 and id=3, but the
	// full rows differ. Projection here keeps all columns? No — SELECT id is
	// an unsafe projection for Hippo, but the oracle can evaluate anything.
	ids, err := e.ConsistentAnswers("SELECT id FROM emp")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Errorf("consistent ids = %v, want 1,2,3", ids)
	}
}

func TestPossibleAnswers(t *testing.T) {
	db, h := fixture(t)
	e := &Enumerator{DB: db, H: h}
	rows, err := e.PossibleAnswers("SELECT id, salary FROM emp")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 { // every tuple is in some repair
		t.Errorf("possible answers = %v", rows)
	}
}

func TestSelfConflictExcludedEverywhere(t *testing.T) {
	db := engine.New()
	mustExec(db, "CREATE TABLE acct (id INT, bal INT)")
	mustExec(db, "INSERT INTO acct VALUES (1, 50), (2, -10)")
	den, err := constraint.ParseDenial("acct a WHERE a.bal < 0")
	if err != nil {
		t.Fatal(err)
	}
	h, _, _, err := conflict.NewDetector(db).Detect([]constraint.Constraint{den})
	if err != nil {
		t.Fatal(err)
	}
	e := &Enumerator{DB: db, H: h}
	rows, err := e.ConsistentAnswers("SELECT id FROM acct")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0] != value.Int(1) {
		t.Errorf("answers = %v; negative-balance tuple must be gone from all repairs", rows)
	}
	poss, _ := e.PossibleAnswers("SELECT id FROM acct")
	if len(poss) != 1 {
		t.Errorf("possible = %v; self-conflicting tuple is in no repair", poss)
	}
}

func TestLimit(t *testing.T) {
	// 12 disjoint binary conflicts → 2^12 = 4096 repairs; limit of 100
	// must trip.
	db := engine.New()
	mustExec(db, "CREATE TABLE r (id INT, v INT)")
	for i := 0; i < 12; i++ {
		mustExec(db, insertPair(i))
	}
	fd := constraint.FD{Rel: "r", LHS: []string{"id"}, RHS: []string{"v"}}
	h, _, _, err := conflict.NewDetector(db).Detect([]constraint.Constraint{fd})
	if err != nil {
		t.Fatal(err)
	}
	e := &Enumerator{DB: db, H: h, Limit: 100}
	if _, err := e.DeletionSets(); err == nil {
		t.Error("limit should trip")
	}
	e.Limit = 5000
	sets, err := e.DeletionSets()
	if err != nil || len(sets) != 4096 {
		t.Errorf("repairs = %d, %v; want 4096", len(sets), err)
	}
}

func insertPair(i int) string {
	return "INSERT INTO r VALUES (" +
		value.Int(int64(i)).String() + ", 0), (" +
		value.Int(int64(i)).String() + ", 1)"
}

func TestOverlappingEdgesMinimality(t *testing.T) {
	// Rows: a=(1,x) conflicts with b=(1,y) and c=(1,z); b conflicts with c.
	// Triangle → repairs keep exactly one of {a,b,c}: 3 repairs.
	db := engine.New()
	mustExec(db, "CREATE TABLE r (id INT, v TEXT)")
	mustExec(db, "INSERT INTO r VALUES (1,'x'), (1,'y'), (1,'z')")
	fd := constraint.FD{Rel: "r", LHS: []string{"id"}, RHS: []string{"v"}}
	h, _, _, err := conflict.NewDetector(db).Detect([]constraint.Constraint{fd})
	if err != nil {
		t.Fatal(err)
	}
	e := &Enumerator{DB: db, H: h}
	sets, err := e.DeletionSets()
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 3 {
		t.Fatalf("repairs = %d, want 3: %v", len(sets), sets)
	}
	for _, s := range sets {
		if len(s) != 2 {
			t.Errorf("each minimal deletion set should have 2 vertices, got %v", s)
		}
	}
}
