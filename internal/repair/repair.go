// Package repair enumerates database repairs explicitly. A repair is a
// maximal subset of the database satisfying all denial constraints —
// equivalently, a maximal independent set of the conflict hypergraph, or
// the complement of a minimal hitting set of its hyperedges.
//
// Enumeration is exponential in the number of conflicting tuples, which is
// exactly why Hippo avoids it; this package exists as the ground-truth
// oracle for tests and for the paper's motivating comparisons on small
// instances (experiment E1).
package repair

import (
	"fmt"
	"sort"
	"strings"

	"hippo/internal/conflict"
	"hippo/internal/engine"
	"hippo/internal/storage"
	"hippo/internal/value"
)

// DefaultLimit bounds how many repairs the enumerator will produce before
// giving up, as a guard against exponential blowup.
const DefaultLimit = 100000

// Source is the read-only database surface enumeration needs. Both the
// live *engine.DB and an *engine.Snapshot satisfy it; the core hands the
// enumerator a pinned snapshot plus the matching hypergraph snapshot, so
// enumeration is read-only end to end and needs no defensive copies.
type Source interface {
	TableNames() []string
	Relation(name string) (storage.Relation, error)
}

// Enumerator lists the repairs of a database with respect to a conflict
// hypergraph. It only reads DB and H.
type Enumerator struct {
	DB Source
	H  conflict.Graph
	// Limit caps the number of repairs (DefaultLimit when zero).
	Limit int
}

// DeletionSets returns the tuple sets whose removal yields each repair:
// all minimal hitting sets of the hyperedge collection. The database
// itself is not touched.
//
// Because no hyperedge crosses a connected component of the conflict
// hypergraph, the minimal hitting sets factor: they are exactly the
// unions of one minimal hitting set per component. Enumeration therefore
// runs per component — exponential only in the largest component — and
// the global sets are the cross product.
func (e *Enumerator) DeletionSets() ([][]conflict.Vertex, error) {
	limit := e.Limit
	if limit <= 0 {
		limit = DefaultLimit
	}
	perComp, err := e.componentDeletionSets(limit)
	if err != nil {
		return nil, err
	}
	// Cross product across components.
	out := [][]conflict.Vertex{{}}
	for _, sets := range perComp {
		if len(out)*len(sets) > limit {
			return nil, errTooMany(limit)
		}
		next := make([][]conflict.Vertex, 0, len(out)*len(sets))
		for _, acc := range out {
			for _, set := range sets {
				merged := make([]conflict.Vertex, 0, len(acc)+len(set))
				merged = append(merged, acc...)
				merged = append(merged, set...)
				next = append(next, merged)
			}
		}
		out = next
	}
	for _, set := range out {
		sortVerts(set)
	}
	return out, nil
}

// componentDeletionSets enumerates the minimal hitting sets of each
// connected component's edges separately.
func (e *Enumerator) componentDeletionSets(limit int) ([][][]conflict.Vertex, error) {
	byComp := make(map[uint64][]conflict.Edge)
	var order []uint64
	for _, edge := range e.H.Edges() {
		ref, ok := e.H.ComponentOf(edge.Verts[0])
		if !ok {
			return nil, fmt.Errorf("repair: edge %v has no component", edge)
		}
		if _, seen := byComp[ref.ID]; !seen {
			order = append(order, ref.ID)
		}
		byComp[ref.ID] = append(byComp[ref.ID], edge)
	}
	out := make([][][]conflict.Vertex, 0, len(order))
	for _, id := range order {
		sets, err := minimalHittingSets(byComp[id], limit)
		if err != nil {
			return nil, err
		}
		out = append(out, sets)
	}
	return out, nil
}

func errTooMany(limit int) error {
	return fmt.Errorf("repair: more than %d repairs; raise Limit or shrink the instance", limit)
}

// minimalHittingSets enumerates all minimal hitting sets of one edge
// collection by branching on the vertices of the first unhit edge.
func minimalHittingSets(edges []conflict.Edge, limit int) ([][]conflict.Vertex, error) {
	var (
		out     [][]conflict.Vertex
		seen    = map[string]bool{}
		deleted = conflict.VertexSet{}
	)
	var rec func() error
	rec = func() error {
		// Find the first edge not yet hit by a deletion.
		var alive *conflict.Edge
		for i := range edges {
			hit := false
			for _, v := range edges[i].Verts {
				if deleted[v] {
					hit = true
					break
				}
			}
			if !hit {
				alive = &edges[i]
				break
			}
		}
		if alive == nil {
			set := make([]conflict.Vertex, 0, len(deleted))
			for v := range deleted {
				set = append(set, v)
			}
			if !minimalHittingSet(edges, deleted) {
				return nil
			}
			sortVerts(set)
			key := vertsKey(set)
			if seen[key] {
				return nil
			}
			seen[key] = true
			out = append(out, set)
			if len(out) > limit {
				return errTooMany(limit)
			}
			return nil
		}
		for _, v := range alive.Verts {
			if deleted[v] {
				continue
			}
			deleted[v] = true
			err := rec()
			delete(deleted, v)
			if err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(); err != nil {
		return nil, err
	}
	return out, nil
}

// minimalHittingSet verifies every deleted vertex is necessary: it is the
// only deleted vertex of at least one edge.
func minimalHittingSet(edges []conflict.Edge, deleted conflict.VertexSet) bool {
	needed := make(map[conflict.Vertex]bool, len(deleted))
	for _, e := range edges {
		var only *conflict.Vertex
		count := 0
		for i, v := range e.Verts {
			if deleted[v] {
				count++
				only = &e.Verts[i]
			}
		}
		if count == 1 {
			needed[*only] = true
		}
	}
	return len(needed) == len(deleted)
}

// Count returns the number of repairs: the product of the per-component
// minimal-hitting-set counts, without materializing the cross product.
func (e *Enumerator) Count() (int, error) {
	limit := e.Limit
	if limit <= 0 {
		limit = DefaultLimit
	}
	perComp, err := e.componentDeletionSets(limit)
	if err != nil {
		return 0, err
	}
	n := 1
	for _, sets := range perComp {
		if n*len(sets) > limit {
			return 0, errTooMany(limit)
		}
		n *= len(sets)
	}
	return n, nil
}

// Materialize builds each repair as a standalone database (same schemas,
// surviving rows only).
func (e *Enumerator) Materialize() ([]*engine.DB, error) {
	sets, err := e.DeletionSets()
	if err != nil {
		return nil, err
	}
	out := make([]*engine.DB, 0, len(sets))
	for _, del := range sets {
		db, err := cloneWithout(e.DB, del)
		if err != nil {
			return nil, err
		}
		out = append(out, db)
	}
	return out, nil
}

// cloneWithout copies every table of src, skipping the rows named in del.
func cloneWithout(src Source, del []conflict.Vertex) (*engine.DB, error) {
	drop := make(map[conflict.Vertex]bool, len(del))
	for _, v := range del {
		drop[v] = true
	}
	dst := engine.New()
	for _, name := range src.TableNames() {
		t, err := src.Relation(name)
		if err != nil {
			return nil, err
		}
		nt, err := dst.CreateTable(name, t.Schema())
		if err != nil {
			return nil, err
		}
		err = t.Scan(func(id storage.RowID, row value.Tuple) error {
			if drop[conflict.Vertex{Rel: name, Row: id}] {
				return nil
			}
			_, err := nt.Insert(row)
			return err
		})
		if err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// ConsistentAnswers computes the exact consistent answers to a SQL query
// by evaluating it in every repair and intersecting the results. This is
// the oracle the Hippo prover is validated against.
func (e *Enumerator) ConsistentAnswers(sql string) ([]value.Tuple, error) {
	repairs, err := e.Materialize()
	if err != nil {
		return nil, err
	}
	var intersection map[string]value.Tuple
	for _, r := range repairs {
		res, err := r.Query(sql)
		if err != nil {
			return nil, err
		}
		cur := make(map[string]value.Tuple, len(res.Rows))
		for _, row := range res.Rows {
			cur[row.Key()] = row
		}
		if intersection == nil {
			intersection = cur
			continue
		}
		for k := range intersection {
			if _, ok := cur[k]; !ok {
				delete(intersection, k)
			}
		}
	}
	out := make([]value.Tuple, 0, len(intersection))
	for _, row := range intersection {
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool { return value.CompareTuples(out[i], out[j]) < 0 })
	return out, nil
}

// PossibleAnswers evaluates the query in every repair and unions the
// results ("possible" semantics), used by envelope soundness tests.
func (e *Enumerator) PossibleAnswers(sql string) ([]value.Tuple, error) {
	repairs, err := e.Materialize()
	if err != nil {
		return nil, err
	}
	union := map[string]value.Tuple{}
	for _, r := range repairs {
		res, err := r.Query(sql)
		if err != nil {
			return nil, err
		}
		for _, row := range res.Rows {
			union[row.Key()] = row
		}
	}
	out := make([]value.Tuple, 0, len(union))
	for _, row := range union {
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool { return value.CompareTuples(out[i], out[j]) < 0 })
	return out, nil
}

func sortVerts(vs []conflict.Vertex) {
	sort.Slice(vs, func(i, j int) bool {
		if vs[i].Rel != vs[j].Rel {
			return vs[i].Rel < vs[j].Rel
		}
		return vs[i].Row < vs[j].Row
	})
}

func vertsKey(vs []conflict.Vertex) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = v.String()
	}
	return strings.Join(parts, ";")
}
