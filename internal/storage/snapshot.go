package storage

import (
	"sync"
	"sync/atomic"

	"hippo/internal/schema"
	"hippo/internal/value"
)

// TableSnapshot is an immutable point-in-time view of a table: the slab
// set, row count, and liveness bitmap as of Snapshot time. It implements
// Relation, so plans, the tuple index, and the repair enumerator can read
// it exactly like a live table — but without any locking, because nothing
// ever mutates it (writers clone sealed slabs instead).
type TableSnapshot struct {
	name    string
	schema  schema.Schema
	slabs   []*slab
	nrows   int
	live    int
	version uint64

	// fullIdx is the full-row hash index over the snapshot, built lazily
	// by the first membership lookup and immutable afterwards. Snapshots
	// of an unchanged table are shared, so the build cost is paid at most
	// once per table version.
	idxOnce sync.Once
	fullIdx atomic.Pointer[Index]

	// stats holds the planner's cardinality estimates, built lazily like
	// fullIdx and likewise paid at most once per table version.
	statsOnce sync.Once
	stats     atomic.Pointer[TableStats]
}

// Name returns the table name.
func (s *TableSnapshot) Name() string { return s.name }

// Schema returns the table schema (qualified by the table name).
func (s *TableSnapshot) Schema() schema.Schema { return s.schema }

// Len returns the number of live rows in the snapshot.
func (s *TableSnapshot) Len() int { return s.live }

// Cap returns the total number of row slots, including tombstones.
func (s *TableSnapshot) Cap() int { return s.nrows }

// Version returns the table version the snapshot was taken at.
func (s *TableSnapshot) Version() uint64 { return s.version }

// NumSlabs returns the number of slabs the snapshot references.
func (s *TableSnapshot) NumSlabs() int { return len(s.slabs) }

// SharedSlabs counts the slabs this snapshot shares (by identity) with a
// newer snapshot of the same table — the ones copy-on-write did NOT have
// to duplicate. The epoch reclaimer uses the complement to account for
// retired slabs.
func (s *TableSnapshot) SharedSlabs(next *TableSnapshot) int {
	if next == nil {
		return 0
	}
	shared := 0
	set := make(map[*slab]bool, len(next.slabs))
	for _, sl := range next.slabs {
		set[sl] = true
	}
	for _, sl := range s.slabs {
		if set[sl] {
			shared++
		}
	}
	return shared
}

// Row returns the row with the given id, or ok=false if the id is out of
// range or tombstoned in this snapshot.
func (s *TableSnapshot) Row(id RowID) (value.Tuple, bool) {
	if int(id) < 0 || int(id) >= s.nrows {
		return nil, false
	}
	sl := s.slabs[int(id)>>slabShift]
	off := int(id) & slabMask
	if sl.dead[off] {
		return nil, false
	}
	return sl.rows[off], true
}

// Scan calls fn for every live row in RowID order. Sealed slabs can never
// grow or change, so the snapshot's slab contents are exactly the rows
// present at Snapshot time.
func (s *TableSnapshot) Scan(fn func(id RowID, row value.Tuple) error) error {
	for si, sl := range s.slabs {
		base := si << slabShift
		for off, row := range sl.rows {
			if sl.dead[off] {
				continue
			}
			if err := fn(RowID(base+off), row); err != nil {
				return err
			}
		}
	}
	return nil
}

// Rows materializes all live rows in RowID order.
func (s *TableSnapshot) Rows() []value.Tuple {
	out := make([]value.Tuple, 0, s.live)
	s.Scan(func(_ RowID, row value.Tuple) error {
		out = append(out, row)
		return nil
	})
	return out
}

// Cursor returns a streaming iterator over the snapshot's live rows in
// RowID order. The slab set is immutable, so the walk is lock-free and
// zero-copy.
func (s *TableSnapshot) Cursor() Cursor { return &slabCursor{slabs: s.slabs} }

// Stats returns the snapshot's cardinality estimates, computing them on
// first use (safe for concurrent callers). Snapshots of an unchanged
// table are shared, so the sampling cost is paid at most once per table
// version — and only when a planner actually asks.
func (s *TableSnapshot) Stats() TableStats {
	s.statsOnce.Do(func() {
		st := computeStats(s.Cursor(), s.schema.Len(), s.live)
		s.stats.Store(&st)
	})
	return *s.stats.Load()
}

// FullRowIndex returns the full-row hash index over the snapshot, building
// it on first use (safe for concurrent callers).
func (s *TableSnapshot) FullRowIndex() (*Index, error) {
	s.idxOnce.Do(func() {
		idx := newIndex(fullRowCols(s.schema.Len()))
		s.Scan(func(id RowID, row value.Tuple) error {
			idx.add(row, id)
			return nil
		})
		s.fullIdx.Store(idx)
	})
	return s.fullIdx.Load(), nil
}

// Indexes returns the snapshot's already-built indexes. Indexes are never
// built speculatively for access-path selection, so this is the full-row
// index at most.
func (s *TableSnapshot) Indexes() []*Index {
	if idx := s.fullIdx.Load(); idx != nil {
		return []*Index{idx}
	}
	return nil
}

// IndexLookup resolves key in ix. Snapshot indexes are immutable, so the
// bucket slice is returned directly.
func (s *TableSnapshot) IndexLookup(ix *Index, key value.Tuple) []RowID {
	return ix.Lookup(key)
}
