// Package storage implements the in-memory storage layer of the embedded
// RDBMS: append-only tables with tombstoned deletion, stable row
// identifiers, and hash indexes over arbitrary column subsets.
//
// Row identifiers (RowID) are stable for the lifetime of a table and are
// the vertex identity used by the conflict hypergraph, so deletion must
// never renumber rows — deleted rows leave a tombstone instead.
//
// Rows live in fixed-size slabs. A TableSnapshot captures the current
// slab set; writers copy-on-write only the slabs a snapshot still
// references, so snapshots are O(slabs) to take and readers of a snapshot
// need no locking at all.
package storage

import (
	"fmt"
	"slices"
	"strings"
	"sync"

	"hippo/internal/schema"
	"hippo/internal/value"
)

// RowID identifies a row within its table. IDs are assigned densely in
// insertion order and never reused.
type RowID int

// ChangeKind discriminates the two DML deltas a table can emit.
type ChangeKind uint8

const (
	// ChangeInsert reports a newly inserted row.
	ChangeInsert ChangeKind = iota
	// ChangeDelete reports a tombstoned row.
	ChangeDelete
)

// String names the change kind.
func (k ChangeKind) String() string {
	if k == ChangeDelete {
		return "delete"
	}
	return "insert"
}

// Change is one DML delta: the affected RowID plus the stored tuple (the
// inserted values, or the values the deleted row held). Subscribers use it
// to maintain derived structures — notably the conflict hypergraph —
// without rescanning the table.
type Change struct {
	Kind  ChangeKind
	Row   RowID
	Tuple value.Tuple // stored (coerced) values; must not be mutated
}

// TableChange qualifies a change-feed event with the emitting table. It is
// the unit the engine's group-commit path buffers while a batch runs and
// hands to CoalesceChanges before delivery.
type TableChange struct {
	Table  string
	Change Change
}

// CoalesceChanges collapses the buffered change feed of one atomic batch:
// a row inserted and deleted within the same batch never became visible to
// any published view, so both events vanish — no delta probe, no cache
// invalidation, no listener work for it. Because RowIDs are never reused,
// a RowID sees at most one insert and one delete, so cancellation is the
// only rewrite; chains like delete(old)+insert(new) on the same key are
// distinct RowIDs and pass through, which is exactly last-writer-wins for
// an update expressed as delete+insert. Surviving events keep their
// original relative order. The input slice is returned unchanged when
// nothing cancels.
func CoalesceChanges(feed []TableChange) []TableChange {
	type key struct {
		table string
		row   RowID
	}
	var (
		inserted map[key]int // feed index of a batch-local insert
		drop     []bool
		dropped  int
	)
	for i, tc := range feed {
		k := key{tc.Table, tc.Change.Row}
		switch tc.Change.Kind {
		case ChangeInsert:
			if inserted == nil {
				inserted = make(map[key]int)
			}
			inserted[k] = i
		case ChangeDelete:
			j, ok := inserted[k]
			if !ok {
				continue // deletes a pre-batch row; keep
			}
			if drop == nil {
				drop = make([]bool, len(feed))
			}
			drop[i], drop[j] = true, true
			dropped += 2
			delete(inserted, k)
		}
	}
	if dropped == 0 {
		return feed
	}
	out := make([]TableChange, 0, len(feed)-dropped)
	for i, tc := range feed {
		if !drop[i] {
			out = append(out, tc)
		}
	}
	return out
}

// Relation is the read surface shared by live tables and immutable
// snapshots. Plans, the tuple index, and the repair enumerator read
// through it so the same code serves both the live database and a pinned
// point-in-time view.
type Relation interface {
	// Name returns the relation name.
	Name() string
	// Schema returns the relation schema (qualified by the relation name).
	Schema() schema.Schema
	// Len returns the number of live rows.
	Len() int
	// Row returns the row with the given id, or ok=false if the id is out
	// of range or tombstoned.
	Row(id RowID) (value.Tuple, bool)
	// Rows materializes all live rows in RowID order.
	Rows() []value.Tuple
	// Scan calls fn for every live row in RowID order.
	Scan(fn func(id RowID, row value.Tuple) error) error
	// Indexes returns the indexes available for access-path selection.
	Indexes() []*Index
	// IndexLookup resolves key in ix consistently with this relation's
	// synchronization (locked copy for live tables, direct access for
	// snapshots). The returned slice must not be mutated.
	IndexLookup(ix *Index, key value.Tuple) []RowID
	// FullRowIndex returns a hash index over the entire row, building it
	// on first use. It backs tuple-membership checks.
	FullRowIndex() (*Index, error)
	// Cursor returns a streaming iterator over all live rows in RowID
	// order. Live tables serve it from their cached snapshot, so an
	// in-flight cursor observes a consistent cut even while writers
	// proceed.
	Cursor() Cursor
	// Stats returns cardinality estimates for cost-based planning: an
	// exact live-row count plus sampled per-column distinct counts,
	// cached per table version.
	Stats() TableStats
}

const (
	slabShift = 8
	// SlabSize is the number of row slots per slab.
	SlabSize = 1 << slabShift
	slabMask = SlabSize - 1
)

// slab is one fixed-capacity run of row slots. A slab referenced by a
// snapshot is sealed; writers clone a sealed slab before mutating it, so
// the snapshot's view stays frozen without copying the whole table.
type slab struct {
	rows   []value.Tuple // ≤ SlabSize entries
	dead   []bool        // parallel to rows
	sealed bool          // referenced by a snapshot; clone before writing
}

func newSlab() *slab {
	return &slab{
		rows: make([]value.Tuple, 0, SlabSize),
		dead: make([]bool, 0, SlabSize),
	}
}

// clone copies the slab's slices (tuples themselves are immutable and
// shared). The copy starts unsealed.
func (s *slab) clone() *slab {
	cp := &slab{
		rows: make([]value.Tuple, len(s.rows), SlabSize),
		dead: make([]bool, len(s.dead), SlabSize),
	}
	copy(cp.rows, s.rows)
	copy(cp.dead, s.dead)
	return cp
}

// Table is an in-memory relation instance. Concurrent readers are always
// safe; a single writer may run concurrently with readers (reads are
// seqcst through t.mu), and writers are serialized with each other by the
// engine's write sequencer plus emitMu.
type Table struct {
	// emitMu serializes writers with each other across the mutation AND
	// its observer notification, so the change feed is delivered in
	// mutation order. It is always acquired before mu and held while
	// notifying (mu itself is released first, so observers may read the
	// table).
	emitMu    sync.Mutex
	mu        sync.RWMutex
	name      string
	schema    schema.Schema
	slabs     []*slab
	nrows     int // total row slots ever allocated (RowIDs range [0, nrows))
	live      int
	version   uint64 // bumped on every mutation; snapshots are cached per version
	snap      *TableSnapshot
	indexes   map[string]*Index
	observers []func(Change)
}

// NewTable creates an empty table with the given name and schema. Column
// qualifiers in the stored schema are set to the table name.
func NewTable(name string, s schema.Schema) *Table {
	return &Table{
		name:    name,
		schema:  s.WithQualifier(name),
		indexes: make(map[string]*Index),
	}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema (qualified by the table name).
func (t *Table) Schema() schema.Schema { return t.schema }

// Len returns the number of live rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.live
}

// Cap returns the total number of row slots ever allocated, including
// tombstones. RowIDs range over [0, Cap).
func (t *Table) Cap() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.nrows
}

// Version returns the mutation counter; it changes exactly when the table
// contents change.
func (t *Table) Version() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.version
}

// Observe registers fn to be called after every successful Insert or
// Delete. Delivery happens outside the data lock (observers may read the
// table) but inside the writer-sequencing lock, so observers must not
// write to this table. The engine's DML-delta pipeline — and through it
// the incremental conflict detector — subscribes here.
func (t *Table) Observe(fn func(Change)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.observers = append(t.observers, fn)
}

// notify invokes the observers registered at change time. It must be
// called without holding t.mu.
func (t *Table) notify(obs []func(Change), ch Change) {
	for _, fn := range obs {
		fn(ch)
	}
}

// writableSlab returns the slab holding slot si, cloning it first if it is
// sealed by a snapshot. Caller holds t.mu.
func (t *Table) writableSlab(si int) *slab {
	s := t.slabs[si]
	if s.sealed {
		s = s.clone()
		t.slabs[si] = s
	}
	return s
}

// Insert appends a row after validating arity and coercing values to the
// column types. It returns the new row's RowID.
func (t *Table) Insert(row value.Tuple) (RowID, error) {
	t.emitMu.Lock()
	defer t.emitMu.Unlock()
	id, ch, obs, err := t.insert(row)
	if err != nil {
		return id, err
	}
	t.notify(obs, ch)
	return id, nil
}

// InsertCapture is Insert with observer delivery withheld: the change-feed
// event is returned to the caller instead. The engine's group-commit path
// buffers captured events across a batch and delivers the coalesced set at
// the end (or discards it on rollback); callers must hold the engine write
// sequencer so the deferred delivery stays in mutation order.
func (t *Table) InsertCapture(row value.Tuple) (RowID, Change, error) {
	t.emitMu.Lock()
	defer t.emitMu.Unlock()
	id, ch, _, err := t.insert(row)
	return id, ch, err
}

// insert performs the mutation. The caller holds emitMu (and keeps it
// through notification, so the change feed stays in mutation order).
func (t *Table) insert(row value.Tuple) (RowID, Change, []func(Change), error) {
	t.mu.Lock()
	if len(row) != t.schema.Len() {
		t.mu.Unlock()
		return -1, Change{}, nil, fmt.Errorf("storage: table %s expects %d values, got %d",
			t.name, t.schema.Len(), len(row))
	}
	stored := make(value.Tuple, len(row))
	for i, v := range row {
		cv, err := value.Coerce(v, t.schema.Columns[i].Type)
		if err != nil {
			t.mu.Unlock()
			return -1, Change{}, nil, fmt.Errorf("storage: table %s column %s: %v",
				t.name, t.schema.Columns[i].Name, err)
		}
		stored[i] = cv
	}
	id := RowID(t.nrows)
	si := t.nrows >> slabShift
	if si == len(t.slabs) {
		t.slabs = append(t.slabs, newSlab())
	}
	s := t.writableSlab(si)
	s.rows = append(s.rows, stored)
	s.dead = append(s.dead, false)
	t.nrows++
	t.live++
	t.version++
	for _, idx := range t.indexes {
		idx.add(stored, id)
	}
	obs := t.observers
	t.mu.Unlock()
	return id, Change{Kind: ChangeInsert, Row: id, Tuple: stored}, obs, nil
}

// Delete tombstones a row. Deleting an already-dead or out-of-range row is
// an error.
func (t *Table) Delete(id RowID) error {
	t.emitMu.Lock()
	defer t.emitMu.Unlock()
	ch, obs, err := t.delete(id)
	if err != nil {
		return err
	}
	t.notify(obs, ch)
	return nil
}

// DeleteCapture is Delete with observer delivery withheld; see
// InsertCapture.
func (t *Table) DeleteCapture(id RowID) (Change, error) {
	t.emitMu.Lock()
	defer t.emitMu.Unlock()
	ch, _, err := t.delete(id)
	return ch, err
}

// delete performs the mutation; the caller holds emitMu (see insert).
func (t *Table) delete(id RowID) (Change, []func(Change), error) {
	t.mu.Lock()
	if int(id) < 0 || int(id) >= t.nrows {
		t.mu.Unlock()
		return Change{}, nil, fmt.Errorf("storage: table %s has no row %d", t.name, id)
	}
	si, off := int(id)>>slabShift, int(id)&slabMask
	if t.slabs[si].dead[off] {
		t.mu.Unlock()
		return Change{}, nil, fmt.Errorf("storage: table %s row %d already deleted", t.name, id)
	}
	s := t.writableSlab(si)
	s.dead[off] = true
	t.live--
	t.version++
	gone := s.rows[off]
	for _, idx := range t.indexes {
		idx.remove(gone, id)
	}
	obs := t.observers
	t.mu.Unlock()
	return Change{Kind: ChangeDelete, Row: id, Tuple: gone}, obs, nil
}

// Resurrect clears the tombstone of a deleted row, restoring it under its
// original RowID with its index entries. No change-feed event is emitted:
// the engine's batch rollback uses it to undo a captured (never delivered)
// delete, so to every observer the row was simply never touched.
func (t *Table) Resurrect(id RowID) error {
	t.emitMu.Lock()
	defer t.emitMu.Unlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(id) < 0 || int(id) >= t.nrows {
		return fmt.Errorf("storage: table %s has no row %d", t.name, id)
	}
	si, off := int(id)>>slabShift, int(id)&slabMask
	if !t.slabs[si].dead[off] {
		return fmt.Errorf("storage: table %s row %d is not deleted", t.name, id)
	}
	s := t.writableSlab(si)
	s.dead[off] = false
	t.live++
	t.version++
	row := s.rows[off]
	for _, idx := range t.indexes {
		idx.add(row, id)
	}
	return nil
}

// Row returns the row with the given id, or ok=false if the id is out of
// range or tombstoned. The returned tuple must not be mutated.
func (t *Table) Row(id RowID) (value.Tuple, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if int(id) < 0 || int(id) >= t.nrows {
		return nil, false
	}
	s := t.slabs[int(id)>>slabShift]
	off := int(id) & slabMask
	if s.dead[off] {
		return nil, false
	}
	return s.rows[off], true
}

// Scan calls fn for every live row in RowID order. Returning a non-nil
// error from fn stops the scan and propagates the error. The read lock is
// held across fn; fn must not write to the table.
func (t *Table) Scan(fn func(id RowID, row value.Tuple) error) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for si, s := range t.slabs {
		base := si << slabShift
		for off, row := range s.rows {
			if s.dead[off] {
				continue
			}
			if err := fn(RowID(base+off), row); err != nil {
				return err
			}
		}
	}
	return nil
}

// Rows materializes all live rows in RowID order. The returned tuples are
// the stored ones and must not be mutated.
func (t *Table) Rows() []value.Tuple {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]value.Tuple, 0, t.live)
	for _, s := range t.slabs {
		for off, row := range s.rows {
			if !s.dead[off] {
				out = append(out, row)
			}
		}
	}
	return out
}

// Cursor returns a streaming iterator over the live rows. It is served
// from the table's cached snapshot: the walk needs no locking and stays
// consistent while writers proceed (they clone sealed slabs).
func (t *Table) Cursor() Cursor { return t.Snapshot().Cursor() }

// Stats returns planner cardinality estimates, computed lazily and cached
// per table version via the snapshot.
func (t *Table) Stats() TableStats { return t.Snapshot().Stats() }

// Snapshot returns an immutable point-in-time view of the table. Taking a
// snapshot seals the current slabs — writers clone a sealed slab before
// touching it — and costs O(slabs). Snapshots of an unchanged table are
// shared: the same *TableSnapshot is returned until the next mutation.
func (t *Table) Snapshot() *TableSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.snap != nil && t.snap.version == t.version {
		return t.snap
	}
	for _, s := range t.slabs {
		s.sealed = true
	}
	t.snap = &TableSnapshot{
		name:    t.name,
		schema:  t.schema,
		slabs:   slices.Clone(t.slabs),
		nrows:   t.nrows,
		live:    t.live,
		version: t.version,
	}
	return t.snap
}

// indexKey canonicalizes a column set for index lookup.
func indexKey(cols []int) string {
	sorted := slices.Clone(cols)
	slices.Sort(sorted)
	var b strings.Builder
	for i, c := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", c)
	}
	return b.String()
}

// fullRowCols returns the column list indexing the entire row.
func fullRowCols(n int) []int {
	cols := make([]int, n)
	for i := range cols {
		cols[i] = i
	}
	return cols
}

// EnsureIndex builds (or returns an existing) hash index over the given
// column positions. An empty column list indexes the full row.
func (t *Table) EnsureIndex(cols []int) (*Index, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(cols) == 0 {
		cols = fullRowCols(t.schema.Len())
	}
	for _, c := range cols {
		if c < 0 || c >= t.schema.Len() {
			return nil, fmt.Errorf("storage: table %s: index column %d out of range", t.name, c)
		}
	}
	// Canonicalize to sorted order so that equal column sets requested in
	// different orders share one index and agree on key layout.
	cols = slices.Clone(cols)
	slices.Sort(cols)
	key := indexKey(cols)
	if idx, ok := t.indexes[key]; ok {
		return idx, nil
	}
	idx := newIndex(cols)
	for si, s := range t.slabs {
		base := si << slabShift
		for off, row := range s.rows {
			if !s.dead[off] {
				idx.add(row, RowID(base+off))
			}
		}
	}
	t.indexes[key] = idx
	return idx, nil
}

// FullRowIndex returns the index over all columns, building it on first
// use.
func (t *Table) FullRowIndex() (*Index, error) {
	t.mu.RLock()
	idx, ok := t.indexes[indexKey(fullRowCols(t.schema.Len()))]
	t.mu.RUnlock()
	if ok {
		return idx, nil
	}
	return t.EnsureIndex(nil)
}

// IndexLookup returns the RowIDs whose indexed columns equal key,
// synchronized against concurrent writers. The returned slice is a copy
// and stays valid after the call.
func (t *Table) IndexLookup(ix *Index, key value.Tuple) []RowID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return slices.Clone(ix.Lookup(key))
}

// Index is a hash index over a subset of a table's columns, mapping the
// encoded key of the indexed columns to the RowIDs holding it. A live
// table's indexes are mutated in place by writers; read them through the
// table's locked accessors (or under external synchronization). Snapshot
// indexes are immutable and safe to read directly.
type Index struct {
	cols    []int
	buckets map[string][]RowID
}

func newIndex(cols []int) *Index {
	c := make([]int, len(cols))
	copy(c, cols)
	return &Index{cols: c, buckets: make(map[string][]RowID)}
}

// Columns returns the indexed column positions.
func (ix *Index) Columns() []int { return ix.cols }

func (ix *Index) add(row value.Tuple, id RowID) {
	k := value.KeyOf(row, ix.cols)
	ix.buckets[k] = append(ix.buckets[k], id)
}

func (ix *Index) remove(row value.Tuple, id RowID) {
	k := value.KeyOf(row, ix.cols)
	ids := ix.buckets[k]
	for i, x := range ids {
		if x == id {
			ix.buckets[k] = append(ids[:i], ids[i+1:]...)
			if len(ix.buckets[k]) == 0 {
				delete(ix.buckets, k)
			}
			return
		}
	}
}

// Lookup returns the RowIDs whose indexed columns equal the given key
// values (in index column order). The returned slice must not be mutated.
func (ix *Index) Lookup(key value.Tuple) []RowID {
	return ix.buckets[key.Key()]
}

// LookupRow returns the RowIDs matching the indexed columns of a full row.
func (ix *Index) LookupRow(row value.Tuple) []RowID {
	return ix.buckets[value.KeyOf(row, ix.cols)]
}

// Groups iterates over all distinct keys in the index, calling fn with the
// RowIDs sharing each key. Iteration order is unspecified.
func (ix *Index) Groups(fn func(ids []RowID) error) error {
	for _, ids := range ix.buckets {
		if err := fn(ids); err != nil {
			return err
		}
	}
	return nil
}

// Distinct returns the number of distinct keys in the index.
func (ix *Index) Distinct() int { return len(ix.buckets) }

// Index returns the existing index over exactly the given column set (any
// order), without building one.
func (t *Table) Index(cols []int) (*Index, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	idx, ok := t.indexes[indexKey(cols)]
	return idx, ok
}

// Indexes returns all indexes on the table, in unspecified order.
func (t *Table) Indexes() []*Index {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]*Index, 0, len(t.indexes))
	for _, idx := range t.indexes {
		out = append(out, idx)
	}
	return out
}
