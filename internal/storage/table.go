// Package storage implements the in-memory storage layer of the embedded
// RDBMS: append-only tables with tombstoned deletion, stable row
// identifiers, and hash indexes over arbitrary column subsets.
//
// Row identifiers (RowID) are stable for the lifetime of a table and are
// the vertex identity used by the conflict hypergraph, so deletion must
// never renumber rows — deleted rows leave a tombstone instead.
package storage

import (
	"fmt"
	"slices"
	"strings"
	"sync"

	"hippo/internal/schema"
	"hippo/internal/value"
)

// RowID identifies a row within its table. IDs are assigned densely in
// insertion order and never reused.
type RowID int

// ChangeKind discriminates the two DML deltas a table can emit.
type ChangeKind uint8

const (
	// ChangeInsert reports a newly inserted row.
	ChangeInsert ChangeKind = iota
	// ChangeDelete reports a tombstoned row.
	ChangeDelete
)

// String names the change kind.
func (k ChangeKind) String() string {
	if k == ChangeDelete {
		return "delete"
	}
	return "insert"
}

// Change is one DML delta: the affected RowID plus the stored tuple (the
// inserted values, or the values the deleted row held). Subscribers use it
// to maintain derived structures — notably the conflict hypergraph —
// without rescanning the table.
type Change struct {
	Kind  ChangeKind
	Row   RowID
	Tuple value.Tuple // stored (coerced) values; must not be mutated
}

// Table is an in-memory relation instance. It is safe for concurrent
// readers; writers must not run concurrently with anything else.
type Table struct {
	// emitMu serializes writers with each other across the mutation AND
	// its observer notification, so the change feed is delivered in
	// mutation order. It is always acquired before mu and held while
	// notifying (mu itself is released first, so observers may read the
	// table).
	emitMu    sync.Mutex
	mu        sync.RWMutex
	name      string
	schema    schema.Schema
	rows      []value.Tuple
	dead      []bool
	live      int
	indexes   map[string]*Index
	observers []func(Change)
}

// NewTable creates an empty table with the given name and schema. Column
// qualifiers in the stored schema are set to the table name.
func NewTable(name string, s schema.Schema) *Table {
	return &Table{
		name:    name,
		schema:  s.WithQualifier(name),
		indexes: make(map[string]*Index),
	}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema (qualified by the table name).
func (t *Table) Schema() schema.Schema { return t.schema }

// Len returns the number of live rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.live
}

// Cap returns the total number of row slots ever allocated, including
// tombstones. RowIDs range over [0, Cap).
func (t *Table) Cap() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Observe registers fn to be called after every successful Insert or
// Delete. Delivery happens outside the data lock (observers may read the
// table) but inside the writer-sequencing lock, so observers must not
// write to this table. The engine's DML-delta pipeline — and through it
// the incremental conflict detector — subscribes here.
func (t *Table) Observe(fn func(Change)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.observers = append(t.observers, fn)
}

// notify invokes the observers registered at change time. It must be
// called without holding t.mu.
func (t *Table) notify(obs []func(Change), ch Change) {
	for _, fn := range obs {
		fn(ch)
	}
}

// Insert appends a row after validating arity and coercing values to the
// column types. It returns the new row's RowID.
func (t *Table) Insert(row value.Tuple) (RowID, error) {
	t.emitMu.Lock()
	defer t.emitMu.Unlock()
	t.mu.Lock()
	if len(row) != t.schema.Len() {
		t.mu.Unlock()
		return -1, fmt.Errorf("storage: table %s expects %d values, got %d",
			t.name, t.schema.Len(), len(row))
	}
	stored := make(value.Tuple, len(row))
	for i, v := range row {
		cv, err := value.Coerce(v, t.schema.Columns[i].Type)
		if err != nil {
			t.mu.Unlock()
			return -1, fmt.Errorf("storage: table %s column %s: %v",
				t.name, t.schema.Columns[i].Name, err)
		}
		stored[i] = cv
	}
	id := RowID(len(t.rows))
	t.rows = append(t.rows, stored)
	t.dead = append(t.dead, false)
	t.live++
	for _, idx := range t.indexes {
		idx.add(stored, id)
	}
	obs := t.observers
	t.mu.Unlock()
	t.notify(obs, Change{Kind: ChangeInsert, Row: id, Tuple: stored})
	return id, nil
}

// Delete tombstones a row. Deleting an already-dead or out-of-range row is
// an error.
func (t *Table) Delete(id RowID) error {
	t.emitMu.Lock()
	defer t.emitMu.Unlock()
	t.mu.Lock()
	if int(id) < 0 || int(id) >= len(t.rows) {
		t.mu.Unlock()
		return fmt.Errorf("storage: table %s has no row %d", t.name, id)
	}
	if t.dead[id] {
		t.mu.Unlock()
		return fmt.Errorf("storage: table %s row %d already deleted", t.name, id)
	}
	t.dead[id] = true
	t.live--
	gone := t.rows[id]
	for _, idx := range t.indexes {
		idx.remove(gone, id)
	}
	obs := t.observers
	t.mu.Unlock()
	t.notify(obs, Change{Kind: ChangeDelete, Row: id, Tuple: gone})
	return nil
}

// Row returns the row with the given id, or ok=false if the id is out of
// range or tombstoned. The returned tuple must not be mutated.
func (t *Table) Row(id RowID) (value.Tuple, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if int(id) < 0 || int(id) >= len(t.rows) || t.dead[id] {
		return nil, false
	}
	return t.rows[id], true
}

// Scan calls fn for every live row in RowID order. Returning a non-nil
// error from fn stops the scan and propagates the error.
func (t *Table) Scan(fn func(id RowID, row value.Tuple) error) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for i, row := range t.rows {
		if t.dead[i] {
			continue
		}
		if err := fn(RowID(i), row); err != nil {
			return err
		}
	}
	return nil
}

// Rows materializes all live rows in RowID order. The returned tuples are
// the stored ones and must not be mutated.
func (t *Table) Rows() []value.Tuple {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]value.Tuple, 0, t.live)
	for i, row := range t.rows {
		if !t.dead[i] {
			out = append(out, row)
		}
	}
	return out
}

// indexKey canonicalizes a column set for index lookup.
func indexKey(cols []int) string {
	sorted := slices.Clone(cols)
	slices.Sort(sorted)
	var b strings.Builder
	for i, c := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", c)
	}
	return b.String()
}

// EnsureIndex builds (or returns an existing) hash index over the given
// column positions. An empty column list indexes the full row.
func (t *Table) EnsureIndex(cols []int) (*Index, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(cols) == 0 {
		cols = make([]int, t.schema.Len())
		for i := range cols {
			cols[i] = i
		}
	}
	for _, c := range cols {
		if c < 0 || c >= t.schema.Len() {
			return nil, fmt.Errorf("storage: table %s: index column %d out of range", t.name, c)
		}
	}
	// Canonicalize to sorted order so that equal column sets requested in
	// different orders share one index and agree on key layout.
	cols = slices.Clone(cols)
	slices.Sort(cols)
	key := indexKey(cols)
	if idx, ok := t.indexes[key]; ok {
		return idx, nil
	}
	idx := newIndex(cols)
	for i, row := range t.rows {
		if !t.dead[i] {
			idx.add(row, RowID(i))
		}
	}
	t.indexes[key] = idx
	return idx, nil
}

// Index is a hash index over a subset of a table's columns, mapping the
// encoded key of the indexed columns to the RowIDs holding it.
type Index struct {
	cols    []int
	buckets map[string][]RowID
}

func newIndex(cols []int) *Index {
	c := make([]int, len(cols))
	copy(c, cols)
	return &Index{cols: c, buckets: make(map[string][]RowID)}
}

// Columns returns the indexed column positions.
func (ix *Index) Columns() []int { return ix.cols }

func (ix *Index) add(row value.Tuple, id RowID) {
	k := value.KeyOf(row, ix.cols)
	ix.buckets[k] = append(ix.buckets[k], id)
}

func (ix *Index) remove(row value.Tuple, id RowID) {
	k := value.KeyOf(row, ix.cols)
	ids := ix.buckets[k]
	for i, x := range ids {
		if x == id {
			ix.buckets[k] = append(ids[:i], ids[i+1:]...)
			if len(ix.buckets[k]) == 0 {
				delete(ix.buckets, k)
			}
			return
		}
	}
}

// Lookup returns the RowIDs whose indexed columns equal the given key
// values (in index column order). The returned slice must not be mutated.
func (ix *Index) Lookup(key value.Tuple) []RowID {
	return ix.buckets[key.Key()]
}

// LookupRow returns the RowIDs matching the indexed columns of a full row.
func (ix *Index) LookupRow(row value.Tuple) []RowID {
	return ix.buckets[value.KeyOf(row, ix.cols)]
}

// Groups iterates over all distinct keys in the index, calling fn with the
// RowIDs sharing each key. Iteration order is unspecified.
func (ix *Index) Groups(fn func(ids []RowID) error) error {
	for _, ids := range ix.buckets {
		if err := fn(ids); err != nil {
			return err
		}
	}
	return nil
}

// Distinct returns the number of distinct keys in the index.
func (ix *Index) Distinct() int { return len(ix.buckets) }

// Index returns the existing index over exactly the given column set (any
// order), without building one.
func (t *Table) Index(cols []int) (*Index, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	idx, ok := t.indexes[indexKey(cols)]
	return idx, ok
}

// Indexes returns all indexes on the table, in unspecified order.
func (t *Table) Indexes() []*Index {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]*Index, 0, len(t.indexes))
	for _, idx := range t.indexes {
		out = append(out, idx)
	}
	return out
}
