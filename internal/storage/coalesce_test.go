package storage

import (
	"fmt"
	"testing"

	"hippo/internal/schema"
	"hippo/internal/value"
)

func ins(table string, id RowID, vals ...value.Value) TableChange {
	return TableChange{Table: table, Change: Change{Kind: ChangeInsert, Row: id, Tuple: value.Tuple(vals)}}
}

func del(table string, id RowID, vals ...value.Value) TableChange {
	return TableChange{Table: table, Change: Change{Kind: ChangeDelete, Row: id, Tuple: value.Tuple(vals)}}
}

func feedString(feed []TableChange) string {
	s := ""
	for _, tc := range feed {
		s += fmt.Sprintf("%s:%s:%d ", tc.Table, tc.Change.Kind, tc.Change.Row)
	}
	return s
}

func TestCoalesceChanges(t *testing.T) {
	one := value.Int(1)
	cases := []struct {
		name string
		in   []TableChange
		want []TableChange
	}{
		{name: "empty", in: nil, want: nil},
		{
			name: "passthrough",
			in:   []TableChange{ins("t", 0, one), del("t", 7, one), ins("t", 1, one)},
			want: []TableChange{ins("t", 0, one), del("t", 7, one), ins("t", 1, one)},
		},
		{
			name: "insert-then-delete cancels",
			in:   []TableChange{ins("t", 5, one), del("t", 5, one)},
			want: nil,
		},
		{
			name: "cancel keeps surrounding order",
			in:   []TableChange{ins("t", 1, one), ins("t", 2, one), del("t", 2, one), del("t", 0, one)},
			want: []TableChange{ins("t", 1, one), del("t", 0, one)},
		},
		{
			// An "update" written as delete(old)+insert(new) on the same key:
			// distinct RowIDs, so both survive — last writer wins naturally.
			name: "same-key re-insert passes through",
			in:   []TableChange{del("t", 3, one), ins("t", 9, one)},
			want: []TableChange{del("t", 3, one), ins("t", 9, one)},
		},
		{
			// Repeated update chain: insert(9) superseded within the batch,
			// only the pre-batch delete and the final insert remain.
			name: "update chain dedupes to last writer",
			in: []TableChange{
				del("t", 3, one), ins("t", 9, one), del("t", 9, one), ins("t", 10, one),
			},
			want: []TableChange{del("t", 3, one), ins("t", 10, one)},
		},
		{
			name: "delete of pre-batch row never cancels",
			in:   []TableChange{del("t", 4, one), ins("t", 8, one), del("t", 8, one)},
			want: []TableChange{del("t", 4, one)},
		},
		{
			// Same RowID on different tables must not collide.
			name: "tables are independent",
			in:   []TableChange{ins("a", 5, one), del("b", 5, one)},
			want: []TableChange{ins("a", 5, one), del("b", 5, one)},
		},
		{
			// RowIDs straddling a slab boundary coalesce like any others.
			name: "slab-boundary rows",
			in: []TableChange{
				ins("t", SlabSize-1, one), ins("t", SlabSize, one), ins("t", SlabSize+1, one),
				del("t", SlabSize, one), del("t", SlabSize-1, one),
			},
			want: []TableChange{ins("t", SlabSize+1, one)},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := CoalesceChanges(tc.in)
			if feedString(got) != feedString(tc.want) {
				t.Fatalf("coalesce mismatch:\n got: %s\nwant: %s", feedString(got), feedString(tc.want))
			}
		})
	}
}

// TestCaptureAndResurrect drives the rollback primitives across a slab
// boundary while a snapshot pins the pre-batch state: captured changes are
// never delivered, resurrected rows come back with index entries intact,
// and the pinned snapshot stays frozen throughout.
func TestCaptureAndResurrect(t *testing.T) {
	tb := NewTable("t", schema.New(
		schema.Column{Name: "k", Type: value.KindInt},
	))
	var delivered []Change
	tb.Observe(func(ch Change) { delivered = append(delivered, ch) })
	// Fill one slab exactly, so the next insert opens a new slab.
	for i := 0; i < SlabSize; i++ {
		if _, err := tb.Insert(value.Tuple{value.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tb.EnsureIndex([]int{0}); err != nil {
		t.Fatal(err)
	}
	snap := tb.Snapshot()
	preDelivered := len(delivered)

	// Captured writes: delete a row in the sealed slab, insert into a new one.
	chDel, err := tb.DeleteCapture(RowID(SlabSize - 1))
	if err != nil {
		t.Fatal(err)
	}
	id, chIns, err := tb.InsertCapture(value.Tuple{value.Int(999)})
	if err != nil {
		t.Fatal(err)
	}
	if id != RowID(SlabSize) {
		t.Fatalf("insert landed at row %d, want %d", id, SlabSize)
	}
	if chDel.Kind != ChangeDelete || chIns.Kind != ChangeInsert {
		t.Fatalf("captured kinds: %v %v", chDel.Kind, chIns.Kind)
	}
	if len(delivered) != preDelivered {
		t.Fatalf("capture leaked %d observer deliveries", len(delivered)-preDelivered)
	}

	// Roll back in reverse: re-delete the insert, resurrect the delete.
	if _, err := tb.DeleteCapture(id); err != nil {
		t.Fatal(err)
	}
	if err := tb.Resurrect(chDel.Row); err != nil {
		t.Fatal(err)
	}
	if err := tb.Resurrect(chDel.Row); err == nil {
		t.Fatal("resurrecting a live row should fail")
	}
	if len(delivered) != preDelivered {
		t.Fatalf("rollback leaked %d observer deliveries", len(delivered)-preDelivered)
	}
	if tb.Len() != SlabSize {
		t.Fatalf("live rows after rollback: %d, want %d", tb.Len(), SlabSize)
	}
	if _, ok := tb.Row(chDel.Row); !ok {
		t.Fatalf("row %d missing after resurrect", chDel.Row)
	}
	idx, ok := tb.Index([]int{0})
	if !ok {
		t.Fatal("index vanished")
	}
	if got := tb.IndexLookup(idx, value.Tuple{value.Int(int64(SlabSize - 1))}); len(got) != 1 || got[0] != chDel.Row {
		t.Fatalf("index lookup after resurrect: %v", got)
	}
	if got := tb.IndexLookup(idx, value.Tuple{value.Int(999)}); len(got) != 0 {
		t.Fatalf("rolled-back insert still indexed: %v", got)
	}
	// The pinned snapshot never saw any of it.
	if snap.Len() != SlabSize {
		t.Fatalf("snapshot live rows: %d, want %d", snap.Len(), SlabSize)
	}
	if _, ok := snap.Row(RowID(SlabSize)); ok {
		t.Fatal("snapshot sees a row inserted after it was taken")
	}
}
