package storage

import (
	"hippo/internal/value"
)

// Cursor streams live rows in RowID order without materializing them.
// Cursors are not safe for concurrent use; obtain one per consumer.
type Cursor interface {
	// Next returns the next live row, or ok=false at exhaustion. The
	// returned tuple must not be mutated.
	Next() (row value.Tuple, ok bool)
}

// slabCursor walks a sealed slab set directly — the zero-copy cursor
// behind both TableSnapshot.Cursor and Table.Cursor (which serves from
// its cached snapshot, so writers never race the walk).
type slabCursor struct {
	slabs []*slab
	si    int
	off   int
}

func (c *slabCursor) Next() (value.Tuple, bool) {
	for c.si < len(c.slabs) {
		sl := c.slabs[c.si]
		for c.off < len(sl.rows) {
			off := c.off
			c.off++
			if !sl.dead[off] {
				return sl.rows[off], true
			}
		}
		c.si++
		c.off = 0
	}
	return nil, false
}

// TableStats carries the cardinality estimates the cost-based planner
// reads: an exact live-row count and per-column distinct-count estimates.
// Distinct counts are sampled on large tables (see statsSampleRows), so
// they guide plan choice but must not be treated as exact; a zero entry
// means unknown.
type TableStats struct {
	Rows     int
	Distinct []int
}

// statsSampleRows bounds the rows scanned for distinct-count estimation,
// keeping stats maintenance O(1)-ish per table version regardless of
// table size. Sampling is the live-row prefix in RowID order, so the
// estimate is deterministic for a given table state.
const statsSampleRows = 4096

// computeStats scans up to statsSampleRows live rows from cur and
// extrapolates per-column distinct counts to live total rows.
func computeStats(cur Cursor, cols, live int) TableStats {
	st := TableStats{Rows: live, Distinct: make([]int, cols)}
	if live == 0 || cols == 0 {
		return st
	}
	sets := make([]map[string]struct{}, cols)
	colOf := make([][]int, cols)
	for i := range sets {
		sets[i] = make(map[string]struct{})
		colOf[i] = []int{i}
	}
	sampled := 0
	for sampled < statsSampleRows {
		row, ok := cur.Next()
		if !ok {
			break
		}
		sampled++
		for i := 0; i < cols && i < len(row); i++ {
			sets[i][value.KeyOf(row, colOf[i])] = struct{}{}
		}
	}
	for i, set := range sets {
		d := len(set)
		if sampled > 0 && live > sampled && d*2 > sampled {
			// The column kept producing fresh values through the whole
			// sample — extrapolate linearly. A plateaued column (few
			// distinct values) keeps its sampled count.
			d = d * live / sampled
		}
		if d > live {
			d = live
		}
		st.Distinct[i] = d
	}
	return st
}
