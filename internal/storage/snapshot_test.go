package storage

import (
	"fmt"
	"testing"

	"hippo/internal/schema"
	"hippo/internal/value"
)

func snapTable(t *testing.T, n int) *Table {
	t.Helper()
	tb := NewTable("t", schema.New(
		schema.Column{Name: "id", Type: value.KindInt},
		schema.Column{Name: "v", Type: value.KindText},
	))
	for i := 0; i < n; i++ {
		if _, err := tb.Insert(value.Tuple{value.Int(int64(i)), value.Text(fmt.Sprintf("r%d", i))}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	return tb
}

// A snapshot must be frozen: later inserts, deletes, and slab growth in
// the live table are invisible to it.
func TestSnapshotIsolation(t *testing.T) {
	const n = SlabSize + 37 // cross a slab boundary
	tb := snapTable(t, n)
	snap := tb.Snapshot()
	if snap.Len() != n || snap.Cap() != n {
		t.Fatalf("snapshot len=%d cap=%d, want %d", snap.Len(), snap.Cap(), n)
	}

	// Mutate the live table: delete an early row (first slab), delete a
	// late row (tail slab), append new rows past the snapshot.
	if err := tb.Delete(3); err != nil {
		t.Fatal(err)
	}
	if err := tb.Delete(RowID(n - 1)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < SlabSize; i++ {
		if _, err := tb.Insert(value.Tuple{value.Int(int64(n + i)), value.Text("new")}); err != nil {
			t.Fatal(err)
		}
	}

	// The snapshot still sees the original state.
	if snap.Len() != n {
		t.Fatalf("snapshot len changed to %d", snap.Len())
	}
	if _, ok := snap.Row(3); !ok {
		t.Fatal("snapshot lost row 3 after live delete")
	}
	if _, ok := snap.Row(RowID(n - 1)); !ok {
		t.Fatal("snapshot lost tail row after live delete")
	}
	if _, ok := snap.Row(RowID(n)); ok {
		t.Fatal("snapshot sees a row inserted after it was taken")
	}
	rows := snap.Rows()
	if len(rows) != n {
		t.Fatalf("snapshot Rows()=%d, want %d", len(rows), n)
	}
	// The live table sees the new state.
	if tb.Len() != n-2+SlabSize {
		t.Fatalf("live len=%d", tb.Len())
	}
	if _, ok := tb.Row(3); ok {
		t.Fatal("live table still has deleted row 3")
	}
}

// Snapshots of an unchanged table are shared, and copy-on-write touches
// only the dirty slabs.
func TestSnapshotSharing(t *testing.T) {
	const n = 3*SlabSize + 10
	tb := snapTable(t, n)
	s1 := tb.Snapshot()
	if s2 := tb.Snapshot(); s2 != s1 {
		t.Fatal("snapshot of unchanged table not shared")
	}
	// One delete in slab 1: only that slab should be copied.
	if err := tb.Delete(RowID(SlabSize + 5)); err != nil {
		t.Fatal(err)
	}
	s3 := tb.Snapshot()
	if s3 == s1 {
		t.Fatal("snapshot not refreshed after mutation")
	}
	if got := s1.SharedSlabs(s3); got != s1.NumSlabs()-1 {
		t.Fatalf("shared slabs=%d, want %d (only the dirty slab copied)", got, s1.NumSlabs()-1)
	}
	if _, ok := s1.Row(RowID(SlabSize + 5)); !ok {
		t.Fatal("old snapshot lost the deleted row")
	}
	if _, ok := s3.Row(RowID(SlabSize + 5)); ok {
		t.Fatal("new snapshot still has the deleted row")
	}
}

// The snapshot's lazily built full-row index must resolve exactly the
// snapshot's rows.
func TestSnapshotFullRowIndex(t *testing.T) {
	tb := snapTable(t, 20)
	if err := tb.Delete(7); err != nil {
		t.Fatal(err)
	}
	snap := tb.Snapshot()
	// Mutate after snapshotting; the index must reflect the snapshot.
	if _, err := tb.Insert(value.Tuple{value.Int(99), value.Text("r99")}); err != nil {
		t.Fatal(err)
	}
	idx, err := snap.FullRowIndex()
	if err != nil {
		t.Fatal(err)
	}
	ids := snap.IndexLookup(idx, value.Tuple{value.Int(5), value.Text("r5")})
	if len(ids) != 1 || ids[0] != 5 {
		t.Fatalf("lookup r5 = %v, want [5]", ids)
	}
	if ids := snap.IndexLookup(idx, value.Tuple{value.Int(7), value.Text("r7")}); len(ids) != 0 {
		t.Fatalf("deleted row resolvable in snapshot index: %v", ids)
	}
	if ids := snap.IndexLookup(idx, value.Tuple{value.Int(99), value.Text("r99")}); len(ids) != 0 {
		t.Fatalf("post-snapshot row resolvable in snapshot index: %v", ids)
	}
	if got := snap.Indexes(); len(got) != 1 || got[0] != idx {
		t.Fatalf("Indexes() = %v after build", got)
	}
}

// Concurrent snapshot readers during live writes must be race-free (run
// under -race) and always observe their frozen state.
func TestSnapshotConcurrentReaders(t *testing.T) {
	tb := snapTable(t, SlabSize)
	snap := tb.Snapshot()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2*SlabSize; i++ {
			tb.Insert(value.Tuple{value.Int(int64(1000 + i)), value.Text("w")})
			if i%3 == 0 {
				tb.Delete(RowID(i % SlabSize))
			}
		}
	}()
	for i := 0; i < 200; i++ {
		if snap.Len() != SlabSize {
			t.Errorf("snapshot len drifted: %d", snap.Len())
			break
		}
		if rows := snap.Rows(); len(rows) != SlabSize {
			t.Errorf("snapshot rows drifted: %d", len(rows))
			break
		}
	}
	<-done
}
