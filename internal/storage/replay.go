package storage

import (
	"fmt"

	"hippo/internal/schema"
	"hippo/internal/value"
)

// WAL-recovery entry points. RowIDs are the conflict hypergraph's vertex
// identity, so recovery must reproduce them bit-for-bit: a checkpoint
// restores the exact slot layout (including tombstones), and replaying a
// logged batch re-applies each change at its original RowID. None of these
// paths emit change-feed events — recovery runs before any listener is
// attached, and the post-replay full conflict detection rebuilds every
// derived structure from the restored tables.

// ReplayInsert re-applies a logged insert at its original RowID. The id
// must be at or past the table's allocation cursor; intervening slots —
// rows that were inserted and deleted within the same logged batch and
// coalesced out of the record — are recreated as tombstones so later
// RowIDs keep their positions. The tuple is stored as logged (it was
// coerced before the original insert); only arity is validated.
func (t *Table) ReplayInsert(id RowID, row value.Tuple) error {
	t.emitMu.Lock()
	defer t.emitMu.Unlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(id) < t.nrows {
		return fmt.Errorf("storage: table %s: replay insert at row %d behind cursor %d",
			t.name, id, t.nrows)
	}
	if len(row) != t.schema.Len() {
		return fmt.Errorf("storage: table %s: replay insert arity %d, want %d",
			t.name, len(row), t.schema.Len())
	}
	for t.nrows < int(id) {
		t.appendSlotLocked(nil, true)
	}
	t.appendSlotLocked(row, false)
	t.version++
	for _, idx := range t.indexes {
		idx.add(row, id)
	}
	return nil
}

// ReplayDelete re-applies a logged delete without emitting a change-feed
// event.
func (t *Table) ReplayDelete(id RowID) error {
	_, err := t.DeleteCapture(id)
	return err
}

// appendSlotLocked appends one slot (live row or tombstone) at the
// allocation cursor. The caller holds t.mu and bumps version itself.
func (t *Table) appendSlotLocked(row value.Tuple, dead bool) {
	si := t.nrows >> slabShift
	if si == len(t.slabs) {
		t.slabs = append(t.slabs, newSlab())
	}
	s := t.writableSlab(si)
	s.rows = append(s.rows, row)
	s.dead = append(s.dead, dead)
	t.nrows++
	if !dead {
		t.live++
	}
}

// RestoreTable reconstructs a table from a checkpointed slot layout: one
// entry per allocated RowID, with dead marking tombstones (whose row entry
// is ignored). Live rows are stored as given — checkpoints hold
// already-coerced values.
func RestoreTable(name string, s schema.Schema, rows []value.Tuple, dead []bool) (*Table, error) {
	if len(rows) != len(dead) {
		return nil, fmt.Errorf("storage: restore %s: %d rows vs %d liveness slots",
			name, len(rows), len(dead))
	}
	t := NewTable(name, s)
	for i, row := range rows {
		if dead[i] {
			t.appendSlotLocked(nil, true)
			continue
		}
		if len(row) != t.schema.Len() {
			return nil, fmt.Errorf("storage: restore %s: row %d arity %d, want %d",
				name, i, len(row), t.schema.Len())
		}
		t.appendSlotLocked(row, false)
	}
	t.version++
	return t, nil
}
