package storage

import (
	"errors"
	"testing"
	"testing/quick"

	"hippo/internal/schema"
	"hippo/internal/value"
)

func empTable(t *testing.T) *Table {
	t.Helper()
	s := schema.New(
		schema.Column{Name: "id", Type: value.KindInt},
		schema.Column{Name: "name", Type: value.KindText},
		schema.Column{Name: "salary", Type: value.KindFloat},
	)
	return NewTable("emp", s)
}

func TestInsertAndRow(t *testing.T) {
	tb := empTable(t)
	id, err := tb.Insert(value.Tuple{value.Int(1), value.Text("ann"), value.Int(100)})
	if err != nil {
		t.Fatal(err)
	}
	if id != 0 {
		t.Errorf("first RowID = %d", id)
	}
	row, ok := tb.Row(id)
	if !ok {
		t.Fatal("row not found")
	}
	// Int(100) coerced to FLOAT column.
	if row[2].K != value.KindFloat || row[2].F != 100 {
		t.Errorf("salary not coerced: %v", row[2])
	}
	if tb.Len() != 1 || tb.Cap() != 1 {
		t.Errorf("Len/Cap = %d/%d", tb.Len(), tb.Cap())
	}
	if tb.Name() != "emp" {
		t.Errorf("Name = %q", tb.Name())
	}
	if tb.Schema().Columns[0].Qualifier != "emp" {
		t.Error("schema not qualified by table name")
	}
}

func TestInsertErrors(t *testing.T) {
	tb := empTable(t)
	if _, err := tb.Insert(value.Tuple{value.Int(1)}); err == nil {
		t.Error("arity mismatch should fail")
	}
	if _, err := tb.Insert(value.Tuple{value.Text("x"), value.Text("y"), value.Float(1)}); err == nil {
		t.Error("type mismatch should fail")
	}
}

func TestDeleteTombstones(t *testing.T) {
	tb := empTable(t)
	id0, _ := tb.Insert(value.Tuple{value.Int(1), value.Text("a"), value.Float(1)})
	id1, _ := tb.Insert(value.Tuple{value.Int(2), value.Text("b"), value.Float(2)})
	if err := tb.Delete(id0); err != nil {
		t.Fatal(err)
	}
	if _, ok := tb.Row(id0); ok {
		t.Error("deleted row still visible")
	}
	if row, ok := tb.Row(id1); !ok || row[0] != value.Int(2) {
		t.Error("surviving row renumbered or lost")
	}
	if tb.Len() != 1 || tb.Cap() != 2 {
		t.Errorf("Len/Cap = %d/%d after delete", tb.Len(), tb.Cap())
	}
	if err := tb.Delete(id0); err == nil {
		t.Error("double delete should fail")
	}
	if err := tb.Delete(99); err == nil {
		t.Error("out-of-range delete should fail")
	}
}

func TestScan(t *testing.T) {
	tb := empTable(t)
	for i := 0; i < 5; i++ {
		tb.Insert(value.Tuple{value.Int(int64(i)), value.Text("x"), value.Float(0)})
	}
	tb.Delete(2)
	var seen []RowID
	err := tb.Scan(func(id RowID, row value.Tuple) error {
		seen = append(seen, id)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []RowID{0, 1, 3, 4}
	if len(seen) != len(want) {
		t.Fatalf("scan saw %v", seen)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("scan order %v, want %v", seen, want)
		}
	}
	sentinel := errors.New("stop")
	err = tb.Scan(func(id RowID, row value.Tuple) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Error("scan should propagate fn error")
	}
	if rows := tb.Rows(); len(rows) != 4 {
		t.Errorf("Rows() = %d rows", len(rows))
	}
}

func TestIndexLookup(t *testing.T) {
	tb := empTable(t)
	tb.Insert(value.Tuple{value.Int(1), value.Text("ann"), value.Float(10)})
	tb.Insert(value.Tuple{value.Int(1), value.Text("bob"), value.Float(20)})
	tb.Insert(value.Tuple{value.Int(2), value.Text("cat"), value.Float(30)})

	idx, err := tb.EnsureIndex([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	ids := idx.Lookup(value.Tuple{value.Int(1)})
	if len(ids) != 2 {
		t.Errorf("Lookup(1) = %v", ids)
	}
	if got := idx.Lookup(value.Tuple{value.Int(99)}); len(got) != 0 {
		t.Errorf("Lookup(99) = %v", got)
	}
	if idx.Distinct() != 2 {
		t.Errorf("Distinct = %d", idx.Distinct())
	}

	// Index maintained on insert and delete.
	id3, _ := tb.Insert(value.Tuple{value.Int(1), value.Text("dee"), value.Float(40)})
	if len(idx.Lookup(value.Tuple{value.Int(1)})) != 3 {
		t.Error("index not maintained on insert")
	}
	tb.Delete(id3)
	if len(idx.Lookup(value.Tuple{value.Int(1)})) != 2 {
		t.Error("index not maintained on delete")
	}

	// Full-row index via empty column list.
	full, err := tb.EnsureIndex(nil)
	if err != nil {
		t.Fatal(err)
	}
	row, _ := tb.Row(0)
	if got := full.LookupRow(row); len(got) != 1 || got[0] != 0 {
		t.Errorf("full-row lookup = %v", got)
	}

	// EnsureIndex is idempotent.
	idx2, _ := tb.EnsureIndex([]int{0})
	if idx2 != idx {
		t.Error("EnsureIndex should return the existing index")
	}
	if _, err := tb.EnsureIndex([]int{9}); err == nil {
		t.Error("out-of-range index column should fail")
	}
}

func TestIndexGroups(t *testing.T) {
	tb := empTable(t)
	for i := 0; i < 6; i++ {
		tb.Insert(value.Tuple{value.Int(int64(i % 2)), value.Text("x"), value.Float(0)})
	}
	idx, _ := tb.EnsureIndex([]int{0})
	total := 0
	err := idx.Groups(func(ids []RowID) error {
		total += len(ids)
		if len(ids) != 3 {
			t.Errorf("group size %d, want 3", len(ids))
		}
		return nil
	})
	if err != nil || total != 6 {
		t.Errorf("Groups total=%d err=%v", total, err)
	}
	sentinel := errors.New("stop")
	if err := idx.Groups(func([]RowID) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Error("Groups should propagate error")
	}
}

// Property: after a random sequence of inserts, index lookups agree with a
// linear scan.
func TestIndexAgreesWithScanProperty(t *testing.T) {
	prop := func(keys []int64) bool {
		if len(keys) > 200 {
			keys = keys[:200]
		}
		tb := NewTable("t", schema.New(schema.Column{Name: "k", Type: value.KindInt}))
		for _, k := range keys {
			if _, err := tb.Insert(value.Tuple{value.Int(k % 10)}); err != nil {
				return false
			}
		}
		idx, err := tb.EnsureIndex([]int{0})
		if err != nil {
			return false
		}
		for probe := int64(0); probe < 10; probe++ {
			want := 0
			tb.Scan(func(id RowID, row value.Tuple) error {
				if row[0].I == probe || row[0].I == probe-10 {
					want++
				}
				return nil
			})
			got := len(idx.Lookup(value.Tuple{value.Int(probe)})) +
				len(idx.Lookup(value.Tuple{value.Int(probe - 10)}))
			if probe == 0 {
				got = len(idx.Lookup(value.Tuple{value.Int(0)}))
				want = 0
				tb.Scan(func(id RowID, row value.Tuple) error {
					if row[0].I == 0 {
						want++
					}
					return nil
				})
			}
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
