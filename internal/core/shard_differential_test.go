package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"hippo/internal/constraint"
	"hippo/internal/engine"
	"hippo/internal/oracle"
	"hippo/internal/value"
)

// shardDiffQueries covers the SJUD class: selection, join, union,
// difference.
var shardDiffQueries = []string{
	"SELECT * FROM r",
	"SELECT * FROM r WHERE a <= 1",
	"SELECT * FROM r WHERE b = 0 UNION SELECT * FROM r WHERE b = 1",
	"SELECT * FROM r EXCEPT SELECT * FROM r WHERE a = 0",
	"SELECT * FROM r, s WHERE r.a = s.a",
}

// fpMultiset serializes the multiset of component fingerprints of a
// system's hypergraph. Component ids differ between shard layouts (they
// encode the owning shard); fingerprints are pure functions of each
// component's edge set, so the multisets must coincide exactly.
func fpMultiset(s *System) string {
	g := s.Hypergraph()
	if g == nil {
		return ""
	}
	comps := g.Components()
	fps := make([]string, len(comps))
	for i, c := range comps {
		fps[i] = fmt.Sprintf("%016x", c.FP)
	}
	sort.Strings(fps)
	return fmt.Sprint(fps)
}

func answersOf(t *testing.T, s *System, q string, opts Options) ([]string, *Stats) {
	t.Helper()
	res, st, err := s.ConsistentQuery(q, opts)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	return rowStrings(res.Rows), st
}

func tupleStrings(rows []value.Tuple) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = value.TupleString(r)
	}
	sort.Strings(out)
	return out
}

// TestShardedDifferentialSJUD drives identical randomized SJUD instances
// with interleaved inserts and deletes into an unsharded system (K=1), a
// sharded system (K in {2,3,4}), the sharded system's global-certification
// path (no component decomposition, no cache), and — on small enough
// instances — the independent subset-search oracle, asserting at every
// checkpoint that:
//
//   - consistent answers agree four ways for every query shape;
//   - the component-fingerprint multisets of the sharded and unsharded
//     hypergraphs coincide (shard layout must not change edge-set
//     semantics);
//   - the verdict cache is hit/miss-sound: an immediate re-run misses
//     nothing and returns the same answers.
func TestShardedDifferentialSJUD(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	var sawMigration bool
	const instances = 9
	for inst := 0; inst < instances; inst++ {
		k := 2 + inst%3
		t.Run(fmt.Sprintf("inst=%d/k=%d", inst, k), func(t *testing.T) {
			dbU, dbS := engine.New(), engine.New()
			// The exclusion denial links r and s rows sharing b across any a
			// value, so inserts regularly merge components born in different
			// shards — the cross-shard migration path runs under this test.
			excl, err := constraint.ParseDenial("r x, s y WHERE x.b = y.b AND x.a <> y.a")
			if err != nil {
				t.Fatal(err)
			}
			cs := []constraint.Constraint{
				constraint.FD{Rel: "r", LHS: []string{"a"}, RHS: []string{"b"}},
				constraint.Key{Rel: "s", Cols: []string{"a"}},
				excl,
			}
			for _, db := range []*engine.DB{dbU, dbS} {
				mustExec(db, "CREATE TABLE r (a INT, b INT)")
				mustExec(db, "CREATE TABLE s (a INT, b INT)")
			}
			sysU := NewSystem(dbU, cs)
			defer sysU.Close()
			sysS := NewSystemShards(dbS, cs, k)
			defer sysS.Close()
			if got := sysS.Shards(); got != k {
				t.Fatalf("Shards() = %d, want %d", got, k)
			}

			const steps = 60
			for step := 1; step <= steps; step++ {
				var stmt string
				switch rng.Intn(4) {
				case 0, 1:
					stmt = fmt.Sprintf("INSERT INTO r VALUES (%d, %d)", rng.Intn(6), rng.Intn(3))
				case 2:
					stmt = fmt.Sprintf("INSERT INTO s VALUES (%d, %d)", rng.Intn(6), rng.Intn(3))
				default:
					if rng.Intn(2) == 0 {
						stmt = fmt.Sprintf("DELETE FROM r WHERE a = %d AND b = %d", rng.Intn(6), rng.Intn(3))
					} else {
						stmt = fmt.Sprintf("DELETE FROM s WHERE a = %d", rng.Intn(6))
					}
				}
				mustExec(dbU, stmt)
				mustExec(dbS, stmt)
				if step%6 != 0 {
					continue
				}

				for _, q := range shardDiffQueries {
					ansU, _ := answersOf(t, sysU, q, Options{})
					ansS, _ := answersOf(t, sysS, q, Options{})
					if d := diffStrings(ansU, ansS); d != "" {
						t.Fatalf("step %d, %q: sharded answers diverged from unsharded: %s", step, q, d)
					}
					ansG, _ := answersOf(t, sysS, q, Options{GlobalCertification: true})
					if d := diffStrings(ansU, ansG); d != "" {
						t.Fatalf("step %d, %q: global-certification answers diverged: %s", step, q, d)
					}

					// Hit/miss soundness: the immediate re-run is served
					// against the same view with no intervening writes, so
					// every candidate must hit and the answers must repeat.
					ans2, st2 := answersOf(t, sysS, q, Options{})
					if d := diffStrings(ansS, ans2); d != "" {
						t.Fatalf("step %d, %q: cached re-run changed answers: %s", step, q, d)
					}
					if st2.CacheMisses != 0 {
						t.Fatalf("step %d, %q: re-run missed %d verdicts, want pure hits", step, q, st2.CacheMisses)
					}
					if st2.Candidates > 0 && st2.CacheHits != int64(st2.Candidates) {
						t.Fatalf("step %d, %q: re-run hit %d of %d candidates", step, q, st2.CacheHits, st2.Candidates)
					}
				}

				if fu, fs := fpMultiset(sysU), fpMultiset(sysS); fu != fs {
					t.Fatalf("step %d: component fingerprint multisets diverged:\nunsharded: %s\nsharded:   %s", step, fu, fs)
				}

				// Ground truth on instances small enough to enumerate.
				o := &oracle.Oracle{DB: dbU, Constraints: cs, MaxConflicting: 10}
				if _, err := o.Repairs(); err == nil {
					for _, q := range shardDiffQueries {
						want, err := o.ConsistentAnswers(q)
						if err != nil {
							t.Fatalf("step %d: oracle %q: %v", step, q, err)
						}
						ansS, _ := answersOf(t, sysS, q, Options{})
						// Consistent answers are set-semantic; the fast path
						// may emit duplicates a SELECT * would (bag
						// semantics), so compare as sets.
						if got, wantS := dedup(ansS), dedup(tupleStrings(want)); fmt.Sprint(got) != fmt.Sprint(wantS) {
							t.Fatalf("step %d, %q: sharded answers %v != oracle %v", step, q, got, wantS)
						}
					}
				}
			}

			// The sharded drain must have exercised the parallel fold, not
			// fallen back to full rebuilds at every step.
			m := sysS.Maintenance()
			if m.FullRebuilds != 1 {
				t.Errorf("sharded system ran %d full rebuilds, want 1 (the initial analysis)", m.FullRebuilds)
			}
			if m.Migrations > 0 {
				sawMigration = true
			}
		})
	}
	if !sawMigration {
		t.Error("no instance exercised a cross-shard migration; the workload no longer covers merges")
	}
}

func dedup(sorted []string) []string {
	out := sorted[:0:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// TestShardedK1StatsIdentity pins the bit-identity acceptance criterion:
// the same scripted workload through NewSystem and NewSystemShards(…, 1)
// yields identical answers, identical component ids and fingerprints, and
// identical verdict-cache counters.
func TestShardedK1StatsIdentity(t *testing.T) {
	build := func(mk func(db *engine.DB, cs []constraint.Constraint) *System) (*System, *engine.DB) {
		db := engine.New()
		mustExec(db, "CREATE TABLE emp (id INT, salary INT)")
		cs := []constraint.Constraint{constraint.FD{Rel: "emp", LHS: []string{"id"}, RHS: []string{"salary"}}}
		return mk(db, cs), db
	}
	sysA, dbA := build(func(db *engine.DB, cs []constraint.Constraint) *System { return NewSystem(db, cs) })
	defer sysA.Close()
	sysB, dbB := build(func(db *engine.DB, cs []constraint.Constraint) *System { return NewSystemShards(db, cs, 1) })
	defer sysB.Close()

	rng := rand.New(rand.NewSource(5))
	for step := 0; step < 120; step++ {
		var stmt string
		if rng.Intn(3) < 2 {
			stmt = fmt.Sprintf("INSERT INTO emp VALUES (%d, %d)", rng.Intn(8), rng.Intn(4))
		} else {
			stmt = fmt.Sprintf("DELETE FROM emp WHERE id = %d", rng.Intn(8))
		}
		mustExec(dbA, stmt)
		mustExec(dbB, stmt)
		if step%10 != 9 {
			continue
		}
		ansA, stA := answersOf(t, sysA, "SELECT * FROM emp", Options{})
		ansB, stB := answersOf(t, sysB, "SELECT * FROM emp", Options{})
		if d := diffStrings(ansA, ansB); d != "" {
			t.Fatalf("step %d: answers differ: %s", step, d)
		}
		if stA.CacheHits != stB.CacheHits || stA.CacheMisses != stB.CacheMisses {
			t.Fatalf("step %d: cache counters differ: hits %d/%d misses %d/%d",
				step, stA.CacheHits, stB.CacheHits, stA.CacheMisses, stB.CacheMisses)
		}
		// Component identity, not just partition equivalence: ids and
		// fingerprints must be equal vertex by vertex.
		ga, gb := sysA.Hypergraph(), sysB.Hypergraph()
		for _, v := range ga.ConflictingVertices() {
			ra, _ := ga.ComponentOf(v)
			rb, ok := gb.ComponentOf(v)
			if !ok || ra != rb {
				t.Fatalf("step %d: vertex %v component ref %v vs %v — K=1 must be bit-identical", step, v, ra, rb)
			}
		}
		ma, mb := sysA.Maintenance(), sysB.Maintenance()
		if ma.Cache != mb.Cache {
			t.Fatalf("step %d: published cache stats differ:\nA: %+v\nB: %+v", step, ma.Cache, mb.Cache)
		}
	}
}
