package core

import (
	"errors"
	"fmt"
	"sort"
	"testing"

	"hippo/internal/constraint"
	"hippo/internal/engine"
	"hippo/internal/storage"
	"hippo/internal/value"
	"hippo/internal/wal"
)

// scriptOp is one atomic unit of the deterministic crash-grid workload:
// a single SQL statement, an atomic batch, a constraint declaration, or a
// checkpoint (durable runs only — the reference run skips it).
type scriptOp struct {
	kind  string // "sql", "batch", "constraint", "checkpoint"
	sqls  []string
	c     constraint.Constraint
	state bool // the op changes database state (checkpoints do not)
}

// crashScript covers every logged record kind, transient insert+delete
// pairs that coalesce out of the WAL, a mid-stream checkpoint, and
// post-checkpoint writes.
func crashScript() []scriptOp {
	return []scriptOp{
		{kind: "sql", sqls: []string{"CREATE TABLE emp (id INT, salary INT)"}, state: true},
		{kind: "constraint", c: constraint.FD{Rel: "emp", LHS: []string{"id"}, RHS: []string{"salary"}}, state: true},
		{kind: "sql", sqls: []string{"INSERT INTO emp VALUES (1,100), (1,200), (2,150)"}, state: true},
		{kind: "batch", sqls: []string{
			"INSERT INTO emp VALUES (3,300)",
			"INSERT INTO emp VALUES (3,310)",
			"DELETE FROM emp WHERE id = 2",
		}, state: true},
		{kind: "sql", sqls: []string{"CREATE TABLE dept (d INT, dname TEXT)"}, state: true},
		{kind: "batch", sqls: []string{
			"INSERT INTO dept VALUES (1,'eng')",
			"INSERT INTO emp VALUES (4,400)", // transient: coalesced away
			"DELETE FROM emp WHERE id = 4",
			"INSERT INTO emp VALUES (2,175)",
		}, state: true},
		{kind: "checkpoint"},
		{kind: "sql", sqls: []string{"INSERT INTO emp VALUES (5,500)"}, state: true},
		{kind: "batch", sqls: []string{
			"DELETE FROM emp WHERE id = 1",
			"INSERT INTO emp VALUES (6,600)",
			"INSERT INTO emp VALUES (6,650)",
		}, state: true},
		{kind: "sql", sqls: []string{"CREATE INDEX emp_ix ON emp (id)"}, state: true},
		{kind: "sql", sqls: []string{"INSERT INTO emp VALUES (7,700)"}, state: true},
	}
}

// applyOp executes one op; durable selects whether checkpoint ops run.
func applyOp(sys *System, op scriptOp, durable bool) error {
	switch op.kind {
	case "sql":
		for _, q := range op.sqls {
			if _, _, err := sys.DB().Exec(q); err != nil {
				return err
			}
		}
		return nil
	case "batch":
		_, err := sys.DB().ExecBatch(op.sqls)
		return err
	case "constraint":
		return sys.AddConstraint(op.c)
	case "checkpoint":
		if durable {
			return sys.Checkpoint()
		}
		return nil
	default:
		return fmt.Errorf("unknown op kind %q", op.kind)
	}
}

// dbState captures everything recovery must reproduce: per-table live rows
// at their exact RowIDs, consistent answers, and the conflict hypergraph's
// component fingerprints. Slot-count (Cap) is deliberately excluded: a
// transient row at the very tail of a batch leaves an allocated tombstone
// in the reference run that the coalesced log never records — semantically
// invisible, since tombstones hold no tuple and no hypergraph vertex.
type dbState struct {
	tables  map[string][]string
	answers map[string][]string
	fps     []uint64
}

var crashQueries = []string{
	"SELECT * FROM emp",
	"SELECT * FROM emp WHERE salary > 150",
}

func captureState(t *testing.T, sys *System) dbState {
	t.Helper()
	if _, err := sys.Analyze(); err != nil {
		t.Fatal(err)
	}
	st := dbState{tables: map[string][]string{}, answers: map[string][]string{}}
	for _, name := range sys.DB().TableNames() {
		tab, err := sys.DB().Table(name)
		if err != nil {
			t.Fatal(err)
		}
		var rows []string
		tab.Scan(func(id storage.RowID, row value.Tuple) error {
			rows = append(rows, fmt.Sprintf("%d:%s", id, row.Key()))
			return nil
		})
		st.tables[name] = rows
	}
	for _, q := range crashQueries {
		if _, err := sys.DB().Table("emp"); err != nil {
			break // emp not created yet at this prefix
		}
		res, _, err := sys.ConsistentQuery(q, Options{})
		if err != nil {
			t.Fatalf("query %q: %v", q, err)
		}
		keys := make([]string, 0, len(res.Rows))
		for _, r := range res.Rows {
			keys = append(keys, r.Key())
		}
		sort.Strings(keys)
		st.answers[q] = keys
	}
	for _, c := range sys.Hypergraph().Components() {
		st.fps = append(st.fps, c.FP)
	}
	sort.Slice(st.fps, func(i, j int) bool { return st.fps[i] < st.fps[j] })
	return st
}

func statesEqual(a, b dbState) string {
	if len(a.tables) != len(b.tables) {
		return fmt.Sprintf("table count %d vs %d", len(a.tables), len(b.tables))
	}
	for name, rows := range a.tables {
		other, ok := b.tables[name]
		if !ok {
			return "missing table " + name
		}
		if fmt.Sprint(rows) != fmt.Sprint(other) {
			return fmt.Sprintf("table %s rows %v vs %v", name, rows, other)
		}
	}
	for q, keys := range a.answers {
		if fmt.Sprint(keys) != fmt.Sprint(b.answers[q]) {
			return fmt.Sprintf("answers to %q: %v vs %v", q, keys, b.answers[q])
		}
	}
	if fmt.Sprint(a.fps) != fmt.Sprint(b.fps) {
		return fmt.Sprintf("component fingerprints %v vs %v", a.fps, b.fps)
	}
	return ""
}

// TestRecoveryCrashPointGrid injects a crash at every byte position of the
// durable write stream — cutting records mid-length-prefix, mid-body, at
// boundaries, and inside checkpoint temporaries — and asserts that
// reopening always recovers exactly the state after the last fully
// committed operation: recovered tables (RowID-exact), conflict-component
// fingerprints, and consistent answers all equal the never-crashed
// reference run's prefix, and no partial batch ever survives.
func TestRecoveryCrashPointGrid(t *testing.T) {
	ops := crashScript()

	// Reference run: the same script applied in memory, state captured
	// after every op.
	ref := make([]dbState, 0, len(ops)+1)
	refSys := NewSystem(engine.New(), nil)
	ref = append(ref, captureState(t, refSys))
	for _, op := range ops {
		if err := applyOp(refSys, op, false); err != nil {
			t.Fatalf("reference op %+v: %v", op, err)
		}
		ref = append(ref, captureState(t, refSys))
	}

	// Probe run: learn the total durable write volume.
	probe := wal.NewCrashInjector(1 << 40)
	probeSys, err := OpenDurable(DurableOptions{
		Dir: t.TempDir(), NoSync: true, CheckpointBytes: -1, WrapSyncer: probe.Wrap,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		if err := applyOp(probeSys, op, true); err != nil {
			t.Fatalf("probe op %+v: %v", op, err)
		}
	}
	probeSys.Close()
	total := probe.Written()
	if total < 512 {
		t.Fatalf("suspiciously small write volume %d", total)
	}

	step := int64(1)
	if testing.Short() {
		step = 17
	}
	for budget := int64(0); budget <= total; budget += step {
		ci := wal.NewCrashInjector(budget)
		dir := t.TempDir()
		applied := 0
		sys, err := OpenDurable(DurableOptions{
			Dir: dir, NoSync: true, CheckpointBytes: -1, WrapSyncer: ci.Wrap,
		})
		if err == nil {
			for _, op := range ops {
				if err := applyOp(sys, op, true); err != nil {
					break
				}
				if op.state {
					applied++
				}
			}
			sys.Close()
		} else if !errors.Is(err, wal.ErrInjectedCrash) {
			t.Fatalf("budget %d: open failed with %v", budget, err)
		}

		recovered, err := OpenDurable(DurableOptions{Dir: dir, NoSync: true, CheckpointBytes: -1})
		if err != nil {
			t.Fatalf("budget %d: recovery failed: %v", budget, err)
		}
		// applied counts state-changing ops; map to the reference index
		// (which includes non-state checkpoint ops in its prefix order).
		want := ref[refIndex(ops, applied)]
		if diff := statesEqual(want, captureState(t, recovered)); diff != "" {
			t.Fatalf("budget %d (applied %d): recovered state diverged: %s", budget, applied, diff)
		}
		recovered.Close()
	}
}

// refIndex maps a count of completed state-changing ops to the reference
// state index (reference states are captured after every op, including
// non-state ops).
func refIndex(ops []scriptOp, applied int) int {
	n := 0
	for i, op := range ops {
		if op.state {
			n++
		}
		if n == applied && applied > 0 {
			return i + 1
		}
	}
	if applied == 0 {
		return 0
	}
	return len(ops)
}

// TestRecoveryRolledBackBatchIsInvisible pins the rollback contract the
// WAL exposes: a batch that fails mid-way — after real inserts AND a real
// delete whose rollback path runs storage.Resurrect — must emit zero WAL
// records, zero change-feed deltas, and zero verdict-cache invalidations,
// and must not survive a restart.
func TestRecoveryRolledBackBatchIsInvisible(t *testing.T) {
	dir := t.TempDir()
	sys, err := OpenDurable(DurableOptions{Dir: dir, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	db := sys.DB()
	for _, q := range []string{
		"CREATE TABLE emp (id INT, salary INT)",
		"INSERT INTO emp VALUES (1,100), (1,200), (2,150)",
	} {
		if _, _, err := db.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.AddConstraint(constraint.FD{Rel: "emp", LHS: []string{"id"}, RHS: []string{"salary"}}); err != nil {
		t.Fatal(err)
	}
	warm, _, err := sys.ConsistentQuery("SELECT * FROM emp", Options{Tier: TierForceProver})
	if err != nil {
		t.Fatal(err)
	}

	walBefore := sys.WALBytes()
	maintBefore := sys.Maintenance()
	cacheBefore := sys.CacheStats()

	_, err = db.ExecBatch([]string{
		"INSERT INTO emp VALUES (9,900)",
		"DELETE FROM emp WHERE id = 2", // rollback must Resurrect this row
		"INSERT INTO emp VALUES (1)",   // arity error fails the batch
	})
	var be *engine.BatchError
	if !errors.As(err, &be) || be.Index != 2 {
		t.Fatalf("got %v, want BatchError at statement 2", err)
	}

	if got := sys.WALBytes(); got != walBefore {
		t.Fatalf("rolled-back batch wrote %d WAL bytes", got-walBefore)
	}
	res, _, err := sys.ConsistentQuery("SELECT * FROM emp", Options{Tier: TierForceProver})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(warm.Rows) {
		t.Fatalf("answers changed after rollback: %d vs %d", len(res.Rows), len(warm.Rows))
	}
	m := sys.Maintenance().Sub(maintBefore)
	if m.DeltasApplied != 0 {
		t.Fatalf("rolled-back batch leaked %d deltas into the hypergraph", m.DeltasApplied)
	}
	c := sys.CacheStats().Sub(cacheBefore)
	if c.Invalidated != 0 {
		t.Fatalf("rolled-back batch invalidated %d verdict-cache entries", c.Invalidated)
	}
	if c.Hits == 0 {
		t.Fatal("post-rollback query should have been served from the verdict cache")
	}
	// The resurrected row is still there, under its original RowID.
	tab, err := db.Table("emp")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	tab.Scan(func(id storage.RowID, row value.Tuple) error {
		if value.Equal(row[0], value.Int(2)) {
			found = true
		}
		return nil
	})
	if !found {
		t.Fatal("rollback did not resurrect the deleted row")
	}
	before := captureState(t, sys)
	sys.Close()

	// And none of it survives a restart.
	recovered, err := OpenDurable(DurableOptions{Dir: dir, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if diff := statesEqual(before, captureState(t, recovered)); diff != "" {
		t.Fatalf("state diverged across restart: %s", diff)
	}
}
