package core

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"time"

	"hippo/internal/constraint"
	"hippo/internal/engine"
	"hippo/internal/schema"
	"hippo/internal/sqlparse"
	"hippo/internal/storage"
	"hippo/internal/value"
	"hippo/internal/wal"
)

// Durable mode: the system's writes flow through a write-ahead log and
// periodic checkpoints under a directory, and OpenDurable reconstructs the
// exact pre-crash state — tables with their RowID layout (the hypergraph's
// vertex identity), declared indexes, and constraints — before the first
// query view is published.
//
// Recovery protocol, in order:
//
//  1. the newest intact checkpoint restores the slot-exact tables,
//     index definitions, and constraint set;
//  2. the WAL tail (segments at or after the checkpoint sequence) replays
//     committed batches at their original RowIDs and re-executes DDL;
//     a torn trailing record — a crash mid-append — is truncated away,
//     while genuine corruption aborts with wal.ErrCorrupt;
//  3. one full conflict detection rebuilds the hypergraph, components,
//     and tuple indexes from the restored tables (derived state is never
//     logged — it is recomputed, so it cannot diverge from the data);
//  4. the commit log is attached and the first view is published.
//
// Because batches are logged coalesced and fsynced while the engine still
// holds the write sequencer, a crash at any byte of the log recovers to a
// committed-batch boundary: no batch prefix ever survives.

// DurableOptions configure OpenDurable.
type DurableOptions struct {
	// Dir is the durability directory (created if absent).
	Dir string
	// NoSync skips per-commit fsync: commits survive process crashes but
	// not OS crashes.
	NoSync bool
	// CheckpointBytes is the live-segment size past which MaybeCheckpoint
	// rotates the log and writes a checkpoint. 0 selects
	// DefaultCheckpointBytes; negative disables automatic checkpoints.
	CheckpointBytes int64
	// WrapSyncer injects a fault wrapper around every durable file write
	// (crash testing); see wal.Options.WrapSyncer.
	WrapSyncer func(name string, s wal.Syncer) wal.Syncer
	// Shards is the certification shard count K (see NewSystemShards).
	// 0 and 1 select the unsharded configuration. Derived state is never
	// logged, so K is purely a runtime choice: the same directory can be
	// reopened with any shard count.
	Shards int
	// ReplayWorkers caps the workers recovery uses to replay committed
	// WAL batches in parallel (runs of batch records split into
	// table-disjoint streams; commit order is preserved per table, and
	// DDL/constraint records are barriers). 1 forces the sequential
	// replay; 0 reads the HIPPO_REPLAY_WORKERS environment variable,
	// falling back to GOMAXPROCS. The recovered state is identical for
	// every worker count.
	ReplayWorkers int
}

// DefaultCheckpointBytes is the automatic checkpoint threshold when
// DurableOptions.CheckpointBytes is zero.
const DefaultCheckpointBytes int64 = 8 << 20

// OpenDurable opens (or creates) a durable system rooted at o.Dir,
// recovering any existing state. The returned system behaves exactly like
// an in-memory one, except that every committed write is on disk before it
// becomes visible and Checkpoint/MaybeCheckpoint manage the log's length.
func OpenDurable(o DurableOptions) (*System, error) {
	st, rec, err := wal.Open(o.Dir, wal.Options{NoSync: o.NoSync, WrapSyncer: o.WrapSyncer})
	if err != nil {
		return nil, err
	}
	db := engine.New()
	var cs []constraint.Constraint
	if rec.Checkpoint != nil {
		cs = append(cs, rec.Checkpoint.Constraints...)
		for _, ts := range rec.Checkpoint.Tables {
			t, err := restoreTable(ts)
			if err != nil {
				st.Close()
				return nil, err
			}
			if err := db.AdoptTable(t); err != nil {
				st.Close()
				return nil, err
			}
		}
	}
	if err := replayRecords(db, &cs, rec.Records, replayWorkers(o.ReplayWorkers)); err != nil {
		st.Close()
		return nil, err
	}
	sys := NewSystemShards(db, cs, o.Shards)
	sys.store = st
	sys.ckptBytes = o.CheckpointBytes
	if sys.ckptBytes == 0 {
		sys.ckptBytes = DefaultCheckpointBytes
	}
	sys.ckptCh = make(chan struct{}, 1)
	sys.ckptStop = make(chan struct{})
	sys.ckptDone = make(chan struct{})
	go sys.checkpointLoop()
	db.SetCommitLog(st)
	// Rebuild all derived state and publish the first view only after the
	// data is fully restored, so no query can observe a partial recovery.
	// A failure here is a constraint-semantics error — e.g. a logged
	// constraint whose table a later logged DROP removed — never an I/O
	// problem. Tolerate it exactly like the in-memory engine does: the
	// data is fully recovered, plain SQL and DML serve normally, and the
	// error resurfaces from every consistent query until the schema or
	// constraint set is repaired. Failing Open here would brick the
	// directory over a semantic condition the user can fix online.
	// (A failed Analyze leaves the system marked for full re-detection,
	// so nothing else needs resetting here.)
	_, _ = sys.Analyze()
	return sys, nil
}

// restoreTable rebuilds one table from its checkpointed state.
func restoreTable(ts wal.TableState) (*storage.Table, error) {
	cols := make([]schema.Column, len(ts.Columns))
	for i, c := range ts.Columns {
		cols[i] = schema.Column{Name: c.Name, Type: c.Type}
	}
	t, err := storage.RestoreTable(ts.Name, schema.New(cols...), ts.Rows, ts.Dead)
	if err != nil {
		return nil, err
	}
	for _, ixCols := range ts.Indexes {
		if _, err := t.EnsureIndex(ixCols); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// replayWorkers resolves the effective replay worker count (see
// DurableOptions.ReplayWorkers).
func replayWorkers(n int) int {
	if n > 0 {
		return n
	}
	if v, err := strconv.Atoi(os.Getenv("HIPPO_REPLAY_WORKERS")); err == nil && v > 0 {
		return v
	}
	return runtime.GOMAXPROCS(0)
}

// replayRecords replays the committed WAL tail. DDL and constraint
// records replay strictly in commit order — they change the catalog the
// records around them resolve against — but a run of consecutive batch
// records between such barriers touches only row storage, and rows of
// different tables are independent: the run is split into per-table
// change streams (each preserving commit order, which fixes the RowID
// allocation order and hence vertex identity) and the streams replay
// concurrently across workers. Any worker count recovers the identical
// state; errors report the lowest failing record index, matching the
// sequential replay.
func replayRecords(db *engine.DB, cs *[]constraint.Constraint, recs []wal.Record, workers int) error {
	for i := 0; i < len(recs); {
		if recs[i].Kind != wal.RecordBatch {
			if err := applyRecord(db, cs, recs[i]); err != nil {
				return fmt.Errorf("core: replaying WAL record %d (%s): %w", i, recs[i].Kind, err)
			}
			i++
			continue
		}
		j := i
		for j < len(recs) && recs[j].Kind == wal.RecordBatch {
			j++
		}
		if err := replayBatchRun(db, recs[i:j], i, workers); err != nil {
			return err
		}
		i = j
	}
	return nil
}

// pendingReplay is one change awaiting replay, tagged with the index of
// the WAL record it came from (for error reporting).
type pendingReplay struct {
	rec int
	ch  storage.Change
}

// replayBatchRun replays one run of consecutive batch records (indices
// base..base+len(recs) in the full tail) split by table across workers.
func replayBatchRun(db *engine.DB, recs []wal.Record, base, workers int) error {
	perTable := make(map[string][]pendingReplay)
	var order []string
	for k, r := range recs {
		for _, tc := range r.Batch {
			if _, ok := perTable[tc.Table]; !ok {
				order = append(order, tc.Table)
			}
			perTable[tc.Table] = append(perTable[tc.Table], pendingReplay{rec: base + k, ch: tc.Change})
		}
	}
	if workers > len(order) {
		workers = len(order)
	}
	if workers <= 1 {
		for _, name := range order {
			if _, err := replayTableRun(db, name, perTable[name]); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		mu      sync.Mutex
		bestRec int
		bestErr error
	)
	work := make(chan string)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for name := range work {
				if rec, err := replayTableRun(db, name, perTable[name]); err != nil {
					mu.Lock()
					if bestErr == nil || rec < bestRec {
						bestRec, bestErr = rec, err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for _, name := range order {
		work <- name
	}
	close(work)
	wg.Wait()
	return bestErr
}

// replayTableRun replays one table's change stream in commit order; on
// failure it reports the index of the offending record.
func replayTableRun(db *engine.DB, name string, run []pendingReplay) (int, error) {
	t, err := db.Table(name)
	if err != nil {
		return run[0].rec, fmt.Errorf("core: replaying WAL record %d (%s): %w", run[0].rec, wal.RecordBatch, err)
	}
	for _, pc := range run {
		var err error
		if pc.ch.Kind == storage.ChangeInsert {
			err = t.ReplayInsert(pc.ch.Row, pc.ch.Tuple)
		} else {
			err = t.ReplayDelete(pc.ch.Row)
		}
		if err != nil {
			return pc.rec, fmt.Errorf("core: replaying WAL record %d (%s): %w", pc.rec, wal.RecordBatch, err)
		}
	}
	return 0, nil
}

// applyRecord replays one WAL record into the recovering database. No
// listener or commit log is attached yet, so nothing is re-logged and no
// derived state is touched; data changes re-land at their original RowIDs.
func applyRecord(db *engine.DB, cs *[]constraint.Constraint, r wal.Record) error {
	switch r.Kind {
	case wal.RecordDDL:
		st, err := sqlparse.Parse(r.Stmt)
		if err != nil {
			return err
		}
		_, _, err = db.ExecStmt(st)
		return err
	case wal.RecordBatch:
		for _, tc := range r.Batch {
			t, err := db.Table(tc.Table)
			if err != nil {
				return err
			}
			if tc.Change.Kind == storage.ChangeInsert {
				err = t.ReplayInsert(tc.Change.Row, tc.Change.Tuple)
			} else {
				err = t.ReplayDelete(tc.Change.Row)
			}
			if err != nil {
				return err
			}
		}
		return nil
	case wal.RecordConstraint:
		*cs = append(*cs, r.Constraint)
		return nil
	default:
		return fmt.Errorf("core: unknown WAL record kind %d", r.Kind)
	}
}

// Durable reports whether the system persists through a WAL store.
func (s *System) Durable() bool { return s.store != nil }

// WALBytes reports the live WAL segment's size (0 for in-memory systems);
// benchmarks and tooling use it to reason about checkpoint pressure.
func (s *System) WALBytes() int64 {
	if s.store == nil {
		return 0
	}
	return s.store.SegmentBytes()
}

// Checkpoint serializes the full database state — tables at their exact
// slot layout, index definitions, constraints — rotates the WAL, and
// durably installs the checkpoint, bounding recovery time by the length of
// the post-rotation log. The cut is taken under the engine write freeze
// via the same Snapshot machinery query views use, so writers stall only
// for the O(slabs) snapshot, not for the serialization.
func (s *System) Checkpoint() error { return s.checkpoint(0) }

// checkpoint runs the checkpoint protocol; a positive min re-checks the
// live-segment size under the checkpoint lock and skips the work if a
// concurrent committer's checkpoint already rotated the log below it.
func (s *System) checkpoint(min int64) error {
	if s.store == nil {
		return fmt.Errorf("core: system is not durable (opened without a directory)")
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	if min > 0 && s.store.SegmentBytes() < min {
		return nil
	}
	// Pay the next segment's creation and fsyncs before stalling anyone:
	// Rotate inside the freeze is then just a pointer swap.
	if err := s.store.PrepareRotation(); err != nil {
		return err
	}
	s.mu.Lock()
	release := s.db.FreezeWrites()
	snap := s.db.SnapshotFrozen()
	cs := make([]constraint.Constraint, len(s.constraints))
	copy(cs, s.constraints)
	idxDefs := liveIndexDefsFrozen(s.db, snap.TableNames())
	seq, err := s.store.Rotate()
	release()
	s.mu.Unlock()
	if err != nil {
		return err
	}
	ck := &wal.Checkpoint{Seq: seq, Constraints: cs}
	for _, name := range snap.TableNames() {
		ts, err := tableState(snap, name, idxDefs[name])
		if err != nil {
			return err
		}
		ck.Tables = append(ck.Tables, ts)
	}
	return s.store.WriteCheckpoint(ck)
}

// MaybeCheckpoint runs Checkpoint when the live WAL segment has outgrown
// the configured threshold; it is a no-op for in-memory systems and when
// automatic checkpoints are disabled. The background checkpointer calls
// it after every committed write; it remains exported for callers that
// want to force the threshold check synchronously.
func (s *System) MaybeCheckpoint() error {
	if s.store == nil || s.ckptBytes <= 0 || s.store.SegmentBytes() < s.ckptBytes {
		return nil
	}
	return s.checkpoint(s.ckptBytes)
}

// checkpointPollInterval is the automatic checkpointer's fallback poll
// cadence, backstopping any nudge lost to the channel's single-slot
// buffer (the send is non-blocking by design — writers never wait).
const checkpointPollInterval = time.Second

// checkpointLoop is the automatic checkpointer: it runs MaybeCheckpoint
// whenever a committed write nudges it (and on a slow poll as a
// backstop), entirely off the write path — commit latency never includes
// a checkpoint. A failure parks in ckptFail for the next
// TakeCheckpointError; on shutdown it takes one final threshold check so
// a burst of writes right before Close still bounds the log.
func (s *System) checkpointLoop() {
	defer close(s.ckptDone)
	t := time.NewTicker(checkpointPollInterval)
	defer t.Stop()
	for {
		select {
		case <-s.ckptStop:
			s.noteCheckpointErr(s.MaybeCheckpoint())
			return
		case <-s.ckptCh:
		case <-t.C:
		}
		s.noteCheckpointErr(s.MaybeCheckpoint())
	}
}

// nudgeCheckpointer wakes the automatic checkpointer without blocking:
// callers hold the engine write sequencer, so a full channel just means a
// wake-up is already pending.
func (s *System) nudgeCheckpointer() {
	if s.ckptCh == nil {
		return
	}
	select {
	case s.ckptCh <- struct{}{}:
	default:
	}
}

// noteCheckpointErr parks a failed automatic checkpoint until collected.
func (s *System) noteCheckpointErr(err error) {
	if err != nil {
		s.ckptFail.Store(&errBox{err: err})
	}
}

// TakeCheckpointError returns and clears the most recent automatic-
// checkpoint failure (nil if none since the last call). The write that
// triggered the failed checkpoint committed; only log compaction failed.
// The hippo wrapper surfaces this from Exec/ExecBatch, and Close drains
// it so an uncollected failure is never silently dropped.
func (s *System) TakeCheckpointError() error {
	if b := s.ckptFail.Swap(nil); b != nil {
		return b.err
	}
	return nil
}

// liveIndexDefsFrozen captures each table's declared index column sets.
// The caller holds the engine write freeze; table snapshots do not carry
// index definitions (snapshots build only the full-row index on demand),
// so these are read from the live tables at the same cut.
func liveIndexDefsFrozen(db *engine.DB, names []string) map[string][][]int {
	defs := make(map[string][][]int, len(names))
	for _, name := range names {
		t, err := db.Table(name)
		if err != nil {
			continue // racing DROP cannot happen under the freeze; be safe
		}
		for _, ix := range t.Indexes() {
			defs[name] = append(defs[name], ix.Columns())
		}
	}
	return defs
}

// tableState serializes one table snapshot into checkpoint form.
func tableState(snap *engine.Snapshot, name string, idxDefs [][]int) (wal.TableState, error) {
	t, err := snap.Table(name)
	if err != nil {
		return wal.TableState{}, err
	}
	sch := t.Schema()
	ts := wal.TableState{Name: name, Indexes: idxDefs}
	ts.Columns = make([]wal.ColumnState, sch.Len())
	for i, c := range sch.Columns {
		ts.Columns[i] = wal.ColumnState{Name: c.Name, Type: c.Type}
	}
	n := t.Cap()
	ts.Rows = make([]value.Tuple, n)
	ts.Dead = make([]bool, n)
	for id := 0; id < n; id++ {
		row, ok := t.Row(storage.RowID(id))
		if !ok {
			ts.Dead[id] = true
			continue
		}
		ts.Rows[id] = row
	}
	return ts, nil
}
