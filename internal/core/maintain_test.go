package core

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"hippo/internal/constraint"
	"hippo/internal/engine"
	"hippo/internal/wal"
)

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestMaintainEagerFoldWithoutQuery pins the off-query-path fold: after
// writes land, the maintainer must drain the pending delta queue on its
// own — no query issued — so the next consistent query starts from an
// already-folded hypergraph.
func TestMaintainEagerFoldWithoutQuery(t *testing.T) {
	s := newSystem(t)
	defer s.Close()
	if _, err := s.Analyze(); err != nil {
		t.Fatal(err)
	}
	base := s.Maintenance()
	db := s.DB()
	for i := 0; i < 5; i++ {
		mustExec(db, fmt.Sprintf("INSERT INTO emp VALUES (%d, %d)", 10+i, 1000+i))
	}
	// Deliberately no query here: only the maintainer can fold.
	waitUntil(t, "maintainer fold", func() bool {
		m := s.Maintenance()
		return m.EagerFolds > base.EagerFolds && s.PendingDeltas() == 0
	})
	m := s.Maintenance()
	if m.DeltasApplied != base.DeltasApplied+5 {
		t.Fatalf("folded %d deltas, want %d", m.DeltasApplied-base.DeltasApplied, 5)
	}
	if m.FullRebuilds != base.FullRebuilds {
		t.Fatalf("eager fold ran a full rebuild (%d -> %d)", base.FullRebuilds, m.FullRebuilds)
	}
	if err := s.MaintenanceHealth(); err != nil {
		t.Fatalf("healthy maintainer reports %v", err)
	}
	// The pre-folded graph serves the correct consistent answers.
	res, _, err := s.ConsistentQuery("SELECT * FROM emp WHERE salary >= 1000", Options{Tier: TierForceProver})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("got %d consistent answers, want 5", len(res.Rows))
	}
}

// TestMaintainPendingOverflowFullRebuild pins the delta-queue overflow
// path: with eager folding disabled and a tiny queue cap, a write burst
// must trip the overflow counter, schedule a full re-detection, and still
// serve exactly the right consistent answers afterwards.
func TestMaintainPendingOverflowFullRebuild(t *testing.T) {
	old := maxPendingDeltas
	maxPendingDeltas = 8
	defer func() { maxPendingDeltas = old }()

	s := newSystem(t)
	defer s.Close()
	if _, err := s.Analyze(); err != nil {
		t.Fatal(err)
	}
	s.SetEagerFolding(false) // nothing drains the queue behind our back
	base := s.Maintenance()
	db := s.DB()
	for i := 0; i < 2*maxPendingDeltas; i++ {
		mustExec(db, fmt.Sprintf("INSERT INTO emp VALUES (%d, %d)", 100+i, 10+i)) // conflict-free tail
	}
	mustExec(db, "INSERT INTO emp VALUES (2, 151)") // new conflict on id=2

	m := s.Maintenance()
	if m.PendingOverflows <= base.PendingOverflows {
		t.Fatalf("no overflow recorded past a cap of %d (%+v)", maxPendingDeltas, m)
	}

	// Mirror the final data on a fresh system: answers must agree even
	// though this system got there through the overflow -> full-rebuild
	// path rather than incremental folds.
	ref := newSystem(t)
	defer ref.Close()
	for i := 0; i < 2*maxPendingDeltas; i++ {
		mustExec(ref.DB(), fmt.Sprintf("INSERT INTO emp VALUES (%d, %d)", 100+i, 10+i))
	}
	mustExec(ref.DB(), "INSERT INTO emp VALUES (2, 151)")

	for _, q := range []string{"SELECT * FROM emp", "SELECT * FROM emp WHERE salary > 100"} {
		got, _, err := s.ConsistentQuery(q, Options{Tier: TierForceProver})
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := ref.ConsistentQuery(q, Options{Tier: TierForceProver})
		if err != nil {
			t.Fatal(err)
		}
		g, w := rowStrings(got.Rows), rowStrings(want.Rows)
		if strings.Join(g, " ") != strings.Join(w, " ") {
			t.Fatalf("%q after overflow: %v, want %v", q, g, w)
		}
	}
	if m2 := s.Maintenance(); m2.FullRebuilds <= base.FullRebuilds {
		t.Fatalf("overflow did not force a full rebuild (%d -> %d)", base.FullRebuilds, m2.FullRebuilds)
	}
}

// failTmpSyncer fails every write to checkpoint temporaries (".tmp"
// files), simulating a persistently broken checkpoint directory while the
// WAL itself stays healthy.
type failTmpSyncer struct{ under wal.Syncer }

var errBrokenCheckpointDir = errors.New("checkpoint directory is broken")

func (f failTmpSyncer) Write(p []byte) (int, error) { return 0, errBrokenCheckpointDir }
func (f failTmpSyncer) Sync() error                 { return errBrokenCheckpointDir }
func (f failTmpSyncer) Close() error                { return f.under.Close() }

// TestMaintainHealthSurfacesCheckpointFailure pins the observation
// channel ISSUE 10 adds: a background checkpoint failure must become
// visible through MaintenanceHealth WITHOUT issuing another write (the
// old TakeCheckpointError contract only surfaced it on the next Exec),
// while queries and commits keep serving.
func TestMaintainHealthSurfacesCheckpointFailure(t *testing.T) {
	sys, err := OpenDurable(DurableOptions{
		Dir: t.TempDir(), NoSync: true, CheckpointBytes: 1,
		WrapSyncer: func(name string, s wal.Syncer) wal.Syncer {
			if strings.HasSuffix(name, ".tmp") {
				return failTmpSyncer{under: s}
			}
			return s
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	db := sys.DB()
	mustExec(db, "CREATE TABLE emp (id INT, salary INT)")
	mustExec(db, "INSERT INTO emp VALUES (1, 100), (1, 200), (2, 150)")
	if err := sys.AddConstraint(constraint.FD{Rel: "emp", LHS: []string{"id"}, RHS: []string{"salary"}}); err != nil {
		t.Fatal(err)
	}
	// The writes exceeded CheckpointBytes=1, so the async checkpointer has
	// attempted (and failed) a checkpoint. Observe the sticky error with
	// no further writes: MaintenanceHealth peeks, it does not drain.
	waitUntil(t, "degraded maintenance health", func() bool {
		return sys.MaintenanceHealth() != nil
	})
	if err := sys.MaintenanceHealth(); !errors.Is(err, errBrokenCheckpointDir) {
		t.Fatalf("health = %v, want the checkpoint failure", err)
	}
	// Peeking twice still sees it; the system still serves.
	if err := sys.MaintenanceHealth(); err == nil {
		t.Fatal("MaintenanceHealth drained the sticky error")
	}
	res, _, err := sys.ConsistentQuery("SELECT * FROM emp", Options{Tier: TierForceProver})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("degraded system served %d answers, want 1", len(res.Rows))
	}
	// TakeCheckpointError (the Exec-path drain) still collects it.
	if err := sys.TakeCheckpointError(); !errors.Is(err, errBrokenCheckpointDir) {
		t.Fatalf("TakeCheckpointError = %v", err)
	}
}

// TestMaintainStressFoldersUnderRace hammers the maintenance plane from
// every side at once — writers, consistent readers, fold-toggle flips —
// then closes (twice: Close is idempotent) and gates on goroutine leaks.
// Run under -race in CI.
func TestMaintainStressFoldersUnderRace(t *testing.T) {
	baseline := runtime.NumGoroutine()

	db := engine.New()
	mustExec(db, "CREATE TABLE emp (id INT, salary INT)")
	s := NewSystemShards(db, []constraint.Constraint{
		constraint.FD{Rel: "emp", LHS: []string{"id"}, RHS: []string{"salary"}},
	}, 2)
	if _, err := s.Analyze(); err != nil {
		t.Fatal(err)
	}

	const steps = 300
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		defer close(done)
		for i := 0; i < steps; i++ {
			if i%7 == 3 {
				mustExec(db, fmt.Sprintf("DELETE FROM emp WHERE id = %d", i-2))
				continue
			}
			mustExec(db, fmt.Sprintf("INSERT INTO emp VALUES (%d, %d)", i, i%5))
		}
	}()
	wg.Add(1)
	go func() { // fold-toggle flipper
		defer wg.Done()
		on := false
		for {
			select {
			case <-done:
				s.SetEagerFolding(true)
				return
			default:
			}
			s.SetEagerFolding(on)
			on = !on
			time.Sleep(time.Millisecond)
		}
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() { // consistent readers race the folds
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if _, _, err := s.ConsistentQuery("SELECT * FROM emp", Options{}); err != nil {
					t.Errorf("reader: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	// Let the maintainer drain the tail, then verify and shut down.
	waitUntil(t, "final fold", func() bool { return s.PendingDeltas() == 0 })
	if err := s.MaintenanceHealth(); err != nil {
		t.Fatalf("stress left maintenance degraded: %v", err)
	}
	if _, _, err := s.ConsistentQuery("SELECT * FROM emp", Options{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatalf("second Close: %v", err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak after shutdown: %d running, baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRecoveryParallelReplayEquivalence pins the parallel-replay
// contract: a long multi-table WAL with mid-stream DDL barriers recovers
// to the IDENTICAL state — RowID-exact tables, component fingerprints,
// consistent answers — whether replayed sequentially or across workers.
func TestRecoveryParallelReplayEquivalence(t *testing.T) {
	dir := t.TempDir()
	sys, err := OpenDurable(DurableOptions{Dir: dir, NoSync: true, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	db := sys.DB()
	mustExec(db, "CREATE TABLE emp (id INT, salary INT)")
	mustExec(db, "CREATE TABLE dept (d INT, dname TEXT)")
	if err := sys.AddConstraint(constraint.FD{Rel: "emp", LHS: []string{"id"}, RHS: []string{"salary"}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		mustExec(db, fmt.Sprintf("INSERT INTO emp VALUES (%d, %d)", i%20, i))
		if i%3 == 0 {
			mustExec(db, fmt.Sprintf("INSERT INTO dept VALUES (%d, 'd%d')", i, i))
		}
		if i%11 == 5 {
			mustExec(db, fmt.Sprintf("DELETE FROM emp WHERE id = %d AND salary = %d", (i-3)%20, i-3))
		}
		if i == 30 { // mid-stream DDL: a replay barrier splitting the batch runs
			mustExec(db, "CREATE TABLE audit (op TEXT)")
		}
		if i > 30 && i%4 == 1 {
			mustExec(db, fmt.Sprintf("INSERT INTO audit VALUES ('op%d')", i))
		}
	}
	mustExec(db, "CREATE INDEX emp_ix ON emp (id)")
	mustExec(db, "INSERT INTO emp VALUES (99, 9900)")
	before := captureState(t, sys)
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	var states []dbState
	for _, workers := range []int{1, 4} {
		rec, err := OpenDurable(DurableOptions{
			Dir: dir, NoSync: true, CheckpointBytes: -1, ReplayWorkers: workers,
		})
		if err != nil {
			t.Fatalf("replay with %d workers: %v", workers, err)
		}
		states = append(states, captureState(t, rec))
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if diff := statesEqual(before, states[0]); diff != "" {
		t.Fatalf("sequential replay diverged from pre-close state: %s", diff)
	}
	if diff := statesEqual(states[0], states[1]); diff != "" {
		t.Fatalf("parallel replay diverged from sequential: %s", diff)
	}
}
