package core

import (
	"strings"
	"testing"
)

// A pinned snapshot must keep serving the same answers while writers move
// the live database forward.
func TestSnapshotPinnedAcrossWrites(t *testing.T) {
	s := newSystem(t)
	sn, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer sn.Close()

	before, _, err := s.ConsistentQueryAt(sn, "SELECT * FROM emp", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(rowStrings(before.Rows), " "); got != "(2, 150) (4, 50)" {
		t.Fatalf("pinned answers = %v", got)
	}

	// Make tuple (2,150) inconsistent and add a fresh consistent tuple.
	mustExec(s.DB(), "INSERT INTO emp VALUES (2, 999), (7, 70)")

	again, _, err := s.ConsistentQueryAt(sn, "SELECT * FROM emp", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(rowStrings(again.Rows), " ") != strings.Join(rowStrings(before.Rows), " ") {
		t.Fatalf("pinned view drifted: %v vs %v", rowStrings(again.Rows), rowStrings(before.Rows))
	}

	// An unpinned query sees the new state.
	fresh, st, err := s.ConsistentQuery("SELECT * FROM emp", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(rowStrings(fresh.Rows), " "); got != "(4, 50) (7, 70)" {
		t.Fatalf("fresh answers = %v", got)
	}
	if st.Epoch <= sn.Epoch() {
		t.Fatalf("fresh query epoch %d not beyond pinned epoch %d", st.Epoch, sn.Epoch())
	}

	// Plain SQL at the snapshot also sees the pinned state.
	res, err := sn.Query("SELECT * FROM emp")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("snapshot SQL rows=%d, want 6", len(res.Rows))
	}
}

// Retired views are reclaimed by epoch: a pinned view is parked at the
// next publish and dropped only after its last unpin.
func TestEpochReclamation(t *testing.T) {
	s := newSystem(t)
	sn, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Replace the pinned view.
	mustExec(s.DB(), "INSERT INTO emp VALUES (8, 80)")
	if _, _, err := s.ConsistentQuery("SELECT * FROM emp", Options{}); err != nil {
		t.Fatal(err)
	}
	m := s.Maintenance()
	if m.ViewsPublished < 2 {
		t.Fatalf("views published = %d, want >= 2", m.ViewsPublished)
	}
	if m.ViewsReclaimed != 0 {
		t.Fatalf("pinned view reclaimed early (reclaimed=%d)", m.ViewsReclaimed)
	}
	sn.Close()
	sn.Close() // idempotent
	m = s.Maintenance()
	if m.ViewsReclaimed != 1 {
		t.Fatalf("views reclaimed after unpin = %d, want 1", m.ViewsReclaimed)
	}
	if m.SlabsReclaimed < 1 {
		t.Fatalf("slabs reclaimed = %d, want >= 1", m.SlabsReclaimed)
	}

	// An unpinned view replaced by a publish is reclaimed immediately.
	mustExec(s.DB(), "INSERT INTO emp VALUES (9, 90)")
	if _, _, err := s.ConsistentQuery("SELECT * FROM emp", Options{}); err != nil {
		t.Fatal(err)
	}
	if got := s.Maintenance().ViewsReclaimed; got != 2 {
		t.Fatalf("views reclaimed = %d, want 2", got)
	}
}

// Invalidate must survive concurrent-publication ordering: the next
// query after it always pays a full re-detection.
func TestInvalidateForcesFullRebuild(t *testing.T) {
	s := newSystem(t)
	if _, _, err := s.ConsistentQuery("SELECT * FROM emp", Options{}); err != nil {
		t.Fatal(err)
	}
	before := s.Maintenance().FullRebuilds
	s.Invalidate()
	if _, _, err := s.ConsistentQuery("SELECT * FROM emp", Options{}); err != nil {
		t.Fatal(err)
	}
	if got := s.Maintenance().FullRebuilds; got != before+1 {
		t.Fatalf("full rebuilds %d -> %d, want exactly one more after Invalidate", before, got)
	}
}

// The Serialized baseline mode must return exactly the same answers as
// snapshot serving.
func TestSerializedModeAgrees(t *testing.T) {
	s := newSystem(t)
	for _, q := range []string{
		"SELECT * FROM emp",
		"SELECT * FROM emp WHERE salary > 120",
		"SELECT * FROM emp WHERE id = 2 UNION SELECT * FROM emp WHERE id = 4",
	} {
		a, _, err := s.ConsistentQuery(q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := s.ConsistentQuery(q, Options{Serialized: true})
		if err != nil {
			t.Fatal(err)
		}
		if strings.Join(rowStrings(a.Rows), "|") != strings.Join(rowStrings(b.Rows), "|") {
			t.Errorf("%q: serialized mode disagrees: %v vs %v", q, rowStrings(a.Rows), rowStrings(b.Rows))
		}
	}
}

// Repair enumeration reads the published snapshot without cloning it; it
// must leave the snapshot (and the live graph) untouched.
func TestEnumerationDoesNotMutateSnapshot(t *testing.T) {
	s := newSystem(t)
	if _, err := s.Analyze(); err != nil {
		t.Fatal(err)
	}
	before := s.GraphStats()
	en, err := s.RepairEnumerator()
	if err != nil {
		t.Fatal(err)
	}
	edgesBefore := en.H.NumEdges()
	sets1, err := en.DeletionSets()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := en.ConsistentAnswers("SELECT * FROM emp"); err != nil {
		t.Fatal(err)
	}
	sets2, err := en.DeletionSets()
	if err != nil {
		t.Fatal(err)
	}
	if len(sets1) != len(sets2) {
		t.Fatalf("enumeration not repeatable: %d vs %d repairs", len(sets1), len(sets2))
	}
	if en.H.NumEdges() != edgesBefore {
		t.Fatalf("enumeration mutated the hypergraph snapshot: %d -> %d edges", edgesBefore, en.H.NumEdges())
	}
	if after := s.GraphStats(); after != before {
		t.Fatalf("enumeration mutated the live graph: %+v -> %+v", before, after)
	}
}
