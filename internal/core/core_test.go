package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"hippo/internal/constraint"
	"hippo/internal/engine"
	"hippo/internal/value"
)

func newSystem(t *testing.T) *System {
	t.Helper()
	db := engine.New()
	mustExec(db, "CREATE TABLE emp (id INT, salary INT)")
	mustExec(db, "INSERT INTO emp VALUES (1, 100), (1, 200), (2, 150), (3, 300), (3, 400), (4, 50)")
	fd := constraint.FD{Rel: "emp", LHS: []string{"id"}, RHS: []string{"salary"}}
	return NewSystem(db, []constraint.Constraint{fd})
}

func rowStrings(rows []value.Tuple) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = value.TupleString(r)
	}
	sort.Strings(out)
	return out
}

func TestConsistentQueryBasic(t *testing.T) {
	s := newSystem(t)
	// Force the prover tier: this test pins the certification pipeline's
	// candidate accounting, which the rewrite tier skips entirely.
	res, st, err := s.ConsistentQuery("SELECT * FROM emp", Options{Tier: TierForceProver})
	if err != nil {
		t.Fatal(err)
	}
	got := rowStrings(res.Rows)
	want := []string{"(2, 150)", "(4, 50)"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("answers = %v, want %v", got, want)
	}
	if st.Candidates != 6 || st.Answers != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.GraphStats.Edges != 2 {
		t.Errorf("hypergraph edges = %d", st.GraphStats.Edges)
	}
	if !strings.Contains(FormatStats(st), "candidates=6") {
		t.Error("FormatStats missing fields")
	}
}

func TestConsistentQueryModesAgree(t *testing.T) {
	s := newSystem(t)
	queries := []string{
		"SELECT * FROM emp",
		"SELECT * FROM emp WHERE salary > 120",
		"SELECT * FROM emp EXCEPT SELECT * FROM emp WHERE id = 1",
		"SELECT * FROM emp WHERE id = 2 UNION SELECT * FROM emp WHERE id = 4",
	}
	for _, q := range queries {
		a, sa, err := s.ConsistentQuery(q, Options{Mode: ProverIndexed})
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		b, sb, err := s.ConsistentQuery(q, Options{Mode: ProverNaive})
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		if strings.Join(rowStrings(a.Rows), "|") != strings.Join(rowStrings(b.Rows), "|") {
			t.Errorf("%q: modes disagree", q)
		}
		// The naive prover must issue per-check engine queries; indexed none
		// beyond the envelope evaluation.
		if sa.EngineQuery != 1 {
			t.Errorf("%q: indexed mode ran %d engine queries, want 1 (envelope only)", q, sa.EngineQuery)
		}
		if sb.ProverStats.MembershipChecks > 0 && sb.EngineQuery <= 1 {
			t.Errorf("%q: naive mode should run membership queries (ran %d)", q, sb.EngineQuery)
		}
	}
}

func TestConsistentQueryMatchesOracle(t *testing.T) {
	s := newSystem(t)
	en, err := s.RepairEnumerator()
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"SELECT * FROM emp",
		"SELECT * FROM emp WHERE salary >= 150",
		"SELECT * FROM emp WHERE id = 1 AND salary = 100",
		"SELECT * FROM emp EXCEPT SELECT * FROM emp WHERE salary > 150",
		"SELECT * FROM emp WHERE salary < 200 UNION SELECT * FROM emp WHERE salary >= 200",
		"SELECT salary, id FROM emp",
		"SELECT * FROM emp INTERSECT SELECT * FROM emp WHERE id < 3",
	}
	for _, q := range queries {
		res, _, err := s.ConsistentQuery(q, Options{})
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		want, err := en.ConsistentAnswers(q)
		if err != nil {
			t.Fatalf("%q oracle: %v", q, err)
		}
		g, w := rowStrings(res.Rows), rowStrings(want)
		if strings.Join(g, "|") != strings.Join(w, "|") {
			t.Errorf("%q:\n hippo  %v\n oracle %v", q, g, w)
		}
	}
}

func TestUnionExtractsDisjunctiveInformation(t *testing.T) {
	// The paper's demo point: union lets Hippo return indefinite
	// information a conflict-deleting approach loses. Two sources disagree
	// about Smith's city; the union query "people in boston OR in albany"
	// still consistently contains Smith's record variants? No — tuple-level:
	// we use coarser tuples that both variants satisfy.
	db := engine.New()
	mustExec(db, "CREATE TABLE person (name TEXT, city TEXT)")
	mustExec(db, "INSERT INTO person VALUES ('smith', 'boston'), ('smith', 'albany'), ('jones', 'nyc')")
	fd := constraint.FD{Rel: "person", LHS: []string{"name"}, RHS: []string{"city"}}
	s := NewSystem(db, []constraint.Constraint{fd})

	// Neither city record for smith is individually consistent...
	res, _, err := s.ConsistentQuery("SELECT * FROM person WHERE name = 'smith'", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("direct selection should be empty, got %v", res.Rows)
	}
	// ...but jones survives in the union query spanning both cities.
	res, _, err = s.ConsistentQuery(
		"SELECT * FROM person WHERE city = 'boston' UNION SELECT * FROM person WHERE city <> 'boston'",
		Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := rowStrings(res.Rows)
	if len(got) != 1 || got[0] != "('jones', 'nyc')" {
		t.Errorf("union answers = %v", got)
	}
}

func TestMoreInformationThanConflictDeletion(t *testing.T) {
	// E1's claim: CQA answers ⊋ answers over the conflict-deleted DB for
	// queries where context matters. With Q = emp EXCEPT emp-high-salary,
	// deletion of all conflicting tuples changes answers: Hippo keeps (2,150),
	// (4,50) AND can certify tuples whose subtracted side only involves
	// conflicting tuples.
	db := engine.New()
	mustExec(db, "CREATE TABLE t (a INT, b INT)")
	// (1,1) vs (1,2) conflict; (2,5) clean.
	mustExec(db, "INSERT INTO t VALUES (1, 1), (1, 2), (2, 5)")
	fd := constraint.FD{Rel: "t", LHS: []string{"a"}, RHS: []string{"b"}}
	s := NewSystem(db, []constraint.Constraint{fd})

	// Query: tuples of t with b < 3 — union over both conflicting variants.
	q := "SELECT * FROM t WHERE b < 3 UNION SELECT * FROM t WHERE b >= 3"
	res, _, err := s.ConsistentQuery(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hippoAnswers := len(res.Rows)

	// Conflict-deletion approach: drop all conflicting tuples, evaluate.
	db2 := engine.New()
	mustExec(db2, "CREATE TABLE t (a INT, b INT)")
	mustExec(db2, "INSERT INTO t VALUES (2, 5)")
	res2, err := db2.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if hippoAnswers < len(res2.Rows) {
		t.Errorf("hippo answers %d < deletion answers %d", hippoAnswers, len(res2.Rows))
	}
}

func TestSupportMatrix(t *testing.T) {
	s := newSystem(t)
	sup, err := s.Support("SELECT * FROM emp UNION SELECT * FROM emp WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if sup.Hippo != nil {
		t.Errorf("Hippo should support union: %v", sup.Hippo)
	}
	if sup.Rewrite == nil {
		t.Error("rewriting should reject union")
	}
	sup, err = s.Support("SELECT id FROM emp")
	if err != nil {
		t.Fatal(err)
	}
	if sup.Hippo == nil {
		t.Error("Hippo should reject unsafe projection")
	}
}

func TestInvalidateAndAddConstraint(t *testing.T) {
	s := newSystem(t)
	if _, _, err := s.ConsistentQuery("SELECT * FROM emp", Options{}); err != nil {
		t.Fatal(err)
	}
	// New conflicting tuple; without Invalidate the hypergraph is stale.
	mustExec(s.DB(), "INSERT INTO emp VALUES (4, 60)")
	s.Invalidate()
	res, _, err := s.ConsistentQuery("SELECT * FROM emp", Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := rowStrings(res.Rows)
	if len(got) != 1 || got[0] != "(2, 150)" {
		t.Errorf("after new conflict, answers = %v", got)
	}
	s.AddConstraint(constraint.FD{Rel: "emp", LHS: []string{"salary"}, RHS: []string{"id"}})
	if len(s.Constraints()) != 2 {
		t.Error("AddConstraint did not register")
	}
	if _, _, err := s.ConsistentQuery("SELECT * FROM emp", Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestQueryErrors(t *testing.T) {
	s := newSystem(t)
	if _, _, err := s.ConsistentQuery("NOT SQL", Options{}); err == nil {
		t.Error("parse error expected")
	}
	if _, _, err := s.ConsistentQuery("SELECT id FROM emp", Options{}); err == nil {
		t.Error("unsafe projection should be rejected")
	}
	if _, _, err := s.ConsistentQuery("SELECT * FROM nope", Options{}); err == nil {
		t.Error("unknown table should error")
	}
}

// randomSystem builds a randomized small instance: one relation r(a,b,c)
// with an FD a->b, values drawn from tiny domains to force conflicts.
func randomSystem(rng *rand.Rand, n int) *System {
	db := engine.New()
	mustExec(db, "CREATE TABLE r (a INT, b INT, c INT)")
	seen := map[string]bool{}
	inserted := 0
	for inserted < n {
		a, b, c := rng.Intn(4), rng.Intn(3), rng.Intn(3)
		key := fmt.Sprintf("%d|%d|%d", a, b, c)
		if seen[key] {
			continue
		}
		seen[key] = true
		mustExec(db, fmt.Sprintf("INSERT INTO r VALUES (%d, %d, %d)", a, b, c))
		inserted++
	}
	fd := constraint.FD{Rel: "r", LHS: []string{"a"}, RHS: []string{"b"}}
	return NewSystem(db, []constraint.Constraint{fd})
}

// TestRandomizedAgainstOracle is the central correctness property: on
// random instances and a battery of SJUD query shapes, Hippo's answers
// equal the intersection of the query over all repairs.
func TestRandomizedAgainstOracle(t *testing.T) {
	queries := []string{
		"SELECT * FROM r",
		"SELECT * FROM r WHERE b = 1",
		"SELECT * FROM r WHERE a = 1 AND c <> 0",
		"SELECT * FROM r EXCEPT SELECT * FROM r WHERE c = 2",
		"SELECT * FROM r WHERE b = 0 UNION SELECT * FROM r WHERE b <> 0",
		"SELECT c, a, b FROM r",
		"SELECT * FROM r WHERE a < 2 INTERSECT SELECT * FROM r WHERE c < 2",
		"SELECT * FROM r EXCEPT SELECT * FROM r WHERE b = 1 UNION SELECT * FROM r WHERE a = 3",
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		s := randomSystem(rng, 6+rng.Intn(6))
		en, err := s.RepairEnumerator()
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range queries {
			res, _, err := s.ConsistentQuery(q, Options{})
			if err != nil {
				t.Fatalf("trial %d %q: %v", trial, q, err)
			}
			want, err := en.ConsistentAnswers(q)
			if err != nil {
				t.Fatalf("trial %d %q oracle: %v", trial, q, err)
			}
			g, w := rowStrings(res.Rows), rowStrings(want)
			if strings.Join(g, "|") != strings.Join(w, "|") {
				t.Errorf("trial %d %q:\n hippo  %v\n oracle %v", trial, q, g, w)
			}
		}
	}
}

// TestRandomizedDenialAgainstOracle repeats the oracle property with a
// general (non-FD) denial constraint exercising the generic detector.
func TestRandomizedDenialAgainstOracle(t *testing.T) {
	den, err := constraint.ParseDenial("r x, r y WHERE x.a = y.a AND x.b < y.b")
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"SELECT * FROM r",
		"SELECT * FROM r WHERE c = 1",
		"SELECT * FROM r EXCEPT SELECT * FROM r WHERE b = 2",
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		db := engine.New()
		mustExec(db, "CREATE TABLE r (a INT, b INT, c INT)")
		seen := map[string]bool{}
		for len(seen) < 7 {
			a, b, c := rng.Intn(3), rng.Intn(3), rng.Intn(2)
			key := fmt.Sprintf("%d|%d|%d", a, b, c)
			if seen[key] {
				continue
			}
			seen[key] = true
			mustExec(db, fmt.Sprintf("INSERT INTO r VALUES (%d, %d, %d)", a, b, c))
		}
		s := NewSystem(db, []constraint.Constraint{den})
		en, err := s.RepairEnumerator()
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range queries {
			res, _, err := s.ConsistentQuery(q, Options{})
			if err != nil {
				t.Fatalf("trial %d %q: %v", trial, q, err)
			}
			want, err := en.ConsistentAnswers(q)
			if err != nil {
				t.Fatalf("trial %d %q oracle: %v", trial, q, err)
			}
			g, w := rowStrings(res.Rows), rowStrings(want)
			if strings.Join(g, "|") != strings.Join(w, "|") {
				t.Errorf("trial %d %q:\n hippo  %v\n oracle %v", trial, q, g, w)
			}
		}
	}
}

// TestRandomizedTwoRelations exercises joins and exclusion constraints.
func TestRandomizedTwoRelations(t *testing.T) {
	excl, err := constraint.ParseDenial("p x, q y WHERE x.k = y.k")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	queries := []string{
		"SELECT * FROM p",
		"SELECT * FROM q",
		"SELECT p.k, p.v, q.k, q.w FROM p, q WHERE p.k = q.k",
		"SELECT * FROM p EXCEPT SELECT * FROM p WHERE v = 1",
	}
	for trial := 0; trial < 15; trial++ {
		db := engine.New()
		mustExec(db, "CREATE TABLE p (k INT, v INT)")
		mustExec(db, "CREATE TABLE q (k INT, w INT)")
		seenP, seenQ := map[string]bool{}, map[string]bool{}
		for len(seenP) < 4 {
			k, v := rng.Intn(4), rng.Intn(2)
			key := fmt.Sprintf("%d|%d", k, v)
			if seenP[key] {
				continue
			}
			seenP[key] = true
			mustExec(db, fmt.Sprintf("INSERT INTO p VALUES (%d, %d)", k, v))
		}
		for len(seenQ) < 4 {
			k, w := rng.Intn(4), rng.Intn(2)
			key := fmt.Sprintf("%d|%d", k, w)
			if seenQ[key] {
				continue
			}
			seenQ[key] = true
			mustExec(db, fmt.Sprintf("INSERT INTO q VALUES (%d, %d)", k, w))
		}
		s := NewSystem(db, []constraint.Constraint{excl})
		en, err := s.RepairEnumerator()
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range queries {
			res, _, err := s.ConsistentQuery(q, Options{})
			if err != nil {
				t.Fatalf("trial %d %q: %v", trial, q, err)
			}
			want, err := en.ConsistentAnswers(q)
			if err != nil {
				t.Fatalf("trial %d %q oracle: %v", trial, q, err)
			}
			g, w := rowStrings(res.Rows), rowStrings(want)
			if strings.Join(g, "|") != strings.Join(w, "|") {
				t.Errorf("trial %d %q:\n hippo  %v\n oracle %v", trial, q, g, w)
			}
		}
	}
}

func TestConsistentQueryOrderByLimit(t *testing.T) {
	s := newSystem(t)
	// Certified answers are (2,150) and (4,50); ordering and limit apply
	// after certification.
	res, st, err := s.ConsistentQuery("SELECT * FROM emp ORDER BY salary DESC", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][1] != value.Int(150) || res.Rows[1][1] != value.Int(50) {
		t.Errorf("ordered answers = %v", res.Rows)
	}
	if st.Answers != 2 {
		t.Errorf("stats answers = %d", st.Answers)
	}
	res, _, err = s.ConsistentQuery("SELECT * FROM emp ORDER BY salary ASC LIMIT 1", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1] != value.Int(50) {
		t.Errorf("limited answers = %v", res.Rows)
	}
	// LIMIT without ORDER BY is also accepted.
	res, _, err = s.ConsistentQuery("SELECT * FROM emp LIMIT 1", Options{})
	if err != nil || len(res.Rows) != 1 {
		t.Errorf("limit-only = %v, %v", res, err)
	}
}
