package core

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"hippo/internal/constraint"
	"hippo/internal/engine"
)

// oracleAnswers computes the consistent answers by repair enumeration —
// the ground truth every tier must match.
func oracleAnswers(t *testing.T, s *System, q string) []string {
	t.Helper()
	en, err := s.RepairEnumerator()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := en.ConsistentAnswers(q)
	if err != nil {
		t.Fatal(err)
	}
	return rowStrings(rows)
}

// assertTier runs q under automatic tier selection, asserts the chosen
// strategy and (when wantReason is non-empty) that the demotion reasons
// mention it, then checks the answers against both the forced prover tier
// and the repair-enumeration oracle.
func assertTier(t *testing.T, s *System, q, wantStrategy, wantReason string) *Stats {
	t.Helper()
	res, st, err := s.ConsistentQuery(q, Options{})
	if err != nil {
		t.Fatalf("%q: %v", q, err)
	}
	if st.Strategy != wantStrategy {
		t.Errorf("%q: strategy = %q (reasons %v), want %q", q, st.Strategy, st.TierReasons, wantStrategy)
	}
	if wantReason != "" && !strings.Contains(strings.Join(st.TierReasons, "; "), wantReason) {
		t.Errorf("%q: reasons %v do not mention %q", q, st.TierReasons, wantReason)
	}
	prv, _, err := s.ConsistentQuery(q, Options{Tier: TierForceProver})
	if err != nil {
		t.Fatalf("%q forced prover: %v", q, err)
	}
	got, viaProver := rowStrings(res.Rows), rowStrings(prv.Rows)
	if strings.Join(got, "|") != strings.Join(viaProver, "|") {
		t.Errorf("%q: auto tier %v != forced prover %v", q, got, viaProver)
	}
	want := oracleAnswers(t, s, q)
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("%q: auto tier %v != oracle %v", q, got, want)
	}
	return st
}

func TestTierRewriteEligibleSelection(t *testing.T) {
	s := newSystem(t)
	st := assertTier(t, s, "SELECT * FROM emp WHERE salary > 120", "rewrite", "")
	if st.Candidates != 0 {
		t.Errorf("rewrite tier certified %d candidates, want 0", st.Candidates)
	}
	if len(st.TierReasons) != 0 {
		t.Errorf("rewrite tier carries demotion reasons: %v", st.TierReasons)
	}
	if !strings.Contains(FormatStats(st), "tier=rewrite") {
		t.Errorf("FormatStats missing tier line:\n%s", FormatStats(st))
	}
}

// TestTierClassifierDemotions covers the hard guards on the standard
// single-relation instance: each shape must land on the prover with the
// matching reason, and the answers must still agree with the oracle.
func TestTierClassifierDemotions(t *testing.T) {
	cases := []struct {
		name, q, reason string
	}{
		{"self-join", "SELECT * FROM emp e, emp f WHERE e.id = f.id", "self-join"},
		{"key-constant", "SELECT * FROM emp WHERE id = 2", "constant-in-key"},
		{"union", "SELECT * FROM emp WHERE id = 2 UNION SELECT * FROM emp WHERE id = 4", "union"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := newSystem(t)
			assertTier(t, s, tc.q, "prover", tc.reason)
		})
	}
}

// TestTierAttackCycleDemotes joins two keyed relations through each
// other's non-key columns in both directions: the attack graph is cyclic,
// so no atom's certainty is decidable independently and the classifier
// must refuse the fast tiers.
func TestTierAttackCycleDemotes(t *testing.T) {
	db := engine.New()
	mustExec(db, "CREATE TABLE r (a INT, b INT)")
	mustExec(db, "CREATE TABLE s (c INT, d INT)")
	mustExec(db, "INSERT INTO r VALUES (1, 10), (1, 20), (2, 10)")
	mustExec(db, "INSERT INTO s VALUES (10, 1), (10, 2), (20, 2)")
	sys := NewSystem(db, []constraint.Constraint{
		constraint.FD{Rel: "r", LHS: []string{"a"}, RHS: []string{"b"}},
		constraint.FD{Rel: "s", LHS: []string{"c"}, RHS: []string{"d"}},
	})
	assertTier(t, sys, "SELECT * FROM r, s WHERE r.b = s.c AND s.d = r.a", "prover", "attack-cycle")
}

// TestTierInteractionDemotes is the soundness regression for mixed
// unary/binary constraints: the unary denial kills (1, -5) in every
// repair, so its FD partner (1, 100) is consistent even though it has a
// conflict partner — a per-constraint residue would wrongly discard it.
// The classifier must demote, and the prover must return (1, 100).
func TestTierInteractionDemotes(t *testing.T) {
	db := engine.New()
	mustExec(db, "CREATE TABLE emp (id INT, salary INT)")
	mustExec(db, "INSERT INTO emp VALUES (1, 100), (1, -5), (2, 150)")
	fd := constraint.FD{Rel: "emp", LHS: []string{"id"}, RHS: []string{"salary"}}
	den, err := constraint.ParseDenial("emp AS x WHERE x.salary < 0")
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(db, []constraint.Constraint{fd, den})
	assertTier(t, sys, "SELECT * FROM emp WHERE salary > 50", "prover", "constraint-interaction")
	res, _, err := sys.ConsistentQuery("SELECT * FROM emp WHERE salary > 50", Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := rowStrings(res.Rows)
	if strings.Join(got, "|") != "(1, 100)|(2, 150)" {
		t.Errorf("answers = %v, want [(1, 100) (2, 150)]", got)
	}
}

// TestTierHybridCoverage: one relation is covered by FD residues, the
// other carries a 3-atom denial the rewriting cannot express — the
// classifier must pick the hybrid tier (prefilter with the residues that
// do exist, certify the survivors) and still match the oracle.
func TestTierHybridCoverage(t *testing.T) {
	db := engine.New()
	mustExec(db, "CREATE TABLE emp (id INT, salary INT)")
	mustExec(db, "CREATE TABLE aud (k INT, v INT)")
	mustExec(db, "INSERT INTO emp VALUES (1, 100), (1, 200), (2, 150)")
	mustExec(db, "INSERT INTO aud VALUES (1, 7), (2, 8), (3, 9)")
	fd := constraint.FD{Rel: "emp", LHS: []string{"id"}, RHS: []string{"salary"}}
	den, err := constraint.ParseDenial("aud a, aud b, aud c WHERE a.k < b.k AND b.k < c.k AND a.v = 999")
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(db, []constraint.Constraint{fd, den})
	st := assertTier(t, sys, "SELECT * FROM emp e, aud a WHERE e.id = a.k", "hybrid", "constraint-uncovered")
	if st.TierFallback {
		t.Error("hybrid run flagged as fallback")
	}
}

// TestTierReclassifiesOnConstraintChange: the same query must be
// re-decided after a mid-session AddConstraint — the constraint epoch
// invalidates both the decision cache and the prepared rewriter.
func TestTierReclassifiesOnConstraintChange(t *testing.T) {
	s := newSystem(t)
	const q = "SELECT * FROM emp WHERE salary > 120"
	assertTier(t, s, q, "rewrite", "")
	den, err := constraint.ParseDenial("emp AS x WHERE x.salary < 0")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddConstraint(den); err != nil {
		t.Fatal(err)
	}
	assertTier(t, s, q, "prover", "constraint-interaction")
	tc := s.TierCounts()
	if tc.Rewrite == 0 || tc.Prover == 0 {
		t.Errorf("tier counters = %+v, want both rewrite and prover runs recorded", tc)
	}
}

// TestRewriterCachedPerEpoch pins the satellite fix: Rewriter() must
// return the same prepared instance until the constraint set changes.
func TestRewriterCachedPerEpoch(t *testing.T) {
	s := newSystem(t)
	rw1, err := s.Rewriter()
	if err != nil {
		t.Fatal(err)
	}
	rw2, err := s.Rewriter()
	if err != nil {
		t.Fatal(err)
	}
	if rw1 != rw2 {
		t.Error("Rewriter() rebuilt the rewriter with an unchanged constraint set")
	}
	den, err := constraint.ParseDenial("emp AS x WHERE x.salary < 0")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddConstraint(den); err != nil {
		t.Fatal(err)
	}
	rw3, err := s.Rewriter()
	if err != nil {
		t.Fatal(err)
	}
	if rw3 == rw1 {
		t.Error("Rewriter() served a stale instance after AddConstraint")
	}
}

// TestTierFallbackIsSilent: a compiled rewrite plan that fails at run
// time must not surface to the caller — the prover re-serves the query,
// the stats record the fallback, and the counter advances.
func TestTierFallbackIsSilent(t *testing.T) {
	s := newSystem(t)
	testTierExecHook = func() error { return errors.New("simulated compiled-plan failure") }
	defer func() { testTierExecHook = nil }()
	const q = "SELECT * FROM emp WHERE salary > 120"
	res, st, err := s.ConsistentQuery(q, Options{})
	if err != nil {
		t.Fatalf("fallback leaked to the caller: %v", err)
	}
	if !st.TierFallback || st.Strategy != "prover" {
		t.Errorf("stats = strategy %q fallback %v, want prover/true", st.Strategy, st.TierFallback)
	}
	if got := s.TierCounts().Fallbacks; got != 1 {
		t.Errorf("fallback counter = %d, want 1", got)
	}
	if !strings.Contains(FormatStats(st), "fallback=true") {
		t.Errorf("FormatStats missing fallback flag:\n%s", FormatStats(st))
	}
	got, want := rowStrings(res.Rows), oracleAnswers(t, s, q)
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("fallback answers %v != oracle %v", got, want)
	}
}

// TestTierRequireRewriteErrors: the strict option must fail eligibility
// misses instead of silently falling back.
func TestTierRequireRewriteErrors(t *testing.T) {
	s := newSystem(t)
	_, _, err := s.ConsistentQuery(
		"SELECT * FROM emp WHERE id = 2 UNION SELECT * FROM emp WHERE id = 4",
		Options{Tier: TierRequireRewrite})
	if !errors.Is(err, ErrRewriteIneligible) {
		t.Fatalf("err = %v, want ErrRewriteIneligible", err)
	}
}

// FuzzTierClassifier drives randomized (instance, constraint set, query)
// triples through automatic tier selection and the forced prover tier,
// requiring identical answer sets — the classifier may only ever pick a
// tier whose answers match certification.
func FuzzTierClassifier(f *testing.F) {
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	queries := []string{
		"SELECT * FROM emp",
		"SELECT * FROM emp WHERE salary > 120",
		"SELECT * FROM emp WHERE id = 2",
		"SELECT salary, id FROM emp",
		"SELECT * FROM emp e, emp f WHERE e.id = f.id",
		"SELECT * FROM emp WHERE id = 2 UNION SELECT * FROM emp WHERE id = 4",
		"SELECT * FROM emp EXCEPT SELECT * FROM emp WHERE salary > 150",
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		db := engine.New()
		mustExec(db, "CREATE TABLE emp (id INT, salary INT)")
		rows := make([]string, 0, 8)
		for i := 0; i < 2+rng.Intn(7); i++ {
			rows = append(rows, fmt.Sprintf("(%d, %d)", rng.Intn(4), (1+rng.Intn(4))*50))
		}
		mustExec(db, "INSERT INTO emp VALUES "+strings.Join(rows, ", "))
		cs := []constraint.Constraint{
			constraint.FD{Rel: "emp", LHS: []string{"id"}, RHS: []string{"salary"}},
		}
		if rng.Intn(3) == 0 {
			den, err := constraint.ParseDenial("emp AS x WHERE x.salary > 150")
			if err != nil {
				t.Fatal(err)
			}
			cs = append(cs, den)
		}
		sys := NewSystem(db, cs)
		defer sys.Close()
		q := queries[rng.Intn(len(queries))]
		auto, sa, err := sys.ConsistentQuery(q, Options{})
		if err != nil {
			t.Fatalf("seed %d %q: %v", seed, q, err)
		}
		prv, _, err := sys.ConsistentQuery(q, Options{Tier: TierForceProver})
		if err != nil {
			t.Fatalf("seed %d %q forced prover: %v", seed, q, err)
		}
		g, w := rowStrings(auto.Rows), rowStrings(prv.Rows)
		if strings.Join(g, "|") != strings.Join(w, "|") {
			t.Fatalf("seed %d %q: tier %q answers %v != prover %v (reasons %v)",
				seed, q, sa.Strategy, g, w, sa.TierReasons)
		}
	})
}
