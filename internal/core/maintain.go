package core

import "time"

// The background maintainer: a core-level goroutine (sibling of the
// async checkpointer in durable.go) that drains queued DML deltas into
// the hypergraph — and publishes the resulting view — OFF the query
// path. Without it, the first consistent query after a write pays the
// whole delta drain inside refreshViewLocked; with it, that query
// usually finds an already-folded, already-published view and serves
// lock-free. The maintainer is nudged by the change feed (foldCh) with a
// ticker backstop, runs for in-memory and durable systems alike, and is
// stopped by Close.
//
// It only ever folds: when a full re-detection is scheduled (first
// analysis, DDL, constraint changes, queue overflow) it stays idle — a
// full Detect is expensive and its cost model belongs to the caller who
// forced it, not to a background loop that would re-run it on every
// nudge of a bulk load.

// foldPollInterval is the maintainer's ticker backstop; a variable so
// tests can tighten it.
var foldPollInterval = time.Second

// SetEagerFolding pauses (false) or resumes (true, the default) the
// background maintainer. Pausing restores the fold-on-first-query
// behavior — benchmarks use it to measure exactly that baseline, and
// overflow tests use it to let the delta queue actually fill.
func (s *System) SetEagerFolding(enabled bool) {
	s.foldOff.Store(!enabled)
	if enabled {
		s.nudgeFolder()
	}
}

// MaintenanceHealth reports — without consuming — the sticky error of
// the background maintenance plane: a failed automatic checkpoint parked
// for TakeCheckpointError, or a failed background fold. It is the
// serving tier's degradation probe (/health, /v1/stats): a read-mostly
// deployment learns that maintenance is broken even if no write ever
// comes by to drain the error.
func (s *System) MaintenanceHealth() error {
	if b := s.ckptFail.Load(); b != nil {
		return b.err
	}
	if b := s.maintFail.Load(); b != nil {
		return b.err
	}
	return nil
}

// nudgeFolder wakes the maintainer without blocking; a pending nudge
// already covers this one.
func (s *System) nudgeFolder() {
	select {
	case s.foldCh <- struct{}{}:
	default:
	}
}

// maintainLoop runs until Close. Each pass folds at most once; the
// change feed re-nudges while writes keep coming.
func (s *System) maintainLoop() {
	defer close(s.foldDone)
	t := time.NewTicker(foldPollInterval)
	defer t.Stop()
	for {
		select {
		case <-s.foldStop:
			return
		case <-s.foldCh:
		case <-t.C:
		}
		s.eagerFold()
	}
}

// eagerFold drains the delta queue into the hypergraph and publishes the
// folded view, if there is anything to fold. The cheap qmu precheck
// keeps idle ticks from touching mu at all; the real decision is
// refreshViewLocked's own, under mu — if a query got there first the
// refresh is a no-op, and if DDL scheduled a full rebuild in between,
// foldableNow turns false and the fold is skipped.
func (s *System) eagerFold() {
	if s.foldOff.Load() {
		return
	}
	if !s.foldableNow() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.foldableNow() {
		return
	}
	if _, err := s.refreshViewLocked(); err != nil {
		// Park the failure for MaintenanceHealth; the next query's own
		// refresh will hit — and report — the same error.
		s.maintFail.Store(&errBox{err: err})
		return
	}
	s.maintFail.Store(nil)
	s.eagerFolds.Add(1)
}

// foldableNow reports whether the queue holds deltas an incremental fold
// can absorb (an existing graph, no full re-detection scheduled).
func (s *System) foldableNow() bool {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	return s.analyzed && !s.needFull && len(s.pending) > 0
}
